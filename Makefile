GO ?= go

# Tier-1 verification plus formatting, the race detector, and benchmark
# smoke runs. `make ci` is what a CI job should run.
.PHONY: ci fmt-check vet lint lint-confinement build test race fault-smoke \
	bench-smoke obs-bench-smoke obs-shard-smoke epoch-smoke serve-smoke \
	serve-bench bench bench-json bench-json-smoke

ci: fmt-check vet lint build race fault-smoke bench-smoke obs-bench-smoke obs-shard-smoke epoch-smoke serve-smoke bench-json-smoke

# gofmt -l prints nonconforming files; any output fails the target.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# numalint: the domain-specific checks go vet cannot know about —
# determinism, hot-path allocation-freedom, tracer guarding, fault purity,
# and the whole-program lane-confinement proof. Exits non-zero on any
# finding; see internal/lint and README. The elapsed time is printed so a
# `make ci` log records what the whole-program analysis costs.
lint:
	@t0=$$(date +%s); \
	$(GO) run ./cmd/numalint ./... && \
	$(MAKE) --no-print-directory lint-confinement; \
	rc=$$?; t1=$$(date +%s); \
	echo "lint: $$((t1-t0))s"; exit $$rc

# lint-confinement: regenerate the machine-readable confinement report and
# diff it against the checked-in golden, so any change to what is proven
# lane-confined shows up in review. UPDATE=1 rewrites the golden (same
# contract as `go test ./internal/lint -update`).
lint-confinement:
	@tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	$(GO) run ./cmd/numalint -confinement-json ./... >"$$tmp" || exit 1; \
	if [ -n "$(UPDATE)" ]; then \
		cp "$$tmp" internal/lint/testdata/confinement.golden.json; \
		echo "lint-confinement: golden updated"; \
	else \
		diff -u internal/lint/testdata/confinement.golden.json "$$tmp" || \
			{ echo "lint-confinement: confinement report drifted from the golden;"; \
			  echo "  audit the diff and run: make lint-confinement UPDATE=1"; exit 1; }; \
		echo "lint-confinement: report matches golden"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiment harness is concurrent (report.Harness singleflight memo,
# per-experiment worker pools); keep the race detector in the loop. The
# second run re-executes the contention hammers by name with -count=1 so a
# cached pass can never mask a freshly introduced race in the memo or the
# panic-isolation path.
race:
	$(GO) test -race ./...
	$(GO) test -race -count=1 \
		-run 'TestSingleflightUnderConcurrency|TestHarnessPanicIsolation|TestHarnessFailureHammer|TestHarnessFailureEvictedFromMemo' \
		./internal/report
	$(GO) test -race -count=1 \
		-run 'TestShardNeutrality|TestEpochWorkerNeutrality|TestShardedEpochsDeterministicAndLaneEquivalent|TestShardStatsEpochsDeterministicAcrossWorkers|TestGuardedEpochsMatchSerializedMerge' \
		./internal/core ./internal/sim
	$(GO) test -race -count=1 -run 'TestRecorderUnderEpochWorkers' ./internal/obs

# The chaos suite: a full-fault run (drain + drops + transient allocation
# failures + slow link) must complete deterministically with invariants
# intact. Cheap enough to run on every CI pass.
fault-smoke:
	$(GO) test -run 'TestChaos' -count=1 ./internal/core

# One cheap iteration of the trace-simulator benchmark proves the bench
# harness still builds and runs end to end.
bench-smoke:
	BENCH_SCALE=0.1 $(GO) test -run '^$$' -bench BenchmarkTraceSimThroughput -benchtime 1x .

# The disabled-tracer benchmark doubles as the proof that instrumentation
# costs one branch when off; one iteration keeps CI honest about it building.
obs-bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkTracerDisabled|BenchmarkRecorderDisabled' -benchtime 1x ./internal/obs
	$(GO) test -run '^$$' -bench BenchmarkShardStatsDisabled -benchtime 1x ./internal/sim

# The shard-stats export must be byte-deterministic: run the golden workload
# twice at each lane count and diff the JSONL reports. (Per-lane stats are
# deterministic per shard count; only the dispatch total is shard-neutral —
# TestShardStatsNeutral covers that invariant.)
obs-shard-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/numasim" ./cmd/numasim; \
	for s in 1 2 4; do \
		"$$tmp/numasim" -workload engineering -scale 0.05 -duration 4ms \
			-shards $$s -shardstats "$$tmp/a$$s.jsonl" >/dev/null; \
		"$$tmp/numasim" -workload engineering -scale 0.05 -duration 4ms \
			-shards $$s -shardstats "$$tmp/b$$s.jsonl" >/dev/null; \
		cmp "$$tmp/a$$s.jsonl" "$$tmp/b$$s.jsonl" || \
			{ echo "obs-shard-smoke: shard-stats not deterministic at -shards $$s"; exit 1; }; \
	done; \
	echo "obs-shard-smoke: shard-stats deterministic at shards 1/2/4"

# Full-system byte-identity of the concurrent epoch engine: the -json result
# of a golden workload must be identical between the single-heap engine and
# guarded epochs at every shard/worker pairing. The neutrality tests cover
# the library; this covers the shipped binary's flag plumbing.
epoch-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/numasim" ./cmd/numasim; \
	"$$tmp/numasim" -workload engineering -scale 0.05 -duration 4ms \
		-json >"$$tmp/serial.json"; \
	for sw in "1 1" "2 2" "4 4"; do \
		set -- $$sw; \
		"$$tmp/numasim" -workload engineering -scale 0.05 -duration 4ms \
			-shards $$1 -workers $$2 -json >"$$tmp/epoch.json"; \
		cmp "$$tmp/serial.json" "$$tmp/epoch.json" || \
			{ echo "epoch-smoke: -shards $$1 -workers $$2 diverges from the serial engine"; exit 1; }; \
	done; \
	echo "epoch-smoke: byte-identical at shards/workers 1/1 2/2 4/4"

# End-to-end check of the simulation server: builds the real numasim and
# numasimd binaries, byte-diffs a served response against `numasim -json`,
# hammers the bounded queue (only 200s and deliberate 429s allowed), and
# SIGTERMs the daemon with a request in flight expecting a clean exit 0.
serve-smoke:
	$(GO) test -run TestServeSmoke -count=1 ./cmd/numasimd

# Machine-readable record of the serving-layer benchmarks: the warm
# cache-hit path and the cold full-simulation path, one iteration each,
# parsed by cmd/benchjson into BENCH_9.json.
serve-bench:
	$(GO) test -run '^$$' -bench 'ServeCachedHit|ServeUncached' \
		-benchmem -benchtime 1x ./internal/serve \
		| $(GO) run ./cmd/benchjson -out BENCH_9.json
	@echo wrote BENCH_9.json

# The full paper-regeneration benchmark suite (see bench_test.go).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Machine-readable record of the throughput benchmarks: one iteration at
# quarter scale, parsed by cmd/benchjson into BENCH_8.json (ns/op, allocs/op,
# ksteps/s, records). ShardScaling records the serial 1/2/4-lane curve plus
# the guarded-epoch points (workers 2 and 4).
bench-json:
	BENCH_SCALE=0.25 $(GO) test -run '^$$' \
		-bench 'FullSystemEngineering|ShardScaling|TraceSimThroughput' -benchmem -benchtime 1x . \
		| $(GO) run ./cmd/benchjson -out BENCH_8.json
	@echo wrote BENCH_8.json

# Smoke: prove the bench-to-JSON pipeline parses current go test output.
bench-json-smoke:
	BENCH_SCALE=0.1 $(GO) test -run '^$$' \
		-bench TraceSimThroughput -benchmem -benchtime 1x . \
		| $(GO) run ./cmd/benchjson -out /dev/null
