GO ?= go

# Tier-1 verification plus the race detector and a benchmark smoke run.
# `make ci` is what a CI job should run.
.PHONY: ci vet build test race bench-smoke bench

ci: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiment harness is concurrent (report.Harness singleflight memo,
# per-experiment worker pools); keep the race detector in the loop.
race:
	$(GO) test -race ./...

# One cheap iteration of the trace-simulator benchmark proves the bench
# harness still builds and runs end to end.
bench-smoke:
	BENCH_SCALE=0.1 $(GO) test -run '^$$' -bench BenchmarkTraceSimThroughput -benchtime 1x .

# The full paper-regeneration benchmark suite (see bench_test.go).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .
