// Package ccnuma is a reproduction of "Operating System Support for
// Improving Data Locality on CC-NUMA Compute Servers" (Verghese, Devine,
// Gupta, Rosenblum — ASPLOS 1996): an event-driven CC-NUMA machine
// simulator, an IRIX-like VM/kernel substrate, the paper's dynamic page
// migration/replication policy, the five evaluation workloads, and a
// trace-driven policy simulator.
//
// Layout:
//
//	internal/core      — the assembled system: build a workload, run it, read the results
//	internal/policy    — the Figure-1 decision tree and Table-1 parameters
//	internal/kernel/*  — VM (replica chains, ptes, back-maps), allocator, schedulers, pager
//	internal/{cache,tlb,directory,interconnect,topology,sim} — the machine model
//	internal/workload  — the five Table-2 workload models
//	internal/{trace,tracesim} — the Section-8 trace methodology
//	internal/report    — regenerates every table and figure with paper-vs-measured output
//	cmd/{numasim,tracesim,experiments} — the executables
//
// The benchmarks in bench_test.go regenerate each of the paper's tables and
// figures; see DESIGN.md for the experiment index and EXPERIMENTS.md for
// recorded paper-vs-measured results.
package ccnuma
