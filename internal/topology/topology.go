// Package topology describes the simulated machine: how many nodes and CPUs,
// the cache and TLB geometry, the memory-system latencies, and the costs of
// the kernel operations the pager performs. Presets reproduce the three
// configurations evaluated in the paper: CC-NUMA (FLASH-like, remote latency
// 4x local), CC-NOW (distributed FLASH, remote latency 10x local), and the
// zero-network-delay configuration of Section 7.1.2.
package topology

import (
	"fmt"

	"ccnuma/internal/mem"
	"ccnuma/internal/sim"
)

// Config is a complete machine description. Construct one with a preset
// (CCNUMA, CCNOW, ZeroNet) and adjust fields before building the system;
// Validate reports inconsistent configurations.
type Config struct {
	Name string

	// Geometry.
	Nodes       int // memory nodes (one directory controller each)
	CPUsPerNode int
	// MemoryPerNode is the local memory of each node in bytes; it bounds the
	// per-node page allocator and creates the memory-pressure failures the
	// paper reports for the Splash workload.
	MemoryPerNode int64

	// Processor. The paper models 300 MHz processors; CycleTime is the cost
	// charged per simulated instruction between memory events.
	CycleTime sim.Time

	// Caches. Sizes in bytes; all caches use mem.LineSize lines.
	L1Size  int // per-CPU split I and D, each this size
	L1Assoc int
	L1Hit   sim.Time // charged only on L1 miss/L2 hit paths (L1 hits are free)
	L2Size  int      // per-CPU unified
	L2Assoc int
	L2Hit   sim.Time

	// TLB.
	TLBEntries int
	TLBAssoc   int
	// TLBRefill is the software-reload cost of a TLB miss.
	TLBRefill sim.Time

	// Memory system.
	LocalLatency  sim.Time // minimum latency of a local L2 miss
	RemoteLatency sim.Time // minimum latency of a remote L2 miss
	// DirOccupancy is the directory-controller service time consumed per
	// request; it produces the queueing that inflates observed latencies
	// (Section 7.1.3 observes 2279ns vs the 1200ns minimum).
	DirOccupancy sim.Time
	// NetLinkTime is the network service time per message hop; zero removes
	// network queueing entirely (the Section 7.1.2 experiment).
	NetLinkTime sim.Time

	// Kernel operation base costs (before simulated lock contention), which
	// calibrate the Table 5 step latencies. Presets store these already
	// multiplied by CostScale.
	Kernel KernelCosts
	// CostScale records the time-compression factor applied to Kernel, so
	// reports can state paper-equivalent latencies (see Scaled).
	CostScale float64

	// Policy-independent machine features.
	//
	// PagesPerInterrupt is how many hot pages the directory tries to batch
	// before raising a pager interrupt, amortizing interrupt and TLB-flush
	// costs (Section 4).
	PagesPerInterrupt int
	// DirCopy, when true, uses the MAGIC pipelined memory-to-memory copy
	// (35us) instead of a processor bcopy (~100us) — the ablation in 7.2.2.
	DirCopy bool
	// TrackTLBHolders, when true, models the "flush only TLBs with a
	// mapping" optimisation the paper simulates (-25% kernel overhead).
	TrackTLBHolders bool
}

// KernelCosts are per-operation base costs for the pager's Figure-2 steps.
type KernelCosts struct {
	InterruptEntry sim.Time // step 2: take interrupt, enter pager (per batch)
	PolicyDecision sim.Time // step 3: read counters, decide (per page)
	PageAllocBase  sim.Time // step 4: allocate page, before memlock wait
	LinkMapRepl    sim.Time // step 5: link replica, update ptes (page lock)
	LinkMapMigr    sim.Time // step 5: unlink/relink master (memlock held)
	TLBFlushLocal  sim.Time // step 6: cost charged to each flushed CPU
	TLBFlushWait   sim.Time // step 6: initiator wait per flush round
	PageCopyCPU    sim.Time // step 7: bcopy of one page by the processor
	PageCopyDir    sim.Time // step 7: pipelined copy by directory controller
	PolicyEndRepl  sim.Time // step 8: point ptes at nearest replica
	PolicyEndMigr  sim.Time // step 8: free old page, final mapping
	PageFault      sim.Time // cost of the extra faults caused by remapping
	CollapseBase   sim.Time // write-trap collapse path, excluding copy/flush
	MemlockHold    sim.Time // critical-section length under memlock
	PageLockHold   sim.Time // critical-section length under a page lock
}

// Scaled returns the costs multiplied by f. Experiments run time-compressed
// (hundreds of milliseconds instead of the paper's tens of seconds), so the
// machine presets scale the per-operation kernel costs by the same factor to
// keep the overhead-to-benefit ratio faithful; reports multiply back by
// 1/CostScale so Tables 5-6 are stated in paper-equivalent microseconds.
func (k KernelCosts) Scaled(f float64) KernelCosts {
	s := func(t sim.Time) sim.Time { return sim.Time(float64(t) * f) }
	return KernelCosts{
		InterruptEntry: s(k.InterruptEntry),
		PolicyDecision: s(k.PolicyDecision),
		PageAllocBase:  s(k.PageAllocBase),
		LinkMapRepl:    s(k.LinkMapRepl),
		LinkMapMigr:    s(k.LinkMapMigr),
		TLBFlushLocal:  s(k.TLBFlushLocal),
		TLBFlushWait:   s(k.TLBFlushWait),
		PageCopyCPU:    s(k.PageCopyCPU),
		PageCopyDir:    s(k.PageCopyDir),
		PolicyEndRepl:  s(k.PolicyEndRepl),
		PolicyEndMigr:  s(k.PolicyEndMigr),
		PageFault:      s(k.PageFault),
		CollapseBase:   s(k.CollapseBase),
		MemlockHold:    s(k.MemlockHold),
		PageLockHold:   s(k.PageLockHold),
	}
}

// DefaultKernelCosts returns costs calibrated so an uncontended migration or
// replication lands in the 400-500us total the paper measures (Table 5).
func DefaultKernelCosts() KernelCosts {
	return KernelCosts{
		InterruptEntry: 50 * sim.Microsecond, // amortized over a batch
		PolicyDecision: 13 * sim.Microsecond,
		PageAllocBase:  60 * sim.Microsecond,
		LinkMapRepl:    30 * sim.Microsecond,
		LinkMapMigr:    75 * sim.Microsecond,
		TLBFlushLocal:  22 * sim.Microsecond,
		TLBFlushWait:   60 * sim.Microsecond, // amortized over a batch
		PageCopyCPU:    100 * sim.Microsecond,
		PageCopyDir:    35 * sim.Microsecond,
		PolicyEndRepl:  80 * sim.Microsecond,
		PolicyEndMigr:  63 * sim.Microsecond,
		PageFault:      10 * sim.Microsecond,
		CollapseBase:   60 * sim.Microsecond,
		MemlockHold:    35 * sim.Microsecond,
		PageLockHold:   8 * sim.Microsecond,
	}
}

// defaultCostScale is the time-compression factor for kernel operation
// costs (experiments run ~8x shorter than the paper's).
const defaultCostScale = 0.125

// CCNUMA returns the 8-processor FLASH-like configuration of Section 5:
// 300 MHz CPUs, 32 KB 2-way split L1s, 512 KB 2-way unified L2 with 50ns hit
// time, 64-entry TLBs, 300ns local and 1200ns remote miss latency.
func CCNUMA() Config {
	return Config{
		Name:          "cc-numa",
		Nodes:         8,
		CPUsPerNode:   1,
		MemoryPerNode: 32 << 20,
		CycleTime:     3, // ~300MHz: 3.33ns, rounded to keep Time integral
		L1Size:        32 << 10,
		L1Assoc:       2,
		L1Hit:         3,
		L2Size:        512 << 10,
		L2Assoc:       2,
		L2Hit:         50,
		TLBEntries:    64,
		TLBAssoc:      4,
		TLBRefill:     250, // software-reloaded TLB: tens of cycles (R4000 utlbmiss)
		LocalLatency:  300,
		RemoteLatency: 1200,
		DirOccupancy:  300,
		NetLinkTime:   120,

		Kernel:            DefaultKernelCosts().Scaled(defaultCostScale),
		CostScale:         defaultCostScale,
		PagesPerInterrupt: 2,
		DirCopy:           false,
		TrackTLBHolders:   false,
	}
}

// CCNOW returns the CC-NOW configuration: identical to CC-NUMA except the
// remote miss latency rises to 3000ns (1000 ft of fiber, Section 5) and the
// network service time grows with it.
func CCNOW() Config {
	c := CCNUMA()
	c.Name = "cc-now"
	c.RemoteLatency = 3000
	c.NetLinkTime = 150
	return c
}

// ZeroNet returns the CC-NUMA configuration with all interconnection-network
// delay removed (Section 7.1.2): the wire contributes nothing, but a remote
// miss still traverses the requesting and home directory controllers, so
// remote misses remain more expensive than local ones and locality still
// pays (the paper measures a 21%% improvement in this configuration).
func ZeroNet() Config {
	c := CCNUMA()
	c.Name = "zero-net"
	c.RemoteLatency = c.LocalLatency + 2*c.DirOccupancy
	c.NetLinkTime = 0
	return c
}

// TotalCPUs returns the number of processors in the machine.
func (c Config) TotalCPUs() int { return c.Nodes * c.CPUsPerNode }

// FramesPerNode returns how many page frames each node's memory holds.
func (c Config) FramesPerNode() int { return int(c.MemoryPerNode / mem.PageSize) }

// TotalFrames returns the machine-wide frame count.
func (c Config) TotalFrames() int { return c.Nodes * c.FramesPerNode() }

// NodeOf returns the home node of a CPU.
func (c Config) NodeOf(cpu mem.CPUID) mem.NodeID {
	return mem.NodeID(int(cpu) / c.CPUsPerNode)
}

// NodeOfFrame returns the node whose memory holds frame f.
func (c Config) NodeOfFrame(f mem.PFN) mem.NodeID {
	return mem.NodeID(int(f) / c.FramesPerNode())
}

// CopyCost returns the configured page-copy cost (step 7).
func (c Config) CopyCost() sim.Time {
	if c.DirCopy {
		return c.Kernel.PageCopyDir
	}
	return c.Kernel.PageCopyCPU
}

// Validate reports the first inconsistency in the configuration, or nil.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("topology: %d nodes", c.Nodes)
	case c.CPUsPerNode <= 0:
		return fmt.Errorf("topology: %d CPUs per node", c.CPUsPerNode)
	case c.MemoryPerNode < mem.PageSize:
		return fmt.Errorf("topology: node memory %d below one page", c.MemoryPerNode)
	case c.L1Size < mem.LineSize || c.L2Size < mem.LineSize:
		return fmt.Errorf("topology: cache smaller than a line")
	case c.L1Assoc <= 0 || c.L2Assoc <= 0 || c.TLBAssoc <= 0:
		return fmt.Errorf("topology: non-positive associativity")
	case c.L1Size%(c.L1Assoc*mem.LineSize) != 0:
		return fmt.Errorf("topology: L1 size %d not divisible into %d-way line sets", c.L1Size, c.L1Assoc)
	case c.L2Size%(c.L2Assoc*mem.LineSize) != 0:
		return fmt.Errorf("topology: L2 size %d not divisible into %d-way line sets", c.L2Size, c.L2Assoc)
	case c.TLBEntries%c.TLBAssoc != 0:
		return fmt.Errorf("topology: TLB entries %d not divisible by assoc %d", c.TLBEntries, c.TLBAssoc)
	case c.CycleTime <= 0:
		return fmt.Errorf("topology: non-positive cycle time")
	case c.LocalLatency <= 0 || c.RemoteLatency < c.LocalLatency:
		return fmt.Errorf("topology: latencies local=%d remote=%d", c.LocalLatency, c.RemoteLatency)
	case c.PagesPerInterrupt <= 0:
		return fmt.Errorf("topology: non-positive interrupt batch")
	case int64(c.TotalFrames()) > int64(^uint32(0)):
		return fmt.Errorf("topology: frame count overflows PFN")
	}
	return nil
}
