package topology

import (
	"testing"

	"ccnuma/internal/mem"
	"ccnuma/internal/sim"
)

func TestPresetsValidate(t *testing.T) {
	for _, cfg := range []Config{CCNUMA(), CCNOW(), ZeroNet()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestCCNUMAMatchesPaperSection5(t *testing.T) {
	c := CCNUMA()
	if c.TotalCPUs() != 8 {
		t.Errorf("CPUs = %d, want 8", c.TotalCPUs())
	}
	if c.L1Size != 32<<10 || c.L1Assoc != 2 {
		t.Errorf("L1 = %d bytes %d-way, want 32KB 2-way", c.L1Size, c.L1Assoc)
	}
	if c.L2Size != 512<<10 || c.L2Assoc != 2 {
		t.Errorf("L2 = %d bytes %d-way, want 512KB 2-way", c.L2Size, c.L2Assoc)
	}
	if c.L2Hit != 50 {
		t.Errorf("L2 hit = %v, want 50ns", c.L2Hit)
	}
	if c.TLBEntries != 64 {
		t.Errorf("TLB = %d entries, want 64", c.TLBEntries)
	}
	if c.LocalLatency != 300 || c.RemoteLatency != 1200 {
		t.Errorf("latencies = %v/%v, want 300/1200", c.LocalLatency, c.RemoteLatency)
	}
}

func TestCCNOWRemoteLatency(t *testing.T) {
	c := CCNOW()
	if c.RemoteLatency != 3000 {
		t.Errorf("CC-NOW remote latency = %v, want 3000ns", c.RemoteLatency)
	}
	if c.LocalLatency != 300 {
		t.Errorf("CC-NOW local latency = %v, want 300ns", c.LocalLatency)
	}
}

func TestZeroNetRemovesNetworkDelay(t *testing.T) {
	c := ZeroNet()
	if c.NetLinkTime != 0 {
		t.Errorf("zero-net config still has link time: %v", c.NetLinkTime)
	}
	// Remote misses still pay the two directory-controller traversals, so
	// locality keeps mattering (Section 7.1.2).
	if c.RemoteLatency != c.LocalLatency+2*c.DirOccupancy {
		t.Errorf("zero-net remote latency = %v", c.RemoteLatency)
	}
}

func TestNodeMapping(t *testing.T) {
	c := CCNUMA()
	c.CPUsPerNode = 2
	c.Nodes = 4
	for cpu := 0; cpu < c.TotalCPUs(); cpu++ {
		want := mem.NodeID(cpu / 2)
		if got := c.NodeOf(mem.CPUID(cpu)); got != want {
			t.Errorf("NodeOf(%d) = %v, want %v", cpu, got, want)
		}
	}
	fpn := c.FramesPerNode()
	if got := c.NodeOfFrame(mem.PFN(fpn)); got != 1 {
		t.Errorf("NodeOfFrame(framesPerNode) = %v, want 1", got)
	}
	if got := c.NodeOfFrame(0); got != 0 {
		t.Errorf("NodeOfFrame(0) = %v, want 0", got)
	}
}

func TestCopyCostAblation(t *testing.T) {
	c := CCNUMA()
	if c.CopyCost() != c.Kernel.PageCopyCPU {
		t.Error("default copy cost should be the processor bcopy")
	}
	c.DirCopy = true
	if c.CopyCost() != c.Kernel.PageCopyDir {
		t.Error("DirCopy should select the pipelined directory copy")
	}
	if c.Kernel.PageCopyDir >= c.Kernel.PageCopyCPU {
		t.Error("directory copy must be cheaper than bcopy (35us vs ~100us)")
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.CPUsPerNode = 0 },
		func(c *Config) { c.MemoryPerNode = 100 },
		func(c *Config) { c.L1Assoc = 0 },
		func(c *Config) { c.L1Size = mem.LineSize * 3 },
		func(c *Config) { c.TLBEntries = 63 },
		func(c *Config) { c.CycleTime = 0 },
		func(c *Config) { c.RemoteLatency = c.LocalLatency - 1 },
		func(c *Config) { c.PagesPerInterrupt = 0 },
	}
	for i, mutate := range bad {
		c := CCNUMA()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config passed validation", i)
		}
	}
}

func TestTable5CalibrationTotals(t *testing.T) {
	// Table 5 reports 395-516us end-to-end per operation. The sum of the
	// uncontended step costs must land in that band.
	k := DefaultKernelCosts()
	repl := k.InterruptEntry/4 + k.PolicyDecision + k.PageAllocBase +
		k.LinkMapRepl + k.TLBFlushWait + k.PageCopyCPU + k.PolicyEndRepl
	migr := k.InterruptEntry/4 + k.PolicyDecision + k.PageAllocBase +
		k.LinkMapMigr + k.TLBFlushWait + k.PageCopyCPU + k.PolicyEndMigr
	if repl < 300*sim.Microsecond || repl > 600*sim.Microsecond {
		t.Errorf("uncontended replication cost %v outside Table 5 band", repl)
	}
	if migr < 300*sim.Microsecond || migr > 600*sim.Microsecond {
		t.Errorf("uncontended migration cost %v outside Table 5 band", migr)
	}
	if migr <= repl {
		t.Error("migration should cost more than replication (Table 5)")
	}
}
