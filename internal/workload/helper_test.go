package workload

import "ccnuma/internal/sim"

func newTestRand() *sim.Rand { return sim.NewRand(12345) }
