package workload

import (
	"fmt"

	"ccnuma/internal/mem"
	"ccnuma/internal/sim"
)

// kernelLayout groups the kernel regions every workload shares: kernel text
// (wired to node 0, the boot node), per-CPU structures (PDAs, local PFDs,
// run queues — wired block-wise so each CPU's slice is local), and globally
// shared kernel data (vnode and buffer caches, scheduler state — striped).
type kernelLayout struct {
	code   Region
	percpu Region
	shared Region
}

func buildKernel(l *Layout, cpus int, scale float64) kernelLayout {
	k := kernelLayout{}
	k.code = l.NewRegion("kernel.text", scaled(64, scale), KernelRegion, true)
	k.code.WireNode = 0
	l.Regions[k.code.ID] = k.code
	k.percpu = l.NewRegion("kernel.percpu", 2*cpus, KernelRegion, true)
	k.percpu.WireStripe = true
	l.Regions[k.percpu.ID] = k.percpu
	k.shared = l.NewRegion("kernel.shared", scaled(32, scale), KernelRegion, true)
	k.shared.WireStripe = true
	l.Regions[k.shared.ID] = k.shared
	return k
}

// kernelSide builds one process's kernel-mode sources over the shared
// kernel regions. kstack, if non-nil, is the process's private kernel stack.
func kernelSide(k kernelLayout, cpus int, kstack *Region) (*CodeWalk, []Source, []float64) {
	code := &CodeWalk{Reg: k.code, HotFrac: 0.98, HotLines: 64, LoopLines: 512, JumpEvery: 2048}
	srcs := []Source{
		&PerCPU{Reg: k.percpu, CPUs: cpus, WriteFrac: 0.5},
		&Hot{Reg: k.shared, WriteFrac: 0.35, Stride: 3},
	}
	weights := []float64{0.45, 0.35}
	if kstack != nil {
		srcs = append(srcs, &Sequential{Reg: *kstack, WriteFrac: 0.6})
		weights = append(weights, 0.20)
	}
	return code, srcs, weights
}

// Engineering builds the multiprogrammed engineering workload: six copies of
// a VCS-like compiled-circuit simulator (a very large shared text segment
// walked cyclically — the source of the 34% instruction stall) and six
// copies of a Flashlite-like functional simulator (streaming private data
// larger than the L2). Twelve sequential processes on eight CPUs under
// affinity scheduling: load-balancing moves strand private data on old
// nodes (migration fixes it) while the shared text of the six instances is
// the replication opportunity.
func Engineering(scale float64, seed uint64) *Spec {
	const cpus = 8
	r := sim.NewRand(seed)
	l := &Layout{}
	k := buildKernel(l, cpus, scale)

	vcsCode := l.NewRegion("vcs.text", scaled(256, scale), CodeRegion, true)
	flCode := l.NewRegion("flashlite.text", scaled(64, scale), CodeRegion, true)

	s := &Spec{
		Name:     "engineering",
		Sched:    SchedAffinity,
		Duration: 400 * sim.Millisecond,
		Trigger:  96, // the paper tunes engineering to 96 (Section 7)
	}
	for i := 0; i < 6; i++ {
		data := l.NewRegion(fmt.Sprintf("vcs%d.data", i), scaled(160, scale), DataRegion, false)
		kc, kd, kw := kernelSide(k, cpus, nil)
		g := &Gen{
			// The compiled-circuit text is walked cyclically (every cold
			// fetch misses); the hot loop sets the instruction miss rate.
			Code:     &CodeWalk{Reg: vcsCode, HotFrac: 0.93, HotLines: 96},
			Data:     []Source{&Sequential{Reg: data, WriteFrac: 0.3}},
			Weights:  []float64{1},
			DataFrac: 0.6, Locality: 0.94, KLocality: 0.88,
			KCode: kc, KData: kd, KWeights: kw,
			KernelFrac: 0.05, KernelBurst: 150,
			BlockEvery: 40000, BlockDur: 700 * sim.Microsecond,
			ExitAfter: uint64(scaled(3300000, scale)),
		}
		g.Reset(r.Uint64())
		s.Procs = append(s.Procs, ProcSpec{
			Name: fmt.Sprintf("vcs%d", i), Gen: g, Pin: -1,
			Private: []Region{data},
		})
	}
	for i := 0; i < 6; i++ {
		data := l.NewRegion(fmt.Sprintf("flashlite%d.data", i), scaled(176, scale), DataRegion, false)
		kc, kd, kw := kernelSide(k, cpus, nil)
		g := &Gen{
			Code:     &CodeWalk{Reg: flCode, HotFrac: 0.9, HotLines: 96, LoopLines: 768, JumpEvery: 6000},
			Data:     []Source{&Sequential{Reg: data, WriteFrac: 0.35}},
			Weights:  []float64{1},
			DataFrac: 0.65, Locality: 0.92, KLocality: 0.88,
			KCode: kc, KData: kd, KWeights: kw,
			KernelFrac: 0.05, KernelBurst: 150,
			BlockEvery: 40000, BlockDur: 700 * sim.Microsecond,
			ExitAfter: uint64(scaled(3300000, scale)),
		}
		g.Reset(r.Uint64())
		s.Procs = append(s.Procs, ProcSpec{
			Name: fmt.Sprintf("flashlite%d", i), Gen: g, Pin: -1,
			Private: []Region{data},
		})
	}
	s.Regions = l.Regions
	s.Pages = l.Pages()
	return s
}

// Raytrace builds the single parallel application: eight workers locked to
// processors making spatially-concentrated but unstructured read-only
// accesses to a large shared scene. The master (proc 0) initialises the
// scene before the run, so first-touch strands it all on node 0 — dynamic
// replication is the fix (60% of data misses sit in read chains >= 512,
// Figure 4).
func Raytrace(scale float64, seed uint64) *Spec {
	const cpus = 8
	r := sim.NewRand(seed)
	l := &Layout{}
	k := buildKernel(l, cpus, scale)

	code := l.NewRegion("raytrace.text", scaled(48, scale), CodeRegion, true)
	scene := l.NewRegion("raytrace.scene", scaled(640, scale), DataRegion, true)
	workq := l.NewRegion("raytrace.workq", scaled(24, scale), DataRegion, true)

	s := &Spec{
		Name:     "raytrace",
		Sched:    SchedPinned,
		Duration: 400 * sim.Millisecond,
		Trigger:  128,
	}
	for i := 0; i < cpus; i++ {
		priv := l.NewRegion(fmt.Sprintf("raytrace%d.stack", i), scaled(24, scale), DataRegion, false)
		kc, kd, kw := kernelSide(k, cpus, nil)
		g := &Gen{
			Code: &CodeWalk{Reg: code, HotFrac: 0.97, HotLines: 128, LoopLines: 1024, JumpEvery: 8192},
			Data: []Source{
				// A window wider than the L2 keeps scene lines missing, so
				// the pages a worker is rendering stay hot.
				&Window{Reg: scene, W: scaled(200, scale), MoveEvery: 3000},
				&Sync{Reg: workq, WriteFrac: 0.5},
				&Sequential{Reg: priv, WriteFrac: 0.4},
			},
			Weights:  []float64{0.75, 0.08, 0.17},
			DataFrac: 0.7, Locality: 0.9, KLocality: 0.82, KDataFrac: 0.6,
			KCode: kc, KData: kd, KWeights: kw,
			KernelFrac: 0.22, KernelBurst: 250,
			BlockEvery: 200000, BlockDur: 1 * sim.Millisecond,
			ExitAfter: uint64(scaled(4000000, scale)),
		}
		g.Reset(r.Uint64())
		// Stagger each worker's window across the scene.
		g.Data[0].(*Window).base = i * scene.N / cpus
		s.Procs = append(s.Procs, ProcSpec{
			Name: fmt.Sprintf("ray%d", i), Gen: g, Pin: mem.CPUID(i),
			Private: []Region{priv},
		})
	}
	s.PreTouches = []PreTouch{{Proc: 0, Region: scene}, {Proc: 0, Region: code}}
	s.Regions = l.Regions
	s.Pages = l.Pages()
	return s
}

// Splash builds the multiprogrammed scientific workload: parallel raytrace
// and volume-rendering jobs (read-mostly shared structures, replication
// candidates) and an Ocean job (nearest-neighbour grid chunks, migration
// candidates), entering and leaving under space partitioning so jobs are
// periodically redistributed across the processors. Node memory is sized
// tightly, so replication runs into No-Page failures as in the paper
// (Table 4: 24%).
func Splash(scale float64, seed uint64) *Spec {
	const cpus = 8
	r := sim.NewRand(seed)
	l := &Layout{}
	k := buildKernel(l, cpus, scale)

	dur := 400 * sim.Millisecond

	s := &Spec{
		Name:     "splash",
		Sched:    SchedPartition,
		Duration: dur,
		Trigger:  128,
	}

	// Job 1: raytrace (present for the whole run).
	rtCode := l.NewRegion("rt.text", scaled(24, scale), CodeRegion, true)
	rtScene := l.NewRegion("rt.scene", scaled(256, scale), DataRegion, true)
	for i := 0; i < 6; i++ {
		priv := l.NewRegion(fmt.Sprintf("rt%d.data", i), scaled(16, scale), DataRegion, false)
		kc, kd, kw := kernelSide(k, cpus, nil)
		g := &Gen{
			Code: &CodeWalk{Reg: rtCode, HotFrac: 0.92, HotLines: 96, LoopLines: 512, JumpEvery: 4096},
			Data: []Source{
				&Window{Reg: rtScene, W: scaled(140, scale), MoveEvery: 2500},
				&Sequential{Reg: priv, WriteFrac: 0.4},
			},
			Weights:  []float64{0.8, 0.2},
			DataFrac: 0.65, Locality: 0.92, KLocality: 0.88,
			KCode: kc, KData: kd, KWeights: kw,
			KernelFrac: 0.12, KernelBurst: 200,
			BlockEvery: 30000, BlockDur: 1 * sim.Millisecond,
			ExitAfter: uint64(scaled(1900000, scale)),
		}
		g.Reset(r.Uint64())
		g.Data[0].(*Window).base = i * rtScene.N / 6
		s.Procs = append(s.Procs, ProcSpec{
			Name: fmt.Sprintf("splash.rt%d", i), Gen: g, Pin: -1, Job: 1,
			Private: []Region{priv},
		})
	}
	s.PreTouches = append(s.PreTouches, PreTouch{Proc: 0, Region: rtScene})

	// Job 2: volume rendering, enters at T/4.
	vrCode := l.NewRegion("volrend.text", scaled(24, scale), CodeRegion, true)
	volume := l.NewRegion("volrend.volume", scaled(224, scale), DataRegion, true)
	for i := 0; i < 6; i++ {
		priv := l.NewRegion(fmt.Sprintf("volrend%d.data", i), scaled(16, scale), DataRegion, false)
		kc, kd, kw := kernelSide(k, cpus, nil)
		g := &Gen{
			Code: &CodeWalk{Reg: vrCode, HotFrac: 0.92, HotLines: 96, LoopLines: 512, JumpEvery: 4096},
			Data: []Source{
				&Window{Reg: volume, W: scaled(130, scale), MoveEvery: 2500},
				&Sequential{Reg: priv, WriteFrac: 0.4},
			},
			Weights:  []float64{0.8, 0.2},
			DataFrac: 0.65, Locality: 0.92, KLocality: 0.88,
			KCode: kc, KData: kd, KWeights: kw,
			KernelFrac: 0.12, KernelBurst: 200,
			BlockEvery: 30000, BlockDur: 1 * sim.Millisecond,
			ExitAfter: uint64(scaled(1400000, scale)),
		}
		g.Reset(r.Uint64())
		g.Data[0].(*Window).base = i * volume.N / 6
		s.Procs = append(s.Procs, ProcSpec{
			Name: fmt.Sprintf("splash.vr%d", i), Gen: g, Pin: -1, Job: 2,
			StartAt: dur / 4,
			Private: []Region{priv},
		})
	}

	// Job 3: Ocean — chunked grid, leaves at 3T/4.
	ocCode := l.NewRegion("ocean.text", scaled(16, scale), CodeRegion, true)
	grid := l.NewRegion("ocean.grid", scaled(640, scale), DataRegion, true)
	for i := 0; i < 4; i++ {
		kc, kd, kw := kernelSide(k, cpus, nil)
		g := &Gen{
			Code: &CodeWalk{Reg: ocCode, HotFrac: 0.93, HotLines: 96, LoopLines: 384, JumpEvery: 4096},
			Data: []Source{
				// Each chunk (grid/4) exceeds the L2, so a process's slice
				// keeps missing — the migration opportunity.
				&Chunk{Reg: grid, Index: i, Total: 4, BoundaryFrac: 0.04, WriteFrac: 0.35},
			},
			Weights:  []float64{1},
			DataFrac: 0.7, Locality: 0.9, KLocality: 0.88,
			KCode: kc, KData: kd, KWeights: kw,
			KernelFrac: 0.12, KernelBurst: 200,
			BlockEvery: 30000, BlockDur: 1 * sim.Millisecond,
			ExitAfter: uint64(scaled(1800000, scale)),
		}
		g.Reset(r.Uint64())
		s.Procs = append(s.Procs, ProcSpec{
			Name: fmt.Sprintf("splash.ocean%d", i), Gen: g, Pin: -1, Job: 3,
		})
	}

	s.Regions = l.Regions
	s.Pages = l.Pages()
	// Tight node memory: total footprint fits comfortably machine-wide, but
	// replication exhausts individual nodes (Section 7.1.1, Splash).
	perNode := int64(s.Pages/cpus+scaled(110, scale)) * mem.PageSize
	s.MemoryPerNode = perNode
	return s
}

// Database builds the decision-support workload: four Sybase-like engines
// locked to the processors of a four-node machine. Ninety percent of the
// data misses hit a small set of fine-grain write-shared synchronization
// pages (no policy can help them; the decision tree must say no), and about
// ten percent hit read-mostly relation pages.
func Database(scale float64, seed uint64) *Spec {
	const cpus = 4
	r := sim.NewRand(seed)
	l := &Layout{}
	k := buildKernel(l, cpus, scale)

	code := l.NewRegion("sybase.text", scaled(64, scale), CodeRegion, true)
	relations := l.NewRegion("sybase.relations", scaled(384, scale), DataRegion, true)
	syncPgs := l.NewRegion("sybase.sync", scaled(20, scale), DataRegion, true)

	s := &Spec{
		Name:     "database",
		Sched:    SchedPinned,
		Duration: 400 * sim.Millisecond,
		Trigger:  128,
		Nodes:    cpus,
	}
	for i := 0; i < cpus; i++ {
		priv := l.NewRegion(fmt.Sprintf("engine%d.data", i), scaled(24, scale), DataRegion, false)
		kc, kd, kw := kernelSide(k, cpus, nil)
		g := &Gen{
			Code: &CodeWalk{Reg: code, HotFrac: 0.95, HotLines: 96, LoopLines: 256, JumpEvery: 2048},
			Data: []Source{
				&Sync{Reg: syncPgs, WriteFrac: 0.55},
				&Hot{Reg: relations, WriteFrac: 0.02, Stride: 7},
				&Sequential{Reg: priv, WriteFrac: 0.4},
			},
			Weights:  []float64{0.82, 0.12, 0.06},
			DataFrac: 0.75, Locality: 0.85, KLocality: 0.88,
			KCode: kc, KData: kd, KWeights: kw,
			KernelFrac: 0.07, KernelBurst: 150,
			BlockEvery: 50000, BlockDur: 2 * sim.Millisecond,
			ExitAfter: uint64(scaled(3000000, scale)),
		}
		g.Reset(r.Uint64())
		s.Procs = append(s.Procs, ProcSpec{
			Name: fmt.Sprintf("engine%d", i), Gen: g, Pin: mem.CPUID(i),
			Private: []Region{priv},
		})
	}
	s.PreTouches = []PreTouch{{Proc: 0, Region: relations}, {Proc: 0, Region: syncPgs}}
	s.Regions = l.Regions
	s.Pages = l.Pages()
	return s
}

// Pmake builds the software-development workload: sixteen compile slots
// (four four-way parallel makes) of short-lived processes under affinity
// scheduling, blocking on I/O and respawning on exit. The bulk of the
// memory stall is kernel: per-CPU structures (local by construction),
// write-shared kernel data (unhelpable), and kernel text (the only
// replication opportunity, ~12% of kernel misses — Section 8.2).
func Pmake(scale float64, seed uint64) *Spec {
	const cpus = 8
	r := sim.NewRand(seed)
	l := &Layout{}
	k := buildKernel(l, cpus, scale)

	ccCode := l.NewRegion("cc.text", scaled(48, scale), CodeRegion, true)

	s := &Spec{
		Name:     "pmake",
		Sched:    SchedAffinity,
		Duration: 400 * sim.Millisecond,
		Trigger:  128,
	}
	for i := 0; i < 16; i++ {
		priv := l.NewRegion(fmt.Sprintf("cc%d.data", i), scaled(24, scale), DataRegion, false)
		kstack := l.NewRegion(fmt.Sprintf("cc%d.kstack", i), 2, DataRegion, false)
		kc, kd, kw := kernelSide(k, cpus, &kstack)
		g := &Gen{
			Code: &CodeWalk{Reg: ccCode, HotFrac: 0.98, HotLines: 96, LoopLines: 640, JumpEvery: 3000},
			Data: []Source{
				&Sequential{Reg: priv, WriteFrac: 0.5},
			},
			Weights:  []float64{1},
			DataFrac: 0.5, Locality: 0.93, KLocality: 0.8,
			KCode: kc, KData: kd, KWeights: kw,
			KernelFrac: 0.55, KernelBurst: 400,
			BlockEvery: 10000, BlockDur: 600 * sim.Microsecond,
			ExitAfter: uint64(scaled(450000, scale)),
		}
		g.Reset(r.Uint64())
		s.Procs = append(s.Procs, ProcSpec{
			Name: fmt.Sprintf("cc%d", i), Gen: g, Pin: -1, Job: i / 4,
			Respawn: true, MaxRespawns: 3,
			Private: []Region{priv, kstack},
		})
	}
	s.Regions = l.Regions
	s.Pages = l.Pages()
	return s
}
