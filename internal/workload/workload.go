// Package workload models the five compute-server workloads of Table 2 as
// synthetic reference generators. The paper's results hinge on the sharing
// structure of pages — private data, read-mostly shared data, write-shared
// data, shared code — and on how the scheduler moves processes, not on
// application semantics, so each workload is assembled from access-pattern
// sources that reproduce those classes at footprints matching Table 3
// (scaled; see DESIGN.md).
package workload

import (
	"fmt"

	"ccnuma/internal/mem"
	"ccnuma/internal/sim"
)

// StepKind classifies a generator step.
type StepKind uint8

const (
	// StepAccess is one memory reference.
	StepAccess StepKind = iota
	// StepBlock suspends the process (I/O, synchronization, think time).
	StepBlock
	// StepExit terminates the process.
	StepExit
)

// Step is one unit of process behaviour.
type Step struct {
	Kind   StepKind
	Page   mem.GPage
	Line   uint8
	Access mem.AccessKind
	Kernel bool
	Dur    sim.Time // block duration for StepBlock
}

// RegionKind classifies a mapped region.
type RegionKind uint8

const (
	// CodeRegion holds instructions.
	CodeRegion RegionKind = iota
	// DataRegion holds data.
	DataRegion
	// KernelRegion holds kernel code or data (wired at boot).
	KernelRegion
)

// Region is a contiguous range of logical pages.
type Region struct {
	ID    mem.RegionID
	Name  string
	Start mem.GPage
	N     int
	Kind  RegionKind
	// Shared regions are mapped by several processes.
	Shared bool
	// WireNode >= 0 wires the region's pages to a node at boot (kernel
	// regions). WireStripe wires page i to node i mod nodes instead.
	WireNode   int
	WireStripe bool
}

// Page returns the i-th page of the region. The out-of-range panic lives in
// a separate function so Page itself stays within the inlining budget — it
// runs once per generated reference.
func (r Region) Page(i int) mem.GPage {
	if i < 0 || i >= r.N {
		r.pageOutOfRange(i)
	}
	return r.Start + mem.GPage(i)
}

func (r Region) pageOutOfRange(i int) {
	panic(fmt.Sprintf("workload: page %d outside region %s (%d pages)", i, r.Name, r.N))
}

// Layout hands out dense page ranges.
type Layout struct {
	next    mem.GPage
	Regions []Region
}

// NewRegion appends a region of n pages.
func (l *Layout) NewRegion(name string, n int, kind RegionKind, shared bool) Region {
	if n <= 0 {
		panic("workload: empty region " + name)
	}
	r := Region{
		ID:       mem.RegionID(len(l.Regions)),
		Name:     name,
		Start:    l.next,
		N:        n,
		Kind:     kind,
		Shared:   shared,
		WireNode: -1,
	}
	l.next += mem.GPage(n)
	l.Regions = append(l.Regions, r)
	return r
}

// Pages returns the total number of pages laid out.
func (l *Layout) Pages() int { return int(l.next) }

// Generator produces a process's step stream. Next receives the CPU the
// process is currently running on (per-CPU kernel structures depend on it).
type Generator interface {
	Next(cpu mem.CPUID) Step
	// Reset re-seeds the generator for a respawned process.
	Reset(seed uint64)
}

// SchedKind selects the scheduling discipline (Section 6).
type SchedKind int

const (
	// SchedAffinity is UNIX priority scheduling with cache affinity.
	SchedAffinity SchedKind = iota
	// SchedPinned locks each process to a processor.
	SchedPinned
	// SchedPartition is space partitioning (scheduler activations).
	SchedPartition
)

// ProcSpec describes one process.
type ProcSpec struct {
	Name string
	Gen  Generator
	// Pin >= 0 fixes the process to that CPU (pinned scheduling).
	Pin mem.CPUID
	// Job groups processes for space partitioning.
	Job int
	// StartAt delays the process's arrival (Splash jobs enter over time).
	StartAt sim.Time
	// ExitAt forces the process to leave at that time (0 = never). Its job
	// departing triggers repartitioning.
	ExitAt sim.Time
	// Respawn recreates the process (fresh ProcID, reset generator, private
	// pages released) whenever it exits — the pmake process churn.
	Respawn bool
	// MaxRespawns bounds the churn so the workload completes (0 with
	// Respawn set means unbounded; the run then ends at the duration cap).
	MaxRespawns int
	// Private regions are released when the process exits.
	Private []Region
}

// PreTouch records that a process initialises a region before the run
// starts: the master touching all shared data at startup is what strands
// pages on one node under first-touch placement.
type PreTouch struct {
	Proc   int // index into Spec.Procs
	Region Region
}

// Spec is a complete workload description.
type Spec struct {
	Name    string
	Regions []Region
	Pages   int
	Procs   []ProcSpec
	Sched   SchedKind
	// PreTouches run before the clock starts.
	PreTouches []PreTouch
	// Duration is the default simulated run length.
	Duration sim.Time
	// Trigger is the paper's per-workload trigger threshold (Section 7: 96
	// for engineering, 128 for the others).
	Trigger uint16
	// Nodes overrides the machine's node count (the database runs on four
	// processors). Zero keeps the configured machine.
	Nodes int
	// MemoryPerNode overrides per-node memory (the Splash workload runs
	// close to the per-node capacity, producing No-Page failures). Zero
	// keeps the configured machine.
	MemoryPerNode int64
}

// Validate reports the first inconsistency in the spec.
func (s *Spec) Validate() error {
	if s.Pages <= 0 {
		return fmt.Errorf("workload %s: no pages", s.Name)
	}
	if len(s.Procs) == 0 {
		return fmt.Errorf("workload %s: no processes", s.Name)
	}
	for i, p := range s.Procs {
		if p.Gen == nil {
			return fmt.Errorf("workload %s: proc %d (%s) has no generator", s.Name, i, p.Name)
		}
	}
	for _, pt := range s.PreTouches {
		if pt.Proc < 0 || pt.Proc >= len(s.Procs) {
			return fmt.Errorf("workload %s: pretouch proc %d out of range", s.Name, pt.Proc)
		}
	}
	if s.Duration <= 0 {
		return fmt.Errorf("workload %s: no duration", s.Name)
	}
	if s.Trigger == 0 {
		return fmt.Errorf("workload %s: no trigger threshold", s.Name)
	}
	return nil
}

// Builder constructs a workload at a given scale. Scale 1.0 is the default
// experiment size; tests use smaller scales.
type Builder func(scale float64, seed uint64) *Spec

// ByName returns the builder for one of the five paper workloads.
func ByName(name string) (Builder, error) {
	switch name {
	case "engineering", "engr":
		return Engineering, nil
	case "raytrace":
		return Raytrace, nil
	case "splash":
		return Splash, nil
	case "database", "db":
		return Database, nil
	case "pmake":
		return Pmake, nil
	}
	return nil, fmt.Errorf("workload: unknown workload %q", name)
}

// Names lists the five workloads in the paper's order.
func Names() []string {
	return []string{"engineering", "raytrace", "splash", "database", "pmake"}
}

func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 1 {
		v = 1
	}
	return v
}
