package workload

import (
	"ccnuma/internal/mem"
	"ccnuma/internal/sim"
)

// Source generates data references within a region. Sources are the access-
// pattern building blocks: the sharing class of a page is determined by
// which processes attach sources to its region and with what write mix.
type Source interface {
	next(r *sim.Rand, cpu mem.CPUID) (page mem.GPage, line uint8, kind mem.AccessKind)
}

func kindFor(r *sim.Rand, writeFrac float64) mem.AccessKind {
	if writeFrac > 0 && r.Bool(writeFrac) {
		return mem.DataWrite
	}
	return mem.DataRead
}

// Sequential walks the region line by line, wrapping — the streaming access
// of simulators and numeric kernels. Good spatial locality, footprint-bound
// cache behaviour.
type Sequential struct {
	Reg       Region
	WriteFrac float64
	pos       int // line index within region
}

func (s *Sequential) next(r *sim.Rand, _ mem.CPUID) (mem.GPage, uint8, mem.AccessKind) {
	p := s.Reg.Page(s.pos / mem.LinesPerPage)
	l := uint8(s.pos % mem.LinesPerPage)
	s.pos++
	if s.pos >= s.Reg.N*mem.LinesPerPage {
		s.pos = 0
	}
	return p, l, kindFor(r, s.WriteFrac)
}

// Window accesses pages uniformly inside a window that drifts slowly across
// the region — the spatially concentrated but unstructured access of
// raytrace over its scene. The drift makes successive windows of pages hot
// in turn, which is what crosses the policy's trigger threshold.
type Window struct {
	Reg       Region
	W         int // window width in pages
	MoveEvery int // accesses between one-page drifts
	WriteFrac float64
	base      int
	count     int
}

func (s *Window) next(r *sim.Rand, _ mem.CPUID) (mem.GPage, uint8, mem.AccessKind) {
	w := s.W
	if w > s.Reg.N {
		w = s.Reg.N
	}
	// base and the draw are both < N, so a conditional subtract stands in
	// for the per-access modulo.
	idx := s.base + r.Intn(w)
	if idx >= s.Reg.N {
		idx -= s.Reg.N
	}
	p := s.Reg.Page(idx)
	s.count++
	if s.MoveEvery > 0 && s.count >= s.MoveEvery {
		s.count = 0
		s.base = (s.base + 1) % s.Reg.N
	}
	return p, uint8(r.Intn(mem.LinesPerPage)), kindFor(r, s.WriteFrac)
}

// Hot draws pages Zipf-distributed over the region — skewed shared access
// (database relations, volume data). The head of the distribution goes hot.
type Hot struct {
	Reg       Region
	WriteFrac float64
	// Stride scatters the Zipf head across the region so that co-resident
	// sources don't all hammer page 0.
	Stride int
}

func (s *Hot) next(r *sim.Rand, _ mem.CPUID) (mem.GPage, uint8, mem.AccessKind) {
	i := r.Zipf(s.Reg.N)
	if s.Stride > 1 {
		i = (i * s.Stride) % s.Reg.N
	}
	return s.Reg.Page(i), uint8(r.Intn(mem.LinesPerPage)), kindFor(r, s.WriteFrac)
}

// Chunk confines a process to its slice of a shared grid with occasional
// boundary references into the neighbouring slices — Ocean's nearest-
// neighbour communication. The chunk's interior behaves like private data
// (migration candidate); the boundary is lightly shared.
type Chunk struct {
	Reg          Region
	Index, Total int
	BoundaryFrac float64
	WriteFrac    float64
	pos          int
}

func (s *Chunk) bounds() (lo, n int) {
	per := s.Reg.N / s.Total
	if per == 0 {
		per = 1
	}
	lo = s.Index * per
	n = per
	if s.Index == s.Total-1 {
		n = s.Reg.N - lo
	}
	if lo >= s.Reg.N {
		lo, n = s.Reg.N-1, 1
	}
	return lo, n
}

func (s *Chunk) next(r *sim.Rand, _ mem.CPUID) (mem.GPage, uint8, mem.AccessKind) {
	lo, n := s.bounds()
	var idx int
	if s.BoundaryFrac > 0 && r.Bool(s.BoundaryFrac) {
		// Touch a neighbour's edge page.
		if s.Index > 0 && (s.Index == s.Total-1 || r.Bool(0.5)) {
			idx = lo - 1
		} else {
			idx = lo + n
		}
		if idx < 0 || idx >= s.Reg.N {
			idx = lo
		}
	} else {
		idx = lo + s.pos%n
		s.pos++
	}
	// Walk lines sequentially within the chunk for realistic locality.
	return s.Reg.Page(idx), uint8(s.pos % mem.LinesPerPage), kindFor(r, s.WriteFrac)
}

// Sync models fine-grain write-shared pages (the database's synchronization
// pages): a small page set, uniform access, high write fraction. These pages
// must never profit from replication or migration.
type Sync struct {
	Reg       Region
	WriteFrac float64
}

func (s *Sync) next(r *sim.Rand, _ mem.CPUID) (mem.GPage, uint8, mem.AccessKind) {
	return s.Reg.Page(r.Intn(s.Reg.N)), uint8(r.Intn(mem.LinesPerPage)), kindFor(r, s.WriteFrac)
}

// PerCPU accesses the sub-range of the region belonging to the CPU the
// process is running on — per-processor kernel structures (PDAs, local run
// queues, per-node page-frame descriptors). First-touch/wiring makes these
// local, which is why FT beats RR for kernel data (Section 8.2).
type PerCPU struct {
	Reg       Region
	CPUs      int
	WriteFrac float64
	pos       int
}

func (s *PerCPU) next(r *sim.Rand, cpu mem.CPUID) (mem.GPage, uint8, mem.AccessKind) {
	per := s.Reg.N / s.CPUs
	if per == 0 {
		per = 1
	}
	lo := int(cpu) * per % s.Reg.N
	idx := lo + r.Intn(per)
	if idx >= s.Reg.N {
		idx = s.Reg.N - 1
	}
	s.pos++
	return s.Reg.Page(idx), uint8(s.pos % mem.LinesPerPage), kindFor(r, s.WriteFrac)
}

// CodeWalk emits instruction fetches. A HotFrac fraction of fetches cycle
// through a small hot loop (cache-resident inner loops); the rest walk the
// region sequentially with occasional jumps (calls, phase changes). A cold
// walk over a footprint larger than the L2 produces the sustained
// instruction misses of the VCS workload; HotFrac sets the miss rate.
type CodeWalk struct {
	Reg Region
	// HotFrac of fetches stay inside a HotLines-long loop at the current
	// position (defaults: 0, 64).
	HotFrac  float64
	HotLines int
	// LoopLines is the cold window the walker loops over before jumping
	// (0 = the whole region).
	LoopLines int
	// JumpEvery is the number of cold fetches between window changes
	// (0 = never jump).
	JumpEvery int
	base      int
	pos       int
	hotPos    int
	count     int
}

func (s *CodeWalk) next(r *sim.Rand, _ mem.CPUID) (mem.GPage, uint8, mem.AccessKind) {
	total := s.Reg.N * mem.LinesPerPage
	if s.HotFrac > 0 && r.Bool(s.HotFrac) {
		hot := s.HotLines
		if hot <= 0 {
			hot = 64
		}
		if hot > total {
			hot = total
		}
		// base < total and hotPos < hot <= total, so one conditional
		// subtract replaces the modulo (an idiv on every hot fetch).
		line := s.base + s.hotPos
		if line >= total {
			line -= total
		}
		s.hotPos++
		if s.hotPos >= hot {
			s.hotPos = 0
		}
		return s.Reg.Page(line / mem.LinesPerPage), uint8(line % mem.LinesPerPage), mem.InstrFetch
	}
	loop := s.LoopLines
	if loop <= 0 || loop > total {
		loop = total
	}
	line := s.base + s.pos
	if line >= total {
		line -= total
	}
	s.pos++
	if s.pos >= loop {
		s.pos = 0
	}
	s.count++
	if s.JumpEvery > 0 && s.count >= s.JumpEvery {
		s.count = 0
		s.base = r.Intn(total)
		s.hotPos = 0
	}
	return s.Reg.Page(line / mem.LinesPerPage), uint8(line % mem.LinesPerPage), mem.InstrFetch
}

// weighted selects among sources with fixed weights.
type weighted struct {
	srcs []Source
	cum  []float64
}

func newWeighted(srcs []Source, weights []float64) *weighted {
	if len(srcs) != len(weights) || len(srcs) == 0 {
		panic("workload: bad weighted source")
	}
	w := &weighted{srcs: srcs, cum: make([]float64, len(weights))}
	sum := 0.0
	for i, x := range weights {
		sum += x
		w.cum[i] = sum
	}
	for i := range w.cum {
		w.cum[i] /= sum
	}
	return w
}

func (w *weighted) pick(r *sim.Rand) Source {
	u := r.Float64()
	for i, c := range w.cum {
		if u < c {
			return w.srcs[i]
		}
	}
	return w.srcs[len(w.srcs)-1]
}
