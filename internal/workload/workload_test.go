package workload

import (
	"testing"

	"ccnuma/internal/mem"
)

func TestAllWorkloadsBuildAndValidate(t *testing.T) {
	for _, name := range Names() {
		build, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		spec := build(0.3, 7)
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if spec.Pages <= 0 || spec.Pages > 1<<20 {
			t.Errorf("%s: %d pages", name, spec.Pages)
		}
		// Regions must tile [0, Pages) without overlap.
		covered := 0
		for _, r := range spec.Regions {
			covered += r.N
		}
		if covered != spec.Pages {
			t.Errorf("%s: regions cover %d of %d pages", name, covered, spec.Pages)
		}
	}
}

func TestByNameAliases(t *testing.T) {
	for _, alias := range []string{"engr", "db"} {
		if _, err := ByName(alias); err != nil {
			t.Errorf("alias %q rejected: %v", alias, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestLayoutDensePages(t *testing.T) {
	l := &Layout{}
	a := l.NewRegion("a", 10, DataRegion, false)
	b := l.NewRegion("b", 5, CodeRegion, true)
	if a.Start != 0 || b.Start != 10 || l.Pages() != 15 {
		t.Fatalf("layout: a=%d b=%d pages=%d", a.Start, b.Start, l.Pages())
	}
	if a.Page(9) != 9 || b.Page(0) != 10 {
		t.Fatal("page addressing wrong")
	}
}

func TestRegionPageBoundsPanic(t *testing.T) {
	l := &Layout{}
	r := l.NewRegion("a", 3, DataRegion, false)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Page did not panic")
		}
	}()
	r.Page(3)
}

func TestGeneratorsStayInBounds(t *testing.T) {
	for _, name := range Names() {
		build, _ := ByName(name)
		spec := build(0.3, 3)
		for pi := range spec.Procs {
			g := spec.Procs[pi].Gen
			for i := 0; i < 20000; i++ {
				st := g.Next(mem.CPUID(i % 8))
				if st.Kind != StepAccess {
					continue
				}
				if int(st.Page) >= spec.Pages {
					t.Fatalf("%s proc %d: page %d out of %d", name, pi, st.Page, spec.Pages)
				}
			}
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	build, _ := ByName("raytrace")
	s1 := build(0.3, 99)
	s2 := build(0.3, 99)
	g1, g2 := s1.Procs[2].Gen, s2.Procs[2].Gen
	for i := 0; i < 5000; i++ {
		a, b := g1.Next(2), g2.Next(2)
		if a != b {
			t.Fatalf("step %d diverged: %+v vs %+v", i, a, b)
		}
	}
}

func TestGenExitAfter(t *testing.T) {
	l := &Layout{}
	code := l.NewRegion("c", 4, CodeRegion, true)
	data := l.NewRegion("d", 4, DataRegion, false)
	g := &Gen{
		Code:      &CodeWalk{Reg: code},
		Data:      []Source{&Sequential{Reg: data}},
		Weights:   []float64{1},
		ExitAfter: 100,
	}
	g.Reset(1)
	exits := 0
	for i := 0; i < 300; i++ {
		if g.Next(0).Kind == StepExit {
			exits++
		}
	}
	if exits != 200 { // every step after the budget is an exit
		t.Fatalf("exit steps = %d", exits)
	}
}

func TestGenBlocks(t *testing.T) {
	l := &Layout{}
	code := l.NewRegion("c", 4, CodeRegion, true)
	data := l.NewRegion("d", 4, DataRegion, false)
	g := &Gen{
		Code:       &CodeWalk{Reg: code},
		Data:       []Source{&Sequential{Reg: data}},
		Weights:    []float64{1},
		BlockEvery: 50,
		BlockDur:   1000,
	}
	g.Reset(1)
	blocks := 0
	for i := 0; i < 10000; i++ {
		st := g.Next(0)
		if st.Kind == StepBlock {
			blocks++
			if st.Dur <= 0 {
				t.Fatal("non-positive block duration")
			}
		}
	}
	if blocks < 100 || blocks > 400 {
		t.Fatalf("blocks = %d, want ~200", blocks)
	}
}

func TestGenKernelFraction(t *testing.T) {
	l := &Layout{}
	code := l.NewRegion("c", 4, CodeRegion, true)
	data := l.NewRegion("d", 4, DataRegion, false)
	kcode := l.NewRegion("kc", 4, KernelRegion, true)
	kdata := l.NewRegion("kd", 4, KernelRegion, true)
	g := &Gen{
		Code:     &CodeWalk{Reg: code},
		Data:     []Source{&Sequential{Reg: data}},
		Weights:  []float64{1},
		KCode:    &CodeWalk{Reg: kcode},
		KData:    []Source{&Sequential{Reg: kdata}},
		KWeights: []float64{1}, KernelFrac: 0.4, KernelBurst: 50,
	}
	g.Reset(1)
	kernel := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if g.Next(0).Kernel {
			kernel++
		}
	}
	frac := float64(kernel) / n
	if frac < 0.3 || frac > 0.5 {
		t.Fatalf("kernel fraction = %v, want ~0.4", frac)
	}
}

func TestSourcesRespectRegions(t *testing.T) {
	l := &Layout{}
	reg := l.NewRegion("r", 8, DataRegion, true)
	srcs := []Source{
		&Sequential{Reg: reg, WriteFrac: 0.5},
		&Window{Reg: reg, W: 3, MoveEvery: 5, WriteFrac: 0.1},
		&Hot{Reg: reg, WriteFrac: 0.2, Stride: 3},
		&Chunk{Reg: reg, Index: 1, Total: 3, BoundaryFrac: 0.2, WriteFrac: 0.3},
		&Sync{Reg: reg, WriteFrac: 0.6},
		&PerCPU{Reg: reg, CPUs: 4, WriteFrac: 0.5},
	}
	r := newTestRand()
	for si, src := range srcs {
		for i := 0; i < 5000; i++ {
			page, line, kind := src.next(r, mem.CPUID(i%4))
			if page < reg.Start || page >= reg.Start+mem.GPage(reg.N) {
				t.Fatalf("source %d: page %d outside region", si, page)
			}
			if int(line) >= mem.LinesPerPage {
				t.Fatalf("source %d: line %d", si, line)
			}
			if kind == mem.InstrFetch {
				t.Fatalf("source %d: data source produced an ifetch", si)
			}
		}
	}
}

func TestCodeWalkEmitsFetchesInBounds(t *testing.T) {
	l := &Layout{}
	reg := l.NewRegion("c", 6, CodeRegion, true)
	w := &CodeWalk{Reg: reg, HotFrac: 0.5, HotLines: 32, LoopLines: 64, JumpEvery: 100}
	r := newTestRand()
	for i := 0; i < 10000; i++ {
		page, _, kind := w.next(r, 0)
		if kind != mem.InstrFetch {
			t.Fatal("code walk produced non-ifetch")
		}
		if page < reg.Start || page >= reg.Start+mem.GPage(reg.N) {
			t.Fatalf("fetch outside region: %d", page)
		}
	}
}

func TestChunkDisjointInteriors(t *testing.T) {
	l := &Layout{}
	reg := l.NewRegion("grid", 12, DataRegion, true)
	r := newTestRand()
	seen := map[int]map[mem.GPage]bool{}
	for idx := 0; idx < 4; idx++ {
		c := &Chunk{Reg: reg, Index: idx, Total: 4} // no boundary traffic
		seen[idx] = map[mem.GPage]bool{}
		for i := 0; i < 2000; i++ {
			p, _, _ := c.next(r, 0)
			seen[idx][p] = true
		}
	}
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			for p := range seen[a] {
				if seen[b][p] {
					t.Fatalf("chunks %d and %d share page %d without boundary traffic", a, b, p)
				}
			}
		}
	}
}

func TestScaled(t *testing.T) {
	if scaled(100, 0.5) != 50 || scaled(1, 0.01) != 1 || scaled(10, 2) != 20 {
		t.Fatal("scaled() wrong")
	}
}
