package workload

import (
	"ccnuma/internal/mem"
	"ccnuma/internal/sim"
)

// Gen is the configurable process generator: it interleaves instruction
// fetches with data references drawn from weighted sources, alternates
// between user and kernel phases (syscall bursts), blocks periodically
// (I/O, think time), and optionally exits after a fixed amount of work.
type Gen struct {
	// Code is the user instruction stream (required).
	Code *CodeWalk
	// Data are the user data sources with their mix weights (required).
	Data    []Source
	Weights []float64
	// DataFrac is the fraction of references that are data accesses.
	DataFrac float64

	// Kernel behaviour: KernelFrac of references execute in kernel mode, in
	// bursts of mean KernelBurst references (a syscall's worth of work).
	KCode       *CodeWalk
	KData       []Source
	KWeights    []float64
	KDataFrac   float64
	KernelFrac  float64
	KernelBurst int

	// Locality is the probability that a data reference repeats the last
	// data line touched (temporal locality; repeats usually hit the cache,
	// so 1-Locality scales the distinct-line rate). KLocality is the kernel
	// analogue.
	Locality  float64
	KLocality float64

	// Blocking: the process blocks for ~BlockDur every ~BlockEvery
	// references. Zero disables.
	BlockEvery int
	BlockDur   sim.Time

	// ExitAfter terminates the process after that many references (zero:
	// runs until the deadline).
	ExitAfter uint64

	r         *sim.Rand
	count     uint64
	inKernel  bool
	phaseLeft int
	nextBlock int
	data      *weighted
	kdata     *weighted
	lastU     [2]uint32 // last user data (page, line)
	lastK     [2]uint32 // last kernel data (page, line)
	haveU     bool
	haveK     bool
}

// Reset seeds the generator; it must be called before first use (the
// machine calls it when the process is created or respawned).
func (g *Gen) Reset(seed uint64) {
	g.r = sim.NewRand(seed)
	g.count = 0
	g.inKernel = false
	g.phaseLeft = 0
	g.nextBlock = 0
	g.haveU, g.haveK = false, false
	g.data = newWeighted(g.Data, g.Weights)
	if len(g.KData) > 0 {
		g.kdata = newWeighted(g.KData, g.KWeights)
	}
	if g.DataFrac <= 0 {
		g.DataFrac = 0.35
	}
	if g.KDataFrac <= 0 {
		g.KDataFrac = 0.5
	}
	if g.KernelBurst <= 0 {
		g.KernelBurst = 200
	}
}

// Next produces the process's next step while running on cpu.
func (g *Gen) Next(cpu mem.CPUID) Step {
	g.count++
	if g.ExitAfter > 0 && g.count > g.ExitAfter {
		return Step{Kind: StepExit}
	}
	if g.BlockEvery > 0 {
		g.nextBlock--
		if g.nextBlock <= 0 {
			g.nextBlock = 1 + g.r.Geometric(float64(g.BlockEvery))
			d := sim.Time(float64(g.BlockDur) * (0.5 + g.r.Float64()))
			return Step{Kind: StepBlock, Dur: d}
		}
	}

	// User/kernel phase alternation.
	if g.KernelFrac > 0 && g.kdata != nil {
		g.phaseLeft--
		if g.phaseLeft <= 0 {
			if g.inKernel {
				g.inKernel = false
				userMean := float64(g.KernelBurst) * (1 - g.KernelFrac) / g.KernelFrac
				g.phaseLeft = 1 + g.r.Geometric(userMean)
			} else {
				g.inKernel = true
				g.phaseLeft = 1 + g.r.Geometric(float64(g.KernelBurst))
			}
		}
	}

	st := Step{Kind: StepAccess, Kernel: g.inKernel}
	if g.inKernel {
		if g.r.Bool(g.KDataFrac) {
			if g.haveK && g.KLocality > 0 && g.r.Bool(g.KLocality) {
				st.Page, st.Line, st.Access = mem.GPage(g.lastK[0]), uint8(g.lastK[1]), mem.DataRead
				return st
			}
			st.Page, st.Line, st.Access = g.kdata.pick(g.r).next(g.r, cpu)
			g.lastK = [2]uint32{uint32(st.Page), uint32(st.Line)}
			g.haveK = true
		} else {
			st.Page, st.Line, st.Access = g.KCode.next(g.r, cpu)
		}
		return st
	}
	if g.r.Bool(g.DataFrac) {
		if g.haveU && g.Locality > 0 && g.r.Bool(g.Locality) {
			st.Page, st.Line, st.Access = mem.GPage(g.lastU[0]), uint8(g.lastU[1]), mem.DataRead
			return st
		}
		st.Page, st.Line, st.Access = g.data.pick(g.r).next(g.r, cpu)
		g.lastU = [2]uint32{uint32(st.Page), uint32(st.Line)}
		g.haveU = true
	} else {
		st.Page, st.Line, st.Access = g.Code.next(g.r, cpu)
	}
	return st
}
