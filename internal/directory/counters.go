// Package directory models the per-node directory controller (the MAGIC chip
// on FLASH): servicing of cache misses with an occupancy cost, the per-page
// per-processor miss counters the policy is driven by, 1-in-N sampling of
// misses, and the batching of hot pages before a pager interrupt is raised
// (Section 4).
package directory

import (
	"ccnuma/internal/mem"
	"ccnuma/internal/obs"
)

// HotRef identifies a page whose miss counter crossed the trigger threshold,
// and the CPU whose counter crossed it.
type HotRef struct {
	Page mem.GPage
	CPU  mem.CPUID
}

// BatchFunc receives a batch of hot pages; the system schedules the pager
// interrupt on the CPU of the first reference. The batch slice is borrowed:
// it aliases the counters' reusable pending buffer and is only valid for the
// duration of the call, so a callback that queues the work must copy it.
type BatchFunc func(batch []HotRef)

// Counters implements the paper's counting machinery: one saturating miss
// counter per (page, CPU) (the paper's hardware uses 1-byte counters; we
// widen to 16 bits so the Figure-9 trigger-256 sweep is representable), a per-page write counter, a trigger
// threshold, periodic reset, and optional sampling. The same structure is
// fed by cache misses (the FLASH hardware design) or by TLB misses (the
// software alternative of Section 8.3), so policy comparisons between the
// two metrics exercise identical code.
type Counters struct {
	cpus    int
	group   int      // CPUs per shared counter (1 = per-CPU counters)
	groups  int      // number of counter columns per page
	miss    []uint16 // page*groups
	write   []uint16 // per page, saturating
	trigger uint16
	batchN  int

	// Sampling: only one in SampleRate recorded misses increments counters.
	// 1 means full information.
	sampleRate int
	sampleTick int

	pending   []HotRef
	inPending []bool // per page: already queued for the pager
	onBatch   BatchFunc

	// Obs, when enabled, receives a CounterReset event at every reset
	// boundary, stamped with the trigger threshold then in force (it changes
	// under the adaptive-trigger extension).
	Obs *obs.Tracer

	// Statistics.
	recorded uint64 // misses offered
	counted  uint64 // misses that incremented a counter (post-sampling)
	hot      uint64 // trigger crossings queued
	resets   uint64
}

// NewCounters sizes the counter arrays for pages logical pages and cpus
// processors, with the given trigger threshold, interrupt batch size, and
// sampling rate (1 = count every miss, 10 = count one in ten).
func NewCounters(pages, cpus int, trigger uint16, batch, sampleRate int, onBatch BatchFunc) *Counters {
	return NewGroupedCounters(pages, cpus, 1, trigger, batch, sampleRate, onBatch)
}

// NewGroupedCounters builds counters where group CPUs share one counter
// column — the space-reduction option of Section 7.2.1 ("logically grouping
// processors, and keeping a shared counter for the group"). group 1 gives
// per-CPU counters.
func NewGroupedCounters(pages, cpus, group int, trigger uint16, batch, sampleRate int, onBatch BatchFunc) *Counters {
	if trigger == 0 {
		panic("directory: zero trigger threshold")
	}
	if batch <= 0 {
		batch = 1
	}
	if sampleRate <= 0 {
		sampleRate = 1
	}
	if group <= 0 {
		group = 1
	}
	groups := (cpus + group - 1) / group
	return &Counters{
		cpus:       cpus,
		group:      group,
		groups:     groups,
		miss:       make([]uint16, pages*groups),
		write:      make([]uint16, pages),
		trigger:    trigger,
		batchN:     batch,
		sampleRate: sampleRate,
		pending:    make([]HotRef, 0, batch),
		inPending:  make([]bool, pages),
		onBatch:    onBatch,
	}
}

// GroupOf maps a CPU to its counter column.
func (c *Counters) GroupOf(cpu mem.CPUID) int { return int(cpu) / c.group }

// Groups returns the number of counter columns per page.
func (c *Counters) Groups() int { return c.groups }

// Record registers a miss by cpu to page. Sampling is applied here. When the
// page's counter for cpu reaches the trigger threshold the page joins the
// pending batch; when the batch fills, onBatch fires. Only remote misses
// arm the trigger — the home directory sees the requester's identity, and a
// page that is already local to the missing CPU needs no interrupt — but
// all misses are counted, because the sharing decision needs every CPU's
// rate.
//
//numalint:hotpath
func (c *Counters) Record(page mem.GPage, cpu mem.CPUID, isWrite, remote bool) {
	c.recorded++
	if c.sampleRate > 1 {
		c.sampleTick++
		if c.sampleTick < c.sampleRate {
			return
		}
		c.sampleTick = 0
	}
	c.counted++
	if isWrite && c.write[page] < ^uint16(0) {
		c.write[page]++
	}
	idx := int(page)*c.groups + c.GroupOf(cpu)
	if c.miss[idx] < ^uint16(0) {
		c.miss[idx]++
	}
	if remote && c.miss[idx] >= c.trigger && !c.inPending[page] {
		c.inPending[page] = true
		c.hot++
		c.pending = append(c.pending, HotRef{Page: page, CPU: cpu})
		if len(c.pending) >= c.batchN {
			c.FlushPending()
		}
	}
}

// FlushPending delivers any queued hot pages to the batch callback. The
// periodic reset calls it so a partial batch is not held indefinitely. The
// pending buffer itself is handed to the callback (see BatchFunc's borrowing
// contract) and reused for the next batch, so flushing allocates nothing.
//
//numalint:hotpath
func (c *Counters) FlushPending() {
	if len(c.pending) == 0 || c.onBatch == nil {
		return
	}
	batch := c.pending
	c.pending = c.pending[:0]
	for _, h := range batch {
		c.inPending[h.Page] = false
	}
	c.onBatch(batch)
}

// Reset zeroes every miss and write counter (the reset-interval event). Any
// partial pending batch is flushed first.
func (c *Counters) Reset() {
	c.FlushPending()
	for i := range c.miss {
		c.miss[i] = 0
	}
	for i := range c.write {
		c.write[i] = 0
	}
	c.resets++
	if c.Obs.On() {
		e := obs.NewEvent(obs.KindCounterReset)
		e.Trigger = c.trigger
		e.N = int(c.resets)
		c.Obs.EmitNow(e)
	}
}

// Miss returns the current counter for (page, cpu's group).
func (c *Counters) Miss(page mem.GPage, cpu mem.CPUID) uint16 {
	return c.miss[int(page)*c.groups+c.GroupOf(cpu)]
}

// MissRow returns the per-group counters for page (a shared slice; do not
// retain across Record calls). With group size 1 the row is per-CPU.
func (c *Counters) MissRow(page mem.GPage) []uint16 {
	return c.miss[int(page)*c.groups : (int(page)+1)*c.groups]
}

// Writes returns the write counter for page.
func (c *Counters) Writes(page mem.GPage) uint16 { return c.write[page] }

// ClearPage zeroes the page's counters after the pager acted on it, so the
// same interval does not immediately re-trigger.
func (c *Counters) ClearPage(page mem.GPage) {
	row := c.MissRow(page)
	for i := range row {
		row[i] = 0
	}
	c.write[page] = 0
}

// Trigger returns the configured trigger threshold.
func (c *Counters) Trigger() uint16 { return c.trigger }

// SetTrigger changes the trigger threshold (the adaptive-trigger extension
// adjusts it between reset intervals).
func (c *Counters) SetTrigger(t uint16) {
	if t == 0 {
		t = 1
	}
	c.trigger = t
}

// SampleRate returns the configured sampling rate.
func (c *Counters) SampleRate() int { return c.sampleRate }

// CounterStats summarises the counting activity.
type CounterStats struct {
	Recorded uint64 // misses offered to the counters
	Counted  uint64 // misses counted after sampling
	Hot      uint64 // trigger crossings
	Resets   uint64
}

// Stats returns the accumulated counting statistics.
func (c *Counters) Stats() CounterStats {
	return CounterStats{Recorded: c.recorded, Counted: c.counted, Hot: c.hot, Resets: c.resets}
}

// SpaceOverhead returns the fraction of machine memory the counters would
// consume on a real machine with the given bytes of memory per counter
// (Section 7.2.1's space-overhead analysis).
func SpaceOverhead(cpus int, bytesPerCounter float64) float64 {
	perPage := float64(cpus) * bytesPerCounter
	return perPage / float64(mem.PageSize)
}
