package directory

import (
	"ccnuma/internal/interconnect"
	"ccnuma/internal/mem"
	"ccnuma/internal/sim"
	"ccnuma/internal/topology"
)

// NodeStats is the per-node contention picture used by the Section 7.1.2
// system-wide-benefit experiment.
type NodeStats struct {
	Node                mem.NodeID
	LocalMisses         uint64
	RemoteHandlers      uint64 // remote memory requests serviced by this node
	Dir                 interconnect.Stats
	NetIn               interconnect.Stats
	NetOut              interconnect.Stats
	LocalReadLatencySum sim.Time
	LocalReadMisses     uint64
}

type node struct {
	dir    interconnect.Resource // controller occupancy
	netIn  interconnect.Resource // inbound link
	netOut interconnect.Resource // outbound link

	localMisses    uint64
	remoteHandlers uint64
	localReadLat   sim.Time
	localReads     uint64
}

// MemSystem routes L2 misses through the NUMA memory system: the local
// directory for local misses; the outbound link, the home directory, and the
// return link for remote misses. Latency = configured minimum + queueing.
type MemSystem struct {
	// ExtraRemote, when set, returns additional latency for a remote miss of
	// base latency lat between the requester's node and the home node (the
	// fault layer's degraded-link injection). It must be deterministic.
	ExtraRemote func(local, home mem.NodeID, lat sim.Time) sim.Time

	cfg   topology.Config
	nodes []node

	localTotal       uint64
	remoteTotal      uint64
	latencySum       sim.Time
	remoteLatencySum sim.Time
}

// NewMemSystem builds the memory system for the machine configuration.
func NewMemSystem(cfg topology.Config) *MemSystem {
	m := &MemSystem{cfg: cfg, nodes: make([]node, cfg.Nodes)}
	for i := range m.nodes {
		m.nodes[i].dir.Service = cfg.DirOccupancy
		m.nodes[i].netIn.Service = cfg.NetLinkTime
		m.nodes[i].netOut.Service = cfg.NetLinkTime
	}
	return m
}

// Access services an L2 miss by cpu to a page whose mapped copy lives on
// home. It returns the total miss latency including queueing, and whether
// the miss was remote.
func (m *MemSystem) Access(now sim.Time, cpu mem.CPUID, home mem.NodeID, kind mem.AccessKind) (lat sim.Time, remote bool) {
	local := m.cfg.NodeOf(cpu)
	if home == local {
		n := &m.nodes[local]
		n.localMisses++
		m.localTotal++
		wait := n.dir.Request(now) - m.cfg.DirOccupancy
		if wait < 0 {
			wait = 0
		}
		lat = m.cfg.LocalLatency + wait
		if !kind.IsWrite() {
			n.localReadLat += lat
			n.localReads++
		}
		m.latencySum += lat
		return lat, false
	}
	// Remote miss: the requester's own directory controller, its outbound
	// link, the home directory, the home's outbound link for the reply, and
	// the requester's inbound link — a remote miss consumes resources on
	// multiple nodes (Section 7.1.2).
	m.remoteTotal++
	req := &m.nodes[local]
	hn := &m.nodes[home]
	hn.remoteHandlers++
	var wait sim.Time
	wait += waitOnly(req.dir.Request(now), m.cfg.DirOccupancy)
	wait += waitOnly(req.netOut.Request(now+wait), m.cfg.NetLinkTime)
	wait += waitOnly(hn.dir.Request(now+wait), m.cfg.DirOccupancy)
	wait += waitOnly(hn.netOut.Request(now+wait), m.cfg.NetLinkTime)
	wait += waitOnly(req.netIn.Request(now+wait), m.cfg.NetLinkTime)
	lat = m.cfg.RemoteLatency + wait
	if m.ExtraRemote != nil {
		lat += m.ExtraRemote(local, home, lat)
	}
	m.latencySum += lat
	m.remoteLatencySum += lat
	return lat, true
}

func waitOnly(total, service sim.Time) sim.Time {
	w := total - service
	if w < 0 {
		return 0
	}
	return w
}

// Totals returns machine-wide miss counts and latency sums.
func (m *MemSystem) Totals() (local, remote uint64, latencySum, remoteLatencySum sim.Time) {
	return m.localTotal, m.remoteTotal, m.latencySum, m.remoteLatencySum
}

// LocalFraction returns the fraction of misses satisfied from local memory.
func (m *MemSystem) LocalFraction() float64 {
	t := m.localTotal + m.remoteTotal
	if t == 0 {
		return 0
	}
	return float64(m.localTotal) / float64(t)
}

// AvgRemoteLatency returns the mean observed remote miss latency (Section
// 7.1.3 compares this against the configured minimum).
func (m *MemSystem) AvgRemoteLatency() sim.Time {
	if m.remoteTotal == 0 {
		return 0
	}
	return m.remoteLatencySum / sim.Time(m.remoteTotal)
}

// NodeSnapshot returns the contention statistics of one node.
func (m *MemSystem) NodeSnapshot(id mem.NodeID, elapsed sim.Time) NodeStats {
	n := &m.nodes[id]
	return NodeStats{
		Node:                id,
		LocalMisses:         n.localMisses,
		RemoteHandlers:      n.remoteHandlers,
		Dir:                 n.dir.Snapshot(elapsed),
		NetIn:               n.netIn.Snapshot(elapsed),
		NetOut:              n.netOut.Snapshot(elapsed),
		LocalReadLatencySum: n.localReadLat,
		LocalReadMisses:     n.localReads,
	}
}

// MachineContention aggregates the Section 7.1.2 statistics machine-wide.
type MachineContention struct {
	RemoteHandlerInvocations uint64
	AvgNetQueue              float64  // mean queue length across links
	AvgDirWait               sim.Time // mean queueing delay per directory request
	MaxDirOccupancy          float64  // highest per-node directory occupancy
	AvgLocalReadLatency      sim.Time
}

// Contention returns the aggregated contention statistics.
func (m *MemSystem) Contention(elapsed sim.Time) MachineContention {
	var out MachineContention
	var qSum float64
	var qN int
	var readLat sim.Time
	var reads uint64
	var dirWait sim.Time
	var dirReqs uint64
	for i := range m.nodes {
		s := m.NodeSnapshot(mem.NodeID(i), elapsed)
		out.RemoteHandlerInvocations += s.RemoteHandlers
		dirWait += s.Dir.WaitTime
		dirReqs += s.Dir.Requests
		for _, l := range []interconnect.Stats{s.NetIn, s.NetOut} {
			if l.Requests > 0 {
				qSum += l.AvgQueue
				qN++
			}
		}
		if s.Dir.Occupancy > out.MaxDirOccupancy {
			out.MaxDirOccupancy = s.Dir.Occupancy
		}
		readLat += s.LocalReadLatencySum
		reads += s.LocalReadMisses
	}
	if qN > 0 {
		out.AvgNetQueue = qSum / float64(qN)
	}
	if reads > 0 {
		out.AvgLocalReadLatency = readLat / sim.Time(reads)
	}
	if dirReqs > 0 {
		out.AvgDirWait = dirWait / sim.Time(dirReqs)
	}
	return out
}
