package directory

import (
	"testing"

	"ccnuma/internal/mem"
	"ccnuma/internal/topology"
)

func TestCountersTriggerAndBatch(t *testing.T) {
	var batches [][]HotRef
	c := NewCounters(16, 4, 3, 2, 1, func(b []HotRef) {
		cp := make([]HotRef, len(b))
		copy(cp, b)
		batches = append(batches, cp)
	})
	for i := 0; i < 3; i++ {
		c.Record(5, 1, false, true)
	}
	if len(batches) != 0 {
		t.Fatal("interrupt before batch filled")
	}
	for i := 0; i < 3; i++ {
		c.Record(7, 2, false, true)
	}
	if len(batches) != 1 {
		t.Fatalf("batches = %d, want 1", len(batches))
	}
	b := batches[0]
	if len(b) != 2 || b[0] != (HotRef{5, 1}) || b[1] != (HotRef{7, 2}) {
		t.Fatalf("batch = %v", b)
	}
}

func TestCountersNoDuplicatePending(t *testing.T) {
	var got []HotRef
	c := NewCounters(16, 4, 2, 8, 1, func(b []HotRef) { got = append(got, b...) })
	for i := 0; i < 10; i++ {
		c.Record(3, 0, false, true) // stays hot; must queue only once
	}
	c.FlushPending()
	if len(got) != 1 {
		t.Fatalf("hot page queued %d times, want 1", len(got))
	}
}

func TestCountersSampling(t *testing.T) {
	c := NewCounters(4, 1, 200, 1, 10, nil)
	for i := 0; i < 100; i++ {
		c.Record(0, 0, false, true)
	}
	if got := c.Miss(0, 0); got != 10 {
		t.Fatalf("sampled counter = %d, want 10", got)
	}
	st := c.Stats()
	if st.Recorded != 100 || st.Counted != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCountersResetZeroes(t *testing.T) {
	c := NewCounters(4, 2, 100, 1, 1, nil)
	c.Record(1, 0, true, true)
	c.Record(1, 1, false, true)
	c.Reset()
	if c.Miss(1, 0) != 0 || c.Miss(1, 1) != 0 || c.Writes(1) != 0 {
		t.Fatal("reset left non-zero counters")
	}
}

func TestCountersSaturate(t *testing.T) {
	c := NewCounters(2, 1, 65535, 64, 1, nil)
	for i := 0; i < 70000; i++ {
		c.Record(0, 0, true, true)
	}
	if c.Miss(0, 0) != 65535 || c.Writes(0) != 65535 {
		t.Fatalf("counters overflowed: miss=%d write=%d", c.Miss(0, 0), c.Writes(0))
	}
}

func TestCountersClearPage(t *testing.T) {
	c := NewCounters(4, 2, 100, 1, 1, nil)
	c.Record(2, 0, true, true)
	c.Record(2, 1, false, true)
	c.ClearPage(2)
	if c.Miss(2, 0) != 0 || c.Miss(2, 1) != 0 || c.Writes(2) != 0 {
		t.Fatal("ClearPage left residue")
	}
}

func TestSpaceOverhead(t *testing.T) {
	// Paper: 8 nodes, 1-byte counters, 4K pages => 0.2% overhead;
	// 128 nodes => 3.1%; half-size counters at 128 nodes => 1.6%.
	if got := SpaceOverhead(8, 1); got < 0.0019 || got > 0.0021 {
		t.Fatalf("8-node overhead = %v, want ~0.002", got)
	}
	if got := SpaceOverhead(128, 1); got < 0.030 || got > 0.032 {
		t.Fatalf("128-node overhead = %v, want ~0.031", got)
	}
	if got := SpaceOverhead(128, 0.5); got < 0.015 || got > 0.017 {
		t.Fatalf("128-node half-counter overhead = %v, want ~0.016", got)
	}
}

func TestMemSystemLocalVsRemote(t *testing.T) {
	cfg := topology.CCNUMA()
	cfg.DirOccupancy = 0
	cfg.NetLinkTime = 0
	m := NewMemSystem(cfg)
	lat, remote := m.Access(0, 0, cfg.NodeOf(0), mem.DataRead)
	if remote || lat != cfg.LocalLatency {
		t.Fatalf("local access = (%v, %v)", lat, remote)
	}
	lat, remote = m.Access(0, 0, cfg.NodeOf(0)+1, mem.DataRead)
	if !remote || lat != cfg.RemoteLatency {
		t.Fatalf("remote access = (%v, %v)", lat, remote)
	}
	local, rem, _, _ := m.Totals()
	if local != 1 || rem != 1 {
		t.Fatalf("totals = %d local %d remote", local, rem)
	}
	if f := m.LocalFraction(); f != 0.5 {
		t.Fatalf("local fraction = %v", f)
	}
}

func TestMemSystemContentionInflatesLatency(t *testing.T) {
	cfg := topology.CCNUMA()
	m := NewMemSystem(cfg)
	// Hammer one home node from all remote CPUs at the same instant: queueing
	// at the home directory must push observed latency above the minimum.
	var worst mem.NodeID = 3
	for i := 0; i < 64; i++ {
		cpu := mem.CPUID(i % cfg.TotalCPUs())
		if cfg.NodeOf(cpu) == worst {
			continue
		}
		m.Access(0, cpu, worst, mem.DataRead)
	}
	if avg := m.AvgRemoteLatency(); avg <= cfg.RemoteLatency {
		t.Fatalf("avg remote latency %v not above minimum %v under contention", avg, cfg.RemoteLatency)
	}
	c := m.Contention(1000)
	if c.RemoteHandlerInvocations == 0 {
		t.Fatal("no remote handler invocations recorded")
	}
	if c.MaxDirOccupancy <= 0 {
		t.Fatal("no directory occupancy recorded")
	}
}

func TestMemSystemLocalReadLatencyTracked(t *testing.T) {
	cfg := topology.CCNUMA()
	m := NewMemSystem(cfg)
	m.Access(0, 0, 0, mem.DataRead)
	s := m.NodeSnapshot(0, 1000)
	if s.LocalReadMisses != 1 || s.LocalReadLatencySum < cfg.LocalLatency {
		t.Fatalf("local read stats = %+v", s)
	}
}

func TestMemSystemZeroNet(t *testing.T) {
	cfg := topology.ZeroNet()
	cfg.DirOccupancy = 0
	m := NewMemSystem(cfg)
	lat, remote := m.Access(0, 0, 5, mem.DataRead)
	if !remote {
		t.Fatal("cross-node access not counted remote")
	}
	if lat != cfg.RemoteLatency {
		t.Fatalf("zero-net remote latency = %v, want %v", lat, cfg.RemoteLatency)
	}
}
