// Package policy implements the paper's page migration/replication policy:
// the Figure-1 decision tree driven by the Table-1 parameters. The decision
// is a pure function of the page's counters and placement state, so the same
// engine drives both the full-system kernel (internal/kernel/pager) and the
// trace-driven simulator of Section 8 (internal/tracesim).
package policy

import (
	"fmt"

	"ccnuma/internal/sim"
)

// Params are the policy parameters of Table 1. Rates are approximated by
// counters that are zeroed every ResetInterval.
type Params struct {
	// Trigger is the per-(page,cpu) miss count that makes a page hot.
	Trigger uint16
	// Sharing: if any *other* processor's miss counter has reached this, the
	// page is considered shared and becomes a replication candidate.
	Sharing uint16
	// Write: a page whose write counter exceeds this is not replicated.
	Write uint16
	// Migrate: a page migrated more than this many times in the interval is
	// not migrated again (freezing).
	Migrate uint16
	// ResetInterval is the counter reset period.
	ResetInterval sim.Time

	// EnableMigration / EnableReplication select the Migr-only, Repl-only,
	// and combined Mig/Rep policies of Section 8.1.
	EnableMigration   bool
	EnableReplication bool

	// MigrateWriteShared implements the extension the paper sketches in
	// Section 7.1.2: write-shared pages cannot be replicated, but migrating
	// them toward the heaviest writer diffuses memory-system hotspots.
	MigrateWriteShared bool
	// DisableRemap reproduces the limitation the paper describes for the
	// Splash workload: a process moved to a node that already holds a
	// replica keeps using its old remote copy ("the process will not pick
	// up the new replica"). Our base policy fixes this with a cheap pte
	// remap; disabling it shows the cost of the paper's behaviour.
	DisableRemap bool
}

// Base returns the paper's base policy: trigger 128, sharing = trigger/4,
// write and migrate thresholds 1, reset interval 100 ms, both mechanisms
// enabled. (The engineering workload used trigger 96; pass a different
// trigger where needed.)
func Base() Params {
	return Params{
		Trigger:           128,
		Sharing:           32,
		Write:             1,
		Migrate:           1,
		ResetInterval:     100 * sim.Millisecond,
		EnableMigration:   true,
		EnableReplication: true,
	}
}

// WithTrigger returns p with the trigger threshold set to t and the sharing
// threshold to t/4 (the coupling used throughout the paper's experiments).
func (p Params) WithTrigger(t uint16) Params {
	p.Trigger = t
	return p.WithSharingFraction(4)
}

// WithSharingFraction returns p with the sharing threshold set to
// Trigger/frac, clamped to at least 1 so the parameters stay valid at small
// triggers. This is the single home of the clamp: WithTrigger and the
// Section-8.4 sharing sweep both derive the threshold through it.
func (p Params) WithSharingFraction(frac uint16) Params {
	if frac == 0 {
		frac = 1
	}
	p.Sharing = p.Trigger / frac
	if p.Sharing == 0 {
		p.Sharing = 1
	}
	return p
}

// ScaledForSampling divides the counter-compared thresholds by the
// sampling rate: with 1-in-N counting, a sampled counter of trigger/N
// approximates the same miss rate as a full counter of trigger (Section
// 8.3's SC and ST metrics).
func (p Params) ScaledForSampling(rate int) Params {
	if rate <= 1 {
		return p
	}
	div := func(v uint16) uint16 {
		v /= uint16(rate)
		if v == 0 {
			v = 1
		}
		return v
	}
	p.Trigger = div(p.Trigger)
	p.Sharing = div(p.Sharing)
	// The write threshold guards correctness-adjacent behaviour (collapse
	// storms); with threshold 1 it cannot scale below 1 and stays as is.
	if p.Write > 1 {
		p.Write = div(p.Write)
	}
	return p
}

// MigrationOnly returns p restricted to migration.
func (p Params) MigrationOnly() Params {
	p.EnableMigration, p.EnableReplication = true, false
	return p
}

// ReplicationOnly returns p restricted to replication.
func (p Params) ReplicationOnly() Params {
	p.EnableMigration, p.EnableReplication = false, true
	return p
}

// Validate reports the first parameter inconsistency.
func (p Params) Validate() error {
	switch {
	case p.Trigger == 0:
		return fmt.Errorf("policy: zero trigger threshold")
	case p.Sharing == 0:
		return fmt.Errorf("policy: zero sharing threshold")
	case p.Sharing > p.Trigger:
		return fmt.Errorf("policy: sharing threshold %d above trigger %d", p.Sharing, p.Trigger)
	case p.ResetInterval <= 0:
		return fmt.Errorf("policy: non-positive reset interval")
	case !p.EnableMigration && !p.EnableReplication:
		return fmt.Errorf("policy: both mechanisms disabled")
	}
	return nil
}

// Action is the decision for a hot page.
type Action int

const (
	// DoNothing: the decision tree declined to move the page.
	DoNothing Action = iota
	// MigratePage: move the master to the hot CPU's node.
	MigratePage
	// ReplicatePage: create a copy on the hot CPU's node.
	ReplicatePage
	// RemapPage: a copy already exists on the hot CPU's node; just point the
	// faulting process's pte at it.
	RemapPage
)

// String names the action.
func (a Action) String() string {
	switch a {
	case MigratePage:
		return "migrate"
	case ReplicatePage:
		return "replicate"
	case RemapPage:
		return "remap"
	default:
		return "nothing"
	}
}

// Reason explains a DoNothing decision (Table 4's breakdown).
type Reason int

const (
	// ReasonActed: an action was taken (not a no-op).
	ReasonActed Reason = iota
	// ReasonLocal: the hot CPU's mapping is already local.
	ReasonLocal
	// ReasonWriteShared: the page is shared but written too often.
	ReasonWriteShared
	// ReasonFrozen: the page migrated too often this interval.
	ReasonFrozen
	// ReasonWired: the page is kernel-wired.
	ReasonWired
	// ReasonDisabled: the mechanism the tree chose is disabled.
	ReasonDisabled
	// ReasonNoPage: no frame was available on the destination node. This is
	// determined by the pager after the decision; it appears here so Table 4
	// accounting lives in one place.
	ReasonNoPage
	// ReasonThrottled: the pager shed the batch because its overhead
	// exceeded the kernel-overhead budget (fault layer's degradation
	// response); the decision tree never ran.
	ReasonThrottled
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case ReasonActed:
		return "acted"
	case ReasonLocal:
		return "already-local"
	case ReasonWriteShared:
		return "write-shared"
	case ReasonFrozen:
		return "frozen"
	case ReasonWired:
		return "wired"
	case ReasonDisabled:
		return "disabled"
	case ReasonNoPage:
		return "no-page"
	case ReasonThrottled:
		return "throttled"
	default:
		return "unknown"
	}
}

// PageState is the placement information the decision needs, supplied by the
// kernel (full-system) or by the trace simulator's placement tables.
type PageState struct {
	// Local reports whether the hot CPU's current mapping is already local.
	Local bool
	// HasLocalCopy reports whether a copy exists on the hot CPU's node even
	// if this process's mapping points elsewhere (the remap case).
	HasLocalCopy bool
	// Replicated reports whether the page currently has replicas.
	Replicated bool
	// MigCount is the page's migration count this interval.
	MigCount uint8
	// Wired excludes the page from any action.
	Wired bool
	// Pressure reports memory pressure on the destination node; replication
	// is suppressed under pressure.
	Pressure bool
}

// Decision is the policy's verdict for one hot page.
type Decision struct {
	Action Action
	Reason Reason
}

// Decide runs the Figure-1 decision tree for a page that went hot on cpu.
// missRow holds the per-CPU miss counters for the page, writes its write
// counter, hot the index of the triggering CPU.
func Decide(p Params, missRow []uint16, writes uint16, hot int, st PageState) Decision {
	if st.Wired {
		return Decision{DoNothing, ReasonWired}
	}
	// Node 1 follow-up (Section 4): action only if the page is remote to the
	// triggering CPU.
	if st.Local {
		return Decision{DoNothing, ReasonLocal}
	}
	if st.HasLocalCopy {
		if p.DisableRemap {
			// The paper's implementation: the stale pte persists until the
			// page goes hot again and the whole operation re-runs.
			return Decision{DoNothing, ReasonLocal}
		}
		// A copy is already on this node; the process just hasn't picked it
		// up (the Splash limitation the paper describes). Remap the pte.
		return Decision{RemapPage, ReasonActed}
	}
	// Node 2: sharing test — does any other processor miss on this page at a
	// rate above the sharing threshold?
	shared := st.Replicated // an existing replica set implies read sharing
	for c, n := range missRow {
		if c != hot && n >= p.Sharing {
			shared = true
			break
		}
	}
	if shared {
		// Node 3a: replication branch.
		if !p.EnableReplication {
			return Decision{DoNothing, ReasonDisabled}
		}
		if writes > p.Write {
			if p.MigrateWriteShared && p.EnableMigration && !st.Replicated &&
				uint16(st.MigCount) <= p.Migrate && hottest(missRow) == hot {
				// Hotspot diffusion: move the page to its heaviest missing
				// processor instead of leaving it on a congested home.
				return Decision{MigratePage, ReasonActed}
			}
			return Decision{DoNothing, ReasonWriteShared}
		}
		if st.Pressure {
			return Decision{DoNothing, ReasonNoPage}
		}
		return Decision{ReplicatePage, ReasonActed}
	}
	// Node 3b: migration branch.
	if !p.EnableMigration {
		return Decision{DoNothing, ReasonDisabled}
	}
	if uint16(st.MigCount) > p.Migrate {
		return Decision{DoNothing, ReasonFrozen}
	}
	if st.Replicated {
		// Unshared but replicated (sharers went quiet): leave it to the
		// collapse path rather than migrating a chain.
		return Decision{DoNothing, ReasonFrozen}
	}
	return Decision{MigratePage, ReasonActed}
}

// hottest returns the index of the largest counter in the row.
func hottest(row []uint16) int {
	best := 0
	for i, v := range row {
		if v > row[best] {
			best = i
		}
	}
	return best
}

// ActionStats accumulates the Table-4 breakdown.
type ActionStats struct {
	HotPages   uint64 // hot-page events processed
	Migrations uint64
	Replicas   uint64
	Remaps     uint64
	NoAction   uint64
	NoPage     uint64 // allocation failed on the destination node
	Collapses  uint64 // write-trap collapses (not part of Table 4)
	// ByReason breaks down DoNothing decisions (indexed by Reason; sized for
	// every declared reason, ReasonActed through ReasonThrottled).
	ByReason [ReasonThrottled + 1]uint64
}

// Record tallies a decision outcome. noPage overrides the decision when the
// pager could not allocate.
func (s *ActionStats) Record(d Decision, noPage bool) {
	s.HotPages++
	if noPage {
		s.NoPage++
		return
	}
	switch d.Action {
	case MigratePage:
		s.Migrations++
	case ReplicatePage:
		s.Replicas++
	case RemapPage:
		s.Remaps++
	default:
		s.ByReason[d.Reason]++
		if d.Reason == ReasonNoPage {
			s.NoPage++
		} else {
			s.NoAction++
		}
	}
}

// Percent returns the Table-4 percentages: migrate, replicate, no-action,
// no-page. Remaps are folded into no-action (the paper's implementation
// lacked the remap optimisation; see DESIGN.md).
func (s ActionStats) Percent() (mig, rep, none, nopage float64) {
	if s.HotPages == 0 {
		return 0, 0, 0, 0
	}
	t := float64(s.HotPages)
	return 100 * float64(s.Migrations) / t,
		100 * float64(s.Replicas) / t,
		100 * float64(s.NoAction+s.Remaps) / t,
		100 * float64(s.NoPage) / t
}
