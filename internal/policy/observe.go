package policy

import (
	"ccnuma/internal/obs"
	"ccnuma/internal/sim"
)

// ObserveDecision emits the PolicyDecision event for one Figure-1
// decision-tree evaluation: the branch taken (action + reason) together with
// the counter values and thresholds that drove it — the triggering group's
// miss counter, the largest other group's counter (the sharing test's input),
// the page's write counter, and the trigger/sharing thresholds in force.
// missRow and writes must be read before the pager clears the page's
// counters. No-op when the tracer is disabled.
func ObserveDecision(tr *obs.Tracer, at sim.Time, cpu, node int, page int64,
	p Params, missRow []uint16, writes uint16, hot int, d Decision) {
	if !tr.On() {
		return
	}
	e := obs.NewEvent(obs.KindPolicyDecision)
	e.At = at
	e.CPU = cpu
	e.Node = node
	e.Page = page
	e.Action = d.Action.String()
	e.Reason = d.Reason.String()
	if hot >= 0 && hot < len(missRow) {
		e.Miss = missRow[hot]
	}
	for i, v := range missRow {
		if i != hot && v > e.MissOther {
			e.MissOther = v
		}
	}
	e.Writes = writes
	e.Trigger = p.Trigger
	e.Sharing = p.Sharing
	tr.Emit(e)
}
