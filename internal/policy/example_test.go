package policy_test

import (
	"fmt"

	"ccnuma/internal/policy"
)

// A page hot on CPU 1 with heavy read sharing from CPU 3 and almost no
// writes is a replication candidate; the same page with frequent writes is
// left alone — the Figure-1 decision tree.
func ExampleDecide() {
	params := policy.Base() // trigger 128, sharing 32, write 1, migrate 1

	counters := []uint16{0, 150, 0, 80, 0, 0, 0, 0} // misses per CPU

	readMostly := policy.Decide(params, counters, 1 /* writes */, 1 /* hot cpu */, policy.PageState{})
	writeShared := policy.Decide(params, counters, 40, 1, policy.PageState{})
	private := policy.Decide(params, []uint16{0, 150, 0, 0, 0, 0, 0, 0}, 0, 1, policy.PageState{})

	fmt.Println("read-mostly shared:", readMostly.Action)
	fmt.Println("write-shared:      ", writeShared.Action, "("+writeShared.Reason.String()+")")
	fmt.Println("private:           ", private.Action)
	// Output:
	// read-mostly shared: replicate
	// write-shared:       nothing (write-shared)
	// private:            migrate
}
