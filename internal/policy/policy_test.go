package policy

import (
	"testing"
	"testing/quick"

	"ccnuma/internal/sim"
)

func row(vals ...uint16) []uint16 { return vals }

func TestWithSharingFraction(t *testing.T) {
	p := Base().WithTrigger(96)
	if q := p.WithSharingFraction(8); q.Sharing != 12 {
		t.Fatalf("96/8: sharing = %d, want 12", q.Sharing)
	}
	if q := p.WithSharingFraction(2); q.Sharing != 48 {
		t.Fatalf("96/2: sharing = %d, want 48", q.Sharing)
	}
	// The clamp: a fraction larger than the trigger must not produce the
	// invalid Sharing == 0.
	low := Base().WithTrigger(2)
	if q := low.WithSharingFraction(8); q.Sharing != 1 {
		t.Fatalf("2/8: sharing = %d, want clamped 1", q.Sharing)
	}
	if q := low.WithSharingFraction(0); q.Sharing != 2 {
		t.Fatalf("frac 0 treated as 1: sharing = %d, want 2", q.Sharing)
	}
	// WithTrigger derives its threshold through the same helper.
	if p.Sharing != p.WithSharingFraction(4).Sharing {
		t.Fatalf("WithTrigger coupling drifted: %d vs %d", p.Sharing, p.WithSharingFraction(4).Sharing)
	}
	if err := low.WithSharingFraction(8).Validate(); err != nil {
		t.Fatalf("clamped params invalid: %v", err)
	}
}

func TestBaseParamsMatchPaper(t *testing.T) {
	p := Base()
	if p.Trigger != 128 || p.Sharing != 32 || p.Write != 1 || p.Migrate != 1 {
		t.Fatalf("base params = %+v", p)
	}
	if p.ResetInterval != 100*sim.Millisecond {
		t.Fatalf("reset interval = %v, want 100ms", p.ResetInterval)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWithTriggerCouplesSharing(t *testing.T) {
	for _, trig := range []uint16{32, 64, 96, 128, 256} {
		p := Base().WithTrigger(trig)
		if p.Trigger != trig || p.Sharing != trig/4 {
			t.Fatalf("WithTrigger(%d) = %+v", trig, p)
		}
	}
	if p := Base().WithTrigger(2); p.Sharing != 1 {
		t.Fatal("tiny trigger should floor sharing at 1")
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []Params{
		{Trigger: 0, Sharing: 1, ResetInterval: 1, EnableMigration: true},
		{Trigger: 10, Sharing: 0, ResetInterval: 1, EnableMigration: true},
		{Trigger: 10, Sharing: 20, ResetInterval: 1, EnableMigration: true},
		{Trigger: 10, Sharing: 5, ResetInterval: 0, EnableMigration: true},
		{Trigger: 10, Sharing: 5, ResetInterval: 1},
	}
	for i, p := range cases {
		if p.Validate() == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestDecideUnsharedRemoteMigrates(t *testing.T) {
	p := Base()
	d := Decide(p, row(0, 200, 0, 0), 0, 1, PageState{})
	if d.Action != MigratePage {
		t.Fatalf("decision = %+v, want migrate", d)
	}
}

func TestDecideSharedReadMostlyReplicates(t *testing.T) {
	p := Base()
	// CPU 1 hot, CPU 3 above the sharing threshold, writes below threshold.
	d := Decide(p, row(0, 200, 0, 40), 1, 1, PageState{})
	if d.Action != ReplicatePage {
		t.Fatalf("decision = %+v, want replicate", d)
	}
}

func TestDecideWriteSharedDoesNothing(t *testing.T) {
	p := Base()
	d := Decide(p, row(0, 200, 0, 40), 5, 1, PageState{})
	if d.Action != DoNothing || d.Reason != ReasonWriteShared {
		t.Fatalf("decision = %+v, want write-shared no-op", d)
	}
}

func TestDecideLocalPageDoesNothing(t *testing.T) {
	d := Decide(Base(), row(200), 0, 0, PageState{Local: true})
	if d.Action != DoNothing || d.Reason != ReasonLocal {
		t.Fatalf("decision = %+v", d)
	}
}

func TestDecideRemapWhenLocalCopyExists(t *testing.T) {
	d := Decide(Base(), row(200), 0, 0, PageState{HasLocalCopy: true})
	if d.Action != RemapPage {
		t.Fatalf("decision = %+v, want remap", d)
	}
}

func TestDecideFrozenPageNotMigrated(t *testing.T) {
	d := Decide(Base(), row(0, 200), 0, 1, PageState{MigCount: 2})
	if d.Action != DoNothing || d.Reason != ReasonFrozen {
		t.Fatalf("decision = %+v, want frozen", d)
	}
	// At exactly the threshold (1), migration is still allowed.
	d = Decide(Base(), row(0, 200), 0, 1, PageState{MigCount: 1})
	if d.Action != MigratePage {
		t.Fatalf("decision at threshold = %+v, want migrate", d)
	}
}

func TestDecideWiredPage(t *testing.T) {
	d := Decide(Base(), row(0, 200), 0, 1, PageState{Wired: true})
	if d.Action != DoNothing || d.Reason != ReasonWired {
		t.Fatalf("decision = %+v, want wired no-op", d)
	}
}

func TestDecidePressureSuppressesReplication(t *testing.T) {
	d := Decide(Base(), row(0, 200, 0, 40), 0, 1, PageState{Pressure: true})
	if d.Action != DoNothing || d.Reason != ReasonNoPage {
		t.Fatalf("decision = %+v, want pressure no-op", d)
	}
}

func TestDecideMechanismToggles(t *testing.T) {
	mo := Base().MigrationOnly()
	d := Decide(mo, row(0, 200, 0, 40), 0, 1, PageState{})
	if d.Action != DoNothing || d.Reason != ReasonDisabled {
		t.Fatalf("migration-only on shared page = %+v", d)
	}
	if d := Decide(mo, row(0, 200, 0, 0), 0, 1, PageState{}); d.Action != MigratePage {
		t.Fatalf("migration-only on private page = %+v", d)
	}
	ro := Base().ReplicationOnly()
	if d := Decide(ro, row(0, 200, 0, 0), 0, 1, PageState{}); d.Action != DoNothing {
		t.Fatalf("replication-only on private page = %+v", d)
	}
	if d := Decide(ro, row(0, 200, 0, 40), 0, 1, PageState{}); d.Action != ReplicatePage {
		t.Fatalf("replication-only on shared page = %+v", d)
	}
}

func TestDecideReplicatedUnsharedNotMigrated(t *testing.T) {
	// Sharers went quiet: the replicated page must not be migrated while
	// replicas exist.
	d := Decide(Base(), row(0, 200, 0, 0), 0, 1, PageState{Replicated: true})
	if d.Action == MigratePage {
		t.Fatalf("replicated page migrated: %+v", d)
	}
}

func TestDecideIsPure(t *testing.T) {
	p := Base()
	r := row(0, 200, 0, 40)
	st := PageState{}
	d1 := Decide(p, r, 0, 1, st)
	d2 := Decide(p, r, 0, 1, st)
	if d1 != d2 {
		t.Fatal("Decide is not deterministic")
	}
}

// Property: Decide never migrates when migration is disabled, never
// replicates when replication is disabled, and never acts on wired or local
// pages.
func TestDecideRespectsConstraintsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRand(seed)
		for i := 0; i < 200; i++ {
			p := Base().WithTrigger(uint16(32 + r.Intn(224)))
			p.EnableMigration = r.Bool(0.7)
			p.EnableReplication = r.Bool(0.7)
			if !p.EnableMigration && !p.EnableReplication {
				p.EnableMigration = true
			}
			row := make([]uint16, 8)
			for j := range row {
				row[j] = uint16(r.Intn(400))
			}
			st := PageState{
				Local:      r.Bool(0.2),
				Replicated: r.Bool(0.2),
				MigCount:   uint8(r.Intn(4)),
				Wired:      r.Bool(0.1),
				Pressure:   r.Bool(0.2),
			}
			d := Decide(p, row, uint16(r.Intn(8)), r.Intn(8), st)
			switch {
			case d.Action == MigratePage && (!p.EnableMigration || st.Wired || st.Local || st.Replicated || uint16(st.MigCount) > p.Migrate):
				return false
			case d.Action == ReplicatePage && (!p.EnableReplication || st.Wired || st.Local || st.Pressure):
				return false
			case st.Wired && d.Action != DoNothing:
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestActionStatsPercent(t *testing.T) {
	var s ActionStats
	s.Record(Decision{Action: MigratePage, Reason: ReasonActed}, false)
	s.Record(Decision{Action: ReplicatePage, Reason: ReasonActed}, false)
	s.Record(Decision{Action: DoNothing, Reason: ReasonWriteShared}, false)
	s.Record(Decision{Action: ReplicatePage, Reason: ReasonActed}, true) // no page
	mig, rep, none, nopage := s.Percent()
	if mig != 25 || rep != 25 || none != 25 || nopage != 25 {
		t.Fatalf("percentages = %v %v %v %v", mig, rep, none, nopage)
	}
	if s.HotPages != 4 {
		t.Fatalf("hot pages = %d", s.HotPages)
	}
}

func TestActionNames(t *testing.T) {
	if MigratePage.String() != "migrate" || ReplicatePage.String() != "replicate" ||
		RemapPage.String() != "remap" || DoNothing.String() != "nothing" {
		t.Fatal("action names wrong")
	}
	for r := ReasonActed; r <= ReasonNoPage; r++ {
		if r.String() == "unknown" {
			t.Fatalf("reason %d unnamed", r)
		}
	}
}

func TestScaledForSampling(t *testing.T) {
	p := Base() // trigger 128, sharing 32, write 1
	s := p.ScaledForSampling(10)
	if s.Trigger != 12 || s.Sharing != 3 {
		t.Fatalf("scaled params = %+v", s)
	}
	if s.Write != 1 {
		t.Fatalf("write threshold must not scale below 1: %d", s.Write)
	}
	if same := p.ScaledForSampling(1); same != p {
		t.Fatal("rate 1 must be a no-op")
	}
	tiny := Params{Trigger: 4, Sharing: 4, Write: 20, Migrate: 1,
		ResetInterval: 1, EnableMigration: true}.ScaledForSampling(10)
	if tiny.Trigger != 1 || tiny.Sharing != 1 || tiny.Write != 2 {
		t.Fatalf("floors wrong: %+v", tiny)
	}
}

func TestMigrateWriteSharedDecision(t *testing.T) {
	p := Base()
	p.MigrateWriteShared = true
	// Hot CPU 1 is the heaviest writer of a write-shared page: migrate.
	d := Decide(p, row(0, 200, 100, 0), 5, 1, PageState{})
	if d.Action != MigratePage {
		t.Fatalf("decision = %+v, want migrate", d)
	}
	// Hot CPU 1 is not the heaviest: decline.
	d = Decide(p, row(0, 150, 220, 0), 5, 1, PageState{})
	if d.Action != DoNothing || d.Reason != ReasonWriteShared {
		t.Fatalf("decision = %+v, want write-shared no-op", d)
	}
	// Replicated write-shared pages are never chased.
	d = Decide(p, row(0, 200, 100, 0), 5, 1, PageState{Replicated: true})
	if d.Action == MigratePage {
		t.Fatalf("replicated page migrated: %+v", d)
	}
}

func TestDisableRemapDecision(t *testing.T) {
	p := Base()
	p.DisableRemap = true
	d := Decide(p, row(200), 0, 0, PageState{HasLocalCopy: true})
	if d.Action != DoNothing || d.Reason != ReasonLocal {
		t.Fatalf("decision = %+v, want the paper's stale-pte behaviour", d)
	}
}
