package stats

import (
	"testing"

	"ccnuma/internal/sim"
)

func TestBreakdownTotals(t *testing.T) {
	var b Breakdown
	b.Compute[User] = 100
	b.Compute[Kernel] = 50
	b.AddStall(User, Data, RemoteMem, 1200)
	b.AddStall(User, Instr, L2, 50)
	b.AddStall(Kernel, Data, LocalMem, 300)
	b.TLBRefill = 25
	b.FaultTime = 10
	b.Idle = 500
	b.Pager.Add(FnPageCopy, 100)

	wantNonIdle := sim.Time(100 + 50 + 1200 + 50 + 300 + 25 + 10 + 100)
	if got := b.NonIdle(); got != wantNonIdle {
		t.Fatalf("NonIdle = %v, want %v", got, wantNonIdle)
	}
	if got := b.Total(); got != wantNonIdle+500 {
		t.Fatalf("Total = %v, want %v", got, wantNonIdle+500)
	}
}

func TestMemStallSplit(t *testing.T) {
	var b Breakdown
	b.AddStall(User, Data, L2, 50)
	b.AddStall(User, Data, LocalMem, 300)
	b.AddStall(Kernel, Instr, RemoteMem, 1200)
	l2, local, remote := b.MemStall()
	if l2 != 50 || local != 300 || remote != 1200 {
		t.Fatalf("MemStall = %v/%v/%v", l2, local, remote)
	}
}

func TestStallTimeByModeSide(t *testing.T) {
	var b Breakdown
	b.AddStall(User, Instr, RemoteMem, 1000)
	b.AddStall(User, Instr, LocalMem, 300)
	b.AddStall(User, Data, RemoteMem, 700)
	if got := b.StallTime(User, Instr); got != 1300 {
		t.Fatalf("user instr stall = %v", got)
	}
	if got := b.StallTime(Kernel, Instr); got != 0 {
		t.Fatalf("kernel instr stall = %v", got)
	}
}

func TestLocalMissFraction(t *testing.T) {
	var b Breakdown
	if b.LocalMissFraction() != 0 {
		t.Fatal("empty breakdown should report 0")
	}
	b.AddStall(User, Data, LocalMem, 300)
	b.AddStall(User, Data, LocalMem, 300)
	b.AddStall(User, Data, RemoteMem, 1200)
	b.AddStall(User, Data, L2, 50) // must not count as a memory miss
	if got := b.LocalMissFraction(); got < 0.66 || got > 0.67 {
		t.Fatalf("local fraction = %v, want 2/3", got)
	}
}

func TestMerge(t *testing.T) {
	var a, b Breakdown
	a.Compute[User] = 10
	a.AddStall(User, Data, RemoteMem, 100)
	a.Pager.Add(FnTLBFlush, 5)
	a.Idle = 7
	b.Compute[User] = 20
	b.AddStall(User, Data, RemoteMem, 200)
	b.Pager.Add(FnTLBFlush, 15)
	b.Idle = 3
	a.Merge(&b)
	if a.Compute[User] != 30 || a.Stall[User][Data][RemoteMem] != 300 ||
		a.Pager.Time[FnTLBFlush] != 20 || a.Idle != 10 {
		t.Fatalf("merge wrong: %+v", a)
	}
	if a.Misses[User][Data][RemoteMem] != 2 {
		t.Fatalf("miss counts not merged")
	}
}

func TestPagerPercentSumsTo100(t *testing.T) {
	var p PagerBreakdown
	p.Add(FnTLBFlush, 30)
	p.Add(FnPageAlloc, 50)
	p.Add(FnPageCopy, 20)
	sum := 0.0
	for f := 0; f < NumPagerFuncs; f++ {
		sum += p.Percent(PagerFunc(f))
	}
	if sum < 99.99 || sum > 100.01 {
		t.Fatalf("percent sum = %v", sum)
	}
	if p.Percent(FnPageAlloc) != 50 {
		t.Fatalf("alloc percent = %v", p.Percent(FnPageAlloc))
	}
}

func TestPagerEmptyPercent(t *testing.T) {
	var p PagerBreakdown
	if p.Percent(FnTLBFlush) != 0 {
		t.Fatal("empty breakdown should report 0%")
	}
}

func TestOpLatencyMeans(t *testing.T) {
	var p PagerBreakdown
	p.AddOpStep(OpReplicate, FnPageCopy, 100*sim.Microsecond)
	p.AddOpStep(OpReplicate, FnPageCopy, 200*sim.Microsecond)
	p.FinishOp(OpReplicate, 400*sim.Microsecond)
	p.FinishOp(OpReplicate, 600*sim.Microsecond)
	ol := p.OpLatency[OpReplicate]
	if got := ol.MeanStep(FnPageCopy); got != 150 {
		t.Fatalf("mean copy step = %v us", got)
	}
	if got := ol.MeanTotal(); got != 500 {
		t.Fatalf("mean total = %v us", got)
	}
	var empty OpLatency
	if empty.MeanStep(FnPageCopy) != 0 || empty.MeanTotal() != 0 {
		t.Fatal("empty op latency should report 0")
	}
}

func TestPagerFuncNames(t *testing.T) {
	for f := 0; f < NumPagerFuncs; f++ {
		if PagerFunc(f).String() == "unknown" || PagerFunc(f).String() == "" {
			t.Fatalf("pager func %d unnamed", f)
		}
	}
	if OpReplicate.String() != "Repl." || OpMigrate.String() != "Migr." {
		t.Fatal("op kind names wrong")
	}
}

func TestSummaryRenders(t *testing.T) {
	var b Breakdown
	b.Compute[User] = sim.Millisecond
	b.AddStall(User, Data, RemoteMem, sim.Millisecond)
	s := b.Summary()
	if len(s) == 0 {
		t.Fatal("empty summary")
	}
}

func TestCheckInvariants(t *testing.T) {
	var b Breakdown
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("zero ledger flagged: %v", err)
	}
	b.Compute[User] = sim.Millisecond
	b.AddStall(Kernel, Instr, RemoteMem, 200*sim.Microsecond)
	b.TLBRefill = 30 * sim.Microsecond
	b.Pager.Add(FnPageCopy, 10*sim.Microsecond)
	b.Idle = 2 * sim.Millisecond
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("consistent ledger flagged: %v", err)
	}

	bad := b
	bad.Compute[Kernel] = -1
	if bad.CheckInvariants() == nil {
		t.Error("negative compute not caught")
	}
	bad = b
	bad.Stall[User][Data][L2] = -sim.Microsecond
	if bad.CheckInvariants() == nil {
		t.Error("negative stall not caught")
	}
	bad = b
	bad.Idle = -1
	if bad.CheckInvariants() == nil {
		t.Error("negative idle not caught")
	}
	bad = b
	bad.Pager.Time[FnTLBFlush] = -1
	if bad.CheckInvariants() == nil {
		t.Error("negative pager time not caught")
	}
	bad = b
	bad.TLBRefill = -1
	if bad.CheckInvariants() == nil {
		t.Error("negative TLB-refill not caught")
	}
	bad = b
	bad.FaultTime = -1
	if bad.CheckInvariants() == nil {
		t.Error("negative fault time not caught")
	}
}
