// Package stats accumulates the execution-time breakdowns the paper reports:
// Table 3's CPU-time and stall characterisation, Figure 3/6's local/remote
// stall split, and Tables 5-6's kernel-overhead accounting by pager function.
package stats

import (
	"fmt"

	"ccnuma/internal/sim"
)

// Mode distinguishes user from kernel execution.
type Mode int

const (
	// User mode.
	User Mode = iota
	// Kernel mode.
	Kernel
	modeCount
)

// Side distinguishes instruction from data references.
type Side int

const (
	// Instr references are instruction fetches.
	Instr Side = iota
	// Data references are loads and stores.
	Data
	sideCount
)

// Level is where a stalled reference was satisfied.
type Level int

const (
	// L2 hits stall for the secondary-cache access time.
	L2 Level = iota
	// LocalMem is a miss to local memory.
	LocalMem
	// RemoteMem is a miss to remote memory.
	RemoteMem
	levelCount
)

// Breakdown is one CPU's (or an aggregate's) virtual-time ledger.
type Breakdown struct {
	Compute [modeCount]sim.Time
	Stall   [modeCount][sideCount][levelCount]sim.Time
	// Misses counts stalls by the same axes (for miss-ratio statistics).
	Misses [modeCount][sideCount][levelCount]uint64
	// TLBRefill is time in the software TLB-miss handler (kernel time).
	TLBRefill sim.Time
	// FaultTime is page-fault handling outside the pager (kernel time).
	FaultTime sim.Time
	// Pager is kernel overhead spent migrating/replicating, by function.
	Pager PagerBreakdown
	// Idle is time with no runnable process.
	Idle sim.Time

	// Graceful-degradation counters (all zero unless the fault layer's
	// responses are enabled): Deferred operations entered the pager's
	// deferral queue after failing allocation, Retried counts their re-runs,
	// Abandoned the ones dropped after exhausting retries or queue space,
	// and Throttled the hot pages shed by the kernel-overhead budget.
	Deferred  uint64
	Retried   uint64
	Abandoned uint64
	Throttled uint64
}

// AddStall records a stall of duration d.
func (b *Breakdown) AddStall(m Mode, s Side, l Level, d sim.Time) {
	b.Stall[m][s][l] += d
	b.Misses[m][s][l]++
}

// Merge adds o into b.
func (b *Breakdown) Merge(o *Breakdown) {
	for m := 0; m < int(modeCount); m++ {
		b.Compute[m] += o.Compute[m]
		for s := 0; s < int(sideCount); s++ {
			for l := 0; l < int(levelCount); l++ {
				b.Stall[m][s][l] += o.Stall[m][s][l]
				b.Misses[m][s][l] += o.Misses[m][s][l]
			}
		}
	}
	b.TLBRefill += o.TLBRefill
	b.FaultTime += o.FaultTime
	b.Pager.Merge(&o.Pager)
	b.Idle += o.Idle
	b.Deferred += o.Deferred
	b.Retried += o.Retried
	b.Abandoned += o.Abandoned
	b.Throttled += o.Throttled
}

// Total returns all accounted time (the CPU's busy + idle horizon).
func (b *Breakdown) Total() sim.Time {
	return b.NonIdle() + b.Idle
}

// NonIdle returns busy time: compute + all stalls + kernel handlers + pager.
func (b *Breakdown) NonIdle() sim.Time {
	t := b.TLBRefill + b.FaultTime + b.Pager.Total()
	for m := 0; m < int(modeCount); m++ {
		t += b.Compute[m]
		for s := 0; s < int(sideCount); s++ {
			for l := 0; l < int(levelCount); l++ {
				t += b.Stall[m][s][l]
			}
		}
	}
	return t
}

// StallTime sums stall across the selected mode for one side, all levels.
func (b *Breakdown) StallTime(m Mode, s Side) sim.Time {
	var t sim.Time
	for l := 0; l < int(levelCount); l++ {
		t += b.Stall[m][s][l]
	}
	return t
}

// MemStall returns total memory stall (all modes/sides) split by locality;
// L2-hit stall is reported separately.
func (b *Breakdown) MemStall() (l2, local, remote sim.Time) {
	for m := 0; m < int(modeCount); m++ {
		for s := 0; s < int(sideCount); s++ {
			l2 += b.Stall[m][s][L2]
			local += b.Stall[m][s][LocalMem]
			remote += b.Stall[m][s][RemoteMem]
		}
	}
	return
}

// LocalMissFraction returns the fraction of memory misses (excluding L2
// hits) satisfied locally.
func (b *Breakdown) LocalMissFraction() float64 {
	var local, remote uint64
	for m := 0; m < int(modeCount); m++ {
		for s := 0; s < int(sideCount); s++ {
			local += b.Misses[m][s][LocalMem]
			remote += b.Misses[m][s][RemoteMem]
		}
	}
	if local+remote == 0 {
		return 0
	}
	return float64(local) / float64(local+remote)
}

// CheckInvariants validates the ledger's accounting identities: every
// component is non-negative (a negative duration means a double-subtraction
// or overflow somewhere upstream) and the busy/idle split is consistent with
// the total. It returns an error describing the first violation, or nil.
// The sampler runs this in debug mode on every sample.
func (b *Breakdown) CheckInvariants() error {
	for m := 0; m < int(modeCount); m++ {
		if b.Compute[m] < 0 {
			return fmt.Errorf("stats: negative compute[%d] = %v", m, b.Compute[m])
		}
		for s := 0; s < int(sideCount); s++ {
			for l := 0; l < int(levelCount); l++ {
				if b.Stall[m][s][l] < 0 {
					return fmt.Errorf("stats: negative stall[%d][%d][%d] = %v",
						m, s, l, b.Stall[m][s][l])
				}
			}
		}
	}
	if b.TLBRefill < 0 {
		return fmt.Errorf("stats: negative TLB-refill time %v", b.TLBRefill)
	}
	if b.FaultTime < 0 {
		return fmt.Errorf("stats: negative fault time %v", b.FaultTime)
	}
	if b.Idle < 0 {
		return fmt.Errorf("stats: negative idle time %v", b.Idle)
	}
	for f, d := range b.Pager.Time {
		if d < 0 {
			return fmt.Errorf("stats: negative pager time for %v: %v", PagerFunc(f), d)
		}
	}
	if got, want := b.Total(), b.NonIdle()+b.Idle; got != want {
		return fmt.Errorf("stats: total %v != nonidle+idle %v", got, want)
	}
	return nil
}

// PagerFunc indexes the kernel-overhead categories of Table 6.
type PagerFunc int

const (
	// FnIntrProc: taking and dispatching the pager interrupt.
	FnIntrProc PagerFunc = iota
	// FnPolicyDecision: reading counters and running the decision tree.
	FnPolicyDecision
	// FnPageAlloc: allocating the destination frame (includes memlock wait).
	FnPageAlloc
	// FnLinksMapping: linking the new page and updating page tables.
	FnLinksMapping
	// FnTLBFlush: shooting down TLBs.
	FnTLBFlush
	// FnPageCopy: copying the 4 KB of data.
	FnPageCopy
	// FnPolicyEnd: final remapping and cleanup.
	FnPolicyEnd
	// FnPageFault: extra page faults caused by changed mappings.
	FnPageFault
	pagerFuncCount
)

// PagerFuncNames lists display names in Table-6 column order.
var PagerFuncNames = [...]string{
	FnIntrProc:       "Intr. Proc",
	FnPolicyDecision: "Policy Decision",
	FnPageAlloc:      "Page Alloc",
	FnLinksMapping:   "Links & Mapping",
	FnTLBFlush:       "TLB Flush",
	FnPageCopy:       "Page Copying",
	FnPolicyEnd:      "Policy End",
	FnPageFault:      "Page Fault",
}

// String names the function.
func (f PagerFunc) String() string {
	if int(f) < len(PagerFuncNames) {
		return PagerFuncNames[f]
	}
	return "unknown"
}

// NumPagerFuncs is the number of overhead categories.
const NumPagerFuncs = int(pagerFuncCount)

// PagerBreakdown is kernel overhead by function, plus per-operation latency
// sums for Table 5.
type PagerBreakdown struct {
	Time [pagerFuncCount]sim.Time

	// Per-operation latency accounting (Table 5): sums and counts of the
	// end-to-end latency and per-step latencies, split by operation type.
	OpLatency [2]OpLatency // indexed by OpKind
}

// OpKind distinguishes replication from migration for Table 5.
type OpKind int

const (
	// OpReplicate rows of Table 5.
	OpReplicate OpKind = iota
	// OpMigrate rows of Table 5.
	OpMigrate
)

// String names the operation.
func (k OpKind) String() string {
	if k == OpReplicate {
		return "Repl."
	}
	return "Migr."
}

// OpLatency accumulates per-step latencies over operations of one kind.
type OpLatency struct {
	Count uint64
	Step  [pagerFuncCount]sim.Time // summed per-step latency
	Total sim.Time                 // summed end-to-end latency
}

// MeanStep returns the mean latency of one step in microseconds.
func (o OpLatency) MeanStep(f PagerFunc) float64 {
	if o.Count == 0 {
		return 0
	}
	return (o.Step[f] / sim.Time(o.Count)).Micros()
}

// MeanTotal returns the mean end-to-end latency in microseconds.
func (o OpLatency) MeanTotal() float64 {
	if o.Count == 0 {
		return 0
	}
	return (o.Total / sim.Time(o.Count)).Micros()
}

// Add records time d against function f.
func (p *PagerBreakdown) Add(f PagerFunc, d sim.Time) {
	p.Time[f] += d
}

// AddOpStep records step latency for one operation of kind k.
func (p *PagerBreakdown) AddOpStep(k OpKind, f PagerFunc, d sim.Time) {
	p.OpLatency[k].Step[f] += d
}

// FinishOp records one completed operation with end-to-end latency total.
func (p *PagerBreakdown) FinishOp(k OpKind, total sim.Time) {
	p.OpLatency[k].Count++
	p.OpLatency[k].Total += total
}

// Total returns all pager overhead.
func (p *PagerBreakdown) Total() sim.Time {
	var t sim.Time
	for _, d := range p.Time {
		t += d
	}
	return t
}

// Percent returns function f's share of total pager overhead (0-100).
func (p *PagerBreakdown) Percent(f PagerFunc) float64 {
	tot := p.Total()
	if tot == 0 {
		return 0
	}
	return 100 * float64(p.Time[f]) / float64(tot)
}

// Merge adds o into p.
func (p *PagerBreakdown) Merge(o *PagerBreakdown) {
	for i := range p.Time {
		p.Time[i] += o.Time[i]
	}
	for k := range p.OpLatency {
		p.OpLatency[k].Count += o.OpLatency[k].Count
		p.OpLatency[k].Total += o.OpLatency[k].Total
		for i := range p.OpLatency[k].Step {
			p.OpLatency[k].Step[i] += o.OpLatency[k].Step[i]
		}
	}
}

// Summary renders the headline numbers of a breakdown.
func (b *Breakdown) Summary() string {
	l2, local, remote := b.MemStall()
	return fmt.Sprintf(
		"total=%v nonidle=%v idle=%v user=%v kernel=%v l2stall=%v localstall=%v remotestall=%v pager=%v local%%=%.1f",
		b.Total(), b.NonIdle(), b.Idle, b.Compute[User], b.Compute[Kernel],
		l2, local, remote, b.Pager.Total(), 100*b.LocalMissFraction())
}
