// Package tlb models a per-CPU translation lookaside buffer. The paper's
// machine has 64-entry software-reloaded TLBs; TLB misses are both a cost
// (the software refill) and one of the candidate information sources for the
// migration/replication policy (Section 8.3).
//
// Entries are tagged with an address-space id, so context switches need no
// flush; TLB shootdowns (pager step 6) flush the whole TLB, as the IRIX
// implementation in the paper does.
//
// The entry also carries the read-only protection bit. Replicated pages are
// mapped read-only, so the first store after a replication traps through the
// TLB entry and vectors to the page-collapse path — the exact mechanism of
// the paper's pfault handler.
package tlb

import (
	"fmt"

	"ccnuma/internal/mem"
)

type entry struct {
	page  mem.GPage
	asid  mem.ProcID
	pfn   mem.PFN
	ro    bool
	valid bool
}

// TLB is a set-associative translation buffer. Construct with New.
type TLB struct {
	sets   int
	assoc  int
	mask   uint32 // sets-1 when sets is a power of two
	pow2   bool
	ways   []entry // way 0 of a set is MRU
	hits   uint64
	misses uint64
}

// New builds a TLB with entries total entries and the given associativity.
func New(entries, assoc int) *TLB {
	if entries <= 0 || assoc <= 0 || entries%assoc != 0 {
		panic(fmt.Sprintf("tlb: bad geometry entries=%d assoc=%d", entries, assoc))
	}
	t := &TLB{sets: entries / assoc, assoc: assoc, ways: make([]entry, entries)}
	// Power-of-two set counts (the realistic case) index by mask, keeping an
	// idiv out of every translation.
	if t.sets&(t.sets-1) == 0 {
		t.mask, t.pow2 = uint32(t.sets-1), true
	}
	return t
}

// Stats returns cumulative hit and miss counts.
func (t *TLB) Stats() (hits, misses uint64) { return t.hits, t.misses }

func (t *TLB) set(p mem.GPage) []entry {
	var s int
	if t.pow2 {
		s = int(uint32(p) & t.mask)
	} else {
		s = int(uint32(p) % uint32(t.sets))
	}
	return t.ways[s*t.assoc : (s+1)*t.assoc]
}

// Lookup probes for a translation of page p in address space asid. On a hit
// it returns the frame and protection; on a miss ok is false and the caller
// models the software refill.
func (t *TLB) Lookup(asid mem.ProcID, p mem.GPage) (pfn mem.PFN, ro bool, ok bool) {
	set := t.set(p)
	// MRU (way 0) takes most hits; answering it before the scan skips the
	// move-to-front copy, which is a no-op at way 0 anyway.
	if e := &set[0]; e.valid && e.page == p && e.asid == asid {
		t.hits++
		return e.pfn, e.ro, true
	}
	for i := 1; i < len(set); i++ {
		if set[i].valid && set[i].page == p && set[i].asid == asid {
			e := set[i]
			copy(set[1:i+1], set[:i])
			set[0] = e
			t.hits++
			return e.pfn, e.ro, true
		}
	}
	t.misses++
	return mem.NoFrame, false, false
}

// Insert installs a translation, evicting the set's LRU entry.
func (t *TLB) Insert(asid mem.ProcID, p mem.GPage, pfn mem.PFN, ro bool) {
	set := t.set(p)
	for i := range set {
		if set[i].valid && set[i].page == p && set[i].asid == asid {
			copy(set[1:i+1], set[:i])
			set[0] = entry{page: p, asid: asid, pfn: pfn, ro: ro, valid: true}
			return
		}
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = entry{page: p, asid: asid, pfn: pfn, ro: ro, valid: true}
}

// FlushAll invalidates every entry (a TLB shootdown).
func (t *TLB) FlushAll() {
	for i := range t.ways {
		t.ways[i].valid = false
	}
}

// FlushPage invalidates all translations of page p across address spaces.
func (t *TLB) FlushPage(p mem.GPage) {
	set := t.set(p)
	for i := range set {
		if set[i].valid && set[i].page == p {
			set[i].valid = false
		}
	}
}

// HoldsPage reports whether any valid entry translates page p. The
// TrackTLBHolders ablation uses this to flush only the TLBs that actually
// hold a mapping.
func (t *TLB) HoldsPage(p mem.GPage) bool {
	set := t.set(p)
	for i := range set {
		if set[i].valid && set[i].page == p {
			return true
		}
	}
	return false
}

// Valid returns the number of valid entries (test helper).
func (t *TLB) Valid() int {
	n := 0
	for i := range t.ways {
		if t.ways[i].valid {
			n++
		}
	}
	return n
}
