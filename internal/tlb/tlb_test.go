package tlb

import (
	"testing"
	"testing/quick"

	"ccnuma/internal/mem"
	"ccnuma/internal/sim"
)

func TestLookupMissThenHit(t *testing.T) {
	tb := New(64, 4)
	if _, _, ok := tb.Lookup(1, 10); ok {
		t.Fatal("hit in empty TLB")
	}
	tb.Insert(1, 10, 99, true)
	pfn, ro, ok := tb.Lookup(1, 10)
	if !ok || pfn != 99 || !ro {
		t.Fatalf("Lookup = (%v,%v,%v), want (99,true,true)", pfn, ro, ok)
	}
	hits, misses := tb.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 1/1", hits, misses)
	}
}

func TestASIDSeparation(t *testing.T) {
	tb := New(64, 4)
	tb.Insert(1, 10, 5, false)
	if _, _, ok := tb.Lookup(2, 10); ok {
		t.Fatal("translation leaked across address spaces")
	}
	tb.Insert(2, 10, 7, false)
	p1, _, _ := tb.Lookup(1, 10)
	p2, _, _ := tb.Lookup(2, 10)
	if p1 != 5 || p2 != 7 {
		t.Fatalf("per-ASID pfns = %d,%d, want 5,7", p1, p2)
	}
}

func TestInsertUpdatesExisting(t *testing.T) {
	tb := New(64, 4)
	tb.Insert(1, 10, 5, false)
	tb.Insert(1, 10, 6, true) // remap (e.g. after migration) with new prot
	pfn, ro, ok := tb.Lookup(1, 10)
	if !ok || pfn != 6 || !ro {
		t.Fatalf("updated entry = (%v,%v,%v), want (6,true,true)", pfn, ro, ok)
	}
	if tb.Valid() != 1 {
		t.Fatalf("valid entries = %d, want 1 (update must not duplicate)", tb.Valid())
	}
}

func TestLRUWithinSet(t *testing.T) {
	tb := New(4, 4) // one set of four ways
	for p := mem.GPage(0); p < 4; p++ {
		tb.Insert(1, p*4, mem.PFN(p), false) // stride keeps them in one set
	}
	tb.Lookup(1, 0) // page 0 becomes MRU; page 4 is LRU
	tb.Insert(1, 16, 99, false)
	if _, _, ok := tb.Lookup(1, 4); ok {
		t.Fatal("LRU entry survived")
	}
	if _, _, ok := tb.Lookup(1, 0); !ok {
		t.Fatal("MRU entry evicted")
	}
}

func TestFlushAll(t *testing.T) {
	tb := New(64, 4)
	for p := mem.GPage(0); p < 32; p++ {
		tb.Insert(1, p, mem.PFN(p), false)
	}
	tb.FlushAll()
	if tb.Valid() != 0 {
		t.Fatalf("%d entries survived shootdown", tb.Valid())
	}
}

func TestFlushPageAllASIDs(t *testing.T) {
	tb := New(64, 4)
	tb.Insert(1, 10, 5, false)
	tb.Insert(2, 10, 6, false)
	tb.Insert(1, 11, 7, false)
	tb.FlushPage(10)
	if tb.HoldsPage(10) {
		t.Fatal("page 10 still translated after FlushPage")
	}
	if !tb.HoldsPage(11) {
		t.Fatal("unrelated page flushed")
	}
}

func TestHoldsPage(t *testing.T) {
	tb := New(64, 4)
	if tb.HoldsPage(3) {
		t.Fatal("empty TLB claims to hold a page")
	}
	tb.Insert(4, 3, 9, false)
	if !tb.HoldsPage(3) {
		t.Fatal("HoldsPage false after insert")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for entries not divisible by assoc")
		}
	}()
	New(10, 4)
}

// Property: after any operation sequence, no stale translation survives a
// shootdown, and lookups never return an entry for the wrong (asid, page).
func TestTLBConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRand(seed)
		tb := New(16, 4)
		shadow := map[[2]int]mem.PFN{} // only tracks most recent inserts still plausibly resident
		for i := 0; i < 300; i++ {
			asid := mem.ProcID(r.Intn(3))
			page := mem.GPage(r.Intn(10))
			switch r.Intn(3) {
			case 0:
				pfn := mem.PFN(r.Intn(100))
				tb.Insert(asid, page, pfn, false)
				shadow[[2]int{int(asid), int(page)}] = pfn
			case 1:
				if pfn, _, ok := tb.Lookup(asid, page); ok {
					want, present := shadow[[2]int{int(asid), int(page)}]
					if !present || pfn != want {
						return false // hit returned a translation never inserted
					}
				}
			case 2:
				tb.FlushAll()
				shadow = map[[2]int]mem.PFN{}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
