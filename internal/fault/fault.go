// Package fault is the simulator's chaos layer: a deterministic, seed-driven
// injector of the hostile conditions the paper's policies must survive —
// a node's memory draining away mid-run, hot-page interrupts lost or delayed
// on their way from the directory to the pager, transient allocation
// failures, and a degraded interconnect link.
//
// The injector owns its own sim.Rand stream seeded independently of every
// other stochastic component, so enabling a fault never perturbs workload,
// scheduler, or placement randomness — and with the zero Config the injector
// is never built at all, leaving runs byte-identical to a fault-free build.
// For a fixed Config and seed the injected fault sequence is itself
// deterministic, so chaos runs are as reproducible as clean ones.
package fault

import (
	"fmt"

	"ccnuma/internal/mem"
	"ccnuma/internal/obs"
	"ccnuma/internal/sim"
)

// Config selects which faults to inject. It is a pure value type (no
// functions, no pointers) so core.Options.Fingerprint covers every field and
// memoized runs with different fault settings never collide. The zero value
// disables everything. The JSON tags are the wire shape numasimd requests
// use to carry a fault config (deterministic chaos as a service); omitempty
// keeps a fault-free request's body free of fault noise.
type Config struct {
	// Seed seeds the injector's private RNG stream; 0 derives one from the
	// run seed.
	Seed uint64 `json:"seed,omitempty"`

	// DrainNode's memory is taken offline at DrainAt: new allocations on the
	// node fail, AllocAnywhere skips it, and every replica resident there is
	// evicted. A drain happens only when DrainAt > 0.
	DrainNode int      `json:"drain_node,omitempty"`
	DrainAt   sim.Time `json:"drain_at,omitempty"`

	// DropBatch is the probability a hot-page interrupt batch is lost before
	// reaching the pager (the pages stay hot and re-trigger later).
	DropBatch float64 `json:"drop_batch,omitempty"`
	// DelayBatch is the probability a batch is delayed by DelayBy instead of
	// being delivered immediately (0 DelayBy uses a 200us default).
	DelayBatch float64  `json:"delay_batch,omitempty"`
	DelayBy    sim.Time `json:"delay_by,omitempty"`

	// AllocFail is the probability one allocation attempt fails transiently,
	// inside the window [AllocFailFrom, AllocFailUntil); a zero AllocFailUntil
	// extends the window to the end of the run.
	AllocFail      float64  `json:"alloc_fail,omitempty"`
	AllocFailFrom  sim.Time `json:"alloc_fail_from,omitempty"`
	AllocFailUntil sim.Time `json:"alloc_fail_until,omitempty"`

	// SlowFactor > 1 multiplies the latency of remote misses to or from
	// SlowNode (a degraded interconnect link).
	SlowNode   int     `json:"slow_node,omitempty"`
	SlowFactor float64 `json:"slow_factor,omitempty"`

	// DeferFailedOps enables the pager's graceful-degradation response:
	// migrations/replications that fail allocation enter a bounded deferral
	// queue and retry with exponential backoff instead of being dropped.
	DeferFailedOps bool `json:"defer_failed_ops,omitempty"`
	// OverheadBudget, when positive, throttles pager work: hot-page batches
	// arriving while the pager's share of CPU time exceeds this fraction are
	// shed cheaply (the paper's kernel-overhead concern).
	OverheadBudget float64 `json:"overhead_budget,omitempty"`
}

// Enabled reports whether any fault or degradation response is configured.
// core builds an Injector only when this is true.
func (c Config) Enabled() bool {
	return c.DrainAt > 0 || c.DropBatch > 0 || c.DelayBatch > 0 ||
		c.AllocFail > 0 || c.SlowFactor > 1 ||
		c.DeferFailedOps || c.OverheadBudget > 0
}

// Validate checks the configuration against the machine's node count.
func (c Config) Validate(nodes int) error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"DropBatch", c.DropBatch}, {"DelayBatch", c.DelayBatch}, {"AllocFail", c.AllocFail}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s = %v outside [0, 1]", p.name, p.v)
		}
	}
	if c.DrainAt > 0 && (c.DrainNode < 0 || c.DrainNode >= nodes) {
		return fmt.Errorf("fault: DrainNode %d outside the machine's %d nodes", c.DrainNode, nodes)
	}
	if c.SlowFactor > 1 && (c.SlowNode < 0 || c.SlowNode >= nodes) {
		return fmt.Errorf("fault: SlowNode %d outside the machine's %d nodes", c.SlowNode, nodes)
	}
	if c.SlowFactor != 0 && c.SlowFactor < 1 {
		return fmt.Errorf("fault: SlowFactor %v < 1 would speed the link up", c.SlowFactor)
	}
	if c.OverheadBudget != 0 && (c.OverheadBudget < 0 || c.OverheadBudget >= 1) {
		return fmt.Errorf("fault: OverheadBudget %v outside (0, 1)", c.OverheadBudget)
	}
	if c.AllocFailUntil != 0 && c.AllocFailUntil < c.AllocFailFrom {
		return fmt.Errorf("fault: AllocFail window [%v, %v) is empty", c.AllocFailFrom, c.AllocFailUntil)
	}
	return nil
}

// Stats counts what the injector actually did during a run.
type Stats struct {
	// AllocFailures is the number of allocation attempts failed transiently.
	AllocFailures uint64 `json:"alloc_failures"`
	// BatchesDropped / BatchesDelayed count hot-page interrupt batches lost
	// or postponed on the way to the pager.
	BatchesDropped uint64 `json:"batches_dropped"`
	BatchesDelayed uint64 `json:"batches_delayed"`
	// SlowedMisses counts remote misses inflated by the degraded link.
	SlowedMisses uint64 `json:"slowed_misses"`
	// DrainedNode is the node taken offline (-1 when no drain ran) and
	// ReplicasEvicted how many replicas the drain sweep reclaimed there.
	DrainedNode     int `json:"drained_node"`
	ReplicasEvicted int `json:"replicas_evicted"`
}

// Injector draws fault decisions from its private RNG stream. The nil
// *Injector is the disabled state: On reports false and every hook is inert,
// mirroring the obs.Tracer convention.
type Injector struct {
	// Obs, when enabled, receives a KindFaultInjected event for each fault
	// that fires (Action names the fault).
	Obs *obs.Tracer

	cfg   Config
	rng   *sim.Rand
	clock func() sim.Time
	stats Stats
}

// New builds an injector for the given configuration. runSeed derives the
// private stream when cfg.Seed is zero; clock supplies the current virtual
// time (the AllocFail window needs it — the allocator itself is clockless).
func New(cfg Config, runSeed uint64, clock func() sim.Time) *Injector {
	seed := cfg.Seed
	if seed == 0 {
		// An arbitrary odd multiplier keeps the derived stream disjoint from
		// the workload (seed^0xabcdef) and respawn (seed*2654435761+1) streams.
		seed = runSeed*0x9e3779b97f4a7c15 + 0xfa01
	}
	if clock == nil {
		clock = func() sim.Time { return 0 }
	}
	in := &Injector{cfg: cfg, rng: sim.NewRand(seed), clock: clock}
	in.stats.DrainedNode = -1
	return in
}

// On reports whether the injector is active. Safe on nil.
func (in *Injector) On() bool { return in != nil }

// Config returns the active configuration (zero value on nil).
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// Stats returns what was injected so far (zero value on nil).
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{DrainedNode: -1}
	}
	return in.stats
}

// AllocShouldFail is the allocator's fault hook: it reports whether this
// allocation attempt on node n fails transiently. The RNG is drawn only when
// the fault is configured and the clock is inside the failure window, so an
// unrelated fault (say, batch drops) sees the same stream with or without
// AllocFail configured runs elsewhere.
func (in *Injector) AllocShouldFail(n mem.NodeID) bool {
	if in == nil || in.cfg.AllocFail <= 0 {
		return false
	}
	now := in.clock()
	if now < in.cfg.AllocFailFrom {
		return false
	}
	if in.cfg.AllocFailUntil > 0 && now >= in.cfg.AllocFailUntil {
		return false
	}
	if !in.rng.Bool(in.cfg.AllocFail) {
		return false
	}
	in.stats.AllocFailures++
	in.emit("alloc-fail", int(n), 1)
	return true
}

// BatchFate draws the fate of one hot-page interrupt batch: dropped, delayed
// by the returned duration, or (false, 0) delivered normally.
func (in *Injector) BatchFate() (drop bool, delay sim.Time) {
	if in == nil {
		return false, 0
	}
	if in.cfg.DropBatch > 0 && in.rng.Bool(in.cfg.DropBatch) {
		in.stats.BatchesDropped++
		in.emit("drop-batch", -1, 1)
		return true, 0
	}
	if in.cfg.DelayBatch > 0 && in.rng.Bool(in.cfg.DelayBatch) {
		d := in.cfg.DelayBy
		if d <= 0 {
			d = 200 * sim.Microsecond
		}
		in.stats.BatchesDelayed++
		in.emit("delay-batch", -1, 1)
		return false, d
	}
	return false, 0
}

// ExtraRemoteLatency is the memory system's degraded-link hook: the extra
// latency to add to a remote miss of base latency lat between the
// requester's node and the page's home node.
func (in *Injector) ExtraRemoteLatency(local, home mem.NodeID, lat sim.Time) sim.Time {
	if in == nil || in.cfg.SlowFactor <= 1 {
		return 0
	}
	if int(local) != in.cfg.SlowNode && int(home) != in.cfg.SlowNode {
		return 0
	}
	in.stats.SlowedMisses++
	return sim.Time(float64(lat) * (in.cfg.SlowFactor - 1))
}

// NoteDrain records a completed node drain (core orchestrates the drain
// itself: it owns the allocator and the pager's eviction sweep).
func (in *Injector) NoteDrain(node mem.NodeID, evicted int) {
	if in == nil {
		return
	}
	in.stats.DrainedNode = int(node)
	in.stats.ReplicasEvicted = evicted
	in.emit("drain-node", int(node), evicted)
}

// emit records one fault event with Action naming the fault.
func (in *Injector) emit(action string, node, n int) {
	if !in.Obs.On() {
		return
	}
	e := obs.NewEvent(obs.KindFaultInjected)
	e.Node = node
	e.Action = action
	e.N = n
	in.Obs.EmitNow(e)
}
