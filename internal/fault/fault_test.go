package fault

import (
	"testing"

	"ccnuma/internal/sim"
)

func TestZeroConfigDisabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero Config reports enabled")
	}
	// DrainNode alone (no DrainAt) must not enable: node 0 is a valid node id,
	// so the zero value of DrainNode cannot mean "drain node 0".
	if (Config{DrainNode: 3}).Enabled() {
		t.Fatal("DrainNode without DrainAt reports enabled")
	}
	if (Config{SlowNode: 2}).Enabled() {
		t.Fatal("SlowNode without SlowFactor reports enabled")
	}
	for _, c := range []Config{
		{DrainAt: sim.Millisecond},
		{DropBatch: 0.1},
		{DelayBatch: 0.1},
		{AllocFail: 0.1},
		{SlowFactor: 2},
		{DeferFailedOps: true},
		{OverheadBudget: 0.2},
	} {
		if !c.Enabled() {
			t.Fatalf("%+v reports disabled", c)
		}
	}
}

func TestValidate(t *testing.T) {
	ok := []Config{
		{},
		{DrainNode: 3, DrainAt: sim.Millisecond},
		{SlowNode: 0, SlowFactor: 4},
		{AllocFail: 0.5, AllocFailFrom: sim.Millisecond, AllocFailUntil: 2 * sim.Millisecond},
		{OverheadBudget: 0.25},
	}
	for _, c := range ok {
		if err := c.Validate(4); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
	bad := []Config{
		{DropBatch: 1.5},
		{AllocFail: -0.1},
		{DrainNode: 4, DrainAt: sim.Millisecond},
		{DrainNode: -1, DrainAt: sim.Millisecond},
		{SlowNode: 9, SlowFactor: 2},
		{SlowFactor: 0.5},
		{OverheadBudget: 1.5},
		{AllocFail: 0.5, AllocFailFrom: 2 * sim.Millisecond, AllocFailUntil: sim.Millisecond},
	}
	for _, c := range bad {
		if err := c.Validate(4); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid config", c)
		}
	}
}

func TestNilInjectorInert(t *testing.T) {
	var in *Injector
	if in.On() {
		t.Fatal("nil injector reports on")
	}
	if in.AllocShouldFail(0) {
		t.Fatal("nil injector fails allocations")
	}
	if drop, delay := in.BatchFate(); drop || delay != 0 {
		t.Fatal("nil injector touches batches")
	}
	if in.ExtraRemoteLatency(0, 1, sim.Microsecond) != 0 {
		t.Fatal("nil injector slows misses")
	}
	in.NoteDrain(0, 3)
	if s := in.Stats(); s.DrainedNode != -1 {
		t.Fatalf("nil injector stats = %+v, want DrainedNode -1", s)
	}
}

// Two injectors with the same config and seed must draw identical fault
// sequences — chaos runs are as reproducible as clean ones.
func TestDeterministicSequence(t *testing.T) {
	cfg := Config{DropBatch: 0.3, DelayBatch: 0.3, AllocFail: 0.4}
	a := New(cfg, 42, nil)
	b := New(cfg, 42, nil)
	for i := 0; i < 500; i++ {
		ad, adl := a.BatchFate()
		bd, bdl := b.BatchFate()
		if ad != bd || adl != bdl {
			t.Fatalf("batch fate diverged at draw %d: (%v,%v) vs (%v,%v)", i, ad, adl, bd, bdl)
		}
		if a.AllocShouldFail(0) != b.AllocShouldFail(0) {
			t.Fatalf("alloc fate diverged at draw %d", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Stats().BatchesDropped == 0 || a.Stats().AllocFailures == 0 {
		t.Fatalf("faults never fired: %+v", a.Stats())
	}
}

func TestExplicitSeedOverridesRunSeed(t *testing.T) {
	cfg := Config{DropBatch: 0.5, Seed: 7}
	a := New(cfg, 1, nil)
	b := New(cfg, 99, nil)
	for i := 0; i < 200; i++ {
		ad, _ := a.BatchFate()
		bd, _ := b.BatchFate()
		if ad != bd {
			t.Fatalf("explicit seed did not pin the stream (draw %d)", i)
		}
	}
}

func TestAllocFailWindow(t *testing.T) {
	now := sim.Time(0)
	in := New(Config{AllocFail: 1, AllocFailFrom: 10, AllocFailUntil: 20},
		42, func() sim.Time { return now })
	for _, tc := range []struct {
		at   sim.Time
		want bool
	}{{5, false}, {10, true}, {19, true}, {20, false}, {100, false}} {
		now = tc.at
		if got := in.AllocShouldFail(0); got != tc.want {
			t.Errorf("AllocShouldFail at t=%v = %v, want %v", tc.at, got, tc.want)
		}
	}
	if in.Stats().AllocFailures != 2 {
		t.Fatalf("counted %d failures, want 2", in.Stats().AllocFailures)
	}

	// A zero AllocFailUntil extends the window to the end of the run.
	open := New(Config{AllocFail: 1, AllocFailFrom: 10}, 42, func() sim.Time { return now })
	now = 1 << 40
	if !open.AllocShouldFail(0) {
		t.Fatal("open-ended window closed early")
	}
}

func TestExtraRemoteLatency(t *testing.T) {
	in := New(Config{SlowNode: 2, SlowFactor: 4}, 42, nil)
	base := 10 * sim.Microsecond
	if got := in.ExtraRemoteLatency(0, 2, base); got != 3*base {
		t.Fatalf("to slow node: extra = %v, want %v", got, 3*base)
	}
	if got := in.ExtraRemoteLatency(2, 0, base); got != 3*base {
		t.Fatalf("from slow node: extra = %v, want %v", got, 3*base)
	}
	if got := in.ExtraRemoteLatency(0, 1, base); got != 0 {
		t.Fatalf("unrelated link slowed by %v", got)
	}
	if in.Stats().SlowedMisses != 2 {
		t.Fatalf("counted %d slowed misses, want 2", in.Stats().SlowedMisses)
	}
}

// Draws happen only for configured faults: an injector with just DropBatch set
// must leave the alloc path untouched, so adding one fault never perturbs the
// sequence another fault sees.
func TestStreamIsolation(t *testing.T) {
	dropOnly := New(Config{DropBatch: 0.5}, 42, nil)
	both := New(Config{DropBatch: 0.5, AllocFail: 0.5}, 42, nil)
	for i := 0; i < 100; i++ {
		if dropOnly.AllocShouldFail(0) {
			t.Fatal("unconfigured alloc fault fired")
		}
		// Interleave alloc probes with batch draws: the drop-only injector's
		// batch stream must not shift.
		d1, _ := dropOnly.BatchFate()
		_ = both.AllocShouldFail(0)
		d2, _ := both.BatchFate()
		_ = d1
		_ = d2
	}
	if dropOnly.Stats().AllocFailures != 0 {
		t.Fatal("drop-only injector counted alloc failures")
	}
}
