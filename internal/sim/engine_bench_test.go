package sim

import "testing"

// BenchmarkEngineQueue compares the two scheduling APIs on the pattern the
// machine simulator actually runs: a self-rescheduling event chain. The
// closure form allocates a fresh closure per event (the pre-typed-path hot
// path); the typed form schedules a plain heap item and must report 0
// allocs/op.
func BenchmarkEngineQueue(b *testing.B) {
	b.Run("closure", func(b *testing.B) {
		b.ReportAllocs()
		var e Engine
		n := 0
		var step func(now Time)
		step = func(now Time) {
			n++
			if n < b.N {
				e.After(1, func(now Time) { step(now) })
			}
		}
		b.ResetTimer()
		e.After(1, func(now Time) { step(now) })
		e.Run()
	})
	b.Run("typed", func(b *testing.B) {
		b.ReportAllocs()
		var e Engine
		n := 0
		var kind Kind
		kind = e.Register(func(now Time, arg uint64) {
			n++
			if n < b.N {
				e.AfterKind(1, kind, arg)
			}
		})
		b.ResetTimer()
		e.AfterKind(1, kind, 0)
		e.Run()
	})
}

// TestEngineTypedScheduleZeroAllocs pins the typed path's allocation claim
// with testing.AllocsPerRun: once the heap has its capacity, a
// schedule+dispatch round allocates nothing.
func TestEngineTypedScheduleZeroAllocs(t *testing.T) {
	var e Engine
	kind := e.Register(func(Time, uint64) {})
	// Warm the heap's backing array.
	for i := 0; i < 64; i++ {
		e.AfterKind(1, kind, 0)
	}
	e.Run()
	avg := testing.AllocsPerRun(100, func() {
		e.AfterKind(1, kind, 0)
		e.Step()
	})
	if avg != 0 {
		t.Fatalf("typed schedule+dispatch allocates %.1f per round, want 0", avg)
	}
}
