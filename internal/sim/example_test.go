package sim_test

import (
	"fmt"

	"ccnuma/internal/sim"
)

// The event engine dispatches callbacks in virtual-time order; equal times
// fire in scheduling order. All of the machine's components — CPUs, the
// pager, counter resets, process wakeups — are events on one engine.
func ExampleEngine() {
	var e sim.Engine
	e.At(2*sim.Microsecond, func(now sim.Time) {
		fmt.Println("miss completes at", now)
	})
	e.At(sim.Microsecond, func(now sim.Time) {
		fmt.Println("pager interrupt at", now)
		e.After(5*sim.Microsecond, func(now sim.Time) {
			fmt.Println("pages moved by", now)
		})
	})
	e.Run()
	fmt.Println("clock stops at", e.Now())
	// Output:
	// pager interrupt at 1.00us
	// miss completes at 2.00us
	// pages moved by 6.00us
	// clock stops at 6.00us
}
