package sim

// ShardStats is the sharded engine's introspection layer: per-lane dispatch
// counts, heap high-water marks, cross-lane traffic, barrier stalls, and a
// windowed dispatch timeline. A nil *ShardStats is the disabled state — every
// hook is guarded by the same one-branch nil-check discipline as the obs
// tracer, so an engine without stats pays one branch per hook site and
// nothing else (pinned by BenchmarkShardStatsDisabled).
//
// All virtual-time fields are deterministic: they derive only from the event
// sequence, which is itself deterministic at any worker count (the epoch
// barrier's drain order) and observationally identical at any lane count
// (the serialized merge). The one wall-clock field, LaneStat.BarrierStallWall,
// is filled only when a caller outside the deterministic packages injects
// WallClock; it is excluded from every deterministic export.
type ShardStats struct {
	// WallClock, when set, supplies wall-clock nanoseconds for measuring how
	// long each lane waits at the epoch barrier for the slowest lane. It must
	// be injected from outside the deterministic packages (tests, servers);
	// the sim package itself never reads the wall clock. Epoch-mode lane
	// workers call it concurrently, so it must be goroutine-safe (time.Now
	// is; a test fake needs an atomic).
	WallClock func() int64

	lanes  int
	window Time

	lane    []LaneStat
	traffic []uint64 // cross-lane posts, indexed src*lanes+dst

	epochs   uint64
	posts    uint64
	maxDrain int

	// Windowed timeline, stored flat to bound allocation: one record per
	// serialized-merge bucket or per epoch. winLane holds lanes entries per
	// window (the per-lane dispatch counts inside it).
	winStart []Time
	winEnd   []Time
	winDrain []int32
	winLane  []uint64

	// Serialized-merge bucketing state.
	curOpen bool
	curEnd  Time

	// Epoch bookkeeping: the per-lane dispatch totals at the previous
	// barrier (for per-epoch deltas) and each lane's wall finish time within
	// the current epoch (for wall barrier stalls).
	epochPrev    []uint64
	laneWallDone []int64
}

// LaneStat is one lane's counters.
type LaneStat struct {
	// Dispatched counts events this lane fired.
	Dispatched uint64
	// HeapMax is the lane heap's high-water mark (peak pending events).
	HeapMax int
	// Sent and Recv count cross-lane posts leaving and entering the lane
	// (epoch-mode mailbox posts, or cross-lane schedules under the
	// serialized merge).
	Sent uint64
	Recv uint64
	// BarrierStall is the virtual time the lane spent parked at epoch
	// barriers waiting for the window to close.
	BarrierStall Time
	// BarrierStallWall is the wall-clock time (ns) the lane spent finished
	// at a barrier waiting for the slowest lane. Zero unless WallClock is
	// set; never part of a deterministic export.
	BarrierStallWall int64
}

// EnableStats attaches a stats collector to the engine and returns it.
// window buckets the serialized merge's dispatch timeline (<= 0 disables
// that timeline; epoch mode records one window per epoch regardless).
func (s *Sharded) EnableStats(window Time) *ShardStats {
	n := len(s.lanes)
	st := &ShardStats{
		lanes:        n,
		window:       window,
		lane:         make([]LaneStat, n),
		traffic:      make([]uint64, n*n),
		epochPrev:    make([]uint64, n),
		laneWallDone: make([]int64, n),
	}
	s.stats = st
	return st
}

// Stats returns the engine's stats collector (nil when disabled).
func (s *Sharded) Stats() *ShardStats { return s.stats }

// On reports whether the collector is attached. Safe on nil.
func (st *ShardStats) On() bool { return st != nil }

// Lanes returns the lane count the collector was built for. Safe on nil.
func (st *ShardStats) Lanes() int {
	if st == nil {
		return 0
	}
	return st.lanes
}

// Lane returns lane i's counters.
func (st *ShardStats) Lane(i int) LaneStat { return st.lane[i] }

// Traffic returns the number of cross-lane posts sent from src to dst.
func (st *ShardStats) Traffic(src, dst int) uint64 { return st.traffic[src*st.lanes+dst] }

// Epochs returns how many epoch windows RunEpochs has completed.
func (st *ShardStats) Epochs() uint64 { return st.epochs }

// Posts returns the total cross-lane post count.
func (st *ShardStats) Posts() uint64 { return st.posts }

// MaxDrain returns the largest single barrier drain (posts delivered at one
// epoch boundary).
func (st *ShardStats) MaxDrain() int { return st.maxDrain }

// Window returns the serialized-merge timeline bucket width.
func (st *ShardStats) Window() Time { return st.window }

// Windows returns the number of timeline records (serialized buckets plus
// epochs).
func (st *ShardStats) Windows() int { return len(st.winStart) }

// WindowAt returns timeline record i: its time bounds, the posts drained at
// its closing barrier (epoch windows only), and the per-lane dispatch counts
// inside it. The returned slice aliases the collector's storage; do not
// mutate.
func (st *ShardStats) WindowAt(i int) (start, end Time, drained int, dispatch []uint64) {
	return st.winStart[i], st.winEnd[i], int(st.winDrain[i]),
		st.winLane[i*st.lanes : (i+1)*st.lanes]
}

// NoteDispatch records one serialized-merge dispatch on a lane, bucketing it
// into the windowed timeline. Single-threaded by construction (the
// serialized merge runs on one goroutine). No-op on nil.
func (st *ShardStats) NoteDispatch(lane int, now Time) {
	if st == nil {
		return
	}
	st.lane[lane].Dispatched++
	if st.window <= 0 {
		return
	}
	if !st.curOpen || now >= st.curEnd {
		st.roll(now)
	}
	st.winLane[len(st.winLane)-st.lanes+lane]++
}

// roll opens the timeline bucket containing now.
func (st *ShardStats) roll(now Time) {
	start := now / st.window * st.window
	st.curOpen = true
	st.curEnd = start + st.window
	st.winStart = append(st.winStart, start)
	st.winEnd = append(st.winEnd, st.curEnd)
	st.winDrain = append(st.winDrain, 0)
	for i := 0; i < st.lanes; i++ {
		st.winLane = append(st.winLane, 0)
	}
}

// NoteLaneDispatch records one epoch-mode dispatch. Lane-confined: it
// touches only lane's own entry, so concurrent lanes never race. The epoch
// timeline is filled in at the barrier (noteEpoch) instead of per event.
// No-op on nil.
func (st *ShardStats) NoteLaneDispatch(lane int) {
	if st == nil {
		return
	}
	st.lane[lane].Dispatched++
}

// NoteCross records one cross-lane post from src to dst. Called from the
// serialized merge's scheduling path and from the single-threaded epoch
// barrier drain. No-op on nil.
func (st *ShardStats) NoteCross(src, dst int) {
	if st == nil {
		return
	}
	st.traffic[src*st.lanes+dst]++
	st.lane[src].Sent++
	st.lane[dst].Recv++
	st.posts++
}

// NoteBarrierStall records the virtual time a lane sits parked at an epoch
// barrier. Lane-confined. No-op on nil.
func (st *ShardStats) NoteBarrierStall(lane int, d Time) {
	if st == nil {
		return
	}
	st.lane[lane].BarrierStall += d
}

// noteLaneDone stamps a lane's wall-clock finish time within the current
// epoch. Lane-confined (distinct slice elements); a no-op without WallClock.
func (st *ShardStats) noteLaneDone(lane int) {
	if st.WallClock != nil {
		st.laneWallDone[lane] = st.WallClock()
	}
}

// noteEpoch closes one epoch window: the epoch counter, the drain size, a
// timeline record with each lane's dispatch delta, and (when WallClock is
// set) each lane's wall barrier stall. Called single-threaded between
// barriers.
func (st *ShardStats) noteEpoch(base, end Time, drained int) {
	st.epochs++
	if drained > st.maxDrain {
		st.maxDrain = drained
	}
	st.winStart = append(st.winStart, base)
	st.winEnd = append(st.winEnd, end)
	st.winDrain = append(st.winDrain, int32(drained))
	for i := 0; i < st.lanes; i++ {
		st.winLane = append(st.winLane, st.lane[i].Dispatched-st.epochPrev[i])
		st.epochPrev[i] = st.lane[i].Dispatched
	}
	if st.WallClock != nil {
		wall := st.WallClock()
		for i := range st.laneWallDone {
			if st.laneWallDone[i] > 0 {
				st.lane[i].BarrierStallWall += wall - st.laneWallDone[i]
				st.laneWallDone[i] = 0
			}
		}
	}
}

// TotalDispatched sums the per-lane dispatch counts — a shard-neutral
// invariant (it equals the engine's fired count regardless of lane count).
func (st *ShardStats) TotalDispatched() uint64 {
	var n uint64
	for i := range st.lane {
		n += st.lane[i].Dispatched
	}
	return n
}
