// Package sim provides the deterministic discrete-event core used by the
// machine model: a virtual clock in nanoseconds, a binary-heap event queue,
// and a seedable xorshift PRNG. The whole simulation runs on one goroutine;
// determinism is a package invariant (same seed, same schedule, same result).
package sim

import "fmt"

// Time is virtual time in nanoseconds since the start of the run.
type Time int64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Forever is a time later than any event the simulator schedules. It is used
// as the deadline of runs that stop on workload completion.
const Forever = Time(1) << 62

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.2fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Micros returns the time as fractional microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns the time as fractional milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns the time as fractional seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }
