package sim

import (
	"sort"
	"sync"
)

// Sharded is a discrete-event simulator whose event queue is partitioned
// into per-lane heaps. A lane is the unit of locality: a CC-NUMA run maps
// each machine node (its CPUs, caches, TLBs, and local frame pool) onto one
// lane, so every event that touches only one node's hardware lives in that
// node's heap.
//
// The engine has two drive modes.
//
// Serialized merge (Step/Run/RunUntil): one goroutine dispatches the global
// minimum over the lane heads, ordered by (time, schedule order). Because
// the schedule-order counter is engine-global in this mode, the dispatch
// sequence is exactly the sequence a single-heap Engine would produce for
// the same schedule calls — sharding is observationally invisible, which is
// what lets core gate `-shards N` on byte-identical output against the
// single-heap path. Handlers may freely touch state owned by any lane.
//
// Concurrent epochs (RunEpochs): the lanes advance in parallel under an
// epoch barrier. Each epoch spans [base, base+lookahead), where base is the
// earliest pending event and lookahead must not exceed the minimum
// cross-lane latency (for the NUMA machine: the minimum remote-miss latency
// from internal/interconnect — no effect can cross nodes faster). Within an
// epoch a lane dispatches only its own heap; cross-lane effects (remote
// misses, TLB shootdowns, hot-page interrupt batches, migrations) must be
// posted as typed events through Lane.AtKind, which routes them into a
// per-lane outbound mailbox. At the barrier all mailboxes are drained in
// (time, source lane, source sequence) order — a total order independent of
// goroutine scheduling — so runs are deterministic at any worker count.
// Handlers used in this mode must be lane-confined: they may only touch
// state owned by the lane they fire on. Scheduling a cross-lane event
// inside the current epoch window panics, which makes the lookahead safety
// argument checkable at runtime.
//
// Equal-time tie-breaking differs between the modes: the serialized merge
// preserves global schedule order exactly, while epoch mode orders a
// cross-lane arrival after lane-local events already scheduled for the same
// instant. Models whose cross-lane latencies avoid exact ties (as the NUMA
// latencies do) behave identically under both.
//
// A third mode, guarded epochs (guarded.go), activates when the model
// installs a Planner via SetPlanner: RunEpochs then alternates serial
// dispatch with planner-cleared concurrent windows and is byte-identical to
// the serialized merge by construction — the mode full-system kernel runs
// use, since their handlers are not lane-confined in general.
type Sharded struct {
	handlers []LaneHandler
	laneFns  []func(arg uint64) int
	lanes    []*Lane

	// lookahead is the epoch window for RunEpochs: the minimum virtual-time
	// distance any cross-lane effect must travel.
	lookahead Time

	// Serialized-merge state: a global clock and schedule-order counter,
	// exactly mirroring Engine. Machine-global: lane-confined code (the
	// guarded window runner and everything it calls) must never touch these —
	// numalint's laneconfined check enforces it.
	//
	//numalint:machine-global
	now Time
	//numalint:machine-global
	seq uint64
	//numalint:machine-global
	fired uint64

	// concurrent is true only inside legacy RunEpochs, switching Lane
	// scheduling from the global sequence stream to lane-local streams and
	// mailboxes.
	concurrent bool

	// planner switches RunEpochs to guarded mode (guarded.go): serial
	// dispatch by default, planner-cleared windows in parallel. inWindow is
	// true only while a guarded window's lanes are running.
	planner  Planner
	inWindow bool

	// posts is the barrier's merge scratch, reused across epochs; winEvs,
	// defs, and laneErrs are the guarded mode's equivalents.
	posts    []post
	winEvs   []WindowEvent
	defs     []deferred
	laneErrs []any

	// Periodic schedules share one registered kind, as in Engine.
	periodics    []periodic
	periodicKind Kind
	hasPeriodic  bool

	// stats is the optional introspection collector (nil = disabled; every
	// hook site below pays one branch). statsLane tracks which lane the
	// serialized merge is currently dispatching (-1 outside dispatch) so
	// cross-lane schedules can be attributed to their source lane.
	stats     *ShardStats
	statsLane int32

	// cancel mirrors Engine.cancel: a predicate the run loops poll every
	// cancelMask+1 dispatches (and at every epoch barrier) to stop a run
	// cooperatively. Only ever called from the drive goroutine, never from
	// lane workers, so the predicate needs no synchronization of its own.
	// lastPoll records fired at the previous poll so guarded mode — where
	// window folds jump fired by whole windows and can step over the exact
	// stride boundary — still polls at least once per cancelMask+1 events.
	cancel   func() bool
	lastPoll uint64
}

// LaneHandler is a typed event callback for the sharded engine. It receives
// the lane the event fired on; in concurrent epoch mode all rescheduling
// must go through that lane so it lands in the right heap or mailbox.
type LaneHandler func(l *Lane, now Time, arg uint64)

// Lane is one partition of the event queue and the scheduling handle passed
// to handlers.
type Lane struct {
	s    *Sharded
	idx  int32
	heap []item

	// Concurrent-mode state: the lane's own clock, sequence stream, fired
	// count, epoch window end, and outbound cross-lane mailbox.
	now      Time
	seq      uint64
	fired    uint64
	epochEnd Time
	out      []post

	// Guarded-mode state (guarded.go): the planned window slice, the window
	// cut, the deferred-schedule journal, and the dispatching parent's
	// serial-order key.
	cand        []item
	winCut      Time
	jrnl        []deferred
	parentAt    Time
	parentSeq   uint64
	parentOrder uint32
}

// post is one cross-lane typed event waiting in a mailbox for the epoch
// barrier.
type post struct {
	at   Time
	seq  uint64 // source lane's schedule order, for the deterministic drain
	arg  uint64
	kind Kind
	src  int32
	dst  int32
}

// NewSharded builds a sharded engine with the given lane count. lookahead
// is the epoch window for RunEpochs — size it to the minimum cross-lane
// latency of the model (pass 0 if only the serialized merge will be used).
func NewSharded(lanes int, lookahead Time) *Sharded {
	if lanes < 1 {
		panic("sim: sharded engine needs at least one lane")
	}
	if lookahead < 0 {
		panic("sim: negative lookahead")
	}
	s := &Sharded{lookahead: lookahead, statsLane: -1}
	s.lanes = make([]*Lane, lanes)
	for i := range s.lanes {
		s.lanes[i] = &Lane{s: s, idx: int32(i)}
	}
	return s
}

// Lanes returns the lane count.
func (s *Sharded) Lanes() int { return len(s.lanes) }

// Lane returns lane i (for tests and model setup).
func (s *Sharded) Lane(i int) *Lane { return s.lanes[i] }

// Lookahead returns the epoch window the engine was built with.
func (s *Sharded) Lookahead() Time { return s.lookahead }

// Now returns the current virtual time of the serialized merge.
func (s *Sharded) Now() Time { return s.now }

// SetCancel installs a cancellation predicate polled by the run loops
// (RunUntil on a dispatch-count stride, RunEpochs at every barrier). A true
// return stops dispatching; the caller discards the partial run. Pass nil to
// clear.
func (s *Sharded) SetCancel(fn func() bool) { s.cancel = fn }

// cancelled reports whether the cancellation predicate asks the run loop to
// stop, polled on the same dispatch stride as Engine.cancelled.
func (s *Sharded) cancelled() bool {
	return s.cancel != nil && s.fired&cancelMask == 0 && s.cancel()
}

// Fired returns the number of events dispatched so far.
func (s *Sharded) Fired() uint64 { return s.fired }

// Pending returns the number of scheduled events not yet dispatched, across
// all lanes and mailboxes.
func (s *Sharded) Pending() int {
	n := 0
	for _, l := range s.lanes {
		n += len(l.heap) + len(l.out)
	}
	return n
}

// Register installs h in the handler table and returns its Kind. laneOf
// maps a scheduling-time arg to the lane that owns the event; nil pins the
// kind to lane 0 (machine-global work).
func (s *Sharded) Register(h LaneHandler, laneOf func(arg uint64) int) Kind {
	if h == nil {
		panic("sim: nil handler")
	}
	s.handlers = append(s.handlers, h)
	s.laneFns = append(s.laneFns, laneOf)
	return Kind(len(s.handlers) - 1)
}

// laneOf resolves the owning lane for a typed event.
func (s *Sharded) laneOf(k Kind, arg uint64) int {
	if fn := s.laneFns[k]; fn != nil {
		if d := fn(arg); d > 0 && d < len(s.lanes) {
			return d
		}
	}
	return 0
}

// At schedules a closure event. Closures carry no lane affinity, so they
// live on lane 0; the serialized merge dispatches them in exact global
// schedule order regardless.
func (s *Sharded) At(at Time, fn Event) {
	if s.inWindow {
		panic("sim: engine-level schedule during a guarded window")
	}
	if at < s.now {
		panic("sim: event scheduled in the past")
	}
	s.seq++
	s.lanes[0].push(item{at: at, seq: s.seq, fn: fn, kind: noKind})
}

// After schedules fn to run d nanoseconds from now.
func (s *Sharded) After(d Time, fn Event) {
	if d < 0 {
		panic("sim: negative delay")
	}
	s.At(s.now+d, fn)
}

// AtKind schedules the handler registered under k at absolute time at,
// pushing it onto its owning lane's heap with the global schedule-order
// sequence, so the serialized merge reproduces single-heap order exactly.
//
//numalint:hotpath
func (s *Sharded) AtKind(at Time, k Kind, arg uint64) {
	if s.inWindow {
		panic("sim: engine-level schedule during a guarded window")
	}
	if at < s.now {
		panic("sim: event scheduled in the past")
	}
	if k < 0 || int(k) >= len(s.handlers) {
		panic("sim: unregistered event kind")
	}
	s.seq++
	dst := s.laneOf(k, arg)
	if st := s.stats; st != nil && s.statsLane >= 0 && int32(dst) != s.statsLane {
		st.NoteCross(int(s.statsLane), dst)
	}
	s.lanes[dst].push(item{at: at, seq: s.seq, kind: k, arg: arg})
}

// AfterKind schedules the handler registered under k to run d nanoseconds
// from now.
//
//numalint:hotpath
func (s *Sharded) AfterKind(d Time, k Kind, arg uint64) {
	if d < 0 {
		panic("sim: negative delay")
	}
	s.AtKind(s.now+d, k, arg)
}

// Every schedules fn at now+period, now+2*period, ... until stop returns
// true. As in Engine, every periodic schedule shares one registered kind:
// table growth is O(1) no matter how many times Every is called or how
// often epochs re-arm the tick.
func (s *Sharded) Every(period Time, fn Event, stop func() bool) {
	if period <= 0 {
		panic("sim: non-positive period")
	}
	if !s.hasPeriodic {
		s.periodicKind = s.Register(func(l *Lane, now Time, arg uint64) {
			p := &s.periodics[arg]
			p.fn(now)
			if p.stop == nil || !p.stop() {
				l.AtKind(now+p.period, s.periodicKind, arg)
			}
		}, nil)
		s.hasPeriodic = true
	}
	s.periodics = append(s.periodics, periodic{period: period, fn: fn, stop: stop})
	s.AfterKind(period, s.periodicKind, uint64(len(s.periodics)-1))
}

// Step dispatches the globally next event — the minimum (time, schedule
// order) over the lane heads — advancing the clock to its time. It returns
// false when no events remain.
//
//numalint:hotpath
func (s *Sharded) Step() bool {
	best := -1
	for i, l := range s.lanes {
		if len(l.heap) == 0 {
			continue
		}
		if best < 0 || headLess(l.heap[0], s.lanes[best].heap[0]) {
			best = i
		}
	}
	if best < 0 {
		return false
	}
	l := s.lanes[best]
	top := l.pop()
	s.now = top.at
	s.fired++
	if st := s.stats; st != nil {
		st.NoteDispatch(best, s.now)
		s.statsLane = l.idx
	}
	if top.fn != nil {
		top.fn(s.now)
	} else {
		s.handlers[top.kind](l, s.now, top.arg)
	}
	if s.stats != nil {
		s.statsLane = -1
	}
	return true
}

// RunUntil dispatches events in merge order until the queue drains or the
// next event is after deadline, then advances the clock to deadline —
// matching Engine.RunUntil's clock contract.
func (s *Sharded) RunUntil(deadline Time) {
	for {
		at, ok := s.minHead()
		if !ok || at > deadline {
			break
		}
		if s.cancelled() {
			return
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Run dispatches events until none remain.
func (s *Sharded) Run() {
	for s.Step() {
	}
}

// minHead returns the earliest pending event time across lanes.
func (s *Sharded) minHead() (Time, bool) {
	var min Time
	ok := false
	for _, l := range s.lanes {
		if len(l.heap) == 0 {
			continue
		}
		if !ok || l.heap[0].at < min {
			min = l.heap[0].at
			ok = true
		}
	}
	return min, ok
}

// headLess orders two lane heads by (time, schedule order).
func headLess(a, b item) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// RunEpochs advances the lanes concurrently until no events remain at or
// before deadline, then advances the clock to deadline. workers bounds the
// goroutines driving lanes (values below 1 mean one).
//
// Correctness contract: every handler reachable in this mode must be
// lane-confined (touch only state owned by its lane), and every cross-lane
// effect must be a typed event scheduled at least `lookahead` after the
// moment it is sent. Violations of the second rule panic at the scheduling
// call; violations of the first are data races (run the model under -race).
func (s *Sharded) RunEpochs(workers int, deadline Time) {
	if s.concurrent {
		panic("sim: RunEpochs re-entered")
	}
	if s.lookahead <= 0 {
		panic("sim: RunEpochs needs a positive lookahead window")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(s.lanes) {
		workers = len(s.lanes)
	}
	if s.planner != nil {
		s.runGuarded(workers, deadline)
		return
	}
	s.concurrent = true
	for _, l := range s.lanes {
		l.now = s.now
		// Continue each lane's sequence stream past every global sequence
		// already in the heaps, so pre-existing items keep their priority.
		l.seq = s.seq
	}
	for {
		base, ok := s.minHead()
		if !ok || base > deadline {
			break
		}
		// Poll cancellation once per epoch: fired jumps by whole windows in
		// this mode, so the stride check could miss its exact boundary; an
		// unconditional poll per barrier is amortized over the epoch's events.
		if s.cancel != nil && s.cancel() {
			break
		}
		end := base + s.lookahead
		if end > deadline {
			// The final epoch is clamped so events exactly at the deadline
			// still run (lanes process at < end).
			end = deadline + 1
		}
		// Lanes park at the barrier, but never past the deadline: the final
		// epoch's window is deadline+1 so deadline-instant events dispatch,
		// and the clock contract (Now ends at the deadline) still holds.
		park := end
		if park > deadline {
			park = deadline
		}
		for _, l := range s.lanes {
			l.epochEnd = end
		}
		// A panic inside a lane (a model bug, or the cross-lane window check)
		// is captured and re-raised on the caller's goroutine — lowest lane
		// first, so even failure is deterministic.
		laneErrs := make([]any, len(s.lanes))
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(s.lanes); i += workers {
					func(i int) {
						defer func() { laneErrs[i] = recover() }()
						s.lanes[i].runTo(end, park)
					}(i)
					if st := s.stats; st != nil {
						st.noteLaneDone(i)
					}
				}
			}(w)
		}
		wg.Wait()
		for _, r := range laneErrs {
			if r != nil {
				s.concurrent = false
				panic(r)
			}
		}
		drained := s.drainMailboxes()
		if st := s.stats; st != nil {
			st.noteEpoch(base, end, drained)
		}
	}
	for _, l := range s.lanes {
		s.fired += l.fired
		l.fired = 0
		if l.now > s.now {
			s.now = l.now
		}
		if l.seq > s.seq {
			s.seq = l.seq
		}
	}
	if s.now < deadline {
		s.now = deadline
	}
	s.concurrent = false
}

// drainMailboxes delivers every cross-lane post in (time, source lane,
// source sequence) order — a total order fixed by the model, not by which
// goroutine reached the barrier first — assigning destination-lane sequence
// numbers in that order. It returns the number of posts delivered.
func (s *Sharded) drainMailboxes() int {
	posts := s.posts[:0]
	for _, l := range s.lanes {
		posts = append(posts, l.out...)
		l.out = l.out[:0]
	}
	sort.Slice(posts, func(i, j int) bool {
		a, b := posts[i], posts[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	for i := range posts {
		p := &posts[i]
		d := s.lanes[p.dst]
		d.seq++
		if st := s.stats; st != nil {
			st.NoteCross(int(p.src), int(p.dst))
		}
		d.push(item{at: p.at, seq: d.seq, kind: p.kind, arg: p.arg})
	}
	n := len(posts)
	s.posts = posts[:0]
	return n
}

// runTo dispatches the lane's events strictly before end, then parks the
// lane clock at the barrier (park, which is end clamped to the deadline).
func (l *Lane) runTo(end, park Time) {
	for len(l.heap) > 0 && l.heap[0].at < end {
		top := l.pop()
		l.now = top.at
		l.fired++
		if st := l.s.stats; st != nil {
			st.NoteLaneDispatch(int(l.idx))
		}
		if top.fn != nil {
			top.fn(l.now)
		} else {
			l.s.handlers[top.kind](l, l.now, top.arg)
		}
	}
	if l.now < park {
		if st := l.s.stats; st != nil {
			st.NoteBarrierStall(int(l.idx), park-l.now)
		}
		l.now = park
	}
}

// Index returns the lane's position in the engine.
func (l *Lane) Index() int { return int(l.idx) }

// Now returns the lane's clock: the lane-local clock inside an epoch or a
// guarded window, the engine clock under the serialized merge.
func (l *Lane) Now() Time {
	if l.s.concurrent || l.s.inWindow {
		return l.now
	}
	return l.s.now
}

// AtKind schedules a typed event from handler context. Under the
// serialized merge it is the engine-level AtKind (global schedule order).
// In concurrent epoch mode a lane-local event goes straight onto this
// lane's heap, and a cross-lane event goes to the outbound mailbox — where
// scheduling it inside the current epoch window panics, because delivery
// happens at the barrier and an intra-window arrival would have been
// dispatched too late.
//
//numalint:hotpath
func (l *Lane) AtKind(at Time, k Kind, arg uint64) {
	s := l.s
	if s.inWindow {
		l.deferSchedule(at, k, arg)
		return
	}
	if !s.concurrent {
		//numalint:allow laneconfined inside a window inWindow routed to deferSchedule above; the serialized-merge fallback never runs concurrently
		s.AtKind(at, k, arg)
		return
	}
	if at < l.now {
		panic("sim: event scheduled in the past")
	}
	if k < 0 || int(k) >= len(s.handlers) {
		panic("sim: unregistered event kind")
	}
	dst := s.laneOf(k, arg)
	l.seq++
	if int32(dst) == l.idx {
		l.push(item{at: at, seq: l.seq, kind: k, arg: arg})
		return
	}
	if at < l.epochEnd {
		panic("sim: cross-lane event scheduled inside the lookahead window")
	}
	l.out = append(l.out, post{at: at, seq: l.seq, kind: k, arg: arg, src: l.idx, dst: int32(dst)})
}

// AfterKind schedules a typed event d nanoseconds from the lane's now.
//
//numalint:hotpath
func (l *Lane) AfterKind(d Time, k Kind, arg uint64) {
	if d < 0 {
		panic("sim: negative delay")
	}
	l.AtKind(l.Now()+d, k, arg)
}

// At schedules a closure event from handler context. Closures cannot cross
// lanes (a mailbox carries only typed {kind, arg} posts), so in concurrent
// mode the event stays on this lane.
func (l *Lane) At(at Time, fn Event) {
	s := l.s
	if s.inWindow {
		// The planner never admits an event whose handler schedules
		// closures, so this is only reachable through a planner bug.
		panic("sim: closure scheduled during a guarded window")
	}
	if !s.concurrent {
		s.At(at, fn)
		return
	}
	if at < l.now {
		panic("sim: event scheduled in the past")
	}
	l.seq++
	l.push(item{at: at, seq: l.seq, fn: fn, kind: noKind})
}

// After schedules a closure event d nanoseconds from the lane's now.
func (l *Lane) After(d Time, fn Event) {
	if d < 0 {
		panic("sim: negative delay")
	}
	l.At(l.Now()+d, fn)
}

// push inserts an item into the lane heap.
//
//numalint:hotpath
func (l *Lane) push(it item) {
	l.heap = append(l.heap, it)
	if st := l.s.stats; st != nil && len(l.heap) > st.lane[l.idx].HeapMax {
		st.lane[l.idx].HeapMax = len(l.heap)
	}
	i := len(l.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !headLess(l.heap[i], l.heap[p]) {
			break
		}
		l.heap[i], l.heap[p] = l.heap[p], l.heap[i]
		i = p
	}
}

// pop removes and returns the lane's head item.
//
//numalint:hotpath
func (l *Lane) pop() item {
	top := l.heap[0]
	n := len(l.heap) - 1
	l.heap[0] = l.heap[n]
	l.heap = l.heap[:n]
	i := 0
	for {
		lc, rc := 2*i+1, 2*i+2
		small := i
		if lc < n && headLess(l.heap[lc], l.heap[small]) {
			small = lc
		}
		if rc < n && headLess(l.heap[rc], l.heap[small]) {
			small = rc
		}
		if small == i {
			break
		}
		l.heap[i], l.heap[small] = l.heap[small], l.heap[i]
		i = small
	}
	return top
}
