package sim

import "testing"

// chainModel schedules a self-rescheduling chain long enough that every run
// loop crosses many cancellation strides, so the tests below can observe a
// cancelled run stopping far short of the full event count.
const chainEvents = 200000

// TestEngineRunUntilCancel proves the single-heap run loop stops within one
// stride of the predicate turning true, instead of draining the queue.
func TestEngineRunUntilCancel(t *testing.T) {
	var eng Engine
	var k Kind
	k = eng.Register(func(now Time, arg uint64) {
		if arg < chainEvents {
			eng.AfterKind(1, k, arg+1)
		}
	})
	eng.AtKind(0, k, 0)

	eng.SetCancel(func() bool { return eng.Fired() >= 5000 })
	eng.RunUntil(Second)

	if eng.Fired() >= chainEvents {
		t.Fatalf("cancelled run drained the queue: fired %d", eng.Fired())
	}
	if eng.Fired() > 5000+cancelMask+1 {
		t.Fatalf("run overshot the cancellation stride: fired %d", eng.Fired())
	}
	if eng.Now() >= Second {
		t.Fatalf("cancelled run advanced the clock to the deadline: %v", eng.Now())
	}
}

// TestEngineRunCancel covers the drain-everything loop.
func TestEngineRunCancel(t *testing.T) {
	var eng Engine
	var k Kind
	k = eng.Register(func(now Time, arg uint64) {
		if arg < chainEvents {
			eng.AfterKind(1, k, arg+1)
		}
	})
	eng.AtKind(0, k, 0)

	eng.SetCancel(func() bool { return eng.Fired() >= 3000 })
	eng.Run()

	if eng.Fired() >= chainEvents {
		t.Fatalf("cancelled run drained the queue: fired %d", eng.Fired())
	}
}

// TestShardedSerialCancel covers the serialized-merge RunUntil loop.
func TestShardedSerialCancel(t *testing.T) {
	const lanes = 3
	s := NewSharded(lanes, 0)
	var k Kind
	k = s.Register(func(l *Lane, now Time, arg uint64) {
		if arg < chainEvents {
			s.AtKind(now+1, k, arg+1)
		}
	}, func(arg uint64) int { return int(arg % lanes) })
	s.AtKind(0, k, 0)

	s.SetCancel(func() bool { return s.Fired() >= 5000 })
	s.RunUntil(Second)

	if s.Fired() >= chainEvents {
		t.Fatalf("cancelled run drained the queue: fired %d", s.Fired())
	}
	if s.Fired() > 5000+cancelMask+1 {
		t.Fatalf("run overshot the cancellation stride: fired %d", s.Fired())
	}
}

// TestShardedEpochsCancel covers the legacy concurrent epoch loop, which
// polls at every barrier: a predicate that trips after a few epochs must stop
// the run with most of the chain unfired.
func TestShardedEpochsCancel(t *testing.T) {
	const lanes = 3
	s := NewSharded(lanes, 50)
	var k Kind
	k = s.Register(func(l *Lane, now Time, arg uint64) {
		if now < Time(chainEvents) {
			l.AtKind(now+100, k, arg)
		}
	}, func(arg uint64) int { return int(arg % lanes) })
	for i := 0; i < lanes; i++ {
		s.AtKind(Time(i+1), k, uint64(i))
	}

	polls := 0
	s.SetCancel(func() bool { polls++; return polls > 3 })
	s.RunEpochs(2, Time(chainEvents))

	if polls == 0 {
		t.Fatal("epoch loop never polled the cancellation predicate")
	}
	if s.Fired() >= uint64(chainEvents/100*lanes/2) {
		t.Fatalf("cancelled epoch run fired too much of the chain: %d", s.Fired())
	}
}

// cancelPlanner admits every event, so the guarded loop spends its time in
// windows and the fired counter advances in whole-window jumps — the case the
// fired-delta poll exists for.
type cancelPlanner struct{}

func (cancelPlanner) Guardable(WindowEvent) bool                   { return true }
func (cancelPlanner) PlanWindow(_, end Time, _ []WindowEvent) Time { return end }

// TestGuardedCancel covers guarded mode: window folds jump the fired counter
// past exact stride boundaries, and the run must still stop early.
func TestGuardedCancel(t *testing.T) {
	const lanes = 4
	s := NewSharded(lanes, 50)
	var k Kind
	k = s.Register(func(l *Lane, now Time, arg uint64) {
		if now < Time(chainEvents) {
			l.AtKind(now+100, k, arg)
		}
	}, func(arg uint64) int { return int(arg % lanes) })
	for i := 0; i < lanes; i++ {
		// Distinct instants so windows actually form (cross-lane ties
		// serialize).
		s.AtKind(Time(1+13*i), k, uint64(i))
	}
	s.SetPlanner(cancelPlanner{})

	s.SetCancel(func() bool { return s.Fired() >= 2000 })
	s.RunEpochs(2, Time(chainEvents))

	if s.Fired() >= uint64(chainEvents/100*lanes/2) {
		t.Fatalf("cancelled guarded run fired too much of the chain: %d", s.Fired())
	}
}
