package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	var e Engine
	var got []int
	e.At(30, func(Time) { got = append(got, 3) })
	e.At(10, func(Time) { got = append(got, 1) })
	e.At(20, func(Time) { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("event order = %v, want [1 2 3]", got)
	}
	if e.Now() != 30 {
		t.Fatalf("final time = %v, want 30", e.Now())
	}
}

func TestEngineEqualTimesFIFO(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func(Time) { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of schedule order: %v", got)
		}
	}
}

func TestEngineTimeNonDecreasing(t *testing.T) {
	var e Engine
	r := NewRand(42)
	last := Time(-1)
	var schedule func(now Time)
	n := 0
	schedule = func(now Time) {
		if now < last {
			t.Fatalf("time went backwards: %v after %v", now, last)
		}
		last = now
		n++
		if n < 500 {
			e.After(Time(r.Intn(100)), schedule)
			if r.Bool(0.3) {
				e.After(Time(r.Intn(50)), func(Time) {})
			}
		}
	}
	e.At(0, schedule)
	e.Run()
	if n != 500 {
		t.Fatalf("ran %d chained events, want 500", n)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	var e Engine
	e.At(100, func(now Time) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func(Time) {})
	})
	e.Run()
}

func TestEngineRunUntilStopsAtDeadline(t *testing.T) {
	var e Engine
	fired := 0
	e.At(10, func(Time) { fired++ })
	e.At(20, func(Time) { fired++ })
	e.At(30, func(Time) { fired++ })
	e.RunUntil(20)
	if fired != 2 {
		t.Fatalf("fired %d events before deadline, want 2", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineRunUntilAdvancesClockToDeadline(t *testing.T) {
	// Regression: the clock must end at the deadline even when the queue
	// drains early, so Now-based readings after a run (sampler stop checks,
	// elapsed-time gauges) are well defined.
	var e Engine
	e.At(10, func(Time) {})
	e.RunUntil(100)
	if e.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", e.Pending())
	}
	if e.Now() != 100 {
		t.Fatalf("clock after drained RunUntil = %v, want 100 (the deadline)", e.Now())
	}

	// With events left beyond the deadline the clock still lands on it.
	var e2 Engine
	e2.At(10, func(Time) {})
	e2.At(300, func(Time) {})
	e2.RunUntil(100)
	if e2.Now() != 100 {
		t.Fatalf("clock with pending event = %v, want 100", e2.Now())
	}

	// An empty engine advances too.
	var e3 Engine
	e3.RunUntil(50)
	if e3.Now() != 50 {
		t.Fatalf("clock on empty engine = %v, want 50", e3.Now())
	}
}

func TestEngineEvery(t *testing.T) {
	var e Engine
	ticks := 0
	e.Every(10, func(Time) { ticks++ }, func() bool { return ticks >= 5 })
	e.Run()
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
	if e.Now() != 50 {
		t.Fatalf("final time = %v, want 50", e.Now())
	}
}

func TestEngineTypedEventsInterleaveWithClosures(t *testing.T) {
	// Typed and closure events share one queue and one seq counter, so
	// equal-time events fire in schedule order regardless of which API
	// scheduled them. The determinism of the typed hot path rests on this.
	var e Engine
	var got []int
	kind := e.Register(func(_ Time, arg uint64) { got = append(got, int(arg)) })
	e.At(5, func(Time) { got = append(got, 0) })
	e.AtKind(5, kind, 1)
	e.At(5, func(Time) { got = append(got, 2) })
	e.AtKind(5, kind, 3)
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("mixed-API same-time events fired out of order: %v", got)
		}
	}
}

func TestEngineAtKindUnregisteredPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Error("scheduling an unregistered kind did not panic")
		}
	}()
	e.AtKind(10, Kind(0), 0)
}

func TestEngineEveryStopsAtDeadlineBoundary(t *testing.T) {
	// Regression guard for the typed-tick rewrite of Every: a tick landing
	// exactly on the deadline must fire, and a stop condition that becomes
	// true on that tick must not re-arm — Pending and Fired account for
	// every tick and nothing more.
	var e Engine
	ticks := 0
	e.Every(10, func(Time) { ticks++ }, func() bool { return e.Now() >= 30 })
	e.RunUntil(30)
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3 (10, 20, and the deadline tick at 30)", ticks)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after stop fired, want 0", e.Pending())
	}
	if e.Fired() != 3 {
		t.Fatalf("fired = %d, want 3", e.Fired())
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{5, "5ns"},
		{1500, "1.50us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRandIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		if n == 0 {
			return true
		}
		r := NewRand(seed)
		v := r.Intn(int(n))
		return v >= 0 && v < int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandFloat64InRange(t *testing.T) {
	r := NewRand(99)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestRandZipfSkewsLow(t *testing.T) {
	r := NewRand(5)
	const n = 1000
	low := 0
	for i := 0; i < 10000; i++ {
		if r.Zipf(n) < n/10 {
			low++
		}
	}
	// A Zipf(1) draw over 1000 items lands in the first decile far more
	// often than the uniform 10%.
	if low < 4000 {
		t.Fatalf("only %d/10000 draws in first decile; distribution not skewed", low)
	}
}

func TestRandZipfInRange(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := NewRand(seed)
		m := int(n)
		if m == 0 {
			m = 1
		}
		v := r.Zipf(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandSplitIndependence(t *testing.T) {
	r := NewRand(11)
	c1 := r.Split()
	v := r.Uint64()
	r2 := NewRand(11)
	_ = r2.Split()
	if r2.Uint64() != v {
		t.Fatal("Split changed the parent stream inconsistently")
	}
	if c1.Uint64() == r.Uint64() {
		t.Fatal("child stream mirrors parent")
	}
}

func TestRandGeometricMean(t *testing.T) {
	r := NewRand(3)
	sum := 0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Geometric(8)
	}
	mean := float64(sum) / n
	if mean < 6 || mean > 10 {
		t.Fatalf("geometric mean = %v, want ~8", mean)
	}
}
