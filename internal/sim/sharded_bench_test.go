package sim

import (
	"fmt"
	"testing"
)

// benchLaneModel is a lane-confined load for the epoch-mode benchmarks:
// every lane ticks a state machine each 100ns and posts a cross-lane ping
// every eighth tick, so each epoch carries both local work and mailbox
// traffic.
type benchLaneModel struct {
	s     *Sharded
	state []uint64
	ticks []int
	tickK Kind
	pingK Kind
}

func newBenchLaneModel(lanes int) *benchLaneModel {
	m := &benchLaneModel{
		s:     NewSharded(lanes, epochLookahead),
		state: make([]uint64, lanes),
		ticks: make([]int, lanes),
	}
	laneArg := func(arg uint64) int { return int(arg) % lanes }
	m.tickK = m.s.Register(func(l *Lane, now Time, arg uint64) {
		i := l.Index()
		m.state[i] = m.state[i]*0x9e3779b97f4a7c15 + uint64(now)
		m.ticks[i]++
		l.AtKind(now+100, m.tickK, arg)
		if m.ticks[i]%8 == 0 {
			dst := uint64((i + 1) % len(m.state))
			l.AtKind(now+epochLookahead+63, m.pingK, dst)
		}
	}, laneArg)
	m.pingK = m.s.Register(func(l *Lane, now Time, arg uint64) {
		m.state[l.Index()] ^= uint64(now) * 0x2545f4914f6cdd1d
	}, laneArg)
	for i := 0; i < lanes; i++ {
		m.s.AtKind(Time(100), m.tickK, uint64(i))
	}
	return m
}

// BenchmarkShardedEpochs measures the epoch-barrier engine on a lane-confined
// model at several worker counts, against the serialized merge and the
// single-heap Engine as baselines. Wall-clock gains need real CPUs; on a
// single-CPU host this records the barrier and mailbox overhead instead.
func BenchmarkShardedEpochs(b *testing.B) {
	const lanes = 4
	const horizon = 2 * Millisecond
	b.Run("single-heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := &Engine{}
			var state uint64
			var tick Kind
			tick = e.Register(func(now Time, arg uint64) {
				state = state*0x9e3779b97f4a7c15 + uint64(now)
				e.AtKind(now+100, tick, arg)
			})
			for j := 0; j < lanes; j++ {
				e.AtKind(Time(100), tick, uint64(j))
			}
			e.RunUntil(horizon)
		}
	})
	b.Run("serialized-merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			newBenchLaneModel(lanes).s.RunUntil(horizon)
		}
	})
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("epochs/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				newBenchLaneModel(lanes).s.RunEpochs(workers, horizon)
			}
		})
	}
}
