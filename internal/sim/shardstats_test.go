package sim

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// statsSnapshot renders every deterministic (virtual-time) field of a
// collector. Byte equality of two snapshots is how the tests pin worker-count
// neutrality; BarrierStallWall is wall-clock and deliberately excluded.
func statsSnapshot(st *ShardStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "lanes=%d epochs=%d posts=%d maxdrain=%d total=%d\n",
		st.Lanes(), st.Epochs(), st.Posts(), st.MaxDrain(), st.TotalDispatched())
	for i := 0; i < st.Lanes(); i++ {
		ls := st.Lane(i)
		fmt.Fprintf(&b, "lane%d d=%d h=%d s=%d r=%d stall=%d\n",
			i, ls.Dispatched, ls.HeapMax, ls.Sent, ls.Recv, ls.BarrierStall)
	}
	for s := 0; s < st.Lanes(); s++ {
		for d := 0; d < st.Lanes(); d++ {
			fmt.Fprintf(&b, "%d ", st.Traffic(s, d))
		}
	}
	b.WriteByte('\n')
	for i := 0; i < st.Windows(); i++ {
		start, end, drained, disp := st.WindowAt(i)
		fmt.Fprintf(&b, "w%d %d..%d drain=%d %v\n", i, start, end, drained, disp)
	}
	return b.String()
}

// TestShardStatsSerialized pins the serialized-merge hooks: dispatch counts
// match the engine's fired count, cross-lane schedules made while dispatching
// land in the traffic matrix, heap high-water marks are seen, and the
// dispatch timeline buckets on window-aligned boundaries.
func TestShardStatsSerialized(t *testing.T) {
	const lanes = 3
	sh := NewSharded(lanes, 0)
	st := sh.EnableStats(64)
	var k Kind
	k = sh.Register(func(l *Lane, now Time, arg uint64) {
		if arg >= lanes {
			// Reschedule on this lane and fan one event to the next lane:
			// dispatch-time cross-lane scheduling the stats must attribute.
			sh.AtKind(now+7, k, arg-lanes)
			sh.AtKind(now+9, k, (arg+1)%lanes)
		}
	}, func(arg uint64) int { return int(arg) % lanes })
	for i := uint64(0); i < lanes; i++ {
		sh.AtKind(Time(i), k, 30*lanes+i)
	}
	sh.RunUntil(Millisecond)

	if got, want := st.TotalDispatched(), sh.Fired(); got != want {
		t.Fatalf("TotalDispatched = %d, engine fired %d", got, want)
	}
	if st.Posts() == 0 {
		t.Fatal("cross-lane schedules left no traffic")
	}
	var sent, recv uint64
	for i := 0; i < lanes; i++ {
		sent += st.Lane(i).Sent
		recv += st.Lane(i).Recv
		if st.Lane(i).HeapMax < 1 {
			t.Fatalf("lane %d recorded no heap high-water mark", i)
		}
		if st.Traffic(i, i) != 0 {
			t.Fatalf("lane %d recorded self-traffic", i)
		}
	}
	if sent != st.Posts() || recv != st.Posts() {
		t.Fatalf("sent/recv totals %d/%d do not match posts %d", sent, recv, st.Posts())
	}
	if st.Windows() == 0 {
		t.Fatal("windowed timeline empty")
	}
	var inWindows uint64
	for i := 0; i < st.Windows(); i++ {
		start, end, drained, disp := st.WindowAt(i)
		if start%st.Window() != 0 || end != start+st.Window() {
			t.Fatalf("window %d = [%d,%d), want %d-aligned", i, start, end, st.Window())
		}
		if drained != 0 {
			t.Fatalf("serialized window %d reports a barrier drain of %d", i, drained)
		}
		for _, d := range disp {
			inWindows += d
		}
	}
	if inWindows != st.TotalDispatched() {
		t.Fatalf("timeline accounts for %d dispatches, want %d", inWindows, st.TotalDispatched())
	}
	if st.Epochs() != 0 {
		t.Fatal("serialized run counted epochs")
	}
}

// buildStatsModel assembles a 4-lane epoch model: each event's arg packs a
// spawn generation in the high bits and a countdown value in the low 16 (the
// lane is value%lanes). Lanes self-schedule down their countdown and, while
// generations remain, periodically cross-post a fresh chain at the lookahead
// horizon — bounded fan-out, so the model terminates quickly.
func buildStatsModel() (*Sharded, *ShardStats) {
	const lanes = 4
	const lookahead = 100
	sh := NewSharded(lanes, lookahead)
	st := sh.EnableStats(0)
	var k Kind
	k = sh.Register(func(l *Lane, now Time, arg uint64) {
		gen, val := arg>>16, arg&0xffff
		if val < lanes {
			return
		}
		l.AfterKind(7, k, gen<<16|(val-lanes))
		if gen > 0 && val%(5*lanes) < lanes {
			// A cross-lane post, legal because it lands a full window ahead.
			l.AfterKind(lookahead, k, (gen-1)<<16|(val+1))
		}
	}, func(arg uint64) int { return int(arg&0xffff) % lanes })
	for i := uint64(0); i < lanes; i++ {
		sh.AtKind(Time(i), k, 2<<16|(30*lanes+i))
	}
	return sh, st
}

// statsEpochModel runs the model in epoch mode at the given worker count and
// returns its stats collector.
func statsEpochModel(workers int) *ShardStats {
	sh, st := buildStatsModel()
	sh.RunEpochs(workers, 1<<40)
	return st
}

// TestShardStatsEpochsDeterministicAcrossWorkers pins the concurrency split:
// every virtual-time statistic of an epoch-mode run — including per-epoch
// timeline records and barrier drain sizes — is identical at 1, 2, and 4
// workers, because per-event hooks are lane-confined and all aggregation
// happens single-threaded at the barrier.
func TestShardStatsEpochsDeterministicAcrossWorkers(t *testing.T) {
	base := statsSnapshot(statsEpochModel(1))
	if !strings.Contains(base, "epochs=") || strings.Contains(base, "epochs=0 ") {
		t.Fatalf("epoch model completed without epochs:\n%s", base)
	}
	for _, workers := range []int{2, 4} {
		if got := statsSnapshot(statsEpochModel(workers)); got != base {
			t.Fatalf("stats diverged at %d workers:\n--- workers=1\n%s\n--- workers=%d\n%s",
				workers, base, workers, got)
		}
	}
	st := statsEpochModel(4)
	if st.Posts() == 0 || st.MaxDrain() == 0 {
		t.Fatalf("epoch model produced no cross-lane traffic (posts=%d maxdrain=%d)",
			st.Posts(), st.MaxDrain())
	}
	var drains uint64
	for i := 0; i < st.Windows(); i++ {
		_, _, drained, _ := st.WindowAt(i)
		drains += uint64(drained)
	}
	if drains != st.Posts() {
		t.Fatalf("window drains sum to %d, want every post (%d)", drains, st.Posts())
	}
}

// TestShardStatsWallClock checks the injected wall clock fills the wall
// stall fields without touching any deterministic statistic.
func TestShardStatsWallClock(t *testing.T) {
	base := statsSnapshot(statsEpochModel(2))

	sh, st := buildStatsModel()
	var tick atomic.Int64
	st.WallClock = func() int64 { return tick.Add(5) } // concurrent lane workers read it
	sh.RunEpochs(2, 1<<40)

	if got := statsSnapshot(st); got != base {
		t.Fatalf("wall clock perturbed deterministic stats:\n--- without\n%s\n--- with\n%s", base, got)
	}
	var wall int64
	for i := 0; i < st.Lanes(); i++ {
		wall += st.Lane(i).BarrierStallWall
	}
	if wall == 0 {
		t.Fatal("injected wall clock measured no barrier stalls")
	}
}

// TestShardStatsNilSafe pins the disabled state: every public hook and
// accessor tolerates a nil collector.
func TestShardStatsNilSafe(t *testing.T) {
	var st *ShardStats
	if st.On() || st.Lanes() != 0 {
		t.Fatal("nil collector does not report disabled")
	}
	st.NoteDispatch(0, 1)
	st.NoteLaneDispatch(0)
	st.NoteCross(0, 1)
	st.NoteBarrierStall(0, 5)
}

// BenchmarkShardStatsDisabled proves a stats-free engine pays one branch per
// hook site: the guard is a nil check on the collector pointer, the same
// discipline as the disabled obs tracer.
func BenchmarkShardStatsDisabled(b *testing.B) {
	var st *ShardStats
	for i := 0; i < b.N; i++ {
		if st != nil {
			st.NoteDispatch(0, Time(i))
		}
	}
}
