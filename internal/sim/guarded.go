package sim

import (
	"sort"
	"sync"
)

// Guarded epochs are RunEpochs' third drive mode, used when the model
// installs a Planner. The legacy epoch mode requires every handler to be
// lane-confined; a full-system kernel model cannot promise that, because a
// busy CPU step touches machine-global structures (the validity filter's
// write stamps, the home node's memory resources, the miss counters) on
// every access. Guarded mode inverts the contract: the engine assumes every
// event is machine-global unless the model's Planner proves otherwise, and
// alternates between
//
//   - serial dispatch (plain Step, global schedule order) for everything the
//     planner cannot clear, and
//   - guarded windows: a prefix of the candidate window in which every event
//     is lane-confined and pairwise independent, dispatched concurrently on
//     worker goroutines.
//
// Byte-identity with the serialized merge holds by construction:
//
//  1. Window membership is planned before dispatch from heap state alone, so
//     the serial/parallel split is a pure function of the model, never of
//     goroutine timing or worker count.
//  2. Events inside a window may not touch the global clock or sequence
//     stream. All scheduling they do is deferred into per-lane journals
//     keyed by (parent dispatch time, parent sequence, call order); at the
//     barrier the journals merge in exactly that order and each entry is
//     assigned the next global sequence number. Because the parent key is
//     the serialized merge's dispatch order and the call order is the serial
//     call order, the assigned sequence numbers — and therefore every later
//     dispatch decision — are identical to a fully serial run.
//  3. The engine clamps any planner answer by rules it can check itself:
//     closure and periodic events always serialize, and a virtual instant
//     that appears on two lanes serializes (cross-lane ties are where the
//     serialized merge's global order is the only order).
//
// The planner is therefore trusted only for *parallelism*, never for
// *correctness of ordering*: a wrong planner can at worst admit events that
// race on shared state (caught by -race and the byte-identity gates), while
// a conservative planner only loses concurrency.
type Planner interface {
	// Guardable is the cheap pre-filter: may this event ever run inside a
	// guarded window? The engine consults it on the globally next event
	// before paying for window assembly, so the busy-CPU common case costs
	// one call. Returning true only means "worth planning", not "admitted".
	Guardable(ev WindowEvent) bool
	// PlanWindow returns the cut time for a candidate window: every event
	// with At < cut runs concurrently, everything at or after the cut stays
	// serial. evs is sorted by (At, Seq) — the serialized merge's dispatch
	// order — and spans [base, end). Returning base (or anything <= base)
	// serializes the whole window. The engine further clamps the answer by
	// its own rules (closures, periodics, cross-lane ties), so the planner
	// only needs to reason about its model's state.
	PlanWindow(base, end Time, evs []WindowEvent) Time
}

// WindowEvent is the planner's view of one pending event.
type WindowEvent struct {
	At   Time
	Seq  uint64
	Kind Kind // noKind (-1) for closure events
	Arg  uint64
	Lane int
}

// deferred is one schedule call journaled during a guarded window, keyed so
// the barrier can replay the serialized merge's sequence assignment: parent
// (At, Seq) orders events exactly as serial dispatch would, order numbers
// the calls within one handler invocation.
type deferred struct {
	parentAt  Time
	parentSeq uint64
	order     uint32
	at        Time
	kind      Kind
	arg       uint64
	src       int32
}

// SetPlanner installs the model's window planner, switching RunEpochs from
// the legacy lane-confined epoch mode to guarded mode. Pass nil to restore
// the legacy behaviour.
func (s *Sharded) SetPlanner(p Planner) { s.planner = p }

// runGuarded is RunEpochs' guarded mode: serial dispatch by default, with
// planner-cleared windows running concurrently on workers goroutines. The
// clock contract matches RunUntil: events at or before deadline dispatch,
// and the clock ends at deadline.
func (s *Sharded) runGuarded(workers int, deadline Time) {
	for {
		base, ok := s.minHead()
		if !ok || base > deadline {
			break
		}
		// Poll cancellation once per cancelMask+1 dispatches. Window folds
		// jump fired by whole windows, so the exact-equality stride check
		// used by the serial loops could step over its boundary; tracking
		// the fired count at the last poll keeps the stride guarantee.
		if s.cancel != nil && s.fired-s.lastPoll > cancelMask {
			s.lastPoll = s.fired
			if s.cancel() {
				break
			}
		}
		// Fast path: when the globally next event can never run inside a
		// window (a busy CPU step, a pager batch, a periodic), dispatch it
		// serially without paying for window assembly.
		if !s.headGuardable() {
			s.Step()
			continue
		}
		end := base + s.lookahead
		if end > deadline {
			// The final window is clamped so events exactly at the deadline
			// still run (candidates are popped with at < end).
			end = deadline + 1
		}
		cut := s.assembleWindow(base, end)
		if cut <= base {
			s.Step()
			continue
		}
		s.runWindow(base, cut, workers)
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// headGuardable reports whether the globally next event could run inside a
// guarded window. Callers guarantee at least one event is pending.
func (s *Sharded) headGuardable() bool {
	best := -1
	for i, l := range s.lanes {
		if len(l.heap) == 0 {
			continue
		}
		if best < 0 || headLess(l.heap[0], s.lanes[best].heap[0]) {
			best = i
		}
	}
	it := s.lanes[best].heap[0]
	if it.kind < 0 || (s.hasPeriodic && it.kind == s.periodicKind) {
		return false
	}
	return s.planner.Guardable(WindowEvent{At: it.at, Seq: it.seq, Kind: it.kind, Arg: it.arg, Lane: best})
}

// assembleWindow pops every event in [base, end) into its lane's window
// slice, asks the planner for a cut, clamps it by the engine's own rules,
// and pushes back everything at or past the cut. It returns the final cut;
// a cut <= base means the window dissolved and the caller steps serially.
func (s *Sharded) assembleWindow(base, end Time) Time {
	evs := s.winEvs[:0]
	for i, l := range s.lanes {
		for len(l.heap) > 0 && l.heap[0].at < end {
			it := l.pop()
			l.cand = append(l.cand, it)
			evs = append(evs, WindowEvent{At: it.at, Seq: it.seq, Kind: it.kind, Arg: it.arg, Lane: i})
		}
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].At != evs[j].At {
			return evs[i].At < evs[j].At
		}
		return evs[i].Seq < evs[j].Seq
	})
	cut := s.planner.PlanWindow(base, end, evs)
	if cut > end {
		cut = end
	}
	cut = clampGuard(s, cut, evs)
	for _, l := range s.lanes {
		keep := 0
		for _, it := range l.cand {
			if it.at < cut {
				l.cand[keep] = it
				keep++
			} else {
				l.push(it)
			}
		}
		l.cand = l.cand[:keep]
	}
	s.winEvs = evs[:0]
	return cut
}

// clampGuard applies the ordering rules the engine enforces regardless of
// the planner's answer: closure and periodic events always serialize, and a
// virtual instant appearing on more than one lane serializes — for equal
// times the global sequence stream is the only order, and only the
// serialized merge holds it.
func clampGuard(s *Sharded, cut Time, evs []WindowEvent) Time {
	for i, ev := range evs {
		if ev.At >= cut {
			break
		}
		if ev.Kind < 0 || (s.hasPeriodic && ev.Kind == s.periodicKind) {
			return ev.At
		}
		if i > 0 && ev.At == evs[i-1].At && ev.Lane != evs[i-1].Lane {
			return ev.At
		}
	}
	return cut
}

// runWindow dispatches every lane's planned slice, lanes in parallel across
// workers goroutines, then folds lane clocks and fired counts back into the
// engine and delivers the deferred-schedule journals in serial order.
func (s *Sharded) runWindow(base, cut Time, workers int) {
	if len(s.laneErrs) != len(s.lanes) {
		s.laneErrs = make([]any, len(s.lanes))
	}
	for _, l := range s.lanes {
		l.now = s.now
		l.winCut = cut
	}
	s.inWindow = true
	if workers <= 1 || len(s.lanes) == 1 {
		for i, l := range s.lanes {
			s.laneErrs[i] = l.runGuardedLane()
			if st := s.stats; st != nil {
				st.noteLaneDone(i)
			}
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(s.lanes); i += workers {
					s.laneErrs[i] = s.lanes[i].runGuardedLane()
					if st := s.stats; st != nil {
						st.noteLaneDone(i)
					}
				}
			}(w)
		}
		wg.Wait()
	}
	s.inWindow = false
	// A panic inside a lane is re-raised on the caller's goroutine — lowest
	// lane first, so even failure is deterministic.
	for _, r := range s.laneErrs {
		if r != nil {
			panic(r)
		}
	}
	for _, l := range s.lanes {
		s.fired += l.fired
		l.fired = 0
		if l.now > s.now {
			s.now = l.now
		}
	}
	delivered := s.deliverJournals()
	if st := s.stats; st != nil {
		st.noteEpoch(base, cut, delivered)
	}
}

// runGuardedLane dispatches the lane's planned window slice in (time,
// sequence) order, tracking the dispatching parent so deferred schedules
// carry their serial-order key. The returned value is a captured panic (nil
// on success); capturing here keeps failure deterministic under any worker
// count.
//
//numalint:lane-confined
func (l *Lane) runGuardedLane() (err any) {
	defer func() { err = recover() }()
	for _, it := range l.cand {
		l.now = it.at
		l.fired++
		if st := l.s.stats; st != nil {
			st.NoteLaneDispatch(int(l.idx))
		}
		l.parentAt, l.parentSeq, l.parentOrder = it.at, it.seq, 0
		// The handler table reaches every registered kind, but a window
		// only ever holds events the planner admitted — and core's
		// TestPlannerAdmissibleSetIsProven pins that admissible set to the
		// analyzer's proven-confined entries, so the conservative edge to
		// every handler is the one cut the proof may lean on.
		//numalint:allow laneconfined window events are planner-admitted; the admissible set is pinned to the proven entries
		//numalint:allow laneescape window events are planner-admitted; the proven entries contain no go/send
		l.s.handlers[it.kind](l, l.now, it.arg)
	}
	l.cand = l.cand[:0]
	return nil
}

// deferSchedule journals a schedule call made inside a guarded window. The
// entry must land at or past the window cut: everything before the cut was
// already planned, so an intra-window arrival would have missed its slot.
// The lookahead bound makes this impossible for well-sized models (nothing
// reschedules itself faster than the minimum cross-lane latency); the panic
// turns a mis-sized model into a deterministic failure instead of a silent
// causality violation.
//
//numalint:hotpath
//numalint:lane-confined
func (l *Lane) deferSchedule(at Time, k Kind, arg uint64) {
	if k < 0 || int(k) >= len(l.s.handlers) {
		panic("sim: unregistered event kind")
	}
	if at < l.winCut {
		panic("sim: event scheduled inside the guarded window")
	}
	l.parentOrder++
	l.jrnl = append(l.jrnl, deferred{
		parentAt: l.parentAt, parentSeq: l.parentSeq, order: l.parentOrder,
		at: at, kind: k, arg: arg, src: l.idx,
	})
}

// deliverJournals merges every lane's deferred schedules in (parent time,
// parent sequence, call order) — the exact order a serial run would have
// made these calls — and assigns each the next global sequence number
// before pushing it onto its owning lane's heap. This replays the
// serialized merge's sequence assignment bit for bit, which is what makes
// every later (time, sequence) dispatch decision identical to a serial run.
func (s *Sharded) deliverJournals() int {
	defs := s.defs[:0]
	for _, l := range s.lanes {
		defs = append(defs, l.jrnl...)
		l.jrnl = l.jrnl[:0]
	}
	sort.Slice(defs, func(i, j int) bool {
		a, b := defs[i], defs[j]
		if a.parentAt != b.parentAt {
			return a.parentAt < b.parentAt
		}
		if a.parentSeq != b.parentSeq {
			return a.parentSeq < b.parentSeq
		}
		return a.order < b.order
	})
	for i := range defs {
		d := &defs[i]
		s.seq++
		dst := s.laneOf(d.kind, d.arg)
		if st := s.stats; st != nil && int(d.src) != dst {
			st.NoteCross(int(d.src), dst)
		}
		s.lanes[dst].push(item{at: d.at, seq: s.seq, kind: d.kind, arg: d.arg})
	}
	n := len(defs)
	s.defs = defs[:0]
	return n
}
