package sim

// Event is a callback scheduled at a point in virtual time. The callback
// receives the engine's current time, which equals the time the event was
// scheduled for.
type Event func(now Time)

// Handler is a typed event callback registered once with Register and then
// scheduled any number of times by kind. Scheduling a typed event stores only
// a plain {at, seq, kind, arg} heap item, so the hot paths that re-schedule
// the same logical event for an entire run (a CPU's step chain, a periodic
// tick) allocate nothing per event. arg is the payload supplied at
// scheduling time (a CPU index, an encoded process identity).
type Handler func(now Time, arg uint64)

// Kind identifies a registered Handler.
type Kind int32

// noKind marks closure items; typed items carry a registered Kind >= 0.
const noKind Kind = -1

type item struct {
	at   Time
	seq  uint64 // tie-break so equal-time events fire in schedule order
	fn   Event  // closure events; nil for typed events
	kind Kind   // typed events: index into the handler table
	arg  uint64 // typed events: scheduling-time payload
}

// cancelMask spaces the run loops' cancellation polls: the cancel predicate
// is consulted once every cancelMask+1 dispatches, so cooperative
// cancellation (a context check) costs nothing measurable on the hot path
// while a cancelled run still stops within ~1k events — microseconds of wall
// time. Cancellation never changes a completed run's bytes: a run that stops
// early is a failure (the caller discards the partial state), so the
// byte-identical-output guarantee is untouched.
const cancelMask = 1023

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now      Time
	seq      uint64
	heap     []item
	fired    uint64
	handlers []Handler

	// cancel, when set, is polled by the run loops (every cancelMask+1
	// dispatches); a true return stops dispatching. The predicate must be
	// cheap and safe to call from the run loop's goroutine.
	cancel func() bool

	// Periodic schedules share one registered kind (periodicKind) whose arg
	// indexes periodics, so calling Every any number of times grows the
	// handler table by at most one entry — repeated periodic scheduling must
	// be O(1) in table growth (a sharded engine re-arms periodics per epoch).
	periodics    []periodic
	periodicKind Kind
	hasPeriodic  bool
}

// periodic is one Every schedule: the callback, its period, and its stop
// predicate, re-armed by the shared periodic tick handler.
type periodic struct {
	period Time
	fn     Event
	stop   func() bool
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// SetCancel installs a cancellation predicate polled by RunUntil every
// cancelMask+1 dispatches. When it returns true the run loop stops without
// advancing the clock to the deadline; the caller is expected to discard the
// partial run (core.RunContext turns it into an error). Pass nil to clear.
func (e *Engine) SetCancel(fn func() bool) { e.cancel = fn }

// cancelled reports whether the cancellation predicate asks the run loop to
// stop. Polled on a dispatch-count stride so the nil/false common case is one
// predictable branch.
func (e *Engine) cancelled() bool {
	return e.cancel != nil && e.fired&cancelMask == 0 && e.cancel()
}

// Fired returns the number of events dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled events not yet dispatched.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute time at. Scheduling in the past (before
// Now) panics: it would violate the non-decreasing-time invariant.
func (e *Engine) At(at Time, fn Event) {
	if at < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	e.heap = append(e.heap, item{at: at, seq: e.seq, fn: fn, kind: noKind})
	e.up(len(e.heap) - 1)
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn Event) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.At(e.now+d, fn)
}

// Register installs h in the engine's handler table and returns the Kind to
// schedule it under. Registration is the once-per-subsystem setup cost of the
// typed event path; AtKind/AfterKind then schedule it allocation-free. Typed
// and closure events share one queue, so their relative order follows the
// usual (time, schedule-order) rule.
func (e *Engine) Register(h Handler) Kind {
	if h == nil {
		panic("sim: nil handler")
	}
	e.handlers = append(e.handlers, h)
	return Kind(len(e.handlers) - 1)
}

// AtKind schedules the handler registered under k to run at absolute time at
// with the given arg. Like At, scheduling in the past panics.
//
//numalint:hotpath
func (e *Engine) AtKind(at Time, k Kind, arg uint64) {
	if at < e.now {
		panic("sim: event scheduled in the past")
	}
	if k < 0 || int(k) >= len(e.handlers) {
		panic("sim: unregistered event kind")
	}
	e.seq++
	e.heap = append(e.heap, item{at: at, seq: e.seq, kind: k, arg: arg})
	e.up(len(e.heap) - 1)
}

// AfterKind schedules the handler registered under k to run d nanoseconds
// from now with the given arg.
//
//numalint:hotpath
func (e *Engine) AfterKind(d Time, k Kind, arg uint64) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.AtKind(e.now+d, k, arg)
}

// Every schedules fn at now+period, now+2*period, ... until stop returns
// true (checked after each firing). All periodic schedules share one
// registered tick handler whose arg indexes the periodics table, so repeated
// Every calls grow the handler table by at most one entry and each period
// costs one allocation-free AfterKind re-arm.
func (e *Engine) Every(period Time, fn Event, stop func() bool) {
	if period <= 0 {
		panic("sim: non-positive period")
	}
	if !e.hasPeriodic {
		e.periodicKind = e.Register(e.periodicTick)
		e.hasPeriodic = true
	}
	e.periodics = append(e.periodics, periodic{period: period, fn: fn, stop: stop})
	e.AfterKind(period, e.periodicKind, uint64(len(e.periodics)-1))
}

// periodicTick fires one periodic schedule and re-arms it unless stopped.
func (e *Engine) periodicTick(now Time, arg uint64) {
	p := &e.periodics[arg]
	p.fn(now)
	if p.stop == nil || !p.stop() {
		e.AfterKind(p.period, e.periodicKind, arg)
	}
}

// Step dispatches the next event, advancing the clock to its time. It
// returns false when no events remain.
//
//numalint:hotpath
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	top := e.heap[0]
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap = e.heap[:n]
	if n > 0 {
		e.down(0)
	}
	e.now = top.at
	e.fired++
	if top.fn != nil {
		top.fn(e.now)
	} else {
		e.handlers[top.kind](e.now, top.arg)
	}
	return true
}

// RunUntil dispatches events until the queue is empty or the next event is
// after deadline, then advances the clock to deadline. The clock always ends
// at max(deadline, last dispatched event) — even when the queue drains early
// — so wall-clock-style readings of Now after a run are well defined.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.heap) > 0 && e.heap[0].at <= deadline {
		if e.cancelled() {
			return
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Run dispatches events until none remain.
func (e *Engine) Run() {
	for !e.cancelled() && e.Step() {
	}
}

func (e *Engine) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !e.less(i, p) {
			break
		}
		e.heap[i], e.heap[p] = e.heap[p], e.heap[i]
		i = p
	}
}

func (e *Engine) down(i int) {
	n := len(e.heap)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && e.less(l, small) {
			small = l
		}
		if r < n && e.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		e.heap[i], e.heap[small] = e.heap[small], e.heap[i]
		i = small
	}
}

func (e *Engine) less(i, j int) bool {
	a, b := e.heap[i], e.heap[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
