package sim

// Event is a callback scheduled at a point in virtual time. The callback
// receives the engine's current time, which equals the time the event was
// scheduled for.
type Event func(now Time)

type item struct {
	at  Time
	seq uint64 // tie-break so equal-time events fire in schedule order
	fn  Event
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now   Time
	seq   uint64
	heap  []item
	fired uint64
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled events not yet dispatched.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute time at. Scheduling in the past (before
// Now) panics: it would violate the non-decreasing-time invariant.
func (e *Engine) At(at Time, fn Event) {
	if at < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	e.heap = append(e.heap, item{at: at, seq: e.seq, fn: fn})
	e.up(len(e.heap) - 1)
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn Event) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.At(e.now+d, fn)
}

// Every schedules fn at now+period, now+2*period, ... until stop returns
// true (checked after each firing).
func (e *Engine) Every(period Time, fn Event, stop func() bool) {
	if period <= 0 {
		panic("sim: non-positive period")
	}
	var tick Event
	tick = func(now Time) {
		fn(now)
		if stop == nil || !stop() {
			e.After(period, tick)
		}
	}
	e.After(period, tick)
}

// Step dispatches the next event, advancing the clock to its time. It
// returns false when no events remain.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	top := e.heap[0]
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap = e.heap[:n]
	if n > 0 {
		e.down(0)
	}
	e.now = top.at
	e.fired++
	top.fn(e.now)
	return true
}

// RunUntil dispatches events until the queue is empty or the next event is
// after deadline, then advances the clock to deadline. The clock always ends
// at max(deadline, last dispatched event) — even when the queue drains early
// — so wall-clock-style readings of Now after a run are well defined.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.heap) > 0 && e.heap[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Run dispatches events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

func (e *Engine) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !e.less(i, p) {
			break
		}
		e.heap[i], e.heap[p] = e.heap[p], e.heap[i]
		i = p
	}
}

func (e *Engine) down(i int) {
	n := len(e.heap)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && e.less(l, small) {
			small = l
		}
		if r < n && e.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		e.heap[i], e.heap[small] = e.heap[small], e.heap[i]
		i = small
	}
}

func (e *Engine) less(i, j int) bool {
	a, b := e.heap[i], e.heap[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
