package sim

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
)

// guardedModel is a mixed toy machine for the guarded mode: per-lane ticks
// (lane-confined, guardable) interleaved with machine-global "busy" events
// that mix one shared accumulator and fan out to other lanes — the shape of
// a full-system run, where only the idle fraction of the event stream may
// parallelize.
type guardedModel struct {
	s      *Sharded
	state  []uint64 // per-lane, touched only by ticks on that lane
	global uint64   // machine-global, touched only by busy events
	logs   [][]fireRec
	ticks  []int
	tickK  Kind
	busyK  Kind
}

const guardedLookahead = 50

func newGuardedModel(lanes int) *guardedModel {
	m := &guardedModel{
		s:     NewSharded(lanes, guardedLookahead),
		state: make([]uint64, lanes),
		logs:  make([][]fireRec, lanes),
		ticks: make([]int, lanes),
	}
	laneArg := func(arg uint64) int { return int(arg) % lanes }
	m.tickK = m.s.Register(m.onTick, laneArg)
	m.busyK = m.s.Register(m.onBusy, laneArg)
	for i := 0; i < lanes; i++ {
		// Distinct start instants so guarded windows actually form (the
		// engine serializes cross-lane ties).
		m.s.AtKind(Time(100+13*i), m.tickK, uint64(i))
	}
	return m
}

func (m *guardedModel) onTick(l *Lane, now Time, arg uint64) {
	i := l.Index()
	m.state[i] = m.state[i]*0x9e3779b97f4a7c15 + uint64(now)
	m.logs[i] = append(m.logs[i], fireRec{At: now, Kind: 0, Arg: arg})
	m.ticks[i]++
	if m.ticks[i] < 60 {
		l.AtKind(now+100, m.tickK, arg)
	}
	if m.ticks[i]%5 == 0 {
		// Fan a machine-global event out to another lane, past the window.
		l.AtKind(now+151, m.busyK, uint64((i+1)%len(m.state)))
	}
}

func (m *guardedModel) onBusy(l *Lane, now Time, arg uint64) {
	m.global = m.global*0x2545f4914f6cdd1d + uint64(now)<<8 + arg
	m.logs[l.Index()] = append(m.logs[l.Index()], fireRec{At: now, Kind: 1, Arg: arg})
	if m.global%3 == 0 {
		l.AtKind(now+77, m.busyK, m.global%uint64(len(m.state)))
	}
}

// guardedPlanner admits only ticks: busy events are machine-global and must
// serialize. The cut is the first non-tick candidate (or the window end).
type guardedPlanner struct{ m *guardedModel }

func (p *guardedPlanner) Guardable(ev WindowEvent) bool { return ev.Kind == p.m.tickK }

func (p *guardedPlanner) PlanWindow(base, end Time, evs []WindowEvent) Time {
	for _, ev := range evs {
		if ev.Kind != p.m.tickK {
			return ev.At
		}
	}
	return end
}

// TestGuardedEpochsMatchSerializedMerge is the mode's core contract: with a
// planner installed, RunEpochs must be byte-identical to the serialized
// merge — same per-lane logs, same global accumulator, same clock and fired
// count — at every worker count, with real parallelism.
func TestGuardedEpochsMatchSerializedMerge(t *testing.T) {
	const lanes = 4
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	serial := newGuardedModel(lanes)
	serial.s.RunUntil(20000)
	for _, workers := range []int{1, 2, 4} {
		m := newGuardedModel(lanes)
		m.s.SetPlanner(&guardedPlanner{m})
		m.s.RunEpochs(workers, 20000)
		if m.global != serial.global || !reflect.DeepEqual(m.state, serial.state) {
			t.Fatalf("workers=%d: state diverged from serialized merge:\nguarded global=%d state=%v\nserial  global=%d state=%v",
				workers, m.global, m.state, serial.global, serial.state)
		}
		if !reflect.DeepEqual(m.logs, serial.logs) {
			t.Fatalf("workers=%d: per-lane logs diverged from serialized merge", workers)
		}
		if m.s.Now() != serial.s.Now() || m.s.Fired() != serial.s.Fired() {
			t.Fatalf("workers=%d: clock/fired diverged: guarded %v/%d serial %v/%d",
				workers, m.s.Now(), m.s.Fired(), serial.s.Now(), serial.s.Fired())
		}
	}
}

// TestGuardedEpochsActuallyParallelize guards against the vacuous pass: the
// planner above must clear real windows (not serialize everything), or the
// identity test proves nothing about concurrency.
func TestGuardedEpochsActuallyParallelize(t *testing.T) {
	m := newGuardedModel(4)
	m.s.SetPlanner(&guardedPlanner{m})
	m.s.EnableStats(0)
	m.s.RunEpochs(2, 20000)
	st := m.s.Stats()
	if st.Epochs() == 0 {
		t.Fatal("guarded mode cleared no windows — the planner serialized everything")
	}
}

// TestGuardedWindowScheduleInsidePanics pins the journal's causality check:
// an admitted event that schedules back inside its own window is a
// deterministic panic, not a silent ordering violation.
func TestGuardedWindowScheduleInsidePanics(t *testing.T) {
	s := NewSharded(2, 1000)
	var k Kind
	k = s.Register(func(l *Lane, now Time, arg uint64) {
		l.AtKind(now+1, k, arg) // 1ns out: inside any window that admitted us
	}, func(arg uint64) int { return int(arg) % 2 })
	s.AtKind(100, k, 0)
	s.SetPlanner(admitAll{})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("schedule inside the guarded window did not panic")
		}
		if msg := fmt.Sprint(r); msg != "sim: event scheduled inside the guarded window" {
			t.Fatalf("unexpected panic: %v", msg)
		}
	}()
	s.RunEpochs(2, Millisecond)
}

// TestGuardedWindowEngineSchedulePanics pins the other guard: handler code
// that bypasses its lane and schedules through the engine during a window
// would race the global sequence stream, so it panics.
func TestGuardedWindowEngineSchedulePanics(t *testing.T) {
	s := NewSharded(2, 1000)
	var k Kind
	k = s.Register(func(l *Lane, now Time, arg uint64) {
		s.AtKind(now+2000, k, arg)
	}, func(arg uint64) int { return int(arg) % 2 })
	s.AtKind(100, k, 0)
	s.SetPlanner(admitAll{})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("engine-level schedule during a guarded window did not panic")
		}
		if msg := fmt.Sprint(r); msg != "sim: engine-level schedule during a guarded window" {
			t.Fatalf("unexpected panic: %v", msg)
		}
	}()
	s.RunEpochs(1, Millisecond)
}

// admitAll clears every typed event (test planner; the engine's own clamps
// still apply).
type admitAll struct{}

func (admitAll) Guardable(WindowEvent) bool                   { return true }
func (admitAll) PlanWindow(_, end Time, _ []WindowEvent) Time { return end }

// TestGuardedResumesSerial checks mode switching: events pending past a
// guarded RunEpochs deadline still dispatch identically under the
// serialized merge afterwards.
func TestGuardedResumesSerial(t *testing.T) {
	m := newGuardedModel(2)
	m.s.SetPlanner(&guardedPlanner{m})
	m.s.RunEpochs(2, 600)
	if m.s.Now() != 600 {
		t.Fatalf("clock after guarded RunEpochs = %v, want 600", m.s.Now())
	}
	m.s.RunUntil(20000)
	ref := newGuardedModel(2)
	ref.s.RunUntil(20000)
	if m.global != ref.global || !reflect.DeepEqual(m.state, ref.state) || !reflect.DeepEqual(m.logs, ref.logs) {
		t.Fatal("guarded-then-serial run diverged from all-serial run")
	}
}
