package sim

import "math"

// Rand is a small, fast, deterministic PRNG (xorshift64*). Every stochastic
// component of the simulator owns its own Rand seeded from the run seed, so
// adding or removing one consumer never perturbs the streams of the others.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant (xorshift has an all-zero fixed point).
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state.
func (r *Rand) Seed(seed uint64) {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	r.state = seed
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Split derives a child generator whose stream is independent of subsequent
// draws from r. It is used to hand each workload process its own stream.
func (r *Rand) Split() *Rand {
	return NewRand(r.Uint64() | 1)
}

// Zipf draws from an approximate Zipf(s≈1) distribution over [0, n),
// favouring small indices. It is used for hot-set access patterns.
func (r *Rand) Zipf(n int) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF approximation for s=1: P(X <= k) ~ ln(k+1)/ln(n+1),
	// so k = (n+1)^u - 1 for uniform u.
	k := int(math.Pow(float64(n+1), r.Float64())) - 1
	if k < 0 {
		k = 0
	}
	if k >= n {
		k = n - 1
	}
	return k
}

// Geometric draws a non-negative integer with mean approximately mean,
// geometrically distributed. Used for burst lengths.
func (r *Rand) Geometric(mean float64) int {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	if u >= 1 {
		u = 0.999999
	}
	return int(-mean * math.Log(1-u))
}
