package sim

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
)

// fireRec is one dispatched event in a test log.
type fireRec struct {
	At   Time
	Kind int
	Arg  uint64
}

// TestShardedSerialMatchesEngine drives the same randomized self-scheduling
// model through a single-heap Engine and a 3-lane Sharded engine under the
// serialized merge, and requires the dispatch sequences to be identical —
// the property core's `-shards N` byte-identity rests on.
func TestShardedSerialMatchesEngine(t *testing.T) {
	const lanes = 3
	model := func(register func(h func(now Time, arg uint64)) (fire func(at Time, arg uint64)), run func()) []fireRec {
		var log []fireRec
		rng := NewRand(99)
		var fire func(at Time, arg uint64)
		fire = register(func(now Time, arg uint64) {
			log = append(log, fireRec{At: now, Kind: 0, Arg: arg})
			// Reschedule with a random delay; occasionally fan out to a
			// different arg (in the sharded engine: a different lane).
			if len(log) < 4000 {
				fire(now+Time(1+rng.Intn(500)), arg)
				if rng.Bool(0.3) {
					fire(now+Time(1+rng.Intn(500)), rng.Uint64()%64)
				}
			}
		})
		for i := uint64(0); i < 8; i++ {
			fire(Time(i*7), i)
		}
		run()
		return log
	}

	var eng Engine
	engLog := model(func(h func(Time, uint64)) func(Time, uint64) {
		k := eng.Register(h)
		return func(at Time, arg uint64) { eng.AtKind(at, k, arg) }
	}, func() { eng.RunUntil(2 * Millisecond) })

	sh := NewSharded(lanes, 0)
	shLog := model(func(h func(Time, uint64)) func(Time, uint64) {
		k := sh.Register(func(_ *Lane, now Time, arg uint64) { h(now, arg) },
			func(arg uint64) int { return int(arg % lanes) })
		return func(at Time, arg uint64) { sh.AtKind(at, k, arg) }
	}, func() { sh.RunUntil(2 * Millisecond) })

	if len(engLog) == 0 {
		t.Fatal("model fired no events")
	}
	if !reflect.DeepEqual(engLog, shLog) {
		for i := range engLog {
			if i >= len(shLog) || engLog[i] != shLog[i] {
				t.Fatalf("dispatch diverged at event %d: engine %+v, sharded %+v (lengths %d vs %d)",
					i, engLog[i], shLog[min(i, len(shLog)-1)], len(engLog), len(shLog))
			}
		}
		t.Fatalf("sharded log longer than engine log: %d vs %d", len(shLog), len(engLog))
	}
	if eng.Now() != sh.Now() || eng.Fired() != sh.Fired() {
		t.Fatalf("clocks diverged: engine %v/%d, sharded %v/%d",
			eng.Now(), eng.Fired(), sh.Now(), sh.Fired())
	}
}

// TestShardedSerialMixedClosuresAndEvery checks that closure events and
// periodic schedules interleave identically on both engines.
func TestShardedSerialMixedClosuresAndEvery(t *testing.T) {
	drive := func(at func(Time, Event), every func(Time, Event, func() bool), run func()) []fireRec {
		var log []fireRec
		n := 0
		every(10, func(now Time) {
			log = append(log, fireRec{At: now, Kind: 1})
			n++
		}, func() bool { return n >= 25 })
		every(7, func(now Time) {
			log = append(log, fireRec{At: now, Kind: 2})
		}, func() bool { return n >= 25 })
		at(33, func(now Time) {
			log = append(log, fireRec{At: now, Kind: 3})
			at(now+11, func(now Time) { log = append(log, fireRec{At: now, Kind: 4}) })
		})
		run()
		return log
	}
	var eng Engine
	a := drive(eng.At, eng.Every, eng.Run)
	sh := NewSharded(4, 0)
	b := drive(sh.At, sh.Every, sh.Run)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("closure/periodic interleavings diverged:\nengine  %+v\nsharded %+v", a, b)
	}
}

// TestEveryHandlerTableGrowth pins the satellite fix: any number of Every
// calls may grow the handler table by at most one entry, on both engines.
func TestEveryHandlerTableGrowth(t *testing.T) {
	var eng Engine
	eng.Register(func(Time, uint64) {}) // unrelated registration
	base := len(eng.handlers)
	for i := 0; i < 1000; i++ {
		eng.Every(Time(i+1), func(Time) {}, func() bool { return true })
	}
	if got := len(eng.handlers) - base; got != 1 {
		t.Fatalf("1000 Every calls grew the Engine handler table by %d entries, want 1", got)
	}
	eng.Run() // every periodic stops after one firing

	sh := NewSharded(2, 0)
	sbase := len(sh.handlers)
	for i := 0; i < 1000; i++ {
		sh.Every(Time(i+1), func(Time) {}, func() bool { return true })
	}
	if got := len(sh.handlers) - sbase; got != 1 {
		t.Fatalf("1000 Every calls grew the Sharded handler table by %d entries, want 1", got)
	}
	sh.Run()
}

// epochModel is a lane-confined toy machine for exercising RunEpochs: each
// lane owns a counter-mixing state machine ticking every 100ns, and every
// third tick posts a typed ping to the next lane that arrives lookahead+63ns
// later (never tying with a local tick, so epoch mode and the serialized
// merge are order-equivalent per lane).
type epochModel struct {
	s     *Sharded
	state []uint64
	logs  [][]fireRec
	ticks []int
	tickK Kind
	pingK Kind
}

const epochLookahead = 250

func newEpochModel(lanes int) *epochModel {
	m := &epochModel{
		s:     NewSharded(lanes, epochLookahead),
		state: make([]uint64, lanes),
		logs:  make([][]fireRec, lanes),
		ticks: make([]int, lanes),
	}
	laneArg := func(arg uint64) int { return int(arg) % lanes }
	m.tickK = m.s.Register(m.onTick, laneArg)
	m.pingK = m.s.Register(m.onPing, laneArg)
	for i := 0; i < lanes; i++ {
		m.s.AtKind(Time(100), m.tickK, uint64(i))
	}
	return m
}

func (m *epochModel) onTick(l *Lane, now Time, arg uint64) {
	i := l.Index()
	m.state[i] = m.state[i]*0x9e3779b97f4a7c15 + uint64(now)
	m.logs[i] = append(m.logs[i], fireRec{At: now, Kind: 0, Arg: arg})
	m.ticks[i]++
	if m.ticks[i] < 40 {
		l.AtKind(now+100, m.tickK, arg)
	}
	if m.ticks[i]%3 == 0 {
		dst := uint64((i + 1) % len(m.state))
		l.AtKind(now+epochLookahead+63, m.pingK, dst)
	}
}

func (m *epochModel) onPing(l *Lane, now Time, arg uint64) {
	i := l.Index()
	m.state[i] ^= uint64(now) * 0x2545f4914f6cdd1d
	m.logs[i] = append(m.logs[i], fireRec{At: now, Kind: 1, Arg: arg})
}

// TestShardedEpochsDeterministicAndLaneEquivalent runs the toy machine
// through RunEpochs at several worker counts (with real parallelism) and
// through the serialized merge, and requires (a) identical results at every
// worker count and (b) per-lane event sequences identical to the serialized
// run — the conservative-lookahead equivalence the epoch barrier is sized
// for.
func TestShardedEpochsDeterministicAndLaneEquivalent(t *testing.T) {
	const lanes = 4
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	run := func(drive func(m *epochModel)) *epochModel {
		m := newEpochModel(lanes)
		drive(m)
		return m
	}
	serial := run(func(m *epochModel) { m.s.RunUntil(Millisecond) })
	for _, workers := range []int{1, 2, 4} {
		par := run(func(m *epochModel) { m.s.RunEpochs(workers, Millisecond) })
		if !reflect.DeepEqual(par.state, serial.state) {
			t.Fatalf("workers=%d: lane states diverged from serialized merge:\nepoch  %v\nserial %v",
				workers, par.state, serial.state)
		}
		if !reflect.DeepEqual(par.logs, serial.logs) {
			t.Fatalf("workers=%d: per-lane logs diverged from serialized merge", workers)
		}
		if par.s.Now() != serial.s.Now() || par.s.Fired() != serial.s.Fired() {
			t.Fatalf("workers=%d: clock/fired diverged: epoch %v/%d serial %v/%d",
				workers, par.s.Now(), par.s.Fired(), serial.s.Now(), serial.s.Fired())
		}
	}
}

// TestShardedEpochsCrossLaneWindowPanics pins the runtime check behind the
// lookahead safety argument: a cross-lane event scheduled to land inside
// the current epoch window is an error, not a silent causality violation.
func TestShardedEpochsCrossLaneWindowPanics(t *testing.T) {
	s := NewSharded(2, 1000)
	var k Kind
	k = s.Register(func(l *Lane, now Time, arg uint64) {
		if arg == 0 {
			// Lane 0 posts to lane 1 only 1ns out: inside the window.
			l.AtKind(now+1, k, 1)
		}
	}, func(arg uint64) int { return int(arg) % 2 })
	s.AtKind(100, k, 0)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("cross-lane schedule inside the lookahead window did not panic")
		}
		if msg := fmt.Sprint(r); msg != "sim: cross-lane event scheduled inside the lookahead window" {
			t.Fatalf("unexpected panic: %v", msg)
		}
	}()
	s.RunEpochs(1, Millisecond)
}

// TestShardedResumesSerialAfterEpochs checks mode switching: events left
// pending after RunEpochs (beyond its deadline) still dispatch correctly
// under the serialized merge afterwards.
func TestShardedResumesSerialAfterEpochs(t *testing.T) {
	m := newEpochModel(2)
	m.s.RunEpochs(2, 600)
	if m.s.Now() != 600 {
		t.Fatalf("clock after RunEpochs = %v, want 600", m.s.Now())
	}
	before := m.s.Fired()
	m.s.RunUntil(Millisecond)
	if m.s.Fired() <= before {
		t.Fatal("no events dispatched after switching back to the serialized merge")
	}
	ref := newEpochModel(2)
	ref.s.RunUntil(Millisecond)
	if !reflect.DeepEqual(m.state, ref.state) || !reflect.DeepEqual(m.logs, ref.logs) {
		t.Fatal("epoch-then-serial run diverged from all-serial run")
	}
}
