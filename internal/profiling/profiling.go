// Package profiling wires the conventional -cpuprofile/-memprofile flags
// into the command-line tools, so a slow simulation can be fed straight to
// `go tool pprof` without rebuilding anything.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile to cpuPath when it is non-empty. The returned
// stop function ends the CPU profile and, when memPath is non-empty, runs a
// GC and writes a heap profile there. stop is idempotent, so commands can
// both defer it and call it explicitly before an os.Exit path.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
				return
			}
			// Collect garbage first so the snapshot shows live steady-state
			// memory, not whatever the last cycle left behind.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
			}
			f.Close()
		}
	}, nil
}
