package tracesim

import (
	"testing"

	"ccnuma/internal/mem"
	"ccnuma/internal/sim"
	"ccnuma/internal/trace"
)

func rec(at int, cpu, page int, kind mem.AccessKind) trace.Record {
	return trace.Record{At: sim.Time(at), CPU: mem.CPUID(cpu), Page: mem.GPage(page), Kind: kind}
}

func tlbRec(at int, cpu, page int) trace.Record {
	r := rec(at, cpu, page, mem.DataRead)
	r.Src = trace.TLBMiss
	return r
}

func cfg4() Config { return DefaultConfig(4) }

func TestEmptyTrace(t *testing.T) {
	out := Simulate(&trace.Trace{}, cfg4(), MigRep)
	if out.Total() != 0 || out.LocalMisses+out.RemoteMisses != 0 {
		t.Fatalf("non-zero outcome on empty trace: %+v", out)
	}
}

func TestFTPlacesAtFirstToucher(t *testing.T) {
	tr := &trace.Trace{}
	tr.Append(rec(0, 2, 5, mem.DataRead)) // first touch by cpu2
	tr.Append(rec(1, 2, 5, mem.DataRead))
	tr.Append(rec(2, 0, 5, mem.DataRead)) // remote
	out := Simulate(tr, cfg4(), FT)
	if out.LocalMisses != 2 || out.RemoteMisses != 1 {
		t.Fatalf("FT local/remote = %d/%d, want 2/1", out.LocalMisses, out.RemoteMisses)
	}
	if out.StallLocal != 600 || out.StallRemote != 1200 {
		t.Fatalf("stall = %v/%v", out.StallLocal, out.StallRemote)
	}
}

func TestRRPlacesByPageNumber(t *testing.T) {
	tr := &trace.Trace{}
	// Page 6 mod 4 = node 2; cpu 2 hits locally, cpu 1 remotely.
	tr.Append(rec(0, 2, 6, mem.DataRead))
	tr.Append(rec(1, 1, 6, mem.DataRead))
	out := Simulate(tr, cfg4(), RR)
	if out.LocalMisses != 1 || out.RemoteMisses != 1 {
		t.Fatalf("RR local/remote = %d/%d", out.LocalMisses, out.RemoteMisses)
	}
}

func TestPFPicksMajorityNode(t *testing.T) {
	tr := &trace.Trace{}
	tr.Append(rec(0, 0, 3, mem.DataRead)) // first touch cpu0, but majority cpu3
	for i := 1; i <= 5; i++ {
		tr.Append(rec(i, 3, 3, mem.DataRead))
	}
	ft := Simulate(tr, cfg4(), FT)
	pf := Simulate(tr, cfg4(), PF)
	if pf.LocalMisses != 5 || pf.RemoteMisses != 1 {
		t.Fatalf("PF local/remote = %d/%d, want 5/1", pf.LocalMisses, pf.RemoteMisses)
	}
	if pf.Total() >= ft.Total() {
		t.Fatal("PF should beat FT when the first toucher is not the majority user")
	}
}

func hotTrace(cpu, page, n int) *trace.Trace {
	tr := &trace.Trace{}
	for i := 0; i < n; i++ {
		tr.Append(rec(i*1000, cpu, page, mem.DataRead))
	}
	return tr
}

func TestMigrationMovesHotRemotePage(t *testing.T) {
	tr := &trace.Trace{}
	// Page first touched by cpu0; cpu1 then misses 200 times.
	tr.Append(rec(0, 0, 1, mem.DataRead))
	for i := 1; i <= 200; i++ {
		tr.Append(rec(i*1000, 1, 1, mem.DataRead))
	}
	c := cfg4()
	out := Simulate(tr, c, Migr)
	if out.Migrations == 0 {
		t.Fatal("hot remote page was not migrated")
	}
	// After the migration (trigger 128), remaining misses are local.
	if out.LocalMisses < 50 {
		t.Fatalf("local misses after migration = %d", out.LocalMisses)
	}
	if out.Overhead != sim.Time(out.Migrations)*c.MoveCost {
		t.Fatalf("overhead = %v for %d moves", out.Overhead, out.Migrations)
	}
}

func TestReplicationForReadSharedPage(t *testing.T) {
	tr := &trace.Trace{}
	tr.Append(rec(0, 0, 1, mem.DataRead))
	// Two remote CPUs read-share the page heavily.
	for i := 1; i <= 200; i++ {
		tr.Append(rec(i*1000, 1, 1, mem.DataRead))
		tr.Append(rec(i*1000+1, 2, 1, mem.DataRead))
	}
	out := Simulate(tr, cfg4(), MigRep)
	if out.Replications == 0 {
		t.Fatal("read-shared page was not replicated")
	}
	if out.Migrations != 0 {
		t.Fatalf("read-shared page was migrated %d times", out.Migrations)
	}
	// Multi-replicate should cover both sharing nodes in one action.
	if out.Replications < 2 {
		t.Fatalf("replications = %d, want >= 2 (multi-node)", out.Replications)
	}
}

func TestWriteSharedPageLeftAlone(t *testing.T) {
	tr := &trace.Trace{}
	tr.Append(rec(0, 0, 1, mem.DataRead))
	for i := 1; i <= 600; i++ {
		k := mem.DataRead
		if i%2 == 0 {
			k = mem.DataWrite
		}
		tr.Append(rec(i*100, 1+i%3, 1, k))
	}
	out := Simulate(tr, cfg4(), MigRep)
	if out.Replications != 0 {
		t.Fatalf("write-shared page replicated %d times", out.Replications)
	}
	if out.HotPages == 0 {
		t.Fatal("page never went hot (test not exercising the decision)")
	}
}

func TestCollapseOnWriteToReplicated(t *testing.T) {
	tr := &trace.Trace{}
	tr.Append(rec(0, 0, 1, mem.DataRead))
	for i := 1; i <= 200; i++ {
		tr.Append(rec(i*1000, 1, 1, mem.DataRead))
		tr.Append(rec(i*1000+1, 2, 1, mem.DataRead))
	}
	tr.Append(rec(300000, 3, 1, mem.DataWrite))
	out := Simulate(tr, cfg4(), MigRep)
	if out.Replications == 0 {
		t.Fatal("setup failed: no replication")
	}
	if out.Collapses != 1 {
		t.Fatalf("collapses = %d, want 1", out.Collapses)
	}
}

func TestMigrateThresholdFreezes(t *testing.T) {
	// A page ping-ponged between two CPUs within one interval migrates a
	// bounded number of times (migrate threshold 1 allows two migrations
	// per interval: counts 0 and 1 pass, 2 is frozen).
	tr := &trace.Trace{}
	tr.Append(rec(0, 0, 1, mem.DataRead))
	at := 1000
	for round := 0; round < 6; round++ {
		cpu := 1 + round%2
		for i := 0; i < 200; i++ {
			tr.Append(rec(at, cpu, 1, mem.DataRead))
			at += 100 // everything inside one 100ms reset interval
		}
	}
	out := Simulate(tr, cfg4(), Migr)
	if out.Migrations > 2 {
		t.Fatalf("migrations = %d, want <= 2 (frozen after threshold)", out.Migrations)
	}
}

func TestResetIntervalUnfreezes(t *testing.T) {
	tr := &trace.Trace{}
	tr.Append(rec(0, 0, 1, mem.DataRead))
	at := sim.Time(1000)
	// Each round in its own reset interval: migrations keep happening.
	for round := 0; round < 4; round++ {
		cpu := 1 + round%2
		base := sim.Time(round) * 100 * sim.Millisecond
		for i := 0; i < 200; i++ {
			tr.Append(trace.Record{At: base + at + sim.Time(i), CPU: mem.CPUID(cpu), Page: 1, Kind: mem.DataRead})
		}
	}
	out := Simulate(tr, cfg4(), Migr)
	if out.Migrations < 3 {
		t.Fatalf("migrations = %d, want >= 3 (reset should unfreeze)", out.Migrations)
	}
}

func TestTLBMetricIgnoresCacheRecords(t *testing.T) {
	tr := hotTrace(1, 1, 300) // cache misses only
	tr.Records = append([]trace.Record{rec(0, 0, 1, mem.DataRead)}, tr.Records...)
	c := cfg4()
	c.Metric = FullTLB
	out := Simulate(tr, c, MigRep)
	if out.Migrations+out.Replications != 0 {
		t.Fatal("TLB metric acted on cache-miss records")
	}
	// Stall is still accounted from cache misses.
	if out.RemoteMisses == 0 {
		t.Fatal("stall accounting lost")
	}
}

func TestTLBMetricActsOnTLBRecords(t *testing.T) {
	tr := &trace.Trace{}
	tr.Append(rec(0, 0, 1, mem.DataRead))
	for i := 1; i <= 200; i++ {
		tr.Append(tlbRec(i*1000, 1, 1))
	}
	c := cfg4()
	c.Metric = FullTLB
	out := Simulate(tr, c, MigRep)
	if out.Migrations == 0 {
		t.Fatal("TLB metric did not trigger on TLB records")
	}
}

func TestSampledCacheApproximatesFull(t *testing.T) {
	// A strongly hot page triggers under both FC and SC; SC just needs 10x
	// the misses.
	tr := &trace.Trace{}
	tr.Append(rec(0, 0, 1, mem.DataRead))
	for i := 1; i <= 3000; i++ {
		tr.Append(rec(i*100, 1, 1, mem.DataRead))
	}
	c := cfg4()
	fc := Simulate(tr, c, MigRep)
	c.Metric = SampledCache
	sc := Simulate(tr, c, MigRep)
	if fc.Migrations == 0 || sc.Migrations == 0 {
		t.Fatalf("FC/SC migrations = %d/%d", fc.Migrations, sc.Migrations)
	}
	// SC acts later but the bulk of misses still becomes local.
	if f := sc.LocalFraction(); f < 0.5 {
		t.Fatalf("SC local fraction = %v", f)
	}
}

func TestStaticPoliciesNeverMove(t *testing.T) {
	tr := hotTrace(1, 1, 500)
	for _, k := range []PolicyKind{RR, FT, PF} {
		out := Simulate(tr, cfg4(), k)
		if out.Migrations+out.Replications+out.Collapses != 0 || out.Overhead != 0 {
			t.Fatalf("%v moved pages", k)
		}
	}
}

func TestOtherTimeIncluded(t *testing.T) {
	tr := hotTrace(0, 0, 10)
	c := cfg4()
	c.OtherTime = 5 * sim.Millisecond
	out := Simulate(tr, c, FT)
	if out.Total() != c.OtherTime+out.StallLocal+out.StallRemote {
		t.Fatal("OtherTime not included in total")
	}
}

func TestSimulateAllOrder(t *testing.T) {
	tr := hotTrace(0, 0, 10)
	outs := SimulateAll(tr, cfg4())
	if len(outs) != 6 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	want := []PolicyKind{RR, FT, PF, Migr, Repl, MigRep}
	for i, o := range outs {
		if o.Policy != want[i] {
			t.Fatalf("order mismatch at %d: %v", i, o.Policy)
		}
	}
}

func TestSimulateMetricsOrder(t *testing.T) {
	tr := hotTrace(0, 0, 10)
	outs := SimulateMetrics(tr, cfg4())
	if len(outs) != 4 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	for i, m := range []Metric{FullCache, SampledCache, FullTLB, SampledTLB} {
		if outs[i].Metric != m {
			t.Fatalf("metric order mismatch at %d", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 2000; i++ {
		tr.Append(rec(i*500, i%4, i%17, mem.AccessKind(i%3)))
	}
	a := Simulate(tr, cfg4(), MigRep)
	b := Simulate(tr, cfg4(), MigRep)
	if a != b {
		t.Fatal("trace simulation not deterministic")
	}
}

// Property: the overhead ledger is exactly moves x MoveCost, and the
// local/remote miss counts always sum to the trace's cache-miss count.
func TestAccountingExactProperty(t *testing.T) {
	rng := sim.NewRand(17)
	for round := 0; round < 20; round++ {
		tr := &trace.Trace{}
		var cacheMisses uint64
		for i := 0; i < 3000; i++ {
			k := mem.AccessKind(rng.Intn(3))
			rec := trace.Record{
				At:   sim.Time(i) * 500,
				CPU:  mem.CPUID(rng.Intn(8)),
				Page: mem.GPage(rng.Intn(20)),
				Kind: k,
			}
			if rng.Bool(0.2) {
				rec.Src = trace.TLBMiss
			} else {
				cacheMisses++
			}
			tr.Append(rec)
		}
		cfg := DefaultConfig(8)
		cfg.Params = cfg.Params.WithTrigger(32)
		for _, kind := range Kinds {
			o := Simulate(tr, cfg, kind)
			if o.LocalMisses+o.RemoteMisses != cacheMisses {
				t.Fatalf("%v: misses %d+%d != %d", kind, o.LocalMisses, o.RemoteMisses, cacheMisses)
			}
			moves := o.Migrations + o.Replications + o.Collapses
			if o.Overhead != sim.Time(moves)*cfg.MoveCost {
				t.Fatalf("%v: overhead %v != %d moves x %v", kind, o.Overhead, moves, cfg.MoveCost)
			}
			if o.StallLocal != sim.Time(o.LocalMisses)*cfg.LocalLatency ||
				o.StallRemote != sim.Time(o.RemoteMisses)*cfg.RemoteLatency {
				t.Fatalf("%v: stall ledger inconsistent", kind)
			}
		}
	}
}

func TestCounterGroupingStillActs(t *testing.T) {
	tr := &trace.Trace{}
	tr.Append(rec(0, 0, 1, mem.DataRead))
	for i := 1; i <= 400; i++ {
		tr.Append(rec(i*1000, 1, 1, mem.DataRead))
		tr.Append(rec(i*1000+1, 2, 1, mem.DataRead))
	}
	cfg := cfg4()
	cfg.CounterGroup = 2
	out := Simulate(tr, cfg, MigRep)
	if out.Migrations+out.Replications == 0 {
		t.Fatal("grouped counters never triggered")
	}
}
