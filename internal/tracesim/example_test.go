package tracesim_test

import (
	"fmt"

	"ccnuma/internal/mem"
	"ccnuma/internal/sim"
	"ccnuma/internal/trace"
	"ccnuma/internal/tracesim"
)

// A page first touched by CPU 0 and then hammered by CPU 1 stays remote
// under first-touch placement but migrates under the dynamic policy,
// converting the remaining misses to local ones (Section 8's methodology).
func ExampleSimulate() {
	tr := &trace.Trace{}
	tr.Append(trace.Record{At: 0, CPU: 0, Page: 1, Kind: mem.DataRead})
	for i := 1; i <= 300; i++ {
		tr.Append(trace.Record{At: sim.Time(i) * 1000, CPU: 1, Page: 1, Kind: mem.DataRead})
	}

	cfg := tracesim.DefaultConfig(4)
	ft := tracesim.Simulate(tr, cfg, tracesim.FT)
	mr := tracesim.Simulate(tr, cfg, tracesim.MigRep)

	fmt.Printf("FT:      %.0f%% local, %d moves\n", 100*ft.LocalFraction(), ft.Migrations)
	fmt.Printf("Mig/Rep: %.0f%% local, %d moves\n", 100*mr.LocalFraction(), mr.Migrations)
	fmt.Println("dynamic wins:", mr.Total() < ft.Total())
	// Output:
	// FT:      0% local, 0 moves
	// Mig/Rep: 57% local, 1 moves
	// dynamic wins: true
}
