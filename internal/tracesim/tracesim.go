// Package tracesim reproduces the paper's Section-8 methodology: a policy
// simulator driven by miss traces with a simple contentionless memory model
// (300 ns local misses, 1200 ns remote misses, 350 µs per page move). It
// implements the six policies of Figure 6 — three static (round-robin,
// first-touch, post-facto optimal) and three dynamic (migration only,
// replication only, combined) — and the four information metrics of
// Figure 8 (full/sampled cache misses, full/sampled TLB misses).
package tracesim

import (
	"fmt"

	"ccnuma/internal/directory"
	"ccnuma/internal/mem"
	"ccnuma/internal/policy"
	"ccnuma/internal/sim"
	"ccnuma/internal/topology"
	"ccnuma/internal/trace"
)

// PolicyKind selects one of the Figure-6 policies.
type PolicyKind int

const (
	// RR places page p on node p mod N (equivalent to random placement).
	RR PolicyKind = iota
	// FT places a page on the node that first misses on it.
	FT
	// PF (post-facto) is the best static placement with future knowledge:
	// each page lives on the node with the most misses to it.
	PF
	// Migr is the dynamic policy restricted to migration.
	Migr
	// Repl is the dynamic policy restricted to replication.
	Repl
	// MigRep is the combined dynamic policy.
	MigRep
)

// Kinds lists the policies in the paper's Figure-6 order.
var Kinds = []PolicyKind{RR, FT, PF, Migr, Repl, MigRep}

// String names the policy as in Figure 6.
func (k PolicyKind) String() string {
	switch k {
	case RR:
		return "RR"
	case FT:
		return "FT"
	case PF:
		return "PF"
	case Migr:
		return "Migr"
	case Repl:
		return "Repl"
	case MigRep:
		return "Mig/Rep"
	default:
		return "?"
	}
}

// Dynamic reports whether the policy moves pages at run time.
func (k PolicyKind) Dynamic() bool { return k == Migr || k == Repl || k == MigRep }

// Metric selects the records that drive the policy counters (Figure 8).
type Metric int

const (
	// FullCache uses every cache-miss record.
	FullCache Metric = iota
	// SampledCache uses one cache-miss record in ten.
	SampledCache
	// FullTLB uses every TLB-miss record.
	FullTLB
	// SampledTLB uses one TLB-miss record in ten.
	SampledTLB
)

// String names the metric as in Figure 8.
func (m Metric) String() string {
	return [...]string{"FC", "SC", "FT", "ST"}[m]
}

// CacheDriven reports whether cache-miss records feed the counters.
func (m Metric) CacheDriven() bool { return m == FullCache || m == SampledCache }

// SampleRate returns the counting sample rate.
func (m Metric) SampleRate() int {
	if m == SampledCache || m == SampledTLB {
		return 10
	}
	return 1
}

// Config parameterises the trace simulator.
type Config struct {
	// Nodes is the machine size; CPU c lives on node c mod Nodes.
	Nodes int
	// LocalLatency and RemoteLatency are the contentionless miss costs
	// (Section 8: 300 ns and 1200 ns).
	LocalLatency  sim.Time
	RemoteLatency sim.Time
	// MoveCost is charged per migration, replication, or collapse (350 µs).
	MoveCost sim.Time
	// Params drive the dynamic policies.
	Params policy.Params
	// Metric selects the information source.
	Metric Metric
	// OtherTime is the placement-independent execution time (compute, L2
	// hits, idle) added to every policy's total so normalised comparisons
	// include the paper's "other" component.
	OtherTime sim.Time
	// MultiReplicate replicates to every node above the sharing threshold
	// in one action (matching the kernel implementation); each copy pays
	// MoveCost.
	MultiReplicate bool
	// CounterGroup makes CounterGroup CPUs share one miss counter (the
	// Section 7.2.1 space reduction); 0 or 1 keeps per-CPU counters.
	CounterGroup int
}

// DefaultConfig returns the Section-8 parameters: 300/1200 ns miss
// latencies and the 350 µs page-move cost, the latter scaled by the same
// time-compression factor as the full-system kernel costs (traces come from
// time-compressed runs; see DESIGN.md).
func DefaultConfig(nodes int) Config {
	cost := sim.Time(float64(350*sim.Microsecond) * topology.CCNUMA().CostScale)
	return Config{
		Nodes:          nodes,
		LocalLatency:   300,
		RemoteLatency:  1200,
		MoveCost:       cost,
		Params:         policy.Base(),
		Metric:         FullCache,
		MultiReplicate: true,
	}
}

// Outcome is one policy's result over a trace.
type Outcome struct {
	Policy       PolicyKind
	Metric       Metric
	LocalMisses  uint64
	RemoteMisses uint64
	StallLocal   sim.Time
	StallRemote  sim.Time
	Overhead     sim.Time // page-movement cost
	Other        sim.Time
	Migrations   uint64
	Replications uint64
	Collapses    uint64
	HotPages     uint64
}

// Total returns stall + overhead + other: the comparable execution time.
func (o Outcome) Total() sim.Time {
	return o.StallLocal + o.StallRemote + o.Overhead + o.Other
}

// LocalFraction returns the share of misses satisfied locally.
func (o Outcome) LocalFraction() float64 {
	t := o.LocalMisses + o.RemoteMisses
	if t == 0 {
		return 0
	}
	return float64(o.LocalMisses) / float64(t)
}

// String renders a summary line.
func (o Outcome) String() string {
	return fmt.Sprintf("%-7s total=%v stall(l/r)=%v/%v ovh=%v local%%=%.1f moves=%d/%d/%d",
		o.Policy, o.Total(), o.StallLocal, o.StallRemote, o.Overhead,
		100*o.LocalFraction(), o.Migrations, o.Replications, o.Collapses)
}

type pageState struct {
	home     mem.NodeID
	placed   bool
	replicas uint16 // bitmask by node (Nodes <= 16)
	migCount uint8
	everRepl bool
}

func (p *pageState) hasCopy(n mem.NodeID) bool {
	return (p.placed && p.home == n) || p.replicas&(1<<uint(n)) != 0
}

// Simulate runs one policy over the trace. The trace must be time-ordered
// (as produced by the machine simulator).
func Simulate(tr *trace.Trace, cfg Config, kind PolicyKind) Outcome {
	if cfg.Nodes <= 0 || cfg.Nodes > 16 {
		panic(fmt.Sprintf("tracesim: unsupported node count %d", cfg.Nodes))
	}
	pages := tr.MaxPage()
	out := Outcome{Policy: kind, Metric: cfg.Metric, Other: cfg.OtherTime}
	if pages == 0 {
		return out
	}
	st := make([]pageState, pages)

	// Post-facto: place each page on the node with the most cache misses.
	if kind == PF {
		counts := make([][]uint32, pages)
		for _, r := range tr.Records {
			if r.Src != trace.CacheMiss {
				continue
			}
			if counts[r.Page] == nil {
				counts[r.Page] = make([]uint32, cfg.Nodes)
			}
			counts[r.Page][int(r.CPU)%cfg.Nodes]++
		}
		for p := range counts {
			if counts[p] == nil {
				continue
			}
			best := 0
			for n := 1; n < cfg.Nodes; n++ {
				if counts[p][n] > counts[p][best] {
					best = n
				}
			}
			st[p].home = mem.NodeID(best)
			st[p].placed = true
		}
	}

	params := cfg.Params.ScaledForSampling(cfg.Metric.SampleRate())
	if kind == Migr {
		params = params.MigrationOnly()
	}
	if kind == Repl {
		params = params.ReplicationOnly()
	}

	var counters *directory.Counters
	var pending []directory.HotRef
	if kind.Dynamic() {
		group := cfg.CounterGroup
		if group < 1 {
			group = 1
		}
		counters = directory.NewGroupedCounters(pages, cfg.Nodes, group, params.Trigger, 1,
			cfg.Metric.SampleRate(), func(batch []directory.HotRef) {
				pending = append(pending, batch...)
			})
	}
	nextReset := params.ResetInterval

	for _, rec := range tr.Records {
		node := mem.NodeID(int(rec.CPU) % cfg.Nodes)
		p := &st[rec.Page]

		if counters != nil {
			for rec.At >= nextReset {
				counters.Reset()
				for i := range st {
					st[i].migCount = 0
				}
				nextReset += params.ResetInterval
			}
		}

		// Placement on first touch (RR is computed, FT observed, PF preset).
		if !p.placed {
			switch kind {
			case RR:
				p.home = mem.NodeID(int(rec.Page) % cfg.Nodes)
			default:
				p.home = node
			}
			p.placed = true
		}

		if rec.Src == trace.CacheMiss {
			if p.hasCopy(node) {
				out.LocalMisses++
				out.StallLocal += cfg.LocalLatency
			} else {
				out.RemoteMisses++
				out.StallRemote += cfg.RemoteLatency
			}
			// A write to a replicated page collapses it to the writer's
			// nearest copy (the pfault path), under every dynamic policy.
			if rec.Kind.IsWrite() && p.replicas != 0 && kind.Dynamic() {
				p.home = nearestHome(p, node)
				p.replicas = 0
				out.Collapses++
				out.Overhead += cfg.MoveCost
			}
		}

		if counters == nil {
			continue
		}
		feed := (cfg.Metric.CacheDriven() && rec.Src == trace.CacheMiss) ||
			(!cfg.Metric.CacheDriven() && rec.Src == trace.TLBMiss)
		if !feed {
			continue
		}
		counters.Record(rec.Page, mem.CPUID(int(rec.CPU)%cfg.Nodes), rec.Kind.IsWrite(), !p.hasCopy(node))
		for _, h := range pending {
			applyAction(&out, cfg, params, counters, &st[h.Page], h)
		}
		pending = pending[:0]
	}
	if counters != nil {
		out.HotPages = counters.Stats().Hot
	}
	return out
}

// nearestHome returns the copy kept after a collapse: the writer's node if a
// copy lives there, otherwise the current home.
func nearestHome(p *pageState, writer mem.NodeID) mem.NodeID {
	if p.replicas&(1<<uint(writer)) != 0 || p.home == writer {
		return writer
	}
	return p.home
}

func applyAction(out *Outcome, cfg Config, params policy.Params,
	counters *directory.Counters, p *pageState, h directory.HotRef) {
	node := mem.NodeID(int(h.CPU))
	stPol := policy.PageState{
		Local:      p.hasCopy(node),
		Replicated: p.replicas != 0,
		MigCount:   p.migCount,
	}
	d := policy.Decide(params, counters.MissRow(h.Page), counters.Writes(h.Page), counters.GroupOf(h.CPU), stPol)
	switch d.Action {
	case policy.MigratePage:
		p.home = node
		p.migCount++
		out.Migrations++
		out.Overhead += cfg.MoveCost
	case policy.ReplicatePage:
		targets := []mem.NodeID{node}
		if cfg.MultiReplicate {
			row := counters.MissRow(h.Page)
			for c := 0; c < cfg.Nodes; c++ {
				cn := mem.NodeID(c)
				if cn != node && row[counters.GroupOf(mem.CPUID(c))] >= params.Sharing && !p.hasCopy(cn) {
					targets = append(targets, cn)
				}
			}
		}
		for _, n := range targets {
			if p.hasCopy(n) {
				continue
			}
			p.replicas |= 1 << uint(n)
			p.everRepl = true
			out.Replications++
			out.Overhead += cfg.MoveCost
		}
	}
	counters.ClearPage(h.Page)
}

// SimulateAll runs every Figure-6 policy over the trace.
func SimulateAll(tr *trace.Trace, cfg Config) []Outcome {
	outs := make([]Outcome, 0, len(Kinds))
	for _, k := range Kinds {
		outs = append(outs, Simulate(tr, cfg, k))
	}
	return outs
}

// SimulateMetrics runs the combined policy under each Figure-8 metric.
func SimulateMetrics(tr *trace.Trace, cfg Config) []Outcome {
	outs := make([]Outcome, 0, 4)
	for _, m := range []Metric{FullCache, SampledCache, FullTLB, SampledTLB} {
		c := cfg
		c.Metric = m
		outs = append(outs, Simulate(tr, c, MigRep))
	}
	return outs
}
