// Package interconnect models contention in the NUMA memory system with
// analytic FIFO resources: each resource (a directory controller's service
// pipeline, a network link) has a fixed service time per request and a
// next-free horizon. A request arriving while the resource is busy queues
// behind the horizon, which reproduces the queueing delays that make the
// observed remote latency exceed the configured minimum (Section 7.1.3:
// 2279ns observed vs 1200ns minimum on CC-NUMA).
package interconnect

import "ccnuma/internal/sim"

// Resource is a FIFO server with deterministic service time. The zero value
// with Service left zero is a free resource (requests pass through with no
// delay), which models the zero-network-delay configuration.
type Resource struct {
	Service sim.Time

	nextFree sim.Time
	requests uint64
	busyTime sim.Time
	waitTime sim.Time
	queueSum uint64 // sum over requests of queue length at arrival
	queueMax int
}

// Request enqueues a request arriving at now and returns the total delay
// until its service completes (queue wait + service time).
func (r *Resource) Request(now sim.Time) sim.Time {
	r.requests++
	if r.Service <= 0 {
		return 0
	}
	start := now
	if r.nextFree > start {
		start = r.nextFree
	}
	wait := start - now
	r.nextFree = start + r.Service
	r.busyTime += r.Service
	r.waitTime += wait
	qlen := int(wait / r.Service)
	r.queueSum += uint64(qlen)
	if qlen > r.queueMax {
		r.queueMax = qlen
	}
	return wait + r.Service
}

// Stats describes a resource's accumulated contention.
type Stats struct {
	Requests  uint64
	BusyTime  sim.Time
	WaitTime  sim.Time
	AvgQueue  float64
	MaxQueue  int
	Occupancy float64 // busy time / horizon, given a run length
}

// Snapshot returns statistics, computing occupancy against the elapsed run
// time (pass the engine's final clock).
func (r *Resource) Snapshot(elapsed sim.Time) Stats {
	s := Stats{
		Requests: r.requests,
		BusyTime: r.busyTime,
		WaitTime: r.waitTime,
		MaxQueue: r.queueMax,
	}
	if r.requests > 0 {
		s.AvgQueue = float64(r.queueSum) / float64(r.requests)
	}
	if elapsed > 0 {
		s.Occupancy = float64(r.busyTime) / float64(elapsed)
	}
	return s
}

// Reset clears statistics but keeps the service time and horizon.
func (r *Resource) Reset() {
	r.requests, r.busyTime, r.waitTime, r.queueSum, r.queueMax = 0, 0, 0, 0, 0
}
