package interconnect

import (
	"testing"

	"ccnuma/internal/sim"
)

func TestIdleResourceNoWait(t *testing.T) {
	r := Resource{Service: 100}
	if d := r.Request(0); d != 100 {
		t.Fatalf("idle request delay = %v, want 100", d)
	}
	if d := r.Request(1000); d != 100 {
		t.Fatalf("later idle request delay = %v, want 100", d)
	}
}

func TestBackToBackRequestsQueue(t *testing.T) {
	r := Resource{Service: 100}
	if d := r.Request(0); d != 100 {
		t.Fatalf("first delay = %v", d)
	}
	if d := r.Request(0); d != 200 {
		t.Fatalf("second same-instant delay = %v, want 200 (100 wait + 100 service)", d)
	}
	if d := r.Request(50); d != 250 {
		t.Fatalf("third delay = %v, want 250", d)
	}
}

func TestZeroServicePassThrough(t *testing.T) {
	var r Resource
	for i := 0; i < 10; i++ {
		if d := r.Request(sim.Time(i)); d != 0 {
			t.Fatalf("zero-service resource delayed a request by %v", d)
		}
	}
	s := r.Snapshot(100)
	if s.Requests != 10 || s.BusyTime != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSnapshotStats(t *testing.T) {
	r := Resource{Service: 100}
	r.Request(0)
	r.Request(0)
	r.Request(0) // queue lengths seen: 0, 1, 2
	s := r.Snapshot(1000)
	if s.Requests != 3 {
		t.Fatalf("requests = %d", s.Requests)
	}
	if s.MaxQueue != 2 {
		t.Fatalf("max queue = %d, want 2", s.MaxQueue)
	}
	if s.AvgQueue != 1 {
		t.Fatalf("avg queue = %v, want 1", s.AvgQueue)
	}
	if s.BusyTime != 300 {
		t.Fatalf("busy = %v, want 300", s.BusyTime)
	}
	if s.Occupancy != 0.3 {
		t.Fatalf("occupancy = %v, want 0.3", s.Occupancy)
	}
	if s.WaitTime != 300 { // 0 + 100 + 200
		t.Fatalf("wait = %v, want 300", s.WaitTime)
	}
}

func TestResetKeepsHorizon(t *testing.T) {
	r := Resource{Service: 100}
	r.Request(0)
	r.Reset()
	if d := r.Request(0); d != 200 {
		t.Fatalf("delay after reset = %v, want 200 (horizon must survive reset)", d)
	}
	if s := r.Snapshot(1000); s.Requests != 1 {
		t.Fatalf("requests after reset = %d, want 1", s.Requests)
	}
}

func TestDrainThenIdle(t *testing.T) {
	r := Resource{Service: 10}
	r.Request(0) // busy until 10
	if d := r.Request(100); d != 10 {
		t.Fatalf("request after drain delayed %v, want 10", d)
	}
}
