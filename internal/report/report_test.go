package report

import (
	"strings"
	"sync"
	"testing"
)

// The report tests run at a small scale: they verify that every experiment
// renders, includes its paper reference numbers, and that the headline
// relationships hold directionally.

var (
	sharedOnce sync.Once
	sharedH    *Harness
)

// testHarness shares one harness across the package's tests; memoized runs
// make the suite fast.
func testHarness(t *testing.T) *Harness {
	t.Helper()
	sharedOnce.Do(func() { sharedH = NewHarness(0.25, 11) })
	return sharedH
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{"T3", "F3", "T4", "S7.1.2", "F5", "T5", "T6", "S7.2.1", "S7.2.3", "F4", "F6", "F7", "F8", "F9", "S8.4", "X1", "X2", "X3", "X4", "X5"}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Errorf("position %d: %s, want %s", i, e.ID, want[i])
		}
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("F3"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("F99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestHarnessMemoizesRuns(t *testing.T) {
	h := testHarness(t)
	a := h.FT("database")
	b := h.FT("database")
	if a != b {
		t.Fatal("FT run not memoized")
	}
	if h.Trace("database") != h.Trace("database") {
		t.Fatal("trace not memoized")
	}
}

func TestNodesPerWorkload(t *testing.T) {
	h := testHarness(t)
	if h.Nodes("database") != 4 || h.Nodes("raytrace") != 8 {
		t.Fatal("node counts wrong")
	}
}

func TestBasePolicyTriggers(t *testing.T) {
	h := testHarness(t)
	if h.BasePolicy("engineering").Trigger != 96 {
		t.Fatal("engineering trigger should be 96")
	}
	if h.BasePolicy("raytrace").Trigger != 128 {
		t.Fatal("raytrace trigger should be 128")
	}
}

func TestFigure3RendersWithPaperNumbers(t *testing.T) {
	h := testHarness(t)
	e, _ := ByID("F3")
	out := e.Run(h)
	for _, frag := range []string{"engineering", "raytrace", "29.0%", "15.0%", "52.0%"} {
		if !strings.Contains(out, frag) {
			t.Errorf("F3 output missing %q:\n%s", frag, out)
		}
	}
}

func TestFigure3DirectionalWins(t *testing.T) {
	h := testHarness(t)
	// The headline result must hold even at reduced scale: the dynamic
	// policy improves locality on raytrace (the pre-touched scene).
	ft, mr := h.FT("raytrace"), h.MigRep("raytrace")
	if mr.LocalMissFraction <= ft.LocalMissFraction {
		t.Fatalf("raytrace locality: FT %.2f vs M/R %.2f", ft.LocalMissFraction, mr.LocalMissFraction)
	}
}

func TestTable4RobustnessOnDatabase(t *testing.T) {
	h := testHarness(t)
	mr := h.MigRep("database")
	_, _, none, _ := mr.Actions.Percent()
	if none < 50 {
		t.Fatalf("database no-action = %.0f%%, want dominant (paper 85%%)", none)
	}
}

func TestTraceSimExperimentsRender(t *testing.T) {
	h := testHarness(t)
	for _, id := range []string{"F6", "F8", "F9", "S8.4"} {
		e, _ := ByID(id)
		out := e.Run(h)
		if !strings.Contains(out, "engineering") || len(out) < 100 {
			t.Errorf("%s output suspicious:\n%s", id, out)
		}
	}
}

func TestRunAllProducesEverySection(t *testing.T) {
	if testing.Short() {
		t.Skip("full report in -short mode")
	}
	h := testHarness(t)
	doc := RunAll(h)
	for _, e := range Experiments() {
		if !strings.Contains(doc, "## "+e.ID+" — ") {
			t.Errorf("report missing section %s", e.ID)
		}
	}
}
