package report

import (
	"sync"

	"ccnuma/internal/trace"
	"ccnuma/internal/tracesim"
)

// This file is the experiment layer's worker pool. Every sweep in
// experiments.go/extensions.go is a set of independent simulations — each
// builds its own core.System or tracesim table, and the only state shared
// between them is the harness memo (goroutine-safe, see harness.go) and
// recorded traces (read-only once built). The pool fans those simulations
// out across Harness.Workers goroutines while the rendering stays serial
// and reads results by index, so the emitted report is byte-identical at
// any worker count.
//
// Tasks must not spawn nested collect/forEach calls: the pool is a flat
// goroutine fan-out (one goroutine per task), and the sweeps flatten their
// workload x policy grids into a single task list instead of nesting.

// forEach runs f(0..n-1). With Workers <= 1 it runs them in index order on
// the calling goroutine — exactly the serial loop it replaces; otherwise it
// runs up to Workers tasks at a time.
func (h *Harness) forEach(n int, f func(i int)) {
	w := h.Workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// collect computes out[i] = f(i) through the pool, preserving index order
// in the result regardless of completion order.
func collect[T any](h *Harness, n int, f func(i int) T) []T {
	out := make([]T, n)
	h.forEach(n, func(i int) { out[i] = f(i) })
	return out
}

// warm executes the given simulation thunks through the pool. Experiments
// whose rendering interleaves runs with formatting call this first so the
// expensive runs populate the memo concurrently and the subsequent serial
// rendering only reads cached results.
func (h *Harness) warm(thunks ...func()) {
	h.forEach(len(thunks), func(i int) { thunks[i]() })
}

// simGrid runs one tracesim policy table per workload — the shape shared by
// Figures 6-9 and the Section-8.4 sweep. Each cell simulates the workload's
// user (or kernel) trace under one variant produced by vary; the whole
// workload x variant grid is flattened into one task list so the pool sees
// every independent simulation at once. Results come back as
// [workload][variant] in loop order.
func simGrid(h *Harness, workloads []string, nvar int,
	sub func(tr *trace.Trace) *trace.Trace,
	vary func(tr *trace.Trace, cfg tracesim.Config, v int) tracesim.Outcome) [][]tracesim.Outcome {
	// Build the subtraces first: every variant of a workload shares its
	// trace, and collecting one is itself a full-system run worth
	// parallelising.
	subs := collect(h, len(workloads), func(i int) *trace.Trace {
		return sub(h.Trace(workloads[i]))
	})
	flat := collect(h, len(workloads)*nvar, func(i int) tracesim.Outcome {
		wl := workloads[i/nvar]
		return vary(subs[i/nvar], traceCfg(h, wl), i%nvar)
	})
	out := make([][]tracesim.Outcome, len(workloads))
	for i := range workloads {
		out[i] = flat[i*nvar : (i+1)*nvar]
	}
	return out
}
