package report

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"ccnuma/internal/core"
	"ccnuma/internal/sim"
	"ccnuma/internal/workload"
)

// waitForGoroutines polls until the process goroutine count drops back to at
// most base, failing the test if it never does — the leak detector for the
// harness's child run goroutines.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("simulation goroutine leaked: %d goroutines, started with %d", n, base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHarnessTimeoutStopsSimulation is the regression test for the
// fire-and-abandon RunTimeout: a simulation that would run for a long time is
// timed out after 30ms, and its goroutine must actually exit (the old design
// abandoned it to burn CPU to the virtual deadline). Observed via the process
// goroutine count settling back to its pre-run level.
func TestHarnessTimeoutStopsSimulation(t *testing.T) {
	h := NewHarness(0.2, 1)
	h.KeepGoing = true
	h.RunTimeout = 30 * time.Millisecond

	base := runtime.NumGoroutine()
	// 10 virtual seconds of the engineering workload takes far longer than
	// 30ms of wall clock to simulate, so the deadline always fires mid-run.
	res := h.Run("engineering", core.Options{Duration: 10 * sim.Second})
	if !res.Failed {
		t.Fatal("timed-out run did not return the failure placeholder")
	}
	waitForGoroutines(t, base)

	failures := h.Failures()
	if len(failures) != 1 || !failures[0].TimedOut {
		t.Fatalf("failures = %+v, want one timed-out record", failures)
	}
	if !strings.Contains(failures[0].Error, "deadline exceeded") {
		t.Fatalf("failure error does not name the deadline: %q", failures[0].Error)
	}
}

// TestHarnessRunContextCancel: cancelling the caller's context mid-run stops
// the simulation, skips the retry chain, and leaves no goroutine behind.
func TestHarnessRunContextCancel(t *testing.T) {
	h := NewHarness(0.2, 1)
	h.KeepGoing = true
	h.Retries = 3 // must NOT be consumed: a cancelled caller never retries

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	h.PreRun = func(string, core.Options) { close(started) }
	go func() {
		<-started
		cancel()
	}()

	base := runtime.NumGoroutine()
	res := h.RunContext(ctx, "engineering", core.Options{Duration: 10 * sim.Second})
	if !res.Failed {
		t.Fatal("cancelled run did not return the failure placeholder")
	}
	waitForGoroutines(t, base)

	failures := h.Failures()
	if len(failures) != 1 {
		t.Fatalf("failures = %d, want 1", len(failures))
	}
	if failures[0].TimedOut {
		t.Fatal("a cancel was misreported as a timeout")
	}
	if failures[0].Attempts != 1 {
		t.Fatalf("cancelled run consumed retries: %d attempts", failures[0].Attempts)
	}
}

// TestExecuteSuccess: the memo-free entry point returns a normal result and
// accumulates no per-request state on the harness.
func TestExecuteSuccess(t *testing.T) {
	h := NewHarness(0.05, 1)
	build := func() *workload.Spec {
		b, err := workload.ByName("engineering")
		if err != nil {
			t.Fatal(err)
		}
		return b(0.05, 1)
	}
	res, fail, err := h.Execute(context.Background(), "engineering",
		build, core.Options{Seed: 1, Duration: 5 * sim.Millisecond})
	if err != nil || fail != nil {
		t.Fatalf("Execute failed: %v / %+v", err, fail)
	}
	if res == nil || res.Elapsed <= 0 {
		t.Fatalf("Execute produced no measurements: %+v", res)
	}
	if len(h.Failures()) != 0 || len(h.Metrics()) != 0 {
		t.Fatal("Execute grew the harness's accumulating state")
	}
	// Identical options must produce a fresh simulation (caching is the
	// caller's policy), so two Executes both count as executed.
	if _, _, err := h.Execute(context.Background(), "engineering",
		build, core.Options{Seed: 1, Duration: 5 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if executed, _ := h.Counters(); executed != 2 {
		t.Fatalf("executed = %d, want 2 (Execute never memoizes)", executed)
	}
}

// TestExecuteFailureManifest: a panicking run comes back as a RunFailure with
// the flight-recorder dump attached, returned to the caller instead of
// appended to the harness (a server's Harness lives forever).
func TestExecuteFailureManifest(t *testing.T) {
	h := NewHarness(0.05, 1)
	h.RecorderDepth = 32
	h.PreRun = func(string, core.Options) { panic("injected server-side failure") }
	build := func() *workload.Spec {
		b, _ := workload.ByName("engineering")
		return b(0.05, 1)
	}
	res, fail, err := h.Execute(context.Background(), "what-if-17",
		build, core.Options{Seed: 9, Dynamic: true, Duration: 5 * sim.Millisecond})
	if err == nil || fail == nil || res != nil {
		t.Fatalf("Execute did not fail: res=%v fail=%v err=%v", res, fail, err)
	}
	if fail.Workload != "what-if-17" || !strings.Contains(fail.Error, "injected server-side failure") {
		t.Fatalf("failure manifest = %+v", fail)
	}
	if fail.Fingerprint == "" || !strings.Contains(fail.Fingerprint, "Dynamic:true") {
		t.Fatalf("fingerprint does not identify the options: %q", fail.Fingerprint)
	}
	if len(h.Failures()) != 0 {
		t.Fatal("Execute appended to the harness failure list")
	}
	// Cancelled contexts surface as errors.Is-checkable causes.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h.PreRun = nil
	_, fail2, err2 := h.Execute(ctx, "what-if-18", build, core.Options{Seed: 9})
	if !errors.Is(err2, context.Canceled) || fail2 == nil {
		t.Fatalf("pre-cancelled Execute: err=%v fail=%+v", err2, fail2)
	}
}
