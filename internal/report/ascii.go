package report

import (
	"fmt"
	"strings"
)

// bars renders a horizontal bar chart, one row per label, scaled so the
// largest value fills width characters — the textual equivalent of the
// paper's stacked-bar figures.
func bars(b *strings.Builder, labels []string, values []float64, width int) {
	if len(labels) != len(values) || len(labels) == 0 {
		return
	}
	max := values[0]
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	if max <= 0 {
		return
	}
	if width <= 0 {
		width = 40
	}
	for i, l := range labels {
		n := int(values[i] / max * float64(width))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(b, "  %-8s |%-*s| %.2f\n", l, width, strings.Repeat("#", n), values[i])
	}
}

// stackedBar renders one composition row (e.g. local/remote/overhead/other)
// as proportional segments of a fixed-width bar.
func stackedBar(b *strings.Builder, label string, segs []float64, glyphs []byte, width int) {
	total := 0.0
	for _, s := range segs {
		total += s
	}
	if total <= 0 || len(segs) != len(glyphs) {
		return
	}
	if width <= 0 {
		width = 48
	}
	var bar []byte
	for i, s := range segs {
		n := int(s / total * float64(width))
		for j := 0; j < n && len(bar) < width; j++ {
			bar = append(bar, glyphs[i])
		}
	}
	for len(bar) < width {
		bar = append(bar, ' ')
	}
	fmt.Fprintf(b, "  %-12s |%s|\n", label, bar)
}
