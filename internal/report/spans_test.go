package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ccnuma/internal/core"
	"ccnuma/internal/obs"
	"ccnuma/internal/sim"
)

// spanStates collects the distinct states present in a span list.
func spanStates(spans []Span) map[string]int {
	m := map[string]int{}
	for _, s := range spans {
		m[s.State]++
	}
	return m
}

// TestHarnessSpansLifecycle walks one run through a failure, a retry backoff,
// a successful attempt, and a memo hit, and requires the span timeline to
// show each stage.
func TestHarnessSpansLifecycle(t *testing.T) {
	h := NewHarness(0.05, 1)
	h.CollectSpans = true
	h.Retries = 1
	h.RetryBackoff = time.Millisecond
	var calls atomic.Int64
	h.PreRun = func(string, core.Options) {
		if calls.Add(1) == 1 {
			panic("transient")
		}
	}
	opt := core.Options{Duration: 5 * sim.Millisecond}
	if res := h.Run("engineering", opt); res.Failed {
		t.Fatalf("run failed despite retry budget: %+v", res)
	}
	h.Run("engineering", opt) // answered from the memo

	spans := h.Spans()
	states := spanStates(spans)
	for _, want := range []string{SpanQueued, SpanFailed, SpanRetry, SpanRunning, SpanMemoHit} {
		if states[want] == 0 {
			t.Fatalf("timeline missing a %q span: %v", want, states)
		}
	}
	for _, s := range spans {
		if s.End < s.Start {
			t.Fatalf("span ends before it starts: %+v", s)
		}
		if s.ID == "" || s.Workload != "engineering" {
			t.Fatalf("span missing identity: %+v", s)
		}
		switch s.State {
		case SpanMemoHit:
			if s.Slot != -1 {
				t.Fatalf("memo hit rendered on a worker slot: %+v", s)
			}
		case SpanFailed:
			if s.Attempt != 1 {
				t.Fatalf("failed span attempt = %d, want 1", s.Attempt)
			}
		case SpanRunning:
			if s.Attempt != 2 {
				t.Fatalf("running span attempt = %d, want 2", s.Attempt)
			}
		}
	}
}

// TestSpansDisabledByDefault pins the zero-cost default: without
// CollectSpans, Run leaves no timeline behind.
func TestSpansDisabledByDefault(t *testing.T) {
	h := NewHarness(0.05, 1)
	h.Run("engineering", core.Options{Duration: 5 * sim.Millisecond})
	if spans := h.Spans(); len(spans) != 0 {
		t.Fatalf("spans recorded without CollectSpans: %+v", spans)
	}
}

// TestWriteSpansChromeTrace checks the wire format: valid trace-event JSON,
// a harness process, one thread per slot plus the memo thread, and complete
// events carrying the run identity.
func TestWriteSpansChromeTrace(t *testing.T) {
	spans := []Span{
		{Workload: "engineering", ID: "00ab", State: SpanQueued, Slot: 0, Start: 0, End: 1500},
		{Workload: "engineering", ID: "00ab", State: SpanRunning, Attempt: 1, Slot: 0, Start: 1500, End: 9000},
		{Workload: "raytrace", ID: "00cd", State: SpanMemoHit, Slot: -1, Start: 2000, End: 2200},
	}
	var buf bytes.Buffer
	if err := WriteSpansChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("spans trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var names []string
	slices, memoTID := 0, false
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			names = append(names, e.Args["name"].(string))
		case "X":
			slices++
			if e.Name == "raytrace memo-hit" {
				memoTID = e.TID == memoSlotTID
			}
			if e.Name == "engineering running" && e.Args["attempt"].(float64) != 1 {
				t.Fatalf("running span lost its attempt: %v", e.Args)
			}
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"harness", "slot0", "memo"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("metadata names %q missing %q", joined, want)
		}
	}
	if slices != len(spans) {
		t.Fatalf("slice events = %d, want %d", slices, len(spans))
	}
	if !memoTID {
		t.Fatal("memo-hit span not rendered on the memo thread")
	}
}

// TestFailureManifestFlightRecorder checks the flight recorder's dump lands
// in the failure record: the last RecorderDepth events with the truncation
// marker, serializable into the -keep-going manifest.
func TestFailureManifestFlightRecorder(t *testing.T) {
	h := NewHarness(0.05, 1)
	h.KeepGoing = true
	h.RecorderDepth = 4
	h.PreRun = func(wl string, opt core.Options) {
		for i := int64(0); i < 6; i++ {
			e := obs.NewEvent(obs.KindPageMigrated)
			e.At, e.Page = sim.Time(i*100), i
			opt.Recorder.Record(e)
		}
		panic("injected failure")
	}
	res := h.Run("engineering", core.Options{Duration: 5 * sim.Millisecond})
	if !res.Failed {
		t.Fatal("poisoned run did not fail")
	}
	failures := h.Failures()
	if len(failures) != 1 {
		t.Fatalf("failures = %d, want 1", len(failures))
	}
	f := failures[0]
	if len(f.Events) != 4 || f.EventsDropped != 2 {
		t.Fatalf("flight dump = %d events, %d dropped; want the newest 4 with 2 dropped",
			len(f.Events), f.EventsDropped)
	}
	for i, e := range f.Events {
		if want := int64(2 + i); e.Page != want {
			t.Fatalf("dump[%d].Page = %d, want %d (oldest-first)", i, e.Page, want)
		}
	}
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"events_dropped":2`) ||
		!strings.Contains(string(b), `"page-migrated"`) {
		t.Fatalf("manifest JSON lost the flight dump: %s", b)
	}
}

// TestFailureWithoutRecorderOmitsEvents pins the manifest's default shape:
// with RecorderDepth unset, failure records carry no events fields at all.
func TestFailureWithoutRecorderOmitsEvents(t *testing.T) {
	h := NewHarness(0.05, 1)
	h.KeepGoing = true
	h.PreRun = func(string, core.Options) { panic("injected failure") }
	h.Run("engineering", core.Options{Duration: 5 * sim.Millisecond})
	failures := h.Failures()
	if len(failures) != 1 {
		t.Fatalf("failures = %d, want 1", len(failures))
	}
	b, err := json.Marshal(failures[0])
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "events") {
		t.Fatalf("manifest JSON grew events fields without a recorder: %s", b)
	}
}

// TestShardStatsTableRendering checks the ASCII report: deterministic across
// identical runs, and carrying the lane rows, dispatch bars, and traffic
// matrix the shard-stats flag prints.
func TestShardStatsTableRendering(t *testing.T) {
	if got := ShardStatsTable(nil); got != "shard stats: not collected\n" {
		t.Fatalf("nil table = %q", got)
	}
	run := func() string {
		h := NewHarness(0.05, 1)
		h.Shards = 2 // the harness pins the lane count on every run it owns
		res := h.Run("engineering", core.Options{
			Duration: 4 * sim.Millisecond, Dynamic: true,
			CollectShardStats: true,
		})
		return ShardStatsTable(res.ShardStats)
	}
	table := run()
	for _, want := range []string{"Shard lanes: 2", "lane0", "lane1", "dispatched"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	if again := run(); again != table {
		t.Fatalf("table not deterministic:\n--- first\n%s\n--- second\n%s", table, again)
	}
}
