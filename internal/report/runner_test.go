package report

import (
	"sync"
	"testing"

	"ccnuma/internal/core"
	"ccnuma/internal/policy"
	"ccnuma/internal/sim"
)

// Regression for the memo-key bug: the old hand-rolled runKey omitted
// Params.Sharing/Write/Migrate/ResetInterval, so runs differing only in
// those fields collided and returned the wrong cached Result.
func TestRunKeyCoversAllPolicyParams(t *testing.T) {
	base := core.Options{Dynamic: true, Params: policy.Base()}
	mods := map[string]func(*core.Options){
		"sharing": func(o *core.Options) { o.Params.Sharing++ },
		"write":   func(o *core.Options) { o.Params.Write++ },
		"migrate": func(o *core.Options) { o.Params.Migrate++ },
		"reset":   func(o *core.Options) { o.Params.ResetInterval += sim.Millisecond },
	}
	baseKey := runKey("engineering", base)
	for name, mutate := range mods {
		o := base
		mutate(&o)
		if runKey("engineering", o) == baseKey {
			t.Errorf("runKey ignores Params.%s", name)
		}
	}
	if runKey("raytrace", base) == baseKey {
		t.Error("runKey ignores the workload")
	}
}

func TestRunsDifferingOnlyInSharingAreDistinct(t *testing.T) {
	h := NewHarness(0.1, 5)
	pa := policy.Base()
	pb := pa.WithSharingFraction(2) // sharing 64 instead of 32
	a := h.Run("database", core.Options{Dynamic: true, Params: pa})
	b := h.Run("database", core.Options{Dynamic: true, Params: pb})
	if a == b {
		t.Fatal("memo collision: runs differing only in the sharing threshold shared a Result")
	}
	if executed, _ := h.Counters(); executed != 2 {
		t.Fatalf("executed %d simulations, want 2", executed)
	}
}

// The singleflight memo must never double-run a key or tear a result when
// hammered from many goroutines (run under -race to check the latter).
func TestSingleflightUnderConcurrency(t *testing.T) {
	h := NewHarness(0.1, 3)
	const callers = 24
	results := make([]*core.Result, callers)
	traces := make([]interface{}, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 3 {
			case 0:
				results[i] = h.FT("database")
			case 1:
				results[i] = h.MigRep("database")
			default:
				traces[i] = h.Trace("database")
			}
		}(i)
	}
	wg.Wait()
	for i := 3; i < callers; i++ {
		if results[i] != results[i%3] || traces[i] != traces[i%3] {
			t.Fatalf("caller %d saw a different result than caller %d", i, i%3)
		}
	}
	// Three distinct keys (FT, MigRep, FT+trace), each run exactly once.
	executed, hits := h.Counters()
	if executed != 3 {
		t.Fatalf("executed %d simulations, want 3 (double-run under contention)", executed)
	}
	if executed+hits < callers {
		t.Fatalf("executed %d + hits %d < %d callers", executed, hits, callers)
	}
}

func TestForEachCoversAllIndicesInOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 16} {
		h := NewHarness(0.1, 1)
		h.Workers = workers
		out := collect(h, 100, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// The rendered report must be byte-identical whatever the worker count:
// parallelism only reorders when simulations run, never what is rendered.
func TestReportDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full harnesses")
	}
	serial := NewHarness(0.1, 9)
	serial.Workers = 1
	wide := NewHarness(0.1, 9)
	wide.Workers = 8
	for _, id := range []string{"T6", "F6", "F9", "S8.4", "X4"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		a, b := e.Run(serial), e.Run(wide)
		if a != b {
			t.Errorf("%s differs between -j1 and -j8:\n--- j1 ---\n%s\n--- j8 ---\n%s", id, a, b)
		}
	}
	// The parallel harness must not have run anything the serial one didn't.
	se, _ := serial.Counters()
	we, _ := wide.Counters()
	if se != we {
		t.Errorf("serial executed %d simulations, parallel %d", se, we)
	}
}
