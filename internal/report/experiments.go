package report

import (
	"fmt"
	"strings"

	"ccnuma/internal/core"
	"ccnuma/internal/directory"
	"ccnuma/internal/sim"
	"ccnuma/internal/stats"
	"ccnuma/internal/topology"
	"ccnuma/internal/trace"
	"ccnuma/internal/tracesim"
)

// fig3Workloads are the workloads of Sections 7.1-7.2 (large user stall).
var fig3Workloads = []string{"engineering", "raytrace", "splash", "database"}

// paperT3 holds Table 3's published characterisation: user/kernel/idle % of
// execution time, then Kinstr/Kdata/Uinstr/Udata stall % of non-idle.
var paperT3 = map[string][7]float64{
	"engineering": {74, 6, 20, 1.6, 3.8, 34.4, 37.4},
	"raytrace":    {69, 25, 6, 3.6, 15.1, 4.8, 36.1},
	"splash":      {65, 17, 18, 4.4, 11.8, 3.1, 36.3},
	"database":    {55, 7, 38, 1.4, 6.0, 2.5, 50.3},
	"pmake":       {34, 44, 22, 4.0, 29.3, 3.6, 9.1},
}

func init() {
	register("T3", "Workload characterisation (Table 3)", table3)
	register("F3", "Base policy vs first touch (Figure 3)", figure3)
	register("T4", "Actions taken on hot pages (Table 4)", table4)
	register("S7.1.2", "System-wide contention benefit (Section 7.1.2)", contention)
	register("F5", "CC-NUMA vs CC-NOW (Figure 5, Section 7.1.3)", figure5)
	register("T5", "Per-operation step latencies (Table 5)", table5)
	register("T6", "Kernel overhead by function (Table 6)", table6)
	register("S7.2.1", "Information-gathering space overhead (Section 7.2.1)", spaceOverhead)
	register("S7.2.3", "Replication space overhead (Section 7.2.3)", replicationSpace)
	register("F4", "Read-chain distribution (Figure 4)", figure4)
	register("F6", "Policy comparison over traces (Figure 6)", figure6)
	register("F7", "Kernel misses under the policies (Figure 7)", figure7)
	register("F8", "Approximate information metrics (Figure 8)", figure8)
	register("F9", "Trigger-threshold sweep (Figure 9)", figure9)
	register("S8.4", "Sharing-threshold sensitivity (Section 8.4)", sharingSweep)
}

func table3(h *Harness) string {
	var b strings.Builder
	wls := append(append([]string{}, fig3Workloads...), "pmake")
	h.forEach(len(wls), func(i int) { h.FT(wls[i]) })
	row(&b, "workload", "user%", "kern%", "idle%", "Kinstr%", "Kdata%", "Uinstr%", "Udata%")
	for _, wl := range wls {
		r := h.FT(wl)
		bd := &r.Agg
		tot, ni := bd.Total(), bd.NonIdle()
		user := bd.Compute[stats.User] + bd.StallTime(stats.User, stats.Instr) + bd.StallTime(stats.User, stats.Data)
		kern := tot - bd.Idle - user
		p := paperT3[wl]
		row(&b, wl,
			pct(100*float64(user)/float64(tot)), pct(100*float64(kern)/float64(tot)),
			pct(100*float64(bd.Idle)/float64(tot)),
			pct(100*float64(bd.StallTime(stats.Kernel, stats.Instr))/float64(ni)),
			pct(100*float64(bd.StallTime(stats.Kernel, stats.Data))/float64(ni)),
			pct(100*float64(bd.StallTime(stats.User, stats.Instr))/float64(ni)),
			pct(100*float64(bd.StallTime(stats.User, stats.Data))/float64(ni)))
		row(&b, "  (paper)", pct(p[0]), pct(p[1]), pct(p[2]), pct(p[3]), pct(p[4]), pct(p[5]), pct(p[6]))
	}
	return b.String()
}

// paperF3 holds Figure 3's improvements: total execution time and memory
// stall reduction, percent.
var paperF3 = map[string][2]float64{
	"engineering": {29, 52},
	"raytrace":    {15, 36},
	"splash":      {4, 24},
	"database":    {5, 10},
}

func memStall(r *core.Result) sim.Time {
	_, local, remote := r.Agg.MemStall()
	return local + remote
}

func figure3(h *Harness) string {
	var b strings.Builder
	h.forEach(2*len(fig3Workloads), func(i int) {
		if wl := fig3Workloads[i/2]; i%2 == 0 {
			h.FT(wl)
		} else {
			h.MigRep(wl)
		}
	})
	row(&b, "workload", "time impr", "(paper)", "stall impr", "(paper)", "FT local%", "M/R local%", "overhead%")
	for _, wl := range fig3Workloads {
		ft, mr := h.FT(wl), h.MigRep(wl)
		p := paperF3[wl]
		row(&b, wl,
			pct(improvement(ft.Agg.NonIdle(), mr.Agg.NonIdle())), pct(p[0]),
			pct(improvement(memStall(ft), memStall(mr))), pct(p[1]),
			pct(100*ft.LocalMissFraction), pct(100*mr.LocalMissFraction),
			pct(100*float64(mr.Agg.Pager.Total())/float64(mr.Agg.NonIdle())))
	}
	b.WriteString("\nExecution time is machine-wide non-idle time for the fixed workload;\n")
	b.WriteString("the paper's Figures 3/5 likewise plot non-idle execution time.\n")
	return b.String()
}

// paperT4 rows: hot pages, %migrate, %replicate, %no-action, %no-page.
var paperT4 = map[string][5]float64{
	"engineering": {7728, 55, 27, 12, 6},
	"raytrace":    {2934, 34, 31, 35, 0},
	"splash":      {6328, 36, 22, 18, 24},
	"database":    {2003, 13, 2, 85, 0},
}

func table4(h *Harness) string {
	var b strings.Builder
	h.forEach(len(fig3Workloads), func(i int) { h.MigRep(fig3Workloads[i]) })
	row(&b, "workload", "hot pages", "migrate%", "replicate%", "no-action%", "no-page%")
	for _, wl := range fig3Workloads {
		mr := h.MigRep(wl)
		mig, rep, none, nopage := mr.Actions.Percent()
		p := paperT4[wl]
		row(&b, wl, fmt.Sprint(mr.Actions.HotPages), pct(mig), pct(rep), pct(none), pct(nopage))
		row(&b, "  (paper)", fmt.Sprint(int(p[0])), pct(p[1]), pct(p[2]), pct(p[3]), pct(p[4]))
	}
	return b.String()
}

func contention(h *Harness) string {
	var b strings.Builder
	h.warm(
		func() { h.FT("engineering") },
		func() { h.MigRep("engineering") },
		func() { h.Run("engineering", core.Options{Config: topology.ZeroNet()}) },
		func() { h.Run("engineering", core.Options{Config: topology.ZeroNet(), Dynamic: true}) },
	)
	ft, mr := h.FT("engineering"), h.MigRep("engineering")
	fc, mc := ft.Contention, mr.Contention
	row(&b, "metric", "FT", "Mig/Rep", "reduction", "(paper)")
	row(&b, "remote handlers", fmt.Sprint(fc.RemoteHandlerInvocations), fmt.Sprint(mc.RemoteHandlerInvocations),
		pct(100*(1-float64(mc.RemoteHandlerInvocations)/float64(fc.RemoteHandlerInvocations))), "40.0%")
	row(&b, "avg dir wait", fc.AvgDirWait.String(), mc.AvgDirWait.String(),
		pct(improvement(fc.AvgDirWait, mc.AvgDirWait)), "38.0%*")
	row(&b, "max dir occup", fmt.Sprintf("%.3f", fc.MaxDirOccupancy), fmt.Sprintf("%.3f", mc.MaxDirOccupancy),
		pct(100*(1-safeDiv(mc.MaxDirOccupancy, fc.MaxDirOccupancy))), "32.0%")
	row(&b, "local read lat", fc.AvgLocalReadLatency.String(), mc.AvgLocalReadLatency.String(),
		pct(improvement(fc.AvgLocalReadLatency, mc.AvgLocalReadLatency)), "34.0%")
	b.WriteString("(* the paper reports the mean network queue length; our links are\nunsaturated, so queueing shows up at the directory controllers instead)\n")

	// Zero-network-delay run: locality still matters without any network.
	zft := h.Run("engineering", core.Options{Config: topology.ZeroNet()})
	zmr := h.Run("engineering", core.Options{Config: topology.ZeroNet(), Dynamic: true})
	fmt.Fprintf(&b, "\nzero-network-delay configuration:\n")
	row(&b, "", "stall impr", "(paper)", "time impr", "(paper)")
	row(&b, "engineering",
		pct(improvement(memStall(zft), memStall(zmr))), "38.0%",
		pct(improvement(zft.Agg.NonIdle(), zmr.Agg.NonIdle())), "21.0%")
	return b.String()
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func figure5(h *Harness) string {
	var b strings.Builder
	h.warm(
		func() { h.FT("engineering") },
		func() { h.MigRep("engineering") },
		func() { h.Run("engineering", core.Options{Config: topology.CCNOW()}) },
		func() { h.Run("engineering", core.Options{Config: topology.CCNOW(), Dynamic: true}) },
	)
	numaFT, numaMR := h.FT("engineering"), h.MigRep("engineering")
	nowFT := h.Run("engineering", core.Options{Config: topology.CCNOW()})
	nowMR := h.Run("engineering", core.Options{Config: topology.CCNOW(), Dynamic: true})
	row(&b, "config", "time impr", "(paper)", "stall impr", "(paper)", "obs remote", "min")
	row(&b, "cc-numa",
		pct(improvement(numaFT.Agg.NonIdle(), numaMR.Agg.NonIdle())), "29.0%",
		pct(improvement(memStall(numaFT), memStall(numaMR))), "52.0%",
		numaFT.AvgRemoteLatency.String(), "1200ns")
	row(&b, "cc-now",
		pct(improvement(nowFT.Agg.NonIdle(), nowMR.Agg.NonIdle())), "30.0%",
		pct(improvement(memStall(nowFT), memStall(nowMR))), "53.0%",
		nowFT.AvgRemoteLatency.String(), "3000ns")
	b.WriteString("\n(The paper observes 2279ns on CC-NUMA and 3680ns on CC-NOW: controller\noccupancy inflates the minimum remote latency.)\n")
	return b.String()
}

// paperT5 per workload: replication then migration step rows, microseconds:
// Intr, Decision, Alloc, Links, TLB, Copy, End, Total.
var paperT5 = map[string][2][8]float64{
	"engineering": {{12.0, 12.6, 184.3, 28.6, 35.9, 87.0, 80.5, 441.9}, {13.0, 12.6, 184.3, 75.8, 35.9, 87.0, 63.4, 472.0}},
	"raytrace":    {{24.4, 16.0, 74.4, 34.3, 61.5, 106.7, 77.4, 394.7}, {24.4, 16.0, 74.4, 100.5, 61.5, 106.7, 64.9, 448.4}},
	"splash":      {{22.2, 12.8, 170.6, 40.2, 51.3, 97.1, 91.9, 486.1}, {22.2, 12.8, 170.6, 99.7, 51.3, 97.1, 62.4, 516.1}},
}

var t5Steps = []stats.PagerFunc{
	stats.FnIntrProc, stats.FnPolicyDecision, stats.FnPageAlloc,
	stats.FnLinksMapping, stats.FnTLBFlush, stats.FnPageCopy, stats.FnPolicyEnd,
}

var t5Workloads = []string{"engineering", "raytrace", "splash"}

func table5(h *Harness) string {
	var b strings.Builder
	h.forEach(len(t5Workloads), func(i int) { h.MigRep(t5Workloads[i]) })
	scale := 1.0 / topology.CCNUMA().CostScale
	row(&b, "workload/op", "Intr", "Decide", "Alloc", "Links", "TLB", "Copy", "End", "Total")
	for _, wl := range t5Workloads {
		mr := h.MigRep(wl)
		for ki, kind := range []stats.OpKind{stats.OpReplicate, stats.OpMigrate} {
			ol := mr.Agg.Pager.OpLatency[kind]
			cells := []string{fmt.Sprintf("%s %s", wl[:4], kind)}
			for _, f := range t5Steps {
				cells = append(cells, fmt.Sprintf("%.1f", ol.MeanStep(f)*scale))
			}
			cells = append(cells, fmt.Sprintf("%.1f", ol.MeanTotal()*scale))
			row(&b, cells...)
			p := paperT5[wl][ki]
			pc := []string{"  (paper)"}
			for _, v := range p {
				pc = append(pc, fmt.Sprintf("%.1f", v))
			}
			row(&b, pc...)
		}
	}
	fmt.Fprintf(&b, "\nLatencies in microseconds, paper-equivalent (measured x %.0f; see\nDESIGN.md on cost scaling). Interrupt and TLB-flush costs are amortized\nover the batch, as in the paper.\n", scale)
	return b.String()
}

// paperT6 per workload: kernel overhead seconds, then % by function in
// Table 6's order: TLB, Alloc, Copy, Fault, Links, End, Decision, Intr.
var paperT6 = map[string][9]float64{
	"engineering": {4.54, 34.5, 25.5, 11.1, 8.9, 8.3, 8.8, 2.1, 1.7},
	"raytrace":    {1.80, 54.4, 7.6, 10.8, 5.4, 7.4, 7.4, 2.6, 2.6},
	"splash":      {4.00, 44.1, 20.7, 8.1, 7.3, 6.5, 6.3, 2.0, 1.9},
}

var t6Funcs = []stats.PagerFunc{
	stats.FnTLBFlush, stats.FnPageAlloc, stats.FnPageCopy, stats.FnPageFault,
	stats.FnLinksMapping, stats.FnPolicyEnd, stats.FnPolicyDecision, stats.FnIntrProc,
}

func table6(h *Harness) string {
	var b strings.Builder
	trackCfg := topology.CCNUMA()
	trackCfg.TrackTLBHolders = true
	copyCfg := topology.CCNUMA()
	copyCfg.DirCopy = true
	h.warm(
		func() { h.MigRep("engineering") },
		func() { h.MigRep("raytrace") },
		func() { h.MigRep("splash") },
		func() { h.Run("engineering", core.Options{Config: trackCfg, Dynamic: true}) },
		func() { h.Run("engineering", core.Options{Config: copyCfg, Dynamic: true}) },
	)
	row(&b, "workload", "ovhd", "TLB%", "Alloc%", "Copy%", "Fault%", "Links%", "End%", "Decide%", "Intr%")
	for _, wl := range t5Workloads {
		mr := h.MigRep(wl)
		pb := &mr.Agg.Pager
		cells := []string{wl, pb.Total().String()}
		for _, f := range t6Funcs {
			cells = append(cells, pct(pb.Percent(f)))
		}
		row(&b, cells...)
		p := paperT6[wl]
		pc := []string{"  (paper)", fmt.Sprintf("%.2fs", p[0])}
		for i := 1; i < 9; i++ {
			pc = append(pc, pct(p[i]))
		}
		row(&b, pc...)
	}

	// Ablations the paper discusses in 7.2.2: tracking TLB holders
	// (-25% kernel overhead) and the directory's pipelined copy.
	baseRun := h.MigRep("engineering")
	tracked := h.Run("engineering", core.Options{Config: trackCfg, Dynamic: true})
	dircopy := h.Run("engineering", core.Options{Config: copyCfg, Dynamic: true})
	fmt.Fprintf(&b, "\nablations (engineering): base overhead %v, busy %v\n",
		baseRun.Agg.Pager.Total(), baseRun.Agg.NonIdle())
	fmt.Fprintf(&b, "  track-TLB-holders: overhead %v (%s less), busy %v (paper: ~25%% less overhead)\n",
		tracked.Agg.Pager.Total(), pct(improvement(baseRun.Agg.Pager.Total(), tracked.Agg.Pager.Total())),
		tracked.Agg.NonIdle())
	fmt.Fprintf(&b, "  directory page copy: overhead %v, busy %v (paper: copy 100us -> 35us;\n  cheaper copies let the same interrupt budget move more pages)\n",
		dircopy.Agg.Pager.Total(), dircopy.Agg.NonIdle())
	return b.String()
}

func spaceOverhead(h *Harness) string {
	var b strings.Builder
	h.warm(
		func() { h.MigRep("engineering") },
		func() { h.Run("engineering", core.Options{Dynamic: true, Metric: core.SampledCache}) },
	)
	row(&b, "configuration", "overhead", "(paper)")
	row(&b, "8 nodes, 1B ctrs", pct(100*directory.SpaceOverhead(8, 1)), "0.2%")
	row(&b, "128 nodes, 1B", pct(100*directory.SpaceOverhead(128, 1)), "3.1%")
	row(&b, "128 nodes, 0.5B", pct(100*directory.SpaceOverhead(128, 0.5)), "1.6%")
	mr := h.MigRep("engineering")
	fmt.Fprintf(&b, "\nsampling: %d of %d misses counted (rate 1, full info run);\n",
		mr.Counters.Counted, mr.Counters.Recorded)
	sc := h.Run("engineering", core.Options{Dynamic: true, Metric: core.SampledCache})
	fmt.Fprintf(&b, "sampled-cache run counted %d of %d (1:10).\n", sc.Counters.Counted, sc.Counters.Recorded)
	return b.String()
}

func replicationSpace(h *Harness) string {
	var b strings.Builder
	h.warm(
		func() { h.MigRep("engineering") },
		func() { h.MigRep("raytrace") },
		func() { h.Run("engineering", core.Options{Dynamic: true, ReplicateCodeOnFirstTouch: true}) },
	)
	row(&b, "workload", "policy repl", "(paper)", "code-FT repl", "(paper)")
	for _, wl := range []string{"engineering", "raytrace"} {
		mr := h.MigRep(wl)
		paperBase := "32.0%"
		ablCell, paperAbl := "-", "-"
		if wl == "raytrace" {
			paperBase = "20.0%"
		} else {
			// The paper states this blow-up for engineering only: six
			// instances of each binary, one text copy per node.
			ablate := h.Run(wl, core.Options{Dynamic: true, ReplicateCodeOnFirstTouch: true})
			ablCell = pct(100 * float64(ablate.Alloc.PeakReplica) / float64(h.CodePages(wl)))
			paperAbl = "~500%"
		}
		row(&b, wl,
			pct(100*mr.Alloc.ReplicaOverhead()), paperBase,
			ablCell, paperAbl)
	}
	b.WriteString("\nPolicy overhead is peak replica frames over peak base frames (total\nmemory increase). The replicate-code-on-first-touch column is stated as\nthe paper states it: extra copies relative to the code footprint.\n")
	return b.String()
}

func figure4(h *Harness) string {
	var b strings.Builder
	h.forEach(len(fig3Workloads), func(i int) { h.Trace(fig3Workloads[i]) })
	ths := []int{1, 8, 64, 512}
	row(&b, "workload", ">=1", ">=8", ">=64", ">=512", "paper(>=512)")
	paper512 := map[string]string{"raytrace": "60%", "splash": "30%", "engineering": "-", "database": "low"}
	for _, wl := range fig3Workloads {
		tr := h.Trace(wl).UserOnly()
		c := trace.ReadChains(tr, ths)
		cells := []string{wl}
		for i := range ths {
			cells = append(cells, pct(100*c.FractionAtLeast[i]))
		}
		cells = append(cells, paper512[wl])
		row(&b, cells...)
	}
	return b.String()
}

func traceCfg(h *Harness, wl string) tracesim.Config {
	cfg := tracesim.DefaultConfig(h.Nodes(wl))
	cfg.Params = h.BasePolicy(wl)
	cfg.OtherTime = h.OtherTime(wl)
	return cfg
}

func figure6(h *Harness) string {
	var b strings.Builder
	grid := simGrid(h, fig3Workloads, len(tracesim.Kinds), (*trace.Trace).UserOnly,
		func(tr *trace.Trace, cfg tracesim.Config, v int) tracesim.Outcome {
			return tracesim.Simulate(tr, cfg, tracesim.Kinds[v])
		})
	row(&b, "workload", "RR", "FT", "PF", "Migr", "Repl", "Mig/Rep", "local%(M/R)")
	for wi, wl := range fig3Workloads {
		outs := grid[wi]
		base := outs[0].Total() // RR
		cells := []string{wl}
		var last tracesim.Outcome
		for _, o := range outs {
			cells = append(cells, fmt.Sprintf("%.2f", float64(o.Total())/float64(base)))
			last = o
		}
		cells = append(cells, pct(100*last.LocalFraction()))
		row(&b, cells...)
	}
	b.WriteString("\nengineering, normalized (the paper's Figure-6 bars):\n")
	{
		outs := grid[0] // engineering
		base := float64(outs[0].Total())
		labels := make([]string, len(outs))
		vals := make([]float64, len(outs))
		for i, o := range outs {
			labels[i] = o.Policy.String()
			vals[i] = float64(o.Total()) / base
		}
		bars(&b, labels, vals, 44)
		b.WriteString("\n  composition of the Mig/Rep bar (L=local stall, R=remote, O=overhead,\n  .=other):\n")
		o := outs[len(outs)-1]
		stackedBar(&b, "Mig/Rep", []float64{
			float64(o.StallLocal), float64(o.StallRemote),
			float64(o.Overhead), float64(o.Other)},
			[]byte{'L', 'R', 'O', '.'}, 48)
	}
	b.WriteString("\nTotals (stall + movement overhead + placement-independent time)\nnormalized to round-robin. Paper: the dynamic policies beat every static\nplacement, including post-facto, for three of the four workloads.\n")
	return b.String()
}

func figure7(h *Harness) string {
	var b strings.Builder
	outs := simGrid(h, []string{"pmake"}, len(tracesim.Kinds), (*trace.Trace).KernelOnly,
		func(tr *trace.Trace, cfg tracesim.Config, v int) tracesim.Outcome {
			return tracesim.Simulate(tr, cfg, tracesim.Kinds[v])
		})[0]
	tr := h.Trace("pmake").KernelOnly()
	base := outs[0].Total()
	row(&b, "pmake kernel", "RR", "FT", "PF", "Migr", "Repl", "Mig/Rep")
	cells := []string{"normalized"}
	for _, o := range outs {
		cells = append(cells, fmt.Sprintf("%.2f", float64(o.Total())/float64(base)))
	}
	row(&b, cells...)
	instr := 0
	total := 0
	for _, r := range tr.Records {
		if r.Src == trace.CacheMiss {
			total++
			if r.Kind.IsInstr() {
				instr++
			}
		}
	}
	fmt.Fprintf(&b, "\nkernel code misses: %.0f%% of kernel misses (paper ~12%%). Paper: almost\nno benefit beyond first touch; the little there is comes from replicating\nkernel code.\n", 100*float64(instr)/float64(total))
	return b.String()
}

func figure8(h *Harness) string {
	var b strings.Builder
	metrics := []tracesim.Metric{tracesim.FullCache, tracesim.SampledCache,
		tracesim.FullTLB, tracesim.SampledTLB}
	// Variant 0 is the round-robin baseline; 1..4 run Mig/Rep under each
	// Figure-8 information source.
	grid := simGrid(h, fig3Workloads, 1+len(metrics), (*trace.Trace).UserOnly,
		func(tr *trace.Trace, cfg tracesim.Config, v int) tracesim.Outcome {
			if v == 0 {
				return tracesim.Simulate(tr, cfg, tracesim.RR)
			}
			cfg.Metric = metrics[v-1]
			return tracesim.Simulate(tr, cfg, tracesim.MigRep)
		})
	row(&b, "workload", "FC", "SC", "FT", "ST", "RR-norm")
	for wi, wl := range fig3Workloads {
		rr := grid[wi][0].Total()
		cells := []string{wl}
		for _, o := range grid[wi][1:] {
			cells = append(cells, fmt.Sprintf("%.2f", float64(o.Total())/float64(rr)))
		}
		cells = append(cells, "1.00")
		row(&b, cells...)
	}
	b.WriteString("\nMig/Rep run time normalized to round-robin under each information\nsource. Paper: sampled cache matches full cache everywhere; TLB misses\nare not a consistent approximation (engineering suffers most).\n")
	return b.String()
}

func figure9(h *Harness) string {
	var b strings.Builder
	triggers := []uint16{16, 32, 64, 128, 256}
	// Variant 0 is the round-robin baseline; 1..n sweep the trigger.
	grid := simGrid(h, fig3Workloads, 1+len(triggers), (*trace.Trace).UserOnly,
		func(tr *trace.Trace, cfg tracesim.Config, v int) tracesim.Outcome {
			if v == 0 {
				return tracesim.Simulate(tr, cfg, tracesim.RR)
			}
			cfg.Params = cfg.Params.WithTrigger(triggers[v-1])
			return tracesim.Simulate(tr, cfg, tracesim.MigRep)
		})
	row(&b, "workload", "t=16", "t=32", "t=64", "t=128", "t=256", "best")
	for wi, wl := range fig3Workloads {
		rr := grid[wi][0].Total()
		cells := []string{wl}
		best, bestV := uint16(0), 1e18
		for ti, t := range triggers {
			v := float64(grid[wi][1+ti].Total()) / float64(rr)
			cells = append(cells, fmt.Sprintf("%.2f", v))
			if v < bestV {
				best, bestV = t, v
			}
		}
		cells = append(cells, fmt.Sprint(best))
		row(&b, cells...)
	}
	b.WriteString("\nRun time normalized to round-robin; sharing threshold = trigger/4.\nLower triggers act more aggressively (more locality, more overhead);\nhigher triggers act less. The paper reports the same trade-off.\n")
	return b.String()
}

func sharingSweep(h *Harness) string {
	var b strings.Builder
	fracs := []uint16{8, 4, 2} // sharing = trigger/frac
	// Variant 0 is the round-robin baseline; 1..n sweep the sharing divisor.
	grid := simGrid(h, fig3Workloads, 1+len(fracs), (*trace.Trace).UserOnly,
		func(tr *trace.Trace, cfg tracesim.Config, v int) tracesim.Outcome {
			if v == 0 {
				return tracesim.Simulate(tr, cfg, tracesim.RR)
			}
			cfg.Params = cfg.Params.WithSharingFraction(fracs[v-1])
			return tracesim.Simulate(tr, cfg, tracesim.MigRep)
		})
	row(&b, "workload", "T/8", "T/4", "T/2")
	for wi, wl := range fig3Workloads {
		rr := grid[wi][0].Total()
		cells := []string{wl}
		for fi := range fracs {
			cells = append(cells, fmt.Sprintf("%.2f", float64(grid[wi][1+fi].Total())/float64(rr)))
		}
		row(&b, cells...)
	}
	b.WriteString("\nPaper: performance is insensitive to the sharing threshold within a\nreasonable range — pages are clearly shared or clearly unshared.\n")
	return b.String()
}
