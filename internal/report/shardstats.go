package report

import (
	"fmt"
	"strings"

	"ccnuma/internal/sim"
)

// ShardStatsTable renders the sharded engine's per-lane picture as a
// fixed-width ASCII table: dispatch counts (with a proportional bar), heap
// high-water marks, cross-lane traffic, and virtual barrier stalls, plus the
// NxN traffic matrix when any post crossed lanes and an epoch summary when
// RunEpochs drove the run. Only virtual-time fields appear, so the rendering
// is byte-deterministic run to run.
func ShardStatsTable(st *sim.ShardStats) string {
	var b strings.Builder
	if st == nil || st.Lanes() == 0 {
		return "shard stats: not collected\n"
	}
	n := st.Lanes()
	fmt.Fprintf(&b, "Shard lanes: %d   dispatched=%d posts=%d", n, st.TotalDispatched(), st.Posts())
	if st.Epochs() > 0 {
		fmt.Fprintf(&b, " epochs=%d max-drain=%d", st.Epochs(), st.MaxDrain())
	}
	b.WriteByte('\n')

	row(&b, "lane", "dispatched", "heap-max", "sent", "recv", "stall")
	for i := 0; i < n; i++ {
		ls := st.Lane(i)
		row(&b, fmt.Sprintf("lane%d", i),
			fmt.Sprintf("%d", ls.Dispatched),
			fmt.Sprintf("%d", ls.HeapMax),
			fmt.Sprintf("%d", ls.Sent),
			fmt.Sprintf("%d", ls.Recv),
			fmt.Sprintf("%v", ls.BarrierStall))
	}

	labels := make([]string, n)
	values := make([]float64, n)
	for i := 0; i < n; i++ {
		labels[i] = fmt.Sprintf("lane%d", i)
		values[i] = float64(st.Lane(i).Dispatched)
	}
	bars(&b, labels, values, 40)

	if st.Posts() > 0 {
		fmt.Fprintf(&b, "Cross-lane traffic (src rows -> dst cols):\n")
		cells := make([]string, 0, n+1)
		cells = append(cells, "")
		for d := 0; d < n; d++ {
			cells = append(cells, fmt.Sprintf("->%d", d))
		}
		row(&b, cells...)
		for s := 0; s < n; s++ {
			cells = cells[:0]
			cells = append(cells, fmt.Sprintf("lane%d", s))
			for d := 0; d < n; d++ {
				cells = append(cells, fmt.Sprintf("%d", st.Traffic(s, d)))
			}
			row(&b, cells...)
		}
	}
	return b.String()
}
