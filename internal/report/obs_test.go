package report

import (
	"bytes"
	"testing"

	"ccnuma/internal/core"
	"ccnuma/internal/policy"
	"ccnuma/internal/sim"
)

// The observability exports must be byte-identical whatever the worker
// count, mirroring TestReportDeterministicAcrossWorkers: parallelism may
// reorder when simulations run, never what each simulation records.
func TestEventExportsDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two sets of instrumented simulations")
	}
	variants := []core.Options{
		{Dynamic: true, CollectEvents: true, SampleInterval: sim.Millisecond},
		{Dynamic: true, CollectEvents: true, SampleInterval: sim.Millisecond,
			Params: policy.Base().WithSharingFraction(2)},
		{CollectEvents: true, SampleInterval: sim.Millisecond, RoundRobin: true},
	}
	export := func(workers int) []string {
		h := NewHarness(0.1, 9)
		h.Workers = workers
		return collect(h, len(variants), func(i int) string {
			res := h.Run("database", variants[i])
			var ev, ser bytes.Buffer
			if err := res.ObsEvents.WriteJSONL(&ev); err != nil {
				t.Error(err)
			}
			if err := res.Series.WriteCSV(&ser); err != nil {
				t.Error(err)
			}
			return ev.String() + "\n---\n" + ser.String()
		})
	}
	serial := export(1)
	wide := export(8)
	for i := range variants {
		if serial[i] == "" || serial[i] == "\n---\n" {
			t.Fatalf("variant %d exported nothing", i)
		}
		if serial[i] != wide[i] {
			t.Errorf("variant %d: event/series bytes differ between -j1 and -j8", i)
		}
	}
}
