package report

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ccnuma/internal/core"
	"ccnuma/internal/sim"
)

// One poisoned run must not take down the rest of a concurrent grid: the
// panic is isolated to its worker, the other runs complete normally, and the
// failure is recorded with enough context to replay it.
func TestHarnessPanicIsolation(t *testing.T) {
	h := NewHarness(0.05, 1)
	h.Workers = 4
	h.KeepGoing = true
	poison := 7 * sim.Millisecond
	h.PreRun = func(wl string, opt core.Options) {
		if opt.Duration == poison {
			panic("injected failure")
		}
	}

	durations := []sim.Time{5 * sim.Millisecond, 6 * sim.Millisecond, poison, 8 * sim.Millisecond}
	results := make([]*core.Result, len(durations))
	var wg sync.WaitGroup
	for i, d := range durations {
		wg.Add(1)
		go func(i int, d sim.Time) {
			defer wg.Done()
			results[i] = h.Run("engineering", core.Options{Duration: d})
		}(i, d)
	}
	wg.Wait()

	for i, d := range durations {
		if d == poison {
			if !results[i].Failed {
				t.Fatal("poisoned run did not return the failure placeholder")
			}
			continue
		}
		if results[i].Failed || results[i].Elapsed <= 0 {
			t.Fatalf("healthy run %d caught the poisoned run's failure: %+v", i, results[i])
		}
	}
	failures := h.Failures()
	if len(failures) != 1 {
		t.Fatalf("failures = %d, want 1", len(failures))
	}
	f := failures[0]
	if f.Workload != "engineering" || !strings.Contains(f.Error, "injected failure") {
		t.Fatalf("failure record = %+v", f)
	}
	if f.Fingerprint == "" || !strings.Contains(f.Fingerprint, "Duration:7.000ms") {
		t.Fatalf("fingerprint does not identify the failing options: %q", f.Fingerprint)
	}
	if f.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no retries configured)", f.Attempts)
	}
}

// A transiently failing run succeeds within its retry budget and leaves no
// failure record.
func TestHarnessRetriesTransientFailure(t *testing.T) {
	h := NewHarness(0.05, 1)
	h.Retries = 2
	h.RetryBackoff = time.Millisecond
	var calls atomic.Int64
	h.PreRun = func(string, core.Options) {
		if calls.Add(1) <= 2 {
			panic("transient")
		}
	}
	res := h.Run("engineering", core.Options{Duration: 5 * sim.Millisecond})
	if res.Failed || res.Elapsed <= 0 {
		t.Fatalf("run failed despite retry budget: %+v", res)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	if len(h.Failures()) != 0 {
		t.Fatalf("failures recorded for a run that recovered: %+v", h.Failures())
	}
}

// A run exceeding RunTimeout fails with TimedOut set. The child goroutine is
// joined — the deadline propagates into the engine loop, so it exits
// cooperatively (here the delay sits in the PreRun hook, so the join waits
// out the hook; TestHarnessTimeoutStopsSimulation covers a genuinely long
// simulation).
func TestHarnessRunTimeout(t *testing.T) {
	h := NewHarness(0.05, 1)
	h.KeepGoing = true
	h.RunTimeout = 20 * time.Millisecond
	h.PreRun = func(string, core.Options) {
		time.Sleep(300 * time.Millisecond)
	}
	res := h.Run("engineering", core.Options{Duration: 5 * sim.Millisecond})
	if !res.Failed {
		t.Fatal("timed-out run did not return the failure placeholder")
	}
	failures := h.Failures()
	if len(failures) != 1 || !failures[0].TimedOut {
		t.Fatalf("failures = %+v, want one timed-out record", failures)
	}
}

// Hammer the harness from many goroutines with injected panics and retries at
// once — run under -race, this shakes out locking mistakes in the memo,
// failure, and metrics paths.
func TestHarnessFailureHammer(t *testing.T) {
	h := NewHarness(0.05, 1)
	h.KeepGoing = true
	h.Retries = 1
	h.RetryBackoff = time.Millisecond
	var calls atomic.Int64
	h.PreRun = func(string, core.Options) {
		if calls.Add(1)%3 == 0 {
			panic("injected")
		}
	}

	const goroutines = 16
	durations := []sim.Time{3 * sim.Millisecond, 4 * sim.Millisecond, 5 * sim.Millisecond, 6 * sim.Millisecond}
	var wg sync.WaitGroup
	var failed atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Every goroutine hits every key: most calls share the memoized
			// (or in-flight) run, so successes and failures both propagate.
			for _, d := range durations {
				res := h.Run("engineering", core.Options{Duration: d})
				if res == nil {
					t.Error("Run returned nil")
					return
				}
				if res.Failed {
					failed.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()

	executed, hits := h.Counters()
	// Every call either executed a simulation or was served by the memo (or
	// an in-flight run it joined).
	if executed+hits != goroutines*uint64(len(durations)) {
		t.Fatalf("executed %d + memo hits %d != %d calls", executed, hits, goroutines*len(durations))
	}
	// Failures are evicted from the memo, so a failed key re-executes for
	// later callers; successes stay memoized, so each key executes at least
	// once and at most once per failure plus one final success.
	if executed < uint64(len(durations)) {
		t.Fatalf("executed = %d, want at least one per key (%d)", executed, len(durations))
	}
	maxExec := uint64(len(durations)) + uint64(len(h.Failures()))
	if executed > maxExec {
		t.Fatalf("executed = %d, want <= keys + failures = %d", executed, maxExec)
	}
	// Each failed execution hands its placeholder to at least its owner (plus
	// any callers that had already joined the in-flight run).
	if failed.Load() < int64(len(h.Failures())) {
		t.Fatalf("failed reads %d < failure records %d", failed.Load(), len(h.Failures()))
	}
}

// A failure under -keep-going must not poison the memo: the failing call
// returns the placeholder, but the key is evicted so the next call for the
// same options re-runs the simulation and succeeds. (The placeholder was
// once left memoized, so one transient failure made every later query of
// that run return Failed for the life of the harness.)
func TestHarnessFailureEvictedFromMemo(t *testing.T) {
	h := NewHarness(0.05, 1)
	h.KeepGoing = true
	var calls atomic.Int64
	h.PreRun = func(string, core.Options) {
		if calls.Add(1) == 1 {
			panic("transient")
		}
	}
	opt := core.Options{Duration: 5 * sim.Millisecond}

	first := h.Run("engineering", opt)
	if !first.Failed {
		t.Fatal("first run did not fail as injected")
	}
	if len(h.Failures()) != 1 {
		t.Fatalf("failures = %d, want 1", len(h.Failures()))
	}

	second := h.Run("engineering", opt)
	if second.Failed {
		t.Fatal("second run returned the memoized failure placeholder; the key was not evicted")
	}
	if second.Elapsed <= 0 {
		t.Fatalf("second run produced no measurements: %+v", second)
	}
	executed, hits := h.Counters()
	if executed != 2 || hits != 0 {
		t.Fatalf("executed=%d hits=%d, want 2 executions and no memo hits", executed, hits)
	}

	// The success is memoized normally: a third call is a memo hit.
	third := h.Run("engineering", opt)
	if third != second {
		t.Fatal("third call did not share the memoized success")
	}
	if _, hits := h.Counters(); hits != 1 {
		t.Fatalf("memo hits = %d, want 1", hits)
	}
}
