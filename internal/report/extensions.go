package report

import (
	"fmt"
	"strings"

	"ccnuma/internal/core"
	"ccnuma/internal/trace"
	"ccnuma/internal/tracesim"
)

// The X-series experiments implement the follow-ups the paper explicitly
// leaves open: migrating write-shared pages to diffuse hotspots (Section
// 7.1.2), bounding replication's memory cost by reclaiming cold replicas
// (Section 7.2.3), selecting the trigger threshold adaptively (Section 8.4),
// and sharing miss counters between processor groups (Section 7.2.1).

func init() {
	register("X1", "Extension: migrate write-shared pages (Section 7.1.2)", extWriteShared)
	register("X2", "Extension: cold-replica reclamation (Section 7.2.3)", extReclaim)
	register("X3", "Extension: adaptive trigger threshold (Section 8.4)", extAdaptive)
	register("X4", "Extension: grouped miss counters (Section 7.2.1)", extGrouped)
	register("X5", "Ablation: the stale-pte limitation (Section 7.1.1)", extRemap)
}

func extRemap(h *Harness) string {
	var b strings.Builder
	// The paper blames part of Splash's small gain on processes that keep
	// using a remote copy after moving next to a replica. Our base policy
	// adds a cheap pte remap; disabling it reproduces the paper's kernel.
	params := h.BasePolicy("splash")
	params.DisableRemap = true
	h.warm(
		func() { h.MigRep("splash") },
		func() { h.Run("splash", core.Options{Dynamic: true, Params: params}) },
	)
	base := h.MigRep("splash")
	limited := h.Run("splash", core.Options{Dynamic: true, Params: params})
	row(&b, "splash", "nonidle", "local%", "remaps", "replications")
	row(&b, "with remap", base.Agg.NonIdle().String(), pct(100*base.LocalMissFraction),
		fmt.Sprint(base.VM.Remaps), fmt.Sprint(base.VM.Replics))
	row(&b, "paper behaviour", limited.Agg.NonIdle().String(), pct(100*limited.LocalMissFraction),
		fmt.Sprint(limited.VM.Remaps), fmt.Sprint(limited.VM.Replics))
	b.WriteString("\nPaper (Section 7.1.1): \"when a process switches processors, it\ncontinues to use the page from the old node, even if there is a replica\non the new node\" — one of the two reasons Splash gains only 4%.\n")
	return b.String()
}

func extWriteShared(h *Harness) string {
	var b strings.Builder
	// The database workload is the write-shared stress case: 90% of misses
	// hit fine-grain shared pages the base policy must leave alone.
	params := h.BasePolicy("database")
	params.MigrateWriteShared = true
	h.warm(
		func() { h.MigRep("database") },
		func() { h.Run("database", core.Options{Dynamic: true, Params: params}) },
	)
	base := h.MigRep("database")
	ext := h.Run("database", core.Options{Dynamic: true, Params: params})

	row(&b, "policy", "nonidle", "remote handlers", "migrations", "local%")
	row(&b, "base", base.Agg.NonIdle().String(),
		fmt.Sprint(base.Contention.RemoteHandlerInvocations),
		fmt.Sprint(base.VM.Migrates), pct(100*base.LocalMissFraction))
	row(&b, "mig-wshared", ext.Agg.NonIdle().String(),
		fmt.Sprint(ext.Contention.RemoteHandlerInvocations),
		fmt.Sprint(ext.VM.Migrates), pct(100*ext.LocalMissFraction))
	fmt.Fprintf(&b, "\nThe paper: \"to reduce hotspots in the NUMA memory system, we are\nconsidering modifying our policy to migrate even write-shared pages.\"\nIn our runs the chase usually costs more than it saves — each move only\nrelocates the ping-pong — which is consistent with the authors leaving\nthe idea out of the base policy.\n")
	return b.String()
}

func extReclaim(h *Harness) string {
	var b strings.Builder
	row(&b, "raytrace", "repl space", "replications", "collapses", "nonidle")
	h.warm(
		func() { h.MigRep("raytrace") },
		func() { h.Run("raytrace", core.Options{Dynamic: true, ReclaimColdReplicas: true}) },
	)
	base := h.MigRep("raytrace")
	rec := h.Run("raytrace", core.Options{Dynamic: true, ReclaimColdReplicas: true})
	row(&b, "base", pct(100*base.Alloc.ReplicaOverhead()),
		fmt.Sprint(base.VM.Replics), fmt.Sprint(base.VM.Collapses), base.Agg.NonIdle().String())
	row(&b, "reclaim", pct(100*rec.Alloc.ReplicaOverhead()),
		fmt.Sprint(rec.VM.Replics), fmt.Sprint(rec.VM.Collapses), rec.Agg.NonIdle().String())
	b.WriteString("\nReplicas whose sharers went quiet for a whole reset interval are\ncollapsed, bounding the space overhead while the working set's replicas\nsurvive. (Space is peak replica frames / peak base frames; the current\nreplica count at any instant is far lower under reclamation.)\n")
	return b.String()
}

func extAdaptive(h *Harness) string {
	var b strings.Builder
	row(&b, "engineering", "nonidle", "hot pages", "overhead%", "final trigger")
	// Start the adaptive controller from a deliberately bad (too passive)
	// trigger and let it walk toward the useful range.
	h.warm(
		func() { h.MigRep("engineering") },
		func() {
			h.Run("engineering", core.Options{Dynamic: true,
				Params: h.BasePolicy("engineering").WithTrigger(512)})
		},
		func() {
			h.Run("engineering", core.Options{Dynamic: true, AdaptiveTrigger: true,
				Params: h.BasePolicy("engineering").WithTrigger(511)})
		},
	)
	base := h.MigRep("engineering")
	fixedBad := h.Run("engineering", core.Options{Dynamic: true,
		Params: h.BasePolicy("engineering").WithTrigger(512)})
	ad := h.Run("engineering", core.Options{Dynamic: true, AdaptiveTrigger: true,
		Params: h.BasePolicy("engineering").WithTrigger(511)})
	line := func(name string, r *core.Result) {
		row(&b, name, r.Agg.NonIdle().String(), fmt.Sprint(r.Actions.HotPages),
			pct(100*float64(r.Agg.Pager.Total())/float64(r.Agg.NonIdle())),
			fmt.Sprint(r.FinalParams.Trigger))
	}
	line("fixed (96)", base)
	line("fixed (512)", fixedBad)
	line("adaptive(511)", ad)
	fmt.Fprintf(&b, "\ntrigger trajectory: %v\n", ad.TriggerTrace)
	b.WriteString("The controller raises the trigger when an interval's pager overhead\nexceeds ~8% of machine time and lowers it when it falls below ~1.5%,\nwalking a mis-set threshold toward the useful range — the paper calls\nselecting the trigger \"statically or adaptively\" a topic for further\nstudy (Section 8.4).\n")
	return b.String()
}

func extGrouped(h *Harness) string {
	var b strings.Builder
	groups := []int{1, 2, 4}
	// Variant 0 is the round-robin baseline; 1..n sweep the group size.
	grid := simGrid(h, []string{"engineering"}, 1+len(groups), (*trace.Trace).UserOnly,
		func(tr *trace.Trace, cfg tracesim.Config, v int) tracesim.Outcome {
			if v == 0 {
				return tracesim.Simulate(tr, cfg, tracesim.RR)
			}
			cfg.CounterGroup = groups[v-1]
			return tracesim.Simulate(tr, cfg, tracesim.MigRep)
		})[0]
	rr := grid[0].Total()
	row(&b, "counter group", "norm", "space/page", "migr", "repl")
	for gi, g := range groups {
		o := grid[1+gi]
		row(&b, fmt.Sprintf("%d CPUs/ctr", g),
			fmt.Sprintf("%.3f", float64(o.Total())/float64(rr)),
			fmt.Sprintf("%dB", 8/g*2),
			fmt.Sprint(o.Migrations), fmt.Sprint(o.Replications))
	}
	b.WriteString("\nSharing one counter among a group of processors cuts the per-page space\n(Section 7.2.1) at the cost of coarser sharing detection: a page used by\ntwo CPUs of one group looks unshared, and group heat can exaggerate\nsharing. Policy quality degrades gradually.\n")
	return b.String()
}
