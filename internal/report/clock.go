package report

import "time"

// The harness's wall-clock reads all funnel through these two helpers. The
// harness legitimately needs wall time — progress logging, retry pacing, run
// timeouts, and the span timeline are about the machine running the
// simulations, not the simulated machine — but wall time is also exactly
// what the numalint determinism check exists to keep out of result bytes.
// Concentrating the reads here keeps the `//numalint:allow determinism`
// directives in one audited place and makes any new `time.Now` elsewhere in
// the package a lint finding. Simulation output never depends on these
// values: a timeout is a failure, never a different Result.

// wallNow reads the wall clock (monotonic per the time package's guarantee,
// so differences are immune to clock steps).
func wallNow() time.Time {
	return time.Now() //numalint:allow determinism the harness's single audited wall-clock read; never feeds simulation results
}

// wallSince returns the wall time elapsed since t.
func wallSince(t time.Time) time.Duration {
	return time.Since(t) //numalint:allow determinism the harness's single audited wall-clock read; never feeds simulation results
}
