// Package report regenerates every table and figure of the paper's
// evaluation: each experiment runs the needed simulations (full-system or
// trace-driven), renders the same rows or series the paper reports, and
// places the paper's published numbers alongside the measured ones. The
// reproduction target is shape — who wins, by roughly what factor, where
// crossovers fall — not absolute values (see DESIGN.md).
package report

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ccnuma/internal/core"
	"ccnuma/internal/obs"
	"ccnuma/internal/policy"
	"ccnuma/internal/sim"
	"ccnuma/internal/topology"
	"ccnuma/internal/trace"
	"ccnuma/internal/workload"
)

// Harness runs and memoizes simulations shared by several experiments
// (e.g. one FT run per workload provides Figure 3's baseline, Table 3's
// characterisation, and the Section-8 trace). Run and Trace are
// goroutine-safe: concurrent calls for the same key share one simulation
// (singleflight) instead of racing or duplicating it.
type Harness struct {
	// Scale is the workload scale factor (1.0 = default experiments; tests
	// use smaller).
	Scale float64
	// Seed makes the whole suite reproducible.
	Seed uint64
	// Workers bounds how many simulations the sweep helpers (runner.go) run
	// concurrently; 0 or 1 runs every sweep serially in its loop order.
	Workers int
	// Logf, when set, receives progress lines: each simulation's start and
	// finish (with wall-clock timing) and each memo hit. Called from worker
	// goroutines; the sink must be safe for concurrent use (fmt.Fprintf to
	// one *os.File is).
	Logf func(format string, args ...any)
	// Retries is how many times a failed simulation (panic, error, or
	// timeout) is re-attempted before it counts as failed.
	Retries int
	// RetryBackoff is the wall-clock pause before the first retry, doubling
	// per attempt (default 100 ms).
	RetryBackoff time.Duration
	// RunTimeout, when positive, bounds each attempt's wall-clock time; a
	// run that exceeds it fails with a context.DeadlineExceeded error. The
	// deadline propagates into the engine's run loop (cooperative
	// cancellation polled every ~1k dispatched events), so a timed-out
	// simulation actually stops within microseconds instead of being
	// abandoned to burn CPU to its virtual deadline.
	RunTimeout time.Duration
	// Shards is forwarded to every run's core.Options.Shards: the number of
	// per-node event lanes inside each simulation. Purely an execution knob —
	// shard count is excluded from the options fingerprint, so it can never
	// perturb memo keys or results.
	Shards int
	// EpochWorkers is forwarded to every run's core.Options.Workers: the
	// number of goroutines driving planner-cleared epoch windows inside each
	// simulation (distinct from Workers, which parallelizes across
	// simulations). Like Shards it is fingerprint-erased — byte-identical
	// results at any worker count.
	EpochWorkers int
	// KeepGoing turns a run's final failure into a placeholder Result
	// (Failed=true) plus a RunFailure record instead of a panic, so the rest
	// of a grid still completes. Off, the first failure panics with the
	// run's options fingerprint.
	KeepGoing bool
	// CollectSpans records the wall-clock span timeline (spans.go):
	// queued/running/retry/memo-hit/failure intervals per run, exported as
	// Chrome trace JSON by cmd/experiments -spans.
	CollectSpans bool
	// RecorderDepth, when positive, arms a failure flight recorder per
	// attempt: a bounded ring over the run's last RecorderDepth typed obs
	// events, dumped into the RunFailure manifest when the run fails — a
	// postmortem without re-running under full -events collection.
	RecorderDepth int
	// PreRun, when set, is called before each simulation attempt, inside the
	// recovery scope (test hook: failure injection and attempt counting).
	PreRun func(wl string, opt core.Options)

	mu        sync.Mutex
	runs      map[string]*runEntry
	traces    map[string]*trace.Trace
	metrics   []RunMetric
	failures  []RunFailure
	spanEpoch time.Time
	spans     []Span
	slots     []bool

	executed atomic.Uint64 // simulations actually run
	memoHits atomic.Uint64 // calls served by the memo (or a shared in-flight run)
}

// runEntry is a memo slot: the first caller owns the simulation, later
// callers block on done and read res.
type runEntry struct {
	done chan struct{}
	res  *core.Result
}

// NewHarness builds a harness at the given scale.
func NewHarness(scale float64, seed uint64) *Harness {
	if scale <= 0 {
		scale = 1.0
	}
	return &Harness{
		Scale:  scale,
		Seed:   seed,
		runs:   map[string]*runEntry{},
		traces: map[string]*trace.Trace{},
	}
}

// Counters reports how many simulations actually executed and how many
// Run/Trace calls were answered from the memo cache instead.
func (h *Harness) Counters() (executed, memoHits uint64) {
	return h.executed.Load(), h.memoHits.Load()
}

// RunMetric summarises one executed simulation for the harness's per-run
// metrics dump.
type RunMetric struct {
	// ID is the FNV-1a hash of the memo key, matching the id in Logf lines.
	ID       uint64        `json:"id"`
	Workload string        `json:"workload"`
	Policy   string        `json:"policy"`
	Elapsed  sim.Time      `json:"elapsed_ns"`
	NonIdle  sim.Time      `json:"nonidle_ns"`
	Steps    uint64        `json:"steps"`
	Events   uint64        `json:"events"`
	Wall     time.Duration `json:"wall_ns"`
}

// Metrics returns one RunMetric per executed simulation, sorted by workload
// then key hash — a deterministic order regardless of worker interleaving.
func (h *Harness) Metrics() []RunMetric {
	h.mu.Lock()
	out := make([]RunMetric, len(h.metrics))
	copy(out, h.metrics)
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Workload != out[j].Workload {
			return out[i].Workload < out[j].Workload
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// RunFailure records one simulation that failed all its attempts. The
// harness's failure manifest (cmd/experiments -keep-going) serialises these.
type RunFailure struct {
	Workload string `json:"workload"`
	// ID is the run's memo-key hash, matching Logf lines ("%016x").
	ID string `json:"id"`
	// Fingerprint is the full core.Options fingerprint of the failing run —
	// enough to rebuild and replay it.
	Fingerprint string `json:"fingerprint"`
	Error       string `json:"error"`
	Attempts    int    `json:"attempts"`
	TimedOut    bool   `json:"timed_out"`
	// Events is the failure flight recorder's dump: the last RecorderDepth
	// typed events before the failure, oldest first. Empty unless
	// Harness.RecorderDepth was set.
	Events []obs.Event `json:"events,omitempty"`
	// EventsDropped is the dump's truncation marker: how many events fell
	// off the bounded ring before it (0 = Events is the complete history).
	EventsDropped uint64 `json:"events_dropped,omitempty"`
}

// Failures returns the runs that failed all attempts, sorted by workload
// then id (deterministic regardless of worker interleaving).
func (h *Harness) Failures() []RunFailure {
	h.mu.Lock()
	out := make([]RunFailure, len(h.failures))
	copy(out, h.failures)
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Workload != out[j].Workload {
			return out[i].Workload < out[j].Workload
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func (h *Harness) logf(format string, args ...any) {
	if h.Logf != nil {
		h.Logf(format, args...)
	}
}

// keyID hashes a memo key to the short id used in logs and metrics.
func keyID(key string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(key))
	return f.Sum64()
}

// Spec returns the (fresh) workload spec. Specs hold generator state, so a
// new one is built per run.
func (h *Harness) spec(name string) *workload.Spec {
	build, err := workload.ByName(name)
	if err != nil {
		panic(err)
	}
	return build(h.Scale, h.Seed)
}

// RunKey identifies a memoized run. It is derived from the full
// core.Options fingerprint: a hand-rolled field list here once omitted
// Params.Sharing/Write/Migrate/ResetInterval, silently returning the wrong
// cached Result for runs differing only in those thresholds.
func runKey(wl string, opt core.Options) string {
	return wl + "|" + opt.Fingerprint()
}

// Run executes (or returns the memoized) full-system simulation. It is
// goroutine-safe: the first caller for a key runs the simulation, any
// concurrent caller with the same key blocks until that single run
// finishes and shares its Result.
func (h *Harness) Run(wl string, opt core.Options) *core.Result {
	return h.RunContext(context.Background(), wl, opt)
}

// RunContext is Run under a caller-supplied context: cancellation or a
// deadline propagates into the simulation's engine loop, so an abandoned
// query stops simulating instead of running to its virtual deadline. A
// cancelled owner still releases memo waiters (with the failure placeholder
// under KeepGoing); the failed key is evicted, so a later caller re-runs it.
func (h *Harness) RunContext(ctx context.Context, wl string, opt core.Options) *core.Result {
	opt.Seed = h.Seed
	opt.Shards = h.Shards
	opt.Workers = h.EpochWorkers
	key := runKey(wl, opt)

	id := fmt.Sprintf("%016x", keyID(key))
	var enter time.Duration
	if h.CollectSpans {
		enter = h.sinceStart()
	}

	h.mu.Lock()
	if e, ok := h.runs[key]; ok {
		h.mu.Unlock()
		<-e.done
		h.memoHits.Add(1)
		h.logf("memo  %s id=%016x", wl, keyID(key))
		if h.CollectSpans {
			h.addSpan(Span{Workload: wl, ID: id, State: SpanMemoHit, Slot: -1,
				Start: enter, End: h.sinceStart()})
		}
		return e.res
	}
	e := &runEntry{done: make(chan struct{})}
	h.runs[key] = e
	h.mu.Unlock()

	// Release waiters even if this goroutine panics below (the process is
	// going down, but blocked goroutines should not obscure the original
	// panic).
	defer close(e.done)
	h.executed.Add(1)
	h.logf("start %s id=%016x", wl, keyID(key))
	slot := -1
	if h.CollectSpans {
		slot = h.acquireSlot()
		defer h.releaseSlot(slot)
		h.addSpan(Span{Workload: wl, ID: id, State: SpanQueued, Slot: slot,
			Start: enter, End: h.sinceStart()})
	}
	t0 := wallNow()
	res, rec, attempts, timedOut, err := h.attempt(ctx, wl, id, slot,
		func() *workload.Spec { return h.spec(wl) }, opt)
	if err != nil {
		dump, dropped := rec.Dump()
		h.mu.Lock()
		// Evict the memo slot: the placeholder below answers callers already
		// blocked on this entry, but a later call for the same key must get a
		// fresh simulation, not a cached Failed result. (Leaving the entry in
		// place once poisoned the memo — every -keep-going re-query of a run
		// that had failed transiently returned the placeholder forever.)
		delete(h.runs, key)
		h.failures = append(h.failures, RunFailure{
			Workload:      wl,
			ID:            id,
			Fingerprint:   opt.Fingerprint(),
			Error:         err.Error(),
			Attempts:      attempts,
			TimedOut:      timedOut,
			Events:        dump,
			EventsDropped: dropped,
		})
		h.mu.Unlock()
		h.logf("fail  %s id=%016x attempts=%d err=%v", wl, keyID(key), attempts, err)
		if !h.KeepGoing {
			panic(fmt.Sprintf("report: run %s id=%016x failed after %d attempt(s): %v (options: %s)",
				wl, keyID(key), attempts, err, opt.Fingerprint()))
		}
		res = &core.Result{Workload: wl, Policy: "failed", Failed: true}
		e.res = res
		return res
	}
	wall := wallSince(t0)
	h.logf("done  %s id=%016x policy=%s simulated=%v wall=%v",
		wl, keyID(key), res.Policy, res.Elapsed, wall.Round(time.Millisecond))
	h.mu.Lock()
	h.metrics = append(h.metrics, RunMetric{
		ID:       keyID(key),
		Workload: res.Workload,
		Policy:   res.Policy,
		Elapsed:  res.Elapsed,
		NonIdle:  res.Agg.NonIdle(),
		Steps:    res.Steps,
		Events:   res.Events,
		Wall:     wall,
	})
	h.mu.Unlock()
	e.res = res
	return res
}

// attempt drives one run through up to 1+Retries attempts with doubling
// wall-clock backoff, returning the last attempt's outcome (including its
// flight recorder, for the failure dump). id and slot label the spans. A
// cancelled caller context short-circuits the retry chain: retrying work
// nobody is waiting for would only burn CPU.
func (h *Harness) attempt(ctx context.Context, wl, id string, slot int, build func() *workload.Spec, opt core.Options) (res *core.Result, rec *obs.Recorder, attempts int, timedOut bool, err error) {
	backoff := h.RetryBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	for attempts = 1; ; attempts++ {
		var a0 time.Duration
		if h.CollectSpans {
			a0 = h.sinceStart()
		}
		res, rec, timedOut, err = h.runOnce(ctx, wl, build, opt)
		if h.CollectSpans {
			state := SpanRunning
			switch {
			case timedOut:
				state = SpanTimeout
			case err != nil:
				state = SpanFailed
			}
			h.addSpan(Span{Workload: wl, ID: id, State: state, Attempt: attempts,
				Slot: slot, Start: a0, End: h.sinceStart()})
		}
		if err == nil || attempts > h.Retries || ctx.Err() != nil {
			return res, rec, attempts, timedOut, err
		}
		h.logf("retry %s attempt=%d backoff=%v err=%v", wl, attempts, backoff, err)
		var r0 time.Duration
		if h.CollectSpans {
			r0 = h.sinceStart()
		}
		timer := time.NewTimer(backoff)
		//numalint:allow determinism retry backoff races the caller's cancellation by design; both arms lead to a failure path, never into results
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return res, rec, attempts, timedOut, err
		}
		if h.CollectSpans {
			h.addSpan(Span{Workload: wl, ID: id, State: SpanRetry, Attempt: attempts,
				Slot: slot, Start: r0, End: h.sinceStart()})
		}
		backoff *= 2
	}
}

// runOutcome carries one attempt's result out of its goroutine.
type runOutcome struct {
	res *core.Result
	err error
}

// runOnce executes one simulation attempt in a child goroutine so a panic in
// the workload or kernel layers becomes an error on this worker instead of
// tearing the process (and every other concurrent run) down. Each attempt
// gets its own flight recorder (when RecorderDepth is set) so a retry's dump
// never mixes attempts.
//
// The attempt runs under ctx plus the harness's RunTimeout. Cancellation is
// cooperative: core.RunContext installs an engine-loop check polled every
// ~1k events, so the child goroutine is always joined here — a timed-out run
// stops simulating within microseconds instead of being abandoned to burn
// CPU (the pre-context design leaked exactly that goroutine). timedOut
// reports a deadline expiry, whether from RunTimeout or a deadline already
// on ctx.
func (h *Harness) runOnce(ctx context.Context, wl string, build func() *workload.Spec, opt core.Options) (res *core.Result, rec *obs.Recorder, timedOut bool, err error) {
	if h.RecorderDepth > 0 {
		rec = obs.NewRecorder(h.RecorderDepth)
		opt.Recorder = rec
	}
	if h.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, h.RunTimeout)
		defer cancel()
	}
	ch := make(chan runOutcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- runOutcome{err: fmt.Errorf("panic: %v", r)}
			}
		}()
		if h.PreRun != nil {
			h.PreRun(wl, opt)
		}
		r, e := core.RunContext(ctx, build(), opt)
		ch <- runOutcome{res: r, err: e}
	}()
	out := <-ch
	return out.res, rec, errors.Is(out.err, context.DeadlineExceeded), out.err
}

// Execute runs one simulation through the harness's hardening — panic
// isolation in a child goroutine, the retry chain with backoff, the
// per-attempt flight recorder, RunTimeout and ctx cancellation propagated
// into the engine loop — without touching the memo or the harness's
// accumulating state (metrics, failures, spans). A long-running server keeps
// one Harness for the life of the process, so Execute must not grow anything
// per request: the failure manifest is returned to the caller instead of
// appended, and caching is the caller's policy (internal/serve keys a
// bounded LRU on the options fingerprint).
//
// Unlike Run, opt is used verbatim: requests carry their own Seed, Shards,
// and Workers. build is called once per attempt for a fresh spec (specs hold
// generator state).
func (h *Harness) Execute(ctx context.Context, label string, build func() *workload.Spec, opt core.Options) (*core.Result, *RunFailure, error) {
	id := fmt.Sprintf("%016x", keyID(label+"|"+opt.Fingerprint()))
	h.executed.Add(1)
	h.logf("start %s id=%s", label, id)
	t0 := wallNow()
	res, rec, attempts, timedOut, err := h.attempt(ctx, label, id, -1, build, opt)
	if err != nil {
		dump, dropped := rec.Dump()
		h.logf("fail  %s id=%s attempts=%d err=%v", label, id, attempts, err)
		return nil, &RunFailure{
			Workload:      label,
			ID:            id,
			Fingerprint:   opt.Fingerprint(),
			Error:         err.Error(),
			Attempts:      attempts,
			TimedOut:      timedOut,
			Events:        dump,
			EventsDropped: dropped,
		}, err
	}
	h.logf("done  %s id=%s policy=%s simulated=%v wall=%v",
		label, id, res.Policy, res.Elapsed, wallSince(t0).Round(time.Millisecond))
	return res, nil, nil
}

// FT runs the first-touch baseline for a workload.
func (h *Harness) FT(wl string) *core.Result {
	return h.Run(wl, core.Options{})
}

// MigRep runs the base dynamic policy for a workload.
func (h *Harness) MigRep(wl string) *core.Result {
	return h.Run(wl, core.Options{Dynamic: true})
}

// Trace returns the workload's miss trace, generated once under first-touch
// placement (the paper records traces from the unmodified system).
// Goroutine-safe: concurrent first calls share one trace-collecting run
// through Run's singleflight.
func (h *Harness) Trace(wl string) *trace.Trace {
	h.mu.Lock()
	t, ok := h.traces[wl]
	h.mu.Unlock()
	if ok {
		return t
	}
	res := h.Run(wl, core.Options{CollectTrace: true})
	h.mu.Lock()
	h.traces[wl] = res.Trace
	h.mu.Unlock()
	return res.Trace
}

// OtherTime estimates the placement-independent execution time of a
// workload (compute, L2-hit stall, TLB refills, faults — not idle) from its
// FT run; the trace simulator adds it to every policy's total, matching
// Figure 6's "all other time" component.
func (h *Harness) OtherTime(wl string) sim.Time {
	res := h.Run(wl, core.Options{CollectTrace: true})
	b := &res.Agg
	l2, _, _ := b.MemStall()
	return b.Compute[0] + b.Compute[1] + l2 + b.TLBRefill + b.FaultTime
}

// CodePages returns the workload's user-code footprint in pages.
func (h *Harness) CodePages(wl string) int {
	n := 0
	for _, r := range h.spec(wl).Regions {
		if r.Kind == workload.CodeRegion {
			n += r.N
		}
	}
	return n
}

// Nodes returns the node count a workload runs on (the database uses 4).
func (h *Harness) Nodes(wl string) int {
	if wl == "database" {
		return 4
	}
	return topology.CCNUMA().Nodes
}

// BasePolicy returns the paper's base policy parameters for a workload
// (trigger 96 for engineering, 128 otherwise; sharing = trigger/4).
func (h *Harness) BasePolicy(wl string) policy.Params {
	return policy.Base().WithTrigger(h.spec(wl).Trigger)
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(h *Harness) string
}

var registry []Experiment

func register(id, title string, run func(h *Harness) string) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// Experiments returns the registered experiments in the paper's order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return order(out[i].ID) < order(out[j].ID) })
	return out
}

func order(id string) int {
	for i, x := range []string{"T3", "F3", "T4", "S7.1.2", "F5", "T5", "T6", "S7.2.1", "S7.2.3", "F4", "F6", "F7", "F8", "F9", "S8.4", "X1", "X2", "X3", "X4", "X5"} {
		if x == id {
			return i
		}
	}
	return 99
}

// ByID returns one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("report: unknown experiment %q", id)
}

// RunAll renders every experiment into one document.
func RunAll(h *Harness) string {
	var b strings.Builder
	for _, e := range Experiments() {
		fmt.Fprintf(&b, "## %s — %s\n\n%s\n", e.ID, e.Title, e.Run(h))
	}
	return b.String()
}

// pct formats a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", x) }

// improvement returns (base-new)/base as a percentage.
func improvement(base, new sim.Time) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(base-new) / float64(base)
}

// row renders one fixed-width table row.
func row(b *strings.Builder, cells ...string) {
	for i, c := range cells {
		if i == 0 {
			fmt.Fprintf(b, "%-14s", c)
		} else {
			fmt.Fprintf(b, " %12s", c)
		}
	}
	b.WriteByte('\n')
}
