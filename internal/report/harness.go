// Package report regenerates every table and figure of the paper's
// evaluation: each experiment runs the needed simulations (full-system or
// trace-driven), renders the same rows or series the paper reports, and
// places the paper's published numbers alongside the measured ones. The
// reproduction target is shape — who wins, by roughly what factor, where
// crossovers fall — not absolute values (see DESIGN.md).
package report

import (
	"fmt"
	"sort"
	"strings"

	"ccnuma/internal/core"
	"ccnuma/internal/policy"
	"ccnuma/internal/sim"
	"ccnuma/internal/topology"
	"ccnuma/internal/trace"
	"ccnuma/internal/workload"
)

// Harness runs and memoizes simulations shared by several experiments
// (e.g. one FT run per workload provides Figure 3's baseline, Table 3's
// characterisation, and the Section-8 trace).
type Harness struct {
	// Scale is the workload scale factor (1.0 = default experiments; tests
	// use smaller).
	Scale float64
	// Seed makes the whole suite reproducible.
	Seed uint64

	runs   map[string]*core.Result
	traces map[string]*trace.Trace
}

// NewHarness builds a harness at the given scale.
func NewHarness(scale float64, seed uint64) *Harness {
	if scale <= 0 {
		scale = 1.0
	}
	return &Harness{
		Scale:  scale,
		Seed:   seed,
		runs:   map[string]*core.Result{},
		traces: map[string]*trace.Trace{},
	}
}

// Spec returns the (fresh) workload spec. Specs hold generator state, so a
// new one is built per run.
func (h *Harness) spec(name string) *workload.Spec {
	build, err := workload.ByName(name)
	if err != nil {
		panic(err)
	}
	return build(h.Scale, h.Seed)
}

// RunKey identifies a memoized run.
func runKey(wl string, opt core.Options) string {
	pol := "ft"
	switch {
	case opt.Dynamic && opt.Params.EnableMigration && opt.Params.EnableReplication:
		pol = "migrep"
	case opt.Dynamic && opt.Params.EnableMigration:
		pol = "migr"
	case opt.Dynamic:
		pol = "repl"
	case opt.RoundRobin:
		pol = "rr"
	}
	return fmt.Sprintf("%s/%s/%s/t%d/m%d/trace%v/rcft%v/tlb%v/ws%v/ad%v/rc%v/dc%v",
		wl, pol, opt.Config.Name, opt.Params.Trigger, opt.Metric,
		opt.CollectTrace, opt.ReplicateCodeOnFirstTouch, opt.Config.TrackTLBHolders,
		opt.Params.MigrateWriteShared, opt.AdaptiveTrigger, opt.ReclaimColdReplicas,
		opt.Config.DirCopy) + fmt.Sprintf("/nr%v", opt.Params.DisableRemap)
}

// Run executes (or returns the memoized) full-system simulation.
func (h *Harness) Run(wl string, opt core.Options) *core.Result {
	key := runKey(wl, opt)
	if r, ok := h.runs[key]; ok {
		return r
	}
	opt.Seed = h.Seed
	res, err := core.Run(h.spec(wl), opt)
	if err != nil {
		panic(fmt.Sprintf("report: %s: %v", key, err))
	}
	h.runs[key] = res
	return res
}

// FT runs the first-touch baseline for a workload.
func (h *Harness) FT(wl string) *core.Result {
	return h.Run(wl, core.Options{})
}

// MigRep runs the base dynamic policy for a workload.
func (h *Harness) MigRep(wl string) *core.Result {
	return h.Run(wl, core.Options{Dynamic: true})
}

// Trace returns the workload's miss trace, generated once under first-touch
// placement (the paper records traces from the unmodified system).
func (h *Harness) Trace(wl string) *trace.Trace {
	if t, ok := h.traces[wl]; ok {
		return t
	}
	res := h.Run(wl, core.Options{CollectTrace: true})
	h.traces[wl] = res.Trace
	return res.Trace
}

// OtherTime estimates the placement-independent execution time of a
// workload (compute, L2-hit stall, TLB refills, faults — not idle) from its
// FT run; the trace simulator adds it to every policy's total, matching
// Figure 6's "all other time" component.
func (h *Harness) OtherTime(wl string) sim.Time {
	res := h.Run(wl, core.Options{CollectTrace: true})
	b := &res.Agg
	l2, _, _ := b.MemStall()
	return b.Compute[0] + b.Compute[1] + l2 + b.TLBRefill + b.FaultTime
}

// CodePages returns the workload's user-code footprint in pages.
func (h *Harness) CodePages(wl string) int {
	n := 0
	for _, r := range h.spec(wl).Regions {
		if r.Kind == workload.CodeRegion {
			n += r.N
		}
	}
	return n
}

// Nodes returns the node count a workload runs on (the database uses 4).
func (h *Harness) Nodes(wl string) int {
	if wl == "database" {
		return 4
	}
	return topology.CCNUMA().Nodes
}

// BasePolicy returns the paper's base policy parameters for a workload
// (trigger 96 for engineering, 128 otherwise; sharing = trigger/4).
func (h *Harness) BasePolicy(wl string) policy.Params {
	return policy.Base().WithTrigger(h.spec(wl).Trigger)
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(h *Harness) string
}

var registry []Experiment

func register(id, title string, run func(h *Harness) string) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// Experiments returns the registered experiments in the paper's order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return order(out[i].ID) < order(out[j].ID) })
	return out
}

func order(id string) int {
	for i, x := range []string{"T3", "F3", "T4", "S7.1.2", "F5", "T5", "T6", "S7.2.1", "S7.2.3", "F4", "F6", "F7", "F8", "F9", "S8.4", "X1", "X2", "X3", "X4", "X5"} {
		if x == id {
			return i
		}
	}
	return 99
}

// ByID returns one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("report: unknown experiment %q", id)
}

// RunAll renders every experiment into one document.
func RunAll(h *Harness) string {
	var b strings.Builder
	for _, e := range Experiments() {
		fmt.Fprintf(&b, "## %s — %s\n\n%s\n", e.ID, e.Title, e.Run(h))
	}
	return b.String()
}

// pct formats a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", x) }

// improvement returns (base-new)/base as a percentage.
func improvement(base, new sim.Time) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(base-new) / float64(base)
}

// row renders one fixed-width table row.
func row(b *strings.Builder, cells ...string) {
	for i, c := range cells {
		if i == 0 {
			fmt.Fprintf(b, "%-14s", c)
		} else {
			fmt.Fprintf(b, " %12s", c)
		}
	}
	b.WriteByte('\n')
}
