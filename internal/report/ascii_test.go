package report

import (
	"strings"
	"testing"
)

func TestBarsScaleToWidest(t *testing.T) {
	var b strings.Builder
	bars(&b, []string{"a", "b"}, []float64{2, 1}, 10)
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], strings.Repeat("#", 10)) {
		t.Fatalf("widest bar not full width: %q", lines[0])
	}
	if strings.Count(lines[1], "#") != 5 {
		t.Fatalf("half bar wrong: %q", lines[1])
	}
}

func TestBarsDegenerateInputs(t *testing.T) {
	var b strings.Builder
	bars(&b, []string{"a"}, []float64{0}, 10)    // all zero
	bars(&b, []string{"a"}, []float64{1, 2}, 10) // mismatched
	bars(&b, nil, nil, 10)                       // empty
	if b.Len() != 0 {
		t.Fatalf("degenerate inputs rendered: %q", b.String())
	}
}

func TestStackedBarProportions(t *testing.T) {
	var b strings.Builder
	stackedBar(&b, "x", []float64{1, 1}, []byte{'A', 'B'}, 10)
	out := b.String()
	if strings.Count(out, "A") != 5 || strings.Count(out, "B") != 5 {
		t.Fatalf("segments wrong: %q", out)
	}
	var e strings.Builder
	stackedBar(&e, "x", []float64{0, 0}, []byte{'A', 'B'}, 10)
	if e.Len() != 0 {
		t.Fatal("zero-total bar rendered")
	}
}
