package report

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"time"
)

// The harness span timeline: when Harness.CollectSpans is set, every Run call
// leaves a wall-clock trail — queued, running (with its outcome), retry
// backoffs, and memo hits — renderable as Chrome trace-event JSON
// (cmd/experiments -spans). Spans are intentionally *not* deterministic:
// they measure the host machine (worker scheduling, wall durations, retry
// timing), which is the point. Every deterministic artifact of a run lives
// in virtual time; the span timeline is where wall time is allowed to show
// (see DESIGN.md, observability invariants).

// Span states. A run appears as one "queued" span (Run entry to first
// attempt), one span per attempt ("running" for a success, "failed" or
// "timeout" otherwise), a "retry" span per backoff pause, and a "memo-hit"
// span per call answered from the memo.
const (
	SpanQueued  = "queued"
	SpanRunning = "running"
	SpanMemoHit = "memo-hit"
	SpanRetry   = "retry"
	SpanTimeout = "timeout"
	SpanFailed  = "failed"
)

// Span is one interval of a run's lifecycle, in wall time relative to the
// harness's first observed instant.
type Span struct {
	Workload string `json:"workload"`
	// ID is the run's memo-key hash ("%016x"), matching Logf and RunFailure.
	ID    string `json:"id"`
	State string `json:"state"`
	// Attempt numbers running/retry/failed/timeout spans (1-based); 0 for
	// queued and memo-hit spans.
	Attempt int `json:"attempt,omitempty"`
	// Slot is the render lane: a worker-slot index for owned runs, -1 for
	// memo hits.
	Slot  int           `json:"slot"`
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
}

// sinceStart returns the wall time since the harness's span epoch,
// establishing the epoch on first use.
func (h *Harness) sinceStart() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.spanEpoch.IsZero() {
		h.spanEpoch = wallNow()
	}
	return wallSince(h.spanEpoch)
}

func (h *Harness) addSpan(s Span) {
	h.mu.Lock()
	h.spans = append(h.spans, s)
	h.mu.Unlock()
}

// acquireSlot reserves the lowest free worker slot, so overlapping runs
// render as parallel profiler lanes.
func (h *Harness) acquireSlot() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, used := range h.slots {
		if !used {
			h.slots[i] = true
			return i
		}
	}
	h.slots = append(h.slots, true)
	return len(h.slots) - 1
}

func (h *Harness) releaseSlot(i int) {
	h.mu.Lock()
	h.slots[i] = false
	h.mu.Unlock()
}

// Spans returns the recorded timeline sorted by (start, id, state) — stable
// for rendering, though the times themselves are wall-clock and vary run to
// run.
func (h *Harness) Spans() []Span {
	h.mu.Lock()
	out := make([]Span, len(h.spans))
	copy(out, h.spans)
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].ID != out[j].ID {
			return out[i].ID < out[j].ID
		}
		return out[i].State < out[j].State
	})
	return out
}

// WriteSpans writes the harness's span timeline as Chrome trace-event JSON.
func (h *Harness) WriteSpans(w io.Writer) error {
	return WriteSpansChromeTrace(w, h.Spans())
}

// memoSlotTID is the synthetic thread the memo-hit spans render on.
const memoSlotTID = 1 << 16

// spanTS renders a wall duration as microseconds with three decimals (the
// trace format's unit) without float formatting.
func spanTS(d time.Duration) string {
	ns := d.Nanoseconds()
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// WriteSpansChromeTrace writes spans as Chrome trace-event JSON: one
// "harness" process, one thread per worker slot plus a "memo" thread, one
// complete event ("ph":"X") per span. Loadable by Perfetto — the same wire
// format as the simulation traces, but on the wall-clock timebase.
func WriteSpansChromeTrace(w io.Writer, spans []Span) error {
	slots := map[int]bool{}
	for _, s := range spans {
		slots[s.Slot] = true
	}
	slotList := make([]int, 0, len(slots))
	for s := range slots {
		slotList = append(slotList, s)
	}
	sort.Ints(slotList)

	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteString(",\n")
		} else {
			bw.WriteString("\n")
			first = false
		}
		fmt.Fprintf(bw, format, args...)
	}

	emit(`{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"harness"}}`)
	for _, s := range slotList {
		name := fmt.Sprintf("slot%d", s)
		tid := s
		if s < 0 {
			name = "memo"
			tid = memoSlotTID
		}
		emit(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":%q}}`, tid, name)
	}
	for _, s := range spans {
		tid := s.Slot
		if tid < 0 {
			tid = memoSlotTID
		}
		args := fmt.Sprintf(`"id":%q,"state":%q`, s.ID, s.State)
		if s.Attempt > 0 {
			args += fmt.Sprintf(`,"attempt":%d`, s.Attempt)
		}
		emit(`{"name":%q,"ph":"X","ts":%s,"dur":%s,"pid":0,"tid":%d,"args":{%s}}`,
			s.Workload+" "+s.State, spanTS(s.Start), spanTS(s.End-s.Start), tid, args)
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}
