package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"

	"ccnuma/internal/sim"
)

// TestStreamWriterMatchesJSONL proves the streaming path produces the same
// bytes as the batch exporter for an in-order event sequence — the property
// that lets numasimd's progress stream replace a post-run WriteJSONL dump.
func TestStreamWriterMatchesJSONL(t *testing.T) {
	events := []Event{}
	for i := 0; i < 10; i++ {
		e := NewEvent(KindPageMigrated)
		e.At = sim.Time(i)
		e.Page = int64(i * 7)
		e.From, e.To = i%3, (i+1)%3
		events = append(events, e)
	}

	var streamed bytes.Buffer
	sw := NewStreamWriter(&streamed)
	tr := NewStreamTracer(nil, sw.Sink())
	for _, e := range events {
		tr.Emit(e)
	}

	var batch bytes.Buffer
	bt := NewTracer(nil)
	for _, e := range events {
		bt.Emit(e)
	}
	if err := bt.WriteJSONL(&batch); err != nil {
		t.Fatal(err)
	}

	if streamed.String() != batch.String() {
		t.Fatalf("stream bytes differ from batch JSONL:\n%s\nvs\n%s",
			streamed.String(), batch.String())
	}
	if sw.Count() != len(events) {
		t.Fatalf("Count = %d, want %d", sw.Count(), len(events))
	}
	if tr.Len() != 0 {
		t.Fatalf("stream tracer buffered %d events", tr.Len())
	}
}

// TestStreamWriterLinesParse checks each line is one valid JSON event.
func TestStreamWriterLinesParse(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	e := NewEvent(KindTLBShootdown)
	e.N = 4
	sw.WriteValue(e)
	sw.WriteValue(map[string]string{"marker": "done"})

	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	lines := 0
	for sc.Scan() {
		var v map[string]any
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines, err)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("got %d lines, want 2", lines)
	}
}

// failAfter fails every write past the first n.
type failAfter struct {
	n      int
	writes int
}

func (f *failAfter) Write(p []byte) (int, error) {
	f.writes++
	if f.writes > f.n {
		return 0, errors.New("consumer hung up")
	}
	return len(p), nil
}

// TestStreamWriterSticksOnError proves a dead consumer stops the stream
// quietly: the first error is retained, later writes are dropped.
func TestStreamWriterSticksOnError(t *testing.T) {
	f := &failAfter{n: 1}
	sw := NewStreamWriter(f)
	sw.WriteValue(NewEvent(KindPageMigrated))
	sw.WriteValue(NewEvent(KindPageMigrated))
	sw.WriteValue(NewEvent(KindPageMigrated))
	if sw.Err() == nil {
		t.Fatal("write error not retained")
	}
	if f.writes > 2 {
		t.Fatalf("writer kept writing after the error: %d writes", f.writes)
	}
	if sw.Count() != 1 {
		t.Fatalf("Count = %d, want 1", sw.Count())
	}
}

// TestStreamWriterConcurrent hammers WriteValue from several goroutines under
// -race: lines must never interleave mid-record.
func TestStreamWriterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				e := NewEvent(KindPolicyDecision)
				e.CPU = g
				e.N = i
				sw.WriteValue(e)
			}
		}(g)
	}
	wg.Wait()
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	lines := 0
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("corrupt line %d: %v", lines, err)
		}
		lines++
	}
	if lines != 8*50 {
		t.Fatalf("got %d lines, want %d", lines, 8*50)
	}
}
