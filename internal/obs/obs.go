// Package obs is the simulation's observability layer: a typed event tracer
// and a periodic time-series sampler, both zero-overhead when disabled.
//
// The tracer answers *when and why* pages move — every migration,
// replication, collapse, TLB shootdown, and Figure-1 policy decision (with
// the counter values and thresholds that drove the branch taken) becomes a
// timestamped event, exportable as JSONL or as Chrome trace-event JSON that
// Perfetto loads directly. The sampler answers *how the machine trends* —
// per-CPU busy/idle/pager deltas, per-node frame occupancy and replica
// counts, and directory-counter activity at a fixed virtual-time interval,
// exportable as CSV or JSONL.
//
// Both are driven by the deterministic event engine, so for a fixed seed the
// exported bytes are identical run to run. A nil *Tracer is the disabled
// state: call sites guard emissions with On(), which costs one branch
// (proven by BenchmarkTracerDisabled).
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"ccnuma/internal/sim"
)

// Kind is the type of an observability event.
type Kind uint8

const (
	// KindPageMigrated: a page's master copy moved between nodes.
	KindPageMigrated Kind = iota
	// KindPageReplicated: a copy of a page was created on a new node.
	KindPageReplicated
	// KindReplicaCollapsed: a page's replicas were collapsed to one copy.
	KindReplicaCollapsed
	// KindTLBShootdown: a TLB flush covering one or more pages.
	KindTLBShootdown
	// KindHotPageInterrupt: the pager interrupt servicing a hot-page batch.
	KindHotPageInterrupt
	// KindPolicyDecision: one Figure-1 decision-tree evaluation.
	KindPolicyDecision
	// KindCounterReset: the periodic directory-counter reset.
	KindCounterReset
	// KindReplicaReclaimed: replicas reclaimed outside the write-trap path
	// (memory pressure or the cold-replica sweep).
	KindReplicaReclaimed
	// KindFaultInjected: the fault layer fired (Action names the fault).
	KindFaultInjected
	// KindOpDeferred: an operation that failed allocation entered the pager's
	// deferral queue (N is the attempt count).
	KindOpDeferred
	// KindOpAbandoned: a deferred operation was dropped after exhausting its
	// retries or the queue's capacity.
	KindOpAbandoned
	// KindPolicyThrottled: the pager shed a hot-page batch because its
	// overhead exceeded the kernel-overhead budget (N is the batch size).
	KindPolicyThrottled
	kindCount
)

var kindNames = [...]string{
	KindPageMigrated:     "page-migrated",
	KindPageReplicated:   "page-replicated",
	KindReplicaCollapsed: "replica-collapsed",
	KindTLBShootdown:     "tlb-shootdown",
	KindHotPageInterrupt: "hot-page-interrupt",
	KindPolicyDecision:   "policy-decision",
	KindCounterReset:     "counter-reset",
	KindReplicaReclaimed: "replica-reclaimed",
	KindFaultInjected:    "fault-injected",
	KindOpDeferred:       "op-deferred",
	KindOpAbandoned:      "op-abandoned",
	KindPolicyThrottled:  "policy-throttled",
}

// String names the kind as it appears in exports.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// MarshalJSON renders the kind as its name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON parses a kind name back to its value, so flight-recorder
// dumps embedded in failure manifests round-trip through JSON.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i := Kind(0); i < kindCount; i++ {
		if kindNames[i] == s {
			*k = i
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event kind %q", s)
}

// Event is one timestamped observability record. Fields that do not apply to
// a kind hold the NewEvent sentinels (-1 for ids, zero elsewhere), so every
// export line has the same shape.
type Event struct {
	// At is the virtual time of the event.
	At sim.Time `json:"at"`
	// Kind is the event type.
	Kind Kind `json:"kind"`
	// CPU is the processor involved (-1 when not CPU-specific).
	CPU int `json:"cpu"`
	// Node is the node the event acts on (-1 when machine-wide).
	Node int `json:"node"`
	// Page is the logical page involved (-1 when not page-specific).
	Page int64 `json:"page"`
	// From and To are source/destination nodes for copies that move.
	From int `json:"from"`
	To   int `json:"to"`
	// Action and Reason describe a policy decision's branch.
	Action string `json:"action,omitempty"`
	Reason string `json:"reason,omitempty"`
	// Miss is the triggering CPU's miss counter; MissOther the largest other
	// counter; Writes the page's write counter (policy decisions).
	Miss      uint16 `json:"miss"`
	MissOther uint16 `json:"miss_other"`
	Writes    uint16 `json:"writes"`
	// Trigger and Sharing are the thresholds in force when the event fired.
	Trigger uint16 `json:"trigger"`
	Sharing uint16 `json:"sharing"`
	// N counts the event's objects: batch size, pages flushed, frames freed.
	N int `json:"n"`
	// Dur is the simulated time the operation consumed (0 for instants).
	Dur sim.Time `json:"dur"`
}

// NewEvent returns an event of the given kind with id fields set to the
// not-applicable sentinel.
func NewEvent(k Kind) Event {
	return Event{Kind: k, CPU: -1, Node: -1, Page: -1, From: -1, To: -1}
}

// Tracer buffers typed events in memory. The nil *Tracer is the disabled
// tracer: On() reports false and Emit is a no-op, so instrumented code pays
// one branch and nothing else.
type Tracer struct {
	// Clock supplies the current virtual time for emitters that do not track
	// it themselves (EmitNow). Optional.
	Clock func() sim.Time

	events []Event

	// rec, when set, receives a copy of every emitted event (the failure
	// flight recorder). noBuffer additionally drops the in-memory buffer, so
	// a recorder-only tracer holds bounded memory no matter how long the run.
	rec      *Recorder
	noBuffer bool

	// sink, when set, receives every emitted event as it happens — the
	// streaming path (core.Options.EventSink → serve's NDJSON progress
	// stream). Called synchronously from the emitting goroutine.
	sink func(Event)
}

// NewTracer builds an enabled tracer. clock may be nil when every emitter
// stamps its own events.
func NewTracer(clock func() sim.Time) *Tracer {
	return &Tracer{Clock: clock}
}

// NewFlightTracer builds a tracer that forwards every event to the flight
// recorder without buffering: the run pays the ring write per event and
// holds no unbounded event memory. r must be non-nil.
func NewFlightTracer(clock func() sim.Time, r *Recorder) *Tracer {
	if r == nil {
		panic("obs: flight tracer needs a recorder")
	}
	return &Tracer{Clock: clock, rec: r, noBuffer: true}
}

// AttachRecorder mirrors every subsequent emission into r (in addition to
// the buffer). No-op on a nil tracer or nil recorder.
func (t *Tracer) AttachRecorder(r *Recorder) {
	if t == nil || r == nil {
		return
	}
	t.rec = r
}

// NewStreamTracer builds a tracer that forwards every event to sink without
// buffering: the streaming consumer sees events live and the run holds no
// unbounded event memory. sink must be non-nil.
func NewStreamTracer(clock func() sim.Time, sink func(Event)) *Tracer {
	if sink == nil {
		panic("obs: stream tracer needs a sink")
	}
	return &Tracer{Clock: clock, sink: sink, noBuffer: true}
}

// AttachSink forwards every subsequent emission to fn (in addition to the
// buffer and recorder, when present). No-op on a nil tracer or nil fn.
func (t *Tracer) AttachSink(fn func(Event)) {
	if t == nil || fn == nil {
		return
	}
	t.sink = fn
}

// On reports whether the tracer is collecting. Safe on nil.
func (t *Tracer) On() bool { return t != nil }

// Emit records an event. No-op on nil.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	if t.rec != nil {
		t.rec.Record(e)
	}
	if t.sink != nil {
		t.sink(e)
	}
	if !t.noBuffer {
		t.events = append(t.events, e)
	}
}

// EmitNow records an event stamped with the tracer's clock. No-op on nil.
func (t *Tracer) EmitNow(e Event) {
	if t == nil {
		return
	}
	if t.Clock != nil {
		e.At = t.Clock()
	}
	if t.rec != nil {
		t.rec.Record(e)
	}
	if t.sink != nil {
		t.sink(e)
	}
	if !t.noBuffer {
		t.events = append(t.events, e)
	}
}

// Len returns the number of buffered events. Safe on nil.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Reset drops all buffered events.
func (t *Tracer) Reset() { t.events = t.events[:0] }

// Sort orders the events by time (stable: equal-time events keep emission
// order). The pager advances a local clock past the engine's, so events are
// appended only approximately in time order; exports call this first.
func (t *Tracer) Sort() {
	if t == nil {
		return
	}
	sort.SliceStable(t.events, func(i, j int) bool {
		return t.events[i].At < t.events[j].At
	})
}

// Events returns the buffered events in their current order. The slice is
// shared; do not mutate.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// CountKind returns how many buffered events have the given kind.
func (t *Tracer) CountKind(k Kind) int {
	n := 0
	for _, e := range t.Events() {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// WriteJSONL writes one JSON object per event, in time order. The output is
// byte-deterministic for a deterministic event sequence.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	t.Sort()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range t.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}
