package obs

import (
	"encoding/json"
	"testing"

	"ccnuma/internal/sim"
)

// TestKindExhaustive pins the Kind enumeration's export contract: every kind
// below kindCount has a distinct, non-empty name, and each round-trips
// through MarshalJSON/UnmarshalJSON — so a flight-recorder dump parsed back
// from a failure manifest names the same kinds the run emitted.
func TestKindExhaustive(t *testing.T) {
	seen := map[string]Kind{}
	for k := Kind(0); k < kindCount; k++ {
		name := k.String()
		if name == "" || name == "unknown" {
			t.Fatalf("kind %d has no proper name (%q)", k, name)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("kinds %d and %d share the name %q", prev, k, name)
		}
		seen[name] = k

		b, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("kind %s: marshal: %v", name, err)
		}
		var back Kind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("kind %s: unmarshal %s: %v", name, b, err)
		}
		if back != k {
			t.Fatalf("kind %s round-tripped to %s", name, back)
		}
	}
	var bad Kind
	if err := json.Unmarshal([]byte(`"no-such-kind"`), &bad); err == nil {
		t.Fatal("unknown kind name unmarshalled without error")
	}
}

// TestRecorderRing pins the flight recorder's ring semantics: before wrapping
// the dump is the complete history, after wrapping it is the newest Depth
// events oldest-first with the truncation marker counting what fell off.
func TestRecorderRing(t *testing.T) {
	r := NewRecorder(4)
	if !r.On() || r.Depth() != 4 {
		t.Fatalf("On=%v Depth=%d, want enabled depth-4 ring", r.On(), r.Depth())
	}

	rec := func(i int64) {
		e := NewEvent(KindPageMigrated)
		e.At, e.Page = sim.Time(i), i
		r.Record(e)
	}
	rec(0)
	rec(1)
	events, dropped := r.Dump()
	if len(events) != 2 || dropped != 0 {
		t.Fatalf("partial ring dump = %d events, %d dropped; want 2, 0", len(events), dropped)
	}
	for i := int64(2); i < 10; i++ {
		rec(i)
	}
	events, dropped = r.Dump()
	if len(events) != 4 || dropped != 6 {
		t.Fatalf("wrapped dump = %d events, %d dropped; want 4, 6", len(events), dropped)
	}
	for i, e := range events {
		if want := int64(6 + i); e.Page != want {
			t.Fatalf("dump[%d].Page = %d, want %d (newest 4, oldest first)", i, e.Page, want)
		}
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
}

// TestNilRecorderIsSafeAndOff mirrors the nil-tracer contract for the
// recorder: the disabled state is a nil pointer every method tolerates.
func TestNilRecorderIsSafeAndOff(t *testing.T) {
	var r *Recorder
	if r.On() || r.Depth() != 0 || r.Total() != 0 {
		t.Fatal("nil recorder does not report disabled")
	}
	r.Record(NewEvent(KindPageMigrated)) // must not panic
	if events, dropped := r.Dump(); events != nil || dropped != 0 {
		t.Fatal("nil recorder dumped history")
	}
	if NewRecorder(0) != nil || NewRecorder(-3) != nil {
		t.Fatal("non-positive depth did not return the disabled recorder")
	}
}

// TestRecorderSteadyStateZeroAlloc pins the bounded-memory claim: once the
// ring is full, recording overwrites in place and allocates nothing.
func TestRecorderSteadyStateZeroAlloc(t *testing.T) {
	r := NewRecorder(32)
	e := NewEvent(KindTLBShootdown)
	for i := 0; i < 64; i++ {
		r.Record(e) // wrap the ring before measuring
	}
	if allocs := testing.AllocsPerRun(100, func() { r.Record(e) }); allocs != 0 {
		t.Fatalf("steady-state Record allocates %.1f times per call, want 0", allocs)
	}
}

// TestFlightTracerRecordsWithoutBuffering checks the recorder-only tracer:
// events reach the ring (stamped by the clock on EmitNow) but the tracer's
// replay buffer stays empty, keeping flight recording O(depth) in memory.
func TestFlightTracerRecordsWithoutBuffering(t *testing.T) {
	now := sim.Time(77)
	r := NewRecorder(8)
	tr := NewFlightTracer(func() sim.Time { return now }, r)
	if !tr.On() {
		t.Fatal("flight tracer reports Off")
	}
	tr.EmitNow(NewEvent(KindCounterReset))
	now = 99
	tr.Emit(Event{Kind: KindPageMigrated, At: 88})
	if tr.Len() != 0 {
		t.Fatalf("flight tracer buffered %d events, want 0", tr.Len())
	}
	events, dropped := r.Dump()
	if len(events) != 2 || dropped != 0 {
		t.Fatalf("ring holds %d events (%d dropped), want 2 (0 dropped)", len(events), dropped)
	}
	if events[0].At != 77 || events[0].Kind != KindCounterReset {
		t.Fatalf("EmitNow did not stamp the clock: %+v", events[0])
	}
	if events[1].At != 88 || events[1].Kind != KindPageMigrated {
		t.Fatalf("Emit altered the event: %+v", events[1])
	}
}

// TestRecorderAttachedToBufferingTracer checks AttachRecorder: a full
// event-collection run can feed the same ring, so failure dumps exist whether
// or not the run also kept its complete trace.
func TestRecorderAttachedToBufferingTracer(t *testing.T) {
	r := NewRecorder(8)
	tr := NewTracer(nil)
	tr.AttachRecorder(r)
	tr.Emit(Event{Kind: KindTLBShootdown, At: 5})
	if tr.Len() != 1 {
		t.Fatalf("buffering tracer kept %d events, want 1", tr.Len())
	}
	if events, _ := r.Dump(); len(events) != 1 || events[0].Kind != KindTLBShootdown {
		t.Fatalf("attached recorder missed the event: %+v", events)
	}

	var nilTr *Tracer
	nilTr.AttachRecorder(r) // must not panic
	tr.AttachRecorder(nil)  // detaching is a no-op
	tr.Emit(Event{Kind: KindCounterReset})
	if events, _ := r.Dump(); len(events) != 2 {
		t.Fatalf("nil AttachRecorder detached the ring: %d events", len(events))
	}
}

// TestRecorderUnderEpochWorkers drives a 4-lane sharded engine in concurrent
// epoch mode with every lane emitting through one shared flight tracer into
// one ring. Run under -race in `make ci`; the mutex-guarded ring must lose
// nothing, whatever the lane interleaving.
func TestRecorderUnderEpochWorkers(t *testing.T) {
	const lanes, perLane = 4, 200
	r := NewRecorder(64)
	tr := NewFlightTracer(nil, r)
	sh := sim.NewSharded(lanes, 50)
	var k sim.Kind
	k = sh.Register(func(l *sim.Lane, now sim.Time, arg uint64) {
		e := NewEvent(KindHotPageInterrupt)
		e.At, e.Node = now, l.Index()
		tr.Emit(e)
		if arg >= lanes {
			// Stay on this lane (laneOf is arg%lanes): epoch handlers may
			// only touch lane-local state plus the mutex-guarded ring.
			l.AfterKind(10, k, arg-lanes)
		}
	}, func(arg uint64) int { return int(arg) % lanes })
	for i := 0; i < lanes; i++ {
		sh.AtKind(sim.Time(i), k, uint64(perLane*lanes+i))
	}
	sh.RunEpochs(lanes, 1<<40)

	const want = lanes * (perLane + 1)
	if got := r.Total(); got != want {
		t.Fatalf("recorder saw %d events, want %d", got, want)
	}
	events, dropped := r.Dump()
	if len(events) != r.Depth() || dropped != want-uint64(r.Depth()) {
		t.Fatalf("dump = %d events, %d dropped; want %d, %d",
			len(events), dropped, r.Depth(), want-uint64(r.Depth()))
	}
}

// BenchmarkRecorderDisabled proves the disabled flight recorder costs one
// branch: the guard is On() on a nil *Recorder, exactly the tracer contract.
func BenchmarkRecorderDisabled(b *testing.B) {
	var r *Recorder
	for i := 0; i < b.N; i++ {
		if r.On() {
			e := NewEvent(KindPageMigrated)
			e.At = sim.Time(i)
			r.Record(e)
		}
	}
}

// BenchmarkRecorderEnabled measures a steady-state (wrapped-ring) record.
func BenchmarkRecorderEnabled(b *testing.B) {
	r := NewRecorder(256)
	e := NewEvent(KindPageMigrated)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r.On() {
			e.At = sim.Time(i)
			r.Record(e)
		}
	}
}
