package obs

import "sync"

// Recorder is the failure flight recorder: a bounded ring over the last N
// typed events of a run, kept so a panic, timeout, or failed run can dump
// recent history into its failure manifest without re-running under full
// event collection.
//
// The ring is sized once at construction and never grows — recording into a
// full ring overwrites the oldest slot, so steady-state recording allocates
// nothing (pinned by TestRecorderSteadyStateZeroAlloc). A mutex serializes
// Record and Dump: lanes emitting concurrently under RunEpochs and a harness
// dumping a timed-out run's recorder while its abandoned goroutine is still
// simulating are both safe. A nil *Recorder is the disabled state and costs
// the caller one branch (pinned by BenchmarkRecorderDisabled).
type Recorder struct {
	mu    sync.Mutex
	buf   []Event
	head  int // index of the oldest event when the ring is full
	n     int // live events (== len(buf) once wrapped)
	total uint64
}

// NewRecorder builds a recorder holding the last depth events. depth < 1
// returns nil (the disabled recorder).
func NewRecorder(depth int) *Recorder {
	if depth < 1 {
		return nil
	}
	return &Recorder{buf: make([]Event, depth)}
}

// On reports whether the recorder is active. Safe on nil.
func (r *Recorder) On() bool { return r != nil }

// Depth returns the ring capacity. Safe on nil.
func (r *Recorder) Depth() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Record appends an event to the ring, evicting the oldest once full. No-op
// on nil.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = e
		r.n++
	} else {
		r.buf[r.head] = e
		r.head = (r.head + 1) % len(r.buf)
	}
	r.total++
	r.mu.Unlock()
}

// Total returns how many events have ever been recorded. Safe on nil.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dump returns the ring's events oldest-first plus the number of events
// that fell off the ring before the dump — the truncation marker (0 means
// the dump is the complete history). Safe on nil and safe to call while
// another goroutine is still recording.
func (r *Recorder) Dump() (events []Event, dropped uint64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	events = make([]Event, 0, r.n)
	for i := 0; i < r.n; i++ {
		events = append(events, r.buf[(r.head+i)%len(r.buf)])
	}
	return events, r.total - uint64(r.n)
}
