package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"ccnuma/internal/sim"
)

// CPUSample is one CPU's activity during a sampling interval (deltas), plus
// its instantaneous run state.
type CPUSample struct {
	// Busy and Idle are the non-idle and idle virtual time accrued this
	// interval; Pager the pager-handler share of Busy.
	Busy  sim.Time `json:"busy"`
	Idle  sim.Time `json:"idle"`
	Pager sim.Time `json:"pager"`
	// Steps is the number of workload references executed this interval.
	Steps uint64 `json:"steps"`
}

// Sub returns the per-interval delta between cumulative snapshots s and prev.
func (s CPUSample) Sub(prev CPUSample) CPUSample {
	return CPUSample{
		Busy:  s.Busy - prev.Busy,
		Idle:  s.Idle - prev.Idle,
		Pager: s.Pager - prev.Pager,
		Steps: s.Steps - prev.Steps,
	}
}

// NodeSample is one node's instantaneous memory picture.
type NodeSample struct {
	// Free is the node's free-frame count; Base and Replica the allocated
	// frames holding master copies and replicas.
	Free    int `json:"free"`
	Base    int `json:"base"`
	Replica int `json:"replica"`
}

// CounterSample is the directory counting activity during an interval
// (deltas of the cumulative CounterStats).
type CounterSample struct {
	Recorded uint64 `json:"recorded"`
	Counted  uint64 `json:"counted"`
	Hot      uint64 `json:"hot"`
	Resets   uint64 `json:"resets"`
}

// Sub returns the per-interval delta between cumulative snapshots s and prev.
func (s CounterSample) Sub(prev CounterSample) CounterSample {
	return CounterSample{
		Recorded: s.Recorded - prev.Recorded,
		Counted:  s.Counted - prev.Counted,
		Hot:      s.Hot - prev.Hot,
		Resets:   s.Resets - prev.Resets,
	}
}

// Sample is one point of the time-series: engine gauges plus per-CPU,
// per-node, and counter activity at a sampling instant.
type Sample struct {
	At sim.Time `json:"at"`
	// Fired is the cumulative event count; Pending the queue depth now.
	Fired   uint64 `json:"fired"`
	Pending int    `json:"pending"`

	CPU      []CPUSample   `json:"cpu"`
	Node     []NodeSample  `json:"node"`
	Counters CounterSample `json:"counters"`
}

// Sampler accumulates periodic Samples taken by the simulation at a fixed
// virtual-time interval and exports them as CSV or JSONL.
type Sampler struct {
	// Interval is the virtual-time sampling period.
	Interval sim.Time
	// Debug makes the sampling callback validate accounting invariants
	// (stats.Breakdown.CheckInvariants) on every sample.
	Debug bool

	cpus, nodes int
	samples     []Sample
}

// NewSampler builds a sampler for a machine of the given CPU and node
// counts, sampling every interval of virtual time.
func NewSampler(interval sim.Time, cpus, nodes int) *Sampler {
	if interval <= 0 {
		panic("obs: non-positive sampling interval")
	}
	return &Sampler{Interval: interval, cpus: cpus, nodes: nodes}
}

// Add appends one sample. The sample's CPU and Node slices must match the
// sampler's dimensions.
func (s *Sampler) Add(sm Sample) {
	if len(sm.CPU) != s.cpus || len(sm.Node) != s.nodes {
		panic(fmt.Sprintf("obs: sample dims %dx%d, sampler %dx%d",
			len(sm.CPU), len(sm.Node), s.cpus, s.nodes))
	}
	s.samples = append(s.samples, sm)
}

// Len returns the number of samples taken. Safe on nil.
func (s *Sampler) Len() int {
	if s == nil {
		return 0
	}
	return len(s.samples)
}

// Samples returns the accumulated series (shared slice; do not mutate).
func (s *Sampler) Samples() []Sample {
	if s == nil {
		return nil
	}
	return s.samples
}

// WriteCSV writes the series with one row per sample: engine gauges and
// counter deltas, then per-CPU busy/idle/pager/steps deltas, then per-node
// free/base/replica frame counts. The header is always written, so an empty
// series still yields a parseable file.
func (s *Sampler) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("at_ns,fired,pending,recorded,counted,hot,resets")
	for i := 0; i < s.cpus; i++ {
		fmt.Fprintf(bw, ",cpu%d_busy_ns,cpu%d_idle_ns,cpu%d_pager_ns,cpu%d_steps", i, i, i, i)
	}
	for i := 0; i < s.nodes; i++ {
		fmt.Fprintf(bw, ",node%d_free,node%d_base,node%d_replica", i, i, i)
	}
	bw.WriteByte('\n')
	for _, sm := range s.samples {
		fmt.Fprintf(bw, "%d,%d,%d,%d,%d,%d,%d",
			int64(sm.At), sm.Fired, sm.Pending,
			sm.Counters.Recorded, sm.Counters.Counted, sm.Counters.Hot, sm.Counters.Resets)
		for _, c := range sm.CPU {
			fmt.Fprintf(bw, ",%d,%d,%d,%d", int64(c.Busy), int64(c.Idle), int64(c.Pager), c.Steps)
		}
		for _, n := range sm.Node {
			fmt.Fprintf(bw, ",%d,%d,%d", n.Free, n.Base, n.Replica)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WriteJSONL writes one JSON object per sample.
func (s *Sampler) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, sm := range s.samples {
		if err := enc.Encode(sm); err != nil {
			return err
		}
	}
	return bw.Flush()
}
