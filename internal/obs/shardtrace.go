package obs

import (
	"bufio"
	"encoding/json"
	"io"

	"ccnuma/internal/sim"
)

// Shard-stats export: the sharded engine's per-lane introspection
// (sim.ShardStats) as deterministic JSONL and as Perfetto lane tracks inside
// the Chrome trace. Only virtual-time fields are exported — the wall-clock
// barrier-stall field exists for interactive profiling and would break byte
// determinism, so it never appears here.

// shardSummaryJSON is the first JSONL line: the collector-wide picture.
type shardSummaryJSON struct {
	Record   string   `json:"record"`
	Lanes    int      `json:"lanes"`
	Epochs   uint64   `json:"epochs"`
	Posts    uint64   `json:"posts"`
	MaxDrain int      `json:"max_drain"`
	WindowNs sim.Time `json:"window_ns"`
	Total    uint64   `json:"total_dispatched"`
}

// shardLaneJSON is one lane's counters plus its outbound traffic row.
type shardLaneJSON struct {
	Record     string   `json:"record"`
	Lane       int      `json:"lane"`
	Dispatched uint64   `json:"dispatched"`
	HeapMax    int      `json:"heap_max"`
	Sent       uint64   `json:"sent"`
	Recv       uint64   `json:"recv"`
	StallNs    sim.Time `json:"barrier_stall_ns"`
	Traffic    []uint64 `json:"traffic"`
}

// shardWindowJSON is one timeline record (serialized bucket or epoch).
type shardWindowJSON struct {
	Record   string   `json:"record"`
	Window   int      `json:"window"`
	StartNs  sim.Time `json:"start_ns"`
	EndNs    sim.Time `json:"end_ns"`
	Drained  int      `json:"drained"`
	Dispatch []uint64 `json:"dispatch"`
}

// WriteShardStatsJSONL writes the shard-stats report as JSONL: a summary
// line, one line per lane (with its outbound traffic row), and one line per
// timeline window. Byte-deterministic for a deterministic run; the per-lane
// numbers depend on the lane count by construction, so determinism is
// per-shard-count (run-to-run and worker-count-neutral), while
// total_dispatched is shard-neutral.
func WriteShardStatsJSONL(w io.Writer, st *sim.ShardStats) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(shardSummaryJSON{
		Record:   "summary",
		Lanes:    st.Lanes(),
		Epochs:   st.Epochs(),
		Posts:    st.Posts(),
		MaxDrain: st.MaxDrain(),
		WindowNs: st.Window(),
		Total:    st.TotalDispatched(),
	}); err != nil {
		return err
	}
	for i := 0; i < st.Lanes(); i++ {
		ls := st.Lane(i)
		row := make([]uint64, st.Lanes())
		for d := range row {
			row[d] = st.Traffic(i, d)
		}
		if err := enc.Encode(shardLaneJSON{
			Record:     "lane",
			Lane:       i,
			Dispatched: ls.Dispatched,
			HeapMax:    ls.HeapMax,
			Sent:       ls.Sent,
			Recv:       ls.Recv,
			StallNs:    ls.BarrierStall,
			Traffic:    row,
		}); err != nil {
			return err
		}
	}
	for i := 0; i < st.Windows(); i++ {
		start, end, drained, dispatch := st.WindowAt(i)
		if err := enc.Encode(shardWindowJSON{
			Record:   "window",
			Window:   i,
			StartNs:  start,
			EndNs:    end,
			Drained:  drained,
			Dispatch: dispatch,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}
