package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ccnuma/internal/sim"
)

func TestKindNames(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Error("out-of-range kind should render as unknown")
	}
	b, err := json.Marshal(KindPageMigrated)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"page-migrated"` {
		t.Errorf("kind JSON = %s, want \"page-migrated\"", b)
	}
}

func TestNilTracerIsSafeAndOff(t *testing.T) {
	var tr *Tracer
	if tr.On() {
		t.Error("nil tracer reports On")
	}
	tr.Emit(NewEvent(KindPageMigrated)) // must not panic
	tr.EmitNow(NewEvent(KindTLBShootdown))
	tr.Sort()
	if tr.Len() != 0 || tr.Events() != nil {
		t.Error("nil tracer accumulated events")
	}
}

func TestTracerEmitAndCount(t *testing.T) {
	tr := NewTracer(nil)
	if !tr.On() {
		t.Fatal("enabled tracer reports Off")
	}
	e := NewEvent(KindPageMigrated)
	e.At, e.Page, e.From, e.To = 100, 7, 0, 1
	tr.Emit(e)
	e2 := NewEvent(KindTLBShootdown)
	e2.At = 50
	tr.Emit(e2)
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if tr.CountKind(KindPageMigrated) != 1 || tr.CountKind(KindPolicyDecision) != 0 {
		t.Error("CountKind miscounts")
	}
	tr.Sort()
	if tr.Events()[0].Kind != KindTLBShootdown {
		t.Error("Sort did not order by time")
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Error("Reset left events behind")
	}
}

func TestTracerEmitNowUsesClock(t *testing.T) {
	now := sim.Time(1234)
	tr := NewTracer(func() sim.Time { return now })
	tr.EmitNow(NewEvent(KindCounterReset))
	now = 5678
	tr.EmitNow(NewEvent(KindCounterReset))
	evs := tr.Events()
	if evs[0].At != 1234 || evs[1].At != 5678 {
		t.Errorf("EmitNow stamped %v/%v, want 1234/5678", evs[0].At, evs[1].At)
	}
}

func TestTracerSortIsStable(t *testing.T) {
	tr := NewTracer(nil)
	for i := 0; i < 5; i++ {
		e := NewEvent(KindPolicyDecision)
		e.At, e.Page = 10, int64(i)
		tr.Emit(e)
	}
	tr.Sort()
	for i, e := range tr.Events() {
		if e.Page != int64(i) {
			t.Fatalf("equal-time events reordered: %v", tr.Events())
		}
	}
}

func fixtureTracer() *Tracer {
	tr := NewTracer(nil)
	e := NewEvent(KindHotPageInterrupt)
	e.At, e.CPU, e.Node, e.Trigger, e.Sharing, e.N = 2000, 3, 1, 96, 24, 2
	tr.Emit(e)
	e = NewEvent(KindPolicyDecision)
	e.At, e.CPU, e.Node, e.Page = 2100, 3, 1, 42
	e.Action, e.Reason = "migrate", ""
	e.Miss, e.MissOther, e.Writes, e.Trigger, e.Sharing = 97, 12, 0, 96, 24
	tr.Emit(e)
	e = NewEvent(KindPageMigrated)
	e.At, e.Page, e.From, e.To, e.Node = 2200, 42, 0, 1, 1
	tr.Emit(e)
	e = NewEvent(KindCounterReset)
	e.At, e.Trigger, e.N = 1000, 96, 1 // out of order on purpose
	tr.Emit(e)
	return tr
}

func TestWriteJSONLDeterministicAndOrdered(t *testing.T) {
	var a, b bytes.Buffer
	if err := fixtureTracer().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := fixtureTracer().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("JSONL export not byte-deterministic")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	var first struct {
		At   int64  `json:"at"`
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.At != 1000 || first.Kind != "counter-reset" {
		t.Errorf("first line = %+v, want the t=1000 counter-reset (time-sorted)", first)
	}
}

func TestWriteChromeTraceIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := fixtureTracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			TS   json.RawMessage `json:"ts"`
			PID  int             `json:"pid"`
			TID  int             `json:"tid"`
			Args map[string]any  `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	meta, inst := 0, 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "i":
			inst++
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	// 4 events: machine track (counter-reset) + node1 with cpu3 and the
	// kernel tid (page-migrated has no CPU) -> 2 process names, 3 threads.
	if meta != 5 {
		t.Errorf("metadata events = %d, want 5", meta)
	}
	if inst != 4 {
		t.Errorf("instant events = %d, want 4", inst)
	}
	// The policy decision carries its counters in args.
	found := false
	for _, e := range doc.TraceEvents {
		if e.Ph == "i" && e.Name == "policy-decision" {
			found = true
			if e.Args["miss"].(float64) != 97 || e.Args["action"].(string) != "migrate" {
				t.Errorf("policy-decision args = %v", e.Args)
			}
		}
	}
	if !found {
		t.Error("policy-decision instant missing")
	}

	var again bytes.Buffer
	if err := fixtureTracer().WriteChromeTrace(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("chrome export not byte-deterministic")
	}
}

func TestChromeTS(t *testing.T) {
	cases := []struct {
		ns   int64
		want string
	}{
		{0, "0.000"},
		{999, "0.999"},
		{1000, "1.000"},
		{1234567, "1234.567"},
	}
	for _, c := range cases {
		if got := chromeTS(c.ns); got != c.want {
			t.Errorf("chromeTS(%d) = %q, want %q", c.ns, got, c.want)
		}
	}
}

func TestSamplerDeltasAndCSV(t *testing.T) {
	s := NewSampler(sim.Millisecond, 2, 1)
	cur := CPUSample{Busy: 300, Idle: 700, Pager: 40, Steps: 11}
	prev := CPUSample{Busy: 100, Idle: 500, Pager: 10, Steps: 4}
	d := cur.Sub(prev)
	if d != (CPUSample{Busy: 200, Idle: 200, Pager: 30, Steps: 7}) {
		t.Errorf("CPUSample.Sub = %+v", d)
	}
	cd := CounterSample{Recorded: 10, Counted: 8, Hot: 2, Resets: 1}.Sub(CounterSample{Recorded: 4, Counted: 4})
	if cd != (CounterSample{Recorded: 6, Counted: 4, Hot: 2, Resets: 1}) {
		t.Errorf("CounterSample.Sub = %+v", cd)
	}

	s.Add(Sample{
		At: sim.Millisecond, Fired: 10, Pending: 3,
		CPU:      []CPUSample{d, {}},
		Node:     []NodeSample{{Free: 5, Base: 2, Replica: 1}},
		Counters: cd,
	})
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines = %d, want header + 1 row", len(lines))
	}
	wantHeader := "at_ns,fired,pending,recorded,counted,hot,resets," +
		"cpu0_busy_ns,cpu0_idle_ns,cpu0_pager_ns,cpu0_steps," +
		"cpu1_busy_ns,cpu1_idle_ns,cpu1_pager_ns,cpu1_steps," +
		"node0_free,node0_base,node0_replica"
	if lines[0] != wantHeader {
		t.Errorf("CSV header:\n got %s\nwant %s", lines[0], wantHeader)
	}
	wantRow := "1000000,10,3,6,4,2,1,200,200,30,7,0,0,0,0,5,2,1"
	if lines[1] != wantRow {
		t.Errorf("CSV row:\n got %s\nwant %s", lines[1], wantRow)
	}

	var jl bytes.Buffer
	if err := s.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	var sm Sample
	if err := json.Unmarshal(jl.Bytes(), &sm); err != nil {
		t.Fatal(err)
	}
	if sm.At != sim.Millisecond || sm.CPU[0].Busy != 200 {
		t.Errorf("JSONL round-trip = %+v", sm)
	}
}

func TestSamplerEmptySeriesStillHasHeader(t *testing.T) {
	s := NewSampler(sim.Millisecond, 1, 1)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "at_ns,") {
		t.Errorf("empty series CSV = %q, want header", buf.String())
	}
}

func TestSamplerPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("zero interval", func() { NewSampler(0, 1, 1) })
	expectPanic("dim mismatch", func() {
		NewSampler(1, 2, 2).Add(Sample{CPU: make([]CPUSample, 1), Node: make([]NodeSample, 2)})
	})
}

func TestNilSamplerAccessors(t *testing.T) {
	var s *Sampler
	if s.Len() != 0 || s.Samples() != nil {
		t.Error("nil sampler accessors not safe")
	}
}

// BenchmarkTracerDisabled proves the instrumented hot path costs one branch
// when tracing is off: the guard is On() on a nil *Tracer.
func BenchmarkTracerDisabled(b *testing.B) {
	var tr *Tracer
	for i := 0; i < b.N; i++ {
		if tr.On() {
			e := NewEvent(KindPageMigrated)
			e.At = sim.Time(i)
			tr.Emit(e)
		}
	}
}

// BenchmarkTracerEnabled measures the cost of an actual emission.
func BenchmarkTracerEnabled(b *testing.B) {
	tr := NewTracer(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr.On() {
			e := NewEvent(KindPageMigrated)
			e.At = sim.Time(i)
			tr.Emit(e)
		}
		if tr.Len() >= 1<<20 {
			tr.Reset() // bound memory; Reset keeps capacity
		}
	}
}
