package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"ccnuma/internal/sim"
)

// Chrome trace-event export: the JSON object format of the Trace Event
// specification, loadable by Perfetto (ui.perfetto.dev) and chrome://tracing.
// Virtual sim.Time is the timebase: ts is microseconds with nanosecond
// precision, so a 100ms simulated run renders as a 100ms trace. Each node is
// a process track and each CPU a thread track within its node; machine-wide
// events (counter resets) land on a synthetic "machine" process, and events
// emitted by kernel subsystems without a CPU context (vm state changes) land
// on a per-node "kernel" thread. All events are instants ("ph":"i"); policy
// decisions carry the counters and thresholds that drove the branch in args.

const (
	// machinePID is the synthetic process id for machine-wide events.
	machinePID = 1 << 16
	// kernelTID is the synthetic thread id for events without a CPU context.
	kernelTID = 1 << 16
	// lanePID is the synthetic process id for the sharded engine's lane
	// tracks (one thread per lane, epoch/window slices, mailbox counter).
	lanePID = 1 << 17
)

func chromePID(e Event) int {
	if e.Node >= 0 {
		return e.Node
	}
	return machinePID
}

func chromeTID(e Event) int {
	if e.CPU >= 0 {
		return e.CPU
	}
	return kernelTID
}

// chromeTS renders virtual time as microseconds with three decimals, the
// trace format's unit, without float formatting (byte-deterministic).
func chromeTS(t int64) string {
	return fmt.Sprintf("%d.%03d", t/1000, t%1000)
}

type track struct{ pid, tid int }

// WriteChromeTrace writes the buffered events as Chrome trace-event JSON.
// Output is byte-deterministic for a deterministic event sequence.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return t.WriteChromeTraceWith(w, nil)
}

// WriteChromeTraceWith writes the buffered events as Chrome trace-event
// JSON, and — when st is non-nil — appends the sharded engine's lane tracks:
// a "lanes" process with one thread per lane, an epoch/window slice per lane
// carrying its dispatch count, and a mailbox-drain counter track. Output is
// byte-deterministic for a deterministic event sequence (lane tracks carry
// only virtual-time fields).
func (t *Tracer) WriteChromeTraceWith(w io.Writer, st *sim.ShardStats) error {
	t.Sort()
	evs := t.Events()

	pids := map[int]bool{}
	tracks := map[track]bool{}
	for _, e := range evs {
		p, d := chromePID(e), chromeTID(e)
		pids[p] = true
		tracks[track{p, d}] = true
	}
	pidList := make([]int, 0, len(pids))
	for p := range pids {
		pidList = append(pidList, p)
	}
	sort.Ints(pidList)
	trackList := make([]track, 0, len(tracks))
	for tr := range tracks {
		trackList = append(trackList, tr)
	}
	sort.Slice(trackList, func(i, j int) bool {
		if trackList[i].pid != trackList[j].pid {
			return trackList[i].pid < trackList[j].pid
		}
		return trackList[i].tid < trackList[j].tid
	})

	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteString(",\n")
		} else {
			bw.WriteString("\n")
			first = false
		}
		fmt.Fprintf(bw, format, args...)
	}

	for _, p := range pidList {
		name := fmt.Sprintf("node%d", p)
		if p == machinePID {
			name = "machine"
		}
		emit(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%q}}`, p, name)
	}
	for _, tr := range trackList {
		name := fmt.Sprintf("cpu%d", tr.tid)
		if tr.tid == kernelTID {
			name = "kernel"
		}
		emit(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%q}}`,
			tr.pid, tr.tid, name)
	}

	for _, e := range evs {
		emit(`{"name":%q,"ph":"i","s":"t","ts":%s,"pid":%d,"tid":%d,"args":{%s}}`,
			e.Kind.String(), chromeTS(int64(e.At)), chromePID(e), chromeTID(e), chromeArgs(e))
	}

	if st != nil && st.Lanes() > 0 {
		emit(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"lanes"}}`, lanePID)
		for i := 0; i < st.Lanes(); i++ {
			emit(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"lane%d"}}`,
				lanePID, i, i)
		}
		slice := "window"
		if st.Epochs() > 0 {
			slice = "epoch"
		}
		for wi := 0; wi < st.Windows(); wi++ {
			start, end, drained, dispatch := st.WindowAt(wi)
			for lane, n := range dispatch {
				if n == 0 {
					continue
				}
				emit(`{"name":%q,"ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":{"dispatched":%d}}`,
					slice, chromeTS(int64(start)), chromeTS(int64(end-start)), lanePID, lane, n)
			}
			if st.Epochs() > 0 {
				emit(`{"name":"mailbox-drain","ph":"C","ts":%s,"pid":%d,"tid":0,"args":{"posts":%d}}`,
					chromeTS(int64(end)), lanePID, drained)
			}
		}
	}

	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// chromeArgs renders the event payload as the args object body, including
// only the fields meaningful for the kind so tooltips stay readable.
func chromeArgs(e Event) string {
	var b []byte
	add := func(format string, args ...any) {
		if len(b) > 0 {
			b = append(b, ',')
		}
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	if e.Page >= 0 {
		add(`"page":%d`, e.Page)
	}
	if e.From >= 0 {
		add(`"from":%d`, e.From)
	}
	if e.To >= 0 {
		add(`"to":%d`, e.To)
	}
	if e.Action != "" {
		add(`"action":%q`, e.Action)
	}
	if e.Reason != "" {
		add(`"reason":%q`, e.Reason)
	}
	if e.Kind == KindPolicyDecision {
		add(`"miss":%d,"miss_other":%d,"writes":%d`, e.Miss, e.MissOther, e.Writes)
	}
	if e.Trigger > 0 {
		add(`"trigger":%d,"sharing":%d`, e.Trigger, e.Sharing)
	}
	if e.N > 0 {
		add(`"n":%d`, e.N)
	}
	if e.Dur > 0 {
		add(`"dur_ns":%d`, int64(e.Dur))
	}
	return string(b)
}
