package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// StreamWriter renders events as NDJSON — one JSON object per line, the same
// shape WriteJSONL produces — as they arrive, instead of buffering a run's
// worth. It is the wire format of numasimd's progress streams: attach
// Sink() as a tracer sink (core.Options.EventSink) and each emitted event
// becomes one line on the connection while the simulation is still running.
//
// The writer is safe for concurrent use. The simulation emits from a single
// goroutine, but the serving layer may interleave its own marker lines
// (WriteValue) from the request goroutine, and a write error must be readable
// after the run from whichever goroutine handles the response.
type StreamWriter struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
	n   int
	err error
}

// NewStreamWriter builds a writer emitting NDJSON lines to w. Each line is
// written as it is produced — no internal buffering — so a consumer reading
// the stream sees events live; wrap w if batching is wanted.
func NewStreamWriter(w io.Writer) *StreamWriter {
	return &StreamWriter{w: w, enc: json.NewEncoder(w)}
}

// Sink returns a function suitable for core.Options.EventSink / AttachSink.
func (s *StreamWriter) Sink() func(Event) {
	return func(e Event) { s.WriteValue(e) }
}

// WriteValue encodes one value as an NDJSON line. After the first write
// error the writer goes quiet and retains the error for Err — a consumer
// that hung up must not turn every later event into a fresh failure.
func (s *StreamWriter) WriteValue(v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if err := s.enc.Encode(v); err != nil {
		s.err = err
		return
	}
	s.n++
}

// Count returns the number of lines written so far.
func (s *StreamWriter) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Err returns the first write error, or nil.
func (s *StreamWriter) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
