package cache

import (
	"testing"

	"ccnuma/internal/mem"
	"ccnuma/internal/sim"
)

// refCache is an obviously-correct (slow) set-associative LRU model used to
// differentially test the production cache: per set, an ordered slice of
// currently-valid tags, MRU first.
type refCache struct {
	sets  int
	assoc int
	ways  [][]mem.GLine
	val   *Validity
	stamp map[mem.GLine][2]uint32 // version, epoch at fill time
}

func newRefCache(size, assoc int, val *Validity) *refCache {
	lines := size / mem.LineSize
	return &refCache{
		sets:  lines / assoc,
		assoc: assoc,
		ways:  make([][]mem.GLine, lines/assoc),
		val:   val,
		stamp: map[mem.GLine][2]uint32{},
	}
}

func (r *refCache) set(l mem.GLine) int { return int(uint64(l) % uint64(r.sets)) }

func (r *refCache) lookup(l mem.GLine) bool {
	s := r.set(l)
	for i, tag := range r.ways[s] {
		if tag != l {
			continue
		}
		st := r.stamp[l]
		if st[0] != r.val.LineVersion(l) || st[1] != r.val.PageEpoch(l.Page()) {
			// Stale: drop and miss.
			r.ways[s] = append(r.ways[s][:i], r.ways[s][i+1:]...)
			return false
		}
		// Move to MRU.
		r.ways[s] = append([]mem.GLine{l}, append(r.ways[s][:i], r.ways[s][i+1:]...)...)
		return true
	}
	return false
}

func (r *refCache) insert(l mem.GLine, version uint32) {
	s := r.set(l)
	for i, tag := range r.ways[s] {
		if tag == l {
			r.ways[s] = append(r.ways[s][:i], r.ways[s][i+1:]...)
			break
		}
	}
	r.ways[s] = append([]mem.GLine{l}, r.ways[s]...)
	if len(r.ways[s]) > r.assoc {
		r.ways[s] = r.ways[s][:r.assoc]
	}
	r.stamp[l] = [2]uint32{version, r.val.PageEpoch(l.Page())}
}

// TestCacheMatchesReferenceModel drives the production cache and the
// reference model with identical random operation streams and requires
// identical hit/miss behaviour throughout.
func TestCacheMatchesReferenceModel(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		rng := sim.NewRand(seed)
		const pages = 16
		val := NewValidity(pages, 1)
		c := New("dut", 4096, 2, val)
		ref := newRefCache(4096, 2, val)
		for i := 0; i < 20000; i++ {
			l := mem.GPage(rng.Intn(pages)).Line(rng.Intn(mem.LinesPerPage))
			switch rng.Intn(5) {
			case 0: // read fill path
				got := c.Lookup(l)
				want := ref.lookup(l)
				if got != want {
					t.Fatalf("seed %d op %d: lookup(%d) = %v, reference %v", seed, i, l, got, want)
				}
				if !got {
					v := val.LineVersion(l)
					c.Insert(l, v)
					ref.insert(l, v)
				}
			case 1: // write (bump + refresh own copy)
				v := val.BumpLine(l)
				c.Insert(l, v)
				ref.insert(l, v)
			case 2: // remote write invalidates everyone
				val.BumpLine(l)
			case 3: // page migration/collapse
				val.BumpPage(l.Page())
			case 4: // pure probe
				got := c.Lookup(l)
				want := ref.lookup(l)
				if got != want {
					t.Fatalf("seed %d op %d: probe(%d) = %v, reference %v", seed, i, l, got, want)
				}
			}
		}
	}
}
