package cache

import (
	"fmt"

	"ccnuma/internal/mem"
)

// noTag marks an empty way.
const noTag = mem.GLine(^uint64(0))

type entry struct {
	tag     mem.GLine
	version uint32
	epoch   uint32
}

// Cache is one set-associative cache level. It is a behavioural model: it
// tracks only presence and validity, not data. The zero value is not usable;
// construct with New.
type Cache struct {
	sets    int
	assoc   int
	mask    uint64 // sets-1 when sets is a power of two
	pow2    bool
	ways    []entry // sets*assoc, way 0 of a set is most recently used
	val     *Validity
	name    string
	hits    uint64
	misses  uint64
	stalees uint64 // misses caused by a stale (invalidated) copy
}

// New builds a cache of sizeBytes capacity with the given associativity,
// using mem.LineSize lines, validated against val.
func New(name string, sizeBytes, assoc int, val *Validity) *Cache {
	lines := sizeBytes / mem.LineSize
	if lines <= 0 || assoc <= 0 || lines%assoc != 0 {
		panic(fmt.Sprintf("cache %s: bad geometry size=%d assoc=%d", name, sizeBytes, assoc))
	}
	sets := lines / assoc
	c := &Cache{sets: sets, assoc: assoc, val: val, name: name,
		ways: make([]entry, lines)}
	// Every realistic geometry has a power-of-two set count; indexing by
	// mask instead of modulo keeps an idiv out of every access.
	if sets&(sets-1) == 0 {
		c.mask, c.pow2 = uint64(sets-1), true
	}
	for i := range c.ways {
		c.ways[i].tag = noTag
	}
	return c
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Assoc returns the associativity.
func (c *Cache) Assoc() int { return c.assoc }

// Stats returns cumulative hit, miss, and stale-copy-miss counts.
func (c *Cache) Stats() (hits, misses, stale uint64) {
	return c.hits, c.misses, c.stalees
}

func (c *Cache) set(l mem.GLine) []entry {
	var s int
	if c.pow2 {
		s = int(uint64(l) & c.mask)
	} else {
		s = int(uint64(l) % uint64(c.sets))
	}
	return c.ways[s*c.assoc : (s+1)*c.assoc]
}

// Lookup probes the cache for line l. On a hit the entry is refreshed to
// most-recently-used and true is returned. A cached copy whose version or
// epoch stamp is out of date counts as a miss (the stale copy is dropped).
func (c *Cache) Lookup(l mem.GLine) bool {
	set := c.set(l)
	// Way 0 is MRU and takes the overwhelming majority of hits; resolving it
	// first skips the move-to-front shuffle (a no-op at i=0) entirely.
	if set[0].tag == l {
		if set[0].version == c.val.LineVersion(l) &&
			set[0].epoch == c.val.PageEpoch(l.Page()) {
			c.hits++
			return true
		}
		set[0].tag = noTag
		c.misses++
		c.stalees++
		return false
	}
	for i := 1; i < len(set); i++ {
		if set[i].tag != l {
			continue
		}
		if set[i].version != c.val.LineVersion(l) ||
			set[i].epoch != c.val.PageEpoch(l.Page()) {
			// Stale copy: invalidate and miss.
			set[i].tag = noTag
			c.misses++
			c.stalees++
			return false
		}
		e := set[i]
		copy(set[1:i+1], set[:i]) // move to MRU
		set[0] = e
		c.hits++
		return true
	}
	c.misses++
	return false
}

// Insert fills line l with the current validity stamps, filling an invalid
// way if one exists and evicting the LRU way otherwise. version is the
// stamp to record — pass the post-bump version for writes and the current
// version for read fills.
func (c *Cache) Insert(l mem.GLine, version uint32) {
	set := c.set(l)
	// If already present (e.g. write-update after a hit) refresh in place.
	for i := range set {
		if set[i].tag == l {
			e := entry{tag: l, version: version, epoch: c.val.PageEpoch(l.Page())}
			copy(set[1:i+1], set[:i])
			set[0] = e
			return
		}
	}
	// Prefer an invalidated way (left behind by a stale-copy lookup) over
	// evicting a live line.
	victim := len(set) - 1
	for i := range set {
		if set[i].tag == noTag {
			victim = i
			break
		}
	}
	copy(set[1:victim+1], set[:victim])
	set[0] = entry{tag: l, version: version, epoch: c.val.PageEpoch(l.Page())}
}

// Contains reports presence of a currently-valid copy without touching LRU
// state or statistics. It is used by tests and by the TLB-holder tracking
// ablation.
func (c *Cache) Contains(l mem.GLine) bool {
	set := c.set(l)
	for i := range set {
		if set[i].tag == l &&
			set[i].version == c.val.LineVersion(l) &&
			set[i].epoch == c.val.PageEpoch(l.Page()) {
			return true
		}
	}
	return false
}

// Flush empties the cache (used when a process model must simulate a cold
// start after being moved across CPUs).
func (c *Cache) Flush() {
	for i := range c.ways {
		c.ways[i].tag = noTag
	}
}
