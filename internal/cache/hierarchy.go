package cache

import "ccnuma/internal/mem"

// Level is where a reference was satisfied.
type Level int

const (
	// HitL1 means the reference hit the first-level cache (no stall).
	HitL1 Level = iota
	// HitL2 means the reference missed L1 and hit the unified second level.
	HitL2
	// Miss means the reference missed the whole hierarchy and goes to memory.
	Miss
)

// String names the level.
func (lv Level) String() string {
	switch lv {
	case HitL1:
		return "L1"
	case HitL2:
		return "L2"
	default:
		return "memory"
	}
}

// Hierarchy is one CPU's cache stack: split L1 I/D over a unified L2.
type Hierarchy struct {
	L1I, L1D, L2 *Cache
	val          *Validity
}

// NewHierarchy builds a CPU cache stack with the given L1 (per side) and L2
// capacities and associativities.
func NewHierarchy(cpu int, l1Size, l1Assoc, l2Size, l2Assoc int, val *Validity) *Hierarchy {
	return &Hierarchy{
		L1I: New(name(cpu, "l1i"), l1Size, l1Assoc, val),
		L1D: New(name(cpu, "l1d"), l1Size, l1Assoc, val),
		L2:  New(name(cpu, "l2"), l2Size, l2Assoc, val),
		val: val,
	}
}

func name(cpu int, level string) string {
	return level + "#" + string(rune('0'+cpu%10))
}

// Access runs one reference through the hierarchy, updating cache state
// (fills, LRU, and the line version for writes) and returning the level that
// satisfied it. Timing is the caller's concern.
func (h *Hierarchy) Access(l mem.GLine, kind mem.AccessKind) Level {
	l1 := h.L1D
	if kind.IsInstr() {
		l1 = h.L1I
	}
	if l1.Lookup(l) {
		if kind.IsWrite() {
			v := h.val.BumpLine(l)
			l1.Insert(l, v)
			h.L2.Insert(l, v) // write-through between L1 and L2
		}
		return HitL1
	}
	if h.L2.Lookup(l) {
		v := h.val.LineVersion(l)
		if kind.IsWrite() {
			v = h.val.BumpLine(l)
			h.L2.Insert(l, v)
		}
		l1.Insert(l, v)
		return HitL2
	}
	// Full miss: fill both levels.
	v := h.val.LineVersion(l)
	if kind.IsWrite() {
		v = h.val.BumpLine(l)
	}
	h.L2.Insert(l, v)
	l1.Insert(l, v)
	return Miss
}

// Flush empties all three caches.
func (h *Hierarchy) Flush() {
	h.L1I.Flush()
	h.L1D.Flush()
	h.L2.Flush()
}
