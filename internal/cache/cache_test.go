package cache

import (
	"testing"
	"testing/quick"

	"ccnuma/internal/mem"
	"ccnuma/internal/sim"
)

func newTestCache(t *testing.T, size, assoc, pages int) (*Cache, *Validity) {
	t.Helper()
	v := NewValidity(pages, 1)
	return New("test", size, assoc, v), v
}

func TestCacheMissThenHit(t *testing.T) {
	c, v := newTestCache(t, 4096, 2, 16)
	l := mem.GPage(3).Line(5)
	if c.Lookup(l) {
		t.Fatal("hit in empty cache")
	}
	c.Insert(l, v.LineVersion(l))
	if !c.Lookup(l) {
		t.Fatal("miss after insert")
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits %d misses, want 1/1", hits, misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	v := NewValidity(1024, 1)
	c := New("tiny", 2*mem.LineSize, 2, v) // one set, two ways
	sets := c.Sets()
	if sets != 1 {
		t.Fatalf("sets = %d, want 1", sets)
	}
	a, b, d := mem.GLine(0), mem.GLine(1), mem.GLine(2)
	c.Insert(a, 0)
	c.Insert(b, 0)
	if !c.Lookup(a) { // a becomes MRU; b is LRU
		t.Fatal("a missing")
	}
	c.Insert(d, 0) // evicts b
	if c.Contains(b) {
		t.Fatal("LRU way b survived eviction")
	}
	if !c.Contains(a) || !c.Contains(d) {
		t.Fatal("MRU way evicted instead of LRU")
	}
}

func TestCacheLookupMovesHitToMRU(t *testing.T) {
	v := NewValidity(1024, 1)
	c := New("tiny", 3*mem.LineSize, 3, v) // one set, three ways
	a, b, d, x := mem.GLine(0), mem.GLine(1), mem.GLine(2), mem.GLine(3)
	c.Insert(a, 0)
	c.Insert(b, 0)
	c.Insert(d, 0) // order MRU→LRU: d, b, a
	if !c.Lookup(a) {
		t.Fatal("a missing")
	}
	// Now a, d, b: inserting x must evict b (the LRU), not a or d.
	c.Insert(x, 0)
	if c.Contains(b) {
		t.Fatal("LRU way b survived eviction after Lookup reordered the set")
	}
	if !c.Contains(a) || !c.Contains(d) || !c.Contains(x) {
		t.Fatal("Lookup did not move the hit to MRU")
	}
}

func TestCacheInsertRefreshMovesToMRU(t *testing.T) {
	v := NewValidity(1024, 1)
	c := New("tiny", 2*mem.LineSize, 2, v) // one set, two ways
	a, b, x := mem.GLine(0), mem.GLine(1), mem.GLine(2)
	c.Insert(a, 0)
	c.Insert(b, 0) // b MRU, a LRU
	c.Insert(a, 0) // refresh in place: a back to MRU
	c.Insert(x, 0) // must evict b
	if c.Contains(b) {
		t.Fatal("re-inserted way a stayed LRU; b should have been evicted")
	}
	if !c.Contains(a) || !c.Contains(x) {
		t.Fatal("refresh-in-place insert lost a live line")
	}
}

func TestCacheInsertPrefersInvalidatedWay(t *testing.T) {
	v := NewValidity(1024, 1)
	c := New("tiny", 2*mem.LineSize, 2, v) // one set, two ways
	a, b, x := mem.GLine(0), mem.GLine(1), mem.GLine(2)
	c.Insert(a, v.LineVersion(a))
	c.Insert(b, v.LineVersion(b)) // b MRU, a LRU... then b goes stale:
	v.BumpLine(b)
	if c.Lookup(b) {
		t.Fatal("stale copy hit")
	}
	// b's way is now invalid. Inserting x must reuse it rather than evict
	// the live (and LRU) line a.
	c.Insert(x, v.LineVersion(x))
	if !c.Contains(a) {
		t.Fatal("live LRU line evicted while an invalidated way was free")
	}
	if !c.Contains(x) {
		t.Fatal("inserted line missing")
	}
}

// The per-reference cache operations sit inside the simulator's hot path;
// they must not allocate.
func TestCacheOpsZeroAllocs(t *testing.T) {
	v := NewValidity(64, 1)
	c := New("hot", 4096, 2, v)
	lines := make([]mem.GLine, 64)
	for i := range lines {
		lines[i] = mem.GPage(i % 8).Line(i % mem.LinesPerPage)
	}
	i := 0
	avg := testing.AllocsPerRun(100, func() {
		l := lines[i%len(lines)]
		if !c.Lookup(l) {
			c.Insert(l, v.LineVersion(l))
		}
		i++
	})
	if avg != 0 {
		t.Fatalf("Lookup/Insert allocate %.2f per access, want 0", avg)
	}
}

// BenchmarkCacheLookupInsert reports the per-access cost of the cache model
// with ReportAllocs pinning both operations at zero allocations.
func BenchmarkCacheLookupInsert(b *testing.B) {
	v := NewValidity(64, 1)
	c := New("hot", 4096, 2, v)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := mem.GPage(i % 8).Line(i % mem.LinesPerPage)
		if !c.Lookup(l) {
			c.Insert(l, v.LineVersion(l))
		}
	}
}

func TestCacheWriteInvalidatesOtherCopies(t *testing.T) {
	v := NewValidity(16, 1)
	c1 := New("cpu0", 4096, 2, v)
	c2 := New("cpu1", 4096, 2, v)
	l := mem.GPage(1).Line(0)
	c1.Insert(l, v.LineVersion(l))
	c2.Insert(l, v.LineVersion(l))
	// CPU1 writes: bumps the version and refreshes its own copy.
	nv := v.BumpLine(l)
	c2.Insert(l, nv)
	if c1.Lookup(l) {
		t.Fatal("stale copy hit after remote write")
	}
	if !c2.Lookup(l) {
		t.Fatal("writer's own copy did not stay valid")
	}
	_, _, stale := c1.Stats()
	if stale != 1 {
		t.Fatalf("stale misses = %d, want 1", stale)
	}
}

func TestCachePageEpochInvalidatesWholePage(t *testing.T) {
	v := NewValidity(16, 1)
	c := New("cpu0", 64*1024, 2, v)
	p := mem.GPage(2)
	for i := 0; i < mem.LinesPerPage; i++ {
		c.Insert(p.Line(i), 0)
	}
	other := mem.GPage(3).Line(0)
	c.Insert(other, 0)
	v.BumpPage(p) // migration
	for i := 0; i < mem.LinesPerPage; i++ {
		if c.Lookup(p.Line(i)) {
			t.Fatalf("line %d survived page epoch bump", i)
		}
	}
	if !c.Lookup(other) {
		t.Fatal("unrelated page was invalidated")
	}
}

func TestCacheFlush(t *testing.T) {
	c, _ := newTestCache(t, 4096, 2, 16)
	l := mem.GPage(0).Line(0)
	c.Insert(l, 0)
	c.Flush()
	if c.Contains(l) {
		t.Fatal("line survived flush")
	}
}

func TestCacheBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for size not divisible by assoc*line")
		}
	}()
	New("bad", 3*mem.LineSize, 2, NewValidity(1, 1))
}

func TestHierarchyLevels(t *testing.T) {
	v := NewValidity(64, 1)
	h := NewHierarchy(0, 2048, 2, 8192, 2, v)
	l := mem.GPage(1).Line(1)
	if got := h.Access(l, mem.DataRead); got != Miss {
		t.Fatalf("first access = %v, want memory miss", got)
	}
	if got := h.Access(l, mem.DataRead); got != HitL1 {
		t.Fatalf("second access = %v, want L1 hit", got)
	}
	// Evict l from L1 (8 sets) with lines in the same L1 set but distinct
	// L2 sets (32 sets): line indices 9, 17, 25 of the same page.
	for _, idx := range []int{9, 17, 25} {
		h.Access(mem.GPage(1).Line(idx), mem.DataRead)
	}
	if got := h.Access(l, mem.DataRead); got != HitL2 {
		t.Fatalf("access after L1 pressure = %v, want L2 hit", got)
	}
}

func TestHierarchySplitIAndD(t *testing.T) {
	v := NewValidity(64, 1)
	h := NewHierarchy(0, 2048, 2, 8192, 2, v)
	l := mem.GPage(1).Line(0)
	h.Access(l, mem.InstrFetch)
	// The same line as data misses L1D (split caches) but hits L2.
	if got := h.Access(l, mem.DataRead); got != HitL2 {
		t.Fatalf("data access after ifetch = %v, want L2 hit", got)
	}
}

func TestHierarchyWriteInvalidatesPeer(t *testing.T) {
	v := NewValidity(64, 1)
	h0 := NewHierarchy(0, 2048, 2, 8192, 2, v)
	h1 := NewHierarchy(1, 2048, 2, 8192, 2, v)
	l := mem.GPage(5).Line(3)
	h0.Access(l, mem.DataRead)
	h1.Access(l, mem.DataRead)
	if h0.Access(l, mem.DataRead) != HitL1 {
		t.Fatal("expected warm hit on cpu0")
	}
	h1.Access(l, mem.DataWrite) // invalidates cpu0's copy
	if got := h0.Access(l, mem.DataRead); got != Miss {
		t.Fatalf("cpu0 after cpu1 write = %v, want miss", got)
	}
	if got := h1.Access(l, mem.DataRead); got != HitL1 {
		t.Fatalf("writer's copy = %v, want L1 hit", got)
	}
}

func TestHierarchyWriteHitKeepsOwnCopyValid(t *testing.T) {
	v := NewValidity(64, 1)
	h := NewHierarchy(0, 2048, 2, 8192, 2, v)
	l := mem.GPage(4).Line(0)
	h.Access(l, mem.DataWrite)
	if got := h.Access(l, mem.DataWrite); got != HitL1 {
		t.Fatalf("repeat write = %v, want L1 hit", got)
	}
	if got := h.Access(l, mem.DataRead); got != HitL1 {
		t.Fatalf("read after writes = %v, want L1 hit", got)
	}
}

// Property: an entry's recorded version never exceeds the global version,
// and Lookup only hits when stamps are current.
func TestCacheValidityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRand(seed)
		v := NewValidity(8, 1)
		c := New("prop", 4096, 2, v)
		for i := 0; i < 500; i++ {
			l := mem.GPage(r.Intn(8)).Line(r.Intn(mem.LinesPerPage))
			switch r.Intn(4) {
			case 0:
				c.Insert(l, v.LineVersion(l))
			case 1:
				nv := v.BumpLine(l)
				c.Insert(l, nv)
			case 2:
				v.BumpPage(l.Page())
			case 3:
				if c.Lookup(l) {
					// A hit must imply currently-valid stamps.
					if !c.Contains(l) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
