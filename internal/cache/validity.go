// Package cache models the processor cache hierarchy: split 32 KB two-way
// L1 instruction and data caches and a unified 512 KB two-way L2, all with
// 128-byte lines, as configured for the FLASH machine in the paper.
//
// Caches are indexed by global logical line (mem.GLine) rather than physical
// address. Correctness under sharing and page movement is preserved by two
// validity stamps carried in every cache entry:
//
//   - a line version, bumped whenever any processor writes the line, which
//     invalidates all other cached copies (directory-based invalidation
//     coherence at line grain);
//   - a page epoch, bumped whenever the kernel migrates or collapses the
//     page, which invalidates every cached line of the page (the physical
//     copy moved, so physically-tagged caches would refetch).
//
// Replication does not bump the epoch: processors still mapped to the master
// keep hitting their cached lines, exactly as on real hardware where the
// master's physical address is unchanged.
package cache

import (
	"fmt"

	"ccnuma/internal/mem"
)

// Validity holds the stamps cache entries are checked against. Like the
// directory state it stands in for, it is sharded by home node: a page's
// stamps live with the node holding its master copy, mirroring FLASH's
// per-node directory controllers, and the kernel rehomes them when a
// migration or collapse moves the master. One Validity instance is shared by
// every cache in the machine, but any single page's stamps are owned by
// exactly one node — the property that lets the sharded engine treat stamp
// traffic as lane-local.
//
// A page starts unhomed (no node has ever held it) and is homed by Assign on
// first residence. Releasing a page does NOT unhome it: the stamps park on
// the last home, because cached entries carrying the old version/epoch pairs
// may outlive the residence, and resetting the stamps would let such a stale
// entry re-validate against a fresh zero epoch. Rehoming copies the stamps
// verbatim for the same reason.
type Validity struct {
	// home[p] is the shard (home node) holding page p's stamps, -1 while the
	// page has never been resident. slot[p] is the page's slot in that
	// shard's tables.
	home []int32
	slot []int32

	shards []validityShard
}

// validityShard is one home node's stamp tables, indexed by slot.
type validityShard struct {
	lineVersion []uint32 // mem.LinesPerPage entries per slot
	pageEpoch   []uint32
	free        []int32 // recycled slots (LIFO, deterministic)
}

// NewValidity sizes the stamp tables for a machine of nodes homes covering
// pages logical pages. A single-node machine has nowhere to rehome to, so
// every page is pre-homed on node 0 — the degenerate machine-wide filter,
// byte-compatible with the unsharded structure this replaces.
func NewValidity(pages, nodes int) *Validity {
	if nodes < 1 {
		nodes = 1
	}
	v := &Validity{
		home:   make([]int32, pages),
		slot:   make([]int32, pages),
		shards: make([]validityShard, nodes),
	}
	if nodes == 1 {
		sh := &v.shards[0]
		sh.lineVersion = make([]uint32, pages*mem.LinesPerPage)
		sh.pageEpoch = make([]uint32, pages)
		for p := range v.slot {
			v.slot[p] = int32(p)
		}
		return v
	}
	for p := range v.home {
		v.home[p] = -1
	}
	return v
}

// Pages returns the number of logical pages the tables cover.
func (v *Validity) Pages() int { return len(v.home) }

// Home returns the node currently holding page p's stamps, -1 while the
// page has never been resident.
func (v *Validity) Home(p mem.GPage) int { return int(v.home[p]) }

// Assign homes page p's stamps on node (modulo the shard count), rehoming —
// copying every stamp verbatim — if another node held them. The kernel
// calls it wherever the master copy's node is decided: first touch, wiring,
// migration, and a collapse that keeps a replica's frame.
func (v *Validity) Assign(p mem.GPage, node mem.NodeID) {
	dst := int32(int(node) % len(v.shards))
	if v.home[p] == dst {
		return
	}
	sh := &v.shards[dst]
	var s int32
	if n := len(sh.free); n > 0 {
		s = sh.free[n-1]
		sh.free = sh.free[:n-1]
	} else {
		s = int32(len(sh.pageEpoch))
		sh.pageEpoch = append(sh.pageEpoch, 0)
		sh.lineVersion = append(sh.lineVersion, make([]uint32, mem.LinesPerPage)...)
	}
	lines := sh.lineVersion[int(s)*mem.LinesPerPage:]
	if old := v.home[p]; old >= 0 {
		osh := &v.shards[old]
		os := v.slot[p]
		sh.pageEpoch[s] = osh.pageEpoch[os]
		copy(lines[:mem.LinesPerPage], osh.lineVersion[int(os)*mem.LinesPerPage:])
		osh.free = append(osh.free, os)
	} else {
		sh.pageEpoch[s] = 0
		for i := 0; i < mem.LinesPerPage; i++ {
			lines[i] = 0
		}
	}
	v.home[p] = dst
	v.slot[p] = s
}

// LineVersion returns the current version of a line. Lines of a
// never-resident page were never written, so they read as version zero.
//
//numalint:hotpath
//numalint:lane-confined
func (v *Validity) LineVersion(l mem.GLine) uint32 {
	p := l.Page()
	h := v.home[p]
	if h < 0 {
		return 0
	}
	sh := &v.shards[h]
	return sh.lineVersion[int(v.slot[p])*mem.LinesPerPage+int(l)%mem.LinesPerPage]
}

// BumpLine registers a write to the line and returns the new version. Every
// cached copy with an older version becomes stale. Writing a line of an
// unhomed page is a kernel bug — a write implies residence implies a home —
// and panics rather than silently minting stamps nobody owns.
//
//numalint:hotpath
//numalint:lane-confined
func (v *Validity) BumpLine(l mem.GLine) uint32 {
	p := l.Page()
	h := v.home[p]
	if h < 0 {
		unhomedWrite(l)
	}
	sh := &v.shards[h]
	i := int(v.slot[p])*mem.LinesPerPage + int(l)%mem.LinesPerPage
	sh.lineVersion[i]++
	return sh.lineVersion[i]
}

// unhomedWrite reports a write to a line of a never-resident page — a kernel
// bug (a write implies residence implies a home). Split out of BumpLine so
// the message formatting stays off the hot path.
func unhomedWrite(l mem.GLine) {
	panic(fmt.Sprintf("cache: write to line %d of unhomed page %d", l, l.Page()))
}

// PageEpoch returns the current placement epoch of a page (zero while the
// page has never been resident).
//
//numalint:hotpath
//numalint:lane-confined
func (v *Validity) PageEpoch(p mem.GPage) uint32 {
	h := v.home[p]
	if h < 0 {
		return 0
	}
	return v.shards[h].pageEpoch[v.slot[p]]
}

// BumpPage registers a migration, collapse, or release of the page,
// invalidating all cached lines of the page machine-wide. Releasing a page
// that was never resident has nothing cached to invalidate, so an unhomed
// bump is a no-op.
//
//numalint:lane-confined
func (v *Validity) BumpPage(p mem.GPage) {
	if h := v.home[p]; h >= 0 {
		v.shards[h].pageEpoch[v.slot[p]]++
	}
}
