// Package cache models the processor cache hierarchy: split 32 KB two-way
// L1 instruction and data caches and a unified 512 KB two-way L2, all with
// 128-byte lines, as configured for the FLASH machine in the paper.
//
// Caches are indexed by global logical line (mem.GLine) rather than physical
// address. Correctness under sharing and page movement is preserved by two
// validity stamps carried in every cache entry:
//
//   - a line version, bumped whenever any processor writes the line, which
//     invalidates all other cached copies (directory-based invalidation
//     coherence at line grain);
//   - a page epoch, bumped whenever the kernel migrates or collapses the
//     page, which invalidates every cached line of the page (the physical
//     copy moved, so physically-tagged caches would refetch).
//
// Replication does not bump the epoch: processors still mapped to the master
// keep hitting their cached lines, exactly as on real hardware where the
// master's physical address is unchanged.
package cache

import "ccnuma/internal/mem"

// Validity holds the machine-wide stamps that cache entries are checked
// against. One Validity instance is shared by every cache in the machine.
type Validity struct {
	lineVersion []uint32 // indexed by mem.GLine
	pageEpoch   []uint32 // indexed by mem.GPage
}

// NewValidity sizes the stamp tables for a machine with pages logical pages.
func NewValidity(pages int) *Validity {
	return &Validity{
		lineVersion: make([]uint32, pages*mem.LinesPerPage),
		pageEpoch:   make([]uint32, pages),
	}
}

// Pages returns the number of logical pages the tables cover.
func (v *Validity) Pages() int { return len(v.pageEpoch) }

// LineVersion returns the current version of a line.
func (v *Validity) LineVersion(l mem.GLine) uint32 { return v.lineVersion[l] }

// BumpLine registers a write to the line and returns the new version. Every
// cached copy with an older version becomes stale.
func (v *Validity) BumpLine(l mem.GLine) uint32 {
	v.lineVersion[l]++
	return v.lineVersion[l]
}

// PageEpoch returns the current placement epoch of a page.
func (v *Validity) PageEpoch(p mem.GPage) uint32 { return v.pageEpoch[p] }

// BumpPage registers a migration or collapse of the page, invalidating all
// cached lines of the page machine-wide.
func (v *Validity) BumpPage(p mem.GPage) {
	v.pageEpoch[p]++
}
