package cache

import (
	"testing"

	"ccnuma/internal/mem"
)

// TestValidityShardedRehome pins the sharded filter's core contract: stamps
// live with the page's home node and move verbatim when the kernel rehomes
// the page, so no cache entry's validity verdict ever depends on which
// shard holds the stamps.
func TestValidityShardedRehome(t *testing.T) {
	v := NewValidity(8, 4)
	p := mem.GPage(3)
	l := p.Line(5)

	if v.Home(p) != -1 {
		t.Fatalf("never-resident page homed on node %d", v.Home(p))
	}
	if v.LineVersion(l) != 0 || v.PageEpoch(p) != 0 {
		t.Fatal("never-resident page has non-zero stamps")
	}

	v.Assign(p, 1)
	if v.Home(p) != 1 {
		t.Fatalf("home = %d after Assign(1)", v.Home(p))
	}
	v.BumpLine(l)
	v.BumpLine(l)
	v.BumpPage(p)
	if got := v.LineVersion(l); got != 2 {
		t.Fatalf("line version = %d, want 2", got)
	}

	// Migration to node 2: every stamp must survive the move verbatim.
	v.Assign(p, 2)
	if v.Home(p) != 2 {
		t.Fatalf("home = %d after Assign(2)", v.Home(p))
	}
	if got := v.LineVersion(l); got != 2 {
		t.Fatalf("line version lost in rehome: %d, want 2", got)
	}
	if got := v.PageEpoch(p); got != 1 {
		t.Fatalf("page epoch lost in rehome: %d, want 1", got)
	}

	// The vacated slot on node 1 must hand fresh zeros to its next tenant.
	q := mem.GPage(6)
	v.Assign(q, 1)
	if got := v.LineVersion(q.Line(5)); got != 0 {
		t.Fatalf("recycled slot leaked stamps: line version %d", got)
	}
	if got := v.PageEpoch(q); got != 0 {
		t.Fatalf("recycled slot leaked stamps: epoch %d", got)
	}

	// Re-assigning the current home is a no-op, not a slot churn.
	v.Assign(p, 2)
	if got := v.LineVersion(l); got != 2 {
		t.Fatalf("same-home Assign disturbed stamps: %d", got)
	}
}

// TestValidityParkingPreservesStamps pins the release semantics: a released
// page's stamps park on its last home, so a cached entry surviving the
// release can never re-validate against reset stamps when the page comes
// back on a different node.
func TestValidityParkingPreservesStamps(t *testing.T) {
	v := NewValidity(8, 4)
	p := mem.GPage(2)
	l := p.Line(0)
	v.Assign(p, 3)
	version := v.BumpLine(l)
	epochAtCache := v.PageEpoch(p) // a cache entry stamps {version, epochAtCache}

	v.BumpPage(p) // ReleasePage's machine-wide invalidation
	if v.Home(p) != 3 {
		t.Fatalf("release unhomed the page (home %d)", v.Home(p))
	}

	// Next residence lands on node 0; the parked stamps follow.
	v.Assign(p, 0)
	if v.PageEpoch(p) == epochAtCache {
		t.Fatal("stale cache entry would re-validate: epoch reset across release")
	}
	if got := v.LineVersion(l); got != version {
		t.Fatalf("line version reset across release: %d, want %d", got, version)
	}
}

// TestValidityUnhomedBumps pins the boundary behaviour: releasing a
// never-resident page has nothing to invalidate (no-op), while writing a
// line of one is a kernel bug and panics.
func TestValidityUnhomedBumps(t *testing.T) {
	v := NewValidity(4, 2)
	v.BumpPage(1) // must not panic
	if v.Home(1) != -1 {
		t.Fatal("BumpPage homed a never-resident page")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("BumpLine on an unhomed page did not panic")
		}
	}()
	v.BumpLine(mem.GPage(1).Line(0))
}

// TestValiditySingleNodeCompat pins the degenerate machine-wide filter: one
// node pre-homes every page, so the legacy construct-and-bump pattern works
// without any Assign.
func TestValiditySingleNodeCompat(t *testing.T) {
	v := NewValidity(4, 1)
	l := mem.GPage(2).Line(7)
	if got := v.BumpLine(l); got != 1 {
		t.Fatalf("first bump = %d, want 1", got)
	}
	v.BumpPage(2)
	if v.PageEpoch(2) != 1 || v.Home(2) != 0 {
		t.Fatalf("single-node filter misbehaves: epoch %d home %d", v.PageEpoch(2), v.Home(2))
	}
}
