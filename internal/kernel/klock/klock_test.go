package klock

import "testing"

func TestUncontendedAcquire(t *testing.T) {
	l := New("x")
	if w := l.Acquire(100, 10); w != 0 {
		t.Fatalf("uncontended wait = %v", w)
	}
	s := l.Snapshot()
	if s.Acquisitions != 1 || s.Contended != 0 || s.HoldTime != 10 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestContendedAcquireWaits(t *testing.T) {
	l := New("x")
	l.Acquire(0, 100) // held until 100
	if w := l.Acquire(30, 50); w != 70 {
		t.Fatalf("wait = %v, want 70", w)
	}
	// Third acquirer queues behind both: free at 150+50=... second holder
	// runs 100..150, so third at t=60 waits 90.
	if w := l.Acquire(60, 10); w != 90 {
		t.Fatalf("wait = %v, want 90", w)
	}
	s := l.Snapshot()
	if s.Contended != 2 || s.WaitTime != 160 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestHeldAt(t *testing.T) {
	l := New("x")
	l.Acquire(0, 100)
	if !l.HeldAt(50) {
		t.Fatal("lock not held mid-critical-section")
	}
	if l.HeldAt(100) {
		t.Fatal("lock held at release instant")
	}
}

func TestSetStripes(t *testing.T) {
	s := NewSet(8)
	if s.PageLock(3) != s.PageLock(11) {
		t.Fatal("pages 3 and 11 should share a stripe with 8 stripes")
	}
	if s.PageLock(3) == s.PageLock(4) {
		t.Fatal("adjacent pages should use different stripes")
	}
	if s.Memlock == nil {
		t.Fatal("no memlock")
	}
}

func TestPageLockStatsAggregate(t *testing.T) {
	s := NewSet(4)
	s.PageLock(0).Acquire(0, 10)
	s.PageLock(1).Acquire(0, 10)
	s.PageLock(1).Acquire(5, 10) // contended
	agg := s.PageLockStats()
	if agg.Acquisitions != 3 || agg.Contended != 1 || agg.HoldTime != 30 {
		t.Fatalf("aggregate = %+v", agg)
	}
}

func TestDefaultStripeCount(t *testing.T) {
	s := NewSet(0)
	if len(s.pageLocks) != 64 {
		t.Fatalf("default stripes = %d, want 64", len(s.pageLocks))
	}
}
