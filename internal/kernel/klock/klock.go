// Package klock models kernel locks in virtual time. The paper attributes
// much of the migration/replication overhead to contention for IRIX's
// coarse VM locks — memlock (global physical-page hash table and free list),
// per-region locks, and the finer page- and pte-level locks the authors
// added. A Lock here is a FIFO resource: acquiring at virtual time t while
// the lock is held until t' costs t'-t of spin time, which the pager charges
// to the operation that waited. The simulator is single-goroutine; these are
// models, not host mutexes.
package klock

import "ccnuma/internal/sim"

// Lock is a simulated kernel spin lock. The zero value is an unheld lock.
type Lock struct {
	name   string
	freeAt sim.Time

	acquisitions uint64
	contended    uint64
	waitTime     sim.Time
	holdTime     sim.Time
}

// New returns a named lock (the name appears in statistics).
func New(name string) *Lock {
	return &Lock{name: name}
}

// Name returns the lock's name.
func (l *Lock) Name() string { return l.name }

// Acquire models acquiring the lock at virtual time now and holding it for
// hold. It returns the spin time spent waiting for the current holder (zero
// when uncontended). The caller advances its own clock by wait+hold.
func (l *Lock) Acquire(now, hold sim.Time) (wait sim.Time) {
	l.acquisitions++
	start := now
	if l.freeAt > start {
		start = l.freeAt
		wait = start - now
		l.contended++
		l.waitTime += wait
	}
	l.freeAt = start + hold
	l.holdTime += hold
	return wait
}

// HeldAt reports whether the lock is (still) held at time t.
func (l *Lock) HeldAt(t sim.Time) bool { return l.freeAt > t }

// Stats describes accumulated lock behaviour.
type Stats struct {
	Name         string
	Acquisitions uint64
	Contended    uint64
	WaitTime     sim.Time
	HoldTime     sim.Time
}

// Snapshot returns the lock's statistics.
func (l *Lock) Snapshot() Stats {
	return Stats{
		Name:         l.name,
		Acquisitions: l.acquisitions,
		Contended:    l.contended,
		WaitTime:     l.waitTime,
		HoldTime:     l.holdTime,
	}
}

// Set is the kernel's lock inventory: the global memlock plus striped page
// locks (the paper's finer-grain addition; a modest stripe count keeps the
// model cheap while still letting different pages proceed in parallel).
type Set struct {
	Memlock   *Lock
	pageLocks []*Lock
}

// NewSet builds the lock inventory with stripes page locks.
func NewSet(stripes int) *Set {
	if stripes <= 0 {
		stripes = 64
	}
	s := &Set{Memlock: New("memlock")}
	s.pageLocks = make([]*Lock, stripes)
	for i := range s.pageLocks {
		s.pageLocks[i] = New("page")
	}
	return s
}

// PageLock returns the stripe lock covering page index p.
func (s *Set) PageLock(p uint32) *Lock {
	return s.pageLocks[int(p)%len(s.pageLocks)]
}

// PageLockStats aggregates the page-lock stripes into one Stats record.
func (s *Set) PageLockStats() Stats {
	out := Stats{Name: "page"}
	for _, l := range s.pageLocks {
		st := l.Snapshot()
		out.Acquisitions += st.Acquisitions
		out.Contended += st.Contended
		out.WaitTime += st.WaitTime
		out.HoldTime += st.HoldTime
	}
	return out
}
