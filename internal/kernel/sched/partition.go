package sched

import "ccnuma/internal/mem"

// Partition implements space partitioning in the style of scheduler
// activations / process control: the machine's CPUs are divided into
// contiguous ranges, one per active job, sized proportionally to the job's
// process count. When a job enters or leaves, the ranges are recomputed and
// every job's processes are redistributed over its new range — this
// redistribution is exactly the process movement that makes static placement
// hard for the Splash workload (Section 6).
type Partition struct {
	queues
	cpus int
	jobs map[int][]*Proc // job id -> member processes
	home map[*Proc]mem.CPUID
}

// NewPartition builds a space-partitioning scheduler.
func NewPartition(cpus int) *Partition {
	return &Partition{
		queues: newQueues(cpus),
		cpus:   cpus,
		jobs:   map[int][]*Proc{},
		home:   map[*Proc]mem.CPUID{},
	}
}

// Add introduces a process and repartitions the machine (job sizes changed).
func (s *Partition) Add(p *Proc) {
	s.jobs[p.Job] = append(s.jobs[p.Job], p)
	s.repartition()
	p.LastCPU = s.home[p]
	s.push(s.home[p], p)
}

// Exit removes the process; if its job emptied, the machine is
// repartitioned and the remaining jobs spread out.
func (s *Partition) Exit(p *Proc) {
	if p.state == stateReady {
		s.remove(p)
	}
	p.state = stateExited
	members := s.jobs[p.Job]
	for i, x := range members {
		if x == p {
			s.jobs[p.Job] = append(members[:i], members[i+1:]...)
			break
		}
	}
	delete(s.home, p)
	if len(s.jobs[p.Job]) == 0 {
		delete(s.jobs, p.Job)
		s.repartition()
	}
}

// jobOrder returns active job ids in ascending order for deterministic
// range assignment.
func (s *Partition) jobOrder() []int {
	ids := make([]int, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ { // insertion sort; job count is tiny
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// repartition recomputes each job's CPU range and re-homes every process.
// Ready processes move to their new home queue immediately; running or
// blocked processes pick up the new home on their next dispatch.
func (s *Partition) repartition() {
	ids := s.jobOrder()
	if len(ids) == 0 {
		return
	}
	total := 0
	for _, id := range ids {
		total += len(s.jobs[id])
	}
	start := 0
	remaining := s.cpus
	for k, id := range ids {
		var width int
		if k == len(ids)-1 {
			width = remaining
		} else {
			width = s.cpus * len(s.jobs[id]) / total
			if width == 0 {
				width = 1
			}
			if width > remaining-(len(ids)-1-k) {
				width = remaining - (len(ids) - 1 - k)
			}
		}
		for i, p := range s.jobs[id] {
			cpu := mem.CPUID(start + i%width)
			s.rehome(p, cpu)
		}
		start += width
		remaining -= width
	}
}

func (s *Partition) rehome(p *Proc, cpu mem.CPUID) {
	old, had := s.home[p]
	s.home[p] = cpu
	if had && old == cpu {
		return
	}
	if p.state == stateReady {
		s.remove(p)
		s.push(cpu, p)
	}
}

// MakeRunnable queues the process on its job's home CPU.
//
//numalint:lane-confined
func (s *Partition) MakeRunnable(p *Proc) { s.push(s.home[p], p) }

// Next consults only the local queue: partitions do not steal across job
// boundaries.
func (s *Partition) Next(cpu mem.CPUID) *Proc {
	p := s.pop(cpu)
	if p == nil {
		return nil
	}
	return s.dispatch(p, cpu)
}

// Yield re-queues the process on its (possibly re-homed) CPU.
func (s *Partition) Yield(p *Proc) { s.push(s.home[p], p) }

// Block marks the process blocked.
func (s *Partition) Block(p *Proc) { p.state = stateBlocked }

// Migrations returns cross-CPU dispatch count.
func (s *Partition) Migrations() uint64 { return s.migrations }

// WakeCPU mirrors MakeRunnable's queue choice: the job's home CPU.
func (s *Partition) WakeCPU(p *Proc) mem.CPUID { return s.home[p] }

// IdleOn mirrors Next without its side effects: partitions never steal.
func (s *Partition) IdleOn(cpu mem.CPUID) bool { return len(s.ready[cpu]) == 0 }

// Home returns a process's current home CPU (test hook).
func (s *Partition) Home(p *Proc) mem.CPUID { return s.home[p] }
