// Package sched provides the three scheduling disciplines the paper's
// workloads use (Section 6): UNIX priority scheduling with cache affinity
// (engineering, pmake), hard pinning of processes to processors (raytrace,
// database), and space partitioning in the style of scheduler activations
// (the multiprogrammed Splash workload). Process movement between CPUs is
// what creates migration opportunities for the policy, so the schedulers
// also count cross-CPU moves.
package sched

import (
	"fmt"

	"ccnuma/internal/mem"
)

// Proc is a schedulable process.
type Proc struct {
	ID mem.ProcID
	// Pin fixes the process to a CPU when >= 0.
	Pin mem.CPUID
	// Job groups processes for space partitioning.
	Job int
	// LastCPU is where the process last ran (cache affinity; a change is a
	// process migration).
	LastCPU mem.CPUID

	state procState
}

type procState int

const (
	stateNew procState = iota
	stateReady
	stateRunning
	stateBlocked
	stateExited
)

// Scheduler places runnable processes on CPUs.
type Scheduler interface {
	// Add introduces a new runnable process.
	Add(p *Proc)
	// MakeRunnable marks a blocked process runnable again.
	MakeRunnable(p *Proc)
	// Next picks the process to run on cpu, or nil to idle. The returned
	// process is marked running.
	Next(cpu mem.CPUID) *Proc
	// Yield returns a running process to the ready state (quantum expiry).
	Yield(p *Proc)
	// Block marks a running process blocked (I/O, synchronization).
	Block(p *Proc)
	// Exit removes a process permanently.
	Exit(p *Proc)
	// Migrations returns how many times a process started on a CPU other
	// than its previous one.
	Migrations() uint64
	// WakeCPU returns the CPU whose ready queue MakeRunnable(p) would push
	// onto right now. The sharded engine uses it to route wake events to the
	// lane owning that queue; it must read only, never move the process.
	WakeCPU(p *Proc) mem.CPUID
	// IdleOn reports whether Next(cpu) would return nil right now, without
	// the side effects of calling it. The epoch planner uses it to prove an
	// idle tick will take the idle path; the answer must match what Next
	// would do given the same queue state.
	IdleOn(cpu mem.CPUID) bool
}

// queues is the shared per-CPU ready-queue machinery.
type queues struct {
	ready      [][]*Proc
	migrations uint64
}

func newQueues(cpus int) queues {
	return queues{ready: make([][]*Proc, cpus)}
}

func (q *queues) push(cpu mem.CPUID, p *Proc) {
	p.state = stateReady
	q.ready[cpu] = append(q.ready[cpu], p)
}

func (q *queues) pop(cpu mem.CPUID) *Proc {
	qq := q.ready[cpu]
	if len(qq) == 0 {
		return nil
	}
	p := qq[0]
	copy(qq, qq[1:])
	q.ready[cpu] = qq[:len(qq)-1]
	return p
}

func (q *queues) dispatch(p *Proc, cpu mem.CPUID) *Proc {
	if p.state != stateReady {
		panic(fmt.Sprintf("sched: dispatching proc %d in state %d", p.ID, p.state))
	}
	if p.LastCPU != cpu {
		q.migrations++
	}
	p.LastCPU = cpu
	p.state = stateRunning
	return p
}

// remove deletes p from whatever queue holds it (used by Exit on a ready
// process and by repartitioning).
func (q *queues) remove(p *Proc) {
	for c := range q.ready {
		for i, x := range q.ready[c] {
			if x == p {
				q.ready[c] = append(q.ready[c][:i], q.ready[c][i+1:]...)
				return
			}
		}
	}
}

// Affinity is UNIX priority scheduling with cache affinity: a runnable
// process queues on the CPU it last ran on; a process waking to a busy CPU
// is placed on an idle one instead (wakeup balancing), and an idle CPU
// steals from queues with sustained backlog. These moves are what make a
// process's pages remote (the migration opportunity).
type Affinity struct {
	queues
	// idlePolls counts consecutive empty Next calls per CPU; a lone waiter
	// is only stolen after LoneStealPolls of them, so short scheduling gaps
	// keep affinity while sustained idleness rebalances.
	idlePolls []int
	// LoneStealPolls is the idle-poll threshold before a lone waiter is
	// stolen (default 100, i.e. ~10ms of idle polling in the machine).
	LoneStealPolls int
}

// NewAffinity builds an affinity scheduler for cpus processors.
func NewAffinity(cpus int) *Affinity {
	return &Affinity{queues: newQueues(cpus), idlePolls: make([]int, cpus), LoneStealPolls: 100}
}

// Add queues the process on its LastCPU (set it before Add for initial
// placement).
func (s *Affinity) Add(p *Proc) { s.push(p.LastCPU, p) }

// MakeRunnable re-queues a blocked process on its last CPU; idle CPUs pull
// it over via stealing if the home stays busy. The epoch planner only admits
// a wake whose target queue's lane is the dispatching lane, so the enqueue
// runs inside guarded windows and must stay lane-confined.
//
//numalint:lane-confined
func (s *Affinity) MakeRunnable(p *Proc) { s.push(p.LastCPU, p) }

// Next runs the local queue first, then steals from the longest queue.
// A backlog of two or more waiters is stolen immediately (work conservation)
// while a lone waiter is only stolen after sustained idleness — cache
// affinity makes moving a briefly-waiting process a loss [VaZ91].
func (s *Affinity) Next(cpu mem.CPUID) *Proc {
	if p := s.pop(cpu); p != nil {
		s.idlePolls[cpu] = 0
		return s.dispatch(p, cpu)
	}
	s.idlePolls[cpu]++
	floor := 1
	if s.idlePolls[cpu] >= s.LoneStealPolls {
		floor = 0
	}
	best, bestLen := -1, floor
	for c := range s.ready {
		if l := len(s.ready[c]); l > bestLen {
			best, bestLen = c, l
		}
	}
	if best < 0 {
		return nil
	}
	s.idlePolls[cpu] = 0
	return s.dispatch(s.pop(mem.CPUID(best)), cpu)
}

// Yield re-queues an expired process on the CPU it ran on.
func (s *Affinity) Yield(p *Proc) { s.push(p.LastCPU, p) }

// Block marks the process blocked.
func (s *Affinity) Block(p *Proc) { p.state = stateBlocked }

// Exit removes the process.
func (s *Affinity) Exit(p *Proc) {
	if p.state == stateReady {
		s.remove(p)
	}
	p.state = stateExited
}

// Rebalance moves one waiting process from the most loaded ready queue to
// the least loaded one. The machine invokes it periodically, modelling the
// slow shuffle UNIX priority decay produces in a multiprogrammed system —
// the process movement that strands private pages on old nodes.
func (s *Affinity) Rebalance() bool {
	longest, ln := -1, 0
	shortest, sn := -1, 1<<30
	for c := range s.ready {
		if l := len(s.ready[c]); l > ln {
			longest, ln = c, l
		}
		if l := len(s.ready[c]); l < sn {
			shortest, sn = c, l
		}
	}
	if longest < 0 || shortest < 0 || longest == shortest || ln <= sn {
		return false
	}
	p := s.pop(mem.CPUID(longest))
	if p == nil {
		return false
	}
	s.push(mem.CPUID(shortest), p)
	return true
}

// Migrations returns cross-CPU dispatch count.
func (s *Affinity) Migrations() uint64 { return s.migrations }

// WakeCPU mirrors MakeRunnable's queue choice: the last CPU.
func (s *Affinity) WakeCPU(p *Proc) mem.CPUID { return p.LastCPU }

// IdleOn mirrors Next without its side effects: the CPU idles only when its
// own queue is empty and no other queue has enough backlog to steal from
// (the floor Next would use after this poll's idlePolls increment).
func (s *Affinity) IdleOn(cpu mem.CPUID) bool {
	if len(s.ready[cpu]) > 0 {
		return false
	}
	floor := 1
	if s.idlePolls[cpu]+1 >= s.LoneStealPolls {
		floor = 0
	}
	for c := range s.ready {
		if len(s.ready[c]) > floor {
			return false
		}
	}
	return true
}

// Pinned runs each process only on its Pin CPU (raytrace's one-process-per-
// processor and the database's engine-per-CPU setups).
type Pinned struct {
	queues
}

// NewPinned builds a pinned scheduler.
func NewPinned(cpus int) *Pinned {
	return &Pinned{queues: newQueues(cpus)}
}

// Add queues the process on its pinned CPU.
func (s *Pinned) Add(p *Proc) {
	if p.Pin < 0 {
		panic("sched: unpinned proc on pinned scheduler")
	}
	p.LastCPU = p.Pin
	s.push(p.Pin, p)
}

// MakeRunnable re-queues on the pin.
//
//numalint:lane-confined
func (s *Pinned) MakeRunnable(p *Proc) { s.push(p.Pin, p) }

// Next only consults the local queue.
func (s *Pinned) Next(cpu mem.CPUID) *Proc {
	p := s.pop(cpu)
	if p == nil {
		return nil
	}
	return s.dispatch(p, cpu)
}

// Yield re-queues on the pin.
func (s *Pinned) Yield(p *Proc) { s.push(p.Pin, p) }

// Block marks the process blocked.
func (s *Pinned) Block(p *Proc) { p.state = stateBlocked }

// Exit removes the process.
func (s *Pinned) Exit(p *Proc) {
	if p.state == stateReady {
		s.remove(p)
	}
	p.state = stateExited
}

// Migrations is always zero for pinned scheduling.
func (s *Pinned) Migrations() uint64 { return s.migrations }

// WakeCPU mirrors MakeRunnable's queue choice: the pin.
func (s *Pinned) WakeCPU(p *Proc) mem.CPUID { return p.Pin }

// IdleOn mirrors Next without its side effects: pinned CPUs never steal.
func (s *Pinned) IdleOn(cpu mem.CPUID) bool { return len(s.ready[cpu]) == 0 }
