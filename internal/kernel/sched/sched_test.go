package sched

import (
	"testing"

	"ccnuma/internal/mem"
)

func TestAffinityPrefersLastCPU(t *testing.T) {
	s := NewAffinity(4)
	p := &Proc{ID: 1, Pin: -1, LastCPU: 2}
	s.Add(p)
	if got := s.Next(2); got != p {
		t.Fatalf("Next(2) = %v", got)
	}
	if s.Migrations() != 0 {
		t.Fatal("affinity dispatch counted as migration")
	}
	s.Yield(p)
	if got := s.Next(2); got != p {
		t.Fatal("yielded process not re-queued on its CPU")
	}
}

func TestAffinityStealingMoves(t *testing.T) {
	s := NewAffinity(2)
	p1 := &Proc{ID: 1, Pin: -1, LastCPU: 0}
	p2 := &Proc{ID: 2, Pin: -1, LastCPU: 0}
	p3 := &Proc{ID: 3, Pin: -1, LastCPU: 0}
	s.Add(p1)
	s.Add(p2)
	s.Add(p3)
	if s.Next(0) != p1 {
		t.Fatal("local dispatch failed")
	}
	// Two waiters remain on CPU 0's queue: an idle CPU 1 steals the head.
	if got := s.Next(1); got != p2 {
		t.Fatalf("idle CPU did not steal: %v", got)
	}
	if s.Migrations() != 1 {
		t.Fatalf("migrations = %d, want 1", s.Migrations())
	}
	if p2.LastCPU != 1 {
		t.Fatal("stolen process LastCPU not updated")
	}
}

func TestAffinityNoStealOfLoneWaiter(t *testing.T) {
	s := NewAffinity(2)
	p1 := &Proc{ID: 1, Pin: -1, LastCPU: 0}
	s.Add(p1)
	if s.Next(1) != nil {
		t.Fatal("stole a lone waiter (affinity should keep it home)")
	}
	if s.Next(0) != p1 {
		t.Fatal("home dispatch failed")
	}
}

func TestAffinityBlockAndWake(t *testing.T) {
	s := NewAffinity(2)
	p := &Proc{ID: 1, Pin: -1, LastCPU: 0}
	s.Add(p)
	s.Next(0)
	s.Block(p)
	if s.Next(0) != nil {
		t.Fatal("blocked process dispatched")
	}
	s.MakeRunnable(p)
	if s.Next(0) != p {
		t.Fatal("woken process not dispatched")
	}
}

func TestAffinityExitOfReadyProc(t *testing.T) {
	s := NewAffinity(1)
	p := &Proc{ID: 1, Pin: -1}
	s.Add(p)
	s.Exit(p)
	if s.Next(0) != nil {
		t.Fatal("exited process dispatched")
	}
}

func TestPinnedNeverSteals(t *testing.T) {
	s := NewPinned(2)
	p := &Proc{ID: 1, Pin: 0}
	s.Add(p)
	if s.Next(1) != nil {
		t.Fatal("pinned scheduler stole across CPUs")
	}
	if s.Next(0) != p {
		t.Fatal("pinned dispatch failed")
	}
	s.Yield(p)
	if s.Next(0) != p {
		t.Fatal("pinned yield/redispatch failed")
	}
	if s.Migrations() != 0 {
		t.Fatal("pinned scheduler recorded migrations")
	}
}

func TestPinnedRejectsUnpinned(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unpinned proc accepted")
		}
	}()
	NewPinned(1).Add(&Proc{ID: 1, Pin: -1})
}

func TestPartitionSplitsMachine(t *testing.T) {
	s := NewPartition(8)
	var jobA, jobB []*Proc
	for i := 0; i < 4; i++ {
		p := &Proc{ID: mem.ProcID(i), Pin: -1, Job: 1}
		jobA = append(jobA, p)
		s.Add(p)
	}
	// Job 1 alone: spread over all 8 CPUs.
	homesA := map[mem.CPUID]bool{}
	for _, p := range jobA {
		homesA[s.Home(p)] = true
	}
	if len(homesA) != 4 {
		t.Fatalf("job A homes = %v, want 4 distinct", homesA)
	}
	for i := 4; i < 8; i++ {
		p := &Proc{ID: mem.ProcID(i), Pin: -1, Job: 2}
		jobB = append(jobB, p)
		s.Add(p)
	}
	// Two equal jobs: each confined to half the machine, disjointly.
	aCPUs := map[mem.CPUID]bool{}
	for _, p := range jobA {
		aCPUs[s.Home(p)] = true
	}
	for _, p := range jobB {
		if aCPUs[s.Home(p)] {
			t.Fatalf("job B shares CPU %d with job A", s.Home(p))
		}
	}
}

func TestPartitionRepartitionOnExit(t *testing.T) {
	s := NewPartition(4)
	a := &Proc{ID: 1, Pin: -1, Job: 1}
	b := &Proc{ID: 2, Pin: -1, Job: 2}
	s.Add(a)
	s.Add(b)
	homeA := s.Home(a)
	// Dispatch and exit job 2; job 1 should be re-homed over the whole
	// machine (here: still a valid home, possibly moved).
	got := s.Next(s.Home(b))
	if got != b {
		t.Fatalf("dispatch of b failed: %v", got)
	}
	s.Exit(b)
	_ = homeA
	if s.Home(a) >= 4 {
		t.Fatal("invalid home after repartition")
	}
	// a must still be dispatchable from its home.
	if p := s.Next(s.Home(a)); p != a {
		t.Fatalf("a not dispatchable after repartition: %v", p)
	}
}

func TestPartitionYieldFollowsNewHome(t *testing.T) {
	s := NewPartition(4)
	a := &Proc{ID: 1, Pin: -1, Job: 1}
	s.Add(a)
	if s.Next(s.Home(a)) != a {
		t.Fatal("dispatch failed")
	}
	// New job arrives while a runs: a's home may change; Yield must queue
	// at the new home.
	b := &Proc{ID: 2, Pin: -1, Job: 2}
	s.Add(b)
	s.Yield(a)
	if p := s.Next(s.Home(a)); p != a {
		t.Fatalf("a not at its new home: %v", p)
	}
}

func TestQueuesFIFO(t *testing.T) {
	s := NewAffinity(1)
	p1 := &Proc{ID: 1, Pin: -1}
	p2 := &Proc{ID: 2, Pin: -1}
	s.Add(p1)
	s.Add(p2)
	if s.Next(0) != p1 || func() *Proc { s.Yield(p1); return s.Next(0) }() != p2 {
		t.Fatal("ready queue is not FIFO")
	}
}

func TestPartitionMakeRunnableAfterBlock(t *testing.T) {
	s := NewPartition(4)
	a := &Proc{ID: 1, Pin: -1, Job: 1}
	s.Add(a)
	if s.Next(s.Home(a)) != a {
		t.Fatal("dispatch failed")
	}
	s.Block(a)
	if s.Next(s.Home(a)) != nil {
		t.Fatal("blocked proc dispatched")
	}
	s.MakeRunnable(a)
	if s.Next(s.Home(a)) != a {
		t.Fatal("woken proc not at home")
	}
}

func TestPartitionExitOfReadyProc(t *testing.T) {
	s := NewPartition(4)
	a := &Proc{ID: 1, Pin: -1, Job: 1}
	b := &Proc{ID: 2, Pin: -1, Job: 1}
	s.Add(a)
	s.Add(b)
	s.Exit(a) // exits while ready: must leave the queues
	for cpu := 0; cpu < 4; cpu++ {
		if p := s.Next(mem.CPUID(cpu)); p == a {
			t.Fatal("exited proc dispatched")
		}
	}
}

func TestPartitionMigrationsCounted(t *testing.T) {
	s := NewPartition(4)
	a := &Proc{ID: 1, Pin: -1, Job: 1}
	s.Add(a)
	if s.Next(s.Home(a)) != a {
		t.Fatal("dispatch failed")
	}
	// A second job shrinks job 1's range; a's home may move. After the
	// yield the dispatch from the new home counts as a migration iff the
	// CPU changed.
	b := &Proc{ID: 2, Pin: -1, Job: 2}
	s.Add(b)
	s.Yield(a)
	home := s.Home(a)
	got := s.Next(home)
	if got != a {
		t.Fatalf("a not dispatchable: %v", got)
	}
	_ = s.Migrations() // must not panic; value depends on repartition layout
}

func TestAffinityRebalanceMovesWaiter(t *testing.T) {
	s := NewAffinity(2)
	p1 := &Proc{ID: 1, Pin: -1, LastCPU: 0}
	p2 := &Proc{ID: 2, Pin: -1, LastCPU: 0}
	s.Add(p1)
	s.Add(p2)
	if !s.Rebalance() {
		t.Fatal("rebalance found no imbalance")
	}
	if s.Next(1) != p1 {
		t.Fatal("moved waiter not on the short queue")
	}
	// cpu0 still holds a waiter while cpu1's queue is empty: the periodic
	// balancer is allowed to move it too (this slow shuffle, at most one
	// process per balancing tick, is the process migration the policy
	// depends on).
	if !s.Rebalance() {
		t.Fatal("lone waiter never rebalanced")
	}
	if s.Next(1) != p2 {
		t.Fatal("rebalanced waiter not dispatchable at its new home")
	}
	// Nothing waits anywhere: nothing to move.
	if s.Rebalance() {
		t.Fatal("rebalance acted with empty queues")
	}
}

func TestAffinityRebalanceNoWaiters(t *testing.T) {
	s := NewAffinity(2)
	if s.Rebalance() {
		t.Fatal("rebalance acted on an empty machine")
	}
}
