package pager

import (
	"testing"

	"ccnuma/internal/cache"
	"ccnuma/internal/directory"
	"ccnuma/internal/kernel/alloc"
	"ccnuma/internal/kernel/klock"
	"ccnuma/internal/kernel/vm"
	"ccnuma/internal/mem"
	"ccnuma/internal/policy"
	"ccnuma/internal/sim"
	"ccnuma/internal/stats"
	"ccnuma/internal/topology"
)

const tPages = 64

type fixture struct {
	cfg      topology.Config
	alloc    *alloc.Allocator
	vmm      *vm.VM
	counters *directory.Counters
	pg       *Pager
	bd       stats.Breakdown
	flushes  int
}

func newFixture(t *testing.T, params policy.Params) *fixture {
	t.Helper()
	cfg := topology.CCNUMA()
	cfg.MemoryPerNode = 64 * 4096 // 64 frames per node
	f := &fixture{cfg: cfg}
	f.alloc = alloc.New(cfg.Nodes, cfg.FramesPerNode())
	val := cache.NewValidity(tPages, 1)
	f.vmm = vm.New(tPages, cfg.Nodes, f.alloc, val, vm.FirstTouch)
	f.counters = directory.NewCounters(tPages, cfg.TotalCPUs(), params.Trigger, 4, 1, nil)
	f.pg = New(cfg, klock.NewSet(16), f.alloc, f.vmm, f.counters, params)
	f.pg.Flush = func(now sim.Time, initiator mem.CPUID, pages []mem.GPage) sim.Time {
		f.flushes++
		return cfg.Kernel.TLBFlushWait
	}
	return f
}

// touch maps a page for a fresh process from the given node.
func (f *fixture) touch(t *testing.T, page mem.GPage, node mem.NodeID) mem.ProcID {
	t.Helper()
	p := f.vmm.AddProcess()
	f.vmm.Touch(p, page, node)
	return p
}

// heat records n misses from cpu to page (all remote-armed).
func (f *fixture) heat(page mem.GPage, cpu mem.CPUID, n int, write bool) {
	for i := 0; i < n; i++ {
		f.counters.Record(page, cpu, write, true)
	}
}

func TestMigrationOfUnsharedHotPage(t *testing.T) {
	f := newFixture(t, policy.Base())
	f.touch(t, 3, 0) // master on node 0
	f.heat(3, 5, 200, false)

	dt := f.pg.HandleBatch(0, 5, []directory.HotRef{{Page: 3, CPU: 5}}, &f.bd)
	if dt <= 0 {
		t.Fatal("no handler time charged")
	}
	if f.vmm.MasterNode(3) != f.cfg.NodeOf(5) {
		t.Fatalf("page not migrated to node %d", f.cfg.NodeOf(5))
	}
	if f.pg.Actions.Migrations != 1 {
		t.Fatalf("actions = %+v", f.pg.Actions)
	}
	if f.flushes != 1 {
		t.Fatalf("flushes = %d", f.flushes)
	}
	if f.counters.Miss(3, 5) != 0 {
		t.Fatal("counters not cleared after action")
	}
	if err := f.vmm.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReplicationCoversSharingNodes(t *testing.T) {
	f := newFixture(t, policy.Base())
	f.touch(t, 3, 0)
	// Three remote CPUs read the page hard; read-only (no writes).
	f.heat(3, 2, 200, false)
	f.heat(3, 4, 100, false)
	f.heat(3, 6, 100, false)

	f.pg.HandleBatch(0, 2, []directory.HotRef{{Page: 3, CPU: 2}}, &f.bd)
	if f.pg.Actions.Replicas != 1 {
		t.Fatalf("actions = %+v", f.pg.Actions)
	}
	for _, n := range []mem.NodeID{2, 4, 6} {
		if !f.vmm.HasReplicaOn(3, n) {
			t.Errorf("no replica on sharing node %d", n)
		}
	}
	if f.vmm.HasReplicaOn(3, 7) {
		t.Error("replica on a node that never missed")
	}
	if err := f.vmm.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteSharedPageNotReplicated(t *testing.T) {
	f := newFixture(t, policy.Base())
	f.touch(t, 3, 0)
	f.heat(3, 2, 200, true) // writes exceed the write threshold
	f.heat(3, 4, 100, false)

	f.pg.HandleBatch(0, 2, []directory.HotRef{{Page: 3, CPU: 2}}, &f.bd)
	if f.pg.Actions.Replicas != 0 || f.pg.Actions.Migrations != 0 {
		t.Fatalf("write-shared page moved: %+v", f.pg.Actions)
	}
	if f.pg.Actions.ByReason[policy.ReasonWriteShared] != 1 {
		t.Fatalf("reason accounting: %+v", f.pg.Actions.ByReason)
	}
}

func TestNoPageWhenNodeFull(t *testing.T) {
	f := newFixture(t, policy.Base())
	f.touch(t, 3, 0)
	// Exhaust node 5.
	for f.alloc.FreeOn(5) > 0 {
		f.alloc.AllocOn(5, alloc.Base)
	}
	f.heat(3, 5, 200, false)
	f.pg.HandleBatch(0, 5, []directory.HotRef{{Page: 3, CPU: 5}}, &f.bd)
	if f.pg.Actions.NoPage != 1 {
		t.Fatalf("actions = %+v", f.pg.Actions)
	}
	if f.vmm.MasterNode(3) != 0 {
		t.Fatal("page moved despite allocation failure")
	}
}

func TestMigrationReclaimsReplicaUnderPressure(t *testing.T) {
	f := newFixture(t, policy.Base())
	f.touch(t, 3, 0)
	// Page 9 has a replica on node 5; node 5 is otherwise full.
	f.touch(t, 9, 0)
	rep := f.alloc.AllocOn(5, alloc.Replica)
	if err := f.vmm.Replicate(9, rep); err != nil {
		t.Fatal(err)
	}
	for f.alloc.FreeOn(5) > 0 {
		f.alloc.AllocOn(5, alloc.Base)
	}
	f.heat(3, 5, 200, false)
	f.pg.HandleBatch(0, 5, []directory.HotRef{{Page: 3, CPU: 5}}, &f.bd)
	if f.pg.Actions.Migrations != 1 {
		t.Fatalf("migration did not reclaim a replica: %+v", f.pg.Actions)
	}
	if f.vmm.HasReplicaOn(9, 5) {
		t.Fatal("replica survived reclamation")
	}
}

func TestWiredPageUntouched(t *testing.T) {
	f := newFixture(t, policy.Base())
	f.vmm.Wire(7, 0)
	f.heat(7, 3, 200, false)
	f.pg.HandleBatch(0, 3, []directory.HotRef{{Page: 7, CPU: 3}}, &f.bd)
	if f.pg.Actions.ByReason[policy.ReasonWired] != 1 {
		t.Fatalf("wired page not skipped: %+v", f.pg.Actions)
	}
}

func TestRemapPicksUpExistingReplica(t *testing.T) {
	f := newFixture(t, policy.Base())
	owner := f.touch(t, 3, 0)
	_ = owner
	// A process on node 5 maps the master...
	p5 := f.touch(t, 3, 5)
	// ...then a replica appears on node 5 (without remapping p5's pte, as
	// before the fix the paper describes for Splash).
	rep := f.alloc.AllocOn(5, alloc.Replica)
	if err := f.vmm.Replicate(3, rep); err != nil {
		t.Fatal(err)
	}
	// Force the stale mapping: point p5 back at the master.
	f.vmm.Remap(p5, 3, 0)
	f.vmm.Locate = func(pid mem.ProcID) mem.NodeID {
		if pid == p5 {
			return 5
		}
		return 0
	}
	f.heat(3, 5, 200, false)
	f.pg.HandleBatch(0, 5, []directory.HotRef{{Page: 3, CPU: 5}}, &f.bd)
	if f.pg.Actions.Remaps != 1 {
		t.Fatalf("no remap action: %+v", f.pg.Actions)
	}
	if f.vmm.PTE(p5, 3).PFN != rep {
		t.Fatal("pte still points at the remote master")
	}
}

func TestBatchSingleFlush(t *testing.T) {
	f := newFixture(t, policy.Base())
	var batch []directory.HotRef
	for i := 0; i < 4; i++ {
		pg := mem.GPage(10 + i)
		f.touch(t, pg, 0)
		f.heat(pg, 5, 200, false)
		batch = append(batch, directory.HotRef{Page: pg, CPU: 5})
	}
	f.pg.HandleBatch(0, 5, batch, &f.bd)
	if f.flushes != 1 {
		t.Fatalf("flushes = %d, want 1 for the whole batch", f.flushes)
	}
	if f.pg.Actions.Migrations != 4 {
		t.Fatalf("actions = %+v", f.pg.Actions)
	}
}

func TestCollapseWrite(t *testing.T) {
	f := newFixture(t, policy.Base())
	f.touch(t, 3, 0)
	rep := f.alloc.AllocOn(5, alloc.Replica)
	if err := f.vmm.Replicate(3, rep); err != nil {
		t.Fatal(err)
	}
	dt := f.pg.CollapseWrite(0, 5, 3, &f.bd)
	if dt <= 0 {
		t.Fatal("no collapse time charged")
	}
	if len(f.vmm.Page(3).Replicas) != 0 {
		t.Fatal("replicas survive collapse")
	}
	if f.vmm.MasterNode(3) != 5 {
		t.Fatal("collapse should keep the writer's copy")
	}
	if f.pg.Actions.Collapses != 1 {
		t.Fatalf("collapse not counted")
	}
	if f.flushes != 1 {
		t.Fatal("collapse must flush TLBs")
	}
}

func TestTable5LatencyAccounting(t *testing.T) {
	f := newFixture(t, policy.Base())
	f.touch(t, 3, 0)
	f.heat(3, 5, 200, false)
	f.pg.HandleBatch(0, 5, []directory.HotRef{{Page: 3, CPU: 5}}, &f.bd)

	ol := f.bd.Pager.OpLatency[stats.OpMigrate]
	if ol.Count != 1 {
		t.Fatalf("op count = %d", ol.Count)
	}
	// Total latency must equal the sum of the per-step latencies.
	var sum sim.Time
	for _, s := range ol.Step {
		sum += s
	}
	if sum != ol.Total {
		t.Fatalf("step sum %v != total %v", sum, ol.Total)
	}
	// And the uncontended migration should land in the Table-5 band once
	// scaled back to paper-equivalent microseconds.
	us := ol.MeanTotal() / f.cfg.CostScale
	if us < 250 || us > 700 {
		t.Fatalf("paper-equivalent migration latency = %.1fus, want 250-700", us)
	}
}

func TestTable6OverheadSums(t *testing.T) {
	f := newFixture(t, policy.Base())
	f.touch(t, 3, 0)
	f.heat(3, 5, 200, false)
	f.pg.HandleBatch(0, 5, []directory.HotRef{{Page: 3, CPU: 5}}, &f.bd)
	total := f.bd.Pager.Total()
	if total <= 0 {
		t.Fatal("no overhead recorded")
	}
	var pctSum float64
	for fn := 0; fn < stats.NumPagerFuncs; fn++ {
		pctSum += f.bd.Pager.Percent(stats.PagerFunc(fn))
	}
	if pctSum < 99.9 || pctSum > 100.1 {
		t.Fatalf("overhead percentages sum to %v", pctSum)
	}
}

func TestResetIntervalClearsState(t *testing.T) {
	f := newFixture(t, policy.Base())
	f.touch(t, 3, 0)
	f.heat(3, 5, 50, true)
	f.vmm.Page(3).MigCount = 2
	f.pg.ResetInterval()
	if f.counters.Miss(3, 5) != 0 || f.counters.Writes(3) != 0 {
		t.Fatal("counters survive reset")
	}
	if f.vmm.Page(3).MigCount != 0 {
		t.Fatal("migrate counter survives reset")
	}
}

func TestMigrationOnlyPolicyIgnoresShared(t *testing.T) {
	f := newFixture(t, policy.Base().MigrationOnly())
	f.touch(t, 3, 0)
	f.heat(3, 2, 200, false)
	f.heat(3, 4, 100, false)
	f.pg.HandleBatch(0, 2, []directory.HotRef{{Page: 3, CPU: 2}}, &f.bd)
	if f.pg.Actions.Replicas != 0 {
		t.Fatal("migration-only policy replicated")
	}
	if f.pg.Actions.ByReason[policy.ReasonDisabled] != 1 {
		t.Fatalf("reason accounting: %+v", f.pg.Actions.ByReason)
	}
}
