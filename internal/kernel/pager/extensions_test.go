package pager

import (
	"testing"

	"ccnuma/internal/directory"
	"ccnuma/internal/kernel/alloc"
	"ccnuma/internal/policy"
	"ccnuma/internal/sim"
)

func TestAdaptiveTriggerRaisesUnderOverhead(t *testing.T) {
	f := newFixture(t, policy.Base())
	f.pg.Adaptive = true
	// Some real pager activity, then force the interval's overhead over the
	// adaptation ceiling.
	f.touch(t, 3, 0)
	f.heat(3, 5, 200, false)
	f.pg.HandleBatch(0, 5, []directory.HotRef{{Page: 3, CPU: 5}}, &f.bd)
	f.pg.intervalOverhead = 100 * sim.Millisecond // 12.5% of 8x100ms
	before := f.pg.Params().Trigger
	f.pg.ResetInterval()
	after := f.pg.Params().Trigger
	if after <= before {
		t.Fatalf("trigger did not rise under heavy overhead: %d -> %d", before, after)
	}
	if f.counters.Trigger() != after {
		t.Fatal("counters trigger out of sync")
	}
	if len(f.pg.TriggerTrace) != 1 || f.pg.TriggerTrace[0] != after {
		t.Fatalf("trigger trace = %v", f.pg.TriggerTrace)
	}
}

func TestAdaptiveTriggerLowersWhenIdle(t *testing.T) {
	f := newFixture(t, policy.Base())
	f.pg.Adaptive = true
	before := f.pg.Params().Trigger
	f.pg.ResetInterval() // no overhead at all this interval
	if after := f.pg.Params().Trigger; after >= before {
		t.Fatalf("trigger did not drop in an idle interval: %d -> %d", before, after)
	}
}

func TestAdaptiveTriggerClamped(t *testing.T) {
	f := newFixture(t, policy.Base().WithTrigger(20))
	f.pg.Adaptive = true
	for i := 0; i < 20; i++ {
		f.pg.ResetInterval() // always lowering
	}
	if got := f.pg.Params().Trigger; got < 16 {
		t.Fatalf("trigger below floor: %d", got)
	}
	f2 := newFixture(t, policy.Base().WithTrigger(400))
	f2.pg.Adaptive = true
	for i := 0; i < 20; i++ {
		f2.pg.intervalOverhead = sim.Second // force "too expensive"
		f2.pg.ResetInterval()
	}
	if got := f2.pg.Params().Trigger; got > 512 {
		t.Fatalf("trigger above ceiling: %d", got)
	}
}

func TestReclaimColdReplicas(t *testing.T) {
	f := newFixture(t, policy.Base())
	// Page 3: replicated and still warm (counters above sharing).
	f.touch(t, 3, 0)
	warm := f.alloc.AllocOn(2, alloc.Replica)
	if err := f.vmm.Replicate(3, warm); err != nil {
		t.Fatal(err)
	}
	f.heat(3, 2, 100, false)
	// Page 9: replicated but cold this interval.
	f.touch(t, 9, 0)
	cold := f.alloc.AllocOn(4, alloc.Replica)
	if err := f.vmm.Replicate(9, cold); err != nil {
		t.Fatal(err)
	}

	dt := f.pg.ReclaimColdReplicas(0, 0, &f.bd)
	if dt <= 0 {
		t.Fatal("no reclamation time charged")
	}
	if len(f.vmm.Page(9).Replicas) != 0 {
		t.Fatal("cold replica survived")
	}
	if len(f.vmm.Page(3).Replicas) != 1 {
		t.Fatal("warm replica was reclaimed")
	}
	if f.flushes != 1 {
		t.Fatalf("flushes = %d, want 1", f.flushes)
	}
	if err := f.vmm.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Nothing cold left: the next scan is free.
	if dt := f.pg.ReclaimColdReplicas(0, 0, &f.bd); dt != 0 {
		t.Fatalf("second reclaim charged %v", dt)
	}
}

func TestMigrateWriteSharedExtension(t *testing.T) {
	params := policy.Base()
	params.MigrateWriteShared = true
	f := newFixture(t, params)
	f.touch(t, 3, 0)
	// CPU 5 writes hard (hottest); CPU 2 also above sharing threshold.
	f.heat(3, 5, 200, true)
	f.heat(3, 2, 100, true)
	f.pg.HandleBatch(0, 5, []directory.HotRef{{Page: 3, CPU: 5}}, &f.bd)
	if f.pg.Actions.Migrations != 1 {
		t.Fatalf("write-shared page not migrated under the extension: %+v", f.pg.Actions)
	}
	if f.vmm.MasterNode(3) != f.cfg.NodeOf(5) {
		t.Fatal("page not moved to the heaviest writer")
	}
	if f.pg.Actions.Replicas != 0 {
		t.Fatal("write-shared page replicated")
	}
}

func TestMigrateWriteSharedOnlyToHottest(t *testing.T) {
	params := policy.Base()
	params.MigrateWriteShared = true
	f := newFixture(t, params)
	f.touch(t, 3, 0)
	// CPU 2 is the heaviest writer; the trigger fires on CPU 5. Moving to 5
	// would chase the wrong processor, so the policy declines.
	f.heat(3, 2, 250, true)
	f.heat(3, 5, 150, true)
	f.pg.HandleBatch(0, 5, []directory.HotRef{{Page: 3, CPU: 5}}, &f.bd)
	if f.pg.Actions.Migrations != 0 {
		t.Fatalf("page migrated toward a non-hottest CPU: %+v", f.pg.Actions)
	}
}

func TestGroupedCountersSharedColumn(t *testing.T) {
	c := directory.NewGroupedCounters(8, 8, 2, 100, 1, 1, nil)
	if c.Groups() != 4 {
		t.Fatalf("groups = %d", c.Groups())
	}
	c.Record(1, 0, false, true)
	c.Record(1, 1, false, true) // same group as CPU 0
	if c.Miss(1, 0) != 2 || c.Miss(1, 1) != 2 {
		t.Fatalf("grouped counter = %d/%d, want shared 2", c.Miss(1, 0), c.Miss(1, 1))
	}
	if c.Miss(1, 2) != 0 {
		t.Fatal("neighbouring group polluted")
	}
	if len(c.MissRow(1)) != 4 {
		t.Fatalf("row length = %d", len(c.MissRow(1)))
	}
	if c.GroupOf(7) != 3 || c.GroupOf(0) != 0 {
		t.Fatal("group mapping wrong")
	}
}
