package pager

import (
	"ccnuma/internal/mem"
	"ccnuma/internal/policy"
	"ccnuma/internal/sim"
	"ccnuma/internal/stats"
)

// Two-phase copy protocol.
//
// Steps 7-8 of Figure 2 move page data and then link the new frame into the
// VM. On a lane-confined engine those two halves touch state owned by two
// different nodes: the copy charges work at the *destination* node (the frame
// being filled), while the mapping update mutates the master page's metadata,
// which lives with the page's *home* node. Rather than letting one handler
// reach across both, the work is split into an explicit message exchange —
// a prepare phase addressed to the destination and a commit phase addressed
// to the home — with phaseMsg as the wire format. Today's serial HandleBatch
// drives both phases back-to-back in the original order, so the cost
// accounting is byte-identical to the fused loop it replaced; a sharded
// driver can instead journal each phase to its owning lane.
//
// phaseMsg names the pending op by index, not pointer: pg.ops is a reusable
// buffer that acquireOp may reallocate, so a pointer captured at decision
// time could dangle by the time the phase runs.
type phaseMsg struct {
	opIdx int
	frame mem.PFN
}

// prepareCopy is phase one, executed at the destination node: charge the
// page-copy cost for filling m.frame. It never touches master metadata, so
// it is safe on the destination's lane.
//
//numalint:lane-confined
func (pg *Pager) prepareCopy(m phaseMsg, t sim.Time, bd *stats.Breakdown) sim.Time {
	op := &pg.ops[m.opIdx]
	cc := pg.cfg.CopyCost()
	t += cc
	bd.Pager.Add(stats.FnPageCopy, cc)
	bd.Pager.AddOpStep(op.kind, stats.FnPageCopy, cc)
	op.latency += cc
	return t
}

// commitCopy is phase two, executed at the master page's home node: link the
// prepared frame into the VM (migration re-points the master, replication
// adds a replica) and charge the policy-end bookkeeping. A page whose state
// changed between decision and commit (e.g. a collapse raced in) rejects the
// commit; the prepared frame is returned to its node's allocator and the
// phase reports ok=false.
//
// commitCopy is deliberately NOT annotated lane-confined yet: the analyzer
// proves it would reach the machine-global engine clock through
// vm.Migrate's observability emit (EmitNow → Tracer.Clock → Sharded.Now),
// so batching commits onto their owning lanes (the ROADMAP follow-on) first
// needs the tracer to grow a lane-safe clock. Re-adding the annotation is
// how that work will know it is done.
func (pg *Pager) commitCopy(m phaseMsg, t sim.Time, bd *stats.Breakdown) (sim.Time, bool) {
	op := &pg.ops[m.opIdx]
	k := pg.cfg.Kernel

	var dt sim.Time
	var err error
	if op.decision.Action == policy.MigratePage {
		err = pg.vm.Migrate(op.ref.Page, m.frame)
		dt = k.PolicyEndMigr
	} else {
		err = pg.vm.Replicate(op.ref.Page, m.frame)
		dt = k.PolicyEndRepl
	}
	if err != nil {
		pg.alloc.Free(m.frame)
		return t, false
	}
	t += dt
	bd.Pager.Add(stats.FnPolicyEnd, dt)
	bd.Pager.AddOpStep(op.kind, stats.FnPolicyEnd, dt)
	op.latency += dt
	return t, true
}
