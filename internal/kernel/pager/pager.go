// Package pager implements the kernel half of the paper's contribution: the
// low-priority interrupt handler of Figure 2 that migrates, replicates, and
// collapses pages, together with the cost accounting behind Tables 5 and 6.
//
// A batch of hot pages (the directory collects several before interrupting)
// is processed as in Section 4: steps 3-5 run per page, one TLB flush covers
// the whole batch, then steps 7-8 run per page. Lock costs are simulated —
// page allocation and migration remapping contend on memlock, replication
// linkage takes only a page-level lock — so the contention effects the paper
// reports emerge from concurrent pager activity.
package pager

import (
	"ccnuma/internal/directory"
	"ccnuma/internal/kernel/alloc"
	"ccnuma/internal/kernel/klock"
	"ccnuma/internal/kernel/vm"
	"ccnuma/internal/mem"
	"ccnuma/internal/obs"
	"ccnuma/internal/policy"
	"ccnuma/internal/sim"
	"ccnuma/internal/stats"
	"ccnuma/internal/topology"
)

// FlushFunc shoots down TLBs for the given pages. It returns the total wait
// seen by the initiating CPU (replacing the configured default); the machine
// charges each flushed CPU its local flush cost separately. When the
// TrackTLBHolders ablation is on, the machine flushes only CPUs whose TLB
// holds one of the pages, and the wait shrinks proportionally.
type FlushFunc func(now sim.Time, initiator mem.CPUID, pages []mem.GPage) sim.Time

// Pager is the migration/replication engine.
type Pager struct {
	cfg      topology.Config
	locks    *klock.Set
	alloc    *alloc.Allocator
	vm       *vm.VM
	counters *directory.Counters
	params   policy.Params

	// Flush is the machine's TLB-shootdown hook.
	Flush FlushFunc
	// LowWater is the per-node free-frame threshold below which the node is
	// considered under memory pressure (replication stops).
	LowWater int
	// Adaptive enables the adaptive-trigger extension (the paper leaves
	// "selecting the correct trigger value, statically or adaptively" as
	// future work): the trigger is raised when the last interval's pager
	// overhead exceeded a target fraction of machine time and lowered when
	// it was far below it.
	Adaptive bool
	// ReclaimCold enables the cold-replica reclamation extension: replicas
	// of pages with no recent sharing are collapsed at each reset interval,
	// bounding the replication space overhead (Section 7.2.3 reports the
	// kernel "preferentially reclaiming replicated pages").
	ReclaimCold bool
	// Deferral enables the graceful-degradation response to allocation
	// failure: instead of dropping an operation whose destination node had no
	// frame, it enters a bounded queue and retries with exponential backoff
	// on later pager interrupts (set from fault.Config.DeferFailedOps).
	Deferral bool
	// OverheadBudget, when positive, sheds whole hot-page batches at
	// interrupt-entry cost while the pager's accumulated overhead on this CPU
	// exceeds the given fraction of elapsed virtual time (set from
	// fault.Config.OverheadBudget).
	OverheadBudget float64

	// Obs, when enabled, receives the pager's typed events: hot-page
	// interrupts, policy decisions (with the counters that drove them), TLB
	// shootdowns, and cold-replica reclamation sweeps. Page-placement state
	// changes themselves are emitted by the VM.
	Obs *obs.Tracer

	// Actions is the Table-4 accounting.
	Actions policy.ActionStats

	intervalOverhead sim.Time
	// TriggerTrace records the trigger value at each interval boundary
	// (observability for the adaptive extension).
	TriggerTrace []uint16

	// Scratch buffers reused across handler invocations. The pager runs
	// inside single-threaded simulator events, so one set per Pager suffices;
	// each holder's slice is only read within the same invocation.
	ops        []pendingOp
	flushPages []mem.GPage
	nodesBuf   []mem.NodeID
	mappersBuf []mem.ProcID
	reclaimBuf []mem.GPage
	onePage    [1]mem.GPage

	// deferred is the bounded queue of operations awaiting retry after a
	// failed allocation; retryScratch is the per-batch due-list buffer.
	deferred     []deferredOp
	retryScratch []deferredOp
}

// New builds a pager. Flush must be set before the first hot batch arrives.
func New(cfg topology.Config, locks *klock.Set, a *alloc.Allocator, v *vm.VM,
	c *directory.Counters, params policy.Params) *Pager {
	return &Pager{
		cfg:      cfg,
		locks:    locks,
		alloc:    a,
		vm:       v,
		counters: c,
		params:   params,
		LowWater: 16,
	}
}

// Params returns the active policy parameters.
func (pg *Pager) Params() policy.Params { return pg.params }

type pendingOp struct {
	ref      directory.HotRef
	decision policy.Decision
	kind     stats.OpKind
	// newFrames holds the destination frame (migration) or one frame per
	// replica target node (replication replicates to every node whose miss
	// counter crossed the sharing threshold, under one interrupt and flush).
	newFrames []mem.PFN
	remapped  []mem.ProcID // procs to remap for RemapPage
	latency   sim.Time     // accumulated per-op latency for Table 5
}

// acquireOp extends the reusable ops buffer by one cleared slot, retaining
// the slot's newFrames capacity from earlier batches. Callers that decide
// the op needs no further processing pop it again with dropOp.
func (pg *Pager) acquireOp() *pendingOp {
	if n := len(pg.ops); n < cap(pg.ops) {
		pg.ops = pg.ops[:n+1]
	} else {
		pg.ops = append(pg.ops, pendingOp{})
	}
	op := &pg.ops[len(pg.ops)-1]
	*op = pendingOp{newFrames: op.newFrames[:0]}
	return op
}

// dropOp discards the most recently acquired op slot.
func (pg *Pager) dropOp() { pg.ops = pg.ops[:len(pg.ops)-1] }

// deferredOp is one deferral-queue entry: a hot reference whose migration or
// replication failed allocation and waits to retry.
type deferredOp struct {
	ref      directory.HotRef
	attempts int
	nextTry  sim.Time
}

// Graceful-degradation tuning (active only with Deferral): an operation
// retries at most maxDeferAttempts times with exponential backoff starting at
// deferBackoffBase, and at most maxDeferred operations wait at once.
const (
	maxDeferred      = 64
	maxDeferAttempts = 4
	deferBackoffBase = 250 * sim.Microsecond
)

// HandleBatch services a pager interrupt on cpu at virtual time now for the
// given hot pages. It performs all decisions and VM changes, charges
// simulated lock waits, and returns the total handler time, recording the
// per-function breakdown into bd.
func (pg *Pager) HandleBatch(now sim.Time, cpu mem.CPUID, batch []directory.HotRef, bd *stats.Breakdown) sim.Time {
	if len(batch) == 0 {
		return 0
	}
	k := pg.cfg.Kernel

	// Kernel-overhead budget: while the pager's accumulated share of this
	// CPU's time exceeds the budget, the whole batch is shed at
	// interrupt-entry cost. Counters clear, so the pages stay eligible and
	// re-trigger once the pager has caught up.
	if pg.OverheadBudget > 0 && pg.throttled(now, bd) {
		bd.Pager.Add(stats.FnIntrProc, k.InterruptEntry)
		for _, h := range batch {
			pg.counters.ClearPage(h.Page)
			pg.Actions.Record(policy.Decision{Action: policy.DoNothing, Reason: policy.ReasonThrottled}, false)
		}
		bd.Throttled += uint64(len(batch))
		if pg.Obs.On() {
			e := obs.NewEvent(obs.KindPolicyThrottled)
			e.At = now
			e.CPU = int(cpu)
			e.Node = int(pg.cfg.NodeOf(cpu))
			e.N = len(batch)
			pg.Obs.Emit(e)
		}
		pg.intervalOverhead += k.InterruptEntry
		return k.InterruptEntry
	}

	// Deferred operations whose backoff expired piggyback on this interrupt.
	retries := pg.takeDueRetries(now)
	total := len(batch) + len(retries)

	t := now
	start := now

	// Step 2: interrupt entry, amortized across the batch.
	t += k.InterruptEntry
	bd.Pager.Add(stats.FnIntrProc, k.InterruptEntry)
	intrShare := k.InterruptEntry / sim.Time(total)

	if pg.Obs.On() {
		e := obs.NewEvent(obs.KindHotPageInterrupt)
		e.At = now
		e.CPU = int(cpu)
		e.Node = int(pg.cfg.NodeOf(cpu))
		e.Trigger = pg.params.Trigger
		e.Sharing = pg.params.Sharing
		e.N = total
		pg.Obs.Emit(e)
	}

	pg.ops = pg.ops[:0]
	pg.flushPages = pg.flushPages[:0]

	for i := range retries {
		bd.Retried++
		t = pg.handleRef(retries[i].ref, &retries[i], t, intrShare, bd)
	}
	for _, h := range batch {
		t = pg.handleRef(h, nil, t, intrShare, bd)
	}

	// Step 6: one TLB flush for the whole batch.
	if len(pg.flushPages) > 0 {
		fw := k.TLBFlushWait
		if pg.Flush != nil {
			fw = pg.Flush(t, cpu, pg.flushPages)
		}
		t += fw
		pg.observeShootdown(t, cpu, len(pg.flushPages), fw)
		bd.Pager.Add(stats.FnTLBFlush, fw)
		if len(pg.ops) > 0 {
			share := fw / sim.Time(len(pg.ops))
			for i := range pg.ops {
				bd.Pager.AddOpStep(pg.ops[i].kind, stats.FnTLBFlush, share)
				pg.ops[i].latency += share
			}
		}
	}

	// Steps 7-8 per copy, as the two-phase exchange in twophase.go: prepare
	// charges the copy at the destination node, commit links the frame at the
	// master's home node. Serial drive, original order.
	for i := range pg.ops {
		op := &pg.ops[i]
		acted := false
		copies := 0
		for _, f := range op.newFrames {
			m := phaseMsg{opIdx: i, frame: f}
			t = pg.prepareCopy(m, t, bd)
			var ok bool
			if t, ok = pg.commitCopy(m, t, bd); !ok {
				continue
			}
			acted = true
			copies++
		}
		if !acted {
			pg.Actions.Record(policy.Decision{Action: policy.DoNothing, Reason: policy.ReasonFrozen}, false)
			continue
		}
		pg.vm.Page(op.ref.Page).TransitUntil = t
		pg.Actions.Record(op.decision, false)
		// Table 5 reports per-page-moved latency: a multi-target
		// replication is recorded as one operation per copy.
		for c := 0; c < copies; c++ {
			bd.Pager.FinishOp(op.kind, op.latency/sim.Time(copies))
		}
	}

	pg.intervalOverhead += t - start
	return t - start
}

// handleRef runs steps 3-5 of Figure 2 for one hot reference at time t,
// appending to the batch's op and flush lists, and returns the advanced
// clock. def is non-nil when the reference is a deferred retry (the policy
// re-evaluates against current counters; a page that moved or cooled since
// the failure resolves as a cheap no-op).
func (pg *Pager) handleRef(h directory.HotRef, def *deferredOp, t, intrShare sim.Time, bd *stats.Breakdown) sim.Time {
	k := pg.cfg.Kernel
	op := pg.acquireOp()
	op.ref, op.latency = h, intrShare

	// Step 3: policy decision under the page lock.
	wait := pg.locks.PageLock(uint32(h.Page)).Acquire(t, k.PageLockHold)
	dt := wait + k.PolicyDecision
	t += dt
	bd.Pager.Add(stats.FnPolicyDecision, dt)
	op.latency += dt

	op.decision = pg.decide(h)
	if pg.Obs.On() {
		// Observe before ClearPage wipes the counters the branch read.
		policy.ObserveDecision(pg.Obs, t, int(h.CPU), int(pg.cfg.NodeOf(h.CPU)),
			int64(h.Page), pg.params, pg.counters.MissRow(h.Page),
			pg.counters.Writes(h.Page), pg.counters.GroupOf(h.CPU), op.decision)
	}
	switch op.decision.Action {
	case policy.DoNothing:
		pg.counters.ClearPage(h.Page)
		pg.Actions.Record(op.decision, false)
		pg.dropOp()
		return t
	case policy.RemapPage:
		node := pg.cfg.NodeOf(h.CPU)
		op.remapped = pg.staleMappers(h.Page, node)
		if len(op.remapped) == 0 {
			pg.Actions.Record(policy.Decision{Action: policy.DoNothing, Reason: policy.ReasonLocal}, false)
			pg.dropOp()
			return t
		}
		// Remap is cheap: pte updates plus the shared flush.
		for _, pid := range op.remapped {
			pg.vm.Remap(pid, h.Page, node)
		}
		dt = k.PageLockHold
		t += dt
		bd.Pager.Add(stats.FnLinksMapping, dt)
		op.latency += dt
		pg.flushPages = append(pg.flushPages, h.Page)
		pg.counters.ClearPage(h.Page)
		pg.Actions.Record(op.decision, false)
		pg.vm.Page(h.Page).TransitUntil = t
		pg.dropOp()
		return t
	case policy.MigratePage:
		op.kind = stats.OpMigrate
	case policy.ReplicatePage:
		op.kind = stats.OpReplicate
	}

	// Step 4: allocate the destination frames. The global free list is
	// protected by memlock. A replication allocates one frame on every
	// target node (the triggering node plus every node whose counter
	// crossed the sharing threshold).
	targets := pg.targetNodes(h, op.decision.Action)
	pg.counters.ClearPage(h.Page)
	wait = pg.locks.Memlock.Acquire(t, k.MemlockHold)
	failed := 0
	for _, n := range targets {
		f := pg.allocOn(n, op.decision.Action)
		dt = wait + k.PageAllocBase
		wait = 0 // charge the lock wait once
		t += dt
		bd.Pager.Add(stats.FnPageAlloc, dt)
		op.latency += dt
		bd.Pager.AddOpStep(op.kind, stats.FnPageAlloc, dt)
		if f == mem.NoFrame {
			failed++
			if !pg.Deferral {
				pg.Actions.Record(op.decision, true)
			}
			continue
		}
		op.newFrames = append(op.newFrames, f)
	}
	bd.Pager.AddOpStep(op.kind, stats.FnIntrProc, intrShare)
	bd.Pager.AddOpStep(op.kind, stats.FnPolicyDecision, k.PolicyDecision)
	if pg.Deferral && failed > 0 && len(op.newFrames) > 0 {
		// Partial success: the made copies proceed and the failed targets
		// count as No-Page — the page re-heats on the unserved nodes and
		// retriggers naturally, so deferring would double-serve it.
		for i := 0; i < failed; i++ {
			pg.Actions.Record(op.decision, true)
		}
	}
	if len(op.newFrames) == 0 {
		if pg.Deferral && failed > 0 {
			pg.deferOp(h, def, op.decision, t, bd)
		}
		pg.dropOp()
		return t
	}

	// Step 5: link the new pages and mark ptes transient. Migration
	// rewrites the physical-page hash table under memlock; replication
	// queues the replicas on the master under the page lock alone.
	if op.decision.Action == policy.MigratePage {
		wait = pg.locks.Memlock.Acquire(t, k.MemlockHold)
		dt = wait + k.LinkMapMigr
	} else {
		wait = pg.locks.PageLock(uint32(h.Page)).Acquire(t, k.PageLockHold)
		dt = wait + sim.Time(len(op.newFrames))*k.LinkMapRepl
	}
	t += dt
	bd.Pager.Add(stats.FnLinksMapping, dt)
	bd.Pager.AddOpStep(op.kind, stats.FnLinksMapping, dt)
	op.latency += dt

	pg.flushPages = append(pg.flushPages, h.Page)
	return t
}

// deferOp queues a fully failed operation for retry, or abandons it when its
// attempts or the queue's capacity are exhausted. Only an abandonment reaches
// the Table-4 accounting (as No-Page); a deferred operation is recorded when
// it finally resolves.
func (pg *Pager) deferOp(h directory.HotRef, def *deferredOp, decision policy.Decision, now sim.Time, bd *stats.Breakdown) {
	attempts := 1
	if def != nil {
		attempts = def.attempts + 1
	}
	if attempts >= maxDeferAttempts || (def == nil && len(pg.deferred) >= maxDeferred) {
		bd.Abandoned++
		pg.Actions.Record(decision, true)
		if pg.Obs.On() {
			e := obs.NewEvent(obs.KindOpAbandoned)
			e.At = now
			e.CPU = int(h.CPU)
			e.Node = int(pg.cfg.NodeOf(h.CPU))
			e.Page = int64(h.Page)
			e.N = attempts
			pg.Obs.Emit(e)
		}
		return
	}
	pg.deferred = append(pg.deferred, deferredOp{
		ref:      h,
		attempts: attempts,
		nextTry:  now + deferBackoffBase<<(attempts-1),
	})
	bd.Deferred++
	if pg.Obs.On() {
		e := obs.NewEvent(obs.KindOpDeferred)
		e.At = now
		e.CPU = int(h.CPU)
		e.Node = int(pg.cfg.NodeOf(h.CPU))
		e.Page = int64(h.Page)
		e.N = attempts
		pg.Obs.Emit(e)
	}
}

// takeDueRetries removes and returns the deferred operations whose backoff
// expired by now. The returned slice is the pager's scratch buffer, valid
// until the next batch.
func (pg *Pager) takeDueRetries(now sim.Time) []deferredOp {
	if !pg.Deferral || len(pg.deferred) == 0 {
		return nil
	}
	due := pg.retryScratch[:0]
	keep := pg.deferred[:0]
	for _, d := range pg.deferred {
		if d.nextTry <= now {
			due = append(due, d)
		} else {
			keep = append(keep, d)
		}
	}
	pg.deferred = keep
	pg.retryScratch = due
	return due
}

// throttled reports whether the overhead budget is currently exceeded on the
// CPU owning bd.
func (pg *Pager) throttled(now sim.Time, bd *stats.Breakdown) bool {
	return now > 0 && float64(bd.Pager.Total()) > pg.OverheadBudget*float64(now)
}

// observeShootdown emits the TLBShootdown event: n pages flushed, with the
// wait the initiating CPU paid.
func (pg *Pager) observeShootdown(at sim.Time, cpu mem.CPUID, n int, wait sim.Time) {
	if !pg.Obs.On() {
		return
	}
	e := obs.NewEvent(obs.KindTLBShootdown)
	e.At = at
	e.CPU = int(cpu)
	e.Node = int(pg.cfg.NodeOf(cpu))
	e.N = n
	e.Dur = wait
	pg.Obs.Emit(e)
}

// targetNodes lists the destination nodes for an action: the triggering
// CPU's node for a migration; for a replication, additionally every node
// with a CPU whose miss counter crossed the sharing threshold and that has
// no copy yet.
func (pg *Pager) targetNodes(h directory.HotRef, a policy.Action) []mem.NodeID {
	home := pg.cfg.NodeOf(h.CPU)
	nodes := append(pg.nodesBuf[:0], home)
	if a == policy.MigratePage {
		pg.nodesBuf = nodes
		return nodes
	}
	row := pg.counters.MissRow(h.Page)
	for c := 0; c < pg.cfg.TotalCPUs(); c++ {
		n := row[pg.counters.GroupOf(mem.CPUID(c))]
		cn := pg.cfg.NodeOf(mem.CPUID(c))
		if cn == home || n < pg.params.Sharing {
			continue
		}
		if pg.vm.HasReplicaOn(h.Page, cn) {
			continue
		}
		dup := false
		for _, x := range nodes {
			if x == cn {
				dup = true
			}
		}
		if !dup {
			nodes = append(nodes, cn)
		}
	}
	pg.nodesBuf = nodes
	return nodes
}

// decide computes the policy decision for one hot reference.
func (pg *Pager) decide(h directory.HotRef) policy.Decision {
	node := pg.cfg.NodeOf(h.CPU)
	pi := pg.vm.Page(h.Page)
	st := policy.PageState{
		Replicated: len(pi.Replicas) > 0,
		MigCount:   pi.MigCount,
		Wired:      pi.Flags&vm.Wired != 0,
		Pressure:   pg.alloc.Pressure(node, pg.LowWater),
	}
	if pg.vm.HasReplicaOn(h.Page, node) {
		if len(pg.staleMappers(h.Page, node)) > 0 {
			st.HasLocalCopy = true
		} else {
			st.Local = true
		}
	}
	return policy.Decide(pg.params, pg.counters.MissRow(h.Page), pg.counters.Writes(h.Page), pg.counters.GroupOf(h.CPU), st)
}

// staleMappers lists processes running on node whose pte for page points at
// a copy on some other node.
func (pg *Pager) staleMappers(page mem.GPage, node mem.NodeID) []mem.ProcID {
	local := pg.vm.NearestCopy(page, node)
	if pg.cfg.NodeOfFrame(local) != node {
		return nil
	}
	out := pg.mappersBuf[:0]
	for _, pid := range pg.vm.Page(page).Mappers {
		if pg.vm.Locate(pid) == node && pg.vm.PTE(pid, page).PFN != local {
			out = append(out, pid)
		}
	}
	pg.mappersBuf = out
	return out
}

// allocOn allocates strictly on node; for migrations under memory pressure
// it first tries to reclaim a replica on the node (the paper's preferential
// reclamation of replicated pages).
func (pg *Pager) allocOn(node mem.NodeID, a policy.Action) mem.PFN {
	purpose := alloc.Base
	if a == policy.ReplicatePage {
		purpose = alloc.Replica
	}
	f := pg.alloc.AllocOn(node, purpose)
	if f == mem.NoFrame && a == policy.MigratePage {
		if _, ok := pg.vm.ReclaimReplicaOn(node); ok {
			f = pg.alloc.AllocOn(node, purpose)
		}
	}
	return f
}

// collapseTarget picks the node whose copy survives a collapse initiated by
// cpu: normally cpu's own node, but when that node's memory is drained the
// master's node — keeping the survivor on an offline node would defeat the
// drain's eviction sweep.
func (pg *Pager) collapseTarget(cpu mem.CPUID, p mem.GPage) mem.NodeID {
	n := pg.cfg.NodeOf(cpu)
	if pg.alloc.Offline(n) {
		return pg.vm.MasterNode(p)
	}
	return n
}

// CollapseWrite services a write trap to a replicated page (the pfault
// path): replicas are collapsed to the copy nearest the writer, TLBs are
// flushed, and the write is allowed to proceed. It returns the handler time
// charged to the faulting CPU.
func (pg *Pager) CollapseWrite(now sim.Time, cpu mem.CPUID, page mem.GPage, bd *stats.Breakdown) sim.Time {
	k := pg.cfg.Kernel
	t := now

	wait := pg.locks.PageLock(uint32(page)).Acquire(t, k.PageLockHold)
	dt := wait + k.CollapseBase
	t += dt
	bd.Pager.Add(stats.FnPageFault, dt)

	pg.vm.Collapse(page, pg.collapseTarget(cpu, page))

	fw := k.TLBFlushWait
	if pg.Flush != nil {
		pg.onePage[0] = page
		fw = pg.Flush(t, cpu, pg.onePage[:])
	}
	t += fw
	pg.observeShootdown(t, cpu, 1, fw)
	bd.Pager.Add(stats.FnTLBFlush, fw)

	pg.vm.Page(page).TransitUntil = t
	pg.Actions.Collapses++
	return t - now
}

// ResetInterval performs the periodic counter reset (Table 1): directory
// miss and write counters and the per-page migrate counters all zero. With
// the adaptive extension on, the trigger threshold is first adjusted from
// the interval's overhead.
func (pg *Pager) ResetInterval() {
	if pg.Adaptive {
		pg.adaptTrigger()
	}
	pg.counters.Reset()
	pg.vm.ResetMigCounts()
	pg.intervalOverhead = 0
}

// adaptTrigger moves the trigger threshold toward an overhead target: pager
// time above ~8% of interval machine time raises it (act less), below ~1.5%
// lowers it (act more aggressively while moves are cheap).
func (pg *Pager) adaptTrigger() {
	machineTime := float64(pg.params.ResetInterval) * float64(pg.cfg.TotalCPUs())
	frac := float64(pg.intervalOverhead) / machineTime
	t := pg.params.Trigger
	switch {
	case frac > 0.08:
		t = t * 3 / 2
	case frac < 0.015:
		t = t * 2 / 3
	}
	if t < 16 {
		t = 16
	}
	if t > 512 {
		t = 512
	}
	pg.params = pg.params.WithTrigger(t)
	pg.counters.SetTrigger(t)
	pg.TriggerTrace = append(pg.TriggerTrace, t)
}

// ReclaimColdReplicas collapses every replicated page whose miss counters
// this interval stayed below the sharing threshold on all processors: its
// sharers went quiet, so the copies only cost memory. Called at the reset
// boundary, before counters clear. Returns the kernel time consumed.
func (pg *Pager) ReclaimColdReplicas(now sim.Time, cpu mem.CPUID, bd *stats.Breakdown) sim.Time {
	k := pg.cfg.Kernel
	t := now
	pages := pg.reclaimBuf[:0]
	for p := 0; p < pg.vm.Pages(); p++ {
		pi := pg.vm.Page(mem.GPage(p))
		if len(pi.Replicas) == 0 {
			continue
		}
		warm := false
		for _, n := range pg.counters.MissRow(mem.GPage(p)) {
			if n >= pg.params.Sharing {
				warm = true
				break
			}
		}
		if !warm {
			pages = append(pages, mem.GPage(p))
		}
	}
	pg.reclaimBuf = pages
	if len(pages) == 0 {
		return 0
	}
	if pg.Obs.On() {
		e := obs.NewEvent(obs.KindReplicaReclaimed)
		e.At = now
		e.CPU = int(cpu)
		e.Node = int(pg.cfg.NodeOf(cpu))
		e.Sharing = pg.params.Sharing
		e.N = len(pages)
		pg.Obs.Emit(e)
	}
	for _, p := range pages {
		wait := pg.locks.PageLock(uint32(p)).Acquire(t, k.PageLockHold)
		dt := wait + k.CollapseBase
		t += dt
		bd.Pager.Add(stats.FnPolicyEnd, dt)
		pg.vm.Collapse(p, pg.collapseTarget(cpu, p))
		pg.vm.Page(p).TransitUntil = t
	}
	fw := k.TLBFlushWait
	if pg.Flush != nil {
		fw = pg.Flush(t, cpu, pages)
	}
	t += fw
	pg.observeShootdown(t, cpu, len(pages), fw)
	bd.Pager.Add(stats.FnTLBFlush, fw)
	pg.intervalOverhead += t - now
	return t - now
}

// DrainNode evicts every replica resident on node as part of a memory drain:
// each is collapsed away under its page lock, then one TLB flush covers the
// whole sweep. Master copies stay resident (the allocator keeps allocated
// frames alive through a drain); only redundant copies are pushed off the
// node. Returns the kernel time consumed and the number of replicas evicted.
// The caller must have taken the node offline in the allocator first, so no
// new replica lands on the node between the sweep and the flush.
func (pg *Pager) DrainNode(now sim.Time, cpu mem.CPUID, node mem.NodeID, bd *stats.Breakdown) (sim.Time, int) {
	k := pg.cfg.Kernel
	t := now
	pages := pg.reclaimBuf[:0]
	for {
		p, ok := pg.vm.ReclaimReplicaOn(node)
		if !ok {
			break
		}
		wait := pg.locks.PageLock(uint32(p)).Acquire(t, k.PageLockHold)
		dt := wait + k.CollapseBase
		t += dt
		bd.Pager.Add(stats.FnPolicyEnd, dt)
		pg.vm.Page(p).TransitUntil = t
		pages = append(pages, p)
	}
	pg.reclaimBuf = pages
	if len(pages) == 0 {
		return 0, 0
	}
	fw := k.TLBFlushWait
	if pg.Flush != nil {
		fw = pg.Flush(t, cpu, pages)
	}
	t += fw
	pg.observeShootdown(t, cpu, len(pages), fw)
	bd.Pager.Add(stats.FnTLBFlush, fw)
	pg.intervalOverhead += t - now
	return t - now, len(pages)
}
