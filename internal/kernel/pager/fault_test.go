package pager

import (
	"testing"

	"ccnuma/internal/directory"
	"ccnuma/internal/kernel/alloc"
	"ccnuma/internal/kernel/vm"
	"ccnuma/internal/mem"
	"ccnuma/internal/policy"
	"ccnuma/internal/sim"
)

// exhaust empties node n's free list, returning the frames taken so a test
// can hand memory back later.
func (f *fixture) exhaust(n mem.NodeID) []mem.PFN {
	var taken []mem.PFN
	for f.alloc.FreeOn(n) > 0 {
		taken = append(taken, f.alloc.AllocOn(n, alloc.Base))
	}
	return taken
}

// With Deferral on, an operation whose allocation fails waits in the queue
// instead of being dropped, and succeeds on a later interrupt once memory
// returns.
func TestDeferralRetriesAfterAllocFailure(t *testing.T) {
	f := newFixture(t, policy.Base())
	f.pg.Deferral = true
	f.touch(t, 3, 0)
	taken := f.exhaust(5)

	f.heat(3, 5, 200, false)
	f.pg.HandleBatch(0, 5, []directory.HotRef{{Page: 3, CPU: 5}}, &f.bd)
	if f.bd.Deferred != 1 {
		t.Fatalf("deferred = %d, want 1", f.bd.Deferred)
	}
	if f.pg.Actions.NoPage != 0 {
		t.Fatalf("deferred op recorded as No-Page: %+v", f.pg.Actions)
	}
	if f.vmm.MasterNode(3) != 0 {
		t.Fatal("page moved despite allocation failure")
	}

	// Memory returns and a later, unrelated interrupt arrives after the
	// backoff: the retry piggybacks on it and the migration completes.
	f.alloc.Free(taken[0])
	f.touch(t, 9, 0)
	f.heat(9, 1, 200, false)
	f.pg.HandleBatch(sim.Millisecond, 1, []directory.HotRef{{Page: 9, CPU: 1}}, &f.bd)
	if f.bd.Retried != 1 {
		t.Fatalf("retried = %d, want 1", f.bd.Retried)
	}
	if f.vmm.MasterNode(3) != 5 {
		t.Fatal("retry did not complete the migration")
	}
	if f.pg.Actions.Migrations != 2 { // the retried page plus the carrier batch's own
		t.Fatalf("actions = %+v", f.pg.Actions)
	}
	if len(f.pg.deferred) != 0 {
		t.Fatalf("queue still holds %d ops", len(f.pg.deferred))
	}
	if err := f.vmm.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// An operation that keeps failing is abandoned after maxDeferAttempts and
// only then reaches the Table-4 accounting as No-Page.
func TestDeferralAbandonsAfterMaxAttempts(t *testing.T) {
	f := newFixture(t, policy.Base())
	f.pg.Deferral = true
	f.touch(t, 3, 0)
	f.exhaust(5)

	f.heat(3, 5, 200, false)
	f.pg.HandleBatch(0, 5, []directory.HotRef{{Page: 3, CPU: 5}}, &f.bd)

	// Each later interrupt (a fresh carrier page each time, so no second
	// deferral for the same target piles up) carries a retry that fails again
	// and re-defers, until attempt maxDeferAttempts abandons.
	now := 10 * sim.Millisecond // past any backoff
	for i := 0; i < maxDeferAttempts-1; i++ {
		carrier := mem.GPage(10 + i)
		f.touch(t, carrier, 0)
		f.pg.HandleBatch(now, 1, []directory.HotRef{{Page: carrier, CPU: 1}}, &f.bd)
		now += 10 * sim.Millisecond
	}
	if f.bd.Abandoned != 1 {
		t.Fatalf("abandoned = %d, want 1 (deferred %d retried %d)",
			f.bd.Abandoned, f.bd.Deferred, f.bd.Retried)
	}
	if f.bd.Deferred != uint64(maxDeferAttempts-1) {
		t.Fatalf("deferred = %d, want %d", f.bd.Deferred, maxDeferAttempts-1)
	}
	if f.pg.Actions.NoPage != 1 {
		t.Fatalf("abandonment not recorded as No-Page: %+v", f.pg.Actions)
	}
	if len(f.pg.deferred) != 0 {
		t.Fatalf("queue still holds %d ops", len(f.pg.deferred))
	}
}

// A deferred operation whose page changed state before the retry resolves as
// a cheap no-op: the retry re-runs the decision tree, and a page that was
// wired in the meantime is left alone instead of retrying a stale plan.
func TestDeferredRetryReevaluatesPageState(t *testing.T) {
	f := newFixture(t, policy.Base())
	f.pg.Deferral = true
	f.touch(t, 3, 0)
	f.touch(t, 9, 0)
	f.exhaust(5)

	f.heat(3, 5, 200, false)
	f.pg.HandleBatch(0, 5, []directory.HotRef{{Page: 3, CPU: 5}}, &f.bd)
	if f.bd.Deferred != 1 {
		t.Fatalf("deferred = %d, want 1", f.bd.Deferred)
	}

	// The page gets wired while it waits; an unrelated interrupt carries the
	// retry.
	f.vmm.Page(3).Flags |= vm.Wired
	f.heat(9, 1, 200, false)
	f.pg.HandleBatch(sim.Millisecond, 1, []directory.HotRef{{Page: 9, CPU: 1}}, &f.bd)
	if f.bd.Retried != 1 {
		t.Fatalf("retried = %d, want 1", f.bd.Retried)
	}
	if f.bd.Abandoned != 0 || len(f.pg.deferred) != 0 {
		t.Fatalf("wired retry not resolved: abandoned %d, queued %d",
			f.bd.Abandoned, len(f.pg.deferred))
	}
	if f.vmm.MasterNode(3) != 0 {
		t.Fatal("wired page moved anyway")
	}
	if f.pg.Actions.ByReason[policy.ReasonWired] != 1 {
		t.Fatalf("reason accounting: %+v", f.pg.Actions.ByReason)
	}
}

// Without Deferral the old behaviour is unchanged: the failure is No-Page
// immediately and nothing queues.
func TestNoDeferralWithoutFlag(t *testing.T) {
	f := newFixture(t, policy.Base())
	f.touch(t, 3, 0)
	f.exhaust(5)
	f.heat(3, 5, 200, false)
	f.pg.HandleBatch(0, 5, []directory.HotRef{{Page: 3, CPU: 5}}, &f.bd)
	if f.pg.Actions.NoPage != 1 || f.bd.Deferred != 0 || len(f.pg.deferred) != 0 {
		t.Fatalf("deferral active without the flag: %+v, deferred %d, queued %d",
			f.pg.Actions, f.bd.Deferred, len(f.pg.deferred))
	}
}

// Above the overhead budget, a batch is shed at interrupt-entry cost: no
// decisions run, counters clear so the pages can re-trigger, and the shed is
// accounted under ReasonThrottled.
func TestOverheadBudgetShedsBatch(t *testing.T) {
	f := newFixture(t, policy.Base())
	f.pg.OverheadBudget = 1e-9 // effectively: any prior overhead throttles
	f.touch(t, 3, 0)

	// First batch at now=0 is never throttled (no elapsed time to budget
	// against) and accumulates pager overhead.
	f.heat(3, 5, 200, false)
	dt := f.pg.HandleBatch(0, 5, []directory.HotRef{{Page: 3, CPU: 5}}, &f.bd)
	if dt <= f.cfg.Kernel.InterruptEntry {
		t.Fatal("first batch was shed")
	}
	if f.bd.Throttled != 0 {
		t.Fatalf("throttled = %d before any budget check", f.bd.Throttled)
	}

	f.touch(t, 9, 0)
	f.heat(9, 5, 200, false)
	dt = f.pg.HandleBatch(sim.Microsecond, 5, []directory.HotRef{{Page: 9, CPU: 5}}, &f.bd)
	if dt != f.cfg.Kernel.InterruptEntry {
		t.Fatalf("shed batch cost %v, want bare interrupt entry %v", dt, f.cfg.Kernel.InterruptEntry)
	}
	if f.bd.Throttled != 1 {
		t.Fatalf("throttled = %d, want 1", f.bd.Throttled)
	}
	if f.pg.Actions.ByReason[policy.ReasonThrottled] != 1 {
		t.Fatalf("reason accounting: %+v", f.pg.Actions.ByReason)
	}
	if f.vmm.MasterNode(9) != 0 {
		t.Fatal("shed batch still acted")
	}
	if f.counters.Miss(9, 5) != 0 {
		t.Fatal("shed batch left counters set; page could never re-trigger")
	}
}

// DrainNode sweeps every replica off the node under one flush, leaving master
// copies resident.
func TestDrainNodeEvictsReplicas(t *testing.T) {
	f := newFixture(t, policy.Base())
	f.touch(t, 3, 0)
	f.touch(t, 9, 0)
	for _, p := range []mem.GPage{3, 9} {
		rep := f.alloc.AllocOn(2, alloc.Replica)
		if err := f.vmm.Replicate(p, rep); err != nil {
			t.Fatal(err)
		}
	}
	f.alloc.SetOffline(2, true)

	dt, evicted := f.pg.DrainNode(0, 0, 2, &f.bd)
	if evicted != 2 {
		t.Fatalf("evicted %d replicas, want 2", evicted)
	}
	if dt <= 0 {
		t.Fatal("drain charged no kernel time")
	}
	if f.flushes != 1 {
		t.Fatalf("flushes = %d, want one for the whole sweep", f.flushes)
	}
	for _, p := range []mem.GPage{3, 9} {
		if f.vmm.HasReplicaOn(p, 2) {
			t.Fatalf("page %d still replicated on the drained node", p)
		}
		if f.vmm.MasterNode(p) != 0 {
			t.Fatalf("page %d master moved by the drain", p)
		}
	}
	if _, _, replica := f.alloc.UsageOn(2); replica != 0 {
		t.Fatalf("%d replica frames still allocated on the drained node", replica)
	}
	if err := f.vmm.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// A cold-replica reclaim racing a drain must not collapse the surviving copy
// onto the drained node: collapseTarget redirects to the master's node.
func TestReclaimColdAvoidsDrainedNode(t *testing.T) {
	f := newFixture(t, policy.Base())
	f.touch(t, 3, 0) // master on node 0
	rep := f.alloc.AllocOn(2, alloc.Replica)
	if err := f.vmm.Replicate(3, rep); err != nil {
		t.Fatal(err)
	}
	// Node 2 drains; the sweep hasn't reached page 3 yet when a reclaim pass
	// initiated by node 2's CPU finds the page cold.
	f.alloc.SetOffline(2, true)

	f.pg.ReclaimColdReplicas(0, 2, &f.bd)
	if f.vmm.HasReplicaOn(3, 2) {
		t.Fatal("cold replica survived on the drained node")
	}
	if f.vmm.MasterNode(3) != 0 {
		t.Fatalf("surviving copy on node %d, want the master's node 0", f.vmm.MasterNode(3))
	}
	if f.alloc.Allocated(rep) {
		t.Fatal("replica frame not freed")
	}
	if err := f.vmm.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
