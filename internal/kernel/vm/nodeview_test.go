package vm

import (
	"testing"

	"ccnuma/internal/cache"
	"ccnuma/internal/kernel/alloc"
	"ccnuma/internal/mem"
)

// viewVM builds a 4-node VM with one process mapping every page's master on
// node 0.
func viewVM(t *testing.T, pages int) (*VM, mem.ProcID) {
	t.Helper()
	a := alloc.New(4, 64)
	v := New(pages, 4, a, cache.NewValidity(pages, 4), FirstTouch)
	proc := v.AddProcess()
	for p := 0; p < pages; p++ {
		v.Touch(proc, mem.GPage(p), 0)
	}
	return v, proc
}

func replicateOn(t *testing.T, v *VM, p mem.GPage, node mem.NodeID) {
	t.Helper()
	f := v.alloc.AllocOn(node, alloc.Replica)
	if f == mem.NoFrame {
		t.Fatalf("no frame on node %d", node)
	}
	if err := v.Replicate(p, f); err != nil {
		t.Fatal(err)
	}
}

// TestReplicaViewReclaimOrder pins the view's query contract: reclaims on a
// node hand back its replicated pages lowest-page-first — exactly what the
// machine-wide ascending scan the views replaced returned — and leave other
// nodes' views untouched.
func TestReplicaViewReclaimOrder(t *testing.T) {
	v, _ := viewVM(t, 8)
	for _, p := range []mem.GPage{5, 1, 7} {
		replicateOn(t, v, p, 2)
	}
	replicateOn(t, v, 3, 1)

	for _, want := range []mem.GPage{1, 5, 7} {
		got, ok := v.ReclaimReplicaOn(2)
		if !ok || got != want {
			t.Fatalf("reclaim on node 2 = %d,%v, want %d,true", got, ok, want)
		}
	}
	if _, ok := v.ReclaimReplicaOn(2); ok {
		t.Fatal("node 2 still reports replicas after draining")
	}
	if got, ok := v.ReclaimReplicaOn(1); !ok || got != 3 {
		t.Fatalf("node 1's view disturbed: reclaim = %d,%v, want 3,true", got, ok)
	}
}

// TestReplicaViewLazyDeletion pins staleness handling: entries for replicas
// torn down behind the view's back (collapse, release) are skipped, and a
// replicate–collapse–replicate cycle's duplicate entries resolve without
// double-reclaiming.
func TestReplicaViewLazyDeletion(t *testing.T) {
	v, _ := viewVM(t, 8)
	replicateOn(t, v, 2, 3)
	v.Collapse(2, 0) // view entry for page 2 on node 3 is now stale
	replicateOn(t, v, 4, 3)
	if got, ok := v.ReclaimReplicaOn(3); !ok || got != 4 {
		t.Fatalf("stale entry not skipped: reclaim = %d,%v, want 4,true", got, ok)
	}

	// Duplicate entries: page 2 re-replicated on node 3 after the collapse.
	replicateOn(t, v, 2, 3)
	if got, ok := v.ReclaimReplicaOn(3); !ok || got != 2 {
		t.Fatalf("reclaim = %d,%v, want 2,true", got, ok)
	}
	if _, ok := v.ReclaimReplicaOn(3); ok {
		t.Fatal("duplicate view entry double-reclaimed")
	}
	if err := v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
