package vm

import "ccnuma/internal/mem"

// replicaView is one node's view of the replicas resident on it: a min-heap
// of page ids with lazy deletion. The VM pushes a page when a replica is
// created on the node; nothing is removed when replicas disappear (collapse,
// reclaim, release) — instead a stale top is discarded when the view is next
// consulted. Lazy deletion keeps replica teardown O(1) while preserving the
// query the machine-wide scan used to answer: the lowest-numbered page
// currently holding a replica on this node. Every such page has at least one
// live entry (pushed at creation), so the minimum valid entry IS the scan's
// answer, and duplicates from replicate–collapse–replicate cycles resolve as
// stale pops.
//
// Splitting this state per node is what makes memory-pressure reclaim a
// single-node operation: a drain or allocation-failure sweep on node n reads
// and pops only n's view, never the whole page table.
type replicaView struct {
	pages []mem.GPage // min-heap by page id
}

// push, peek, and pop touch only this node's heap, so they are safe on the
// owning node's lane.
//
//numalint:lane-confined
func (rv *replicaView) push(p mem.GPage) {
	rv.pages = append(rv.pages, p)
	i := len(rv.pages) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if rv.pages[parent] <= rv.pages[i] {
			break
		}
		rv.pages[parent], rv.pages[i] = rv.pages[i], rv.pages[parent]
		i = parent
	}
}

//numalint:lane-confined
func (rv *replicaView) peek() (mem.GPage, bool) {
	if len(rv.pages) == 0 {
		return 0, false
	}
	return rv.pages[0], true
}

//numalint:lane-confined
func (rv *replicaView) pop() {
	n := len(rv.pages) - 1
	rv.pages[0] = rv.pages[n]
	rv.pages = rv.pages[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && rv.pages[l] < rv.pages[least] {
			least = l
		}
		if r < n && rv.pages[r] < rv.pages[least] {
			least = r
		}
		if least == i {
			return
		}
		rv.pages[i], rv.pages[least] = rv.pages[least], rv.pages[i]
		i = least
	}
}
