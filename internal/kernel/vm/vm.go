// Package vm is the kernel's virtual-memory model, reproducing the IRIX 5.2
// structures the paper modified (Section 4): per-process page tables whose
// entries point at physical frames, a logical→physical mapping with replica
// chains hung off the master copy, back-mappings from a page to every
// process that maps it, and the read-only protection that makes the first
// store to a replicated page trap into the collapse path.
//
// Pages are identified by mem.GPage (a machine-wide logical page id), so the
// hash table of IRIX becomes a direct-indexed table here; replica chains are
// small per-page slices. The structure and invariants are the same:
//
//   - exactly one master copy per resident page;
//   - at most one replica per node, never on the master's node;
//   - a process's pte always points at exactly one copy in the page's chain;
//   - Mappers (the back-map) lists exactly the processes with a valid pte.
package vm

import (
	"errors"
	"fmt"

	"ccnuma/internal/cache"
	"ccnuma/internal/kernel/alloc"
	"ccnuma/internal/mem"
	"ccnuma/internal/obs"
	"ccnuma/internal/sim"
)

// PTE is one page-table entry.
type PTE struct {
	PFN   mem.PFN
	RO    bool
	Valid bool
}

// PageFlags describe per-page placement constraints.
type PageFlags uint8

const (
	// Wired pages (kernel code and data) are never migrated or replicated;
	// IRIX maps the kernel untranslated, outside the policy's reach.
	Wired PageFlags = 1 << iota
	// Code marks instruction pages (used by statistics and by the
	// replicate-code-on-first-touch ablation).
	Code
)

// Replica is one additional copy of a page.
type Replica struct {
	Node mem.NodeID
	PFN  mem.PFN
}

// PageInfo is the per-logical-page placement record (the pfd chain).
type PageInfo struct {
	Master   mem.PFN // NoFrame until first touch
	Replicas []Replica
	Mappers  []mem.ProcID // back-map: processes with a valid pte
	Flags    PageFlags
	// MigCount counts migrations within the current reset interval (the
	// policy's migrate counter).
	MigCount uint8
	// TransitUntil marks the page locked by an in-flight pager operation;
	// references before this time take the transient-page fault.
	TransitUntil sim.Time
	// EverReplicated feeds the space-overhead statistics.
	EverReplicated bool
}

// Placer chooses the home node for a page's first touch. pref is the node of
// the touching CPU. FirstTouch and RoundRobin implement the paper's static
// baselines.
type Placer func(page mem.GPage, pref mem.NodeID) mem.NodeID

// FirstTouch places the page on the toucher's node (the CC-NUMA default the
// paper compares against).
func FirstTouch(_ mem.GPage, pref mem.NodeID) mem.NodeID { return pref }

// RoundRobin places pages node = page mod nodes, equivalent to random
// allocation (the RR baseline).
func RoundRobin(nodes int) Placer {
	return func(page mem.GPage, _ mem.NodeID) mem.NodeID {
		return mem.NodeID(int(page) % nodes)
	}
}

// VM is the machine-wide virtual-memory state.
type VM struct {
	nodes int
	alloc *alloc.Allocator
	val   *cache.Validity
	place Placer
	// Locate reports the node a process is currently running on; replication
	// uses it to point each pte at the nearest copy (pager step 8).
	Locate func(mem.ProcID) mem.NodeID
	// Obs, when enabled, receives a typed event for every page-placement
	// state change (migration, replication, collapse, reclaim), whatever
	// path caused it — pager ops, write traps, pressure reclaim, or the
	// first-touch code-replication ablation. The VM is the single point all
	// those paths converge on, so instrumenting it here catches them all.
	Obs *obs.Tracer

	pages []PageInfo
	ptes  [][]PTE // [proc][gpage]; nil for free proc slots
	freeP []mem.ProcID
	// views[n] is node n's replica view (see nodeview.go): the lazy-deleted
	// min-heap answering "lowest page with a replica on n" without a
	// machine-wide scan.
	views []replicaView

	faults       uint64
	remaps       uint64
	collapses    uint64
	migrates     uint64
	replics      uint64
	allocRetries uint64
}

// New builds the VM for pages logical pages over the given allocator and
// cache-validity tables. place decides first-touch placement.
func New(pages, nodes int, a *alloc.Allocator, val *cache.Validity, place Placer) *VM {
	if place == nil {
		place = FirstTouch
	}
	v := &VM{
		nodes: nodes,
		alloc: a,
		val:   val,
		place: place,
		pages: make([]PageInfo, pages),
		views: make([]replicaView, nodes),
		Locate: func(mem.ProcID) mem.NodeID {
			return 0
		},
	}
	for i := range v.pages {
		v.pages[i].Master = mem.NoFrame
	}
	return v
}

// Pages returns the number of logical pages.
func (v *VM) Pages() int { return len(v.pages) }

// Page returns the placement record for page p.
func (v *VM) Page(p mem.GPage) *PageInfo { return &v.pages[p] }

// SetFlags ORs flags into page p's flags.
func (v *VM) SetFlags(p mem.GPage, f PageFlags) { v.pages[p].Flags |= f }

// AddProcess allocates a process slot (reusing freed slots) with an empty
// page table.
func (v *VM) AddProcess() mem.ProcID {
	if n := len(v.freeP); n > 0 {
		id := v.freeP[n-1]
		v.freeP = v.freeP[:n-1]
		v.ptes[id] = make([]PTE, len(v.pages))
		return id
	}
	v.ptes = append(v.ptes, make([]PTE, len(v.pages)))
	return mem.ProcID(len(v.ptes) - 1)
}

// RemoveProcess tears down a process: every valid pte is invalidated (and
// the back-maps updated) and the slot is recycled.
func (v *VM) RemoveProcess(proc mem.ProcID) {
	tbl := v.ptes[proc]
	for p := range tbl {
		if tbl[p].Valid {
			v.unmap(proc, mem.GPage(p))
		}
	}
	v.ptes[proc] = nil
	v.freeP = append(v.freeP, proc)
}

// PTE returns process proc's entry for page p.
func (v *VM) PTE(proc mem.ProcID, p mem.GPage) PTE { return v.ptes[proc][p] }

// FaultKind classifies the work a Touch had to do.
type FaultKind int

const (
	// NoFault: the pte was already valid.
	NoFault FaultKind = iota
	// FirstTouchFault: the page had no master yet; one was allocated.
	FirstTouchFault
	// MapFault: the page was resident but this process had no mapping.
	MapFault
)

// Touch resolves process proc's access to page p from a CPU on node pref,
// faulting in a mapping if needed. It returns the pte to load into the TLB.
// A first touch allocates the master via the placement policy (falling back
// to other nodes only if the chosen node is full, so the workload itself
// never fails).
func (v *VM) Touch(proc mem.ProcID, p mem.GPage, pref mem.NodeID) (PTE, FaultKind) {
	tbl := v.ptes[proc]
	if tbl[p].Valid {
		return tbl[p], NoFault
	}
	pi := &v.pages[p]
	kind := MapFault
	if pi.Master == mem.NoFrame {
		node := v.place(p, pref)
		f, err := v.allocRetry(node)
		if err != nil {
			panic(fmt.Sprintf("vm: machine out of memory touching page %d: %v", p, err))
		}
		pi.Master = f
		// Home the page's validity stamps with its master copy (rehoming
		// from the previous residence's node if the page was released there).
		v.val.Assign(p, v.alloc.NodeOf(f))
		kind = FirstTouchFault
	}
	pfn := v.nearest(pi, pref)
	ro := len(pi.Replicas) > 0
	tbl[p] = PTE{PFN: pfn, RO: ro, Valid: true}
	pi.Mappers = append(pi.Mappers, proc)
	v.faults++
	return tbl[p], kind
}

// allocRetry allocates a base frame near node, retrying transient injected
// failures: the fault handler sleeps on the allocator rather than killing
// the workload. Genuine machine-wide exhaustion (ErrNoFrames) — or a
// transient-failure storm long enough to look like one — still surfaces.
func (v *VM) allocRetry(node mem.NodeID) (mem.PFN, error) {
	for tries := 0; ; tries++ {
		f, err := v.alloc.AllocAnywhere(node, alloc.Base)
		if err == nil {
			return f, nil
		}
		if !errors.Is(err, alloc.ErrTransient) || tries >= 16 {
			return mem.NoFrame, err
		}
		v.allocRetries++
	}
}

func (v *VM) nearest(pi *PageInfo, node mem.NodeID) mem.PFN {
	for _, r := range pi.Replicas {
		if r.Node == node {
			return r.PFN
		}
	}
	return pi.Master
}

// NearestCopy returns the page's copy closest to node (a replica on that
// node, otherwise the master).
func (v *VM) NearestCopy(p mem.GPage, node mem.NodeID) mem.PFN {
	return v.nearest(&v.pages[p], node)
}

// MasterNode returns the node holding the page's master copy.
func (v *VM) MasterNode(p mem.GPage) mem.NodeID {
	return v.alloc.NodeOf(v.pages[p].Master)
}

// HasReplicaOn reports whether the page has a copy (master or replica) on
// node.
func (v *VM) HasReplicaOn(p mem.GPage, node mem.NodeID) bool {
	pi := &v.pages[p]
	if pi.Master != mem.NoFrame && v.alloc.NodeOf(pi.Master) == node {
		return true
	}
	for _, r := range pi.Replicas {
		if r.Node == node {
			return true
		}
	}
	return false
}

func (v *VM) unmap(proc mem.ProcID, p mem.GPage) {
	tbl := v.ptes[proc]
	if !tbl[p].Valid {
		return
	}
	tbl[p] = PTE{}
	pi := &v.pages[p]
	for i, m := range pi.Mappers {
		if m == proc {
			pi.Mappers = append(pi.Mappers[:i], pi.Mappers[i+1:]...)
			break
		}
	}
}

// Migrate moves page p's master to frame newF (already allocated by the
// pager on the destination node), freeing the old frame, rewriting every
// mapper's pte, and invalidating cached lines of the page (the physical copy
// moved). Pages with replicas cannot migrate; collapse first.
func (v *VM) Migrate(p mem.GPage, newF mem.PFN) error {
	pi := &v.pages[p]
	if pi.Master == mem.NoFrame {
		return fmt.Errorf("vm: migrate of non-resident page %d", p)
	}
	if len(pi.Replicas) > 0 {
		return fmt.Errorf("vm: migrate of replicated page %d", p)
	}
	if pi.Flags&Wired != 0 {
		return fmt.Errorf("vm: migrate of wired page %d", p)
	}
	old := pi.Master
	pi.Master = newF
	for _, m := range pi.Mappers {
		v.ptes[m][p].PFN = newF
	}
	v.alloc.Free(old)
	if pi.MigCount < ^uint8(0) {
		pi.MigCount++
	}
	// The master moved nodes: its validity stamps rehome with it, then the
	// epoch bump invalidates every cached line of the page.
	v.val.Assign(p, v.alloc.NodeOf(newF))
	v.val.BumpPage(p)
	v.migrates++
	if v.Obs.On() {
		e := obs.NewEvent(obs.KindPageMigrated)
		e.Page = int64(p)
		e.From = int(v.alloc.NodeOf(old))
		e.To = int(v.alloc.NodeOf(newF))
		e.Node = e.To
		v.Obs.EmitNow(e)
	}
	return nil
}

// Replicate adds a copy of page p on frame newF (allocated by the pager on
// the replica's node). All ptes become read-only, and every mapper's pte is
// re-pointed at the copy nearest the node its process currently runs on
// (pager step 8).
func (v *VM) Replicate(p mem.GPage, newF mem.PFN) error {
	pi := &v.pages[p]
	node := v.alloc.NodeOf(newF)
	if pi.Master == mem.NoFrame {
		return fmt.Errorf("vm: replicate of non-resident page %d", p)
	}
	if pi.Flags&Wired != 0 {
		return fmt.Errorf("vm: replicate of wired page %d", p)
	}
	if v.HasReplicaOn(p, node) {
		return fmt.Errorf("vm: page %d already has a copy on node %d", p, node)
	}
	pi.Replicas = append(pi.Replicas, Replica{Node: node, PFN: newF})
	v.views[node].push(p)
	pi.EverReplicated = true
	for _, m := range pi.Mappers {
		pt := &v.ptes[m][p]
		pt.RO = true
		pt.PFN = v.nearest(pi, v.Locate(m))
	}
	v.replics++
	if v.Obs.On() {
		e := obs.NewEvent(obs.KindPageReplicated)
		e.Page = int64(p)
		e.From = int(v.alloc.NodeOf(pi.Master))
		e.To = int(node)
		e.Node = e.To
		e.N = len(pi.Replicas)
		v.Obs.EmitNow(e)
	}
	return nil
}

// Collapse removes all replicas of page p, keeping the copy on keepNode if
// one exists (otherwise the master), restoring writable ptes, and
// invalidating cached lines (dropped copies disappear). It returns the
// number of frames freed.
func (v *VM) Collapse(p mem.GPage, keepNode mem.NodeID) int {
	pi := &v.pages[p]
	if len(pi.Replicas) == 0 {
		return 0
	}
	keep := pi.Master
	for _, r := range pi.Replicas {
		if r.Node == keepNode {
			keep = r.PFN
			break
		}
	}
	freed := 0
	if keep != pi.Master {
		v.alloc.Free(pi.Master)
		freed++
		pi.Master = keep
	}
	for _, r := range pi.Replicas {
		if r.PFN != keep {
			v.alloc.Free(r.PFN)
			freed++
		}
	}
	pi.Replicas = pi.Replicas[:0]
	for _, m := range pi.Mappers {
		pt := &v.ptes[m][p]
		pt.PFN = keep
		pt.RO = false
	}
	// A collapse that kept a replica's frame moved the master to that
	// replica's node; the stamps follow the master.
	v.val.Assign(p, v.alloc.NodeOf(keep))
	v.val.BumpPage(p)
	v.collapses++
	if v.Obs.On() {
		e := obs.NewEvent(obs.KindReplicaCollapsed)
		e.Page = int64(p)
		e.Node = int(v.alloc.NodeOf(keep))
		e.N = freed
		v.Obs.EmitNow(e)
	}
	return freed
}

// Remap points process proc's pte at the page's copy nearest to node — the
// cheap action when a hot page already has a local replica.
func (v *VM) Remap(proc mem.ProcID, p mem.GPage, node mem.NodeID) {
	tbl := v.ptes[proc]
	if !tbl[p].Valid {
		return
	}
	tbl[p].PFN = v.nearest(&v.pages[p], node)
	v.remaps++
}

// ReclaimReplicaOn frees one replica residing on node n (memory-pressure
// response: replicated pages are reclaimed preferentially). It returns the
// reclaimed page and true when a replica was found and freed; the pager's
// drain sweep uses the page to cover the eviction with a TLB flush. The
// node's replica view answers the query — the lowest-numbered page holding a
// replica on n, exactly what the machine-wide scan this replaces returned —
// with stale view entries (collapsed or released since their push) discarded
// along the way.
func (v *VM) ReclaimReplicaOn(n mem.NodeID) (mem.GPage, bool) {
	rv := &v.views[n]
	for {
		p, ok := rv.peek()
		if !ok {
			return 0, false
		}
		pi := &v.pages[p]
		idx := -1
		for i, r := range pi.Replicas {
			if r.Node == n {
				idx = i
				break
			}
		}
		if idx < 0 {
			rv.pop() // stale: the replica vanished since the entry was pushed
			continue
		}
		r := pi.Replicas[idx]
		pi.Replicas = append(pi.Replicas[:idx], pi.Replicas[idx+1:]...)
		rv.pop()
		for _, m := range pi.Mappers {
			pt := &v.ptes[m][p]
			pt.PFN = v.nearest(pi, v.Locate(m))
			pt.RO = len(pi.Replicas) > 0
		}
		v.alloc.Free(r.PFN)
		v.val.BumpPage(p)
		if v.Obs.On() {
			e := obs.NewEvent(obs.KindReplicaReclaimed)
			e.Page = int64(p)
			e.Node = int(n)
			e.N = 1
			v.Obs.EmitNow(e)
		}
		return p, true
	}
}

// ReleasePage frees every copy of page p and invalidates all mappings (used
// when a process's private pages die with it).
func (v *VM) ReleasePage(p mem.GPage) {
	pi := &v.pages[p]
	for len(pi.Mappers) > 0 {
		v.unmap(pi.Mappers[len(pi.Mappers)-1], p)
	}
	for _, r := range pi.Replicas {
		v.alloc.Free(r.PFN)
	}
	pi.Replicas = nil
	if pi.Master != mem.NoFrame {
		v.alloc.Free(pi.Master)
		pi.Master = mem.NoFrame
	}
	pi.MigCount = 0
	v.val.BumpPage(p)
}

// Wire pre-allocates page p's master on node n and marks it wired. Kernel
// regions are wired at boot.
func (v *VM) Wire(p mem.GPage, n mem.NodeID) {
	pi := &v.pages[p]
	if pi.Master != mem.NoFrame {
		panic(fmt.Sprintf("vm: wiring resident page %d", p))
	}
	f, err := v.allocRetry(n)
	if err != nil {
		panic(fmt.Sprintf("vm: out of memory wiring kernel page: %v", err))
	}
	pi.Master = f
	v.val.Assign(p, v.alloc.NodeOf(f))
	pi.Flags |= Wired
}

// ResetMigCounts zeroes every page's migrate counter (the reset-interval
// event also covers the policy's migrate threshold).
func (v *VM) ResetMigCounts() {
	for i := range v.pages {
		v.pages[i].MigCount = 0
	}
}

// Stats summarises VM activity.
type Stats struct {
	Faults    uint64
	Remaps    uint64
	Migrates  uint64
	Replics   uint64
	Collapses uint64
	// AllocRetries counts first-touch/wire allocations re-tried after a
	// transient injected failure (zero without fault injection).
	AllocRetries uint64
}

// Snapshot returns accumulated VM statistics.
func (v *VM) Snapshot() Stats {
	return Stats{Faults: v.faults, Remaps: v.remaps, Migrates: v.migrates,
		Replics: v.replics, Collapses: v.collapses, AllocRetries: v.allocRetries}
}

// CheckInvariants validates the structural invariants listed in the package
// comment, returning the first violation found.
func (v *VM) CheckInvariants() error {
	for p := range v.pages {
		pi := &v.pages[p]
		seen := map[mem.NodeID]bool{}
		if pi.Master != mem.NoFrame {
			seen[v.alloc.NodeOf(pi.Master)] = true
		}
		for _, r := range pi.Replicas {
			if pi.Master == mem.NoFrame {
				return fmt.Errorf("vm: page %d has replicas but no master", p)
			}
			if v.alloc.NodeOf(r.PFN) != r.Node {
				return fmt.Errorf("vm: page %d replica node mismatch", p)
			}
			if seen[r.Node] {
				return fmt.Errorf("vm: page %d has two copies on node %d", p, r.Node)
			}
			seen[r.Node] = true
			viewed := false
			for _, q := range v.views[r.Node].pages {
				if q == mem.GPage(p) {
					viewed = true
					break
				}
			}
			if !viewed {
				return fmt.Errorf("vm: page %d replica on node %d missing from the node's replica view", p, r.Node)
			}
		}
		for _, m := range pi.Mappers {
			if v.ptes[m] == nil || !v.ptes[m][p].Valid {
				return fmt.Errorf("vm: page %d back-map lists proc %d without a valid pte", p, m)
			}
			pfn := v.ptes[m][p].PFN
			ok := pfn == pi.Master
			for _, r := range pi.Replicas {
				ok = ok || pfn == r.PFN
			}
			if !ok {
				return fmt.Errorf("vm: proc %d pte for page %d points outside the replica chain", m, p)
			}
			if len(pi.Replicas) > 0 && !v.ptes[m][p].RO {
				return fmt.Errorf("vm: page %d replicated but proc %d pte writable", p, m)
			}
		}
	}
	for id, tbl := range v.ptes {
		if tbl == nil {
			continue
		}
		for p := range tbl {
			if !tbl[p].Valid {
				continue
			}
			found := false
			for _, m := range v.pages[p].Mappers {
				if m == mem.ProcID(id) {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("vm: proc %d maps page %d but is missing from back-map", id, p)
			}
		}
	}
	return nil
}
