package vm

import (
	"testing"
	"testing/quick"

	"ccnuma/internal/cache"
	"ccnuma/internal/kernel/alloc"
	"ccnuma/internal/mem"
	"ccnuma/internal/sim"
)

const (
	tNodes = 4
	tPages = 32
)

func newVM(place Placer) (*VM, *alloc.Allocator, *cache.Validity) {
	a := alloc.New(tNodes, 64)
	val := cache.NewValidity(tPages, 1)
	v := New(tPages, tNodes, a, val, place)
	return v, a, val
}

func TestFirstTouchPlacement(t *testing.T) {
	v, a, _ := newVM(FirstTouch)
	p := v.AddProcess()
	pte, kind := v.Touch(p, 5, 2)
	if kind != FirstTouchFault {
		t.Fatalf("kind = %v, want first-touch fault", kind)
	}
	if a.NodeOf(pte.PFN) != 2 {
		t.Fatalf("first touch placed on node %d, want 2", a.NodeOf(pte.PFN))
	}
	if pte.RO {
		t.Fatal("fresh page mapped read-only")
	}
	if _, kind := v.Touch(p, 5, 2); kind != NoFault {
		t.Fatal("second touch faulted")
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	v, a, _ := newVM(RoundRobin(tNodes))
	p := v.AddProcess()
	for pg := mem.GPage(0); pg < 8; pg++ {
		pte, _ := v.Touch(p, pg, 0)
		want := mem.NodeID(int(pg) % tNodes)
		if a.NodeOf(pte.PFN) != want {
			t.Fatalf("page %d on node %d, want %d", pg, a.NodeOf(pte.PFN), want)
		}
	}
}

func TestSecondProcessMapFault(t *testing.T) {
	v, _, _ := newVM(FirstTouch)
	p1, p2 := v.AddProcess(), v.AddProcess()
	pte1, _ := v.Touch(p1, 3, 0)
	pte2, kind := v.Touch(p2, 3, 1)
	if kind != MapFault {
		t.Fatalf("kind = %v, want map fault", kind)
	}
	if pte1.PFN != pte2.PFN {
		t.Fatal("two processes mapped different frames for the same page")
	}
	if got := len(v.Page(3).Mappers); got != 2 {
		t.Fatalf("mappers = %d, want 2", got)
	}
}

func TestMigrateRewritesAllPTEs(t *testing.T) {
	v, a, val := newVM(FirstTouch)
	p1, p2 := v.AddProcess(), v.AddProcess()
	v.Touch(p1, 3, 0)
	v.Touch(p2, 3, 0)
	old := v.Page(3).Master
	epoch := val.PageEpoch(3)
	nf := a.AllocOn(2, alloc.Base)
	if err := v.Migrate(3, nf); err != nil {
		t.Fatal(err)
	}
	if v.PTE(p1, 3).PFN != nf || v.PTE(p2, 3).PFN != nf {
		t.Fatal("pte not rewritten after migration")
	}
	if a.Allocated(old) {
		t.Fatal("old master frame not freed")
	}
	if val.PageEpoch(3) != epoch+1 {
		t.Fatal("migration did not bump the page epoch")
	}
	if v.Page(3).MigCount != 1 {
		t.Fatalf("MigCount = %d, want 1", v.Page(3).MigCount)
	}
	if err := v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReplicateMarksReadOnlyAndPointsNearest(t *testing.T) {
	v, a, val := newVM(FirstTouch)
	p1, p2 := v.AddProcess(), v.AddProcess()
	v.Locate = func(p mem.ProcID) mem.NodeID {
		if p == p1 {
			return 0
		}
		return 2
	}
	v.Touch(p1, 3, 0) // master on node 0
	v.Touch(p2, 3, 2) // maps master remotely
	epoch := val.PageEpoch(3)
	nf := a.AllocOn(2, alloc.Replica)
	if err := v.Replicate(3, nf); err != nil {
		t.Fatal(err)
	}
	if !v.PTE(p1, 3).RO || !v.PTE(p2, 3).RO {
		t.Fatal("ptes not read-only after replication")
	}
	if v.PTE(p2, 3).PFN != nf {
		t.Fatal("p2's pte should point at the node-2 replica")
	}
	if v.PTE(p1, 3).PFN != v.Page(3).Master {
		t.Fatal("p1's pte should stay on the master")
	}
	if val.PageEpoch(3) != epoch {
		t.Fatal("replication must not bump the epoch (master copy unchanged)")
	}
	if err := v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReplicateRejectsDuplicateNode(t *testing.T) {
	v, a, _ := newVM(FirstTouch)
	p := v.AddProcess()
	v.Touch(p, 1, 0)
	r := a.AllocOn(2, alloc.Replica)
	if err := v.Replicate(1, r); err != nil {
		t.Fatal(err)
	}
	r2 := a.AllocOn(2, alloc.Replica)
	if err := v.Replicate(1, r2); err == nil {
		t.Fatal("second replica on same node accepted")
	}
	a.Free(r2)
}

func TestMigrateReplicatedPageRejected(t *testing.T) {
	v, a, _ := newVM(FirstTouch)
	p := v.AddProcess()
	v.Touch(p, 1, 0)
	if err := v.Replicate(1, a.AllocOn(2, alloc.Replica)); err != nil {
		t.Fatal(err)
	}
	nf := a.AllocOn(3, alloc.Base)
	if err := v.Migrate(1, nf); err == nil {
		t.Fatal("migrated a replicated page")
	}
	a.Free(nf)
}

func TestCollapseKeepsNearestAndRestoresWrite(t *testing.T) {
	v, a, val := newVM(FirstTouch)
	p1, p2 := v.AddProcess(), v.AddProcess()
	v.Locate = func(p mem.ProcID) mem.NodeID { return 0 }
	v.Touch(p1, 3, 0)
	v.Touch(p2, 3, 0)
	rep := a.AllocOn(2, alloc.Replica)
	v.Replicate(3, rep)
	epoch := val.PageEpoch(3)
	freed := v.Collapse(3, 2) // writer on node 2: keep the node-2 replica
	if freed != 1 {
		t.Fatalf("freed = %d, want 1", freed)
	}
	if v.Page(3).Master != rep {
		t.Fatal("collapse should keep the node-2 copy as master")
	}
	if len(v.Page(3).Replicas) != 0 {
		t.Fatal("replicas survive collapse")
	}
	if v.PTE(p1, 3).RO || v.PTE(p2, 3).RO {
		t.Fatal("ptes still read-only after collapse")
	}
	if v.PTE(p1, 3).PFN != rep || v.PTE(p2, 3).PFN != rep {
		t.Fatal("ptes not pointed at the kept copy")
	}
	if val.PageEpoch(3) != epoch+1 {
		t.Fatal("collapse did not bump the page epoch")
	}
	if err := v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCollapseNoReplicasNoop(t *testing.T) {
	v, _, _ := newVM(FirstTouch)
	p := v.AddProcess()
	v.Touch(p, 3, 0)
	if freed := v.Collapse(3, 1); freed != 0 {
		t.Fatalf("collapse of unreplicated page freed %d", freed)
	}
}

func TestRemap(t *testing.T) {
	v, a, _ := newVM(FirstTouch)
	p := v.AddProcess()
	v.Touch(p, 3, 0)
	rep := a.AllocOn(2, alloc.Replica)
	v.Replicate(3, rep)
	// p was located on node 0 (default Locate), so still points at master.
	v.Remap(p, 3, 2)
	if v.PTE(p, 3).PFN != rep {
		t.Fatal("remap did not pick up the local replica")
	}
}

func TestWiredPagesRejectActions(t *testing.T) {
	v, a, _ := newVM(FirstTouch)
	v.Wire(7, 1)
	if v.MasterNode(7) != 1 {
		t.Fatal("wired page not on requested node")
	}
	nf := a.AllocOn(0, alloc.Base)
	if err := v.Migrate(7, nf); err == nil {
		t.Fatal("migrated a wired page")
	}
	if err := v.Replicate(7, nf); err == nil {
		t.Fatal("replicated a wired page")
	}
	a.Free(nf)
}

func TestRemoveProcessCleansBackMaps(t *testing.T) {
	v, _, _ := newVM(FirstTouch)
	p1, p2 := v.AddProcess(), v.AddProcess()
	v.Touch(p1, 3, 0)
	v.Touch(p2, 3, 0)
	v.RemoveProcess(p1)
	if got := len(v.Page(3).Mappers); got != 1 {
		t.Fatalf("mappers after exit = %d, want 1", got)
	}
	p3 := v.AddProcess() // must reuse the freed slot
	if p3 != p1 {
		t.Fatalf("slot reuse: got %d, want %d", p3, p1)
	}
	if err := v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReleasePageFreesEverything(t *testing.T) {
	v, a, _ := newVM(FirstTouch)
	p := v.AddProcess()
	pte, _ := v.Touch(p, 3, 0)
	rep := a.AllocOn(2, alloc.Replica)
	v.Replicate(3, rep)
	v.ReleasePage(3)
	if a.Allocated(pte.PFN) || a.Allocated(rep) {
		t.Fatal("frames leaked after release")
	}
	if v.PTE(p, 3).Valid {
		t.Fatal("pte valid after release")
	}
	if v.Page(3).Master != mem.NoFrame {
		t.Fatal("master survives release")
	}
}

func TestReclaimReplicaOn(t *testing.T) {
	v, a, _ := newVM(FirstTouch)
	p := v.AddProcess()
	v.Touch(p, 3, 0)
	rep := a.AllocOn(2, alloc.Replica)
	v.Replicate(3, rep)
	pg, ok := v.ReclaimReplicaOn(2)
	if !ok {
		t.Fatal("reclaim found nothing")
	}
	if pg != 3 {
		t.Fatalf("reclaimed page %d, want 3", pg)
	}
	if a.Allocated(rep) {
		t.Fatal("replica frame not freed")
	}
	if v.PTE(p, 3).RO {
		t.Fatal("pte still RO after last replica reclaimed")
	}
	if _, ok := v.ReclaimReplicaOn(2); ok {
		t.Fatal("reclaim found a ghost replica")
	}
	if err := v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Touch must ride out transient injected allocation failures by retrying,
// counting each retry, rather than killing the workload.
func TestTouchRetriesTransientFailures(t *testing.T) {
	v, a, _ := newVM(FirstTouch)
	p := v.AddProcess()
	remaining := 3
	a.FailHook = func(mem.NodeID) bool {
		if remaining > 0 {
			remaining--
			return true
		}
		return false
	}
	pte, kind := v.Touch(p, 7, 1)
	if kind != FirstTouchFault {
		t.Fatalf("kind = %v, want first-touch fault", kind)
	}
	if a.NodeOf(pte.PFN) != 1 {
		t.Fatalf("retried allocation landed on node %d, want 1", a.NodeOf(pte.PFN))
	}
	if got := v.Snapshot().AllocRetries; got != 3 {
		t.Fatalf("alloc retries = %d, want 3", got)
	}
}

// A transient-failure storm that outlasts the retry budget surfaces as the
// fault-handler panic instead of looping forever.
func TestTouchGivesUpAfterRetryBudget(t *testing.T) {
	v, a, _ := newVM(FirstTouch)
	p := v.AddProcess()
	a.FailHook = func(mem.NodeID) bool { return true }
	defer func() {
		if recover() == nil {
			t.Fatal("endless transient failures did not surface")
		}
	}()
	v.Touch(p, 7, 1)
}

// Property: random sequences of VM operations preserve all structural
// invariants and allocator consistency.
func TestVMInvariantProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRand(seed)
		a := alloc.New(tNodes, 64)
		val := cache.NewValidity(tPages, 1)
		v := New(tPages, tNodes, a, val, FirstTouch)
		var procs []mem.ProcID
		for i := 0; i < 4; i++ {
			procs = append(procs, v.AddProcess())
		}
		v.Locate = func(p mem.ProcID) mem.NodeID { return mem.NodeID(int(p) % tNodes) }
		for i := 0; i < 300; i++ {
			pg := mem.GPage(r.Intn(tPages))
			pi := v.Page(pg)
			switch r.Intn(6) {
			case 0, 1:
				v.Touch(procs[r.Intn(len(procs))], pg, mem.NodeID(r.Intn(tNodes)))
			case 2:
				if pi.Master != mem.NoFrame && len(pi.Replicas) == 0 {
					if f := a.AllocOn(mem.NodeID(r.Intn(tNodes)), alloc.Base); f != mem.NoFrame {
						if v.Migrate(pg, f) != nil {
							a.Free(f)
						}
					}
				}
			case 3:
				if pi.Master != mem.NoFrame {
					n := mem.NodeID(r.Intn(tNodes))
					if !v.HasReplicaOn(pg, n) {
						if f := a.AllocOn(n, alloc.Replica); f != mem.NoFrame {
							if v.Replicate(pg, f) != nil {
								a.Free(f)
							}
						}
					}
				}
			case 4:
				v.Collapse(pg, mem.NodeID(r.Intn(tNodes)))
			case 5:
				if pi.Master != mem.NoFrame && r.Bool(0.2) {
					v.ReleasePage(pg)
				}
			}
			if v.CheckInvariants() != nil || a.CheckInvariant() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
