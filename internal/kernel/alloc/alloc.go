// Package alloc is the per-node physical page allocator. Each node owns a
// free list of its local frames; the pager allocates strictly on the node
// the policy chose (a failure is the "No Page" outcome of Table 4), while
// ordinary page faults may fall back to other nodes so the workload itself
// never deadlocks on a full node.
//
// The allocator also tracks the replication space overhead of Section 7.2.3:
// frames are tagged by purpose, and peak replica usage is recorded.
package alloc

import (
	"errors"
	"fmt"

	"ccnuma/internal/mem"
)

// ErrNoFrames reports total exhaustion: no online node has a free frame.
// Callers distinguish it from a transient, injected failure (ErrTransient)
// and from the per-node failure AllocOn signals with mem.NoFrame.
var ErrNoFrames = errors.New("alloc: no free frames on any online node")

// ErrTransient reports an injected transient allocation failure (the fault
// layer's FailHook fired). Memory exists; a retry may succeed.
var ErrTransient = errors.New("alloc: transient allocation failure (injected)")

// Purpose tags why a frame was allocated.
type Purpose uint8

const (
	// Base frames hold a page's master copy.
	Base Purpose = iota
	// Replica frames hold additional copies created by the policy.
	Replica
)

// Allocator manages the machine's physical frames.
type Allocator struct {
	// FailHook, when set, is consulted on every allocation attempt and may
	// fail it transiently (the fault layer's injected allocation failures).
	// It must be deterministic for reproducible runs.
	FailHook func(n mem.NodeID) bool

	nodes     int
	perNode   int
	free      [][]mem.PFN // per-node free stacks
	purpose   []Purpose   // per frame, valid only while allocated
	allocated []bool
	offline   []bool // drained nodes: allocations refused, frames stay resident

	baseInUse    int
	replicaInUse int
	peakBase     int
	peakReplica  int
	failures     uint64 // strict allocations that found the node empty or offline
	transient    uint64 // allocations failed by the FailHook
}

// New builds an allocator for nodes nodes of perNode frames each.
func New(nodes, perNode int) *Allocator {
	a := &Allocator{
		nodes:     nodes,
		perNode:   perNode,
		free:      make([][]mem.PFN, nodes),
		purpose:   make([]Purpose, nodes*perNode),
		allocated: make([]bool, nodes*perNode),
		offline:   make([]bool, nodes),
	}
	for n := 0; n < nodes; n++ {
		stack := make([]mem.PFN, 0, perNode)
		// Push high frames first so low frames pop first (stable, readable).
		for f := perNode - 1; f >= 0; f-- {
			stack = append(stack, mem.PFN(n*perNode+f))
		}
		a.free[n] = stack
	}
	return a
}

// NodeOf returns the home node of frame f.
func (a *Allocator) NodeOf(f mem.PFN) mem.NodeID {
	return mem.NodeID(int(f) / a.perNode)
}

// FreeOn returns the number of free frames on a node.
func (a *Allocator) FreeOn(n mem.NodeID) int { return len(a.free[n]) }

// AllocOn allocates a frame strictly on node n. It returns mem.NoFrame when
// the node's memory is exhausted, offline, or the FailHook fails the attempt
// (the pager records this as a No-Page failure, matching the paper's
// behaviour of not falling back).
func (a *Allocator) AllocOn(n mem.NodeID, p Purpose) mem.PFN {
	if a.offline[n] || len(a.free[n]) == 0 {
		a.failures++
		return mem.NoFrame
	}
	if a.FailHook != nil && a.FailHook(n) {
		a.failures++
		a.transient++
		return mem.NoFrame
	}
	return a.pop(n, p)
}

// AllocAnywhere allocates on node pref if possible, otherwise on the online
// node with the most free memory. Page faults use this path. The error is
// ErrTransient when the FailHook failed the attempt (memory exists; retry)
// and ErrNoFrames when no online node has a free frame.
func (a *Allocator) AllocAnywhere(pref mem.NodeID, p Purpose) (mem.PFN, error) {
	if a.FailHook != nil && a.FailHook(pref) {
		a.transient++
		return mem.NoFrame, ErrTransient
	}
	if !a.offline[pref] && len(a.free[pref]) > 0 {
		return a.pop(pref, p), nil
	}
	best, bestFree := mem.NodeID(-1), 0
	for n := 0; n < a.nodes; n++ {
		if !a.offline[n] && len(a.free[n]) > bestFree {
			best, bestFree = mem.NodeID(n), len(a.free[n])
		}
	}
	if best < 0 {
		a.failures++
		return mem.NoFrame, ErrNoFrames
	}
	return a.pop(best, p), nil
}

// pop removes node n's top free frame (the node must have one).
func (a *Allocator) pop(n mem.NodeID, p Purpose) mem.PFN {
	stack := a.free[n]
	f := stack[len(stack)-1]
	a.free[n] = stack[:len(stack)-1]
	a.take(f, p)
	return f
}

// SetOffline marks node n drained (or restores it): while offline, AllocOn
// on the node fails and AllocAnywhere skips it. Frames already allocated
// stay resident and may still be freed back to the node.
func (a *Allocator) SetOffline(n mem.NodeID, off bool) { a.offline[n] = off }

// Offline reports whether node n's memory is drained.
func (a *Allocator) Offline(n mem.NodeID) bool { return a.offline[n] }

func (a *Allocator) take(f mem.PFN, p Purpose) {
	if a.allocated[f] {
		panic(fmt.Sprintf("alloc: frame %d double-allocated", f))
	}
	a.allocated[f] = true
	a.purpose[f] = p
	switch p {
	case Replica:
		a.replicaInUse++
		if a.replicaInUse > a.peakReplica {
			a.peakReplica = a.replicaInUse
		}
	default:
		a.baseInUse++
		if a.baseInUse > a.peakBase {
			a.peakBase = a.baseInUse
		}
	}
}

// Free returns a frame to its node's free list.
func (a *Allocator) Free(f mem.PFN) {
	if !a.allocated[f] {
		panic(fmt.Sprintf("alloc: frame %d double-freed", f))
	}
	a.allocated[f] = false
	switch a.purpose[f] {
	case Replica:
		a.replicaInUse--
	default:
		a.baseInUse--
	}
	n := a.NodeOf(f)
	a.free[n] = append(a.free[n], f)
}

// Allocated reports whether frame f is currently allocated.
func (a *Allocator) Allocated(f mem.PFN) bool { return a.allocated[f] }

// UsageOn returns one node's memory picture: free frames, and allocated
// frames split into master copies and replicas (the sampler's per-node
// time-series).
func (a *Allocator) UsageOn(n mem.NodeID) (free, base, replica int) {
	free = len(a.free[n])
	lo, hi := int(n)*a.perNode, (int(n)+1)*a.perNode
	for f := lo; f < hi; f++ {
		if !a.allocated[f] {
			continue
		}
		if a.purpose[f] == Replica {
			replica++
		} else {
			base++
		}
	}
	return free, base, replica
}

// Pressure reports whether node n is under memory pressure: fewer than
// lowWater frames free, or the node drained entirely. The policy stops
// replicating onto pressured nodes.
func (a *Allocator) Pressure(n mem.NodeID, lowWater int) bool {
	return a.offline[n] || len(a.free[n]) < lowWater
}

// Stats describes allocator usage.
type Stats struct {
	BaseInUse    int
	ReplicaInUse int
	PeakBase     int
	PeakReplica  int
	Failures     uint64
	// TransientFailures counts allocations failed by the fault layer's
	// FailHook (a subset of Failures only on the AllocOn path; AllocAnywhere
	// transients are counted here alone).
	TransientFailures uint64
}

// Snapshot returns usage statistics. ReplicaOverhead (Section 7.2.3) is
// PeakReplica / PeakBase.
func (a *Allocator) Snapshot() Stats {
	return Stats{
		BaseInUse:         a.baseInUse,
		ReplicaInUse:      a.replicaInUse,
		PeakBase:          a.peakBase,
		PeakReplica:       a.peakReplica,
		Failures:          a.failures,
		TransientFailures: a.transient,
	}
}

// ReplicaOverhead returns the peak replica memory as a fraction of the peak
// base memory, the Section 7.2.3 space-overhead measure.
func (s Stats) ReplicaOverhead() float64 {
	if s.PeakBase == 0 {
		return 0
	}
	return float64(s.PeakReplica) / float64(s.PeakBase)
}

// CheckInvariant verifies free+allocated == capacity on every node and
// returns an error describing the first violation (nil when consistent).
func (a *Allocator) CheckInvariant() error {
	for n := 0; n < a.nodes; n++ {
		inUse := 0
		lo, hi := n*a.perNode, (n+1)*a.perNode
		for f := lo; f < hi; f++ {
			if a.allocated[f] {
				inUse++
			}
		}
		if inUse+len(a.free[n]) != a.perNode {
			return fmt.Errorf("alloc: node %d holds %d allocated + %d free != %d frames",
				n, inUse, len(a.free[n]), a.perNode)
		}
	}
	return nil
}
