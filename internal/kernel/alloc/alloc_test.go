package alloc

import (
	"errors"
	"testing"
	"testing/quick"

	"ccnuma/internal/mem"
	"ccnuma/internal/sim"
)

func TestAllocOnStaysOnNode(t *testing.T) {
	a := New(4, 8)
	for n := mem.NodeID(0); n < 4; n++ {
		f := a.AllocOn(n, Base)
		if f == mem.NoFrame {
			t.Fatalf("node %d empty at start", n)
		}
		if a.NodeOf(f) != n {
			t.Fatalf("frame %d not on node %d", f, n)
		}
	}
}

func TestAllocOnFailsWhenNodeFull(t *testing.T) {
	a := New(2, 4)
	for i := 0; i < 4; i++ {
		if a.AllocOn(0, Base) == mem.NoFrame {
			t.Fatal("premature exhaustion")
		}
	}
	if a.AllocOn(0, Base) != mem.NoFrame {
		t.Fatal("over-allocated node 0")
	}
	if a.Snapshot().Failures != 1 {
		t.Fatal("failure not counted")
	}
	if a.AllocOn(1, Base) == mem.NoFrame {
		t.Fatal("node 1 should still have frames")
	}
}

func TestAllocAnywhereFallsBack(t *testing.T) {
	a := New(2, 2)
	a.AllocOn(0, Base)
	a.AllocOn(0, Base)
	f, err := a.AllocAnywhere(0, Base)
	if err != nil {
		t.Fatalf("fallback failed with free frames on node 1: %v", err)
	}
	if a.NodeOf(f) != 1 {
		t.Fatalf("fallback frame on node %d, want 1", a.NodeOf(f))
	}
	a.AllocAnywhere(1, Base)
	if _, err := a.AllocAnywhere(0, Base); err == nil {
		t.Fatal("allocation succeeded on an empty machine")
	}
}

// Regression: exhausting every node must yield the typed ErrNoFrames, not a
// bare failure, so callers can tell "machine full" from "retry later".
func TestAllocAnywhereErrNoFrames(t *testing.T) {
	a := New(2, 2)
	for i := 0; i < 4; i++ {
		if _, err := a.AllocAnywhere(mem.NodeID(i%2), Base); err != nil {
			t.Fatalf("alloc %d failed early: %v", i, err)
		}
	}
	_, err := a.AllocAnywhere(0, Base)
	if !errors.Is(err, ErrNoFrames) {
		t.Fatalf("exhausted machine returned %v, want ErrNoFrames", err)
	}
	if errors.Is(err, ErrTransient) {
		t.Fatal("ErrNoFrames must not match ErrTransient")
	}
	if a.Snapshot().Failures != 1 {
		t.Fatalf("failures = %d, want 1", a.Snapshot().Failures)
	}
}

func TestFailHookTransient(t *testing.T) {
	a := New(2, 4)
	fail := true
	a.FailHook = func(mem.NodeID) bool { return fail }

	if _, err := a.AllocAnywhere(0, Base); !errors.Is(err, ErrTransient) {
		t.Fatal("FailHook did not surface as ErrTransient")
	}
	if a.AllocOn(0, Base) != mem.NoFrame {
		t.Fatal("FailHook did not fail AllocOn")
	}
	s := a.Snapshot()
	if s.TransientFailures != 2 {
		t.Fatalf("transient failures = %d, want 2", s.TransientFailures)
	}
	// AllocOn counts its hook failure in Failures too; AllocAnywhere does not
	// (memory exists, nothing was actually exhausted).
	if s.Failures != 1 {
		t.Fatalf("failures = %d, want 1", s.Failures)
	}

	fail = false
	if _, err := a.AllocAnywhere(0, Base); err != nil {
		t.Fatalf("alloc failed after hook cleared: %v", err)
	}
}

func TestOfflineNode(t *testing.T) {
	a := New(2, 2)
	a.SetOffline(0, true)
	if !a.Offline(0) || a.Offline(1) {
		t.Fatal("offline flags wrong")
	}
	if a.AllocOn(0, Base) != mem.NoFrame {
		t.Fatal("allocated on an offline node")
	}
	f, err := a.AllocAnywhere(0, Base)
	if err != nil {
		t.Fatalf("fallback off the offline node failed: %v", err)
	}
	if a.NodeOf(f) != 1 {
		t.Fatalf("AllocAnywhere placed frame on node %d, want 1", a.NodeOf(f))
	}
	// Frames already resident can still be freed back while offline.
	a.Free(f)
	a.SetOffline(0, false)
	if a.AllocOn(0, Base) == mem.NoFrame {
		t.Fatal("node did not come back online")
	}
}

func TestFreeAndReuse(t *testing.T) {
	a := New(1, 1)
	f := a.AllocOn(0, Base)
	a.Free(f)
	if g := a.AllocOn(0, Base); g != f {
		t.Fatalf("reallocated %d, want %d", g, f)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := New(1, 2)
	f := a.AllocOn(0, Base)
	a.Free(f)
	defer func() {
		if recover() == nil {
			t.Fatal("double free not caught")
		}
	}()
	a.Free(f)
}

func TestReplicaAccounting(t *testing.T) {
	a := New(1, 8)
	a.AllocOn(0, Base)
	r1 := a.AllocOn(0, Replica)
	r2 := a.AllocOn(0, Replica)
	s := a.Snapshot()
	if s.BaseInUse != 1 || s.ReplicaInUse != 2 || s.PeakReplica != 2 {
		t.Fatalf("stats = %+v", s)
	}
	a.Free(r1)
	a.Free(r2)
	s = a.Snapshot()
	if s.ReplicaInUse != 0 || s.PeakReplica != 2 {
		t.Fatalf("post-free stats = %+v", s)
	}
	if got := s.ReplicaOverhead(); got != 2.0 {
		t.Fatalf("replica overhead = %v, want 2.0", got)
	}
}

func TestPressure(t *testing.T) {
	a := New(1, 10)
	if a.Pressure(0, 4) {
		t.Fatal("fresh node under pressure")
	}
	for i := 0; i < 7; i++ {
		a.AllocOn(0, Base)
	}
	if !a.Pressure(0, 4) {
		t.Fatal("node with 3 free frames not under pressure at lowWater 4")
	}
}

// Pressure boundaries: free == lowWater is not pressured (strict less-than),
// lowWater 0 never pressures an online node, and a drained node is always
// pressured regardless of free memory.
func TestPressureBoundaries(t *testing.T) {
	a := New(1, 10)
	for i := 0; i < 6; i++ {
		a.AllocOn(0, Base)
	}
	if a.Pressure(0, 4) {
		t.Fatal("free == lowWater reported as pressure")
	}
	if !a.Pressure(0, 5) {
		t.Fatal("free < lowWater not reported as pressure")
	}
	if a.Pressure(0, 0) {
		t.Fatal("lowWater 0 pressured an online node")
	}
	a.SetOffline(0, true)
	if !a.Pressure(0, 0) {
		t.Fatal("drained node not under pressure at lowWater 0")
	}
	if !a.Pressure(0, 4) {
		t.Fatal("drained node with free frames not under pressure")
	}
}

// Property: any interleaving of allocs and frees preserves
// free+allocated == capacity and never hands out the same frame twice.
func TestAllocatorInvariantProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRand(seed)
		a := New(3, 16)
		var live []mem.PFN
		for i := 0; i < 400; i++ {
			if r.Bool(0.55) {
				p := Base
				if r.Bool(0.3) {
					p = Replica
				}
				f, err := a.AllocAnywhere(mem.NodeID(r.Intn(3)), p)
				if err == nil {
					for _, x := range live {
						if x == f {
							return false // double allocation
						}
					}
					live = append(live, f)
				}
			} else if len(live) > 0 {
				i := r.Intn(len(live))
				a.Free(live[i])
				live = append(live[:i], live[i+1:]...)
			}
			if a.CheckInvariant() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
