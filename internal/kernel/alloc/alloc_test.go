package alloc

import (
	"testing"
	"testing/quick"

	"ccnuma/internal/mem"
	"ccnuma/internal/sim"
)

func TestAllocOnStaysOnNode(t *testing.T) {
	a := New(4, 8)
	for n := mem.NodeID(0); n < 4; n++ {
		f := a.AllocOn(n, Base)
		if f == mem.NoFrame {
			t.Fatalf("node %d empty at start", n)
		}
		if a.NodeOf(f) != n {
			t.Fatalf("frame %d not on node %d", f, n)
		}
	}
}

func TestAllocOnFailsWhenNodeFull(t *testing.T) {
	a := New(2, 4)
	for i := 0; i < 4; i++ {
		if a.AllocOn(0, Base) == mem.NoFrame {
			t.Fatal("premature exhaustion")
		}
	}
	if a.AllocOn(0, Base) != mem.NoFrame {
		t.Fatal("over-allocated node 0")
	}
	if a.Snapshot().Failures != 1 {
		t.Fatal("failure not counted")
	}
	if a.AllocOn(1, Base) == mem.NoFrame {
		t.Fatal("node 1 should still have frames")
	}
}

func TestAllocAnywhereFallsBack(t *testing.T) {
	a := New(2, 2)
	a.AllocOn(0, Base)
	a.AllocOn(0, Base)
	f := a.AllocAnywhere(0, Base)
	if f == mem.NoFrame {
		t.Fatal("fallback failed with free frames on node 1")
	}
	if a.NodeOf(f) != 1 {
		t.Fatalf("fallback frame on node %d, want 1", a.NodeOf(f))
	}
	a.AllocAnywhere(1, Base)
	if a.AllocAnywhere(0, Base) != mem.NoFrame {
		t.Fatal("allocation succeeded on an empty machine")
	}
}

func TestFreeAndReuse(t *testing.T) {
	a := New(1, 1)
	f := a.AllocOn(0, Base)
	a.Free(f)
	if g := a.AllocOn(0, Base); g != f {
		t.Fatalf("reallocated %d, want %d", g, f)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := New(1, 2)
	f := a.AllocOn(0, Base)
	a.Free(f)
	defer func() {
		if recover() == nil {
			t.Fatal("double free not caught")
		}
	}()
	a.Free(f)
}

func TestReplicaAccounting(t *testing.T) {
	a := New(1, 8)
	a.AllocOn(0, Base)
	r1 := a.AllocOn(0, Replica)
	r2 := a.AllocOn(0, Replica)
	s := a.Snapshot()
	if s.BaseInUse != 1 || s.ReplicaInUse != 2 || s.PeakReplica != 2 {
		t.Fatalf("stats = %+v", s)
	}
	a.Free(r1)
	a.Free(r2)
	s = a.Snapshot()
	if s.ReplicaInUse != 0 || s.PeakReplica != 2 {
		t.Fatalf("post-free stats = %+v", s)
	}
	if got := s.ReplicaOverhead(); got != 2.0 {
		t.Fatalf("replica overhead = %v, want 2.0", got)
	}
}

func TestPressure(t *testing.T) {
	a := New(1, 10)
	if a.Pressure(0, 4) {
		t.Fatal("fresh node under pressure")
	}
	for i := 0; i < 7; i++ {
		a.AllocOn(0, Base)
	}
	if !a.Pressure(0, 4) {
		t.Fatal("node with 3 free frames not under pressure at lowWater 4")
	}
}

// Property: any interleaving of allocs and frees preserves
// free+allocated == capacity and never hands out the same frame twice.
func TestAllocatorInvariantProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRand(seed)
		a := New(3, 16)
		var live []mem.PFN
		for i := 0; i < 400; i++ {
			if r.Bool(0.55) {
				p := Base
				if r.Bool(0.3) {
					p = Replica
				}
				f := a.AllocAnywhere(mem.NodeID(r.Intn(3)), p)
				if f != mem.NoFrame {
					for _, x := range live {
						if x == f {
							return false // double allocation
						}
					}
					live = append(live, f)
				}
			} else if len(live) > 0 {
				i := r.Intn(len(live))
				a.Free(live[i])
				live = append(live[:i], live[i+1:]...)
			}
			if a.CheckInvariant() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
