// Package serve is the simulation-as-a-service layer behind cmd/numasimd: an
// HTTP/JSON frontend over the core simulator whose robustness properties —
// bounded queues, load shedding, deadline propagation, clean drain — are
// first-class, the shape an interactive what-if frontend over the paper's
// policy space needs.
//
// # Request path
//
// POST /run carries a Request (a core.Options-shaped JSON document naming a
// workload, policy, machine config, and optional fault injection). The
// server validates it, fingerprints the resulting options (the same
// core.Options.Fingerprint the report memo keys on), and answers from a
// bounded content-addressed cache: identical what-ifs cost one simulation
// (single-flight), distinct ones evict least-recently-used entries once the
// cache is full. Responses are byte-identical to `numasim -json` for the
// same options — both render through WriteResultJSON.
//
// # Admission and overload
//
// Admission is a two-stage token scheme. A request first takes a queue slot
// (capacity Workers+QueueDepth); none free means the server is saturated and
// the request is rejected immediately with 429 and a Retry-After — never an
// unbounded goroutine pile. Admitted requests then wait for one of Workers
// run slots before simulating. Shedding prefers queued work over running
// work: a drain rejects the waiters (503) while in-flight simulations finish.
//
// # Deadlines
//
// Every request runs under a context deadline (the server's RequestTimeout).
// The deadline propagates through report.Harness into the engine's run loop,
// which polls cancellation every ~1k dispatched events, so a timed-out or
// abandoned query stops simulating within microseconds — no goroutine keeps
// burning CPU toward a virtual deadline nobody will read.
//
// # Failure isolation
//
// A run that panics is contained by the harness's child-goroutine recovery
// and answered as a structured failure body carrying the flight recorder's
// dump (the run's last obs events), so a crash is a diagnosable response,
// not a dead connection. Failures are never cached.
//
// # Lifecycle
//
// The state machine is accepting → draining → stopped. SIGTERM (handled by
// cmd/numasimd) calls Shutdown: the server stops admitting (new requests
// 503), sheds the queue, waits for in-flight runs up to DrainTimeout, then
// cancels stragglers cooperatively and flushes the cache index through Logf.
// /healthz reports queue depth, run occupancy, and cache counters; /readyz
// flips to 503 the moment the drain begins (and while the queue is full), so
// a load balancer stops routing before the listener closes.
package serve
