package serve

import (
	"bytes"
	"encoding/json"
	"io"

	"ccnuma/internal/core"
)

// Summary flattens a result into the machine-readable shape `numasim -json`
// prints (per-CPU breakdowns omitted; use the library for full detail). The
// CLI and the server both render through WriteResultJSON below, so a served
// response is byte-identical to the CLI's output for the same options — the
// serve-smoke check diffs the two.
func Summary(r *core.Result) map[string]any {
	_, local, remote := r.Agg.MemStall()
	return map[string]any{
		"workload":            r.Workload,
		"policy":              r.Policy,
		"elapsed_ns":          int64(r.Elapsed),
		"nonidle_ns":          int64(r.Agg.NonIdle()),
		"idle_ns":             int64(r.Agg.Idle),
		"stall_local_ns":      int64(local),
		"stall_remote_ns":     int64(remote),
		"pager_overhead_ns":   int64(r.Agg.Pager.Total()),
		"local_miss_fraction": r.LocalMissFraction,
		"avg_remote_ns":       int64(r.AvgRemoteLatency),
		"sched_migrations":    r.SchedMigrations,
		"steps":               r.Steps,
		"vm": map[string]uint64{
			"faults": r.VM.Faults, "migrations": r.VM.Migrates,
			"replications": r.VM.Replics, "collapses": r.VM.Collapses,
			"remaps": r.VM.Remaps,
		},
		"actions": map[string]uint64{
			"hot_pages": r.Actions.HotPages, "migrate": r.Actions.Migrations,
			"replicate": r.Actions.Replicas, "no_action": r.Actions.NoAction,
			"no_page": r.Actions.NoPage,
		},
		"alloc": map[string]any{
			"peak_base": r.Alloc.PeakBase, "peak_replica": r.Alloc.PeakReplica,
			"replica_overhead": r.Alloc.ReplicaOverhead(),
		},
	}
}

// WriteResultJSON renders the summary as indented JSON plus a trailing
// newline — exactly the bytes `numasim -json` emits.
func WriteResultJSON(w io.Writer, r *core.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Summary(r))
}

// ResultJSON returns the rendered bytes (what the cache stores: results are
// cached post-render so a hit is a single write, no re-encoding).
func ResultJSON(r *core.Result) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteResultJSON(&buf, r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
