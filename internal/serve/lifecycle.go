package serve

import (
	"time"
)

// Shutdown drains the server: accepting → draining → stopped.
//
//  1. Flip draining under the admission lock — every later request is
//     refused with 503 before it touches a queue slot.
//  2. Close drainCh — requests waiting for a run slot are shed with 503
//     immediately. Shedding queued work first is deliberate: those requests
//     have received nothing yet, while running simulations represent paid-for
//     CPU about to produce an answer.
//  3. Wait for in-flight handlers up to DrainTimeout. Past the deadline,
//     cancel baseCtx: every straggler's request context dies, the engine
//     loops notice within ~1k events, and the handlers still exit through
//     the normal join — nothing is abandoned mid-write.
//  4. Flush the cache index through Logf so the operator can see what was
//     warm, and report whether the drain was clean.
//
// Shutdown returns true when every in-flight request completed within the
// deadline (the process should exit 0) and is idempotent: later calls return
// the first drain's outcome once it finishes.
func (s *Server) Shutdown() bool {
	s.admitMu.Lock()
	first := !s.draining
	if first {
		s.draining = true
		close(s.drainCh)
	}
	s.admitMu.Unlock()
	if first {
		s.logf("drain: admission closed, waiting up to %v for %d running", s.cfg.DrainTimeout, s.running.Load())
	}

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	clean := true
	timer := time.NewTimer(s.cfg.DrainTimeout)
	//numalint:allow determinism the drain deadline is wall-clock by nature; it decides process exit, never result bytes
	select {
	case <-done:
		timer.Stop()
	case <-timer.C:
		clean = false
		s.logf("drain: deadline expired, cancelling stragglers")
		s.baseCancel()
		<-done
	}
	s.baseCancel() // release the AfterFunc goroutine even on a clean drain

	st := s.cache.stats()
	s.logf("drain: complete clean=%v served=%d rejected=%d cache entries=%d hits=%d misses=%d evictions=%d",
		clean, s.served.Load(), s.rejected.Load(), st.Entries, st.Hits, st.Misses, st.Evictions)
	for i, key := range s.cache.index() {
		s.logf("cache[%d] %s", i, key)
	}
	return clean
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	return s.draining
}

// AdmittedHighWater returns the maximum number of requests that ever held a
// queue slot at once — the lifecycle tests assert it never exceeds
// Workers+QueueDepth under load.
func (s *Server) AdmittedHighWater() int64 { return s.admittedHW.Load() }
