package serve

import (
	"fmt"
	"net/http"
	"testing"
)

// BenchmarkServeCachedHit measures the warm path: request parsing, admission,
// and a content-addressed cache hit — what an interactive frontend pays for a
// repeated what-if. No simulation runs after the first iteration.
func BenchmarkServeCachedHit(b *testing.B) {
	s := New(Config{Workers: 2})
	defer s.Shutdown()
	if rec := post(s, smallBody); rec.Code != http.StatusOK {
		b.Fatalf("warmup: %d", rec.Code)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rec := post(s, smallBody); rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkServeUncached measures the cold path: a full small simulation per
// request (distinct seeds defeat the cache), i.e. the marginal cost of a
// novel what-if end to end through admission, harness, and rendering.
func BenchmarkServeUncached(b *testing.B) {
	s := New(Config{Workers: 2, CacheEntries: -1})
	defer s.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"workload":"engineering","scale":0.05,"duration_ns":4000000,"seed":%d}`, i+1)
		if rec := post(s, body); rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}
