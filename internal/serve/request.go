package serve

import (
	"fmt"

	"ccnuma/internal/core"
	"ccnuma/internal/fault"
	"ccnuma/internal/policy"
	"ccnuma/internal/sim"
	"ccnuma/internal/topology"
	"ccnuma/internal/workload"
)

// Request is the wire shape of one simulation query: the same knobs numasim
// exposes as flags, so a server response can be byte-diffed against the CLI.
// cmd/numasim builds its options through this type too — one option-building
// path means the byte-identity between the two is by construction, not by
// parallel maintenance.
type Request struct {
	// Workload names the paper workload to run (workload.ByName).
	Workload string `json:"workload"`
	// Policy is the placement policy: rr|ft|migr|repl|migrep. Empty means
	// migrep, the CLI default.
	Policy string `json:"policy,omitempty"`
	// Config is the machine preset: ccnuma|ccnow|zeronet (empty = ccnuma).
	Config string `json:"config,omitempty"`
	// Scale is the workload scale factor (0 = 1.0).
	Scale float64 `json:"scale,omitempty"`
	// Seed is the run's random seed. Absent means 42, the CLI default; the
	// pointer keeps an explicit seed of 0 distinct from "use the default".
	Seed *uint64 `json:"seed,omitempty"`
	// Shards and Workers are execution knobs (per-node event lanes, guarded
	// epoch workers). Fingerprint-erased: they cannot change results or
	// cache keys.
	Shards  int `json:"shards,omitempty"`
	Workers int `json:"workers,omitempty"`
	// DurationNS overrides the workload's run length (simulated time).
	DurationNS int64 `json:"duration_ns,omitempty"`
	// Trigger overrides the policy trigger threshold (0 = workload default).
	Trigger uint16 `json:"trigger,omitempty"`
	// Metric is the counter information source: fc|sc|ft|st (empty = fc).
	Metric string `json:"metric,omitempty"`
	// TrackTLB and DirCopy are the machine-model ablations (-track-tlb,
	// -dir-copy).
	TrackTLB bool `json:"track_tlb,omitempty"`
	DirCopy  bool `json:"dir_copy,omitempty"`
	// Adaptive, Reclaim, MigWriteShared, NoRemap are the policy extensions;
	// they apply only to the dynamic policies, as in the CLI.
	Adaptive       bool `json:"adaptive,omitempty"`
	Reclaim        bool `json:"reclaim,omitempty"`
	MigWriteShared bool `json:"mig_wshared,omitempty"`
	NoRemap        bool `json:"no_remap,omitempty"`
	// Faults carries a deterministic fault-injection config: chaos as a
	// service, reproducible for a fixed seed like everything else.
	Faults *fault.Config `json:"faults,omitempty"`
	// Stream asks for an NDJSON progress stream (the run's typed obs events
	// as they happen, then a final result or error line) instead of a single
	// JSON document. Streamed responses bypass the result cache.
	Stream bool `json:"stream,omitempty"`
}

// defaultSeed matches the numasim -seed default.
const defaultSeed = 42

// Job is a validated, executable simulation request.
type Job struct {
	// Label names the run in logs and failure manifests.
	Label string
	// Key is the content address for the result cache: workload identity
	// (name, scale — spec properties outside core.Options) plus the full
	// options fingerprint.
	Key string
	// Opt is the assembled option set.
	Opt core.Options
	// Spec builds a fresh workload spec (specs hold generator state, so one
	// is built per attempt).
	Spec func() *workload.Spec
	// Stream mirrors Request.Stream.
	Stream bool
}

// Build validates the request and assembles the simulation inputs. Errors
// are user errors (HTTP 400): an unknown workload, policy, config, or
// metric, a bad scale, or an invalid fault config surface here, before any
// queue slot or simulation time is spent.
func (r Request) Build() (*Job, error) {
	if r.Workload == "" {
		return nil, fmt.Errorf("serve: missing workload")
	}
	build, err := workload.ByName(r.Workload)
	if err != nil {
		return nil, err
	}
	scale := r.Scale
	if scale == 0 {
		scale = 1.0
	}
	if scale < 0 {
		return nil, fmt.Errorf("serve: negative scale %v", scale)
	}
	seed := uint64(defaultSeed)
	if r.Seed != nil {
		seed = *r.Seed
	}

	var cfg topology.Config
	switch r.Config {
	case "", "ccnuma":
		cfg = topology.CCNUMA()
	case "ccnow":
		cfg = topology.CCNOW()
	case "zeronet":
		cfg = topology.ZeroNet()
	default:
		return nil, fmt.Errorf("serve: unknown config %q", r.Config)
	}
	cfg.TrackTLBHolders = r.TrackTLB
	cfg.DirCopy = r.DirCopy

	opt := core.Options{
		Config:   cfg,
		Seed:     seed,
		Shards:   r.Shards,
		Workers:  r.Workers,
		Duration: sim.Time(r.DurationNS),
	}
	switch r.Metric {
	case "", "fc":
		opt.Metric = core.FullCache
	case "sc":
		opt.Metric = core.SampledCache
	case "ft":
		opt.Metric = core.FullTLB
	case "st":
		opt.Metric = core.SampledTLB
	default:
		return nil, fmt.Errorf("serve: unknown metric %q", r.Metric)
	}

	// The trigger default lives on the spec; build one up front for it (and
	// to surface workload construction panics as Build-time errors, not
	// run-time failures).
	spec0 := build(scale, seed)
	pol := r.Policy
	if pol == "" {
		pol = "migrep"
	}
	switch pol {
	case "rr":
		opt.RoundRobin = true
	case "ft":
	case "migr", "repl", "migrep":
		opt.Dynamic = true
		opt.Params = policy.Base().WithTrigger(spec0.Trigger)
		if r.Trigger > 0 {
			opt.Params = opt.Params.WithTrigger(r.Trigger)
		}
		if pol == "migr" {
			opt.Params = opt.Params.MigrationOnly()
		}
		if pol == "repl" {
			opt.Params = opt.Params.ReplicationOnly()
		}
		opt.Params.MigrateWriteShared = r.MigWriteShared
		opt.Params.DisableRemap = r.NoRemap
		opt.AdaptiveTrigger = r.Adaptive
		opt.ReclaimColdReplicas = r.Reclaim
	default:
		return nil, fmt.Errorf("serve: unknown policy %q", pol)
	}
	if r.Faults != nil {
		opt.Faults = *r.Faults
		if err := opt.Faults.Validate(cfg.Nodes); err != nil {
			return nil, err
		}
	}

	return &Job{
		Label:  r.Workload + "/" + pol,
		Key:    fmt.Sprintf("%s|%g|%s", r.Workload, scale, opt.Fingerprint()),
		Opt:    opt,
		Spec:   func() *workload.Spec { return build(scale, seed) },
		Stream: r.Stream,
	}, nil
}
