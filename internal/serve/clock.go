package serve

import "time"

// The server's wall-clock reads all funnel through these helpers, mirroring
// internal/report's clock.go. A server legitimately needs wall time — request
// latency logging, drain deadlines — but wall time is exactly what the
// numalint determinism check keeps out of result bytes. Concentrating the
// reads here keeps the `//numalint:allow determinism` directives in one
// audited place and makes any new `time.Now` elsewhere in the package a lint
// finding. Response bodies never depend on these values: a deadline expiry
// is a failure body, never a different result.

// wallNow reads the wall clock (monotonic per the time package's guarantee).
func wallNow() time.Time {
	return time.Now() //numalint:allow determinism the server's single audited wall-clock read; never feeds response bodies
}

// wallSince returns the wall time elapsed since t.
func wallSince(t time.Time) time.Duration {
	return time.Since(t) //numalint:allow determinism the server's single audited wall-clock read; never feeds response bodies
}
