package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ccnuma/internal/core"
)

// smallBody is a fast request: engineering at 5% scale for 5ms of simulated
// time completes in well under a second of wall clock.
const smallBody = `{"workload":"engineering","scale":0.05,"duration_ns":5000000}`

func post(s *Server, body string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/run", strings.NewReader(body))
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func get(s *Server, path string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// waitUntil polls cond, failing the test if it never holds.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// directRun renders what the CLI would print for the same request — the
// byte-identity oracle.
func directRun(t *testing.T, body string) []byte {
	t.Helper()
	var req Request
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	job, err := req.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(job.Spec(), job.Opt)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ResultJSON(res)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRunByteIdentity: a served response carries exactly the bytes
// `numasim -json` would print, concurrent identical requests all get them
// (single-flight: one simulation), and a later identical request is a cache
// hit.
func TestRunByteIdentity(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Shutdown()
	want := directRun(t, smallBody)

	const n = 4
	recs := make([]*httptest.ResponseRecorder, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i] = post(s, smallBody)
		}(i)
	}
	wg.Wait()
	for i, rec := range recs {
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, rec.Code, rec.Body.String())
		}
		if !bytes.Equal(rec.Body.Bytes(), want) {
			t.Fatalf("request %d: body differs from the CLI rendering:\n%s\nwant:\n%s", i, rec.Body.String(), want)
		}
	}
	if executed, _ := s.harness.Counters(); executed != 1 {
		t.Fatalf("executed = %d simulations for %d identical requests, want 1 (single-flight)", executed, n)
	}

	rec := post(s, smallBody)
	if rec.Code != http.StatusOK || !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatalf("post-warm request: status %d", rec.Code)
	}
	if st := s.cache.stats(); st.Hits == 0 {
		t.Fatalf("cache stats after a warm request: %+v, want a hit", st)
	}
}

// TestBadRequests: malformed input is answered 400 before any capacity is
// spent, and never occupies a queue slot.
func TestBadRequests(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown()
	cases := []struct {
		name, body string
	}{
		{"unknown field", `{"workload":"engineering","bogus":1}`},
		{"unknown workload", `{"workload":"no-such-thing"}`},
		{"unknown policy", `{"workload":"engineering","policy":"wat"}`},
		{"unknown config", `{"workload":"engineering","config":"wat"}`},
		{"unknown metric", `{"workload":"engineering","metric":"wat"}`},
		{"missing workload", `{}`},
		{"negative scale", `{"workload":"engineering","scale":-1}`},
		{"bad fault config", `{"workload":"engineering","faults":{"drop_batch":2}}`},
		{"not json", `hello`},
	}
	for _, c := range cases {
		rec := post(s, c.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", c.name, rec.Code, rec.Body.String())
		}
		var eb errorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: error body unparseable: %s", c.name, rec.Body.String())
		}
	}
	if rec := get(s, "/run"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /run: status %d, want 405", rec.Code)
	}
	if hw := s.AdmittedHighWater(); hw != 0 {
		t.Errorf("bad requests consumed queue slots: high water %d", hw)
	}
}

// TestBackpressureQueueBound hammers a Workers=1, QueueDepth=2 server with
// 100 concurrent distinct requests while the one worker is wedged. Exactly
// capacity (3) requests may hold slots; the remaining 97 must be shed
// immediately with 429 + Retry-After — the bounded-admission invariant.
func TestBackpressureQueueBound(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	gate := make(chan struct{})
	s.harness.PreRun = func(string, core.Options) { <-gate }

	const hammer = 100
	capacity := int64(s.cfg.Workers + s.cfg.QueueDepth)
	var ok, shed, other atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < hammer; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds: distinct cache keys, so single-flight cannot
			// collapse the load away.
			body := fmt.Sprintf(`{"workload":"engineering","scale":0.05,"duration_ns":5000000,"seed":%d}`, i+1)
			rec := post(s, body)
			switch rec.Code {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusTooManyRequests:
				if rec.Header().Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				shed.Add(1)
			default:
				other.Add(1)
				t.Errorf("unexpected status %d: %s", rec.Code, rec.Body.String())
			}
		}(i)
	}
	// All shed responses return before the gate opens; the admitted ones are
	// parked. Then release the worker and let the admitted trio finish.
	waitUntil(t, "queue to fill and shedding to finish", func() bool {
		return s.admitted.Load() == capacity && shed.Load() == hammer-capacity
	})
	if rec := get(s, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz with a full queue: status %d, want 503", rec.Code)
	}
	close(gate)
	wg.Wait()

	if ok.Load() != capacity || shed.Load() != hammer-capacity || other.Load() != 0 {
		t.Fatalf("ok=%d shed=%d other=%d, want %d/%d/0", ok.Load(), shed.Load(), other.Load(), capacity, hammer-capacity)
	}
	if hw := s.AdmittedHighWater(); hw != capacity {
		t.Fatalf("admitted high water %d, want exactly the declared capacity %d", hw, capacity)
	}
	if !s.Shutdown() {
		t.Fatal("drain of an idle server was not clean")
	}
}

// TestGracefulShutdownDrain: a drain sheds the queued request with 503,
// refuses new work with 503, lets the in-flight run finish with a
// byte-identical response, and reports a clean drain. Run under -race this
// also checks the admission/drain locking.
func TestGracefulShutdownDrain(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	gate := make(chan struct{})
	s.harness.PreRun = func(string, core.Options) { <-gate }
	want := directRun(t, smallBody)

	// A: admitted and running (wedged at the gate).
	var recA *httptest.ResponseRecorder
	doneA := make(chan struct{})
	go func() {
		defer close(doneA)
		recA = post(s, smallBody)
	}()
	waitUntil(t, "A to start running", func() bool { return s.running.Load() == 1 })

	// B: admitted and queued behind A (distinct key so it needs its own run).
	var recB *httptest.ResponseRecorder
	doneB := make(chan struct{})
	go func() {
		defer close(doneB)
		recB = post(s, `{"workload":"engineering","scale":0.05,"duration_ns":5000000,"seed":7}`)
	}()
	waitUntil(t, "B to queue", func() bool { return s.admitted.Load() == 2 })

	clean := make(chan bool, 1)
	go func() { clean <- s.Shutdown() }()
	waitUntil(t, "drain to begin", func() bool { return s.Draining() })

	// B was queued, not running: the drain sheds it with 503.
	<-doneB
	if recB.Code != http.StatusServiceUnavailable {
		t.Fatalf("queued request during drain: status %d body %s", recB.Code, recB.Body.String())
	}
	// C arrives after the drain began: refused at the door.
	if rec := post(s, smallBody); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("new request during drain: status %d", rec.Code)
	}
	if rec := get(s, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: status %d, want 503", rec.Code)
	}

	// Release the worker: A must complete normally, byte-identical.
	close(gate)
	<-doneA
	if recA.Code != http.StatusOK {
		t.Fatalf("in-flight request killed by drain: status %d body %s", recA.Code, recA.Body.String())
	}
	if !bytes.Equal(recA.Body.Bytes(), want) {
		t.Fatalf("drained run's body differs from the CLI rendering:\n%s", recA.Body.String())
	}
	if !<-clean {
		t.Fatal("drain reported unclean despite completing within the deadline")
	}
	// Post-drain the server stays stopped.
	if rec := post(s, smallBody); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: status %d, want 503", rec.Code)
	}
}

// TestDrainDeadlineCancelsStragglers: a run that outlives DrainTimeout is
// cancelled cooperatively — the drain completes (unclean) instead of hanging,
// and the straggler gets a well-formed 503, not a dead connection.
func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	s := New(Config{Workers: 1, DrainTimeout: 50 * time.Millisecond})
	// A long simulation: 10 virtual seconds takes far longer than the drain
	// deadline to simulate, so only the cooperative cancel can end it.
	var rec *httptest.ResponseRecorder
	done := make(chan struct{})
	go func() {
		defer close(done)
		rec = post(s, `{"workload":"engineering","scale":0.2,"duration_ns":10000000000}`)
	}()
	waitUntil(t, "straggler to start running", func() bool { return s.running.Load() == 1 })

	if s.Shutdown() {
		t.Fatal("drain reported clean despite cancelling a straggler")
	}
	<-done
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled straggler: status %d body %s", rec.Code, rec.Body.String())
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error == "" {
		t.Fatalf("straggler error body unparseable: %s", rec.Body.String())
	}
}

// TestRequestDeadline: a request whose simulation outlives RequestTimeout is
// answered 504 with the failure manifest (TimedOut, options fingerprint, and
// the flight recorder's trailing events) — a diagnosable response, never a
// hung connection.
func TestRequestDeadline(t *testing.T) {
	s := New(Config{RequestTimeout: 50 * time.Millisecond, RecorderDepth: 32})
	defer s.Shutdown()
	// Low trigger: the run emits policy events from the start, so the flight
	// recorder has something to dump when the deadline cuts it short.
	rec := post(s, `{"workload":"engineering","scale":0.2,"duration_ns":10000000000,"trigger":16}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d body %s, want 504", rec.Code, rec.Body.String())
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatalf("error body unparseable: %s", rec.Body.String())
	}
	if eb.Failure == nil || !eb.Failure.TimedOut {
		t.Fatalf("failure manifest missing or not timed out: %+v", eb.Failure)
	}
	if !strings.Contains(eb.Failure.Fingerprint, "Duration:10.000s") {
		t.Fatalf("fingerprint does not identify the run: %q", eb.Failure.Fingerprint)
	}
	if len(eb.Failure.Events) == 0 {
		t.Fatal("flight recorder dump empty: a timed-out run should carry its last events")
	}
}

// TestChaosPaths: deterministic fault injection rides along a request (same
// seed, same faults, same bytes), and a run that dies outright still answers
// with a structured 500 carrying the failure manifest.
func TestChaosPaths(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown()
	chaos := `{"workload":"engineering","scale":0.05,"duration_ns":5000000,` +
		`"faults":{"drain_node":1,"drain_at":1000000,"drop_batch":0.5,"defer_failed_ops":true}}`
	want := directRun(t, chaos)
	rec := post(s, chaos)
	if rec.Code != http.StatusOK {
		t.Fatalf("chaos request: status %d body %s", rec.Code, rec.Body.String())
	}
	if !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatalf("chaos run not deterministic across server and CLI:\n%s\nwant:\n%s", rec.Body.String(), want)
	}

	s.harness.PreRun = func(string, core.Options) { panic("injected chaos") }
	rec = post(s, `{"workload":"engineering","scale":0.05,"duration_ns":5000000,"seed":3}`)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking run: status %d, want 500", rec.Code)
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatalf("500 body unparseable: %s", rec.Body.String())
	}
	if eb.Failure == nil || !strings.Contains(eb.Failure.Error, "injected chaos") {
		t.Fatalf("failure manifest = %+v", eb.Failure)
	}
	// Failures are never cached: the same request succeeds once the panic
	// hook is gone.
	s.harness.PreRun = nil
	if rec := post(s, `{"workload":"engineering","scale":0.05,"duration_ns":5000000,"seed":3}`); rec.Code != http.StatusOK {
		t.Fatalf("failure was cached: status %d body %s", rec.Code, rec.Body.String())
	}
}

// TestStreamRun: a streamed request answers NDJSON — obs events as they
// happen, then one final result line — and a streamed failure ends with an
// error line, never a silent hangup.
func TestStreamRun(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown()
	// Low trigger so the tiny run actually emits policy events to stream.
	rec := post(s, `{"workload":"engineering","scale":0.05,"duration_ns":5000000,"trigger":16,"stream":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("stream: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	lines := strings.Split(strings.TrimRight(rec.Body.String(), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("stream produced %d lines, want events plus a result", len(lines))
	}
	for i, l := range lines {
		if !json.Valid([]byte(l)) {
			t.Fatalf("stream line %d is not JSON: %q", i, l)
		}
	}
	var final struct {
		Result map[string]any `json:"result"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &final); err != nil || final.Result == nil {
		t.Fatalf("final stream line is not a result: %q", lines[len(lines)-1])
	}
	if final.Result["workload"] != "engineering" {
		t.Fatalf("streamed result = %v", final.Result)
	}

	s.harness.PreRun = func(string, core.Options) { panic("stream chaos") }
	rec = post(s, `{"workload":"engineering","scale":0.05,"duration_ns":5000000,"seed":5,"stream":true}`)
	lines = strings.Split(strings.TrimRight(rec.Body.String(), "\n"), "\n")
	last := lines[len(lines)-1]
	var eb errorBody
	if err := json.Unmarshal([]byte(last), &eb); err != nil || !strings.Contains(eb.Error, "stream chaos") {
		t.Fatalf("streamed failure's final line = %q", last)
	}
}

// TestHealthz: the gauges reflect reality and the endpoint always answers.
func TestHealthz(t *testing.T) {
	s := New(Config{Workers: 3, QueueDepth: 5})
	defer s.Shutdown()
	if rec := post(s, smallBody); rec.Code != http.StatusOK {
		t.Fatalf("warmup: %d", rec.Code)
	}
	rec := get(s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	var h health
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.State != "accepting" || h.Capacity != 8 || h.Workers != 3 || h.Served != 1 {
		t.Fatalf("healthz = %+v", h)
	}
	if rec := get(s, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz while accepting: %d", rec.Code)
	}
	s.Shutdown()
	rec = get(s, "/healthz")
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil || h.State != "draining" {
		t.Fatalf("healthz after drain = %+v (err %v)", h, err)
	}
}

// TestCacheLRU exercises the bounded cache directly: eviction order, the
// single-flight path, and a follower abandoning its wait on its own deadline.
func TestCacheLRU(t *testing.T) {
	c := newCache(2)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if _, ok := c.get("a"); !ok { // a is now most recently used
		t.Fatal("a missing")
	}
	c.put("c", []byte("C")) // evicts b, the LRU
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted out of LRU order")
	}
	if st := c.stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}

	// Single-flight: a slow owner, one patient follower, one impatient one.
	gate := make(chan struct{})
	var fills atomic.Int64
	fill := func() ([]byte, error) {
		fills.Add(1)
		<-gate
		return []byte("X"), nil
	}
	ownerDone := make(chan struct{})
	go func() {
		defer close(ownerDone)
		if b, err := c.do(context.Background(), "x", fill); err != nil || string(b) != "X" {
			t.Errorf("owner: %s %v", b, err)
		}
	}()
	waitUntil(t, "owner to start filling", func() bool { return fills.Load() == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.do(ctx, "x", fill); err != context.Canceled {
		t.Fatalf("impatient follower: err %v, want its own cancellation", err)
	}
	followerDone := make(chan struct{})
	go func() {
		defer close(followerDone)
		if b, err := c.do(context.Background(), "x", fill); err != nil || string(b) != "X" {
			t.Errorf("follower: %s %v", b, err)
		}
	}()
	close(gate)
	<-ownerDone
	<-followerDone
	if fills.Load() != 1 {
		t.Fatalf("fills = %d, want 1 (single-flight)", fills.Load())
	}

	// A failed fill is not cached and unblocks followers into a retry.
	boom := func() ([]byte, error) { return nil, fmt.Errorf("boom") }
	if _, err := c.do(context.Background(), "y", boom); err == nil {
		t.Fatal("failed fill reported success")
	}
	if b, err := c.do(context.Background(), "y", func() ([]byte, error) { return []byte("Y"), nil }); err != nil || string(b) != "Y" {
		t.Fatalf("post-failure fill: %s %v", b, err)
	}
}
