package serve

import (
	"container/list"
	"context"
	"sync"
)

// cache is the server's bounded, content-addressed result store: rendered
// response bytes keyed by the request's content address (workload + scale +
// options fingerprint — the same fingerprint the report memo keys on, so two
// requests collide exactly when their simulations would be byte-identical).
//
// Two robustness properties distinguish it from the report.Harness memo,
// which it deliberately does not reuse:
//
//   - Bounded. A server answering arbitrary what-ifs for weeks cannot let
//     distinct keys accumulate; entries past cap evict least-recently-used.
//     The harness memo grows forever by design (an experiment suite's key
//     space is finite).
//   - Single-flight under cancellation. Concurrent requests for one key
//     share a single simulation, but a follower whose own deadline expires
//     stops waiting (its context, not the owner's, governs its wait). A
//     failed run is never cached: the owner reports its failure, the entry
//     is removed, and the next request re-runs.
type cache struct {
	mu       sync.Mutex
	cap      int
	order    *list.List               // front = most recently used
	entries  map[string]*list.Element // key -> element whose Value is *cacheEntry
	inflight map[string]*flight

	hits, misses, evictions uint64
}

// cacheEntry is one cached rendering.
type cacheEntry struct {
	key  string
	body []byte
}

// flight is one in-progress fill: the owner runs fn, followers block on done.
type flight struct {
	done chan struct{}
	body []byte // nil when the fill failed (failures are not cached)
}

func newCache(capacity int) *cache {
	return &cache{
		cap:      capacity,
		order:    list.New(),
		entries:  map[string]*list.Element{},
		inflight: map[string]*flight{},
	}
}

// get returns the cached body for key, marking it most-recently-used.
func (c *cache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry).body, true
}

// put stores a rendered body, evicting the least-recently-used entry when
// full. A zero or negative capacity disables storage entirely.
func (c *cache) put(key string, body []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// do returns key's body, filling via fn under single-flight: one concurrent
// owner runs the simulation, followers share its bytes. A follower stops
// waiting when its own ctx ends (the owner keeps running — its result still
// feeds the cache and any patient followers). fn failures propagate to every
// waiter and leave nothing cached.
func (c *cache) do(ctx context.Context, key string, fn func() ([]byte, error)) ([]byte, error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.order.MoveToFront(el)
			c.hits++
			body := el.Value.(*cacheEntry).body
			c.mu.Unlock()
			return body, nil
		}
		if f, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			//numalint:allow determinism follower wait races its own deadline by design; both arms lead to response plumbing, never into result bytes
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if f.body != nil {
				return f.body, nil
			}
			// The owner failed (its error went to its own caller); retry the
			// loop — this waiter becomes the owner and re-runs.
			continue
		}
		c.misses++
		f := &flight{done: make(chan struct{})}
		c.inflight[key] = f
		c.mu.Unlock()

		body, err := fn()
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		if err == nil {
			c.put(key, body)
			f.body = body
		}
		close(f.done)
		return body, err
	}
}

// cacheStats is the /healthz counters snapshot.
type cacheStats struct {
	Entries   int    `json:"entries"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

func (c *cache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		Entries:   len(c.entries),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

// index returns the cached keys, most recently used first — the drain flush
// logs it so a restarted server's operator can see what was warm.
func (c *cache) index() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*cacheEntry).key)
	}
	return keys
}
