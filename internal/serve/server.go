package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ccnuma/internal/obs"
	"ccnuma/internal/report"
)

// Config sets the server's capacity and robustness knobs. The zero value is
// usable: New fills in the defaults below.
type Config struct {
	// Workers is how many simulations run concurrently (default 2). Beyond
	// it, admitted requests queue.
	Workers int
	// QueueDepth is how many admitted requests may wait for a run slot
	// (default 8). Beyond Workers+QueueDepth the server sheds load with 429.
	QueueDepth int
	// CacheEntries bounds the rendered-result LRU (default 64; 0 after New
	// explicitly via -1 disables caching).
	CacheEntries int
	// RequestTimeout bounds each request's wall-clock time, queue wait
	// included (default 60s). The deadline propagates into the engine loop.
	RequestTimeout time.Duration
	// DrainTimeout bounds Shutdown's wait for in-flight runs (default 30s);
	// past it, stragglers are cancelled cooperatively and still joined.
	DrainTimeout time.Duration
	// Retries and RecorderDepth configure the underlying report.Harness: how
	// many times a failed run is re-attempted, and how many trailing obs
	// events the failure flight recorder keeps for the failure body
	// (defaults 0 and 64).
	Retries       int
	RecorderDepth int
	// MaxBodyBytes bounds the request body (default 1 MiB).
	MaxBodyBytes int64
	// Logf, when set, receives one line per lifecycle transition and each
	// run's start/finish (the harness logs through it too). Must be safe for
	// concurrent use.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.RecorderDepth == 0 {
		c.RecorderDepth = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// Server is the simulation service: one long-lived report.Harness behind
// bounded admission, a content-addressed result cache, and a drainable
// lifecycle. Create with New, mount Handler, stop with Shutdown.
type Server struct {
	cfg     Config
	harness *report.Harness
	cache   *cache

	// queueSlots bounds total admitted requests (Workers+QueueDepth);
	// runSlots bounds concurrently simulating ones (Workers). Both are
	// semaphores: send acquires, receive releases.
	queueSlots chan struct{}
	runSlots   chan struct{}

	// admitMu orders admission against the drain flip: handlers take the
	// read side around the draining check and inflight.Add, Shutdown takes
	// the write side to flip draining — so inflight.Add never races
	// inflight.Wait (a WaitGroup forbids Add concurrent with Wait at zero).
	admitMu  sync.RWMutex
	draining bool
	drainCh  chan struct{} // closed when the drain begins; sheds queued waiters
	inflight sync.WaitGroup

	// baseCtx is cancelled when the drain deadline expires, cutting the
	// engine loops of straggling runs cooperatively.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	admitted   atomic.Int64 // requests holding a queue slot (queued + running)
	admittedHW atomic.Int64 // high-water mark of admitted (lifecycle tests)
	running    atomic.Int64 // requests holding a run slot
	rejected   atomic.Uint64
	served     atomic.Uint64
}

// New builds a server. The harness is configured once and shared by every
// request for the life of the process; per-request state stays per-request
// (Execute never grows the harness).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	h := report.NewHarness(1.0, 0)
	h.Retries = cfg.Retries
	h.RecorderDepth = cfg.RecorderDepth
	h.RunTimeout = cfg.RequestTimeout
	h.Logf = cfg.Logf
	ctx, cancel := context.WithCancel(context.Background())
	entries := cfg.CacheEntries
	if entries < 0 {
		entries = 0
	}
	return &Server{
		cfg:        cfg,
		harness:    h,
		cache:      newCache(entries),
		queueSlots: make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		runSlots:   make(chan struct{}, cfg.Workers),
		drainCh:    make(chan struct{}),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Handler returns the server's routes: POST /run, GET /healthz, GET /readyz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	return mux
}

// errorBody is the JSON shape of every non-2xx response: a human-readable
// error plus, when a simulation actually failed, the harness's failure
// manifest (options fingerprint, attempts, flight-recorder dump) — a crash
// is a diagnosable response, not a dead connection.
type errorBody struct {
	Error   string             `json:"error"`
	Failure *report.RunFailure `json:"failure,omitempty"`
}

func writeError(w http.ResponseWriter, status int, body errorBody) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body) //nolint:errcheck // nothing left to do for a gone client
}

// runError carries a simulation failure (with its manifest) out of the cache
// fill so the handler can map it to a status code.
type runError struct {
	fail *report.RunFailure
	err  error
}

func (e *runError) Error() string { return e.err.Error() }
func (e *runError) Unwrap() error { return e.err }

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errorBody{Error: "POST /run"})
		return
	}

	// Parse and validate before spending any capacity: a malformed request
	// must never occupy a queue slot.
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, errorBody{Error: "parse: " + err.Error()})
		return
	}
	job, err := req.Build()
	if err != nil {
		writeError(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}

	// Admission stage 0: the drain gate (see admitMu). Once draining, new
	// work is refused outright.
	s.admitMu.RLock()
	if s.draining {
		s.admitMu.RUnlock()
		writeError(w, http.StatusServiceUnavailable, errorBody{Error: "draining"})
		return
	}
	s.inflight.Add(1)
	s.admitMu.RUnlock()
	defer s.inflight.Done()

	// Admission stage 1: a queue slot, non-blocking. None free means the
	// server is saturated past its declared queue depth — shed immediately
	// with backpressure rather than letting goroutines pile up unboundedly.
	//numalint:allow determinism load shedding is a scheduling-timing decision by design; a 429 is backpressure, never result bytes
	select {
	case s.queueSlots <- struct{}{}:
	default:
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, errorBody{Error: "queue full"})
		return
	}
	defer func() { <-s.queueSlots }()
	cur := s.admitted.Add(1)
	for {
		hw := s.admittedHW.Load()
		if cur <= hw || s.admittedHW.CompareAndSwap(hw, cur) {
			break
		}
	}
	defer s.admitted.Add(-1)

	// The request deadline covers queue wait and simulation alike, and the
	// drain deadline (baseCtx) cuts through it: a straggler past DrainTimeout
	// is cancelled cooperatively wherever it is.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()

	// Admission stage 2: a run slot. Shedding prefers queued work over
	// running work — a drain closes drainCh, answering every waiter here
	// with 503 while the Workers already simulating finish.
	//numalint:allow determinism admission arbitration is wall-clock by nature; every arm leads to response plumbing, never into result bytes
	select {
	case s.runSlots <- struct{}{}:
	case <-s.drainCh:
		writeError(w, http.StatusServiceUnavailable, errorBody{Error: "draining: queued request shed"})
		return
	case <-ctx.Done():
		s.writeRunError(w, r, ctx.Err(), nil)
		return
	}
	defer func() { <-s.runSlots }()
	s.running.Add(1)
	defer s.running.Add(-1)

	if job.Stream {
		s.streamRun(ctx, w, job)
		return
	}

	t0 := wallNow()
	body, err := s.cache.do(ctx, job.Key, func() ([]byte, error) {
		res, fail, rerr := s.harness.Execute(ctx, job.Label, job.Spec, job.Opt)
		if rerr != nil {
			return nil, &runError{fail: fail, err: rerr}
		}
		return ResultJSON(res)
	})
	if err != nil {
		var re *runError
		var fail *report.RunFailure
		if errors.As(err, &re) {
			fail = re.fail
		}
		s.writeRunError(w, r, err, fail)
		return
	}
	s.served.Add(1)
	s.logf("serve %s key=%q wall=%v", job.Label, job.Key, wallSince(t0).Round(time.Millisecond))
	w.Header().Set("Content-Type", "application/json")
	w.Write(body) //nolint:errcheck // nothing left to do for a gone client
}

// writeRunError maps a failed run (or a dead context) to its status: 504 for
// a deadline, 503 for a drain-induced cancel, nothing at all for a client
// that hung up (there is no one left to answer), 500 for a genuine
// simulation failure — always with the failure manifest when one exists.
func (s *Server) writeRunError(w http.ResponseWriter, r *http.Request, err error, fail *report.RunFailure) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, errorBody{Error: "deadline exceeded: " + err.Error(), Failure: fail})
	case errors.Is(err, context.Canceled):
		if r.Context().Err() != nil {
			return
		}
		writeError(w, http.StatusServiceUnavailable, errorBody{Error: "cancelled by drain: " + err.Error(), Failure: fail})
	default:
		writeError(w, http.StatusInternalServerError, errorBody{Error: err.Error(), Failure: fail})
	}
}

// streamRun answers one request as NDJSON: each obs event the run emits
// becomes a line as it happens, then a final {"result": ...} or
// {"error": ...} line. Streams bypass the result cache — their value is the
// live event feed, which a cache hit by definition cannot replay.
func (s *Server) streamRun(ctx context.Context, w http.ResponseWriter, job *Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	var out writeFlusher = nopFlusher{w}
	if f, ok := w.(http.Flusher); ok {
		out = flushWriter{w, f}
	}
	sw := obs.NewStreamWriter(out)
	opt := job.Opt
	opt.EventSink = sw.Sink()
	res, fail, err := s.harness.Execute(ctx, job.Label, job.Spec, opt)
	if err != nil {
		sw.WriteValue(errorBody{Error: err.Error(), Failure: fail})
		return
	}
	s.served.Add(1)
	sw.WriteValue(map[string]any{"result": Summary(res)})
}

type writeFlusher interface{ Write([]byte) (int, error) }

// flushWriter flushes after every line so a consumer sees events live.
type flushWriter struct {
	w io.Writer
	f http.Flusher
}

func (fw flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	fw.f.Flush()
	return n, err
}

type nopFlusher struct{ w io.Writer }

func (n nopFlusher) Write(p []byte) (int, error) { return n.w.Write(p) }

// health is the /healthz body.
type health struct {
	State    string     `json:"state"` // accepting | draining
	Admitted int64      `json:"admitted"`
	Running  int64      `json:"running"`
	Queued   int64      `json:"queued"`
	Capacity int        `json:"capacity"`
	Workers  int        `json:"workers"`
	Served   uint64     `json:"served"`
	Rejected uint64     `json:"rejected"`
	Cache    cacheStats `json:"cache"`
}

func (s *Server) snapshot() health {
	s.admitMu.RLock()
	state := "accepting"
	if s.draining {
		state = "draining"
	}
	s.admitMu.RUnlock()
	admitted := s.admitted.Load()
	running := s.running.Load()
	queued := admitted - running
	if queued < 0 {
		queued = 0
	}
	return health{
		State:    state,
		Admitted: admitted,
		Running:  running,
		Queued:   queued,
		Capacity: s.cfg.Workers + s.cfg.QueueDepth,
		Workers:  s.cfg.Workers,
		Served:   s.served.Load(),
		Rejected: s.rejected.Load(),
		Cache:    s.cache.stats(),
	}
}

// handleHealthz always answers 200 with the gauges — liveness plus
// introspection, not a routing signal.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.snapshot()) //nolint:errcheck
}

// handleReadyz flips to 503 the moment the drain begins or the queue fills,
// so a load balancer stops routing before requests start bouncing.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	h := s.snapshot()
	if h.State != "accepting" || h.Admitted >= int64(h.Capacity) {
		writeError(w, http.StatusServiceUnavailable, errorBody{Error: "not ready: " + h.State})
		return
	}
	fmt.Fprintln(w, "ok")
}
