package mem

import (
	"testing"
	"testing/quick"
)

func TestLineRoundTrip(t *testing.T) {
	f := func(p uint32, idx uint8) bool {
		page := GPage(p % (1 << 24))
		i := int(idx) % LinesPerPage
		l := page.Line(i)
		return l.Page() == page && l.Index() == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometry(t *testing.T) {
	if PageSize != 4096 {
		t.Errorf("page size = %d, want 4096", PageSize)
	}
	if LineSize != 128 {
		t.Errorf("line size = %d, want 128", LineSize)
	}
	if LinesPerPage != 32 {
		t.Errorf("lines per page = %d, want 32", LinesPerPage)
	}
}

func TestAccessKind(t *testing.T) {
	if DataRead.IsWrite() || DataRead.IsInstr() {
		t.Error("DataRead misclassified")
	}
	if !DataWrite.IsWrite() || DataWrite.IsInstr() {
		t.Error("DataWrite misclassified")
	}
	if InstrFetch.IsWrite() || !InstrFetch.IsInstr() {
		t.Error("InstrFetch misclassified")
	}
	names := map[AccessKind]string{DataRead: "read", DataWrite: "write", InstrFetch: "ifetch"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestLinesOfAdjacentPagesDistinct(t *testing.T) {
	if GPage(1).Line(LinesPerPage-1)+1 != GPage(2).Line(0) {
		t.Error("line ids of adjacent pages are not contiguous")
	}
}
