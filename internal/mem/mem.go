// Package mem defines the address, page, and cache-line types shared by the
// machine model and the kernel.
//
// The simulator identifies data by global logical pages rather than
// per-process virtual addresses: every mapped region in the workload is
// assigned a dense range of GPage identifiers, shared regions reusing the
// same range across processes. A GPage is the unit of placement (migration,
// replication) and of the directory's miss counters; a GLine is the unit of
// caching and coherence. Physical placement is expressed as a PFN whose
// home node is PFN / framesPerNode.
package mem

// Geometry constants match the machine evaluated in the paper: 4 KB pages
// and 128-byte second-level cache lines.
const (
	PageShift = 12
	PageSize  = 1 << PageShift // bytes per page

	LineShift = 7
	LineSize  = 1 << LineShift // bytes per cache line

	LinesPerPage = PageSize / LineSize
)

// GPage is a global logical page identifier. GPage values are dense: the
// workload builder assigns them sequentially as regions are created, so they
// index directly into flat per-page tables (directory counters, page info).
type GPage uint32

// NoPage is the invalid GPage sentinel.
const NoPage = GPage(^uint32(0))

// GLine is a global logical cache-line identifier: GPage*LinesPerPage + index.
type GLine uint64

// Line returns the global line identifier for line index idx (0 ≤ idx <
// LinesPerPage) within page p.
func (p GPage) Line(idx int) GLine {
	return GLine(uint64(p)*LinesPerPage + uint64(idx))
}

// Page returns the logical page containing the line.
func (l GLine) Page() GPage {
	return GPage(uint64(l) / LinesPerPage)
}

// Index returns the line's index within its page.
func (l GLine) Index() int {
	return int(uint64(l) % LinesPerPage)
}

// PFN is a physical frame number. Frames are grouped by node: frame f lives
// on node f / framesPerNode for the machine's configured per-node memory.
type PFN uint32

// NoFrame is the invalid PFN sentinel.
const NoFrame = PFN(^uint32(0))

// NodeID identifies a memory node (one directory controller, one local
// memory, and one or more CPUs).
type NodeID int

// CPUID identifies a processor.
type CPUID int

// RegionID identifies a mapped region (a contiguous GPage range) in the
// workload's address-space description.
type RegionID int

// ProcID identifies a simulated process (used as the TLB address-space id).
type ProcID int

// NoProc is the invalid process sentinel.
const NoProc = ProcID(-1)

// AccessKind classifies a memory reference for the trace and the statistics.
type AccessKind uint8

const (
	// DataRead is a user- or kernel-mode data load.
	DataRead AccessKind = iota
	// DataWrite is a user- or kernel-mode data store.
	DataWrite
	// InstrFetch is an instruction fetch.
	InstrFetch
)

// IsWrite reports whether the access modifies memory.
func (k AccessKind) IsWrite() bool { return k == DataWrite }

// IsInstr reports whether the access is an instruction fetch.
func (k AccessKind) IsInstr() bool { return k == InstrFetch }

// String returns a short human-readable name.
func (k AccessKind) String() string {
	switch k {
	case DataRead:
		return "read"
	case DataWrite:
		return "write"
	case InstrFetch:
		return "ifetch"
	default:
		return "unknown"
	}
}
