package core

import (
	"path/filepath"
	"testing"

	"ccnuma/internal/lint"
)

// TestPlannerAdmissibleSetIsProven is the bridge between the dynamic and the
// static halves of the guarded-window proof: every handler tail the planner's
// admissible set relies on (ConfinedEntryPoints) must appear in numalint's
// whole-module confinement report as a proven, non-stale lane-confined entry.
// If someone widens the admissible set — or a refactor makes one of the tails
// reach machine-global state — this test fails before any race does.
func TestPlannerAdmissibleSetIsProven(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	l, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(filepath.Join(l.ModRoot, "..."))
	if err != nil {
		t.Fatal(err)
	}
	suite := &lint.Suite{Cfg: lint.DefaultConfig()}
	diags, rep := suite.RunReport(pkgs, l.ModRoot)
	for _, d := range diags {
		t.Errorf("real tree: %s", d)
	}
	if rep == nil {
		t.Fatal("confinement report not produced (laneconfined disabled?)")
	}
	byName := make(map[string]lint.ConfinementEntry, len(rep.Entries))
	for _, e := range rep.Entries {
		byName[e.Name] = e
	}
	for _, want := range ConfinedEntryPoints() {
		e, ok := byName[want]
		if !ok {
			t.Errorf("admissible entry %s has no lane-confined annotation (not in confinement report)", want)
			continue
		}
		if !e.Proven {
			t.Errorf("admissible entry %s is not proven: %d violations, %d escapes", want, e.Violations, e.Escapes)
		}
		if e.Stale {
			t.Errorf("admissible entry %s is stale: no guarded-window dispatch root reaches it", want)
		}
	}
}
