// Package core assembles the complete system the paper evaluates: the
// CC-NUMA machine model (CPUs, caches, TLBs, directory controllers,
// interconnect), the kernel (VM, allocator, scheduler, pager), the policy,
// and a workload — and runs it under the deterministic event engine. It is
// the public entry point of the library: build a workload.Spec, choose
// Options, call Run, and read the Result.
package core

import (
	"fmt"

	"ccnuma/internal/directory"
	"ccnuma/internal/fault"
	"ccnuma/internal/kernel/alloc"
	"ccnuma/internal/kernel/klock"
	"ccnuma/internal/kernel/vm"
	"ccnuma/internal/obs"
	"ccnuma/internal/policy"
	"ccnuma/internal/sim"
	"ccnuma/internal/stats"
	"ccnuma/internal/topology"
	"ccnuma/internal/trace"
)

// Metric selects the information source that drives the policy's counters
// (Section 8.3).
type Metric int

const (
	// FullCache counts every second-level cache miss (FLASH hardware).
	FullCache Metric = iota
	// SampledCache counts one cache miss in ten.
	SampledCache
	// FullTLB counts every TLB miss (software-reloaded TLBs).
	FullTLB
	// SampledTLB counts one TLB miss in ten.
	SampledTLB
)

// String names the metric as in Figure 8.
func (m Metric) String() string {
	switch m {
	case FullCache:
		return "FC"
	case SampledCache:
		return "SC"
	case FullTLB:
		return "FT"
	case SampledTLB:
		return "ST"
	default:
		return "?"
	}
}

// CacheDriven reports whether the metric counts cache misses.
func (m Metric) CacheDriven() bool { return m == FullCache || m == SampledCache }

// SampleRate returns the counting sample rate for the metric.
func (m Metric) SampleRate() int {
	if m == SampledCache || m == SampledTLB {
		return 10
	}
	return 1
}

// Options configure a full-system run.
type Options struct {
	// Config is the machine; zero value selects the CC-NUMA preset. The
	// workload's Nodes/MemoryPerNode overrides are applied on top.
	Config topology.Config
	// Dynamic enables the migration/replication policy; otherwise the run
	// uses only the static placement.
	Dynamic bool
	// Params are the policy parameters for dynamic runs. A zero Trigger is
	// replaced by the workload's per-paper trigger threshold.
	Params policy.Params
	// Placement is the static placement: vm.FirstTouch (default) or
	// vm.RoundRobin.
	Placement vm.Placer
	// RoundRobin selects round-robin placement (convenience; overrides
	// Placement).
	RoundRobin bool
	// Metric is the information source for the counters.
	Metric Metric
	// Seed makes runs reproducible.
	Seed uint64
	// Duration overrides the workload's default run length.
	Duration sim.Time
	// CollectTrace records all cache and TLB misses (Section 8 input).
	CollectTrace bool
	// CollectEvents records typed observability events (migrations,
	// replications, collapses, TLB shootdowns, hot-page interrupts, policy
	// decisions, counter resets) into Result.ObsEvents.
	CollectEvents bool
	// SampleInterval, when positive, runs the periodic time-series sampler:
	// per-CPU breakdown deltas, per-node frame occupancy, counter and engine
	// gauges every interval of virtual time, into Result.Series.
	SampleInterval sim.Time
	// DebugChecks makes the sampler validate accounting invariants
	// (stats.Breakdown.CheckInvariants) on every sample.
	DebugChecks bool
	// Quantum is the scheduling time slice (default 5 ms).
	Quantum sim.Time
	// ReplicateCodeOnFirstTouch enables the space-overhead ablation of
	// Section 7.2.3: every code page is replicated to a node on the node's
	// first touch instead of waiting for the policy.
	ReplicateCodeOnFirstTouch bool
	// AdaptiveTrigger enables the adaptive-trigger extension (Section 8.4's
	// future work): the trigger threshold self-adjusts each reset interval.
	AdaptiveTrigger bool
	// ReclaimColdReplicas enables cold-replica reclamation each interval,
	// bounding replication's space overhead.
	ReclaimColdReplicas bool
	// ClosureEvents schedules the hot per-CPU step and wake events through
	// the engine's original closure API instead of the allocation-free typed
	// path. The two paths are behaviourally identical (asserted by the
	// determinism guard test); this switch exists for that A/B comparison
	// and for bisecting event-path regressions, at the cost of one closure
	// allocation per event.
	ClosureEvents bool
	// Faults configures the deterministic fault injector (internal/fault).
	// The zero value disables it entirely: no injector is built and the run
	// is byte-identical to one on a build without the fault layer.
	Faults fault.Config
	// Shards is the number of per-node event lanes the run's engine is
	// partitioned into (capped at the machine's node count). 0 or 1 keeps
	// the single-heap engine. Sharding is an execution detail, never a
	// semantic one: the lanes merge in global schedule order, so any shard
	// count produces byte-identical results — which is why Shards is
	// excluded from Fingerprint and cannot perturb memo keys.
	Shards int
	// Workers is the number of worker goroutines the sharded engine drives
	// guarded epoch windows with (sim.Sharded.RunEpochs). 0 keeps the fully
	// serial merge; 1..Shards runs the planner-cleared lane-confined windows
	// concurrently. Like Shards, it is purely an execution knob: the guarded
	// mode is byte-identical to the serialized merge by construction (and
	// gated by TestEpochWorkerNeutrality), so Workers is erased from
	// Fingerprint and cannot perturb memo keys. Requires Workers <= Shards —
	// a worker without a lane to drive is a configuration error.
	Workers int
	// CollectShardStats attaches the sharded engine's introspection layer
	// (per-lane dispatch counts, heap high-water marks, cross-lane traffic,
	// barrier stalls, windowed dispatch timeline) into Result.ShardStats.
	// With Shards <= 1 the run uses a one-lane sharded engine — byte-identical
	// to the single-heap path by the serialized-merge construction — so the
	// report exists at every shard count. Collection never changes simulation
	// results (gated by TestShardStatsNeutral), so it is erased from
	// Fingerprint like Shards.
	CollectShardStats bool
	// Recorder, when non-nil, is the failure flight recorder: every typed
	// observability event is mirrored into its bounded ring (without the
	// unbounded buffering of CollectEvents) so a crashed or timed-out run can
	// dump its last moments. Wiring is an execution detail — the ring is
	// write-only from the simulation's view — so it too is erased from
	// Fingerprint.
	Recorder *obs.Recorder
	// EventSink, when non-nil, receives every typed observability event as
	// it is emitted — the streaming path (numasimd progress streams write
	// them as NDJSON while the run executes). Unlike CollectEvents nothing
	// is buffered, so a sink is safe on arbitrarily long runs. Observation
	// only: the sink cannot influence the simulation, so it is erased from
	// Fingerprint like Recorder.
	EventSink func(obs.Event)
}

// Fingerprint renders every field of the options into a string that
// distinguishes any two simulations that could produce different results.
// Memo caches (internal/report) key on it, so it must cover the full
// struct: %+v recurses into Config and Params and picks up new fields
// automatically. Placement is a function value and formats as its code
// address — stable within a process, which is all an in-process memo needs
// (two distinct placer values conservatively get distinct keys).
func (o Options) Fingerprint() string {
	// Shards partitions the event queue without changing results (gated by
	// the cross-shard determinism tests), so it is erased here: two runs
	// differing only in shard count must share one memo slot. The same holds
	// for shard-stats collection (observation-only, result bytes unchanged)
	// and the flight recorder (a write-only ring whose pointer would
	// otherwise make every attempt's key unique).
	o.Shards = 0
	o.Workers = 0
	o.CollectShardStats = false
	o.Recorder = nil
	o.EventSink = nil
	return fmt.Sprintf("%+v", o)
}

func (o Options) withDefaults(spec specLike) (Options, error) {
	if o.Config.Nodes == 0 {
		o.Config = topology.CCNUMA()
	}
	if spec.nodes() > 0 {
		o.Config.Nodes = spec.nodes()
	}
	if spec.memoryPerNode() > 0 {
		o.Config.MemoryPerNode = spec.memoryPerNode()
	}
	if o.Placement == nil {
		o.Placement = vm.FirstTouch
	}
	if o.RoundRobin {
		o.Placement = vm.RoundRobin(o.Config.Nodes)
	}
	if o.Dynamic {
		if o.Params.Trigger == 0 {
			o.Params = policy.Base().WithTrigger(spec.trigger())
		}
		o.Params = o.Params.ScaledForSampling(o.Metric.SampleRate())
		if err := o.Params.Validate(); err != nil {
			return o, err
		}
	}
	if o.Quantum <= 0 {
		o.Quantum = 5 * sim.Millisecond
	}
	if o.Duration <= 0 {
		o.Duration = spec.duration()
	}
	if o.Duration <= 0 {
		return o, fmt.Errorf("core: no run duration")
	}
	if o.DebugChecks && o.SampleInterval <= 0 {
		// The debug checks run on sampler ticks; give them a tick to run on.
		o.SampleInterval = sim.Millisecond
	}
	if o.Shards < 0 {
		return o, fmt.Errorf("core: negative shard count %d", o.Shards)
	}
	if o.Shards > o.Config.Nodes {
		// One lane per node is the natural maximum: a lane owns a node's
		// CPUs, caches, TLBs, and local frame pool.
		o.Shards = o.Config.Nodes
	}
	if o.Workers < 0 {
		return o, fmt.Errorf("core: negative worker count %d", o.Workers)
	}
	if o.Workers > 0 {
		// Workers drive lanes; more workers than lanes is a sizing mistake,
		// not a request the engine can satisfy. The comparison uses the
		// post-clamp shard count so "Workers = Shards = Nodes+k" fails loudly
		// instead of silently idling k workers.
		shards := o.Shards
		if shards < 1 {
			shards = 1
		}
		if o.Workers > shards {
			return o, fmt.Errorf("core: %d workers exceed %d shards (need workers <= shards)",
				o.Workers, shards)
		}
	}
	if err := o.Config.Validate(); err != nil {
		return o, err
	}
	if err := o.Faults.Validate(o.Config.Nodes); err != nil {
		return o, err
	}
	return o, nil
}

// specLike decouples option defaulting from the workload package for tests.
type specLike interface {
	nodes() int
	memoryPerNode() int64
	trigger() uint16
	duration() sim.Time
}

// Result is everything a run measured.
type Result struct {
	Workload string
	Policy   string
	Elapsed  sim.Time

	// PerCPU breakdowns and their machine-wide aggregate.
	PerCPU []stats.Breakdown
	Agg    stats.Breakdown

	// Actions is the Table-4 accounting (dynamic runs).
	Actions policy.ActionStats
	// VM and allocator activity.
	VM    vm.Stats
	Alloc alloc.Stats
	// Contention is the Section 7.1.2 picture.
	Contention directory.MachineContention
	// Counter activity (hot pages, sampling).
	Counters directory.CounterStats
	// Lock contention (memlock vs page locks).
	Memlock   klock.Stats
	PageLocks klock.Stats
	// SchedMigrations counts cross-CPU process moves.
	SchedMigrations uint64
	// LocalMissFraction is the share of L2 misses satisfied locally.
	LocalMissFraction float64
	// AvgRemoteLatency is the observed mean remote miss latency.
	AvgRemoteLatency sim.Time
	// Trace holds the recorded misses when Options.CollectTrace was set.
	Trace *trace.Trace
	// ObsEvents holds the typed event trace when Options.CollectEvents was
	// set (export with WriteJSONL / WriteChromeTrace).
	ObsEvents *obs.Tracer
	// Series holds the sampled time-series when Options.SampleInterval was
	// positive (export with WriteCSV / WriteJSONL).
	Series *obs.Sampler
	// ShardStats holds the engine's per-lane introspection when
	// Options.CollectShardStats was set (export with
	// obs.WriteShardStatsJSONL / report.ShardStatsTable).
	ShardStats *sim.ShardStats
	// Events is the number of simulator events dispatched.
	Events uint64
	// Steps is the number of memory references executed (work completed).
	Steps uint64
	// FinalParams are the policy parameters at the end of the run (they
	// change under the adaptive-trigger extension).
	FinalParams policy.Params
	// TriggerTrace is the trigger value at each interval boundary when the
	// adaptive extension is on.
	TriggerTrace []uint16
	// Faults reports what the fault injector did (DrainedNode is -1 when no
	// injector ran or no drain fired).
	Faults fault.Stats
	// Failed marks a placeholder result the harness substitutes for a run
	// that panicked or timed out under -keep-going; every measurement field
	// is zero.
	Failed bool
}

// NonIdle returns the machine-wide busy time.
func (r *Result) NonIdle() sim.Time { return r.Agg.NonIdle() }

// Describe renders a one-line summary.
func (r *Result) Describe() string {
	return fmt.Sprintf("%s/%s: %s", r.Workload, r.Policy, r.Agg.Summary())
}
