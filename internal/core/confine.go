package core

import (
	"ccnuma/internal/kernel/sched"
	"ccnuma/internal/mem"
	"ccnuma/internal/sim"
)

// confinePlanner is the kernel's window planner for the sharded engine's
// guarded epoch mode (sim.Planner). The full-system event stream has exactly
// two typed kinds — per-CPU step events and wake-after-block events — and
// the planner's job is to prove which of them are lane-confined at this
// moment, so RunEpochs can dispatch them concurrently without changing a
// byte of output.
//
// A busy CPU step can never be admitted: every memory reference it executes
// touches machine-global kernel state (the cache-validity filter's write
// stamps, the home node's memory resources, the policy counters, the VM).
// What CAN be admitted is the idle fraction of the machine:
//
//   - idle scheduler ticks — a step that will provably take the idle path:
//     no current process, no pending shootdown or interval charges, no
//     queued pager batches, and sched.IdleOn proving Next would return nil.
//     Such a step only touches its own cpuState and re-arms itself.
//   - wake deliveries — a wake event that is either stale (the slot
//     generation moved on; the handler is a pure read returning early) or
//     currently routed to the lane that owns the target CPU's ready queue,
//     so MakeRunnable mutates only lane-owned queue state.
//
// Admission is decided from heap and kernel state *before* the window runs
// (the sim engine plans, then dispatches), so the serial/parallel split is a
// pure function of simulation state — never of worker count — and the
// byte-identity argument in internal/sim/guarded.go applies.
//
// On top of per-event admissibility, PlanWindow enforces a conflict matrix
// between the events sharing one window, because an earlier admitted event
// can invalidate the proof for a later one:
//
//   - one tick per CPU per window (the step chain guarantees this anyway;
//     enforced so the IdleOn proof — taken once at plan time — covers every
//     admitted tick);
//   - affinity ticks conflict with every live wake: Affinity.Next scans all
//     ready queues for steal candidates, so any concurrent push both races
//     the scan and can change the idle verdict;
//   - pinned/partition ticks conflict with a live wake targeting the same
//     CPU: the wake would land the process on the queue before the tick's
//     in-lane turn, and the "idle" tick would dispatch it — the busy path,
//     in a window. (Same-CPU wake and tick share a lane, so this is an
//     ordering hazard, not a data race; opposite order — tick before wake —
//     is harmless and admitted.)
//
// Stale wakes conflict with nothing: they read the slot table and return.
type confinePlanner struct {
	s *System
	// affinity notes whether the run's scheduler steals across queues (the
	// strictest row of the conflict matrix).
	affinity bool
	// tickCPUs / wakeCPUs are plan-time scratch: CPUs with an admitted idle
	// tick, and target CPUs of admitted live wakes, within one window.
	tickCPUs []mem.CPUID
	wakeCPUs []mem.CPUID
}

func newConfinePlanner(s *System) *confinePlanner {
	_, aff := s.schedul.(*sched.Affinity)
	return &confinePlanner{s: s, affinity: aff}
}

// Guardable is the engine's cheap pre-filter: it sees the globally next
// event before window assembly, so the busy-machine common case pays one
// idle check and falls straight back to serial dispatch.
func (pl *confinePlanner) Guardable(ev sim.WindowEvent) bool {
	s := pl.s
	switch ev.Kind {
	case s.stepKind:
		return s.stepIdleConfined(mem.CPUID(ev.Arg))
	case s.wakeKind:
		cpu, live := s.wakeTarget(ev.Arg)
		if !live {
			return true
		}
		return s.laneForCPU(cpu) == ev.Lane
	}
	return false
}

// PlanWindow walks the candidate window in serial dispatch order and
// returns the first event the matrix rejects; everything before it runs
// concurrently.
func (pl *confinePlanner) PlanWindow(base, end sim.Time, evs []sim.WindowEvent) sim.Time {
	s := pl.s
	pl.tickCPUs = pl.tickCPUs[:0]
	pl.wakeCPUs = pl.wakeCPUs[:0]
	for _, ev := range evs {
		switch ev.Kind {
		case s.stepKind:
			cpu := mem.CPUID(ev.Arg)
			if !s.stepIdleConfined(cpu) || cpuIn(pl.tickCPUs, cpu) {
				return ev.At
			}
			if pl.affinity && len(pl.wakeCPUs) > 0 {
				return ev.At
			}
			if !pl.affinity && cpuIn(pl.wakeCPUs, cpu) {
				return ev.At
			}
			pl.tickCPUs = append(pl.tickCPUs, cpu)
		case s.wakeKind:
			cpu, live := s.wakeTarget(ev.Arg)
			if !live {
				continue
			}
			if s.laneForCPU(cpu) != ev.Lane {
				return ev.At
			}
			if pl.affinity && len(pl.tickCPUs) > 0 {
				return ev.At
			}
			pl.wakeCPUs = append(pl.wakeCPUs, cpu)
		default:
			return ev.At
		}
	}
	return end
}

func cpuIn(set []mem.CPUID, cpu mem.CPUID) bool {
	for _, c := range set {
		if c == cpu {
			return true
		}
	}
	return false
}

// stepIdleConfined reports whether this CPU's next step event provably
// takes the idle path, touching only lane-owned state. After workload
// completion every step is a pure-read no-op, so it is trivially confined.
func (s *System) stepIdleConfined(cpu mem.CPUID) bool {
	if s.finished() {
		return true
	}
	c := s.cpus[cpu]
	if c.cur != nil || c.flushCharge != 0 || c.extraDelay != 0 {
		return false
	}
	if c.pagerHead < len(c.pagerWork) && s.pg != nil {
		return false
	}
	return s.schedul.IdleOn(cpu)
}

// wakeTarget decodes a wake event's arg (vmID<<32 | slotGen) against the
// slot table: live is false for a stale wake (slot reused, process exited,
// or never existed), whose handler is a pure read. For a live wake it
// returns the CPU whose ready queue MakeRunnable would push onto right now.
func (s *System) wakeTarget(arg uint64) (cpu mem.CPUID, live bool) {
	id := mem.ProcID(arg >> 32)
	if int(id) >= len(s.procs) {
		return 0, false
	}
	p := s.procs[id]
	if p == nil || p.slotGen != uint32(arg) || !p.alive {
		return 0, false
	}
	return s.schedul.WakeCPU(p.sp), true
}

// laneForCPU maps a CPU to the event lane owning its node's kernel state.
func (s *System) laneForCPU(cpu mem.CPUID) int {
	return int(s.cfg.NodeOf(cpu)) % s.seng.Lanes()
}

// ConfinedEntryPoints returns the canonical names (as numalint's confinement
// report spells them) of the handler tails this planner's admissible set
// relies on being lane-confined. The split of the proof is deliberate:
// admission above decides *which* events may run in a window from dynamic
// heap state (IdleOn, slot generations, lane routing), while the static
// analyzer proves the *code* those admitted events then execute never
// touches machine-global engine state. An admitted idle tick runs
// (*System).idleStep; an admitted live wake runs (*System).wakeProc.
//
// TestPlannerAdmissibleSetIsProven pins each of these names to a proven,
// non-stale entry in the whole-module confinement report, so widening the
// admissible set without extending the static proof fails the build.
func ConfinedEntryPoints() []string {
	return []string{
		"ccnuma/internal/core.(*System).idleStep",
		"ccnuma/internal/core.(*System).wakeProc",
	}
}
