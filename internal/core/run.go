package core

import (
	"context"
	"fmt"

	"ccnuma/internal/cache"
	"ccnuma/internal/kernel/alloc"
	"ccnuma/internal/kernel/sched"
	"ccnuma/internal/kernel/vm"
	"ccnuma/internal/mem"
	"ccnuma/internal/sim"
	"ccnuma/internal/stats"
	"ccnuma/internal/trace"
	"ccnuma/internal/workload"
)

// rebalancePeriod is how often the affinity scheduler's load balancer runs.
const rebalancePeriod = 30 * sim.Millisecond

// cyclesPerStep is the compute charged per generator step, in CPU cycles.
// One step models a small group of instructions containing one memory-system
// access (one cache-line touch).
const cyclesPerStep = 4

// schedule arms cpu c's next step event. Each CPU's entire chain reuses one
// registered typed event (stepKind with the CPU index as arg), so the
// simulator's hottest call allocates nothing. On the sharded engine the
// chain re-arms through the CPU's lane — identical to the engine-level call
// under the serialized merge, and the journaled deferred-schedule path when
// the step ran inside a guarded window. The closure form is kept behind
// Options.ClosureEvents as the determinism reference.
//
//numalint:hotpath
func (s *System) schedule(c *cpuState, at sim.Time) {
	if s.opt.ClosureEvents {
		//numalint:allow hotpath closure reference path gated by Options.ClosureEvents
		//numalint:allow laneconfined closure events are never guardable (clampGuard serializes them), so this branch cannot run inside a window
		//numalint:allow laneescape closure events are never guardable, so nothing reached from here runs inside a window
		s.schedAt(at, func(now sim.Time) { s.step(c, now) })
		return
	}
	if c.lane != nil {
		c.lane.AtKind(at, s.stepKind, uint64(c.id))
		return
	}
	//numalint:allow laneconfined a window-executed step always carries its lane (registerKinds sets c.lane before dispatch); the engine-level fallback is serial-only
	s.schedAtKind(at, s.stepKind, uint64(c.id))
}

// idleStep is the idle scheduler tick's tail: nothing is runnable on this
// CPU, so charge one idle tick and re-arm the step chain. It is one of the
// two events the confinement planner admits into guarded windows (the other
// is the same-lane wake, wakeProc) — the planner proves the head of step
// trivial at plan time via Scheduler.IdleOn, and the analyzer proves this
// tail reaches no machine-global state; ConfinedEntryPoints names both and
// TestPlannerAdmissibleSetIsProven keeps the two proofs from drifting.
//
//numalint:hotpath
//numalint:lane-confined
func (s *System) idleStep(c *cpuState, t sim.Time) {
	c.idle = true
	c.bd.Idle += idleTick
	s.schedule(c, t+idleTick)
}

// step is one CPU's event: pending shootdown charges, queued pager work,
// scheduling, and then up to sliceMax of reference execution.
//
//numalint:hotpath
func (s *System) step(c *cpuState, now sim.Time) {
	if s.finished() {
		return // the workload completed; stop this CPU's event chain
	}
	t := now
	if c.flushCharge > 0 {
		c.bd.Pager.Add(stats.FnTLBFlush, c.flushCharge)
		t += c.flushCharge
		c.flushCharge = 0
	}
	if c.extraDelay > 0 {
		// Kernel work performed on this CPU's behalf at an interval
		// boundary (cold-replica reclamation); the categories were already
		// recorded, only the time passes here.
		t += c.extraDelay
		c.extraDelay = 0
	}
	if c.pagerHead < len(c.pagerWork) && s.pg != nil {
		batch := c.pagerWork[c.pagerHead]
		c.pagerHead++
		if c.pagerHead == len(c.pagerWork) {
			c.pagerWork = c.pagerWork[:0]
			c.pagerHead = 0
		}
		dt := s.pg.HandleBatch(t, c.id, batch, &c.bd)
		s.batchPool = append(s.batchPool, batch)
		s.schedule(c, t+dt)
		return
	}
	if c.cur == nil {
		next := s.schedul.Next(c.id)
		if next == nil {
			s.idleStep(c, t)
			return
		}
		c.idle = false
		c.cur = s.procs[next.ID]
		c.bd.Compute[stats.Kernel] += ctxSwitch
		t += ctxSwitch
		c.quantum = t + s.opt.Quantum
	}
	p := c.cur
	if p.spec.ExitAt > 0 && t >= p.spec.ExitAt {
		s.exitProc(p)
		c.cur = nil
		s.schedule(c, t)
		return
	}

	sliceEnd := t + sliceMax
	for t < sliceEnd {
		if t >= c.quantum {
			s.schedul.Yield(p.sp)
			c.cur = nil
			break
		}
		st := p.gen.Next(c.id)
		switch st.Kind {
		case workload.StepExit:
			s.exitProc(p)
			c.cur = nil
		case workload.StepBlock:
			s.schedul.Block(p.sp)
			c.cur = nil
			if s.opt.ClosureEvents {
				wake := p
				//numalint:allow hotpath closure reference path gated by Options.ClosureEvents
				s.schedAt(t+st.Dur, func(sim.Time) {
					if wake.alive {
						s.schedul.MakeRunnable(wake.sp)
					}
				})
			} else {
				s.schedAtKind(t+st.Dur, s.wakeKind,
					uint64(p.vmID)<<32|uint64(p.slotGen))
			}
		case workload.StepAccess:
			var missed bool
			t, missed = s.access(c, p, st, t)
			if missed {
				// Yield the event loop after every memory miss so resource
				// contention across CPUs interleaves in time order.
				s.schedule(c, t)
				return
			}
			continue
		}
		break
	}
	s.schedule(c, t)
}

// access runs one memory reference through TLB, caches, and (on a full
// miss) the NUMA memory system, charging all latencies and feeding the
// policy counters and the trace.
//
//numalint:hotpath
func (s *System) access(c *cpuState, p *procState, st workload.Step, t sim.Time) (sim.Time, bool) {
	mode := stats.User
	if st.Kernel {
		mode = stats.Kernel
	}
	side := stats.Data
	if st.Access.IsInstr() {
		side = stats.Instr
	}
	c.steps++
	comp := s.cfg.CycleTime * cyclesPerStep
	c.bd.Compute[mode] += comp
	t += comp

	page := st.Page
	pi := s.vmm.Page(page)
	wired := pi.Flags&vm.Wired != 0
	var pfn mem.PFN
	if wired {
		pfn = pi.Master
	} else {
		var ro, ok bool
		pfn, ro, ok = c.tlb.Lookup(p.vmID, page)
		if !ok {
			c.bd.TLBRefill += s.cfg.TLBRefill
			t += s.cfg.TLBRefill
			if s.tracer != nil {
				s.tracer.Append(trace.Record{At: t, Page: page, CPU: c.id,
					Kind: st.Access, Kernel: st.Kernel, Src: trace.TLBMiss})
			}
			pte, kind := s.vmm.Touch(p.vmID, page, c.node)
			if !s.opt.Metric.CacheDriven() {
				s.counters.Record(page, c.id, st.Access.IsWrite(),
					s.cfg.NodeOfFrame(pte.PFN) != c.node)
			}
			if kind != vm.NoFault {
				c.bd.FaultTime += s.cfg.Kernel.PageFault
				t += s.cfg.Kernel.PageFault
				if s.opt.ReplicateCodeOnFirstTouch {
					pte = s.codeFirstTouchReplica(p, page, pte)
				}
			}
			pfn, ro = pte.PFN, pte.RO
			c.tlb.Insert(p.vmID, page, pfn, ro)
		}
		if pi.TransitUntil > t {
			// The page is locked by an in-flight pager operation. Reads
			// still see the old (valid) copy; a write spins until the
			// operation completes, and a reference that needed a fresh
			// translation pays an extra fault (Table 6's Page Fault
			// category: "additional page faults, due to changes in
			// mappings").
			if st.Access.IsWrite() {
				c.bd.Pager.Add(stats.FnPageFault, pi.TransitUntil-t)
				t = pi.TransitUntil
			} else if !ok {
				c.bd.Pager.Add(stats.FnPageFault, s.cfg.Kernel.PageFault)
				t += s.cfg.Kernel.PageFault
			}
		}
		if st.Access.IsWrite() && ro {
			// Protection trap: collapse the replicas, then retry.
			if s.pg != nil {
				t += s.pg.CollapseWrite(t, c.id, page, &c.bd)
			}
			pte, _ := s.vmm.Touch(p.vmID, page, c.node)
			pfn = pte.PFN
			c.tlb.Insert(p.vmID, page, pfn, pte.RO)
		}
	}

	line := page.Line(int(st.Line) % mem.LinesPerPage)
	missed := false
	switch c.caches.Access(line, st.Access) {
	case cache.HitL1:
		// First-level hits are folded into the compute charge.
	case cache.HitL2:
		c.bd.AddStall(mode, side, stats.L2, s.cfg.L2Hit)
		t += s.cfg.L2Hit
	case cache.Miss:
		missed = true
		home := s.cfg.NodeOfFrame(pfn)
		lat, remote := s.mems.Access(t, c.id, home, st.Access)
		lvl := stats.LocalMem
		if remote {
			lvl = stats.RemoteMem
		}
		c.bd.AddStall(mode, side, lvl, lat)
		t += lat
		if s.tracer != nil {
			s.tracer.Append(trace.Record{At: t, Page: page, CPU: c.id,
				Kind: st.Access, Kernel: st.Kernel, Src: trace.CacheMiss})
		}
		if !wired && s.opt.Metric.CacheDriven() {
			s.counters.Record(page, c.id, st.Access.IsWrite(), remote)
		}
	}
	return t, missed
}

// codeFirstTouchReplica implements the replicate-code-on-first-touch
// ablation (Section 7.2.3): the first fault of a code page from a node
// without a copy creates a replica there immediately.
func (s *System) codeFirstTouchReplica(p *procState, page mem.GPage, pte vm.PTE) vm.PTE {
	pi := s.vmm.Page(page)
	if pi.Flags&vm.Code == 0 || pi.Flags&vm.Wired != 0 {
		return pte
	}
	node := s.cfg.NodeOf(p.sp.LastCPU)
	if s.vmm.HasReplicaOn(page, node) {
		return pte
	}
	f := s.allocs.AllocOn(node, alloc.Replica)
	if f == mem.NoFrame {
		return pte
	}
	if s.vmm.Replicate(page, f) != nil {
		s.allocs.Free(f)
		return pte
	}
	return s.vmm.PTE(p.vmID, page)
}

// start arms the run: process spawns, pre-touches, the periodic kernel
// events, the sampler, and each CPU's initial step event. Split from Run so
// tests and benchmarks can drive the engine step by step.
func (s *System) start() {
	for i := range s.spec.Procs {
		ps := &s.spec.Procs[i]
		if ps.StartAt <= 0 {
			s.addProc(ps, i)
		} else {
			ps, i := ps, i
			s.pendingSpawns++
			s.schedAt(ps.StartAt, func(sim.Time) {
				s.pendingSpawns--
				s.addProc(ps, i)
			})
		}
	}
	s.preTouch()

	if s.pg != nil {
		s.schedEvery(s.opt.Params.ResetInterval, func(now sim.Time) {
			if s.pg.ReclaimCold {
				// Reclaim while this interval's sharing information is
				// still in the counters; the kernel time lands on CPU 0.
				c0 := s.cpus[0]
				c0.extraDelay += s.pg.ReclaimColdReplicas(now, c0.id, &c0.bd)
			}
			s.pg.ResetInterval()
		}, func() bool { return s.finished() || s.now() >= s.deadline })
	}
	if s.inj != nil {
		if fc := s.inj.Config(); fc.DrainAt > 0 {
			node := mem.NodeID(fc.DrainNode)
			s.schedAt(fc.DrainAt, func(now sim.Time) { s.drainNode(now, node) })
		}
	}
	if aff, ok := s.schedul.(*sched.Affinity); ok {
		// Periodic load balancing (UNIX priority decay): the process
		// movement that makes private pages remote.
		s.schedEvery(rebalancePeriod, func(sim.Time) {
			aff.Rebalance()
		}, func() bool { return s.finished() || s.now() >= s.deadline })
	}
	s.startSampler()
	for _, c := range s.cpus {
		s.schedule(c, 0)
	}
}

// Run executes the workload to the configured deadline and returns the
// measurements.
func (s *System) Run() (*Result, error) {
	s.start()
	s.engineRunUntil(s.deadline)
	if s.tracer != nil {
		s.tracer.Sort()
	}
	s.events.Sort()
	elapsed := s.completedAt
	if elapsed == 0 {
		elapsed = s.deadline // hit the cap without completing
	}

	// A recorder-only tracer buffers nothing; exposing it as ObsEvents would
	// look like an empty event collection rather than "not collected".
	obsEvents := s.events
	if !s.opt.CollectEvents {
		obsEvents = nil
	}

	res := &Result{
		Workload:          s.spec.Name,
		Policy:            s.policyName(),
		Elapsed:           elapsed,
		PerCPU:            make([]stats.Breakdown, len(s.cpus)),
		VM:                s.vmm.Snapshot(),
		Alloc:             s.allocs.Snapshot(),
		Counters:          s.counters.Stats(),
		Memlock:           s.locks.Memlock.Snapshot(),
		PageLocks:         s.locks.PageLockStats(),
		SchedMigrations:   s.schedul.Migrations(),
		Contention:        s.mems.Contention(elapsed),
		LocalMissFraction: s.mems.LocalFraction(),
		AvgRemoteLatency:  s.mems.AvgRemoteLatency(),
		Trace:             s.tracer,
		ObsEvents:         obsEvents,
		Series:            s.sampler,
		Events:            s.engineFired(),
		Faults:            s.inj.Stats(),
	}
	if s.seng != nil {
		res.ShardStats = s.seng.Stats()
	}
	for _, c := range s.cpus {
		res.Steps += c.steps
	}
	if s.pg != nil {
		res.Actions = s.pg.Actions
		res.FinalParams = s.pg.Params()
		res.TriggerTrace = s.pg.TriggerTrace
	}
	for i, c := range s.cpus {
		// Pad each CPU's ledger with trailing idle so ledgers span the run.
		if tot := c.bd.Total(); tot < elapsed {
			c.bd.Idle += elapsed - tot
		}
		res.PerCPU[i] = c.bd
		res.Agg.Merge(&c.bd)
	}
	return res, nil
}

func (s *System) policyName() string {
	switch {
	case s.opt.Dynamic && s.opt.Params.EnableMigration && s.opt.Params.EnableReplication:
		return "Mig/Rep"
	case s.opt.Dynamic && s.opt.Params.EnableMigration:
		return "Migr"
	case s.opt.Dynamic:
		return "Repl"
	case s.opt.RoundRobin:
		return "RR"
	default:
		return "FT"
	}
}

// RunContext executes the workload like Run, with cooperative cancellation:
// when ctx is cancelled or its deadline passes, the engine's run loop stops
// within one cancellation stride (~1k events, microseconds of wall time) and
// the partial run is discarded — the returned error wraps ctx.Err(), so
// errors.Is(err, context.DeadlineExceeded) distinguishes a timeout from a
// cancel. This is what lets a serving layer abandon a run without leaking a
// goroutine that burns CPU to the original deadline.
func (s *System) RunContext(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Done() != nil {
		s.setCancel(func() bool { return ctx.Err() != nil })
		defer s.setCancel(nil)
	}
	res, err := s.Run()
	if err != nil {
		return nil, err
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("core: run cancelled after %d events: %w",
			res.Events, cerr)
	}
	return res, nil
}

// Run is the package-level convenience: build a system and run it.
func Run(spec *workload.Spec, opt Options) (*Result, error) {
	sys, err := NewSystem(spec, opt)
	if err != nil {
		return nil, err
	}
	return sys.Run()
}

// RunContext is the package-level convenience: build a system and run it
// under ctx's cancellation and deadline.
func RunContext(ctx context.Context, spec *workload.Spec, opt Options) (*Result, error) {
	sys, err := NewSystem(spec, opt)
	if err != nil {
		return nil, err
	}
	return sys.RunContext(ctx)
}
