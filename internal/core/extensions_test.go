package core

import (
	"testing"

	"ccnuma/internal/policy"
	"ccnuma/internal/workload"
)

func TestAdaptiveTriggerRunsAndAdjusts(t *testing.T) {
	spec := tinySpec(workload.SchedPinned, 200000)
	opt := Options{Seed: 5, Dynamic: true, AdaptiveTrigger: true,
		Params: policy.Base().WithTrigger(400)}
	// Shrink the interval so several adaptation steps fit in the short run.
	opt.Params.ResetInterval = opt.Params.ResetInterval / 20
	res, err := Run(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TriggerTrace) == 0 {
		t.Fatal("adaptive run recorded no trigger trajectory")
	}
	if res.FinalParams.Trigger == 400 {
		t.Fatal("trigger never moved from a mis-set value")
	}
	if res.FinalParams.Sharing != res.FinalParams.Trigger/4 {
		t.Fatal("sharing threshold not coupled during adaptation")
	}
}

func TestReclaimColdReplicasBoundsSpace(t *testing.T) {
	// A one-shot read phase: proc 0's shared region is read hard early (so
	// replicas appear), then access shifts to private data and the replicas
	// go cold.
	build := func() *workload.Spec { return tinySpec(workload.SchedPinned, 250000) }
	opt := Options{Seed: 6, Dynamic: true}
	opt.Params = policy.Base().WithTrigger(64)
	opt.Params.ResetInterval = opt.Params.ResetInterval / 10
	base, err := Run(build(), opt)
	if err != nil {
		t.Fatal(err)
	}
	optR := opt
	optR.ReclaimColdReplicas = true
	rec, err := Run(build(), optR)
	if err != nil {
		t.Fatal(err)
	}
	if base.VM.Replics == 0 {
		t.Skip("workload produced no replicas at this scale")
	}
	// Reclamation must collapse at least some cold replicas, and must not
	// break any VM invariant (checked inside the run via the pager paths).
	if rec.VM.Collapses == 0 {
		t.Fatal("no cold replicas reclaimed")
	}
	if rec.Alloc.ReplicaInUse > base.Alloc.ReplicaInUse {
		t.Fatalf("reclamation left more live replicas (%d) than base (%d)",
			rec.Alloc.ReplicaInUse, base.Alloc.ReplicaInUse)
	}
}

func TestMigrateWriteSharedEndToEnd(t *testing.T) {
	spec := s2() // four pinned engines hammering write-shared pages
	opt := Options{Seed: 3, Dynamic: true}
	opt.Params = policy.Base().WithTrigger(64)
	opt.Params.MigrateWriteShared = true
	res, err := Run(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.VM.Migrates == 0 {
		t.Fatal("write-shared extension never migrated")
	}
	if res.VM.Replics != 0 {
		t.Fatal("write-shared pages replicated")
	}
}

func TestDisableRemapReproducesPaperLimitation(t *testing.T) {
	optBase := Options{Seed: 9, Dynamic: true}
	optBase.Params = policy.Base().WithTrigger(64)
	base, err := Run(tinySpec(workload.SchedPinned, 200000), optBase)
	if err != nil {
		t.Fatal(err)
	}
	optNo := optBase
	optNo.Params.DisableRemap = true
	limited, err := Run(tinySpec(workload.SchedPinned, 200000), optNo)
	if err != nil {
		t.Fatal(err)
	}
	if limited.VM.Remaps != 0 {
		t.Fatalf("remaps performed with remap disabled: %d", limited.VM.Remaps)
	}
	_ = base // remap count under base may legitimately be zero for pinned procs
}
