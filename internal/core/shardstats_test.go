package core

import (
	"bytes"
	"testing"

	"ccnuma/internal/obs"
	"ccnuma/internal/sim"
	"ccnuma/internal/workload"
)

// statsOpt returns the golden shard-stats workload options at the given lane
// count (matching the Makefile's obs-shard-smoke step).
func statsOpt(shards int) (spec *workload.Spec, opt Options) {
	build, err := workload.ByName("engineering")
	if err != nil {
		panic(err)
	}
	return build(0.05, 11), Options{
		Seed: 11, Dynamic: true, Duration: 4 * sim.Millisecond,
		Shards: shards, CollectShardStats: true,
	}
}

// TestShardStatsNeutral pins the two invariants the per-lane reports rest on:
// collecting shard stats never perturbs the simulation (byte-identical
// exports with and without collection, including at Shards 0, where
// collection routes through the 1-lane sharded engine), and the dispatch
// total is the shard-neutral quantity — per-lane splits legitimately differ
// per lane count.
func TestShardStatsNeutral(t *testing.T) {
	spec, opt := statsOpt(0)
	opt.CollectShardStats = false
	opt.CollectEvents = true
	base, err := Run(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if base.ShardStats != nil {
		t.Fatal("stats collected without CollectShardStats")
	}
	want := shardExports(t, base)

	var total uint64
	for _, shards := range []int{0, 1, 2, 4} {
		spec, opt := statsOpt(shards)
		opt.CollectEvents = true
		res, err := Run(spec, opt)
		if err != nil {
			t.Fatal(err)
		}
		if got := shardExports(t, res); !bytes.Equal(want, got) {
			t.Fatalf("shards=%d: collecting stats perturbed the simulation\nfirst divergence: %s",
				shards, firstDiff(want, got))
		}
		st := res.ShardStats
		if st == nil {
			t.Fatalf("shards=%d: no stats collected", shards)
		}
		wantLanes := shards
		if wantLanes < 1 {
			wantLanes = 1
		}
		if st.Lanes() != wantLanes {
			t.Fatalf("shards=%d: stats cover %d lanes", shards, st.Lanes())
		}
		if total == 0 {
			total = st.TotalDispatched()
		} else if st.TotalDispatched() != total {
			t.Fatalf("shards=%d: total dispatched %d, want the shard-neutral %d",
				shards, st.TotalDispatched(), total)
		}
	}
	if total == 0 {
		t.Fatal("golden workload dispatched nothing")
	}
}

// statsArtifacts renders the shard-stats consumer surfaces available at this
// layer for one run: the JSONL report and the lane-track Chrome trace. (The
// ASCII table lives in internal/report, which imports core; its determinism
// test sits there.)
func statsArtifacts(t *testing.T, shards int) []byte {
	t.Helper()
	spec, opt := statsOpt(shards)
	opt.CollectEvents = true
	res, err := Run(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := obs.WriteShardStatsJSONL(&b, res.ShardStats); err != nil {
		t.Fatal(err)
	}
	if err := res.ObsEvents.WriteChromeTraceWith(&b, res.ShardStats); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestShardStatsDeterministic pins byte determinism of the shard-stats
// artifacts: two identical runs at each lane count produce identical JSONL
// and Chrome trace (with lane tracks) output.
func TestShardStatsDeterministic(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		a := statsArtifacts(t, shards)
		b := statsArtifacts(t, shards)
		if !bytes.Equal(a, b) {
			t.Fatalf("shards=%d: shard-stats artifacts not deterministic\nfirst divergence: %s",
				shards, firstDiff(a, b))
		}
	}
}
