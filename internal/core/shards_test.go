package core

import (
	"bytes"
	"fmt"
	"testing"

	"ccnuma/internal/obs"
	"ccnuma/internal/sim"
	"ccnuma/internal/workload"
)

// shardExports renders every deterministic export of a result: the stats
// summary, the observability events JSONL, and the time-series (CSV and
// JSONL). Byte equality of this bundle is the cross-shard gate.
func shardExports(t *testing.T, res *Result) []byte {
	t.Helper()
	var b bytes.Buffer
	fmt.Fprintf(&b, "elapsed=%d steps=%d events=%d\n", res.Elapsed, res.Steps, res.Events)
	fmt.Fprintf(&b, "agg=%+v\n", res.Agg)
	for i := range res.PerCPU {
		fmt.Fprintf(&b, "cpu%d=%+v\n", i, res.PerCPU[i])
	}
	fmt.Fprintf(&b, "vm=%+v alloc=%+v counters=%+v\n", res.VM, res.Alloc, res.Counters)
	fmt.Fprintf(&b, "actions=%+v sched=%d local=%.9f remote=%d\n",
		res.Actions, res.SchedMigrations, res.LocalMissFraction, res.AvgRemoteLatency)
	fmt.Fprintf(&b, "contention=%+v faults=%+v\n", res.Contention, res.Faults)
	if res.ObsEvents != nil {
		if err := res.ObsEvents.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
	}
	if res.Series != nil {
		if err := res.Series.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		if err := res.Series.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
	}
	return b.Bytes()
}

// shardCases are the golden workload/option combinations the cross-shard
// determinism hammer runs: dynamic policy with every observability surface
// on, a pinned static-placement run, a real paper workload at test scale,
// and a full-chaos fault-injected run.
func shardCases() []struct {
	name string
	spec func() *workload.Spec
	opt  Options
} {
	return []struct {
		name string
		spec func() *workload.Spec
		opt  Options
	}{
		{
			name: "tiny-affinity-dynamic",
			spec: func() *workload.Spec { return tinySpec(workload.SchedAffinity, 60000) },
			opt: Options{Seed: 7, Dynamic: true, CollectEvents: true,
				SampleInterval: sim.Millisecond, DebugChecks: true},
		},
		{
			name: "tiny-pinned-static",
			spec: func() *workload.Spec { return tinySpec(workload.SchedPinned, 60000) },
			opt:  Options{Seed: 3, CollectEvents: true, SampleInterval: sim.Millisecond},
		},
		{
			name: "engineering-scaled",
			spec: func() *workload.Spec {
				build, err := workload.ByName("engineering")
				if err != nil {
					panic(err)
				}
				return build(0.05, 11)
			},
			opt: Options{Seed: 11, Dynamic: true, CollectEvents: true,
				Duration: 8 * sim.Millisecond},
		},
		{
			name: "tiny-chaos",
			spec: func() *workload.Spec { return tinySpec(workload.SchedAffinity, 60000) },
			opt: Options{Seed: 5, Dynamic: true, CollectEvents: true,
				SampleInterval: sim.Millisecond, Faults: chaosConfig()},
		},
	}
}

// TestShardNeutrality is the cross-shard determinism hammer: for every
// golden case, `-shards 1` (the single-heap engine) and `-shards N`
// (per-node lanes under the deterministic merge) must produce byte-identical
// stats, events JSONL, and time-series output. Run under -race in `make ci`
// (the race target re-executes it by name).
func TestShardNeutrality(t *testing.T) {
	for _, tc := range shardCases() {
		t.Run(tc.name, func(t *testing.T) {
			// The flight recorder rides along on every run: its dump (events
			// plus truncation marker) follows the dispatch order, so it is as
			// shard-neutral as the exports and joins the byte-equality gate.
			run := func(shards int) []byte {
				opt := tc.opt
				opt.Shards = shards
				opt.Recorder = obs.NewRecorder(128)
				res, err := Run(tc.spec(), opt)
				if err != nil {
					t.Fatal(err)
				}
				out := shardExports(t, res)
				events, dropped := opt.Recorder.Dump()
				var b bytes.Buffer
				fmt.Fprintf(&b, "recorder dropped=%d\n", dropped)
				for _, e := range events {
					fmt.Fprintf(&b, "%+v\n", e)
				}
				return append(out, b.Bytes()...)
			}
			want := run(1)
			for _, shards := range []int{2, 4} {
				got := run(shards)
				if !bytes.Equal(want, got) {
					t.Fatalf("shards=%d diverged from shards=1 (exports differ: %d vs %d bytes)\nfirst divergence: %s",
						shards, len(want), len(got), firstDiff(want, got))
				}
			}
		})
	}
}

// firstDiff renders the first differing region of two byte slices.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo, hi := i-40, i+40
			if lo < 0 {
				lo = 0
			}
			if hi > n {
				hi = n
			}
			return fmt.Sprintf("at byte %d: %q vs %q", i, a[lo:hi], b[lo:hi])
		}
	}
	return fmt.Sprintf("common prefix of %d bytes", n)
}

// TestShardsAbsentFromFingerprint pins the memo contract: two option sets
// differing only in shard count share one fingerprint (and so one memo
// slot), because sharding cannot change results.
func TestShardsAbsentFromFingerprint(t *testing.T) {
	a := Options{Seed: 9, Dynamic: true}
	b := a
	b.Shards = 4
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("shard count leaked into the fingerprint:\n%s\n%s",
			a.Fingerprint(), b.Fingerprint())
	}
	c := a
	c.Dynamic = false
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("distinct options collided — the fingerprint stopped covering Dynamic")
	}
	// The other execution-only observability knobs must be erased too:
	// shard-stats collection cannot change results, and a recorder pointer
	// would make every attempt's memo key unique.
	d := a
	d.CollectShardStats = true
	if a.Fingerprint() != d.Fingerprint() {
		t.Fatalf("CollectShardStats leaked into the fingerprint:\n%s\n%s",
			a.Fingerprint(), d.Fingerprint())
	}
	e := a
	e.Recorder = obs.NewRecorder(16)
	if a.Fingerprint() != e.Fingerprint() {
		t.Fatalf("the recorder pointer leaked into the fingerprint:\n%s\n%s",
			a.Fingerprint(), e.Fingerprint())
	}
}

// TestShardOptionValidation pins the Shards normalization: negatives are
// rejected, and counts beyond the node count clamp to one lane per node.
func TestShardOptionValidation(t *testing.T) {
	if _, err := Run(tinySpec(workload.SchedPinned, 1000), Options{Seed: 1, Shards: -1}); err == nil {
		t.Fatal("negative shard count accepted")
	}
	sys, err := NewSystem(tinySpec(workload.SchedPinned, 1000), Options{Seed: 1, Shards: 64})
	if err != nil {
		t.Fatal(err)
	}
	if sys.seng == nil {
		t.Fatal("shards=64 did not select the sharded engine")
	}
	if got, nodes := sys.seng.Lanes(), sys.cfg.Nodes; got != nodes {
		t.Fatalf("lanes = %d, want clamped to node count %d", got, nodes)
	}
	if sys.seng.Lookahead() != sys.cfg.RemoteLatency {
		t.Fatalf("epoch lookahead = %v, want the minimum cross-node latency %v",
			sys.seng.Lookahead(), sys.cfg.RemoteLatency)
	}
}

// TestShardedEngineStepChain drives a sharded system event by event through
// the public step API, checking the lanes actually hold the step chain (the
// engine fires events and the workload completes exactly as single-heap).
func TestShardedEngineStepChain(t *testing.T) {
	run := func(shards int) (uint64, sim.Time) {
		sys, err := NewSystem(tinySpec(workload.SchedPinned, 20000), Options{Seed: 2, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		sys.start()
		for sys.engineStep() {
			if sys.finished() {
				break
			}
		}
		return sys.engineFired(), sys.now()
	}
	f1, t1 := run(1)
	f4, t4 := run(4)
	if f1 != f4 || t1 != t4 {
		t.Fatalf("stepwise runs diverged: shards=1 %d@%v, shards=4 %d@%v", f1, t1, f4, t4)
	}
}
