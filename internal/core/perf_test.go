package core

import (
	"testing"

	"ccnuma/internal/workload"
)

// hotPathSystem builds a started system whose event queue is an endless
// pinned-CPU step chain: first-touch placement (no pager), no tracer, no
// sampler, work budgets large enough that no process exits. After a warmup
// that faults in the working set and grows every buffer to capacity, the
// remaining steady state is exactly the per-reference hot path the tentpole
// makes allocation-free.
func hotPathSystem(tb testing.TB, closure bool) *System {
	tb.Helper()
	sys, err := NewSystem(tinySpec(workload.SchedPinned, 1<<62), Options{
		Seed: 1, ClosureEvents: closure,
	})
	if err != nil {
		tb.Fatal(err)
	}
	sys.start()
	for i := 0; i < 200000; i++ {
		if !sys.eng.Step() {
			tb.Fatal("event queue drained during warmup")
		}
	}
	return sys
}

// TestStepHotPathZeroAllocs is the tentpole's acceptance gate: once warm,
// dispatching step events allocates nothing — no closures per schedule, no
// per-access garbage anywhere under step.
func TestStepHotPathZeroAllocs(t *testing.T) {
	sys := hotPathSystem(t, false)
	avg := testing.AllocsPerRun(50, func() {
		for i := 0; i < 2000; i++ {
			sys.eng.Step()
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state step path allocates %.2f per 2000 events, want 0", avg)
	}
}

// BenchmarkStepHotPath measures one step-event dispatch (scheduling, TLB,
// caches, memory system, counters) on both event paths; allocs/op is the
// headline number.
func BenchmarkStepHotPath(b *testing.B) {
	for _, m := range []struct {
		name    string
		closure bool
	}{{"typed", false}, {"closure", true}} {
		b.Run(m.name, func(b *testing.B) {
			sys := hotPathSystem(b, m.closure)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.eng.Step()
			}
		})
	}
}
