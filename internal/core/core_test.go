package core

import (
	"testing"

	"ccnuma/internal/mem"
	"ccnuma/internal/policy"
	"ccnuma/internal/sim"
	"ccnuma/internal/topology"
	"ccnuma/internal/workload"
)

// tinySpec builds a small deterministic workload for integration tests: four
// processes sharing a read-mostly region (replication target) plus private
// streaming regions (migration targets after moves), at footprints that
// exceed the L2 so misses persist.
func tinySpec(sched workload.SchedKind, work uint64) *workload.Spec {
	l := &workload.Layout{}
	code := l.NewRegion("code", 8, workload.CodeRegion, true)
	shared := l.NewRegion("shared", 192, workload.DataRegion, true)
	s := &workload.Spec{
		Name:     "tiny",
		Sched:    sched,
		Duration: 30 * sim.Millisecond,
		Trigger:  64,
	}
	for i := 0; i < 4; i++ {
		priv := l.NewRegion("priv", 160, workload.DataRegion, false)
		g := &workload.Gen{
			Code:     &workload.CodeWalk{Reg: code, HotFrac: 0.9, HotLines: 64},
			Data:     []workload.Source{&workload.Window{Reg: shared, W: 160, MoveEvery: 2000}, &workload.Sequential{Reg: priv, WriteFrac: 0.4}},
			Weights:  []float64{0.6, 0.4},
			DataFrac: 0.7, Locality: 0.5,
			ExitAfter: work,
		}
		g.Reset(uint64(100 + i))
		pin := mem.CPUID(-1)
		if sched == workload.SchedPinned {
			pin = mem.CPUID(i * 2)
		}
		s.Procs = append(s.Procs, workload.ProcSpec{
			Name: "p", Gen: g, Pin: pin, Private: []workload.Region{priv},
		})
	}
	s.PreTouches = []workload.PreTouch{{Proc: 0, Region: shared}}
	s.Regions = l.Regions
	s.Pages = l.Pages()
	return s
}

func TestRunFTCompletes(t *testing.T) {
	res, err := Run(tinySpec(workload.SchedPinned, 150000), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 || res.Elapsed >= 120*sim.Millisecond {
		t.Fatalf("elapsed = %v (cap hit?)", res.Elapsed)
	}
	if res.Steps != 4*150000 {
		t.Fatalf("steps = %d, want %d", res.Steps, 4*150000)
	}
	if res.Agg.NonIdle() <= 0 {
		t.Fatal("no busy time accounted")
	}
	if res.LocalMissFraction <= 0 || res.LocalMissFraction >= 1 {
		t.Fatalf("local miss fraction = %v", res.LocalMissFraction)
	}
}

func TestDynamicPolicyImprovesPretouchedSharing(t *testing.T) {
	ft, err := Run(tinySpec(workload.SchedPinned, 150000), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mr, err := Run(tinySpec(workload.SchedPinned, 150000), Options{Seed: 1, Dynamic: true})
	if err != nil {
		t.Fatal(err)
	}
	if mr.VM.Replics == 0 {
		t.Fatal("no replications on a pre-touched read-shared region")
	}
	if mr.LocalMissFraction <= ft.LocalMissFraction {
		t.Fatalf("locality did not improve: FT %.2f vs M/R %.2f",
			ft.LocalMissFraction, mr.LocalMissFraction)
	}
	// At this tiny scale the per-operation overhead is not amortized, so
	// total time is not asserted; the locality conversion is.
	_, _, ftRemote := ft.Agg.MemStall()
	_, _, mrRemote := mr.Agg.MemStall()
	if float64(mrRemote) > 0.8*float64(ftRemote) {
		t.Fatalf("remote stall not reduced: FT %v vs M/R %v", ftRemote, mrRemote)
	}
}

func TestRoundRobinWorseThanFirstTouch(t *testing.T) {
	// Private streaming data is local under FT and 7/8 remote under RR.
	ft, _ := Run(tinySpec(workload.SchedPinned, 100000), Options{Seed: 1})
	rr, _ := Run(tinySpec(workload.SchedPinned, 100000), Options{Seed: 1, RoundRobin: true})
	if rr.LocalMissFraction >= ft.LocalMissFraction {
		t.Fatalf("RR locality %.2f not below FT %.2f", rr.LocalMissFraction, ft.LocalMissFraction)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, _ := Run(tinySpec(workload.SchedPinned, 60000), Options{Seed: 7, Dynamic: true})
	b, _ := Run(tinySpec(workload.SchedPinned, 60000), Options{Seed: 7, Dynamic: true})
	if a.Elapsed != b.Elapsed || a.Steps != b.Steps ||
		a.VM != b.VM || a.Actions != b.Actions ||
		a.LocalMissFraction != b.LocalMissFraction {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a.VM, b.VM)
	}
}

func TestSeedChangesRun(t *testing.T) {
	buildA := workload.Database
	a, _ := Run(buildA(0.2, 7), Options{Seed: 7})
	b, _ := Run(buildA(0.2, 8), Options{Seed: 8})
	if a.Elapsed == b.Elapsed && a.Agg.NonIdle() == b.Agg.NonIdle() {
		t.Fatal("different seeds produced identical timing (suspicious)")
	}
}

func TestTraceCollection(t *testing.T) {
	res, _ := Run(tinySpec(workload.SchedPinned, 60000), Options{Seed: 1, CollectTrace: true})
	if res.Trace == nil || res.Trace.Len() == 0 {
		t.Fatal("no trace collected")
	}
	last := sim.Time(-1)
	cache, tlbm := 0, 0
	for _, r := range res.Trace.Records {
		if r.At < last {
			t.Fatal("trace not time-ordered")
		}
		last = r.At
		if int(r.Page) >= 1000+res.Trace.MaxPage() {
			t.Fatal("page out of range")
		}
		if r.Src == 0 {
			cache++
		} else {
			tlbm++
		}
	}
	if cache == 0 || tlbm == 0 {
		t.Fatalf("trace misses a source: cache=%d tlb=%d", cache, tlbm)
	}
}

func TestCollapseOnWriteSharedPages(t *testing.T) {
	// A write-heavy shared region: replication should be suppressed or
	// collapsed, never persist.
	l := &workload.Layout{}
	code := l.NewRegion("code", 4, workload.CodeRegion, true)
	shared := l.NewRegion("sync", 16, workload.DataRegion, true)
	s := &workload.Spec{Name: "wshare", Sched: workload.SchedPinned,
		Duration: 30 * sim.Millisecond, Trigger: 64}
	for i := 0; i < 4; i++ {
		g := &workload.Gen{
			Code:     &workload.CodeWalk{Reg: code, HotFrac: 0.95, HotLines: 32},
			Data:     []workload.Source{&workload.Sync{Reg: shared, WriteFrac: 0.5}},
			Weights:  []float64{1},
			DataFrac: 0.8, ExitAfter: 120000,
		}
		g.Reset(uint64(i + 1))
		s.Procs = append(s.Procs, workload.ProcSpec{Name: "w", Gen: g, Pin: mem.CPUID(i * 2)})
	}
	s.Regions, s.Pages = l.Regions, l.Pages()

	res, err := Run(s, Options{Seed: 3, Dynamic: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Actions.HotPages == 0 {
		t.Fatal("write-shared pages never went hot")
	}
	noAction := res.Actions.ByReason[policy.ReasonWriteShared]
	if noAction == 0 {
		t.Fatal("policy never identified write sharing")
	}
	// The robustness claim: performance must not collapse. Compare with FT.
	ft, _ := Run(s2(), Options{Seed: 3})
	_ = ft
}

// s2 rebuilds the write-shared spec (generators hold state).
func s2() *workload.Spec {
	l := &workload.Layout{}
	code := l.NewRegion("code", 4, workload.CodeRegion, true)
	shared := l.NewRegion("sync", 16, workload.DataRegion, true)
	s := &workload.Spec{Name: "wshare", Sched: workload.SchedPinned,
		Duration: 30 * sim.Millisecond, Trigger: 64}
	for i := 0; i < 4; i++ {
		g := &workload.Gen{
			Code:     &workload.CodeWalk{Reg: code, HotFrac: 0.95, HotLines: 32},
			Data:     []workload.Source{&workload.Sync{Reg: shared, WriteFrac: 0.5}},
			Weights:  []float64{1},
			DataFrac: 0.8, ExitAfter: 120000,
		}
		g.Reset(uint64(i + 1))
		s.Procs = append(s.Procs, workload.ProcSpec{Name: "w", Gen: g, Pin: mem.CPUID(i * 2)})
	}
	s.Regions, s.Pages = l.Regions, l.Pages()
	return s
}

func TestMetricTLBDriven(t *testing.T) {
	res, err := Run(tinySpec(workload.SchedPinned, 100000), Options{Seed: 1, Dynamic: true, Metric: FullTLB})
	if err != nil {
		t.Fatal(err)
	}
	// TLB-driven counting must count TLB misses, not cache misses.
	if res.Counters.Counted == 0 {
		t.Fatal("TLB metric counted nothing")
	}
}

func TestSampledMetricCountsTenth(t *testing.T) {
	full, _ := Run(tinySpec(workload.SchedPinned, 100000), Options{Seed: 1, Dynamic: true})
	smp, _ := Run(tinySpec(workload.SchedPinned, 100000), Options{Seed: 1, Dynamic: true, Metric: SampledCache})
	ratio := float64(smp.Counters.Counted) / float64(smp.Counters.Recorded)
	if ratio < 0.09 || ratio > 0.11 {
		t.Fatalf("sampled ratio = %v, want ~0.1", ratio)
	}
	if full.Counters.Counted != full.Counters.Recorded {
		t.Fatal("full metric dropped misses")
	}
}

func TestCCNOWIncreasesRemoteStall(t *testing.T) {
	numa, _ := Run(tinySpec(workload.SchedPinned, 80000), Options{Seed: 1})
	now, _ := Run(tinySpec(workload.SchedPinned, 80000), Options{Seed: 1, Config: topology.CCNOW()})
	_, _, numaRem := numa.Agg.MemStall()
	_, _, nowRem := now.Agg.MemStall()
	if nowRem <= numaRem {
		t.Fatalf("CC-NOW remote stall %v not above CC-NUMA %v", nowRem, numaRem)
	}
}

func TestVMInvariantsAfterDynamicRun(t *testing.T) {
	sys, err := NewSystem(tinySpec(workload.SchedPinned, 100000), Options{Seed: 5, Dynamic: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sys.vmm.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := sys.allocs.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsValidation(t *testing.T) {
	spec := tinySpec(workload.SchedPinned, 1000)
	bad := Options{Dynamic: true, Params: policy.Params{Trigger: 10}} // sharing 0
	if _, err := Run(spec, bad); err == nil {
		t.Fatal("invalid params accepted")
	}
	cfg := topology.CCNUMA()
	cfg.MemoryPerNode = 1 << 12 // one frame per node: workload cannot fit
	if _, err := Run(tinySpec(workload.SchedPinned, 1000), Options{Config: cfg}); err == nil {
		t.Fatal("oversized workload accepted")
	}
}

func TestRespawnChurn(t *testing.T) {
	l := &workload.Layout{}
	code := l.NewRegion("code", 4, workload.CodeRegion, true)
	s := &workload.Spec{Name: "churn", Sched: workload.SchedAffinity,
		Duration: 40 * sim.Millisecond, Trigger: 64}
	for i := 0; i < 3; i++ {
		priv := l.NewRegion("pr", 32, workload.DataRegion, false)
		g := &workload.Gen{
			Code:     &workload.CodeWalk{Reg: code, HotFrac: 0.9, HotLines: 32},
			Data:     []workload.Source{&workload.Sequential{Reg: priv, WriteFrac: 0.5}},
			Weights:  []float64{1},
			DataFrac: 0.5, ExitAfter: 20000,
		}
		g.Reset(uint64(i))
		s.Procs = append(s.Procs, workload.ProcSpec{
			Name: "c", Gen: g, Pin: -1, Respawn: true, MaxRespawns: 2,
			Private: []workload.Region{priv},
		})
	}
	s.Regions, s.Pages = l.Regions, l.Pages()
	res, err := Run(s, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 3 slots x (1 + 2 respawns) x 20k steps each.
	want := uint64(3 * 3 * 20000)
	if res.Steps != want {
		t.Fatalf("steps = %d, want %d (respawn bound broken)", res.Steps, want)
	}
}

func TestPartitionScheduledWorkload(t *testing.T) {
	spec := tinySpec(workload.SchedPartition, 80000)
	for i := range spec.Procs {
		spec.Procs[i].Pin = -1
		spec.Procs[i].Job = i % 2
	}
	res, err := Run(spec, Options{Seed: 4, Dynamic: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 4*80000 {
		t.Fatalf("partition run incomplete: %d steps", res.Steps)
	}
}
