package core

import (
	"testing"

	"ccnuma/internal/policy"
	"ccnuma/internal/workload"
)

// TestInvariantSoak runs the dynamic policy across several seeds and
// scheduler disciplines and checks the kernel's structural invariants after
// each run: no VM run may leave a dangling pte, a broken replica chain, a
// leaked or double-allocated frame, or an unaccounted ledger.
func TestInvariantSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak in -short mode")
	}
	for seed := uint64(1); seed <= 4; seed++ {
		for _, sk := range []workload.SchedKind{workload.SchedPinned, workload.SchedAffinity, workload.SchedPartition} {
			spec := tinySpec(sk, 120000)
			if sk != workload.SchedPinned {
				for i := range spec.Procs {
					spec.Procs[i].Pin = -1
					spec.Procs[i].Job = i % 2
				}
			}
			opt := Options{Seed: seed, Dynamic: true}
			opt.Params = policy.Base().WithTrigger(64)
			opt.Params.ResetInterval /= 5
			opt.ReclaimColdReplicas = seed%2 == 0
			sys, err := NewSystem(spec, opt)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.Run()
			if err != nil {
				t.Fatalf("seed %d sched %d: %v", seed, sk, err)
			}
			if err := sys.vmm.CheckInvariants(); err != nil {
				t.Fatalf("seed %d sched %d: %v", seed, sk, err)
			}
			if err := sys.allocs.CheckInvariant(); err != nil {
				t.Fatalf("seed %d sched %d: %v", seed, sk, err)
			}
			// Ledger sanity: every CPU's breakdown spans the run.
			for i := range res.PerCPU {
				if got := res.PerCPU[i].Total(); got < res.Elapsed {
					t.Fatalf("seed %d sched %d cpu %d ledger %v < elapsed %v",
						seed, sk, i, got, res.Elapsed)
				}
			}
			// The run must have completed its work, not hit the cap.
			if res.Steps != 4*120000 {
				t.Fatalf("seed %d sched %d: steps %d", seed, sk, res.Steps)
			}
		}
	}
}

// TestStallAccountingMatchesMissCounts cross-checks two independent ledgers:
// the per-CPU stall breakdown and the memory system's miss totals.
func TestStallAccountingMatchesMissCounts(t *testing.T) {
	sys, err := NewSystem(tinySpec(workload.SchedPinned, 100000), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	var local, remote uint64
	for m := 0; m < 2; m++ {
		for s := 0; s < 2; s++ {
			local += res.Agg.Misses[m][s][1]  // stats.LocalMem
			remote += res.Agg.Misses[m][s][2] // stats.RemoteMem
		}
	}
	gotLocal, gotRemote, _, _ := sys.mems.Totals()
	if local != gotLocal || remote != gotRemote {
		t.Fatalf("breakdown misses %d/%d != memory system %d/%d",
			local, remote, gotLocal, gotRemote)
	}
}
