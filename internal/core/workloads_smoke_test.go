package core

import (
	"testing"

	"ccnuma/internal/workload"
)

// TestAllPaperWorkloadsEndToEnd runs each of the five Table-2 workloads at a
// reduced scale under the dynamic policy and verifies it completes, keeps
// the kernel invariants, and shows the qualitative behaviour the paper
// assigns to it.
func TestAllPaperWorkloadsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end sweep in -short mode")
	}
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			build, err := workload.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			spec := build(0.25, 7)
			sys, err := NewSystem(spec, Options{Seed: 7, Dynamic: true})
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.Run()
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.vmm.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if err := sys.allocs.CheckInvariant(); err != nil {
				t.Fatal(err)
			}
			if res.Steps == 0 || res.Agg.NonIdle() == 0 {
				t.Fatal("no work executed")
			}
			if res.Elapsed >= 4*spec.Duration {
				t.Fatalf("hit the duration cap (%v)", res.Elapsed)
			}

			switch name {
			case "raytrace":
				if res.VM.Replics == 0 {
					t.Error("raytrace should replicate its scene")
				}
			case "database":
				_, _, none, _ := res.Actions.Percent()
				if none < 50 {
					t.Errorf("database no-action = %.0f%%, want dominant", none)
				}
			case "splash":
				if res.Actions.NoPage == 0 {
					t.Error("splash should hit memory pressure (No-Page)")
				}
			case "pmake":
				// Kernel-dominated: kernel stall should exceed user stall.
				k := res.Agg.StallTime(1, 0) + res.Agg.StallTime(1, 1)
				u := res.Agg.StallTime(0, 0) + res.Agg.StallTime(0, 1)
				if k <= u {
					t.Errorf("pmake kernel stall %v not above user stall %v", k, u)
				}
			case "engineering":
				if res.VM.Migrates == 0 && res.VM.Replics == 0 {
					t.Error("engineering took no actions")
				}
			}
		})
	}
}
