package core

import (
	"fmt"

	"ccnuma/internal/mem"
	"ccnuma/internal/obs"
	"ccnuma/internal/sim"
)

// wireObservability builds the event tracer and time-series sampler the
// options asked for and hands the tracer to every emitting layer (VM,
// directory counters, pager). Called once from NewSystem, after the kernel
// components exist.
func (s *System) wireObservability() {
	if s.opt.CollectEvents || s.opt.Recorder.On() || s.opt.EventSink != nil {
		switch {
		case s.opt.CollectEvents:
			s.events = obs.NewTracer(s.now)
			// With both asked for, the buffered tracer also mirrors into the
			// flight recorder's ring.
			s.events.AttachRecorder(s.opt.Recorder)
		case s.opt.Recorder.On():
			// Recorder-only: events flow straight into the bounded ring, no
			// unbounded buffer, so a flight recorder is cheap enough to leave
			// on for every harness run.
			s.events = obs.NewFlightTracer(s.now, s.opt.Recorder)
		default:
			// Sink-only: events stream out as they happen, nothing buffered.
			s.events = obs.NewStreamTracer(s.now, s.opt.EventSink)
		}
		// A sink composes with either buffering mode (the stream-only case
		// installed it at construction).
		if s.opt.EventSink != nil && (s.opt.CollectEvents || s.opt.Recorder.On()) {
			s.events.AttachSink(s.opt.EventSink)
		}
		s.vmm.Obs = s.events
		s.counters.Obs = s.events
		if s.pg != nil {
			s.pg.Obs = s.events
		}
		if s.inj != nil {
			s.inj.Obs = s.events
		}
	}
	if s.opt.SampleInterval > 0 {
		s.sampler = obs.NewSampler(s.opt.SampleInterval, s.cfg.TotalCPUs(), s.cfg.Nodes)
		s.sampler.Debug = s.opt.DebugChecks
		s.prevCPU = make([]obs.CPUSample, s.cfg.TotalCPUs())
	}
}

// startSampler schedules the periodic sampling event. Called from Run so the
// first tick lands one interval into the run.
func (s *System) startSampler() {
	if s.sampler == nil {
		return
	}
	s.schedEvery(s.sampler.Interval, s.takeSample,
		func() bool { return s.finished() || s.now() >= s.deadline })
}

// takeSample records one time-series point: engine gauges, per-CPU breakdown
// deltas since the previous sample, per-node frame occupancy, and directory
// counter deltas. In debug mode it first validates every CPU ledger's
// accounting invariants.
func (s *System) takeSample(now sim.Time) {
	sm := obs.Sample{
		At:      now,
		Fired:   s.engineFired(),
		Pending: s.enginePending(),
		CPU:     make([]obs.CPUSample, len(s.cpus)),
		Node:    make([]obs.NodeSample, s.cfg.Nodes),
	}
	if s.sampler.Debug {
		// Structural invariants of the kernel state: the allocator's per-node
		// frame conservation and the VM's mapping consistency. Cheap relative
		// to a sample interval, and they catch corruption at the tick after
		// it happens rather than at the end of the run.
		if err := s.allocs.CheckInvariant(); err != nil {
			panic(fmt.Sprintf("core: allocator at %v: %v", now, err))
		}
		if err := s.vmm.CheckInvariants(); err != nil {
			panic(fmt.Sprintf("core: vm at %v: %v", now, err))
		}
	}
	for i, c := range s.cpus {
		if s.sampler.Debug {
			if err := c.bd.CheckInvariants(); err != nil {
				panic(fmt.Sprintf("core: cpu%d ledger at %v: %v", i, now, err))
			}
		}
		cur := obs.CPUSample{
			Busy:  c.bd.NonIdle(),
			Idle:  c.bd.Idle,
			Pager: c.bd.Pager.Total(),
			Steps: c.steps,
		}
		sm.CPU[i] = cur.Sub(s.prevCPU[i])
		s.prevCPU[i] = cur
	}
	for n := 0; n < s.cfg.Nodes; n++ {
		free, base, replica := s.allocs.UsageOn(mem.NodeID(n))
		sm.Node[n] = obs.NodeSample{Free: free, Base: base, Replica: replica}
	}
	cs := s.counters.Stats()
	cur := obs.CounterSample{Recorded: cs.Recorded, Counted: cs.Counted, Hot: cs.Hot, Resets: cs.Resets}
	sm.Counters = cur.Sub(s.prevCtr)
	s.prevCtr = cur
	s.sampler.Add(sm)
}
