package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"ccnuma/internal/fault"
	"ccnuma/internal/sim"
	"ccnuma/internal/workload"
)

// chaosConfig exercises every fault at once: a mid-run drain, lossy and laggy
// interrupt delivery, transient allocation failures, a degraded link, and the
// kernel's graceful-degradation responses.
func chaosConfig() fault.Config {
	return fault.Config{
		DrainNode:      2,
		DrainAt:        5 * sim.Millisecond,
		DropBatch:      0.2,
		DelayBatch:     0.2,
		AllocFail:      0.3,
		SlowNode:       1,
		SlowFactor:     3,
		DeferFailedOps: true,
	}
}

// A run under full chaos — drain, drops, delays, transient allocation
// failures, a slow link — must complete with the invariants intact (checked
// every sampler tick via DebugChecks), the drained node clear of replicas,
// and the degradation machinery demonstrably engaged.
func TestChaosDrainNodeCompletes(t *testing.T) {
	sys, err := NewSystem(tinySpec(workload.SchedPinned, 150000), Options{
		Seed:        1,
		Dynamic:     true,
		DebugChecks: true,
		Faults:      chaosConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatal("run did not complete")
	}
	if res.Faults.DrainedNode != 2 {
		t.Fatalf("faults = %+v, want node 2 drained", res.Faults)
	}
	if res.Faults.AllocFailures == 0 || res.Alloc.TransientFailures == 0 {
		t.Fatalf("no transient allocation failures injected: %+v / %+v", res.Faults, res.Alloc)
	}
	if res.Faults.BatchesDropped == 0 && res.Faults.BatchesDelayed == 0 {
		t.Fatalf("no batches dropped or delayed: %+v", res.Faults)
	}
	if res.Faults.SlowedMisses == 0 {
		t.Fatalf("no misses slowed on the degraded link: %+v", res.Faults)
	}
	if res.Agg.Deferred == 0 {
		t.Fatalf("deferral never engaged: deferred %d retried %d abandoned %d",
			res.Agg.Deferred, res.Agg.Retried, res.Agg.Abandoned)
	}
	if _, _, replica := sys.allocs.UsageOn(2); replica != 0 {
		t.Fatalf("%d replicas still resident on the drained node", replica)
	}
	if !sys.allocs.Offline(2) {
		t.Fatal("drained node came back online")
	}
	if err := sys.allocs.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if err := sys.vmm.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Chaos runs are as reproducible as clean ones: an identical fault config and
// seed yields byte-identical event streams and identical stats.
func TestChaosDeterminism(t *testing.T) {
	run := func() (*Result, string) {
		res, err := Run(tinySpec(workload.SchedPinned, 60000), Options{
			Seed:          7,
			Dynamic:       true,
			CollectEvents: true,
			Faults:        chaosConfig(),
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.ObsEvents.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return res, buf.String()
	}
	a, aEvents := run()
	b, bEvents := run()
	if aEvents != bEvents {
		t.Fatal("same fault seed produced different event streams")
	}
	aSum := fmt.Sprintf("%v %d %+v %+v %+v", a.Elapsed, a.Steps, a.Faults, a.VM, a.Actions)
	bSum := fmt.Sprintf("%v %d %+v %+v %+v", b.Elapsed, b.Steps, b.Faults, b.VM, b.Actions)
	if aSum != bSum {
		t.Fatalf("same fault seed diverged:\n%s\n%s", aSum, bSum)
	}
	if a.Faults.AllocFailures == 0 {
		t.Fatal("chaos config injected nothing; determinism test is vacuous")
	}
}

// A vanishing overhead budget forces the pager to shed batches: the throttle
// engages and the run still completes.
func TestOverheadBudgetThrottles(t *testing.T) {
	res, err := Run(tinySpec(workload.SchedPinned, 100000), Options{
		Seed:    1,
		Dynamic: true,
		Faults:  fault.Config{OverheadBudget: 1e-6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.Throttled == 0 {
		t.Fatal("a vanishing overhead budget never shed a batch")
	}
	if res.Elapsed <= 0 {
		t.Fatal("run did not complete")
	}
}

// DebugChecks must catch state corruption at the next sampler tick: here a
// page's master frame is swapped out from under its mappers mid-run.
func TestDebugChecksCatchCorruption(t *testing.T) {
	sys, err := NewSystem(tinySpec(workload.SchedPinned, 150000), Options{
		Seed:        1,
		Dynamic:     true,
		DebugChecks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.eng.At(2*sim.Millisecond+sim.Microsecond, func(sim.Time) {
		pi := sys.vmm.Page(0) // code page: mapped by every process early
		if len(pi.Mappers) == 0 {
			t.Error("page 0 unmapped at corruption time; pick a different page")
			return
		}
		pi.Master++ // mappers' ptes now point outside the replica chain
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("corruption survived the sampler's invariant checks")
		}
		if !strings.Contains(fmt.Sprint(r), "vm") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	sys.Run()
}

// The zero fault config must not build an injector at all — the no-fault path
// stays byte-identical (golden tests cover the output; this covers the wiring).
func TestZeroFaultsNoInjector(t *testing.T) {
	sys, err := NewSystem(tinySpec(workload.SchedPinned, 60000), Options{Seed: 1, Dynamic: true})
	if err != nil {
		t.Fatal(err)
	}
	if sys.inj != nil {
		t.Fatal("injector built for the zero fault config")
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.DrainedNode != -1 {
		t.Fatalf("faults stats = %+v, want the empty -1 sentinel", res.Faults)
	}
	if res.Agg.Deferred != 0 || res.Agg.Throttled != 0 {
		t.Fatalf("degradation counters moved without faults: %+v", res.Agg)
	}
}
