package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ccnuma/internal/obs"
	"ccnuma/internal/policy"
	"ccnuma/internal/sim"
	"ccnuma/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden observability exports")

// obsRun is the fixed-seed workload behind the golden files. Affinity
// scheduling plus a pre-touched shared region produces replications,
// shootdowns, hot-page interrupts, policy decisions, and a counter reset
// within ~20ms of virtual time, keeping the goldens small.
func obsRun(t *testing.T) *Result {
	t.Helper()
	res, err := Run(tinySpec(workload.SchedAffinity, 60000), Options{
		Seed: 7, Dynamic: true, CollectEvents: true,
		SampleInterval: sim.Millisecond, DebugChecks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestObservabilityEventKinds(t *testing.T) {
	res := obsRun(t)
	for _, k := range []obs.Kind{
		obs.KindPageReplicated, obs.KindTLBShootdown,
		obs.KindHotPageInterrupt, obs.KindPolicyDecision, obs.KindCounterReset,
	} {
		if res.ObsEvents.CountKind(k) == 0 {
			t.Errorf("no %v events recorded", k)
		}
	}
	// The event stream must agree with the aggregate statistics.
	if n := res.ObsEvents.CountKind(obs.KindPageReplicated); uint64(n) != res.VM.Replics {
		t.Errorf("replication events %d != VM.Replics %d", n, res.VM.Replics)
	}
	if n := res.ObsEvents.CountKind(obs.KindPageMigrated); uint64(n) != res.VM.Migrates {
		t.Errorf("migration events %d != VM.Migrates %d", n, res.VM.Migrates)
	}
	if res.Series.Len() == 0 {
		t.Error("sampler recorded no samples")
	}
	// Sampled steps must sum to the run's executed steps (deltas are lossless
	// up to the tail after the last tick).
	var sampled uint64
	for _, sm := range res.Series.Samples() {
		for _, c := range sm.CPU {
			sampled += c.Steps
		}
	}
	if sampled > res.Steps {
		t.Errorf("sampled step deltas %d exceed total steps %d", sampled, res.Steps)
	}
}

func TestObservabilityMigrationEvents(t *testing.T) {
	// The write-shared spec under the migrate-write-shared extension is the
	// reliable migration producer (see TestMigrateWriteSharedEndToEnd).
	opt := Options{Seed: 3, Dynamic: true, CollectEvents: true}
	opt.Params = policy.Base().WithTrigger(64)
	opt.Params.MigrateWriteShared = true
	res, err := Run(s2(), opt)
	if err != nil {
		t.Fatal(err)
	}
	n := res.ObsEvents.CountKind(obs.KindPageMigrated)
	if n == 0 {
		t.Fatal("no migration events from the write-shared migrator")
	}
	if uint64(n) != res.VM.Migrates {
		t.Errorf("migration events %d != VM.Migrates %d", n, res.VM.Migrates)
	}
	for _, e := range res.ObsEvents.Events() {
		if e.Kind != obs.KindPageMigrated {
			continue
		}
		if e.From == e.To || e.From < 0 || e.To < 0 {
			t.Fatalf("malformed migration event: %+v", e)
		}
	}
}

func TestObservabilityGolden(t *testing.T) {
	res := obsRun(t)
	exports := []struct {
		name  string
		write func(*bytes.Buffer) error
	}{
		{"tiny_events.jsonl", func(b *bytes.Buffer) error { return res.ObsEvents.WriteJSONL(b) }},
		{"tiny_events.trace.json", func(b *bytes.Buffer) error { return res.ObsEvents.WriteChromeTrace(b) }},
		{"tiny_series.csv", func(b *bytes.Buffer) error { return res.Series.WriteCSV(b) }},
	}
	for _, ex := range exports {
		var buf bytes.Buffer
		if err := ex.write(&buf); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join("testdata", ex.name)
		if *update {
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with -update to create the goldens)", err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("%s drifted from its golden (got %d bytes, want %d); "+
				"run go test ./internal/core -run Golden -update if the change is intended",
				ex.name, buf.Len(), len(want))
		}
	}

	// A second identical run must export identical bytes (determinism is the
	// property that makes the goldens meaningful).
	res2 := obsRun(t)
	var a, b bytes.Buffer
	if err := res.ObsEvents.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := res2.ObsEvents.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two same-seed runs exported different event bytes")
	}
}
