package core

import (
	"testing"

	"ccnuma/internal/policy"
	"ccnuma/internal/sim"
	"ccnuma/internal/topology"
)

// The options fingerprint keys the report layer's memo cache; any field
// whose change can alter a simulation must change the fingerprint, or the
// cache silently serves the wrong Result. The hand-rolled key it replaced
// omitted Sharing/Write/Migrate/ResetInterval.
func TestFingerprintDistinguishesEveryOptionField(t *testing.T) {
	base := Options{Dynamic: true, Params: policy.Base()}
	variants := map[string]func(*Options){
		"sharing":        func(o *Options) { o.Params.Sharing++ },
		"write":          func(o *Options) { o.Params.Write++ },
		"migrate":        func(o *Options) { o.Params.Migrate++ },
		"reset-interval": func(o *Options) { o.Params.ResetInterval += sim.Millisecond },
		"trigger":        func(o *Options) { o.Params.Trigger++ },
		"mig-wshared":    func(o *Options) { o.Params.MigrateWriteShared = true },
		"no-remap":       func(o *Options) { o.Params.DisableRemap = true },
		"dynamic":        func(o *Options) { o.Dynamic = false },
		"config":         func(o *Options) { o.Config = topology.CCNOW() },
		"round-robin":    func(o *Options) { o.RoundRobin = true },
		"metric":         func(o *Options) { o.Metric = SampledCache },
		"seed":           func(o *Options) { o.Seed++ },
		"duration":       func(o *Options) { o.Duration = sim.Second },
		"collect-trace":  func(o *Options) { o.CollectTrace = true },
		"quantum":        func(o *Options) { o.Quantum = sim.Millisecond },
		"code-ft":        func(o *Options) { o.ReplicateCodeOnFirstTouch = true },
		"adaptive":       func(o *Options) { o.AdaptiveTrigger = true },
		"reclaim":        func(o *Options) { o.ReclaimColdReplicas = true },
		"closure-events": func(o *Options) { o.ClosureEvents = true },
		"fault-seed":     func(o *Options) { o.Faults.Seed = 7 },
		"fault-drain":    func(o *Options) { o.Faults.DrainNode = 2; o.Faults.DrainAt = sim.Millisecond },
		"fault-drop":     func(o *Options) { o.Faults.DropBatch = 0.1 },
		"fault-alloc":    func(o *Options) { o.Faults.AllocFail = 0.1 },
		"fault-slow":     func(o *Options) { o.Faults.SlowNode = 1; o.Faults.SlowFactor = 2 },
		"fault-defer":    func(o *Options) { o.Faults.DeferFailedOps = true },
		"fault-budget":   func(o *Options) { o.Faults.OverheadBudget = 0.1 },
	}
	seen := map[string]string{base.Fingerprint(): "base"}
	for name, mutate := range variants {
		o := base
		mutate(&o)
		fp := o.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("variant %q has the same fingerprint as %q", name, prev)
		}
		seen[fp] = name
	}
}

func TestFingerprintStableForEqualOptions(t *testing.T) {
	a := Options{Dynamic: true, Params: policy.Base(), Config: topology.CCNUMA()}
	b := Options{Dynamic: true, Params: policy.Base(), Config: topology.CCNUMA()}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("equal options fingerprint differently:\n%s\n%s", a.Fingerprint(), b.Fingerprint())
	}
}
