package core

import (
	"fmt"

	"ccnuma/internal/cache"
	"ccnuma/internal/directory"
	"ccnuma/internal/fault"
	"ccnuma/internal/kernel/alloc"
	"ccnuma/internal/kernel/klock"
	"ccnuma/internal/kernel/pager"
	"ccnuma/internal/kernel/sched"
	"ccnuma/internal/kernel/vm"
	"ccnuma/internal/mem"
	"ccnuma/internal/obs"
	"ccnuma/internal/sim"
	"ccnuma/internal/stats"
	"ccnuma/internal/tlb"
	"ccnuma/internal/topology"
	"ccnuma/internal/trace"
	"ccnuma/internal/workload"
)

// idleTick is how often an idle CPU re-checks its run queue.
const idleTick = 100 * sim.Microsecond

// ctxSwitch is the kernel cost of a context switch.
const ctxSwitch = 15 * sim.Microsecond

// sliceMax bounds the virtual time one CPU advances per event, so resource
// contention across CPUs interleaves at fine grain.
const sliceMax = 20 * sim.Microsecond

type procState struct {
	vmID mem.ProcID
	sp   *sched.Proc
	spec *workload.ProcSpec
	// specIdx is spec's index in the workload's Procs slice — the stable,
	// shardable identity used wherever per-spec state is kept (pointer-keyed
	// maps are banned: ranging one is latent nondeterminism, and pointers
	// cannot be merged deterministically across lanes).
	specIdx int
	gen     workload.Generator
	alive   bool
	// slotGen distinguishes successive occupants of a reused vm ProcID slot,
	// so a typed wake event scheduled for an exited process cannot wake its
	// successor (the closure path pins the exact procState instead).
	slotGen uint32
}

type cpuState struct {
	id      mem.CPUID
	node    mem.NodeID
	caches  *cache.Hierarchy
	tlb     *tlb.TLB
	cur     *procState
	quantum sim.Time // current quantum's end

	// lane is the event lane this CPU's step chain runs on (nil on the
	// single-heap engine). The step handler captures it on every dispatch;
	// schedule() re-arms through it so an idle tick admitted into a guarded
	// window journals its reschedule instead of touching the engine heap.
	lane *sim.Lane

	// pagerWork holds hot-page batches queued for this CPU's next step;
	// pagerHead indexes the next unserviced batch so draining reuses one
	// backing array instead of re-slicing it away.
	pagerWork [][]directory.HotRef
	pagerHead int
	// flushCharge is pending TLB-shootdown interrupt time to charge.
	flushCharge sim.Time

	steps      uint64
	idle       bool
	extraDelay sim.Time
	bd         stats.Breakdown
}

// System is one assembled machine + workload instance.
type System struct {
	spec *workload.Spec
	opt  Options
	cfg  topology.Config

	// Exactly one of eng (single-heap; Shards <= 1) and seng (per-node
	// event lanes; Shards > 1) is non-nil; engine.go's wrappers dispatch to
	// whichever exists.
	eng      *sim.Engine
	seng     *sim.Sharded
	rng      *sim.Rand
	val      *cache.Validity
	allocs   *alloc.Allocator
	vmm      *vm.VM
	locks    *klock.Set
	counters *directory.Counters
	pg       *pager.Pager
	mems     *directory.MemSystem
	inj      *fault.Injector // nil unless Options.Faults enables something
	schedul  sched.Scheduler
	cpus     []*cpuState
	procs    []*procState // indexed by vm ProcID (slots reused)
	slotGens []uint32     // per vm-slot generation counters (wake identity)
	tracer   *trace.Trace
	deadline sim.Time // hard cap; runs normally end at workload completion
	seedGen  *sim.Rand

	// Typed event kinds (registered once in NewSystem): the per-CPU step
	// chain and the process wake-after-block event. Scheduling them carries
	// only an integer arg through the engine heap, so the simulator's inner
	// loop allocates nothing per event. Options.ClosureEvents falls back to
	// the closure path for A/B determinism checks.
	stepKind sim.Kind
	wakeKind sim.Kind

	// batchPool recycles the hot-page batch slices that travel from the
	// directory's pending queue through cpuState.pagerWork to HandleBatch.
	batchPool [][]directory.HotRef

	// Observability (nil when disabled): the typed event tracer wired
	// through vm/pager/directory, and the periodic time-series sampler with
	// its previous-snapshot state for computing per-interval deltas.
	events  *obs.Tracer
	sampler *obs.Sampler
	prevCPU []obs.CPUSample
	prevCtr obs.CounterSample

	live          int
	pendingSpawns int
	// respawnsLeft is indexed by proc-spec index (procState.specIdx): the
	// remaining respawn budget for churning specs, counted down from
	// MaxRespawns. The replaced pointer-keyed map had identical semantics
	// but was a latent nondeterminism hazard and could never be sharded or
	// merged deterministically across lanes.
	respawnsLeft []int
	completedAt  sim.Time
}

type specAdapter struct{ s *workload.Spec }

func (a specAdapter) nodes() int           { return a.s.Nodes }
func (a specAdapter) memoryPerNode() int64 { return a.s.MemoryPerNode }
func (a specAdapter) trigger() uint16      { return a.s.Trigger }
func (a specAdapter) duration() sim.Time   { return a.s.Duration }

// NewSystem assembles a machine for the spec under the options.
func NewSystem(spec *workload.Spec, opt Options) (*System, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	opt, err := opt.withDefaults(specAdapter{spec})
	if err != nil {
		return nil, err
	}
	cfg := opt.Config
	if cfg.TotalFrames() < spec.Pages {
		return nil, fmt.Errorf("core: %d pages exceed machine memory (%d frames)",
			spec.Pages, cfg.TotalFrames())
	}

	s := &System{
		spec:         spec,
		opt:          opt,
		cfg:          cfg,
		rng:          sim.NewRand(opt.Seed ^ 0xabcdef),
		seedGen:      sim.NewRand(opt.Seed*2654435761 + 1),
		deadline:     4 * opt.Duration, // hard cap; completion usually ends the run
		respawnsLeft: make([]int, len(spec.Procs)),
	}
	s.buildEngine()
	for i := range spec.Procs {
		s.respawnsLeft[i] = spec.Procs[i].MaxRespawns
	}
	s.val = cache.NewValidity(spec.Pages, cfg.Nodes)
	s.allocs = alloc.New(cfg.Nodes, cfg.FramesPerNode())
	s.vmm = vm.New(spec.Pages, cfg.Nodes, s.allocs, s.val, opt.Placement)
	s.vmm.Locate = func(pid mem.ProcID) mem.NodeID {
		if int(pid) < len(s.procs) && s.procs[pid] != nil {
			return cfg.NodeOf(s.procs[pid].sp.LastCPU)
		}
		return 0
	}
	s.locks = klock.NewSet(64)
	s.mems = directory.NewMemSystem(cfg)

	trigger := spec.Trigger
	if opt.Dynamic {
		trigger = opt.Params.Trigger
	}
	s.counters = directory.NewCounters(spec.Pages, cfg.TotalCPUs(), trigger,
		cfg.PagesPerInterrupt, opt.Metric.SampleRate(), s.onHotBatch)

	if opt.Dynamic {
		s.pg = pager.New(cfg, s.locks, s.allocs, s.vmm, s.counters, opt.Params)
		s.pg.Flush = s.shootdown
		s.pg.Adaptive = opt.AdaptiveTrigger
		s.pg.ReclaimCold = opt.ReclaimColdReplicas
	}

	if opt.Faults.Enabled() {
		s.inj = fault.New(opt.Faults, opt.Seed, s.now)
		s.allocs.FailHook = s.inj.AllocShouldFail
		s.mems.ExtraRemote = s.inj.ExtraRemoteLatency
		if s.pg != nil {
			s.pg.Deferral = opt.Faults.DeferFailedOps
			s.pg.OverheadBudget = opt.Faults.OverheadBudget
		}
	}

	switch spec.Sched {
	case workload.SchedPinned:
		s.schedul = sched.NewPinned(cfg.TotalCPUs())
	case workload.SchedPartition:
		s.schedul = sched.NewPartition(cfg.TotalCPUs())
	default:
		s.schedul = sched.NewAffinity(cfg.TotalCPUs())
	}

	s.cpus = make([]*cpuState, cfg.TotalCPUs())
	for i := range s.cpus {
		s.cpus[i] = &cpuState{
			id:     mem.CPUID(i),
			node:   cfg.NodeOf(mem.CPUID(i)),
			caches: cache.NewHierarchy(i, cfg.L1Size, cfg.L1Assoc, cfg.L2Size, cfg.L2Assoc, s.val),
			tlb:    tlb.New(cfg.TLBEntries, cfg.TLBAssoc),
		}
	}
	if opt.CollectTrace {
		// Size the record buffer for the run's step budget (duration worth of
		// steps across all CPUs, of which roughly one in sixteen produces a
		// record) so the trace does not re-grow throughout the run.
		s.tracer = trace.WithCapacity(traceCapacity(opt.Duration, cfg))
	}
	s.registerKinds()
	if s.seng != nil {
		// The kernel's confinement planner switches RunEpochs into guarded
		// mode: serial dispatch for anything touching machine-global state,
		// concurrent windows for the provably lane-confined idle fraction.
		s.seng.SetPlanner(newConfinePlanner(s))
	}
	s.wireObservability()

	s.wireKernelRegions()
	return s, nil
}

func (s *System) wireKernelRegions() {
	for _, r := range s.spec.Regions {
		if r.Kind == workload.CodeRegion {
			for i := 0; i < r.N; i++ {
				s.vmm.SetFlags(r.Page(i), vm.Code)
			}
		}
		if r.Kind != workload.KernelRegion {
			continue
		}
		for i := 0; i < r.N; i++ {
			node := mem.NodeID(0)
			if r.WireStripe {
				node = mem.NodeID(i * s.cfg.Nodes / r.N)
			} else if r.WireNode >= 0 {
				node = mem.NodeID(r.WireNode)
			}
			if int(node) >= s.cfg.Nodes {
				node = mem.NodeID(s.cfg.Nodes - 1)
			}
			s.vmm.Wire(r.Page(i), node)
		}
	}
}

// traceCapacity estimates the miss-trace record volume for a run of the
// given duration: the machine's total step budget, of which roughly one in
// sixteen references produces a TLB- or cache-miss record. Only a capacity
// hint — the trace grows past it if the estimate is low.
func traceCapacity(d sim.Time, cfg topology.Config) int {
	steps := int64(d) / int64(cfg.CycleTime*cyclesPerStep) * int64(cfg.TotalCPUs())
	est := int(steps / 16)
	if est < 1024 {
		est = 1024
	}
	if est > 1<<22 {
		est = 1 << 22
	}
	return est
}

// wakeProc is the typed wake-after-block event: make the process runnable
// again if the same process still occupies the slot and is still alive.
// Wake events are lane-routed to the node owning the target ready queue, so
// the confinement planner can admit a same-lane wake into a guarded window;
// the lane-confined annotation has the analyzer prove the delivery (slot
// check plus scheduler enqueue) touches no machine-global state.
//
//numalint:hotpath
//numalint:lane-confined
func (s *System) wakeProc(id mem.ProcID, gen uint32) {
	if int(id) >= len(s.procs) {
		return
	}
	if p := s.procs[id]; p != nil && p.slotGen == gen && p.alive {
		s.schedul.MakeRunnable(p.sp)
	}
}

// onHotBatch queues a pager interrupt for the CPU that triggered the first
// hot page of the batch. The directory's batch slice is only borrowed for
// the duration of the call, so it is copied into a pooled slice that step
// returns to the pool once HandleBatch has serviced it.
//
//numalint:hotpath
func (s *System) onHotBatch(batch []directory.HotRef) {
	if s.pg == nil {
		return
	}
	var cp []directory.HotRef
	if n := len(s.batchPool); n > 0 {
		cp = s.batchPool[n-1][:0]
		s.batchPool = s.batchPool[:n-1]
	}
	cp = append(cp, batch...)
	if s.inj != nil {
		drop, delay := s.inj.BatchFate()
		if drop {
			// The interrupt is lost. The pages' counters were already cleared
			// by the directory's pending logic, so they re-heat and
			// re-trigger later — exactly a lost interrupt's behaviour.
			s.batchPool = append(s.batchPool, cp)
			return
		}
		if delay > 0 {
			//numalint:allow hotpath fault-injected delay path, cold by construction
			s.schedAt(s.now()+delay, func(sim.Time) { s.queueBatch(cp) })
			return
		}
	}
	s.queueBatch(cp)
}

// queueBatch hands a pager batch to the triggering CPU's work queue.
//
//numalint:hotpath
func (s *System) queueBatch(cp []directory.HotRef) {
	if len(cp) == 0 {
		return
	}
	s.cpus[cp[0].CPU].pagerWork = append(s.cpus[cp[0].CPU].pagerWork, cp)
}

// drainNode is the fault layer's mid-run memory drain: the node's allocator
// goes offline, then the pager sweeps every replica off the node (master
// copies stay resident). The sweep's kernel time lands on CPU 0, like the
// other interval kernel work.
func (s *System) drainNode(now sim.Time, node mem.NodeID) {
	s.allocs.SetOffline(node, true)
	evicted := 0
	if s.pg != nil {
		c0 := s.cpus[0]
		dt, n := s.pg.DrainNode(now, c0.id, node, &c0.bd)
		c0.extraDelay += dt
		evicted = n
	} else {
		for {
			if _, ok := s.vmm.ReclaimReplicaOn(node); !ok {
				break
			}
			evicted++
		}
	}
	s.inj.NoteDrain(node, evicted)
}

// shootdown implements the pager's TLB-flush hook.
func (s *System) shootdown(now sim.Time, initiator mem.CPUID, pages []mem.GPage) sim.Time {
	k := s.cfg.Kernel
	flushed := 0
	for _, c := range s.cpus {
		if c.id == initiator {
			c.tlb.FlushAll()
			continue
		}
		if s.cfg.TrackTLBHolders {
			holds := false
			for _, p := range pages {
				if c.tlb.HoldsPage(p) {
					holds = true
					break
				}
			}
			if !holds {
				continue
			}
		}
		c.tlb.FlushAll()
		c.flushCharge += k.TLBFlushLocal
		flushed++
	}
	total := len(s.cpus) - 1
	if total <= 0 || !s.cfg.TrackTLBHolders {
		return k.TLBFlushWait
	}
	// Tracking holders shrinks the initiator's wait proportionally, with a
	// floor for the IPI round trip itself.
	w := k.TLBFlushWait * sim.Time(flushed+1) / sim.Time(total+1)
	if min := k.TLBFlushWait / 8; w < min {
		w = min
	}
	return w
}

// addProc creates a live process from its spec; specIdx is the spec's index
// in the workload's Procs slice.
func (s *System) addProc(ps *workload.ProcSpec, specIdx int) *procState {
	id := s.vmm.AddProcess()
	p := &procState{
		vmID:    id,
		spec:    ps,
		specIdx: specIdx,
		gen:     ps.Gen,
		alive:   true,
		sp: &sched.Proc{
			ID:  id,
			Pin: ps.Pin,
			Job: ps.Job,
		},
	}
	if ps.Pin >= 0 {
		p.sp.LastCPU = ps.Pin
	} else {
		p.sp.LastCPU = mem.CPUID(s.rng.Intn(s.cfg.TotalCPUs()))
	}
	for int(id) >= len(s.procs) {
		s.procs = append(s.procs, nil)
		s.slotGens = append(s.slotGens, 0)
	}
	s.slotGens[id]++
	p.slotGen = s.slotGens[id]
	s.procs[id] = p
	s.schedul.Add(p.sp)
	s.live++
	return p
}

// finished reports whether all workload processes have completed.
func (s *System) finished() bool { return s.live == 0 && s.pendingSpawns == 0 }

// exitProc tears a process down, releasing its private pages, and respawns
// it when the spec asks for churn.
func (s *System) exitProc(p *procState) {
	p.alive = false
	s.schedul.Exit(p.sp)
	for _, r := range p.spec.Private {
		for i := 0; i < r.N; i++ {
			s.vmm.ReleasePage(r.Page(i))
		}
	}
	s.vmm.RemoveProcess(p.vmID)
	s.procs[p.vmID] = nil
	s.live--
	if p.spec.Respawn {
		if left := s.respawnsLeft[p.specIdx]; left != 0 {
			s.respawnsLeft[p.specIdx] = left - 1
			p.spec.Gen.Reset(s.seedGen.Uint64())
			s.addProc(p.spec, p.specIdx)
		}
	}
	if s.finished() && s.completedAt == 0 {
		s.completedAt = s.now()
	}
}

// preTouch performs the workload's initialisation touches (master threads
// faulting in shared data before the run).
func (s *System) preTouch() {
	for _, pt := range s.spec.PreTouches {
		ps := &s.spec.Procs[pt.Proc]
		// The process may not exist yet if it starts late; pre-touches are
		// defined for procs that start at time zero.
		var p *procState
		for _, cand := range s.procs {
			if cand != nil && cand.spec == ps {
				p = cand
				break
			}
		}
		if p == nil {
			continue
		}
		node := s.cfg.NodeOf(p.sp.LastCPU)
		for i := 0; i < pt.Region.N; i++ {
			s.vmm.Touch(p.vmID, pt.Region.Page(i), node)
		}
	}
}
