package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"ccnuma/internal/obs"
	"ccnuma/internal/workload"
)

// TestRunContextBackgroundMatchesRun pins that context plumbing is free for
// the common case: a background context changes nothing about the results.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	base, err := Run(tinySpec(workload.SchedAffinity, 60000), Options{Seed: 7, Dynamic: true})
	if err != nil {
		t.Fatal(err)
	}
	ctxRes, err := RunContext(context.Background(), tinySpec(workload.SchedAffinity, 60000),
		Options{Seed: 7, Dynamic: true})
	if err != nil {
		t.Fatal(err)
	}
	a := fmt.Sprintf("%+v|%d|%d|%+v", base.Agg, base.Steps, base.Events, base.VM)
	b := fmt.Sprintf("%+v|%d|%d|%+v", ctxRes.Agg, ctxRes.Steps, ctxRes.Events, ctxRes.VM)
	if a != b {
		t.Fatalf("RunContext(Background) diverged from Run:\n%s\nvs\n%s", a, b)
	}
}

// TestRunContextCancelMidRun cancels from inside the run — the event sink is
// called synchronously by the simulation, so cancelling there is a
// deterministic mid-run cancellation — and requires RunContext to stop early
// and surface a wrapped context.Canceled instead of a result.
func TestRunContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := 0
	res, err := RunContext(ctx, tinySpec(workload.SchedAffinity, 60000), Options{
		Seed: 7, Dynamic: true,
		EventSink: func(obs.Event) {
			events++
			if events == 3 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned a partial result")
	}

	// The run must actually have stopped near the cancellation point rather
	// than simulating to the deadline: a full run emits far more events.
	full, err := Run(tinySpec(workload.SchedAffinity, 60000),
		Options{Seed: 7, Dynamic: true, CollectEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.ObsEvents.Len() <= events {
		t.Fatalf("full run emitted %d events, cancelled saw %d — nothing was cut short",
			full.ObsEvents.Len(), events)
	}
}

// TestRunContextPreCancelled: a context cancelled before the run starts must
// fail without simulating anything.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, tinySpec(workload.SchedPinned, 60000), Options{Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res != nil {
		t.Fatal("pre-cancelled run returned a result")
	}
}

// TestEventSinkNeutralAndComplete proves the streaming sink is observation
// only — results with and without it are identical — and that it sees the
// exact event sequence the buffering tracer records.
func TestEventSinkNeutralAndComplete(t *testing.T) {
	base, err := Run(tinySpec(workload.SchedAffinity, 60000),
		Options{Seed: 7, Dynamic: true, CollectEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	var streamed []obs.Event
	got, err := Run(tinySpec(workload.SchedAffinity, 60000), Options{
		Seed: 7, Dynamic: true,
		EventSink: func(e obs.Event) { streamed = append(streamed, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	a := fmt.Sprintf("%+v|%d|%d|%+v", base.Agg, base.Steps, base.Events, base.VM)
	b := fmt.Sprintf("%+v|%d|%d|%+v", got.Agg, got.Steps, got.Events, got.VM)
	if a != b {
		t.Fatalf("EventSink changed results:\n%s\nvs\n%s", a, b)
	}
	if got.ObsEvents != nil {
		t.Fatal("sink-only run exposed a buffered tracer")
	}
	if len(streamed) != base.ObsEvents.Len() {
		t.Fatalf("sink saw %d events, buffering tracer recorded %d",
			len(streamed), base.ObsEvents.Len())
	}
	// Emission order (pre-Sort) is not pinned here, only the multiset size;
	// per-kind counts catch a sink that drops a category.
	for k := obs.Kind(0); k < 12; k++ {
		want := base.ObsEvents.CountKind(k)
		gotK := 0
		for _, e := range streamed {
			if e.Kind == k {
				gotK++
			}
		}
		if gotK != want {
			t.Errorf("kind %v: sink saw %d, tracer recorded %d", k, gotK, want)
		}
	}
}

// TestEventSinkAbsentFromFingerprint pins the memo contract for the sink: a
// function pointer must not make every streaming request's cache key unique.
func TestEventSinkAbsentFromFingerprint(t *testing.T) {
	a := Options{Seed: 9, Dynamic: true}
	b := a
	b.EventSink = func(obs.Event) {}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("EventSink leaked into the fingerprint:\n%s\n%s",
			a.Fingerprint(), b.Fingerprint())
	}
}
