package core

import (
	"bytes"
	"testing"

	"ccnuma/internal/sim"
	"ccnuma/internal/workload"
)

// The typed event path must be behaviourally invisible: the same fixed-seed
// workload run through the original closure API and through the typed
// handler table has to produce identical statistics and a byte-identical
// event export. Both paths share one heap and one seq counter, so any
// divergence means the hot-path rewrite changed scheduling order.
func TestTypedAndClosureEventPathsIdentical(t *testing.T) {
	run := func(closure bool) *Result {
		t.Helper()
		res, err := Run(tinySpec(workload.SchedAffinity, 60000), Options{
			Seed: 7, Dynamic: true, CollectEvents: true,
			SampleInterval: sim.Millisecond, DebugChecks: true,
			ClosureEvents: closure,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	typed, closed := run(false), run(true)

	if typed.Elapsed != closed.Elapsed || typed.Steps != closed.Steps {
		t.Fatalf("progress diverged: typed %v/%d steps, closure %v/%d steps",
			typed.Elapsed, typed.Steps, closed.Elapsed, closed.Steps)
	}
	if typed.Events != closed.Events {
		t.Fatalf("event counts diverged: typed %d, closure %d", typed.Events, closed.Events)
	}
	if typed.VM != closed.VM {
		t.Fatalf("VM stats diverged:\ntyped   %+v\nclosure %+v", typed.VM, closed.VM)
	}
	if typed.Actions != closed.Actions {
		t.Fatalf("policy actions diverged:\ntyped   %+v\nclosure %+v", typed.Actions, closed.Actions)
	}
	if typed.Counters != closed.Counters {
		t.Fatalf("counter stats diverged:\ntyped   %+v\nclosure %+v", typed.Counters, closed.Counters)
	}
	if typed.LocalMissFraction != closed.LocalMissFraction ||
		typed.SchedMigrations != closed.SchedMigrations {
		t.Fatalf("locality diverged: typed %.4f/%d, closure %.4f/%d",
			typed.LocalMissFraction, typed.SchedMigrations,
			closed.LocalMissFraction, closed.SchedMigrations)
	}
	if typed.Agg != closed.Agg {
		t.Fatalf("aggregate breakdown diverged:\ntyped   %s\nclosure %s",
			typed.Agg.Summary(), closed.Agg.Summary())
	}

	var a, b bytes.Buffer
	if err := typed.ObsEvents.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := closed.ObsEvents.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("typed and closure runs exported different event bytes")
	}
}
