package core

import (
	"bytes"
	"fmt"
	"testing"

	"ccnuma/internal/obs"
	"ccnuma/internal/workload"
)

// TestEpochWorkerNeutrality is the full-system concurrency hammer: for every
// golden case (including the chaos fault-injection one), the guarded epoch
// engine at shards {2,4} x workers {1..shards} must produce byte-identical
// stats, events JSONL, time-series, and flight-recorder dumps to the
// single-heap engine. Run under -race in `make ci` (the race target
// re-executes it by name), which is what upgrades "byte-identical" from a
// determinism statement to a data-race-freedom one: any kernel structure a
// guarded window touches concurrently without confinement shows up here.
func TestEpochWorkerNeutrality(t *testing.T) {
	for _, tc := range shardCases() {
		t.Run(tc.name, func(t *testing.T) {
			run := func(shards, workers int) []byte {
				opt := tc.opt
				opt.Shards = shards
				opt.Workers = workers
				opt.Recorder = obs.NewRecorder(128)
				res, err := Run(tc.spec(), opt)
				if err != nil {
					t.Fatal(err)
				}
				out := shardExports(t, res)
				events, dropped := opt.Recorder.Dump()
				var b bytes.Buffer
				fmt.Fprintf(&b, "recorder dropped=%d\n", dropped)
				for _, e := range events {
					fmt.Fprintf(&b, "%+v\n", e)
				}
				return append(out, b.Bytes()...)
			}
			want := run(1, 0) // the single-heap reference engine
			for _, shards := range []int{2, 4} {
				for workers := 1; workers <= shards; workers *= 2 {
					got := run(shards, workers)
					if !bytes.Equal(want, got) {
						t.Fatalf("shards=%d workers=%d diverged from the single-heap engine (%d vs %d bytes)\nfirst divergence: %s",
							shards, workers, len(want), len(got), firstDiff(want, got))
					}
				}
			}
		})
	}
}

// TestEpochWorkersActuallyWindow guards the hammer against vacuity: on a
// golden workload the kernel planner must clear real guarded windows (idle
// ticks and wake deliveries running concurrently), or worker neutrality
// holds trivially because everything serialized.
func TestEpochWorkersActuallyWindow(t *testing.T) {
	opt := shardCases()[0].opt
	opt.Shards = 4
	opt.Workers = 2
	opt.CollectShardStats = true
	res, err := Run(shardCases()[0].spec(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardStats.Epochs() == 0 {
		t.Fatal("guarded mode cleared no windows on a golden workload — the planner serializes everything")
	}
}

// TestLaneDispatchBalance pins the wake-routing fix: with wakes routed to
// their target CPU's lane (instead of the machine-global lane 0), no lane
// on a golden workload dispatches more than twice the per-lane mean. Lane 0
// still carries everything unroutable — closures, periodics, stale wakes —
// so the bound is a hotspot detector, not an exact-balance assertion.
func TestLaneDispatchBalance(t *testing.T) {
	for _, tc := range shardCases() {
		t.Run(tc.name, func(t *testing.T) {
			opt := tc.opt
			opt.Shards = 4
			opt.CollectShardStats = true
			res, err := Run(tc.spec(), opt)
			if err != nil {
				t.Fatal(err)
			}
			st := res.ShardStats
			total := uint64(0)
			for i := 0; i < st.Lanes(); i++ {
				total += st.Lane(i).Dispatched
			}
			mean := total / uint64(st.Lanes())
			for i := 0; i < st.Lanes(); i++ {
				if d := st.Lane(i).Dispatched; d > 2*mean {
					t.Fatalf("lane %d dispatched %d events, more than 2x the per-lane mean %d (total %d) — a machine-global hotspot",
						i, d, mean, total)
				}
			}
		})
	}
}

// TestWorkersAbsentFromFingerprint pins the memo contract for the new knob:
// worker count is an execution detail like shard count, so two option sets
// differing only in Workers share one fingerprint.
func TestWorkersAbsentFromFingerprint(t *testing.T) {
	a := Options{Seed: 9, Dynamic: true}
	b := a
	b.Shards = 4
	b.Workers = 2
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("worker count leaked into the fingerprint:\n%s\n%s",
			a.Fingerprint(), b.Fingerprint())
	}
}

// TestWorkerOptionValidation pins the Workers normalization: negatives and
// worker counts beyond the (post-clamp) shard count are rejected, and
// Workers >= 1 alone is enough to select the sharded engine.
func TestWorkerOptionValidation(t *testing.T) {
	spec := func() *workload.Spec { return tinySpec(workload.SchedPinned, 1000) }
	if _, err := Run(spec(), Options{Seed: 1, Workers: -1}); err == nil {
		t.Fatal("negative worker count accepted")
	}
	if _, err := Run(spec(), Options{Seed: 1, Shards: 2, Workers: 3}); err == nil {
		t.Fatal("workers > shards accepted")
	}
	// Shards beyond the node count clamp down; a worker count that only fit
	// the pre-clamp shard count must fail loudly, not idle silently.
	if _, err := Run(spec(), Options{Seed: 1, Shards: 64, Workers: 64}); err == nil {
		t.Fatal("workers > clamped shard count accepted")
	}
	sys, err := NewSystem(spec(), Options{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sys.seng == nil {
		t.Fatal("Workers=1 did not select the sharded engine")
	}
}
