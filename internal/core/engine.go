package core

import (
	"ccnuma/internal/mem"
	"ccnuma/internal/sim"
)

// The system runs on exactly one of two engines: the single-heap sim.Engine
// (Shards <= 1, the reference path every golden output is pinned to) or the
// per-node-lane sim.Sharded engine (Shards > 1). The sharded engine's
// serialized merge dispatches in global (time, schedule-order) — the exact
// single-heap order — so the wrappers below are the only places that need
// to know which engine is underneath, and shard count can never change
// results. Kernel handlers still touch machine-global state (the cache
// validity filter, the VM, the scheduler), so core drives the lanes through
// that merge; the concurrent epoch-barrier mode (sim.Sharded.RunEpochs)
// becomes usable as those structures are made lane-confined (see DESIGN.md,
// "Sharded execution").

// buildEngine selects and constructs the run's engine. The sharded
// engine's epoch window is sized by the minimum cross-node latency — the
// machine's remote-miss minimum from the interconnect model — because no
// cross-lane effect can propagate faster than one remote hop.
//
// CollectShardStats forces the sharded engine even at Shards <= 1: a
// one-lane serialized merge is byte-identical to the single-heap engine (the
// TestShardNeutrality construction), and it is the only engine with lanes to
// introspect. Its timeline window is Duration/64, so every run yields a
// deterministic ~64-bucket dispatch profile regardless of length.
func (s *System) buildEngine() {
	if s.opt.Shards > 1 || s.opt.CollectShardStats || s.opt.Workers >= 1 {
		lanes := s.opt.Shards
		if lanes < 1 {
			lanes = 1
		}
		s.seng = sim.NewSharded(lanes, s.cfg.RemoteLatency)
		if s.opt.CollectShardStats {
			window := s.opt.Duration / 64
			if window <= 0 {
				window = 1
			}
			s.seng.EnableStats(window)
		}
		return
	}
	s.eng = &sim.Engine{}
}

// registerKinds installs the typed step and wake handlers on whichever
// engine the run uses. On the sharded engine the step kind carries lane
// affinity — a CPU's step events live on its node's lane (modulo the lane
// count), which also owns that node's caches, TLBs, and local frame pool —
// and wake events ride the lane owning the ready queue they will push onto
// (the target CPU's node). A stale wake has no target queue; it spreads by
// vm slot rather than pile onto lane 0. Routing is resolved at schedule
// time and never affects the serialized merge (dispatch order is global
// (time, sequence) regardless of lane), but it is what lets the guarded
// epoch planner prove a wake delivery lane-confined — and what keeps lane 0
// from becoming the dispatch hotspot the machine-global scheduler used to
// make it.
func (s *System) registerKinds() {
	if s.seng != nil {
		shards := s.seng.Lanes()
		s.stepKind = s.seng.Register(func(l *sim.Lane, now sim.Time, arg uint64) {
			c := s.cpus[arg]
			c.lane = l
			s.step(c, now)
		}, func(arg uint64) int { return int(s.cfg.NodeOf(mem.CPUID(arg))) % shards })
		s.wakeKind = s.seng.Register(func(_ *sim.Lane, now sim.Time, arg uint64) {
			s.wakeProc(mem.ProcID(arg>>32), uint32(arg))
		}, func(arg uint64) int {
			if cpu, live := s.wakeTarget(arg); live {
				return s.laneForCPU(cpu)
			}
			return int(arg>>32) % shards
		})
		return
	}
	s.stepKind = s.eng.Register(func(now sim.Time, arg uint64) {
		s.step(s.cpus[arg], now)
	})
	s.wakeKind = s.eng.Register(func(now sim.Time, arg uint64) {
		s.wakeProc(mem.ProcID(arg>>32), uint32(arg))
	})
}

// now returns the engine clock.
//
//numalint:hotpath
func (s *System) now() sim.Time {
	if s.seng != nil {
		return s.seng.Now()
	}
	return s.eng.Now()
}

// schedAtKind schedules a typed event at absolute time at.
//
//numalint:hotpath
func (s *System) schedAtKind(at sim.Time, k sim.Kind, arg uint64) {
	if s.seng != nil {
		s.seng.AtKind(at, k, arg)
		return
	}
	s.eng.AtKind(at, k, arg)
}

// schedAt schedules a closure event at absolute time at.
func (s *System) schedAt(at sim.Time, fn sim.Event) {
	if s.seng != nil {
		s.seng.At(at, fn)
		return
	}
	s.eng.At(at, fn)
}

// schedEvery schedules a periodic event.
func (s *System) schedEvery(period sim.Time, fn sim.Event, stop func() bool) {
	if s.seng != nil {
		s.seng.Every(period, fn, stop)
		return
	}
	s.eng.Every(period, fn, stop)
}

// engineRunUntil drives the run to the deadline: the serialized merge (or
// the single-heap engine) when Workers is zero, guarded epochs when the run
// asked for concurrency. Both paths produce byte-identical results — the
// worker count is an execution knob, like the shard count.
func (s *System) engineRunUntil(deadline sim.Time) {
	if s.seng != nil {
		if s.opt.Workers >= 1 {
			s.seng.RunEpochs(s.opt.Workers, deadline)
			return
		}
		s.seng.RunUntil(deadline)
		return
	}
	s.eng.RunUntil(deadline)
}

// setCancel installs (or clears, with nil) the run loop's cooperative
// cancellation predicate on whichever engine the run uses. The engines poll
// it on a dispatch-count stride (sim.Engine's cancelMask), so cancellation is
// checked at engine-step granularity without a per-event branch that could
// cost on the hot path. Cancellation never changes a completed run's bytes:
// a run that stops early is discarded by RunContext, never returned.
func (s *System) setCancel(fn func() bool) {
	if s.seng != nil {
		s.seng.SetCancel(fn)
		return
	}
	s.eng.SetCancel(fn)
}

// engineFired returns the number of events dispatched so far.
func (s *System) engineFired() uint64 {
	if s.seng != nil {
		return s.seng.Fired()
	}
	return s.eng.Fired()
}

// enginePending returns the number of scheduled, undispatched events.
func (s *System) enginePending() int {
	if s.seng != nil {
		return s.seng.Pending()
	}
	return s.eng.Pending()
}

// engineStep dispatches one event (tests and benchmarks drive the hot path
// with it).
func (s *System) engineStep() bool {
	if s.seng != nil {
		return s.seng.Step()
	}
	return s.eng.Step()
}
