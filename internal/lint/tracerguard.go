package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// tracerguard keeps a disabled instrument at its one-branch cost: building
// an obs.Event just to hand it to a nil tracer's no-op Emit still pays for
// the event construction, so every call to a guarded emitter method
// (Config.Guarded: obs.Tracer Emit/EmitNow, obs.Recorder Record,
// sim.ShardStats Note*) must sit behind the nil-check branch pattern —
// either an enclosing `if tr.On()` / `if tr != nil` branch or a preceding
// `if !tr.On() { return }` guard clause. Only methods of the guarded type
// itself are exempt: they implement the nil tolerance the guard relies on,
// and everything else — including other types in the same package that
// forward into an emitter — is held to the pattern.
var tracerguard = &Analyzer{
	Name: "tracerguard",
	Doc:  "require every guarded emitter call site (tracer/recorder/shard-stats) to sit behind an On()/nil guard",
	Run:  runTracerguard,
}

func runTracerguard(p *Pass) {
	for _, f := range p.Pkg.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			g := guardedEmitterFor(p, sel)
			if g == nil {
				return true
			}
			if enclosingReceiverIs(p, stack, g) {
				return true
			}
			recv := types.ExprString(sel.X)
			if !guardedByAncestor(call, stack, recv) && !guardedByClause(call, stack, recv) {
				p.Reportf(call.Pos(),
					"%s.%s outside an On()/nil guard: the disabled %s must cost one branch, not the call's argument construction",
					recv, sel.Sel.Name, g.Type)
			}
			return true
		})
	}
}

// guardedEmitterFor resolves the selector call and returns the guarded
// emitter it is a method of, or nil.
func guardedEmitterFor(p *Pass, sel *ast.SelectorExpr) *GuardedEmitter {
	fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	for i := range p.Cfg.Guarded {
		g := &p.Cfg.Guarded[i]
		if named.Obj().Pkg().Path() != g.Pkg || named.Obj().Name() != g.Type {
			continue
		}
		for _, m := range g.Methods {
			if sel.Sel.Name == m {
				return g
			}
		}
	}
	return nil
}

// enclosingReceiverIs reports whether the call sits inside a method whose
// receiver is the guarded type itself (the type's own methods carry the
// nil checks everyone else's guards rely on).
func enclosingReceiverIs(p *Pass, stack []ast.Node, g *GuardedEmitter) bool {
	if p.Pkg.Path != g.Pkg {
		return false
	}
	for i := len(stack) - 1; i >= 0; i-- {
		fd, ok := stack[i].(*ast.FuncDecl)
		if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
			continue
		}
		rt := fd.Recv.List[0].Type
		if star, ok := rt.(*ast.StarExpr); ok {
			rt = star.X
		}
		id, ok := rt.(*ast.Ident)
		return ok && id.Name == g.Type
	}
	return false
}

// guardedByAncestor reports whether an enclosing if's then-branch proves the
// tracer is on (cond contains recv.On() or recv != nil, possibly under &&).
func guardedByAncestor(call *ast.CallExpr, stack []ast.Node, recv string) bool {
	for i := len(stack) - 1; i > 0; i-- {
		ifStmt, ok := stack[i-1].(*ast.IfStmt)
		if !ok || stack[i] != ast.Node(ifStmt.Body) {
			continue // not in the then-branch of this if
		}
		if condProvesOn(ifStmt.Cond, recv) {
			return true
		}
	}
	return false
}

// guardedByClause reports whether the enclosing function contains, before
// the call, a guard clause of the form `if !recv.On() { return }` or
// `if recv == nil { return }`.
func guardedByClause(call *ast.CallExpr, stack []ast.Node, recv string) bool {
	var body *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body != nil {
			break
		}
	}
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok || found {
			return !found
		}
		if ifStmt.End() >= call.Pos() {
			return true
		}
		if condProvesOff(ifStmt.Cond, recv) && endsInReturn(ifStmt.Body) {
			found = true
		}
		return !found
	})
	return found
}

// condProvesOn: the condition being true implies the tracer is enabled.
func condProvesOn(e ast.Expr, recv string) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return condProvesOn(e.X, recv)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			return condProvesOn(e.X, recv) || condProvesOn(e.Y, recv)
		case token.NEQ:
			return nilCompare(e, recv)
		}
	case *ast.CallExpr:
		return types.ExprString(e) == recv+".On()"
	}
	return false
}

// condProvesOff: the condition being true implies the tracer is disabled
// (the guard-clause shape, which returns early).
func condProvesOff(e ast.Expr, recv string) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return condProvesOff(e.X, recv)
	case *ast.UnaryExpr:
		return e.Op == token.NOT && condProvesOn(e.X, recv)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LOR:
			// `if a == nil || b == nil { return }` refutes each receiver.
			return condProvesOff(e.X, recv) || condProvesOff(e.Y, recv)
		case token.EQL:
			return nilCompare(e, recv)
		}
	}
	return false
}

// nilCompare reports whether the comparison pits recv against nil.
func nilCompare(e *ast.BinaryExpr, recv string) bool {
	x, y := types.ExprString(e.X), types.ExprString(e.Y)
	return (x == recv && y == "nil") || (y == recv && x == "nil")
}

// endsInReturn reports whether the block's last statement leaves the
// function (return or panic).
func endsInReturn(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				return id.Name == "panic"
			}
		}
	}
	return false
}
