package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// tracerguard keeps the disabled tracer at its one-branch cost: building an
// obs.Event just to hand it to a nil tracer's no-op Emit still pays for the
// event construction, so every Emit/EmitNow call site must sit behind the
// nil-check branch pattern — either an enclosing `if tr.On()` / `if tr !=
// nil` branch or a preceding `if !tr.On() { return }` guard clause.
var tracerguard = &Analyzer{
	Name: "tracerguard",
	Doc:  "require every obs.Tracer Emit/EmitNow call site to sit behind an On()/nil guard",
	Run:  runTracerguard,
}

func runTracerguard(p *Pass) {
	// The tracer's own package implements the nil-tolerant methods; the
	// guard pattern binds its callers.
	if p.Pkg.Path == p.Cfg.TracerPkg {
		return
	}
	for _, f := range p.Pkg.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Emit" && sel.Sel.Name != "EmitNow") {
				return true
			}
			if !isTracerMethod(p, sel) {
				return true
			}
			recv := types.ExprString(sel.X)
			if !guardedByAncestor(call, stack, recv) && !guardedByClause(call, stack, recv) {
				p.Reportf(call.Pos(),
					"%s.%s outside an On()/nil guard: the disabled tracer must cost one branch, not an event construction",
					recv, sel.Sel.Name)
			}
			return true
		})
	}
}

// isTracerMethod reports whether the selector resolves to a method on the
// configured tracer type.
func isTracerMethod(p *Pass, sel *ast.SelectorExpr) bool {
	fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == p.Cfg.TracerPkg &&
		named.Obj().Name() == p.Cfg.TracerType
}

// guardedByAncestor reports whether an enclosing if's then-branch proves the
// tracer is on (cond contains recv.On() or recv != nil, possibly under &&).
func guardedByAncestor(call *ast.CallExpr, stack []ast.Node, recv string) bool {
	for i := len(stack) - 1; i > 0; i-- {
		ifStmt, ok := stack[i-1].(*ast.IfStmt)
		if !ok || stack[i] != ast.Node(ifStmt.Body) {
			continue // not in the then-branch of this if
		}
		if condProvesOn(ifStmt.Cond, recv) {
			return true
		}
	}
	return false
}

// guardedByClause reports whether the enclosing function contains, before
// the call, a guard clause of the form `if !recv.On() { return }` or
// `if recv == nil { return }`.
func guardedByClause(call *ast.CallExpr, stack []ast.Node, recv string) bool {
	var body *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body != nil {
			break
		}
	}
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok || found {
			return !found
		}
		if ifStmt.End() >= call.Pos() {
			return true
		}
		if condProvesOff(ifStmt.Cond, recv) && endsInReturn(ifStmt.Body) {
			found = true
		}
		return !found
	})
	return found
}

// condProvesOn: the condition being true implies the tracer is enabled.
func condProvesOn(e ast.Expr, recv string) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return condProvesOn(e.X, recv)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			return condProvesOn(e.X, recv) || condProvesOn(e.Y, recv)
		case token.NEQ:
			return nilCompare(e, recv)
		}
	case *ast.CallExpr:
		return types.ExprString(e) == recv+".On()"
	}
	return false
}

// condProvesOff: the condition being true implies the tracer is disabled
// (the guard-clause shape, which returns early).
func condProvesOff(e ast.Expr, recv string) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return condProvesOff(e.X, recv)
	case *ast.UnaryExpr:
		return e.Op == token.NOT && condProvesOn(e.X, recv)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LOR:
			// `if a == nil || b == nil { return }` refutes each receiver.
			return condProvesOff(e.X, recv) || condProvesOff(e.Y, recv)
		case token.EQL:
			return nilCompare(e, recv)
		}
	}
	return false
}

// nilCompare reports whether the comparison pits recv against nil.
func nilCompare(e *ast.BinaryExpr, recv string) bool {
	x, y := types.ExprString(e.X), types.ExprString(e.Y)
	return (x == recv && y == "nil") || (y == recv && x == "nil")
}

// endsInReturn reports whether the block's last statement leaves the
// function (return or panic).
func endsInReturn(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				return id.Name == "panic"
			}
		}
	}
	return false
}
