package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// determinism enforces the byte-identical-output guarantee at the source
// level: within the deterministic packages, the same seed must produce the
// same bytes at any -j or -shards, so nothing there may read the wall clock,
// draw from the global math/rand source, race channels through select, poll
// channel readiness with a default clause, let the host's CPU count steer
// behavior, or iterate a map in an order-dependent way.
var determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flag wall-clock reads, global math/rand, racy or polling selects, host-CPU-count reads, and order-dependent map iteration in the deterministic packages",
	Run:  runDeterminism,
}

// globalRandConstructors are the math/rand functions that build a private,
// seedable generator rather than drawing from the global source.
var globalRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(p *Pass) {
	if !inScope(p.Pkg.Path, p.Cfg.DeterminismScope) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkWallClock(p, n)
				checkGlobalRand(p, n)
				checkHostCPUCount(p, n)
			case *ast.SelectStmt:
				checkSelect(p, n)
			case *ast.RangeStmt:
				checkMapRange(p, f, n)
			}
			return true
		})
	}
}

// calleeFunc resolves the called package-level function or method, or nil.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Pkg.Info.Uses[id].(*types.Func)
	return fn
}

// pkgFunc reports the function's package path and name when it is a
// package-level function (methods return ok=false: a seeded *rand.Rand's
// methods are deterministic even though the global rand.Intn is not).
func pkgFunc(fn *types.Func) (pkgPath, name string, ok bool) {
	if fn == nil || fn.Pkg() == nil {
		return "", "", false
	}
	if sig, _ := fn.Type().(*types.Signature); sig == nil || sig.Recv() != nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

func checkWallClock(p *Pass, call *ast.CallExpr) {
	pkg, name, ok := pkgFunc(calleeFunc(p, call))
	if ok && pkg == "time" && (name == "Now" || name == "Since") {
		p.Reportf(call.Pos(),
			"time.%s reads the wall clock; deterministic code must use virtual sim.Time", name)
	}
}

func checkGlobalRand(p *Pass, call *ast.CallExpr) {
	pkg, name, ok := pkgFunc(calleeFunc(p, call))
	if !ok || (pkg != "math/rand" && pkg != "math/rand/v2") {
		return
	}
	if globalRandConstructors[name] {
		return
	}
	p.Reportf(call.Pos(),
		"%s.%s draws from the global random source; use a seeded sim.Rand stream", pkg, name)
}

// checkHostCPUCount flags reads of the host's CPU configuration. The lane
// engine's worker count (like the harness's -j) must never influence
// simulation output, so deterministic code cannot branch on how many CPUs
// the host machine happens to have.
func checkHostCPUCount(p *Pass, call *ast.CallExpr) {
	pkg, name, ok := pkgFunc(calleeFunc(p, call))
	if ok && pkg == "runtime" && (name == "NumCPU" || name == "GOMAXPROCS") {
		p.Reportf(call.Pos(),
			"runtime.%s makes behaviour depend on the host's CPU count; worker counts must not influence output", name)
	}
}

func checkSelect(p *Pass, sel *ast.SelectStmt) {
	comms, hasDefault := 0, false
	for _, cl := range sel.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok {
			if cc.Comm != nil {
				comms++
			} else {
				hasDefault = true
			}
		}
	}
	if comms >= 2 {
		p.Reportf(sel.Pos(),
			"select over %d channels resolves nondeterministically when more than one is ready", comms)
		return
	}
	// A single-channel select with a default clause is a readiness poll: the
	// branch taken depends on goroutine scheduling timing, which the epoch
	// barrier deliberately keeps out of the merge order.
	if hasDefault && comms >= 1 {
		p.Reportf(sel.Pos(),
			"select with a default clause polls channel readiness; the branch taken depends on scheduling timing")
	}
}

// checkMapRange flags iteration over a map unless the loop body is
// order-insensitive: pure commutative accumulation, set insertion/removal,
// or collecting entries into slices that are sorted afterwards.
func checkMapRange(p *Pass, f *ast.File, rng *ast.RangeStmt) {
	t := p.Pkg.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}

	collected := []string{}
	for _, stmt := range rng.Body.List {
		names, ok := orderInsensitiveStmt(p, stmt)
		if !ok {
			p.Reportf(rng.Pos(),
				"iteration over map %s has an order-dependent body; sort the keys first",
				types.ExprString(rng.X))
			return
		}
		collected = append(collected, names...)
	}

	// Entries collected into slices are fine only if every such slice is
	// sorted later in the enclosing block.
	for _, name := range collected {
		if !sortedAfter(p, f, rng, name) {
			p.Reportf(rng.Pos(),
				"%s collects map keys but is never sorted; map iteration order would leak into the output", name)
		}
	}
}

// orderInsensitiveStmt reports whether one loop-body statement commutes
// across iterations, and names any slices it appends map entries to.
func orderInsensitiveStmt(p *Pass, stmt ast.Stmt) (collected []string, ok bool) {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		return nil, true
	case *ast.AssignStmt:
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
			token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			// Commutative, associative accumulation.
			return nil, true
		case token.ASSIGN:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return nil, false
			}
			lhs := types.ExprString(s.Lhs[0])
			// Writing into another map keyed per iteration (set building)
			// carries no order.
			if ix, isIndex := s.Lhs[0].(*ast.IndexExpr); isIndex {
				if t := p.Pkg.Info.TypeOf(ix.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						return nil, true
					}
				}
			}
			// s = append(s, ...): collection for later sorting.
			if call, isCall := s.Rhs[0].(*ast.CallExpr); isCall {
				if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && id.Name == "append" &&
					len(call.Args) >= 1 && types.ExprString(call.Args[0]) == lhs {
					return []string{lhs}, true
				}
			}
			return nil, false
		default:
			return nil, false
		}
	case *ast.ExprStmt:
		// delete(m, k) removes without ordering.
		if call, isCall := s.X.(*ast.CallExpr); isCall {
			if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && id.Name == "delete" {
				return nil, true
			}
		}
		return nil, false
	default:
		return nil, false
	}
}

// sortedAfter reports whether a statement after rng in its enclosing block
// passes the named slice to a sort (package sort or slices).
func sortedAfter(p *Pass, f *ast.File, rng *ast.RangeStmt, name string) bool {
	found := false
	inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
		if found {
			return false
		}
		block, isBlock := n.(*ast.BlockStmt)
		if !isBlock {
			return true
		}
		after := false
		for _, stmt := range block.List {
			if stmt == ast.Stmt(rng) {
				after = true
				continue
			}
			if after && stmtSorts(p, stmt, name) {
				found = true
			}
		}
		return true
	})
	return found
}

// stmtSorts reports whether the statement calls a sort/slices function with
// the named slice among its argument expressions.
func stmtSorts(p *Pass, stmt ast.Stmt, name string) bool {
	sorts := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, _, ok := pkgFunc(calleeFunc(p, call))
		if !ok || (pkg != "sort" && pkg != "slices") {
			return true
		}
		for _, arg := range call.Args {
			mentions := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, isIdent := m.(*ast.Ident); isIdent && id.Name == identRoot(name) {
					mentions = true
				}
				return !mentions
			})
			if mentions {
				sorts = true
			}
		}
		return !sorts
	})
	return sorts
}

// identRoot returns the leading identifier of a (possibly selector) text.
func identRoot(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' || name[i] == '[' {
			return name[:i]
		}
	}
	return name
}
