package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// This file builds the whole-program view the confinement analysis walks: one
// node per function (declarations and function literals) across every
// analyzed package, with call edges for
//
//   - static calls and concrete method calls (resolved through go/types),
//   - interface dispatch, conservatively over-approximated as an edge to the
//     matching method of every named type in the program that implements the
//     interface,
//   - calls through function values (fields, variables, parameters, map or
//     slice elements), over-approximated as an edge to every function whose
//     value is taken somewhere in the program and whose signature matches,
//   - a creation edge from a function to each literal it encloses, because a
//     closure built inside a lane-confined function can run wherever the
//     value flows.
//
// The over-approximations make reachability sound for the machine-global
// state this repository annotates: if the analysis proves an entry point
// clean, no call path from it — however dispatched — touches that state.
// The cost is precision; an audited //numalint:allow on a call line cuts the
// edge where a human argument (recorded as the mandatory reason) replaces
// the automatic proof.

// edgeKind classifies how a call edge was resolved.
type edgeKind int

const (
	edgeDirect   edgeKind = iota // static call or concrete method call
	edgeIface                    // interface dispatch (targets: all implementations)
	edgeIndirect                 // call through a function value (targets: by signature)
	edgeClosure                  // creation edge: function encloses the literal
)

// callEdge is one (possibly multi-target) call out of a function.
type callEdge struct {
	kind    edgeKind
	pos     token.Pos     // position of the call (or literal) for reporting and cuts
	call    *ast.CallExpr // nil for closure-creation edges
	targets []*funcNode   // resolved callees inside the program

	// resolution inputs, consumed by resolve():
	iface *types.Interface // edgeIface: the dispatched interface
	mname string           // edgeIface: method name
	mpkg  *types.Package   // edgeIface: package for unexported-name matching
	sig   *types.Signature // edgeIndirect: the value's signature
}

// globalAccess is one read or write of machine-global state inside a
// function body, either directly or through a tracked local alias.
type globalAccess struct {
	pos   token.Pos
	name  string // identifier text at the access site
	root  string // the machine-global object's name
	alias bool   // reached through a local alias rather than the object itself
}

// laneEscape is a concurrency primitive inside a function body that would
// bypass the typed mailbox/journal path if executed inside a window.
type laneEscape struct {
	pos  token.Pos
	what string // "go statement" or "channel send"
}

// funcNode is one function in the program: a declaration or a literal.
type funcNode struct {
	idx   int
	pkg   *Package
	name  string // canonical: pkg/path.Func, pkg/path.(*Recv).Method, parent$N
	short string // bare name for rendering chains within the entry's package
	pos   token.Pos
	sig   *types.Signature
	decl  *ast.FuncDecl // nil for literals
	lit   *ast.FuncLit  // nil for declarations

	confined bool // carries //numalint:lane-confined
	taken    bool // its value escapes somewhere (indirect-call candidate)
	litCount int  // literals enclosed so far (names the next one)

	edges    []*callEdge
	accesses []*globalAccess
	escapes  []*laneEscape
}

// body returns the function's body block.
func (n *funcNode) body() *ast.BlockStmt {
	if n.decl != nil {
		return n.decl.Body
	}
	return n.lit.Body
}

// displayIn renders the node's name for a chain anchored in pkg: the bare
// name inside the same package, the canonical name across packages.
func (n *funcNode) displayIn(pkg *Package) string {
	if n.pkg == pkg {
		return n.short
	}
	return n.name
}

// Program is the whole-module (or whole-corpus) view the confinement
// analysis runs on.
type Program struct {
	pkgs    []*Package
	nodes   []*funcNode
	byObj   map[types.Object]*funcNode
	globals map[types.Object]bool
}

// buildProgram constructs the call graph over the given packages.
func buildProgram(pkgs []*Package) *Program {
	p := &Program{
		pkgs:    pkgs,
		byObj:   map[types.Object]*funcNode{},
		globals: map[types.Object]bool{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			collectMachineGlobals(pkg, f, p.globals)
		}
	}
	// Create every declaration node first so direct edges resolve in one
	// later pass regardless of declaration order.
	var roots []*funcNode
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &funcNode{
					idx:      len(p.nodes),
					pkg:      pkg,
					name:     canonicalFuncName(pkg.Path, obj),
					short:    fd.Name.Name,
					pos:      fd.Name.Pos(),
					sig:      obj.Type().(*types.Signature),
					decl:     fd,
					confined: isLaneConfined(fd),
				}
				p.nodes = append(p.nodes, n)
				p.byObj[obj] = n
				roots = append(roots, n)
			}
		}
	}
	for _, n := range roots {
		p.walkBody(n.pkg, n)
	}
	p.resolve()
	return p
}

// canonicalFuncName renders the analyzer's stable name for a declared
// function: pkg/path.Func or pkg/path.(*Recv).Method.
func canonicalFuncName(pkgPath string, obj *types.Func) string {
	sig := obj.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		rt := types.TypeString(recv.Type(), func(*types.Package) string { return "" })
		return pkgPath + ".(" + rt + ")." + obj.Name()
	}
	return pkgPath + "." + obj.Name()
}

// walkBody walks one declared function's body (including nested literals,
// which become their own nodes), collecting call edges, escapes, and
// taken-function references.
func (p *Program) walkBody(pkg *Package, root *funcNode) {
	litOf := map[*ast.FuncLit]*funcNode{}
	encl := func(stack []ast.Node) *funcNode {
		for i := len(stack) - 1; i >= 0; i-- {
			if fl, ok := stack[i].(*ast.FuncLit); ok {
				return litOf[fl]
			}
		}
		return root
	}
	inspectStack(root.decl.Body, func(n ast.Node, stack []ast.Node) bool {
		owner := encl(stack)
		switch n := n.(type) {
		case *ast.FuncLit:
			owner.litCount++
			suffix := "$" + strconv.Itoa(owner.litCount)
			sig, ok := pkg.Info.Types[n].Type.(*types.Signature)
			if !ok {
				return true
			}
			ln := &funcNode{
				idx:   len(p.nodes),
				pkg:   pkg,
				name:  owner.name + suffix,
				short: owner.short + suffix,
				pos:   n.Pos(),
				sig:   sig,
				lit:   n,
			}
			p.nodes = append(p.nodes, ln)
			litOf[n] = ln
			// The creation edge: the encloser built the closure, so for
			// confinement purposes it may run it.
			owner.edges = append(owner.edges, &callEdge{
				kind: edgeClosure, pos: n.Pos(), targets: []*funcNode{ln},
			})
			if !isCallFun(n, stack) {
				ln.taken = true
			}
		case *ast.CallExpr:
			p.classifyCall(pkg, owner, n)
		case *ast.GoStmt:
			owner.escapes = append(owner.escapes, &laneEscape{pos: n.Pos(), what: "go statement"})
		case *ast.SendStmt:
			owner.escapes = append(owner.escapes, &laneEscape{pos: n.Arrow, what: "channel send"})
		case *ast.Ident:
			fn, ok := pkg.Info.Uses[n].(*types.Func)
			if !ok {
				return true
			}
			e, st := ast.Expr(n), stack
			if len(st) > 0 {
				if sel, ok := st[len(st)-1].(*ast.SelectorExpr); ok && sel.Sel == n {
					e, st = sel, st[:len(st)-1]
				}
			}
			if !isCallFun(e, st) {
				if tn := p.byObj[fn]; tn != nil {
					tn.taken = true
				}
			}
		}
		return true
	})
}

// isCallFun reports whether expression e (with the given ancestor stack) is
// the called operand of a call expression, seeing through parentheses.
func isCallFun(e ast.Expr, stack []ast.Node) bool {
	top := ast.Node(e)
	i := len(stack) - 1
	for ; i >= 0; i-- {
		pe, ok := stack[i].(*ast.ParenExpr)
		if !ok {
			break
		}
		top = pe
	}
	if i < 0 {
		return false
	}
	call, ok := stack[i].(*ast.CallExpr)
	return ok && call.Fun == top
}

// classifyCall records the call edge (if any) for one call expression.
func (p *Program) classifyCall(pkg *Package, owner *funcNode, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[f].(type) {
		case *types.Func:
			p.addDirect(owner, call, obj)
		case *types.Builtin, *types.TypeName, nil:
			// builtin, conversion, or unresolved: no edge
		default:
			p.addIndirect(pkg, owner, call)
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[f]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				m := sel.Obj().(*types.Func)
				if recv := m.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
					owner.edges = append(owner.edges, &callEdge{
						kind: edgeIface, pos: call.Pos(), call: call,
						iface: recv.Type().Underlying().(*types.Interface),
						mname: m.Name(), mpkg: m.Pkg(),
					})
				} else {
					p.addDirect(owner, call, m)
				}
			case types.FieldVal:
				p.addIndirect(pkg, owner, call)
			}
			return
		}
		// Qualified identifier: pkg.F or a conversion through a named type.
		switch obj := pkg.Info.Uses[f.Sel].(type) {
		case *types.Func:
			p.addDirect(owner, call, obj)
		case *types.Builtin, *types.TypeName, nil:
		default:
			p.addIndirect(pkg, owner, call)
		}
	case *ast.FuncLit:
		// The literal's creation edge (added when its node is built) already
		// connects the encloser; an immediately-called literal needs nothing
		// more.
	default:
		// Index expressions (handler tables), call-of-call results, and
		// anything else of function type: indirect.
		p.addIndirect(pkg, owner, call)
	}
}

// addDirect records a static call to a declared function, if it is part of
// the program (calls into the standard library carry no confinement risk:
// the machine-global annotations all live in analyzed packages).
func (p *Program) addDirect(owner *funcNode, call *ast.CallExpr, obj *types.Func) {
	if tn := p.byObj[obj]; tn != nil {
		owner.edges = append(owner.edges, &callEdge{
			kind: edgeDirect, pos: call.Pos(), call: call, targets: []*funcNode{tn},
		})
	}
}

// addIndirect records a call through a function value; targets are resolved
// by signature in resolve().
func (p *Program) addIndirect(pkg *Package, owner *funcNode, call *ast.CallExpr) {
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	owner.edges = append(owner.edges, &callEdge{
		kind: edgeIndirect, pos: call.Pos(), call: call, sig: sig,
	})
}

// resolve fills in the conservative target sets for interface and
// function-value edges.
func (p *Program) resolve() {
	// Every package-level named concrete type is an interface-dispatch
	// candidate; scope.Names() is sorted, so candidate order (and therefore
	// edge target order) is deterministic.
	var named []*types.Named
	for _, pkg := range p.pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			nt, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(nt) {
				continue
			}
			named = append(named, nt)
		}
	}
	var taken []*funcNode
	for _, n := range p.nodes {
		if n.taken {
			taken = append(taken, n)
		}
	}
	for _, n := range p.nodes {
		for _, e := range n.edges {
			switch e.kind {
			case edgeIface:
				for _, nt := range named {
					pt := types.NewPointer(nt)
					if !types.Implements(nt, e.iface) && !types.Implements(pt, e.iface) {
						continue
					}
					obj, _, _ := types.LookupFieldOrMethod(pt, true, e.mpkg, e.mname)
					m, ok := obj.(*types.Func)
					if !ok {
						continue
					}
					if tn := p.byObj[m]; tn != nil {
						e.targets = append(e.targets, tn)
					}
				}
			case edgeIndirect:
				for _, tn := range taken {
					if indirectMatches(tn, e.sig) {
						e.targets = append(e.targets, tn)
					}
				}
			}
		}
	}
}

// indirectMatches reports whether a taken function could be the value behind
// an indirect call of the given signature: an exact parameter/result match,
// or — for methods — the method-expression form with the receiver as the
// leading parameter.
func indirectMatches(n *funcNode, sig *types.Signature) bool {
	if sigShapeEqual(n.sig, sig) {
		return true
	}
	return n.sig.Recv() != nil && methodExprMatches(n.sig, sig)
}

func sigShapeEqual(a, b *types.Signature) bool {
	return a.Variadic() == b.Variadic() &&
		tupleEqual(a.Params(), b.Params()) && tupleEqual(a.Results(), b.Results())
}

func tupleEqual(a, b *types.Tuple) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if !types.Identical(a.At(i).Type(), b.At(i).Type()) {
			return false
		}
	}
	return true
}

func methodExprMatches(m, sig *types.Signature) bool {
	if m.Variadic() != sig.Variadic() || sig.Params().Len() != m.Params().Len()+1 {
		return false
	}
	if !types.Identical(sig.Params().At(0).Type(), m.Recv().Type()) {
		return false
	}
	for i := 0; i < m.Params().Len(); i++ {
		if !types.Identical(sig.Params().At(i+1).Type(), m.Params().At(i).Type()) {
			return false
		}
	}
	return tupleEqual(m.Results(), sig.Results())
}
