package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package under analysis.
type Package struct {
	// Path is the package's import path (or the synthetic path a corpus
	// package was loaded under).
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Files are the package's non-test source files.
	Files []*ast.File
	// Fset is the file set the files were parsed into.
	Fset *token.FileSet
	// Types and Info carry the go/types results the checks consult.
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages using only the standard library:
// module-internal imports resolve through the loader itself and every other
// import (the standard library) through go/importer's source importer, so
// linting needs no export data, no network, and no tooling beyond the go
// source tree. Packages are checked once and cached by import path.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string

	std      types.Importer
	pkgs     map[string]*Package
	dirs     map[string]string // import path -> source directory
	checking map[string]bool   // cycle guard
}

// NewLoader builds a loader for the module containing dir (found by walking
// up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:     fset,
		ModRoot:  root,
		ModPath:  modPath,
		std:      importer.ForCompiler(fset, "source", nil),
		pkgs:     map[string]*Package{},
		dirs:     map[string]string{},
		checking: map[string]bool{},
	}, nil
}

// modulePath reads the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}

// Load resolves package patterns — a directory, or a directory followed by
// /... for its whole subtree, relative to the working directory — and
// returns the type-checked packages in import-path order. Directories named
// testdata (and hidden/underscore directories) are skipped, matching the go
// tool's convention.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirSet := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		dir, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if !recursive {
			if hasGoFiles(dir) {
				dirSet[dir] = true
			}
			continue
		}
		err = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (name == "testdata" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return fs.SkipDir
			}
			if hasGoFiles(path) {
				dirSet[path] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	paths := make([]string, 0, len(dirSet))
	for dir := range dirSet {
		rel, err := filepath.Rel(l.ModRoot, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("lint: directory %s is outside module %s", dir, l.ModRoot)
		}
		ip := l.ModPath
		if rel != "." {
			ip = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		l.dirs[ip] = dir
		paths = append(paths, ip)
	}
	sort.Strings(paths)

	out := make([]*Package, 0, len(paths))
	for _, ip := range paths {
		p, err := l.check(ip)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// LoadDir parses and type-checks one directory under a synthetic import
// path. The analyzer tests use it to load testdata corpus packages (which
// live under a testdata directory Load skips) with scopes of their own.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l.dirs[asPath] = abs
	return l.check(asPath)
}

// check type-checks the package at the given import path, resolving
// module-internal imports recursively.
func (l *Loader) check(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	dir, ok := l.dirs[path]
	if !ok {
		switch {
		case path == l.ModPath:
			dir = l.ModRoot
		case strings.HasPrefix(path, l.ModPath+"/"):
			dir = filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModPath+"/")))
		default:
			return nil, fmt.Errorf("lint: package %s is outside module %s", path, l.ModPath)
		}
		l.dirs[path] = dir
	}

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: loaderImporter{l},
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}

	p := &Package{Path: path, Dir: dir, Files: files, Fset: l.Fset, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// parseDir parses the directory's non-test go sources with comments (the
// directives live there).
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && isLintableGoFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// loaderImporter routes module-internal imports back through the loader and
// everything else (the standard library) to the source importer.
type loaderImporter struct{ l *Loader }

func (im loaderImporter) Import(path string) (*types.Package, error) {
	l := im.l
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		p, err := l.check(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

func isLintableGoFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && isLintableGoFile(e.Name()) {
			return true
		}
	}
	return false
}
