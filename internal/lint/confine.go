package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// laneconfined is the inter-procedural confinement check: a function
// annotated //numalint:lane-confined runs concurrently across epoch lanes,
// so nothing reachable from it — through static calls, concrete or interface
// method dispatch, function values, or closures it builds — may touch state
// annotated //numalint:machine-global. Violations report the offending call
// chain (entry → … → accessor), not just the leaf. A lane-confined
// annotation on a function unreachable from any guarded-window dispatch root
// (Config.ConfinementRoots) is reported stale, like an allow directive that
// suppresses nothing.
var laneconfined = &Analyzer{
	Name: "laneconfined",
	Doc:  "prove //numalint:lane-confined functions reach no //numalint:machine-global state through any call path",
}

// laneescape flags the two ways state slips across the lane/barrier boundary
// without the typed mailbox/journal path: a machine-global-derived value
// passed as an argument into lane-confined code, and a go statement or
// channel send reachable from a lane-confined entry point.
var laneescape = &Analyzer{
	Name: "laneescape",
	Doc:  "flag machine-global values flowing into lane-confined code and go/send primitives reachable from it",
}

// ConfinementReport is the machine-readable proof numalint -confinement-json
// emits: one entry per //numalint:lane-confined function, stating whether
// the whole-program analysis proved it confined. core's
// TestPlannerAdmissibleSetIsProven pins the epoch planner's admissible set
// to the proven subset of this report.
type ConfinementReport struct {
	// Schema versions the report layout.
	Schema int `json:"schema"`
	// Roots are the configured guarded-window dispatch roots that resolved
	// in the analyzed program (staleness is judged against these).
	Roots []string `json:"roots"`
	// Entries are the annotated functions, sorted by canonical name.
	Entries []ConfinementEntry `json:"entries"`
}

// ConfinementEntry is one lane-confined function's verdict.
type ConfinementEntry struct {
	// Name is the canonical function name
	// (pkg/path.Func or pkg/path.(*Recv).Method).
	Name string `json:"name"`
	// File (module-root-relative, forward slashes) and Line locate the
	// declaration.
	File string `json:"file"`
	Line int    `json:"line"`
	// Proven is true when the analysis found no reachable machine-global
	// access and no reachable escape.
	Proven bool `json:"proven"`
	// Stale is true when no configured root reaches the function (only
	// meaningful when Roots is non-empty).
	Stale bool `json:"stale"`
	// Violations and Escapes count the findings attributed to this entry.
	Violations int `json:"violations"`
	// Escapes counts go/send primitives reachable from the entry.
	Escapes int `json:"escapes"`
	// Cuts counts call edges removed from this entry's traversal by audited
	// //numalint:allow directives — the human-argued part of the proof.
	Cuts int `json:"cuts"`
}

// collectTaintAndAccesses walks one function body (literals excluded — they
// are their own nodes) in source order, tracking simple local aliases of
// machine-global objects (s := eng.sched; s.now = t) and recording every
// direct or alias access. It returns the function's taint set for the
// argument-flow check.
func collectTaintAndAccesses(prog *Program, n *funcNode) map[*types.Var]string {
	pkg := n.pkg
	taint := map[*types.Var]string{}

	// taintRoot reports the machine-global name an expression derives from,
	// following selector/index/star/paren chains to an identifier.
	var taintRoot func(e ast.Expr) (string, bool)
	taintRoot = func(e ast.Expr) (string, bool) {
		switch e := e.(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[e]; obj != nil && prog.globals[obj] {
				return obj.Name(), true
			}
			if v, ok := pkg.Info.Uses[e].(*types.Var); ok {
				if root, ok := taint[v]; ok {
					return root, true
				}
			}
			return "", false
		case *ast.SelectorExpr:
			if obj := pkg.Info.Uses[e.Sel]; obj != nil && prog.globals[obj] {
				return obj.Name(), true
			}
			return taintRoot(e.X)
		case *ast.ParenExpr:
			return taintRoot(e.X)
		case *ast.StarExpr:
			return taintRoot(e.X)
		case *ast.IndexExpr:
			return taintRoot(e.X)
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				return taintRoot(e.X)
			}
		}
		return "", false
	}

	lhsIdents := map[*ast.Ident]bool{}
	ast.Inspect(n.body(), func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			return false // separate node, separate pass
		case *ast.AssignStmt:
			if len(node.Lhs) == len(node.Rhs) {
				for i, lhs := range node.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					v, ok := objOf(pkg, id).(*types.Var)
					if !ok {
						continue
					}
					lhsIdents[id] = true
					if root, tainted := taintRoot(node.Rhs[i]); tainted {
						taint[v] = root
					} else {
						delete(taint, v) // reassigned clean: alias broken
					}
				}
			}
		case *ast.Ident:
			obj := pkg.Info.Uses[node]
			if obj == nil {
				return true
			}
			if prog.globals[obj] {
				n.accesses = append(n.accesses, &globalAccess{
					pos: node.Pos(), name: node.Name, root: obj.Name(),
				})
				return true
			}
			if v, ok := obj.(*types.Var); ok && !lhsIdents[node] {
				if root, ok := taint[v]; ok {
					n.accesses = append(n.accesses, &globalAccess{
						pos: node.Pos(), name: node.Name, root: root, alias: true,
					})
				}
			}
		}
		return true
	})
	return taint
}

// objOf resolves an identifier through Defs or Uses.
func objOf(pkg *Package, id *ast.Ident) types.Object {
	if obj := pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return pkg.Info.Uses[id]
}

// traversal is one entry point's BFS over the (possibly cut) call graph.
type traversal struct {
	order      []*funcNode
	parentNode map[*funcNode]*funcNode
	parentEdge map[*funcNode]*callEdge
	cuts       int
}

// walkFrom runs a breadth-first traversal from entry. When cuts is non-nil,
// call edges on lines carrying an audited //numalint:allow for the given
// check are removed (and the directive counted as used); a nil cuts walks
// the full graph (the staleness view).
func walkFrom(entry *funcNode, fset *token.FileSet, check string, cuts *allowTable) *traversal {
	tr := &traversal{
		parentNode: map[*funcNode]*funcNode{entry: nil},
		parentEdge: map[*funcNode]*callEdge{},
	}
	queue := []*funcNode{entry}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		tr.order = append(tr.order, n)
		for _, e := range n.edges {
			if cuts != nil {
				pos := fset.Position(e.pos)
				if cuts.allowsAt(check, pos.Filename, pos.Line) {
					tr.cuts++
					continue
				}
			}
			for _, t := range e.targets {
				if _, seen := tr.parentNode[t]; seen {
					continue
				}
				tr.parentNode[t] = n
				tr.parentEdge[t] = e
				queue = append(queue, t)
			}
		}
	}
	return tr
}

// chain renders the entry → … → node call chain of a traversal.
func (tr *traversal) chain(entry, node *funcNode) (string, *callEdge) {
	var path []*funcNode
	for n := node; n != nil; n = tr.parentNode[n] {
		path = append(path, n)
	}
	// path is node..entry; reverse it.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	parts := make([]string, len(path))
	for i, n := range path {
		parts[i] = n.displayIn(entry.pkg)
	}
	var firstHop *callEdge
	if len(path) > 1 {
		firstHop = tr.parentEdge[path[1]]
	}
	return strings.Join(parts, " → "), firstHop
}

// analyzeConfinement runs the whole-program laneconfined and laneescape
// checks and builds the confinement report. modRoot (when non-empty)
// relativizes report paths.
func analyzeConfinement(prog *Program, cfg Config, cuts *allowTable, fset *token.FileSet,
	modRoot string, confinedOn, escapeOn bool) ([]Diagnostic, *ConfinementReport) {

	var diags []Diagnostic
	report := func(check string, pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		diags = append(diags, Diagnostic{
			Check: check, File: p.Filename, Line: p.Line, Col: p.Column,
			Message: fmt.Sprintf(format, args...),
		})
	}
	shortPos := func(pos token.Pos) string {
		p := fset.Position(pos)
		return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
	}
	// cut reports whether an access or escape at pos is excused by an
	// audited allow on its line (or the allow block above it).
	cut := func(check string, pos token.Pos) bool {
		p := fset.Position(pos)
		return cuts.allowsAt(check, p.Filename, p.Line)
	}

	for _, n := range prog.nodes {
		n.accesses = nil
	}
	taintOf := make(map[*funcNode]map[*types.Var]string, len(prog.nodes))
	if len(prog.globals) > 0 {
		for _, n := range prog.nodes {
			taintOf[n] = collectTaintAndAccesses(prog, n)
		}
	}

	// Staleness view: the uncut graph reachable from the configured roots.
	var roots []string
	rootReach := map[*funcNode]bool{}
	byName := map[string]*funcNode{}
	for _, n := range prog.nodes {
		byName[n.name] = n
	}
	for _, name := range cfg.ConfinementRoots {
		rn, ok := byName[name]
		if !ok {
			continue
		}
		roots = append(roots, name)
		for _, n := range walkFrom(rn, fset, "", nil).order {
			rootReach[n] = true
		}
	}
	sort.Strings(roots)

	var entries []ConfinementEntry
	for _, entry := range prog.nodes {
		if !entry.confined {
			continue
		}
		ent := ConfinementEntry{Name: entry.name, Stale: len(roots) > 0 && !rootReach[entry]}
		p := fset.Position(entry.pos)
		file := p.Filename
		if modRoot != "" {
			if rel, err := filepath.Rel(modRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
		}
		ent.File, ent.Line = file, p.Line

		if confinedOn && ent.Stale {
			report(laneconfined.Name, entry.pos,
				"lane-confined directive on %s is stale: no guarded-window dispatch root reaches it (roots: %s)",
				entry.short, strings.Join(roots, ", "))
		}

		// Machine-global reachability over the laneconfined-cut graph.
		tr := walkFrom(entry, fset, laneconfined.Name, cuts)
		ent.Cuts = tr.cuts
		for _, n := range tr.order {
			for _, acc := range n.accesses {
				if cut(laneconfined.Name, acc.pos) {
					continue
				}
				ent.Violations++
				if !confinedOn {
					continue
				}
				if n == entry {
					if acc.alias {
						report(laneconfined.Name, acc.pos,
							"%s is lane-confined: %s aliases machine-global %s owned by the serialized merge; route the effect through the lane journal",
							entry.short, acc.name, acc.root)
					} else {
						report(laneconfined.Name, acc.pos,
							"%s is lane-confined: %s is machine-global state owned by the serialized merge; route the effect through the lane journal",
							entry.short, acc.name)
					}
					continue
				}
				chain, firstHop := tr.chain(entry, n)
				report(laneconfined.Name, firstHop.pos,
					"%s is lane-confined: call chain %s reaches machine-global %s (%s); route the effect through the lane journal",
					entry.short, chain, acc.root, shortPos(acc.pos))
			}
		}

		// Escape reachability over the laneescape-cut graph.
		etr := walkFrom(entry, fset, laneescape.Name, cuts)
		for _, n := range etr.order {
			for _, esc := range n.escapes {
				if cut(laneescape.Name, esc.pos) {
					continue
				}
				ent.Escapes++
				if !escapeOn {
					continue
				}
				if n == entry {
					report(laneescape.Name, esc.pos,
						"%s is lane-confined: %s bypasses the typed mailbox/journal path; deliver cross-lane effects as window events",
						entry.short, esc.what)
					continue
				}
				chain, firstHop := etr.chain(entry, n)
				report(laneescape.Name, firstHop.pos,
					"%s is lane-confined: call chain %s reaches a %s (%s) that bypasses the typed mailbox/journal path",
					entry.short, chain, esc.what, shortPos(esc.pos))
			}
		}

		ent.Proven = ent.Violations == 0 && ent.Escapes == 0
		entries = append(entries, ent)
	}

	// Argument flow: a machine-global-derived value handed to lane-confined
	// code crosses the ownership boundary by value. Confined callers are
	// exempt — their own accesses are already laneconfined findings.
	if escapeOn && len(prog.globals) > 0 {
		for _, n := range prog.nodes {
			if n.confined {
				continue
			}
			taint := taintOf[n]
			for _, e := range n.edges {
				if e.call == nil {
					continue
				}
				var confinedTarget *funcNode
				for _, t := range e.targets {
					if t.confined {
						confinedTarget = t
						break
					}
				}
				if confinedTarget == nil {
					continue
				}
				for i, arg := range e.call.Args {
					root, derived := argDerivesFromGlobal(prog, n.pkg, taint, arg)
					if !derived {
						continue
					}
					report(laneescape.Name, arg.Pos(),
						"argument %d to lane-confined %s derives from machine-global %s; pass lane-owned state or journal the effect",
						i+1, confinedTarget.short, root)
				}
			}
		}
	}

	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	rep := &ConfinementReport{Schema: 1, Roots: roots, Entries: entries}
	if rep.Roots == nil {
		rep.Roots = []string{}
	}
	if rep.Entries == nil {
		rep.Entries = []ConfinementEntry{}
	}
	return diags, rep
}

// argDerivesFromGlobal reports whether an argument expression mentions a
// machine-global object or a tracked alias of one.
func argDerivesFromGlobal(prog *Program, pkg *Package, taint map[*types.Var]string, arg ast.Expr) (string, bool) {
	var root string
	found := false
	ast.Inspect(arg, func(node ast.Node) bool {
		if found {
			return false
		}
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pkg.Info.Uses[id]
		if obj == nil {
			return true
		}
		if prog.globals[obj] {
			root, found = obj.Name(), true
			return false
		}
		if v, ok := obj.(*types.Var); ok {
			if r, ok := taint[v]; ok {
				root, found = r, true
				return false
			}
		}
		return true
	})
	return root, found
}
