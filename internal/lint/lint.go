// Package lint is numalint: a domain-specific static-analysis suite that
// enforces the simulator's headline invariants at the source level, before a
// violation can reach the runtime tests that would otherwise be the first to
// notice.
//
// The suite currently carries six checks plus directive hygiene:
//
//   - determinism: inside the deterministic packages (sim, core, obs,
//     report), flag wall-clock reads (time.Now/time.Since), the global
//     math/rand source, select statements that race multiple channels or
//     poll readiness through a default clause, reads of the host's CPU
//     count (runtime.NumCPU/GOMAXPROCS), and map iteration whose body is
//     order-dependent — each one a way to make two runs of the same seed
//     diverge, including across worker or shard counts.
//   - hotpath: functions annotated //numalint:hotpath must not contain
//     allocation-inducing constructs: closure literals, fmt calls, append
//     whose result is not reassigned over its own backing slice, or values
//     of basic type boxed into interfaces.
//   - tracerguard: every call to a guarded emitter method (obs.Tracer
//     Emit/EmitNow, obs.Recorder Record, sim.ShardStats Note*) must sit
//     behind the nil-check branch pattern (an On() or != nil guard), so a
//     disabled instrument keeps costing one branch and zero argument
//     construction. Methods of the guarded type itself are exempt — they
//     implement the nil tolerance the guard relies on.
//   - faultpurity: the fault package may draw randomness only from its
//     private sim.Rand stream — foreign RNGs and wall-clock reads are
//     errors, because a chaos run must replay exactly from its seed.
//   - laneconfined: functions annotated //numalint:lane-confined run
//     concurrently across epoch lanes and must not reach state annotated
//     //numalint:machine-global (the serialized merge's clock and counters)
//     through any call path. The check is whole-program: it builds a call
//     graph over every analyzed package (static calls, concrete and
//     interface method dispatch, function values, closures), tracks simple
//     local aliases of machine-global objects, and reports the offending
//     call chain. An annotation unreachable from the configured dispatch
//     roots is reported stale.
//   - laneescape: machine-global-derived values must not flow into
//     lane-confined code as arguments, and no go statement or channel send
//     may be reachable from a lane-confined entry point — cross-lane
//     effects go through the typed mailbox/journal path or not at all.
//
// A finding is suppressed by a directive on its line or the line above:
//
//	//numalint:allow <check> <reason>
//
// Consecutive allow lines form one block that applies to each of those
// lines and the first following line, so one statement can carry several
// audited suppressions. In the whole-program checks an allow does more than
// suppress a report: it cuts the call edge (or access) on its line out of
// the traversal, replacing the automatic proof with the directive's
// mandatory human-written reason. The reason is mandatory; a directive
// naming an unknown check, missing its reason, or suppressing nothing is
// itself reported (check "directive").
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
	"strings"
)

// Config scopes the checks. The zero value checks nothing useful; use
// DefaultConfig for this repository's invariants. Tests point the scopes at
// corpus packages instead.
type Config struct {
	// DeterminismScope lists the import-path prefixes whose packages must be
	// deterministic (the byte-identical-output guarantee).
	DeterminismScope []string
	// FaultScope lists the import-path prefixes held to fault purity.
	FaultScope []string
	// ConfinementRoots names (canonically: pkg/path.Func or
	// pkg/path.(*Recv).Method) the guarded-window dispatch entry points.
	// A //numalint:lane-confined annotation on a function unreachable from
	// every root is reported stale. Roots that do not resolve in the
	// analyzed program are ignored; when none resolve, staleness is not
	// checked (a partial package listing proves nothing about
	// reachability).
	ConfinementRoots []string
	// Guarded lists the emitter types whose hot emit methods must sit behind
	// an On()/nil guard at every call site (tracerguard).
	Guarded []GuardedEmitter
}

// GuardedEmitter names one observability type whose listed methods are
// nil-tolerant no-ops: tracerguard requires every call site outside the
// type's own methods to prove the receiver is non-nil first, keeping the
// disabled instrument at its one-branch cost.
type GuardedEmitter struct {
	// Pkg and Type identify the emitter type by import path and name.
	Pkg  string
	Type string
	// Methods are the guarded method names.
	Methods []string
}

// DefaultConfig returns the scopes enforced on this repository.
func DefaultConfig() Config {
	return Config{
		DeterminismScope: []string{
			"ccnuma/internal/sim",
			"ccnuma/internal/core",
			"ccnuma/internal/obs",
			"ccnuma/internal/report",
			"ccnuma/internal/serve",
		},
		FaultScope:       []string{"ccnuma/internal/fault"},
		ConfinementRoots: []string{"ccnuma/internal/sim.(*Lane).runGuardedLane"},
		Guarded: []GuardedEmitter{
			{Pkg: "ccnuma/internal/obs", Type: "Tracer", Methods: []string{"Emit", "EmitNow"}},
			{Pkg: "ccnuma/internal/obs", Type: "Recorder", Methods: []string{"Record"}},
			{Pkg: "ccnuma/internal/sim", Type: "ShardStats", Methods: []string{
				"NoteDispatch", "NoteLaneDispatch", "NoteCross", "NoteBarrierStall"}},
		},
	}
}

// inScope reports whether an import path falls under one of the prefixes.
func inScope(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Diagnostic is one finding.
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Analyzer is one check: a name (the flag and directive key), a one-line
// doc, and the run function. Whole-program checks (laneconfined,
// laneescape) have a nil Run — the suite drives them over the full package
// set instead of per package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// DirectiveCheck is the name under which directive-hygiene findings
// (malformed, unknown-check, or unused allow directives) are reported.
const DirectiveCheck = "directive"

// Analyzers returns the suite's checks in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{determinism, hotpath, tracerguard, faultpurity, laneconfined, laneescape}
}

// knownCheck reports whether name is a check an allow directive may name.
func knownCheck(name string) bool {
	if name == DirectiveCheck {
		return true
	}
	for _, a := range Analyzers() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package
	Cfg  Config

	check string
	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Check:   p.check,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// Suite runs a set of analyzers under one configuration.
type Suite struct {
	Cfg Config
	// Disabled names checks to skip (flag-controlled in cmd/numalint).
	Disabled map[string]bool
}

// enabled reports whether the named check should run.
func (s *Suite) enabled(name string) bool { return !s.Disabled[name] }

// Run applies the enabled analyzers to every package, resolves allow
// directives, and returns the surviving findings sorted by position.
func (s *Suite) Run(pkgs []*Package) []Diagnostic {
	diags, _ := s.RunReport(pkgs, "")
	return diags
}

// RunReport is Run plus the confinement report the whole-program pass
// builds (nil when both laneconfined and laneescape are disabled). modRoot,
// when non-empty, relativizes report file paths.
func (s *Suite) RunReport(pkgs []*Package, modRoot string) ([]Diagnostic, *ConfinementReport) {
	var raw []Diagnostic
	var allows []*allowDirective
	var dirDiags []Diagnostic
	var fset *token.FileSet
	for _, pkg := range pkgs {
		fset = pkg.Fset
		for _, a := range Analyzers() {
			if a.Run == nil || !s.enabled(a.Name) {
				continue
			}
			a.Run(&Pass{
				Fset:  pkg.Fset,
				Pkg:   pkg,
				Cfg:   s.Cfg,
				check: a.Name,
				diags: &raw,
			})
		}
		al, dd := collectDirectives(pkg)
		allows = append(allows, al...)
		dirDiags = append(dirDiags, dd...)
	}

	allowT := newAllowTable(allows)
	var rep *ConfinementReport
	if len(pkgs) > 0 && (s.enabled(laneconfined.Name) || s.enabled(laneescape.Name)) {
		prog := buildProgram(pkgs)
		var cd []Diagnostic
		cd, rep = analyzeConfinement(prog, s.Cfg, allowT, fset, modRoot,
			s.enabled(laneconfined.Name), s.enabled(laneescape.Name))
		raw = append(raw, cd...)
	}

	kept := raw[:0]
	for _, d := range raw {
		if allowT.allowsAt(d.Check, d.File, d.Line) {
			continue
		}
		kept = append(kept, d)
	}

	if s.enabled(DirectiveCheck) {
		kept = append(kept, dirDiags...)
		for _, al := range allows {
			// A directive for a disabled check cannot be proven stale.
			if !al.used && s.enabled(al.check) {
				kept = append(kept, Diagnostic{
					Check: DirectiveCheck,
					File:  al.file, Line: al.line, Col: al.col,
					Message: fmt.Sprintf("allow directive for %q suppresses nothing; remove it", al.check),
				})
			}
		}
	}

	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return kept, rep
}

// WriteConfinementJSON writes the report as deterministic, indented JSON —
// the byte format committed as testdata/confinement.golden.json and checked
// by make lint-confinement.
func WriteConfinementJSON(w io.Writer, rep *ConfinementReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// allowTable indexes allow directives by file for suppression and edge
// cutting. Consecutive allow lines form one block: each directive in the
// block matches every line of the block plus the first line after it, so a
// statement can stack several audited suppressions above itself.
type allowTable struct {
	byFile map[string][]*allowDirective
	lines  map[string]map[int]bool // file -> lines carrying an allow
}

func newAllowTable(allows []*allowDirective) *allowTable {
	t := &allowTable{
		byFile: map[string][]*allowDirective{},
		lines:  map[string]map[int]bool{},
	}
	for _, al := range allows {
		t.byFile[al.file] = append(t.byFile[al.file], al)
		if t.lines[al.file] == nil {
			t.lines[al.file] = map[int]bool{}
		}
		t.lines[al.file][al.line] = true
	}
	return t
}

// allowsAt reports whether an allow for check covers the given file:line,
// marking every covering directive used.
func (t *allowTable) allowsAt(check, file string, line int) bool {
	lines := t.lines[file]
	hit := false
	for _, al := range t.byFile[file] {
		if al.check != check {
			continue
		}
		end := al.line
		for lines[end+1] {
			end++
		}
		if line >= al.line && line <= end+1 {
			al.used = true
			hit = true
		}
	}
	return hit
}

// allowDirective is one parsed //numalint:allow comment.
type allowDirective struct {
	check  string
	reason string
	file   string
	line   int
	col    int
	used   bool
}

// HotpathDirective marks a function for the hotpath check when it appears in
// the function's doc comment.
const HotpathDirective = "numalint:hotpath"

// collectDirectives parses every numalint directive in the package,
// returning the allow directives and the hygiene findings (malformed
// directives, unknown check names, misplaced hotpath annotations).
func collectDirectives(pkg *Package) ([]*allowDirective, []Diagnostic) {
	var allows []*allowDirective
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		p := pkg.Fset.Position(pos)
		diags = append(diags, Diagnostic{
			Check: DirectiveCheck,
			File:  p.Filename, Line: p.Line, Col: p.Column,
			Message: fmt.Sprintf(format, args...),
		})
	}

	for _, f := range pkg.Files {
		// Hotpath and lane-confined directives are only meaningful in a
		// function's doc comment; machine-global only attached to a var or
		// field declaration. Anywhere else they silently annotate nothing.
		funcDocs := map[*ast.CommentGroup]bool{}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				funcDocs[fd.Doc] = true
			}
		}
		declDocs := map[*ast.CommentGroup]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Field:
				declDocs[n.Doc] = true
				declDocs[n.Comment] = true
			case *ast.GenDecl:
				if n.Tok == token.VAR {
					declDocs[n.Doc] = true
				}
			case *ast.ValueSpec:
				declDocs[n.Doc] = true
				declDocs[n.Comment] = true
			}
			return true
		})

		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // /* */ comments cannot carry directives
				}
				rest, ok := strings.CutPrefix(text, "numalint:")
				if !ok {
					continue
				}
				switch {
				case rest == "hotpath":
					if !funcDocs[cg] {
						report(c.Pos(), "hotpath directive must be part of a function's doc comment")
					}
				case rest == "lane-confined":
					if !funcDocs[cg] {
						report(c.Pos(), "lane-confined directive must be part of a function's doc comment")
					}
				case rest == "machine-global":
					if !declDocs[cg] {
						report(c.Pos(), "machine-global directive must be attached to a var or field declaration")
					}
				case strings.HasPrefix(rest, "allow"):
					fields := strings.Fields(strings.TrimPrefix(rest, "allow"))
					if len(fields) < 2 {
						report(c.Pos(), "allow directive needs a check name and a reason: //numalint:allow <check> <reason>")
						continue
					}
					if !knownCheck(fields[0]) {
						report(c.Pos(), "allow directive names unknown check %q", fields[0])
						continue
					}
					p := pkg.Fset.Position(c.Pos())
					allows = append(allows, &allowDirective{
						check:  fields[0],
						reason: strings.Join(fields[1:], " "),
						file:   p.Filename,
						line:   p.Line,
						col:    p.Column,
					})
				default:
					report(c.Pos(), "unknown numalint directive %q", "numalint:"+rest)
				}
			}
		}
	}
	return allows, diags
}

// isHotpath reports whether the function's doc comment carries the
// //numalint:hotpath directive.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimPrefix(c.Text, "//") == HotpathDirective {
			return true
		}
	}
	return false
}

// inspectStack walks root like ast.Inspect but hands fn the stack of
// ancestors (outermost first, not including n itself). Returning false
// skips n's children.
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		stack = append(stack, n)
		if !descend {
			// ast.Inspect will not visit children, so it will not deliver
			// the matching nil either: pop now.
			stack = stack[:len(stack)-1]
		}
		return descend
	})
}
