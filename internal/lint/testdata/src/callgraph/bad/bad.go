// Package bad seeds the call-graph shapes the whole-program laneconfined
// check must chase: a violation three static calls deep, interface dispatch
// with a dirty implementation, a call through a function-valued field,
// recursion, a closure, a cross-package hop into the real internal/directory
// package, and a lane-confined annotation no dispatch root reaches.
package bad

import (
	"ccnuma/internal/directory"
	"ccnuma/internal/mem"
)

type engine struct {
	//numalint:machine-global
	seq uint64

	hook  func(int)
	lanes []lane
}

//numalint:machine-global
var clock int64

type lane struct {
	s     *engine
	local int64
}

// ticker's unexported method keeps its implementations inside this package
// (the resolver considers every named type in the program).
type ticker interface{ tick() }

type dirty struct{ s *engine }

func (d dirty) tick() { d.s.seq++ }

type clean struct{ n int64 }

func (c *clean) tick() { c.n++ }

// Root is this corpus's guarded-window dispatch root (the test's
// ConfinementRoots names it): every annotated entry except orphan hangs
// off it.
func Root(l *lane, t ticker) {
	l.ViaHelpers()
	l.ViaIface(t)
	l.ViaHook()
	l.ViaRecursion(3)
	l.ViaDirectory()
	l.ViaClosure()
}

// ViaHelpers reaches the global only at depth three
// (ViaHelpers → mid → bump), so the finding must carry the chain.
//
//numalint:lane-confined
func (l *lane) ViaHelpers() { l.mid() }

func (l *lane) mid() { l.bump() }

func (l *lane) bump() { l.s.seq++ }

// ViaIface dispatches through an interface: the resolver must consider both
// implementations, and dirty.tick writes the global.
//
//numalint:lane-confined
func (l *lane) ViaIface(t ticker) { t.tick() }

// ViaHook calls through a function-valued field; spill is address-taken
// below with the matching signature func(int) and writes the global clock.
//
//numalint:lane-confined
func (l *lane) ViaHook() { l.s.hook(1) }

func spill(n int) { clock += int64(n) }

// take stores spill into the hook field — the taking that makes it an
// indirect-call candidate.
func take(e *engine) { e.hook = spill }

// ViaRecursion loops through itself before touching the global; the
// traversal must terminate and still report the access.
//
//numalint:lane-confined
func (l *lane) ViaRecursion(n int) {
	if n > 0 {
		l.ViaRecursion(n - 1)
		return
	}
	l.s.seq++
}

// ViaDirectory crosses into the real internal/directory package: Record can
// flush a full batch, FlushPending invokes the onBatch function value, and
// onHot — taken in newCounters with the matching signature — writes the
// global.
//
//numalint:lane-confined
func (l *lane) ViaDirectory() {
	ctrs := newCounters()
	ctrs.Record(mem.GPage(1), mem.CPUID(0), false, true)
}

func newCounters() *directory.Counters {
	return directory.NewCounters(4, 2, 1, 1, 1, onHot)
}

func onHot(batch []directory.HotRef) { clock += int64(len(batch)) }

// ViaClosure builds a closure that captures the lane and bumps the global;
// the closure is its own node (ViaClosure$1) linked by a creation edge.
//
//numalint:lane-confined
func (l *lane) ViaClosure() {
	f := func() { l.s.seq++ }
	f()
}

// orphan is annotated but nothing on the dispatch path calls it: the
// staleness check must flag the directive.
//
//numalint:lane-confined
func (l *lane) orphan() { l.local++ }
