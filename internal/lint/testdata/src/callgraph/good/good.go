// Package good mirrors bad's call-graph shapes with confined code that
// stays on lane-owned state: the same chain depth, dispatch forms, and
// cross-package call, none of which reach a machine-global — plus an
// audited allow cutting a deliberately barrier-only edge. Every indirect
// signature here (func(int32)) is disjoint from every taken function in the
// bad package, so conservative matching cannot cross-contaminate.
package good

import (
	"ccnuma/internal/directory"
	"ccnuma/internal/mem"
)

type engine struct {
	//numalint:machine-global
	seq uint64

	hook  func(int32)
	lanes []lane
}

type lane struct {
	s     *engine
	jrnl  []int64
	local int64
}

// quiet's unexported method keeps implementation scanning inside this
// package; both implementations are lane-clean.
type quiet interface{ hum() }

type softA struct{ n int64 }

func (a *softA) hum() { a.n++ }

type softB struct{ n int64 }

func (b softB) hum() { _ = b.n }

// Root is the good dispatch root named in the test's ConfinementRoots: it
// reaches every annotated entry, so none is stale.
func Root(l *lane, q quiet) {
	l.ViaHelpers()
	l.ViaIface(q)
	l.ViaHook()
	l.ViaRecursion(3)
	l.ViaDirectory(nil)
	l.ViaClosure()
	l.SerialPath()
}

// ViaHelpers journals through the same depth-three chain as bad's.
//
//numalint:lane-confined
func (l *lane) ViaHelpers() { l.mid() }

func (l *lane) mid() { l.bump() }

func (l *lane) bump() { l.jrnl = append(l.jrnl, l.local) }

//numalint:lane-confined
func (l *lane) ViaIface(q quiet) { q.hum() }

// ViaHook's function-valued field has a signature disjoint from every taken
// function in the bad package, so the candidate set stays clean.
//
//numalint:lane-confined
func (l *lane) ViaHook() { l.s.hook(2) }

func note(n int32) { _ = n }

func take(e *engine) { e.hook = note }

//numalint:lane-confined
func (l *lane) ViaRecursion(n int) {
	if n > 0 {
		l.ViaRecursion(n - 1)
		return
	}
	l.local++
}

// ViaDirectory reads the real internal/directory counters through Miss — a
// pure query that triggers no batch callback.
//
//numalint:lane-confined
func (l *lane) ViaDirectory(ctrs *directory.Counters) {
	if ctrs != nil {
		l.local += int64(ctrs.Miss(mem.GPage(1), mem.CPUID(0)))
	}
}

// ViaClosure calls its literal directly, so the literal is never taken and
// program-wide indirect matching never considers it.
//
//numalint:lane-confined
func (l *lane) ViaClosure() {
	func() { l.local++ }()
}

// SerialPath demonstrates the audited edge cut: drain touches the global,
// but the call edge carries an allow arguing the path only runs at the
// barrier, so the traversal stops there and the report counts a cut.
//
//numalint:lane-confined
func (l *lane) SerialPath() {
	//numalint:allow laneconfined drain is dispatched by the barrier fallback only, never inside a window
	l.drain()
}

func (l *lane) drain() { l.s.seq++ }
