// Package bad seeds directive-hygiene findings: a misplaced hotpath
// annotation, a malformed allow, an unknown check name, a stale allow that
// suppresses nothing, and an unknown directive verb.
package bad

import "sort"

//numalint:hotpath
var notAFunction = 1

//numalint:frobnicate
const alsoWrong = 2

// Keys is already clean, so every allow in it is stale or malformed.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//numalint:allow nosuchcheck because reasons
	//numalint:allow determinism
	//numalint:allow determinism stale suppression of an already-clean loop
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
