// Package bad seeds unguarded obs.Tracer emit sites: event construction
// that runs even when tracing is disabled.
package bad

import "ccnuma/internal/obs"

type pager struct {
	Obs *obs.Tracer
}

// Unguarded builds and emits with no branch at all.
func (p *pager) Unguarded(page int64) {
	e := obs.NewEvent(obs.KindPageMigrated)
	e.Page = page
	p.Obs.Emit(e)
}

// WrongBranch emits in the disabled branch of the guard.
func (p *pager) WrongBranch() {
	if !p.Obs.On() {
		p.Obs.EmitNow(obs.NewEvent(obs.KindCounterReset))
	}
}

// LateGuard checks On() only after the emit; the guard clause must precede.
func (p *pager) LateGuard(tr *obs.Tracer) {
	tr.Emit(obs.NewEvent(obs.KindTLBShootdown))
	if !tr.On() {
		return
	}
}
