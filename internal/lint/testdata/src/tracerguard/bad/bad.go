// Package bad seeds unguarded emitter call sites: argument construction
// that runs even when the instrument is disabled — tracer emits, recorder
// records, and shard-stats hooks alike.
package bad

import (
	"ccnuma/internal/obs"
	"ccnuma/internal/sim"
)

type pager struct {
	Obs *obs.Tracer
}

// Unguarded builds and emits with no branch at all.
func (p *pager) Unguarded(page int64) {
	e := obs.NewEvent(obs.KindPageMigrated)
	e.Page = page
	p.Obs.Emit(e)
}

// WrongBranch emits in the disabled branch of the guard.
func (p *pager) WrongBranch() {
	if !p.Obs.On() {
		p.Obs.EmitNow(obs.NewEvent(obs.KindCounterReset))
	}
}

// LateGuard checks On() only after the emit; the guard clause must precede.
func (p *pager) LateGuard(tr *obs.Tracer) {
	tr.Emit(obs.NewEvent(obs.KindTLBShootdown))
	if !tr.On() {
		return
	}
}

// RecordUnguarded hands the recorder an event with no nil check.
func RecordUnguarded(r *obs.Recorder, page int64) {
	e := obs.NewEvent(obs.KindPageMigrated)
	e.Page = page
	r.Record(e)
}

// StatsUnguarded calls a shard-stats hook with no nil check.
func StatsUnguarded(st *sim.ShardStats, lane int) {
	st.NoteDispatch(lane, 10)
}
