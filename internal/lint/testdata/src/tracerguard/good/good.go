// Package good holds the guarded emit patterns tracerguard must accept:
// the enclosing On() branch, the early-return guard clause, and an explicit
// nil comparison — for the tracer, the recorder, and shard stats.
package good

import (
	"ccnuma/internal/obs"
	"ccnuma/internal/sim"
)

type pager struct {
	Obs *obs.Tracer
}

// Branch wraps construction and emit in an On() branch.
func (p *pager) Branch(page int64) {
	if p.Obs.On() {
		e := obs.NewEvent(obs.KindPageMigrated)
		e.Page = page
		p.Obs.Emit(e)
	}
}

// Clause guards with an early return, the helper-function shape.
func Clause(tr *obs.Tracer, n int) {
	if !tr.On() {
		return
	}
	e := obs.NewEvent(obs.KindCounterReset)
	e.N = n
	tr.EmitNow(e)
}

// NilCheck guards with an explicit comparison inside a compound condition.
func NilCheck(tr *obs.Tracer, emit bool) {
	if tr != nil && emit {
		tr.Emit(obs.NewEvent(obs.KindTLBShootdown))
	}
}

// RecordGuarded keeps the recorder behind its On() branch.
func RecordGuarded(r *obs.Recorder, page int64) {
	if r.On() {
		e := obs.NewEvent(obs.KindPageMigrated)
		e.Page = page
		r.Record(e)
	}
}

// StatsGuarded proves the stats collector non-nil before the hook, the
// init-statement shape the engine's hot path uses.
func StatsGuarded(st *sim.ShardStats, lane int) {
	if s := st; s != nil {
		s.NoteCross(lane, lane+1)
	}
}
