// Package bad seeds the allocation-inducing constructs the hotpath check
// must reject inside an annotated function.
package bad

import "fmt"

type queue struct {
	buf   []int
	sched func(int)
}

// Hot is annotated and violates every hotpath rule: a closure literal, a
// fmt call, an append that abandons its backing slice, and interface boxing
// of a non-constant int (as a conversion and as a call argument).
//
//numalint:hotpath
func (q *queue) Hot(vs []int, x int) []int {
	for _, v := range vs {
		q.sched = func(int) { _ = v }
	}
	_ = fmt.Sprintf("%d", x)
	out := append(q.buf, x)
	_ = any(x)
	q.box(x)
	return out
}

func (q *queue) box(v any) {}
