// Package good holds the allocation-free idioms the hotpath check must
// accept, and an unannotated function it must leave alone.
package good

type pool struct {
	buf []int
}

// Hot reuses its backing buffer (the pooled self-append idiom) and panics
// only with a constant, which the compiler materialises statically.
//
//numalint:hotpath
func (p *pool) Hot(vs []int) {
	for _, v := range vs {
		p.buf = append(p.buf, v)
	}
	if len(p.buf) > 1<<20 {
		panic("pool: overflow")
	}
}

// Cold is unannotated: closures and fresh appends are fine off the hot
// path.
func (p *pool) Cold(vs []int) func() []int {
	doubled := append(vs, vs...)
	return func() []int { return doubled }
}
