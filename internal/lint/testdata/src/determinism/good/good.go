// Package good holds the deterministic idioms the determinism check must
// accept: collect-then-sort map iteration, commutative accumulation, set
// building, single-channel selects, and a directive-annotated wall-clock
// read.
package good

import (
	"sort"
	"time"
)

// Allowed reads the wall clock under an allow directive.
func Allowed() time.Time {
	return time.Now() //numalint:allow determinism corpus demonstrates the annotated exemption
}

// SortedKeys collects the keys and sorts before use.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Count accumulates commutatively; iteration order cannot show.
func Count(m map[string]int) (n, sum int) {
	for _, v := range m {
		n++
		sum += v
	}
	return n, sum
}

// SetBuild writes each key into another map: set semantics, no order.
func SetBuild(m map[string]int) map[string]bool {
	out := map[string]bool{}
	for k := range m {
		out[k] = true
	}
	return out
}

// Prune deletes as it goes; removal carries no order either.
func Prune(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// BlockingSelect waits on a single channel with no default: it cannot race
// and cannot poll, so the outcome is independent of scheduling timing.
func BlockingSelect(a chan int) int {
	select {
	case v := <-a:
		return v
	}
}
