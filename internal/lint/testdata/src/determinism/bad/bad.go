// Package bad seeds one instance of every determinism violation numalint
// must catch; the expected diagnostics live in testdata/golden.
package bad

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"
)

// WallClock reads real time inside a deterministic package.
func WallClock() int64 {
	t0 := time.Now()
	return int64(time.Since(t0))
}

// GlobalRand draws from the process-global source.
func GlobalRand() int {
	return rand.Intn(10)
}

// RacySelect races two channels: when both are ready the runtime picks one
// pseudo-randomly.
func RacySelect(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// PollingSelect polls channel readiness: the branch taken depends on
// goroutine scheduling timing.
func PollingSelect(a chan int) (int, bool) {
	select {
	case v := <-a:
		return v, true
	default:
		return 0, false
	}
}

// HostCPUCount lets the host machine's CPU configuration steer behaviour.
func HostCPUCount() int {
	workers := runtime.NumCPU()
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	return workers
}

// MapOrder prints in iteration order.
func MapOrder(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// MapCollectNoSort collects keys but never sorts them.
func MapCollectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
