// Package bad seeds the escape hatches the laneescape check must reject:
// go statements and channel sends reachable from lane-confined code, and
// machine-global-derived values handed to lane-confined code as arguments.
package bad

type engine struct {
	//numalint:machine-global
	now int64

	lanes []lane
	wake  chan int64
}

type lane struct {
	s     *engine
	local int64
}

// Spawn is lane-confined yet forks a goroutine: the spawned work outlives
// the window's ordering guarantees.
//
//numalint:lane-confined
func (l *lane) Spawn() {
	go func() { l.local++ }()
}

// Send is lane-confined yet pushes on a channel shared with the barrier.
//
//numalint:lane-confined
func (l *lane) Send(v int64) {
	l.s.wake <- v
}

// SpillDeep hides the send one call down; the finding must carry the chain.
//
//numalint:lane-confined
func (l *lane) SpillDeep(v int64) { l.relay(v) }

func (l *lane) relay(v int64) { l.s.wake <- v }

// Deliver is confined and clean in itself — the violations are at its call
// sites in Feed, where machine-global-derived values flow in by argument.
//
//numalint:lane-confined
func (l *lane) Deliver(v int64) { l.local = v }

// Feed runs at the barrier (unannotated) but leaks the machine-global clock
// into confined code: once directly, once through an alias chain.
func (e *engine) Feed() {
	l := &e.lanes[0]
	l.Deliver(e.now)
	t := e.now
	u := t
	l.Deliver(u + 1)
}
