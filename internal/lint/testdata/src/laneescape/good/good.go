// Package good holds the boundary idioms the laneescape check must accept:
// the barrier using goroutines and channels freely, and only lane-owned
// values flowing into confined code.
package good

type engine struct {
	//numalint:machine-global
	now int64

	lanes []lane
}

type lane struct {
	s     *engine
	local int32
	jrnl  []int32
}

// Deliver is confined; every value handed to it below is lane-owned.
//
//numalint:lane-confined
func (l *lane) Deliver(v int32) { l.local = v }

// Journal is confined and appends to the lane-owned journal — the
// sanctioned way to publish effects (the barrier drains it serially).
//
//numalint:lane-confined
func (l *lane) Journal(v int32) { l.jrnl = append(l.jrnl, v) }

// Merge is the barrier: unannotated, so goroutines, channels, and the
// machine-global clock are all fair game here.
func (e *engine) Merge() {
	done := make(chan int32, len(e.lanes))
	for i := range e.lanes {
		l := &e.lanes[i]
		go func() { done <- l.local }()
	}
	for range e.lanes {
		e.now += int64(<-done)
	}
}

// Feed hands confined code lane-owned values: using the clock to pick WHICH
// lane is fine — the clock value itself never crosses the boundary.
func (e *engine) Feed() {
	l := &e.lanes[int(e.now)%len(e.lanes)]
	l.Deliver(l.local)
	l.Journal(l.local + 1)
	v := e.now
	v = int64(l.local) // reassigned clean: the alias to the clock is broken
	l.Deliver(int32(v))
}
