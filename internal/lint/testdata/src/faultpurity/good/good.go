// Package good draws randomness only from a private sim.Rand stream — the
// shape internal/fault must keep.
package good

import "ccnuma/internal/sim"

// Injector owns its private stream.
type Injector struct {
	rng *sim.Rand
}

// New seeds the private stream from the run seed.
func New(seed uint64) *Injector {
	return &Injector{rng: sim.NewRand(seed)}
}

// Draw is deterministic for a fixed seed.
func (in *Injector) Draw() int {
	return in.rng.Intn(6)
}
