// Package bad seeds fault-purity violations: a foreign RNG import and
// wall-clock reads inside a fault package.
package bad

import (
	"math/rand"
	"time"
)

// Draw mixes the global RNG with the wall clock — a chaos run that could
// never replay from its seed.
func Draw() int {
	if time.Now().UnixNano()%2 == 0 {
		return rand.Intn(6)
	}
	return 0
}
