// Package bad seeds the confinement violations the laneconfined check must
// reject: a lane-confined function reading and writing machine-global struct
// fields (directly and through a selector chain) and a machine-global
// package var.
package bad

type engine struct {
	//numalint:machine-global
	now int64
	//numalint:machine-global
	seq uint64
	//numalint:machine-global
	merge *mergeState

	lanes []lane
}

// mergeState is barrier-owned scratch reached through the machine-global
// merge pointer.
type mergeState struct{ tally int64 }

type lane struct {
	s     *engine
	local int64
}

//numalint:machine-global
var fired uint64

// Run is lane-confined yet touches all three machine-global identifiers:
// a read of the clock, a write of the sequence counter through the lane's
// back-pointer, and an increment of the package-level tally.
//
//numalint:lane-confined
func (l *lane) Run() {
	l.local = l.s.now
	l.s.seq++
	fired++
}

// RunAlias smuggles the global out through local aliases: the direct read
// that creates the alias is one finding, and every later use of an alias —
// including an alias of the alias — is another.
//
//numalint:lane-confined
func (l *lane) RunAlias(t int64) {
	m := l.s.merge
	m.tally = t
	m2 := m
	m2.tally++
}

// Merge is unannotated: the barrier owns the globals and may touch them.
func (e *engine) Merge() {
	e.now++
	e.seq++
	fired++
}
