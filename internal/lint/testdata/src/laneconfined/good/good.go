// Package good holds the confinement idioms the laneconfined check must
// accept: lane-confined code working purely on lane-local state (including a
// field named like a global on a different type) and unannotated code using
// the globals freely.
package good

type engine struct {
	//numalint:machine-global
	now int64

	lanes []lane
}

type lane struct {
	// now is this lane's local clock: same name as the engine's global,
	// different object, so the check must not confuse them.
	now   int64
	jrnl  []int64
	local int64
}

// Run is lane-confined and touches only lane-local state; the lane's own
// now field shadows the global's name without being it.
//
//numalint:lane-confined
func (l *lane) Run() {
	l.now++
	l.jrnl = append(l.jrnl, l.local)
}

// RunAlias aliases only lane-owned state: the alias machinery must not
// taint locals rooted in the lane itself.
//
//numalint:lane-confined
func (l *lane) RunAlias() {
	j := l.jrnl
	j = append(j, l.local)
	l.jrnl = j
}

// Merge is the barrier: unannotated, so the machine-global clock is fair
// game.
func (e *engine) Merge() {
	for i := range e.lanes {
		e.now += e.lanes[i].local
	}
}
