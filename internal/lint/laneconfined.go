package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// The laneconfined check itself lives in confine.go (it is whole-program,
// not per-package); this file holds the directive vocabulary it consumes.

// LaneConfinedDirective marks a function as lane-confined when it appears in
// the function's doc comment; MachineGlobalDirective marks a variable or
// struct field as barrier-owned when attached to its declaration.
const (
	LaneConfinedDirective  = "numalint:lane-confined"
	MachineGlobalDirective = "numalint:machine-global"
)

// collectMachineGlobals gathers the type-checker objects of every annotated
// declaration: struct fields (the directive in the field's doc or trailing
// comment), var specs, and whole var declarations (the directive on the
// grouped decl covers every spec in it).
func collectMachineGlobals(pkg *Package, f *ast.File, globals map[types.Object]bool) {
	defs := pkg.Info.Defs
	addNames := func(names []*ast.Ident) {
		for _, n := range names {
			if obj := defs[n]; obj != nil {
				globals[obj] = true
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Field:
			if hasDirective(n.Doc, MachineGlobalDirective) || hasDirective(n.Comment, MachineGlobalDirective) {
				addNames(n.Names)
			}
		case *ast.GenDecl:
			if hasDirective(n.Doc, MachineGlobalDirective) {
				for _, spec := range n.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						addNames(vs.Names)
					}
				}
			}
		case *ast.ValueSpec:
			if hasDirective(n.Doc, MachineGlobalDirective) || hasDirective(n.Comment, MachineGlobalDirective) {
				addNames(n.Names)
			}
		}
		return true
	})
}

// isLaneConfined reports whether the function's doc comment carries the
// //numalint:lane-confined directive.
func isLaneConfined(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimPrefix(c.Text, "//") == LaneConfinedDirective {
			return true
		}
	}
	return false
}

// hasDirective reports whether any line of the comment group is exactly the
// given //numalint directive.
func hasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.TrimPrefix(c.Text, "//") == directive {
			return true
		}
	}
	return false
}
