package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// laneconfined enforces the guarded-window ownership split at the source
// level: state annotated //numalint:machine-global (the serialized merge's
// clock, sequence counter, and dispatch tally) belongs to the barrier, and
// functions annotated //numalint:lane-confined (the window runner and the
// lane-local schedule path) run concurrently across lanes, so any read or
// write of that state from inside them is a data race the Go race detector
// only catches when a golden workload happens to exercise the interleaving.
// The check makes the confinement contract fail the build instead.
var laneconfined = &Analyzer{
	Name: "laneconfined",
	Doc:  "forbid //numalint:lane-confined functions from touching //numalint:machine-global state",
	Run:  runLaneConfined,
}

// LaneConfinedDirective marks a function as lane-confined when it appears in
// the function's doc comment; MachineGlobalDirective marks a variable or
// struct field as barrier-owned when attached to its declaration.
const (
	LaneConfinedDirective  = "numalint:lane-confined"
	MachineGlobalDirective = "numalint:machine-global"
)

func runLaneConfined(p *Pass) {
	globals := map[types.Object]bool{}
	for _, f := range p.Pkg.Files {
		collectMachineGlobals(p, f, globals)
	}
	if len(globals) == 0 {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isLaneConfined(fd) {
				continue
			}
			checkLaneConfinedBody(p, fd, globals)
		}
	}
}

// collectMachineGlobals gathers the type-checker objects of every annotated
// declaration: struct fields (the directive in the field's doc or trailing
// comment), var specs, and whole var declarations (the directive on the
// grouped decl covers every spec in it).
func collectMachineGlobals(p *Pass, f *ast.File, globals map[types.Object]bool) {
	defs := p.Pkg.Info.Defs
	addNames := func(names []*ast.Ident) {
		for _, n := range names {
			if obj := defs[n]; obj != nil {
				globals[obj] = true
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Field:
			if hasDirective(n.Doc, MachineGlobalDirective) || hasDirective(n.Comment, MachineGlobalDirective) {
				addNames(n.Names)
			}
		case *ast.GenDecl:
			if hasDirective(n.Doc, MachineGlobalDirective) {
				for _, spec := range n.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						addNames(vs.Names)
					}
				}
			}
		case *ast.ValueSpec:
			if hasDirective(n.Doc, MachineGlobalDirective) || hasDirective(n.Comment, MachineGlobalDirective) {
				addNames(n.Names)
			}
		}
		return true
	})
}

// checkLaneConfinedBody flags every identifier in the function body that
// resolves to a machine-global object. Selector accesses (l.s.now) resolve
// through the Sel identifier's use, so field reads and writes are caught the
// same way as plain variables.
func checkLaneConfinedBody(p *Pass, fd *ast.FuncDecl, globals map[types.Object]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := p.Pkg.Info.Uses[id]; obj != nil && globals[obj] {
			p.Reportf(id.Pos(),
				"%s is lane-confined: %s is machine-global state owned by the serialized merge; route the effect through the lane journal",
				fd.Name.Name, id.Name)
		}
		return true
	})
}

// isLaneConfined reports whether the function's doc comment carries the
// //numalint:lane-confined directive.
func isLaneConfined(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimPrefix(c.Text, "//") == LaneConfinedDirective {
			return true
		}
	}
	return false
}

// hasDirective reports whether any line of the comment group is exactly the
// given //numalint directive.
func hasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.TrimPrefix(c.Text, "//") == directive {
			return true
		}
	}
	return false
}
