package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the expected-diagnostic golden files")

// corpusConfig aims the scoped checks at the corpus packages instead of the
// real tree.
func corpusConfig() Config {
	cfg := DefaultConfig()
	cfg.DeterminismScope = []string{"corpus/determinism"}
	cfg.FaultScope = []string{"corpus/faultpurity"}
	// The callgraph corpus carries its own dispatch roots; in every other
	// corpus neither name resolves, which switches staleness checking off.
	cfg.ConfinementRoots = []string{"corpus/callgraph/bad.Root", "corpus/callgraph/good.Root"}
	return cfg
}

// loadCorpus loads every package directory under testdata/src/<name> with
// the synthetic import path corpus/<name>/<dir>.
func loadCorpus(t *testing.T, l *Loader, name string) []*Package {
	t.Helper()
	base := filepath.Join("testdata", "src", name)
	ents, err := os.ReadDir(base)
	if err != nil {
		t.Fatalf("reading corpus %s: %v", name, err)
	}
	var pkgs []*Package
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		p, err := l.LoadDir(filepath.Join(base, e.Name()), "corpus/"+name+"/"+e.Name())
		if err != nil {
			t.Fatalf("loading corpus %s/%s: %v", name, e.Name(), err)
		}
		pkgs = append(pkgs, p)
	}
	if len(pkgs) == 0 {
		t.Fatalf("corpus %s has no packages", name)
	}
	// The callgraph corpus exercises cross-package traversal into the real
	// internal/directory package, so that package must be part of the
	// analyzed program, not just an import.
	if name == "callgraph" {
		p, err := l.LoadDir(filepath.Join("..", "directory"), "ccnuma/internal/directory")
		if err != nil {
			t.Fatalf("loading internal/directory for callgraph corpus: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs
}

// render prints diagnostics one per line with paths relative to
// testdata/src, the format stored in the golden files.
func render(t *testing.T, diags []Diagnostic) string {
	t.Helper()
	base, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, d := range diags {
		if rel, err := filepath.Rel(base, d.File); err == nil {
			d.File = filepath.ToSlash(rel)
		}
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestCorpus runs the full suite over each corpus and compares the rendered
// diagnostics against the golden files (regenerate with -update). Beyond
// the exact-match check it asserts the polarity the corpus encodes: every
// bad package yields at least one finding and no good package yields any.
func TestCorpus(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	suite := &Suite{Cfg: corpusConfig()}
	for _, name := range []string{"determinism", "hotpath", "tracerguard", "faultpurity", "laneconfined", "callgraph", "laneescape", "directive"} {
		t.Run(name, func(t *testing.T) {
			pkgs := loadCorpus(t, l, name)
			got := render(t, suite.Run(pkgs))

			if !strings.Contains(got, "/bad/") {
				t.Errorf("corpus %s: no findings in the bad package — the check is not firing", name)
			}
			if strings.Contains(got, "/good/") {
				t.Errorf("corpus %s: findings in the good package — false positives:\n%s", name, got)
			}

			golden := filepath.Join("testdata", "golden", name+".txt")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics differ from %s\ngot:\n%swant:\n%s", golden, got, want)
			}
		})
	}
}

// TestDisableCheck verifies the per-check kill switch: with determinism
// disabled, its corpus produces nothing — including no stale-allow report
// for the directive that would otherwise be exercised.
func TestDisableCheck(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	suite := &Suite{Cfg: corpusConfig(), Disabled: map[string]bool{"determinism": true}}
	diags := suite.Run(loadCorpus(t, l, "determinism"))
	for _, d := range diags {
		t.Errorf("unexpected finding with determinism disabled: %s", d)
	}
}

// TestCallGraphEdgeCases asserts per-entry polarity across the dispatch
// shapes the whole-program traversal must handle: each bad entry point is
// flagged through its shape (deep chain, interface, function value,
// recursion, cross-package, closure, staleness) and no good mirror is.
// TestCorpus's golden comparison pins the exact diagnostics; this test keeps
// the coverage honest even across -update runs.
func TestCallGraphEdgeCases(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	suite := &Suite{Cfg: corpusConfig()}
	got := render(t, suite.Run(loadCorpus(t, l, "callgraph")))

	for _, entry := range []string{
		"ViaHelpers", "ViaIface", "ViaHook", "ViaRecursion", "ViaDirectory", "ViaClosure",
	} {
		if !strings.Contains(got, entry+" is lane-confined") {
			t.Errorf("bad entry %s produced no finding:\n%s", entry, got)
		}
	}
	if !strings.Contains(got, "orphan is stale") &&
		!strings.Contains(got, "lane-confined directive on orphan is stale") {
		t.Errorf("stale annotation on orphan not reported:\n%s", got)
	}
	if strings.Contains(got, "/good/") {
		t.Errorf("good mirrors produced findings:\n%s", got)
	}
	if !strings.Contains(got, "FlushPending") && !strings.Contains(got, "directory") {
		t.Errorf("cross-package chain through internal/directory missing:\n%s", got)
	}
}

// TestConfinementGolden pins the machine-readable confinement report for
// the repository itself: the same JSON numalint -confinement-json emits and
// make lint-confinement diffs in CI. Regenerate with -update after changing
// annotations or the analysis.
func TestConfinementGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(filepath.Join(l.ModRoot, "..."))
	if err != nil {
		t.Fatal(err)
	}
	suite := &Suite{Cfg: DefaultConfig()}
	diags, rep := suite.RunReport(pkgs, l.ModRoot)
	for _, d := range diags {
		t.Errorf("real tree: %s", d)
	}
	if rep == nil {
		t.Fatal("no confinement report produced")
	}
	var b strings.Builder
	if err := WriteConfinementJSON(&b, rep); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "confinement.golden.json")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("confinement report differs from %s\ngot:\n%swant:\n%s", golden, got, want)
	}
}

// TestRealTreeClean holds the repository itself to the suite's default
// configuration: the tree must lint clean, so make lint can gate CI.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(filepath.Join(l.ModRoot, "..."))
	if err != nil {
		t.Fatal(err)
	}
	suite := &Suite{Cfg: DefaultConfig()}
	for _, d := range suite.Run(pkgs) {
		t.Errorf("real tree: %s", d)
	}
}
