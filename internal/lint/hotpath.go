package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotpath complements TestStepHotPathZeroAllocs with a source-level gate:
// inside functions annotated //numalint:hotpath (the step chain, miss
// re-scheduling, block/wake, counter flush), constructs that allocate per
// call are errors — closure literals, fmt calls, append that abandons its
// backing slice, and basic values boxed into interfaces.
var hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "flag allocation-inducing constructs (closures, fmt, unpooled append, interface boxing) in //numalint:hotpath functions",
	Run:  runHotpath,
}

func runHotpath(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkHotpathBody(p, fd)
		}
	}
}

func checkHotpathBody(p *Pass, fd *ast.FuncDecl) {
	inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			p.Reportf(n.Pos(),
				"%s is a hot-path function: a closure literal allocates per call; use a registered typed event or a package-level func", fd.Name.Name)
			// The closure body is the reference (allocating) path; one
			// finding per literal is enough.
			return false
		case *ast.CallExpr:
			checkHotCall(p, fd, n, stack)
		}
		return true
	})
}

func checkHotCall(p *Pass, fd *ast.FuncDecl, call *ast.CallExpr, stack []ast.Node) {
	if pkg, name, ok := pkgFunc(calleeFunc(p, call)); ok && pkg == "fmt" {
		p.Reportf(call.Pos(),
			"%s is a hot-path function: fmt.%s allocates and boxes its operands", fd.Name.Name, name)
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := p.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			checkHotAppend(p, fd, call, stack)
			return
		}
	}
	checkBoxing(p, fd, call)
}

// checkHotAppend accepts only the pooled-reuse idiom s = append(s, ...):
// anything else (a fresh variable, an append nested in another expression)
// grows a slice the hot path cannot recycle.
func checkHotAppend(p *Pass, fd *ast.FuncDecl, call *ast.CallExpr, stack []ast.Node) {
	if len(call.Args) >= 1 && len(stack) > 0 {
		if asg, ok := stack[len(stack)-1].(*ast.AssignStmt); ok &&
			(asg.Tok == token.ASSIGN || asg.Tok == token.DEFINE) {
			target := types.ExprString(call.Args[0])
			for i, rhs := range asg.Rhs {
				if rhs == ast.Expr(call) && i < len(asg.Lhs) &&
					types.ExprString(asg.Lhs[i]) == target {
					return
				}
			}
		}
	}
	p.Reportf(call.Pos(),
		"%s is a hot-path function: append must reuse its backing slice (s = append(s, ...)) so a pooled buffer can absorb it", fd.Name.Name)
}

// checkBoxing flags basic-typed arguments passed in interface-typed
// parameter slots: the conversion heap-allocates the value.
func checkBoxing(p *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	tv, ok := p.Pkg.Info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Conversion: T(x) where T is an interface and x a basic value.
		if isIface(tv.Type) && len(call.Args) == 1 && isBasicValue(p, call.Args[0]) {
			p.Reportf(call.Pos(),
				"%s is a hot-path function: converting %s to an interface boxes it on the heap",
				fd.Name.Name, types.ExprString(call.Args[0]))
		}
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if ok {
		checkBoxingArgs(p, fd, call, sig)
	}
}

func checkBoxingArgs(p *Pass, fd *ast.FuncDecl, call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	if params.Len() == 0 || call.Ellipsis.IsValid() {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if isIface(pt) && isBasicValue(p, arg) {
			p.Reportf(arg.Pos(),
				"%s is a hot-path function: passing %s as interface %s boxes it on the heap",
				fd.Name.Name, types.ExprString(arg), pt.String())
		}
	}
}

func isIface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// isBasicValue reports whether the expression is a non-constant basic-typed
// value, i.e. one that an interface conversion would box at runtime.
// Constants are exempt: the compiler materialises them as static interface
// data (panic("msg") allocates nothing).
func isBasicValue(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Kind() != types.UntypedNil && b.Kind() != types.Invalid
}
