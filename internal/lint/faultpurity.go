package lint

import (
	"go/ast"
	"strconv"
)

// faultpurity holds the chaos layer to its reproducibility contract: a fault
// run must replay exactly from its seed, so internal/fault may draw
// randomness only from its private sim.Rand stream and time only from the
// injected virtual clock. Foreign RNG imports and wall-clock reads are
// errors, not warnings.
var faultpurity = &Analyzer{
	Name: "faultpurity",
	Doc:  "forbid foreign RNGs and wall-clock reads in the fault packages (private sim.Rand stream only)",
	Run:  runFaultpurity,
}

// foreignRNG lists the random sources the fault layer must not touch.
var foreignRNG = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

func runFaultpurity(p *Pass) {
	if !inScope(p.Pkg.Path, p.Cfg.FaultScope) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if foreignRNG[path] {
				p.Reportf(imp.Pos(),
					"fault injection may only draw randomness from its private sim.Rand stream, not %s", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg, name, ok := pkgFunc(calleeFunc(p, call)); ok &&
				pkg == "time" && (name == "Now" || name == "Since") {
				p.Reportf(call.Pos(),
					"fault injection must use the injected virtual clock, not time.%s", name)
			}
			return true
		})
	}
}
