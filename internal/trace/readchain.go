package trace

import "ccnuma/internal/mem"

// A read chain (Figure 4) is a string of read misses to a page from one
// processor, terminated by a write from any processor to that page. Long
// chains mark pages that would profit from replication.

// ChainAnalysis is the Figure-4 result: for each threshold, the fraction of
// data read misses that belong to chains of at least that length.
type ChainAnalysis struct {
	// Thresholds are the chain-length cut-offs (the paper's X axis).
	Thresholds []int
	// FractionAtLeast[i] is the fraction of data misses in chains of length
	// >= Thresholds[i].
	FractionAtLeast []float64
	// TotalDataMisses is the denominator (read misses considered).
	TotalDataMisses uint64
}

// DefaultThresholds mirrors the paper's log-scale X axis.
var DefaultThresholds = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// ReadChains computes the Figure-4 distribution over the trace's user-mode
// data cache misses. Instruction fetches are excluded (code is trivially
// read-only); TLB records are ignored.
func ReadChains(t *Trace, thresholds []int) ChainAnalysis {
	if len(thresholds) == 0 {
		thresholds = DefaultThresholds
	}
	// open[page][cpu] is the length of the currently-open read chain.
	type key struct {
		page mem.GPage
		cpu  mem.CPUID
	}
	open := map[key]uint64{}
	// hist[l] = number of misses in chains of exactly length l, bucketed by
	// chain length (we accumulate chain lengths as they close).
	var chains []uint64

	closeChain := func(k key) {
		if n := open[k]; n > 0 {
			chains = append(chains, n)
			delete(open, k)
		}
	}

	for _, r := range t.Records {
		if r.Src != CacheMiss || r.Kind.IsInstr() {
			continue
		}
		if r.Kind.IsWrite() {
			// A write from any processor terminates every open chain on the
			// page.
			for k := range open {
				if k.page == r.Page {
					closeChain(k)
				}
			}
			continue
		}
		open[key{r.Page, r.CPU}]++
	}
	for k := range open {
		closeChain(k)
	}

	var total uint64
	for _, n := range chains {
		total += n
	}
	out := ChainAnalysis{
		Thresholds:      thresholds,
		FractionAtLeast: make([]float64, len(thresholds)),
		TotalDataMisses: total,
	}
	if total == 0 {
		return out
	}
	for i, th := range thresholds {
		var in uint64
		for _, n := range chains {
			if n >= uint64(th) {
				in += n
			}
		}
		out.FractionAtLeast[i] = float64(in) / float64(total)
	}
	return out
}

// FractionAt returns the fraction of misses in chains >= length, using the
// nearest computed threshold at or below length.
func (c ChainAnalysis) FractionAt(length int) float64 {
	best := 0.0
	found := false
	for i, th := range c.Thresholds {
		if th <= length {
			best = c.FractionAtLeast[i]
			found = true
		}
	}
	if !found && len(c.FractionAtLeast) > 0 {
		return c.FractionAtLeast[0]
	}
	return best
}
