// Package trace defines the miss-trace format of Section 8: the paper
// non-intrusively records every second-level cache miss and every TLB miss
// (processor, page, read/write, user/kernel, timestamp) and drives a policy
// simulator from the traces. This package provides the record type, a
// compact binary encoding, and the read-chain analysis of Figure 4.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"ccnuma/internal/mem"
	"ccnuma/internal/sim"
)

// Source distinguishes the two miss streams in a trace.
type Source uint8

const (
	// CacheMiss records a second-level cache miss.
	CacheMiss Source = iota
	// TLBMiss records a TLB miss.
	TLBMiss
)

// Record is one miss event.
type Record struct {
	At     sim.Time
	Page   mem.GPage
	CPU    mem.CPUID
	Kind   mem.AccessKind
	Kernel bool
	Src    Source
}

// Trace is an in-memory miss trace, ordered by time.
type Trace struct {
	Records []Record
}

// WithCapacity returns an empty trace whose record buffer holds n records
// before growing. Callers that can bound the expected record volume (the
// machine simulator knows its step budget) avoid repeated re-allocation of a
// multi-megabyte buffer during the run.
func WithCapacity(n int) *Trace {
	if n < 0 {
		n = 0
	}
	return &Trace{Records: make([]Record, 0, n)}
}

// Append adds a record. It rides the simulator's miss path, so the record
// buffer is preallocated by run scale (WithCapacity) and reused in place.
//
//numalint:hotpath
func (t *Trace) Append(r Record) { t.Records = append(t.Records, r) }

// Sort orders the records by time (stable). The machine simulator emits
// records per-CPU in slices, so cross-CPU ordering needs one final sort.
func (t *Trace) Sort() {
	sort.SliceStable(t.Records, func(i, j int) bool {
		return t.Records[i].At < t.Records[j].At
	})
}

// Len returns the record count.
func (t *Trace) Len() int { return len(t.Records) }

// Filter returns the records matching keep, preserving order.
func (t *Trace) Filter(keep func(Record) bool) *Trace {
	out := &Trace{}
	for _, r := range t.Records {
		if keep(r) {
			out.Append(r)
		}
	}
	return out
}

// CacheMisses returns only the cache-miss records.
func (t *Trace) CacheMisses() *Trace {
	return t.Filter(func(r Record) bool { return r.Src == CacheMiss })
}

// TLBMisses returns only the TLB-miss records.
func (t *Trace) TLBMisses() *Trace {
	return t.Filter(func(r Record) bool { return r.Src == TLBMiss })
}

// KernelOnly returns only kernel-mode records (the Section 8.2 study).
func (t *Trace) KernelOnly() *Trace {
	return t.Filter(func(r Record) bool { return r.Kernel })
}

// UserOnly returns only user-mode records.
func (t *Trace) UserOnly() *Trace {
	return t.Filter(func(r Record) bool { return !r.Kernel })
}

// Duration returns the time of the last record (traces start at 0).
func (t *Trace) Duration() sim.Time {
	if len(t.Records) == 0 {
		return 0
	}
	return t.Records[len(t.Records)-1].At
}

// MaxPage returns the highest page id referenced plus one (a table size).
func (t *Trace) MaxPage() int {
	max := mem.GPage(0)
	for _, r := range t.Records {
		if r.Page > max {
			max = r.Page
		}
	}
	if len(t.Records) == 0 {
		return 0
	}
	return int(max) + 1
}

const recordSize = 16

func encode(buf []byte, r Record) {
	binary.LittleEndian.PutUint64(buf[0:8], uint64(r.At))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(r.Page))
	buf[12] = byte(r.CPU)
	flags := byte(r.Kind) & 0x3
	if r.Kernel {
		flags |= 1 << 2
	}
	if r.Src == TLBMiss {
		flags |= 1 << 3
	}
	buf[13] = flags
	buf[14], buf[15] = 0, 0
}

func decode(buf []byte) Record {
	r := Record{
		At:   sim.Time(binary.LittleEndian.Uint64(buf[0:8])),
		Page: mem.GPage(binary.LittleEndian.Uint32(buf[8:12])),
		CPU:  mem.CPUID(buf[12]),
	}
	flags := buf[13]
	r.Kind = mem.AccessKind(flags & 0x3)
	r.Kernel = flags&(1<<2) != 0
	if flags&(1<<3) != 0 {
		r.Src = TLBMiss
	}
	return r
}

// Write encodes the trace to w in the 16-byte binary record format.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var buf [recordSize]byte
	for _, r := range t.Records {
		encode(buf[:], r)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	t := &Trace{}
	var buf [recordSize]byte
	for {
		_, err := io.ReadFull(br, buf[:])
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: short record: %w", err)
		}
		t.Append(decode(buf[:]))
	}
}
