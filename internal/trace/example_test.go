package trace_test

import (
	"fmt"

	"ccnuma/internal/mem"
	"ccnuma/internal/sim"
	"ccnuma/internal/trace"
)

// Read chains (Figure 4): a string of read misses to a page from one
// processor, terminated by any processor's write to that page. Here CPU 0
// reads page 1 six times before CPU 1 writes it, then reads twice more.
func ExampleReadChains() {
	tr := &trace.Trace{}
	at := sim.Time(0)
	add := func(cpu int, kind mem.AccessKind) {
		tr.Append(trace.Record{At: at, CPU: mem.CPUID(cpu), Page: 1, Kind: kind})
		at += 100
	}
	for i := 0; i < 6; i++ {
		add(0, mem.DataRead)
	}
	add(1, mem.DataWrite)
	add(0, mem.DataRead)
	add(0, mem.DataRead)

	c := trace.ReadChains(tr, []int{1, 4, 8})
	for i, th := range c.Thresholds {
		fmt.Printf("chains >= %d cover %.0f%% of data read misses\n",
			th, 100*c.FractionAtLeast[i])
	}
	// Output:
	// chains >= 1 cover 100% of data read misses
	// chains >= 4 cover 75% of data read misses
	// chains >= 8 cover 0% of data read misses
}
