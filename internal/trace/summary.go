package trace

import (
	"fmt"
	"sort"
	"strings"

	"ccnuma/internal/mem"
)

// Summary is an aggregate description of a trace: the counts the paper's
// workload characterisation (Table 3's miss columns) and Section 8 analyses
// start from.
type Summary struct {
	Records     int
	CacheMisses uint64
	TLBMisses   uint64
	// Cache-miss splits.
	Reads, Writes, IFetches uint64
	KernelMisses            uint64
	// PerCPU counts cache misses by processor.
	PerCPU map[mem.CPUID]uint64
	// Pages is the number of distinct pages with at least one cache miss.
	Pages int
	// HottestPages lists the top pages by cache-miss count, descending.
	HottestPages []PageCount
}

// PageCount pairs a page with its cache-miss count.
type PageCount struct {
	Page  mem.GPage
	Count uint64
}

// Summarize scans the trace once and aggregates it. top bounds the hottest-
// pages list (0 = none).
func Summarize(t *Trace, top int) Summary {
	s := Summary{Records: t.Len(), PerCPU: map[mem.CPUID]uint64{}}
	perPage := map[mem.GPage]uint64{}
	for _, r := range t.Records {
		if r.Src == TLBMiss {
			s.TLBMisses++
			continue
		}
		s.CacheMisses++
		s.PerCPU[r.CPU]++
		perPage[r.Page]++
		switch r.Kind {
		case mem.DataWrite:
			s.Writes++
		case mem.InstrFetch:
			s.IFetches++
		default:
			s.Reads++
		}
		if r.Kernel {
			s.KernelMisses++
		}
	}
	s.Pages = len(perPage)
	if top > 0 {
		s.HottestPages = make([]PageCount, 0, len(perPage))
		for p, n := range perPage {
			s.HottestPages = append(s.HottestPages, PageCount{Page: p, Count: n})
		}
		sort.Slice(s.HottestPages, func(i, j int) bool {
			if s.HottestPages[i].Count != s.HottestPages[j].Count {
				return s.HottestPages[i].Count > s.HottestPages[j].Count
			}
			return s.HottestPages[i].Page < s.HottestPages[j].Page
		})
		if len(s.HottestPages) > top {
			s.HottestPages = s.HottestPages[:top]
		}
	}
	return s
}

// String renders the summary in a compact human-readable block.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "records %d: %d cache misses (%d read / %d write / %d ifetch, %d kernel), %d TLB misses, %d pages touched\n",
		s.Records, s.CacheMisses, s.Reads, s.Writes, s.IFetches, s.KernelMisses, s.TLBMisses, s.Pages)
	if len(s.PerCPU) > 0 {
		cpus := make([]int, 0, len(s.PerCPU))
		for c := range s.PerCPU {
			cpus = append(cpus, int(c))
		}
		sort.Ints(cpus)
		b.WriteString("per-CPU cache misses:")
		for _, c := range cpus {
			fmt.Fprintf(&b, " cpu%d=%d", c, s.PerCPU[mem.CPUID(c)])
		}
		b.WriteByte('\n')
	}
	for i, pc := range s.HottestPages {
		fmt.Fprintf(&b, "hot page #%d: page %d with %d misses\n", i+1, pc.Page, pc.Count)
	}
	return b.String()
}
