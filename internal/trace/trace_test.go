package trace

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"ccnuma/internal/mem"
	"ccnuma/internal/sim"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(at int64, page uint32, cpu uint8, kind uint8, kernel bool, tlbm bool) bool {
		if at < 0 {
			at = -at
		}
		r := Record{
			At:     sim.Time(at),
			Page:   mem.GPage(page),
			CPU:    mem.CPUID(cpu),
			Kind:   mem.AccessKind(kind % 3),
			Kernel: kernel,
		}
		if tlbm {
			r.Src = TLBMiss
		}
		var buf [recordSize]byte
		encode(buf[:], r)
		return decode(buf[:]) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr := &Trace{}
	rng := sim.NewRand(1)
	for i := 0; i < 1000; i++ {
		tr.Append(Record{
			At:     sim.Time(i * 10),
			Page:   mem.GPage(rng.Intn(100)),
			CPU:    mem.CPUID(rng.Intn(8)),
			Kind:   mem.AccessKind(rng.Intn(3)),
			Kernel: rng.Bool(0.3),
			Src:    Source(rng.Intn(2)),
		})
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 1000*recordSize {
		t.Fatalf("encoded size = %d, want %d", buf.Len(), 1000*recordSize)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Records, tr.Records) {
		t.Fatal("round trip mismatch")
	}
}

func TestReadRejectsShortRecord(t *testing.T) {
	if _, err := Read(bytes.NewReader(make([]byte, recordSize+3))); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestFilters(t *testing.T) {
	tr := &Trace{}
	tr.Append(Record{Src: CacheMiss, Kernel: false})
	tr.Append(Record{Src: TLBMiss, Kernel: false})
	tr.Append(Record{Src: CacheMiss, Kernel: true})
	if tr.CacheMisses().Len() != 2 || tr.TLBMisses().Len() != 1 {
		t.Fatal("source filters wrong")
	}
	if tr.KernelOnly().Len() != 1 || tr.UserOnly().Len() != 2 {
		t.Fatal("mode filters wrong")
	}
}

func TestDurationAndMaxPage(t *testing.T) {
	tr := &Trace{}
	if tr.Duration() != 0 || tr.MaxPage() != 0 {
		t.Fatal("empty trace stats wrong")
	}
	tr.Append(Record{At: 5, Page: 3})
	tr.Append(Record{At: 9, Page: 7})
	if tr.Duration() != 9 || tr.MaxPage() != 8 {
		t.Fatalf("duration=%v maxpage=%d", tr.Duration(), tr.MaxPage())
	}
}

func readRec(at int, cpu int, page int) Record {
	return Record{At: sim.Time(at), CPU: mem.CPUID(cpu), Page: mem.GPage(page), Kind: mem.DataRead}
}

func writeRec(at int, cpu int, page int) Record {
	return Record{At: sim.Time(at), CPU: mem.CPUID(cpu), Page: mem.GPage(page), Kind: mem.DataWrite}
}

func TestReadChainsBasic(t *testing.T) {
	tr := &Trace{}
	// CPU0 reads page 1 four times, then CPU1 writes it: one chain of 4.
	for i := 0; i < 4; i++ {
		tr.Append(readRec(i, 0, 1))
	}
	tr.Append(writeRec(10, 1, 1))
	// CPU2 reads page 2 twice, never written: chain of 2.
	tr.Append(readRec(20, 2, 2))
	tr.Append(readRec(21, 2, 2))
	c := ReadChains(tr, []int{1, 2, 4, 8})
	if c.TotalDataMisses != 6 {
		t.Fatalf("total = %d, want 6 (writes excluded)", c.TotalDataMisses)
	}
	want := []float64{1.0, 1.0, 4.0 / 6.0, 0}
	for i := range want {
		if got := c.FractionAtLeast[i]; got != want[i] {
			t.Errorf("threshold %d: %v, want %v", c.Thresholds[i], got, want[i])
		}
	}
}

func TestReadChainsWriteTerminatesAllCPUs(t *testing.T) {
	tr := &Trace{}
	tr.Append(readRec(0, 0, 1))
	tr.Append(readRec(1, 1, 1))
	tr.Append(writeRec(2, 0, 1)) // terminates both CPUs' chains
	tr.Append(readRec(3, 0, 1))
	c := ReadChains(tr, []int{1, 2})
	// Three chains of length 1 each.
	if c.TotalDataMisses != 3 {
		t.Fatalf("total = %d", c.TotalDataMisses)
	}
	if c.FractionAtLeast[1] != 0 {
		t.Fatalf("no chain should reach length 2, got %v", c.FractionAtLeast[1])
	}
}

func TestReadChainsIgnoresInstrAndTLB(t *testing.T) {
	tr := &Trace{}
	tr.Append(Record{Kind: mem.InstrFetch, Page: 1})
	tr.Append(Record{Kind: mem.DataRead, Page: 1, Src: TLBMiss})
	c := ReadChains(tr, nil)
	if c.TotalDataMisses != 0 {
		t.Fatalf("counted %d misses, want 0", c.TotalDataMisses)
	}
}

func TestReadChainsTotalsEqualDataReadMisses(t *testing.T) {
	rng := sim.NewRand(3)
	tr := &Trace{}
	var reads uint64
	for i := 0; i < 5000; i++ {
		k := mem.DataRead
		if rng.Bool(0.2) {
			k = mem.DataWrite
		} else {
			reads++
		}
		tr.Append(Record{At: sim.Time(i), CPU: mem.CPUID(rng.Intn(4)),
			Page: mem.GPage(rng.Intn(30)), Kind: k})
	}
	c := ReadChains(tr, nil)
	if c.TotalDataMisses != reads {
		t.Fatalf("chain totals %d != read misses %d", c.TotalDataMisses, reads)
	}
	// Monotone non-increasing CDF.
	for i := 1; i < len(c.FractionAtLeast); i++ {
		if c.FractionAtLeast[i] > c.FractionAtLeast[i-1] {
			t.Fatal("chain CDF not monotone")
		}
	}
}

func TestFractionAt(t *testing.T) {
	c := ChainAnalysis{Thresholds: []int{1, 512}, FractionAtLeast: []float64{1.0, 0.6}}
	if got := c.FractionAt(512); got != 0.6 {
		t.Fatalf("FractionAt(512) = %v", got)
	}
	if got := c.FractionAt(600); got != 0.6 {
		t.Fatalf("FractionAt(600) = %v", got)
	}
	if got := c.FractionAt(1); got != 1.0 {
		t.Fatalf("FractionAt(1) = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	tr := &Trace{}
	tr.Append(Record{CPU: 0, Page: 1, Kind: mem.DataRead})
	tr.Append(Record{CPU: 0, Page: 1, Kind: mem.DataWrite, Kernel: true})
	tr.Append(Record{CPU: 1, Page: 2, Kind: mem.InstrFetch})
	tr.Append(Record{CPU: 1, Page: 2, Src: TLBMiss, Kind: mem.DataRead})
	s := Summarize(tr, 2)
	if s.Records != 4 || s.CacheMisses != 3 || s.TLBMisses != 1 {
		t.Fatalf("summary counts: %+v", s)
	}
	if s.Reads != 1 || s.Writes != 1 || s.IFetches != 1 || s.KernelMisses != 1 {
		t.Fatalf("kind split: %+v", s)
	}
	if s.Pages != 2 || s.PerCPU[0] != 2 || s.PerCPU[1] != 1 {
		t.Fatalf("page/cpu split: %+v", s)
	}
	if len(s.HottestPages) != 2 || s.HottestPages[0].Page != 1 || s.HottestPages[0].Count != 2 {
		t.Fatalf("hottest: %+v", s.HottestPages)
	}
	if len(s.String()) == 0 {
		t.Fatal("empty render")
	}
}

func TestSummarizeNoTop(t *testing.T) {
	tr := &Trace{}
	tr.Append(Record{Page: 1, Kind: mem.DataRead})
	s := Summarize(tr, 0)
	if s.HottestPages != nil {
		t.Fatal("hottest pages collected with top=0")
	}
}
