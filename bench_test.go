package ccnuma

// The benchmarks regenerate every table and figure of the paper's
// evaluation (see DESIGN.md, section "Per-experiment index"). Each runs the
// corresponding experiment from internal/report against a shared, memoized
// harness, logs the rendered paper-vs-measured table (visible with -v and
// in bench_output.txt), and reports the experiment's headline numbers as
// custom benchmark metrics.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// BENCH_SCALE (default 0.5) trades fidelity for speed.

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"ccnuma/internal/core"
	"ccnuma/internal/report"
	"ccnuma/internal/topology"
	"ccnuma/internal/trace"
	"ccnuma/internal/tracesim"
)

var (
	benchOnce sync.Once
	benchH    *report.Harness
)

func harness() *report.Harness {
	benchOnce.Do(func() {
		scale := 0.5
		if v := os.Getenv("BENCH_SCALE"); v != "" {
			if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
				scale = f
			}
		}
		benchH = report.NewHarness(scale, 42)
	})
	return benchH
}

// runExperiment executes one registered experiment per iteration (memoized
// simulations make repeat iterations cheap) and logs the rendered result.
func runExperiment(b *testing.B, id string) string {
	b.Helper()
	e, err := report.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	h := harness()
	var out string
	for i := 0; i < b.N; i++ {
		out = e.Run(h)
	}
	b.Logf("\n%s — %s\n%s", e.ID, e.Title, out)
	return out
}

func impr(b *testing.B, name string, base, next float64) {
	if base > 0 {
		b.ReportMetric(100*(base-next)/base, name)
	}
}

// BenchmarkTable3Characterization regenerates Table 3: per-workload CPU-time
// split and cache-stall shares under first touch.
func BenchmarkTable3Characterization(b *testing.B) {
	runExperiment(b, "T3")
	h := harness()
	for _, wl := range []string{"engineering", "pmake"} {
		r := h.FT(wl)
		b.ReportMetric(100*float64(r.Agg.Idle)/float64(r.Agg.Total()), wl[:4]+"_idle_%")
	}
}

// BenchmarkFigure3BasePolicy regenerates Figure 3: the base
// migration/replication policy against first touch on the four user-stall
// workloads.
func BenchmarkFigure3BasePolicy(b *testing.B) {
	runExperiment(b, "F3")
	h := harness()
	for _, wl := range []string{"engineering", "raytrace", "splash", "database"} {
		ft, mr := h.FT(wl), h.MigRep(wl)
		impr(b, wl[:4]+"_impr_%", float64(ft.Agg.NonIdle()), float64(mr.Agg.NonIdle()))
	}
}

// BenchmarkTable4Actions regenerates Table 4: the breakdown of actions taken
// on hot pages.
func BenchmarkTable4Actions(b *testing.B) {
	runExperiment(b, "T4")
	h := harness()
	mig, rep, _, _ := h.MigRep("engineering").Actions.Percent()
	b.ReportMetric(mig, "engr_migrate_%")
	b.ReportMetric(rep, "engr_replicate_%")
	_, _, _, nopage := h.MigRep("splash").Actions.Percent()
	b.ReportMetric(nopage, "splash_nopage_%")
}

// BenchmarkContentionReduction regenerates Section 7.1.2: the system-wide
// reduction in remote-handler invocations, queueing, and occupancy, plus the
// zero-network-delay run.
func BenchmarkContentionReduction(b *testing.B) {
	runExperiment(b, "S7.1.2")
	h := harness()
	ft, mr := h.FT("engineering"), h.MigRep("engineering")
	impr(b, "remote_handlers_%", float64(ft.Contention.RemoteHandlerInvocations),
		float64(mr.Contention.RemoteHandlerInvocations))
	impr(b, "local_read_lat_%", float64(ft.Contention.AvgLocalReadLatency),
		float64(mr.Contention.AvgLocalReadLatency))
}

// BenchmarkFigure5CCNOW regenerates Figure 5: CC-NUMA vs CC-NOW for the
// engineering workload.
func BenchmarkFigure5CCNOW(b *testing.B) {
	runExperiment(b, "F5")
	h := harness()
	ft := h.Run("engineering", core.Options{Config: topology.CCNOW()})
	mr := h.Run("engineering", core.Options{Config: topology.CCNOW(), Dynamic: true})
	impr(b, "ccnow_impr_%", float64(ft.Agg.NonIdle()), float64(mr.Agg.NonIdle()))
	b.ReportMetric(float64(ft.AvgRemoteLatency), "ccnow_obs_remote_ns")
}

// BenchmarkTable5StepLatency regenerates Table 5: mean per-step latencies of
// replication and migration operations (paper-equivalent microseconds).
func BenchmarkTable5StepLatency(b *testing.B) {
	runExperiment(b, "T5")
	h := harness()
	scale := 1.0 / topology.CCNUMA().CostScale
	pb := h.MigRep("engineering").Agg.Pager
	b.ReportMetric(pb.OpLatency[0].MeanTotal()*scale, "engr_repl_us")
	b.ReportMetric(pb.OpLatency[1].MeanTotal()*scale, "engr_migr_us")
}

// BenchmarkTable6KernelOverhead regenerates Table 6: kernel overhead by
// function, plus the TLB-holder-tracking and directory-copy ablations.
func BenchmarkTable6KernelOverhead(b *testing.B) {
	runExperiment(b, "T6")
	h := harness()
	pb := h.MigRep("engineering").Agg.Pager
	b.ReportMetric(pb.Percent(4), "engr_tlbflush_%") // stats.FnTLBFlush
	b.ReportMetric(pb.Percent(2), "engr_alloc_%")    // stats.FnPageAlloc
}

// BenchmarkInfoSpaceOverhead regenerates Section 7.2.1's counter space
// overhead analysis.
func BenchmarkInfoSpaceOverhead(b *testing.B) {
	runExperiment(b, "S7.2.1")
}

// BenchmarkReplicationSpace regenerates Section 7.2.3: the memory cost of
// policy-driven replication vs replicate-code-on-first-touch.
func BenchmarkReplicationSpace(b *testing.B) {
	runExperiment(b, "S7.2.3")
	h := harness()
	b.ReportMetric(100*h.MigRep("engineering").Alloc.ReplicaOverhead(), "engr_policy_%")
	ab := h.Run("engineering", core.Options{Dynamic: true, ReplicateCodeOnFirstTouch: true})
	b.ReportMetric(100*ab.Alloc.ReplicaOverhead(), "engr_firsttouch_%")
}

// BenchmarkFigure4ReadChains regenerates Figure 4: the read-chain CDF over
// user data misses.
func BenchmarkFigure4ReadChains(b *testing.B) {
	runExperiment(b, "F4")
	h := harness()
	c := trace.ReadChains(h.Trace("raytrace").UserOnly(), trace.DefaultThresholds)
	b.ReportMetric(100*c.FractionAt(512), "ray_chain512_%")
}

// BenchmarkFigure6Policies regenerates Figure 6: the six policies over the
// recorded miss traces.
func BenchmarkFigure6Policies(b *testing.B) {
	runExperiment(b, "F6")
	h := harness()
	tr := h.Trace("engineering").UserOnly()
	cfg := tracesim.DefaultConfig(8)
	outs := tracesim.SimulateAll(tr, cfg)
	rr := float64(outs[0].Total())
	b.ReportMetric(float64(outs[2].Total())/rr, "engr_pf_norm")
	b.ReportMetric(float64(outs[5].Total())/rr, "engr_migrep_norm")
}

// BenchmarkFigure7PmakeKernel regenerates Figure 7: the policies applied to
// the pmake kernel miss trace.
func BenchmarkFigure7PmakeKernel(b *testing.B) {
	runExperiment(b, "F7")
	h := harness()
	tr := h.Trace("pmake").KernelOnly()
	cfg := tracesim.DefaultConfig(8)
	ft := tracesim.Simulate(tr, cfg, tracesim.FT)
	mr := tracesim.Simulate(tr, cfg, tracesim.MigRep)
	b.ReportMetric(float64(mr.Total())/float64(ft.Total()), "kernel_migrep_vs_ft")
}

// BenchmarkFigure8Metrics regenerates Figure 8: full/sampled cache and TLB
// information sources.
func BenchmarkFigure8Metrics(b *testing.B) {
	runExperiment(b, "F8")
	h := harness()
	tr := h.Trace("engineering").UserOnly()
	cfg := tracesim.DefaultConfig(8)
	outs := tracesim.SimulateMetrics(tr, cfg)
	b.ReportMetric(float64(outs[1].Total())/float64(outs[0].Total()), "sc_vs_fc")
	b.ReportMetric(float64(outs[2].Total())/float64(outs[0].Total()), "ft_vs_fc")
}

// BenchmarkFigure9Trigger regenerates Figure 9: the trigger-threshold sweep.
func BenchmarkFigure9Trigger(b *testing.B) {
	runExperiment(b, "F9")
}

// BenchmarkSharingThreshold regenerates Section 8.4's sharing-threshold
// sensitivity check.
func BenchmarkSharingThreshold(b *testing.B) {
	runExperiment(b, "S8.4")
}

// BenchmarkFullSystemEngineering measures raw simulator throughput: one
// complete engineering run per iteration (not memoized).
func BenchmarkFullSystemEngineering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := report.NewHarness(0.25, uint64(i+1))
		r := h.FT("engineering")
		b.ReportMetric(float64(r.Steps)/float64(b.Elapsed().Seconds()*1e6), "ksteps/s")
	}
}

// BenchmarkShardScaling measures full-system throughput across the engine's
// drive modes: one complete engineering run per iteration. The serial points
// (workers=0) sweep the 1-lane (single heap), 2-lane, and 4-lane engines and
// record the merge's bookkeeping overhead; the epoch-mode points (workers>=1)
// drive planner-cleared guarded windows concurrently and record what the
// confinement planner's admissible windows buy back. Results are
// byte-identical at every point (the shard- and epoch-neutrality tests gate
// that), so ksteps/s is the only axis the curve varies.
func BenchmarkShardScaling(b *testing.B) {
	for _, pt := range []struct{ shards, workers int }{
		{1, 0}, {2, 0}, {4, 0},
		{2, 2}, {4, 2}, {4, 4},
	} {
		b.Run(fmt.Sprintf("shards=%d/workers=%d", pt.shards, pt.workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := report.NewHarness(0.25, uint64(i+1))
				h.Shards = pt.shards
				h.EpochWorkers = pt.workers
				r := h.FT("engineering")
				b.ReportMetric(float64(r.Steps)/float64(b.Elapsed().Seconds()*1e6), "ksteps/s")
			}
		})
	}
}

// BenchmarkTraceSimThroughput measures the Section-8 simulator's record
// throughput over a cached trace.
func BenchmarkTraceSimThroughput(b *testing.B) {
	h := harness()
	tr := h.Trace("raytrace").UserOnly()
	cfg := tracesim.DefaultConfig(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tracesim.Simulate(tr, cfg, tracesim.MigRep)
	}
	b.ReportMetric(float64(tr.Len()), "records")
}

// BenchmarkExtWriteSharedMigration regenerates extension X1: migrating
// write-shared pages toward the heaviest writer (Section 7.1.2's sketch).
func BenchmarkExtWriteSharedMigration(b *testing.B) {
	runExperiment(b, "X1")
}

// BenchmarkExtColdReplicaReclaim regenerates extension X2: bounding the
// replication space overhead via interval-based reclamation.
func BenchmarkExtColdReplicaReclaim(b *testing.B) {
	runExperiment(b, "X2")
	h := harness()
	rec := h.Run("raytrace", core.Options{Dynamic: true, ReclaimColdReplicas: true})
	b.ReportMetric(100*rec.Alloc.ReplicaOverhead(), "reclaim_space_%")
}

// BenchmarkExtAdaptiveTrigger regenerates extension X3: the self-adjusting
// trigger threshold.
func BenchmarkExtAdaptiveTrigger(b *testing.B) {
	runExperiment(b, "X3")
}

// BenchmarkExtGroupedCounters regenerates extension X4: shared per-group
// miss counters (space vs policy quality).
func BenchmarkExtGroupedCounters(b *testing.B) {
	runExperiment(b, "X4")
}

// BenchmarkAblationStalePTE regenerates ablation X5: the paper's Splash
// limitation (no pte remap when a local replica already exists).
func BenchmarkAblationStalePTE(b *testing.B) {
	runExperiment(b, "X5")
}
