// Command tracesim runs the Section-8 trace-driven policy comparison: it
// reads a miss trace (produced by numasim -trace, or generates one for a
// named workload) and prints each policy's stall, overhead, and actions.
//
// Usage:
//
//	tracesim -workload raytrace                # generate + compare policies
//	tracesim -in misses.trc -nodes 8           # compare over a saved trace
//	tracesim -workload engineering -metrics    # Figure-8 metric comparison
//	tracesim -workload splash -kernel          # kernel misses only (Fig 7)
package main

import (
	"flag"
	"fmt"
	"os"

	"ccnuma/internal/core"
	"ccnuma/internal/policy"
	"ccnuma/internal/trace"
	"ccnuma/internal/tracesim"
	"ccnuma/internal/workload"
)

func main() {
	var (
		wl      = flag.String("workload", "", "generate a trace for this workload")
		in      = flag.String("in", "", "read a binary trace from this file")
		nodes   = flag.Int("nodes", 8, "machine nodes (used with -in)")
		scale   = flag.Float64("scale", 1.0, "workload scale factor")
		seed    = flag.Uint64("seed", 42, "random seed")
		trigger = flag.Uint("trigger", 0, "trigger threshold (0 = workload default)")
		metrics = flag.Bool("metrics", false, "compare FC/SC/FT/ST metrics instead of policies")
		kernel  = flag.Bool("kernel", false, "use only kernel-mode misses (Section 8.2)")
		user    = flag.Bool("user", true, "use only user-mode misses")
		summary = flag.Bool("summary", false, "print a trace summary before the comparison")
	)
	flag.Parse()

	var tr *trace.Trace
	trig := uint16(128)
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		tr, err = trace.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	case *wl != "":
		build, err := workload.ByName(*wl)
		if err != nil {
			fatal(err)
		}
		spec := build(*scale, *seed)
		trig = spec.Trigger
		if spec.Nodes > 0 {
			*nodes = spec.Nodes
		}
		res, err := core.Run(spec, core.Options{Seed: *seed, CollectTrace: true})
		if err != nil {
			fatal(err)
		}
		tr = res.Trace
		fmt.Printf("generated %d miss records from %s (FT run, %v)\n\n", tr.Len(), *wl, res.Elapsed)
	default:
		fatal(fmt.Errorf("need -workload or -in"))
	}

	if *kernel {
		tr = tr.KernelOnly()
	} else if *user {
		tr = tr.UserOnly()
	}
	if *trigger > 0 {
		trig = uint16(*trigger)
	}
	if *summary {
		fmt.Print(trace.Summarize(tr, 5))
		fmt.Println()
	}

	cfg := tracesim.DefaultConfig(*nodes)
	cfg.Params = policy.Base().WithTrigger(trig)

	if *metrics {
		fmt.Println("metric comparison (Mig/Rep under each information source):")
		for _, o := range tracesim.SimulateMetrics(tr, cfg) {
			fmt.Printf("  %-3s %s\n", o.Metric, o)
		}
		return
	}
	fmt.Println("policy comparison (Section 8 contentionless model):")
	outs := tracesim.SimulateAll(tr, cfg)
	base := outs[0].Total()
	for _, o := range outs {
		fmt.Printf("  %s  norm=%.3f\n", o, float64(o.Total())/float64(base))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracesim:", err)
	os.Exit(1)
}
