// Command numalint runs the repository's custom static-analysis suite over
// the given packages (see internal/lint): determinism, hotpath, tracerguard,
// and faultpurity checks plus directive hygiene. It exits 1 when any
// diagnostic is reported and 2 when loading or type-checking fails, so CI
// can gate on a clean tree.
//
// Usage:
//
//	numalint [-json] [-confinement-json] [-<check>=false ...] [packages]
//
// Packages default to ./... . Findings print as file:line:col: check:
// message, or as a JSON array with -json. A finding is suppressed by a
// //numalint:allow <check> <reason> directive on its line or the line above.
//
// -confinement-json additionally prints the whole-program confinement
// report to stdout: one entry per //numalint:lane-confined function with
// its proven/stale verdict, violation and escape counts, and the number of
// audited allow cuts its proof leans on (diagnostics, if any, go to stderr
// in that mode). The committed golden lives at
// internal/lint/testdata/confinement.golden.json and make lint-confinement
// fails when the two diverge.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ccnuma/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	confJSON := flag.Bool("confinement-json", false,
		"emit the whole-program confinement report as JSON (diagnostics go to stderr)")
	list := flag.Bool("list", false, "list the suite's checks and exit")
	enabled := map[string]*bool{}
	for _, a := range lint.Analyzers() {
		enabled[a.Name] = flag.Bool(a.Name, true, a.Doc)
	}
	enabled[lint.DirectiveCheck] = flag.Bool(lint.DirectiveCheck, true,
		"validate //numalint directives (malformed, unknown check, suppresses nothing)")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-12s %s\n", lint.DirectiveCheck, "directive hygiene (always-on unless -directive=false)")
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "numalint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "numalint:", err)
		os.Exit(2)
	}

	suite := &lint.Suite{Cfg: lint.DefaultConfig(), Disabled: map[string]bool{}}
	for name, on := range enabled {
		if !*on {
			suite.Disabled[name] = true
		}
	}

	diags, rep := suite.RunReport(pkgs, loader.ModRoot)
	if *confJSON && rep == nil {
		fmt.Fprintln(os.Stderr, "numalint: -confinement-json requires laneconfined or laneescape enabled")
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].File); err == nil && !filepath.IsAbs(rel) {
			diags[i].File = rel
		}
	}

	switch {
	case *confJSON:
		// Stdout carries the report alone so it can be piped or diffed
		// against the committed golden; findings still fail the run.
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		if err := lint.WriteConfinementJSON(os.Stdout, rep); err != nil {
			fmt.Fprintln(os.Stderr, "numalint:", err)
			os.Exit(2)
		}
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "numalint:", err)
			os.Exit(2)
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "numalint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
		os.Exit(1)
	}
}
