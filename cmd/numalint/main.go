// Command numalint runs the repository's custom static-analysis suite over
// the given packages (see internal/lint): determinism, hotpath, tracerguard,
// and faultpurity checks plus directive hygiene. It exits 1 when any
// diagnostic is reported and 2 when loading or type-checking fails, so CI
// can gate on a clean tree.
//
// Usage:
//
//	numalint [-json] [-<check>=false ...] [packages]
//
// Packages default to ./... . Findings print as file:line:col: check:
// message, or as a JSON array with -json. A finding is suppressed by a
// //numalint:allow <check> <reason> directive on its line or the line above.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ccnuma/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	list := flag.Bool("list", false, "list the suite's checks and exit")
	enabled := map[string]*bool{}
	for _, a := range lint.Analyzers() {
		enabled[a.Name] = flag.Bool(a.Name, true, a.Doc)
	}
	enabled[lint.DirectiveCheck] = flag.Bool(lint.DirectiveCheck, true,
		"validate //numalint directives (malformed, unknown check, suppresses nothing)")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-12s %s\n", lint.DirectiveCheck, "directive hygiene (always-on unless -directive=false)")
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "numalint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "numalint:", err)
		os.Exit(2)
	}

	suite := &lint.Suite{Cfg: lint.DefaultConfig(), Disabled: map[string]bool{}}
	for name, on := range enabled {
		if !*on {
			suite.Disabled[name] = true
		}
	}

	diags := suite.Run(pkgs)
	cwd, _ := os.Getwd()
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].File); err == nil && !filepath.IsAbs(rel) {
			diags[i].File = rel
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "numalint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "numalint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
		os.Exit(1)
	}
}
