// Command numasimd serves simulations over HTTP: POST a JSON request naming
// a workload, policy, and machine config to /run and get back exactly the
// bytes `numasim -json` would print for the same flags. The server is built
// for long-running use — bounded admission with 429 backpressure, per-request
// deadlines propagated into the engine loop, a bounded content-addressed
// result cache, structured failure bodies with flight-recorder dumps, and a
// graceful SIGTERM drain.
//
// Usage:
//
//	numasimd -addr :8377 -workers 2 -queue 8
//	curl -d '{"workload":"engineering","policy":"migrep"}' localhost:8377/run
//
// On SIGTERM or SIGINT the server stops admitting (503), sheds its queue,
// waits for in-flight simulations up to -drain-timeout, and exits 0 when the
// drain was clean.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ccnuma/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8377", "listen address (host:port; :0 picks a free port)")
		workers  = flag.Int("workers", 2, "simulations running concurrently")
		queue    = flag.Int("queue", 8, "admitted requests waiting beyond the workers; past it, 429")
		entries  = flag.Int("cache", 64, "result cache entries (LRU; -1 disables)")
		reqTO    = flag.Duration("request-timeout", 60*time.Second, "per-request deadline, queue wait included")
		drainTO  = flag.Duration("drain-timeout", 30*time.Second, "SIGTERM drain deadline for in-flight runs")
		retries  = flag.Int("retries", 0, "re-attempts for a failed simulation")
		recDepth = flag.Int("recorder-depth", 64, "flight-recorder events kept for failure bodies")
		quiet    = flag.Bool("quiet", false, "suppress per-request logging")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "numasimd: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = nil
	}
	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *entries,
		RequestTimeout: *reqTO,
		DrainTimeout:   *drainTO,
		Retries:        *retries,
		RecorderDepth:  *recDepth,
		Logf:           logf,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	// The resolved address goes to stdout (the only stdout line) so scripts
	// binding to :0 can scrape the port.
	fmt.Printf("listening on %s\n", ln.Addr())
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case got := <-sig:
		logger.Printf("%v: draining", got)
	case err := <-serveErr:
		logger.Fatal(err)
	}

	clean := srv.Shutdown()
	// App-level drain done; now close the listener and connections. The
	// handlers have already answered, so a short deadline suffices.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if !clean {
		logger.Print("drain was not clean (stragglers cancelled); exiting 1")
		os.Exit(1)
	}
	logger.Print("drained cleanly")
}
