package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke is the end-to-end check behind `make serve-smoke`: it builds
// the real numasim and numasimd binaries, serves over a real socket, and
// asserts the robustness contract — byte-identity with the CLI, bounded
// admission under concurrent load (only 200s and deliberate 429s), and a
// SIGTERM drain that exits 0.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and serves over a socket")
	}
	dir := t.TempDir()
	simBin := filepath.Join(dir, "numasim")
	daemonBin := filepath.Join(dir, "numasimd")
	for bin, pkg := range map[string]string{simBin: "ccnuma/cmd/numasim", daemonBin: "ccnuma/cmd/numasimd"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	// CLI rendering of the golden request — the byte-identity oracle.
	cliOut, err := exec.Command(simBin,
		"-workload", "engineering", "-scale", "0.05", "-duration", "4ms", "-json").Output()
	if err != nil {
		t.Fatalf("numasim -json: %v", err)
	}

	daemon := exec.Command(daemonBin, "-addr", "127.0.0.1:0", "-workers", "2", "-queue", "2")
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	daemon.Stderr = &stderr
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- daemon.Wait() }()
	defer daemon.Process.Kill()

	// The first stdout line announces the resolved address.
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("reading listen line: %v (stderr: %s)", err, stderr.String())
	}
	addr := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "listening on "))
	base := "http://" + addr

	post := func(body string) (int, []byte) {
		resp, err := http.Post(base+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST /run: %v (stderr: %s)", err, stderr.String())
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b
	}

	// Byte-identity: the served response is exactly the CLI's -json bytes.
	status, body := post(`{"workload":"engineering","scale":0.05,"duration_ns":4000000}`)
	if status != http.StatusOK {
		t.Fatalf("/run status %d: %s", status, body)
	}
	if !bytes.Equal(body, cliOut) {
		t.Fatalf("served response differs from numasim -json:\n%s\nvs CLI:\n%s", body, cliOut)
	}

	// Health endpoints answer.
	if resp, err := http.Get(base + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Get(base + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}

	// Concurrent distinct requests against workers=2, queue=2: every answer
	// is a 200 or a deliberate 429 — never a 5xx, never a hung connection.
	var ok, shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body := post(fmt.Sprintf(
				`{"workload":"engineering","scale":0.05,"duration_ns":4000000,"seed":%d}`, i+100))
			switch status {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusTooManyRequests:
				shed.Add(1)
			default:
				t.Errorf("request %d: status %d body %s", i, status, body)
			}
		}(i)
	}
	wg.Wait()
	if ok.Load() == 0 {
		t.Fatal("no request succeeded under load")
	}
	t.Logf("hammer: %d ok, %d shed with backpressure", ok.Load(), shed.Load())

	// SIGTERM while a request is in flight: the drain lets it finish (or
	// refuses it with 503 if it had not yet been admitted) and exits 0.
	inflight := make(chan int, 1)
	go func() {
		status, _ := post(`{"workload":"engineering","scale":0.05,"duration_ns":4000000,"seed":999}`)
		inflight <- status
	}()
	time.Sleep(50 * time.Millisecond)
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case status := <-inflight:
		if status != http.StatusOK && status != http.StatusServiceUnavailable {
			t.Fatalf("in-flight request during drain: status %d", status)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight request hung through the drain")
	}
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("numasimd did not exit 0 after SIGTERM: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("numasimd did not exit after SIGTERM\nstderr: %s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained cleanly") {
		t.Fatalf("drain not reported clean:\n%s", stderr.String())
	}
}
