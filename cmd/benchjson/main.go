// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON document, so benchmark numbers (ns/op, allocs/op,
// and custom metrics like ksteps/s) can be archived and diffed across
// commits without scraping.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -out BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// benchmark is one result line. Standard units get their own fields; any
// other unit (b.ReportMetric values such as ksteps/s or records) lands in
// Metrics keyed by its unit string.
type benchmark struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type document struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "-", "output path (- for stdout)")
	flag.Parse()

	doc := document{Benchmarks: []benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
}

// parseLine decodes one "BenchmarkName-P  N  v1 unit1  v2 unit2 ..." line.
// Lines that do not fit the shape (e.g. a benchmark that printed its own
// output) are skipped rather than failing the whole conversion.
func parseLine(line string) (benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return benchmark{}, false
	}
	b := benchmark{Name: f[0]}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b.Iterations = iters
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
