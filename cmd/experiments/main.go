// Command experiments regenerates the paper's tables and figures and prints
// each with the paper's published numbers alongside.
//
// Usage:
//
//	experiments                 # run everything at full scale
//	experiments -only F3,T4     # a subset
//	experiments -scale 0.5      # smaller, faster workloads
//	experiments -j 4            # at most 4 concurrent simulations
//	experiments -out EXPERIMENTS.out.md
//
// Each experiment fans its independent simulations across -j workers; the
// rendered report is byte-identical at any -j (verified by the report
// package's determinism test).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"ccnuma/internal/profiling"
	"ccnuma/internal/report"
)

func main() {
	var (
		scale    = flag.Float64("scale", 1.0, "workload scale factor")
		seed     = flag.Uint64("seed", 42, "random seed")
		only     = flag.String("only", "", "comma-separated experiment ids (default all)")
		out      = flag.String("out", "", "also write the report to this file")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		jobs     = flag.Int("j", runtime.GOMAXPROCS(0), "max concurrent simulations per experiment")
		shards   = flag.Int("shards", 0, "per-node event lanes inside each simulation (0 or 1 = single heap; results are shard-count independent)")
		workers  = flag.Int("workers", 0, "goroutines driving guarded epoch windows inside each simulation (0 = serial; needs -shards >= workers; results are worker-count independent)")
		progress = flag.Bool("progress", false, "log each simulation's start/finish/memo-hit to stderr")
		metrics  = flag.String("metrics", "", "write per-run metrics (JSONL) to this file")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile after the run to this file")

		retries      = flag.Int("retries", 0, "re-attempt each failed simulation this many times")
		retryBackoff = flag.Duration("retry-backoff", 100*time.Millisecond, "pause before the first retry (doubles per attempt)")
		runTimeout   = flag.Duration("run-timeout", 0, "per-simulation wall-clock timeout (0 = none)")
		keepGoing    = flag.Bool("keep-going", false, "complete the grid past failed runs and write a failure manifest")
		manifest     = flag.String("manifest", "", "failure-manifest path (default <out>.failures.json or experiments.failures.json)")
		spansPth     = flag.String("spans", "", "write the harness span timeline (Chrome trace JSON, wall clock) to this file")
		recorderN    = flag.Int("recorder", 0, "flight-recorder depth: keep the last N obs events per run for failure manifests (0 = off; pair with -keep-going or -retries)")
	)
	flag.Parse()

	if *list {
		for _, e := range report.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	// Resolve every requested id before running anything, so a typo at the
	// end of -only fails fast instead of discarding completed experiments.
	exps := report.Experiments()
	if *only != "" {
		exps = exps[:0]
		bad := false
		for _, id := range strings.Split(*only, ",") {
			e, err := report.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				bad = true
				continue
			}
			exps = append(exps, e)
		}
		if bad {
			os.Exit(1)
		}
	}

	h := report.NewHarness(*scale, *seed)
	h.Workers = *jobs
	h.Shards = *shards
	h.EpochWorkers = *workers
	h.Retries = *retries
	h.RetryBackoff = *retryBackoff
	h.RunTimeout = *runTimeout
	h.KeepGoing = *keepGoing
	h.CollectSpans = *spansPth != ""
	h.RecorderDepth = *recorderN
	if *progress {
		t0 := time.Now()
		h.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "[%8s] %s\n",
				time.Since(t0).Round(time.Millisecond), fmt.Sprintf(format, args...))
		}
	}
	var doc strings.Builder
	writeOut := func() {
		if *out == "" || doc.Len() == 0 {
			return
		}
		if err := os.WriteFile(*out, []byte(doc.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return
		}
		fmt.Println("wrote", *out)
	}
	writeSpans := func() {
		if *spansPth == "" {
			return
		}
		f, err := os.Create(*spansPth)
		if err == nil {
			if err = h.WriteSpans(f); err == nil {
				err = f.Close()
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return
		}
		fmt.Printf("wrote %s (%d spans; load in Perfetto)\n", *spansPth, len(h.Spans()))
	}
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	// A failed simulation surfaces as a panic from the report layer; keep
	// the completed sections by writing the partial document on that path.
	defer func() {
		if r := recover(); r != nil {
			stopProf()
			writeOut()
			writeSpans()
			fmt.Fprintln(os.Stderr, "experiments:", r)
			os.Exit(1)
		}
	}()

	start := time.Now()
	var failedExps []string
	runExp := func(e report.Experiment) (body string) {
		if *keepGoing {
			// A placeholder result from a failed run can still break an
			// experiment's rendering; under -keep-going that costs only the
			// one section, not the rest of the grid.
			defer func() {
				if r := recover(); r != nil {
					failedExps = append(failedExps, e.ID)
					body = fmt.Sprintf("FAILED: %v\n", r)
				}
			}()
		}
		return e.Run(h)
	}
	for _, e := range exps {
		t0 := time.Now()
		body := runExp(e)
		fmt.Fprintf(&doc, "## %s — %s\n\n%s\n", e.ID, e.Title, body)
		fmt.Printf("== %s — %s (%v)\n\n%s\n", e.ID, e.Title, time.Since(t0).Round(time.Millisecond), body)
	}
	stopProf()
	executed, hits := h.Counters()
	fmt.Printf("== %d experiments in %v (-j %d): %d simulations run, %d served from memo\n",
		len(exps), time.Since(start).Round(time.Millisecond), *jobs, executed, hits)

	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		for _, m := range h.Metrics() {
			if err := enc.Encode(m); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d runs)\n", *metrics, executed)
	}

	writeOut()
	writeSpans()

	if failures := h.Failures(); len(failures) > 0 || len(failedExps) > 0 {
		path := *manifest
		if path == "" {
			if *out != "" {
				path = *out + ".failures.json"
			} else {
				path = "experiments.failures.json"
			}
		}
		m := struct {
			Completed         int                 `json:"completed"`
			Total             int                 `json:"total"`
			ExperimentsFailed []string            `json:"experiments_failed"`
			RunsFailed        []report.RunFailure `json:"runs_failed"`
		}{
			Completed:         len(exps) - len(failedExps),
			Total:             len(exps),
			ExperimentsFailed: failedExps,
			RunsFailed:        failures,
		}
		if m.ExperimentsFailed == nil {
			m.ExperimentsFailed = []string{}
		}
		b, err := json.MarshalIndent(m, "", "  ")
		if err == nil {
			err = os.WriteFile(path, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		} else {
			fmt.Fprintf(os.Stderr, "experiments: %d run(s) failed, %d experiment(s) incomplete; manifest: %s\n",
				len(failures), len(failedExps), path)
		}
		os.Exit(1)
	}
}
