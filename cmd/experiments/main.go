// Command experiments regenerates the paper's tables and figures and prints
// each with the paper's published numbers alongside.
//
// Usage:
//
//	experiments                 # run everything at full scale
//	experiments -only F3,T4     # a subset
//	experiments -scale 0.5      # smaller, faster workloads
//	experiments -out EXPERIMENTS.out.md
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ccnuma/internal/report"
)

func main() {
	var (
		scale = flag.Float64("scale", 1.0, "workload scale factor")
		seed  = flag.Uint64("seed", 42, "random seed")
		only  = flag.String("only", "", "comma-separated experiment ids (default all)")
		out   = flag.String("out", "", "also write the report to this file")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range report.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	h := report.NewHarness(*scale, *seed)
	var doc strings.Builder
	run := func(e report.Experiment) {
		start := time.Now()
		body := e.Run(h)
		fmt.Fprintf(&doc, "## %s — %s\n\n%s\n", e.ID, e.Title, body)
		fmt.Printf("== %s — %s (%v)\n\n%s\n", e.ID, e.Title, time.Since(start).Round(time.Millisecond), body)
	}

	if *only == "" {
		for _, e := range report.Experiments() {
			run(e)
		}
	} else {
		for _, id := range strings.Split(*only, ",") {
			e, err := report.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			run(e)
		}
	}

	if *out != "" {
		if err := os.WriteFile(*out, []byte(doc.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}
}
