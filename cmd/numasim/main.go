// Command numasim runs one of the paper's workloads on the simulated
// CC-NUMA machine under a chosen placement policy and prints the
// execution-time breakdown.
//
// Usage:
//
//	numasim -workload engineering -policy migrep -duration 400ms
//	numasim -workload raytrace -policy ft -config ccnow -v
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ccnuma/internal/core"
	"ccnuma/internal/fault"
	"ccnuma/internal/obs"
	"ccnuma/internal/policy"
	"ccnuma/internal/profiling"
	"ccnuma/internal/report"
	"ccnuma/internal/serve"
	"ccnuma/internal/sim"
	"ccnuma/internal/stats"
)

func main() {
	var (
		wl        = flag.String("workload", "engineering", "workload: engineering|raytrace|splash|database|pmake")
		pol       = flag.String("policy", "migrep", "policy: rr|ft|migr|repl|migrep")
		cfgName   = flag.String("config", "ccnuma", "machine: ccnuma|ccnow|zeronet")
		scale     = flag.Float64("scale", 1.0, "workload scale factor")
		seed      = flag.Uint64("seed", 42, "random seed")
		shards    = flag.Int("shards", 0, "per-node event lanes (0 or 1 = single heap; results are shard-count independent)")
		workers   = flag.Int("workers", 0, "goroutines driving guarded epoch windows (0 = serial; needs -shards >= workers; results are worker-count independent)")
		dur       = flag.Duration("duration", 0, "run length in simulated time (0 = workload default)")
		trigger   = flag.Uint("trigger", 0, "trigger threshold override (0 = workload default)")
		metric    = flag.String("metric", "fc", "counter metric: fc|sc|ft|st")
		track     = flag.Bool("track-tlb", false, "flush only TLBs holding a mapping (ablation)")
		dircopy   = flag.Bool("dir-copy", false, "use the directory's pipelined page copy (ablation)")
		verbose   = flag.Bool("v", false, "print per-CPU and contention detail")
		missPth   = flag.String("misstrace", "", "write the miss trace to this file")
		oldMiss   = flag.String("trace", "", "deprecated alias for -misstrace")
		eventsPth = flag.String("events", "", "write the observability event trace as Chrome trace JSON (load in Perfetto)")
		jsonlPth  = flag.String("events-jsonl", "", "write the observability event trace as JSONL")
		shardsPth = flag.String("shardstats", "", "collect per-lane shard stats, print the table, and write the JSONL report to this file")
		seriesPth = flag.String("timeseries", "", "write the sampled time-series as CSV")
		interval  = flag.Duration("sample-interval", time.Millisecond, "time-series sampling interval (simulated time)")
		debug     = flag.Bool("debug-checks", false, "validate accounting invariants on every sample")
		adaptive  = flag.Bool("adaptive", false, "adaptive trigger threshold (extension)")
		reclaim   = flag.Bool("reclaim", false, "reclaim cold replicas each interval (extension)")
		wshared   = flag.Bool("mig-wshared", false, "migrate write-shared pages (extension)")
		noremap   = flag.Bool("no-remap", false, "disable the pte remap action (paper behaviour)")
		jsonOut   = flag.Bool("json", false, "emit the result as JSON instead of text")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile after the run to this file")

		faultSeed    = flag.Uint64("fault-seed", 0, "fault injector RNG seed (0 = derive from -seed)")
		drainNode    = flag.Int("fault-drain-node", -1, "drain this node's memory mid-run (-1 = off)")
		drainAt      = flag.Duration("fault-drain-at", 10*time.Millisecond, "simulated time of the drain")
		dropBatch    = flag.Float64("fault-drop-batch", 0, "probability a hot-page interrupt batch is lost")
		delayBatch   = flag.Float64("fault-delay-batch", 0, "probability a hot-page interrupt batch is delayed")
		delayBy      = flag.Duration("fault-delay", 200*time.Microsecond, "delay applied to delayed batches (simulated time)")
		allocProb    = flag.Float64("fault-alloc-prob", 0, "probability an allocation attempt fails transiently")
		allocFrom    = flag.Duration("fault-alloc-from", 0, "start of the transient-failure window (simulated time)")
		allocUntil   = flag.Duration("fault-alloc-until", 0, "end of the transient-failure window (0 = end of run)")
		slowNode     = flag.Int("fault-slow-node", -1, "inflate remote-miss latency to/from this node (-1 = off)")
		slowFactor   = flag.Float64("fault-slow-factor", 4, "latency multiplier for the degraded link")
		deferOps     = flag.Bool("fault-defer", false, "defer+retry pager operations that fail allocation")
		overheadBudg = flag.Float64("overhead-budget", 0, "shed pager batches above this fraction of CPU time (0 = off)")
	)
	flag.Parse()
	if *missPth == "" && *oldMiss != "" {
		fmt.Fprintln(os.Stderr, "numasim: -trace is deprecated; use -misstrace")
		*missPth = *oldMiss
	}

	// Drain and slow-link faults key off their node flags; the Config fields
	// stay zero otherwise so the default fingerprint (and output) is identical
	// to a build without the fault layer.
	fc := fault.Config{
		Seed:           *faultSeed,
		DropBatch:      *dropBatch,
		DelayBatch:     *delayBatch,
		AllocFail:      *allocProb,
		DeferFailedOps: *deferOps,
		OverheadBudget: *overheadBudg,
	}
	if *delayBatch > 0 {
		fc.DelayBy = sim.Time(delayBy.Nanoseconds())
	}
	if *allocProb > 0 {
		fc.AllocFailFrom = sim.Time(allocFrom.Nanoseconds())
		fc.AllocFailUntil = sim.Time(allocUntil.Nanoseconds())
	}
	if *drainNode >= 0 {
		fc.DrainNode = *drainNode
		fc.DrainAt = sim.Time(drainAt.Nanoseconds())
	}
	if *slowNode >= 0 {
		fc.SlowNode = *slowNode
		fc.SlowFactor = *slowFactor
	}

	// Flags assemble into the same serve.Request numasimd accepts over HTTP,
	// and both render results through serve.WriteResultJSON — so a served
	// response is byte-identical to this binary's -json output by
	// construction (`make serve-smoke` diffs the two).
	req := serve.Request{
		Workload:       *wl,
		Policy:         *pol,
		Config:         *cfgName,
		Scale:          *scale,
		Seed:           seed,
		Shards:         *shards,
		Workers:        *workers,
		DurationNS:     dur.Nanoseconds(),
		Trigger:        uint16(*trigger),
		Metric:         *metric,
		TrackTLB:       *track,
		DirCopy:        *dircopy,
		Adaptive:       *adaptive,
		Reclaim:        *reclaim,
		MigWriteShared: *wshared,
		NoRemap:        *noremap,
		Faults:         &fc,
	}
	job, err := req.Build()
	if err != nil {
		fatal(err)
	}
	spec := job.Spec()

	// CLI-only collection knobs ride on top of the shared option set; none of
	// them is part of the request wire shape (a server never writes local
	// trace files).
	opt := job.Opt
	opt.CollectTrace = *missPth != ""
	opt.CollectEvents = *eventsPth != "" || *jsonlPth != ""
	opt.CollectShardStats = *shardsPth != ""
	opt.DebugChecks = *debug
	if *seriesPth != "" {
		if *interval <= 0 {
			fatal(fmt.Errorf("-sample-interval must be positive"))
		}
		opt.SampleInterval = sim.Time(interval.Nanoseconds())
	}

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	res, err := core.Run(spec, opt)
	stopProf()
	if err != nil {
		fatal(err)
	}
	wall := time.Since(start)

	if *jsonOut {
		printJSON(res)
		return
	}
	printResult(res, *verbose)
	if opt.Faults.Enabled() {
		printFaults(res)
	}
	fmt.Printf("\n(simulated %v in %v wall, %d events, %d steps)\n", res.Elapsed, wall.Round(time.Millisecond), res.Events, res.Steps)

	if *missPth != "" && res.Trace != nil {
		writeFile(*missPth, res.Trace.Write)
		fmt.Printf("miss trace: %d records -> %s\n", res.Trace.Len(), *missPth)
	}
	if *eventsPth != "" && res.ObsEvents != nil {
		writeFile(*eventsPth, func(w io.Writer) error {
			return res.ObsEvents.WriteChromeTraceWith(w, res.ShardStats)
		})
		fmt.Printf("events: %d -> %s (chrome trace; load in Perfetto)\n", res.ObsEvents.Len(), *eventsPth)
	}
	if *jsonlPth != "" && res.ObsEvents != nil {
		writeFile(*jsonlPth, res.ObsEvents.WriteJSONL)
		fmt.Printf("events: %d -> %s (jsonl)\n", res.ObsEvents.Len(), *jsonlPth)
	}
	if *seriesPth != "" && res.Series != nil {
		writeFile(*seriesPth, res.Series.WriteCSV)
		fmt.Printf("timeseries: %d samples -> %s\n", res.Series.Len(), *seriesPth)
	}
	if *shardsPth != "" && res.ShardStats != nil {
		writeFile(*shardsPth, func(w io.Writer) error {
			return obs.WriteShardStatsJSONL(w, res.ShardStats)
		})
		fmt.Print(report.ShardStatsTable(res.ShardStats))
		fmt.Printf("shard stats: %d lanes -> %s (jsonl)\n", res.ShardStats.Lanes(), *shardsPth)
	}
}

// writeFile creates path and streams write into it, failing hard on error.
func writeFile(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := write(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func printResult(r *core.Result, verbose bool) {
	b := &r.Agg
	tot := b.Total()
	l2, local, remote := b.MemStall()
	fmt.Printf("workload %s  policy %s  machine time %v (8-CPU aggregate %v)\n",
		r.Workload, r.Policy, r.Elapsed, tot)
	fmt.Printf("  non-idle %v (%.1f%%)  idle %v (%.1f%%)\n",
		b.NonIdle(), pct(b.NonIdle(), tot), b.Idle, pct(b.Idle, tot))
	ni := b.NonIdle()
	fmt.Printf("  compute: user %v (%.1f%% ni)  kernel %v (%.1f%% ni)\n",
		b.Compute[stats.User], pct(b.Compute[stats.User], ni),
		b.Compute[stats.Kernel], pct(b.Compute[stats.Kernel], ni))
	fmt.Printf("  stall:   L2 %v (%.1f%%)  local %v (%.1f%%)  remote %v (%.1f%%)\n",
		l2, pct(l2, ni), local, pct(local, ni), remote, pct(remote, ni))
	fmt.Printf("  stall by mode/side (%% ni): Kinstr %.1f Kdata %.1f Uinstr %.1f Udata %.1f\n",
		pct(b.StallTime(stats.Kernel, stats.Instr), ni),
		pct(b.StallTime(stats.Kernel, stats.Data), ni),
		pct(b.StallTime(stats.User, stats.Instr), ni),
		pct(b.StallTime(stats.User, stats.Data), ni))
	fmt.Printf("  kernel handlers: tlb-refill %v  fault %v  pager %v (%.1f%% ni)\n",
		b.TLBRefill, b.FaultTime, b.Pager.Total(), pct(b.Pager.Total(), ni))
	fmt.Printf("  local miss fraction %.1f%%  avg remote latency %v\n",
		100*r.LocalMissFraction, r.AvgRemoteLatency)
	fmt.Printf("  sched migrations %d  vm: faults %d mig %d repl %d collapse %d remap %d\n",
		r.SchedMigrations, r.VM.Faults, r.VM.Migrates, r.VM.Replics, r.VM.Collapses, r.VM.Remaps)
	if r.Actions.HotPages > 0 {
		mig, rep, none, nopage := r.Actions.Percent()
		fmt.Printf("  hot pages %d: migrate %.0f%% replicate %.0f%% no-action %.0f%% no-page %.0f%%\n",
			r.Actions.HotPages, mig, rep, none, nopage)
	}
	fmt.Printf("  alloc: peak base %d peak replica %d (overhead %.0f%%) failures %d\n",
		r.Alloc.PeakBase, r.Alloc.PeakReplica, 100*r.Alloc.ReplicaOverhead(), r.Alloc.Failures)

	if verbose {
		fmt.Printf("  contention: remote handlers %d  avg net queue %.2f  max dir occ %.2f  avg local read %v\n",
			r.Contention.RemoteHandlerInvocations, r.Contention.AvgNetQueue,
			r.Contention.MaxDirOccupancy, r.Contention.AvgLocalReadLatency)
		fmt.Printf("  memlock: %d acq, %d contended, wait %v; page locks: %d acq, wait %v\n",
			r.Memlock.Acquisitions, r.Memlock.Contended, r.Memlock.WaitTime,
			r.PageLocks.Acquisitions, r.PageLocks.WaitTime)
		if r.Actions.HotPages > 0 {
			fmt.Printf("  no-action reasons: local %d write-shared %d frozen %d wired %d disabled %d nopage %d\n",
				r.Actions.ByReason[policy.ReasonLocal], r.Actions.ByReason[policy.ReasonWriteShared],
				r.Actions.ByReason[policy.ReasonFrozen], r.Actions.ByReason[policy.ReasonWired],
				r.Actions.ByReason[policy.ReasonDisabled], r.Actions.ByReason[policy.ReasonNoPage])
			fmt.Println("  pager overhead by function:")
			for f := 0; f < stats.NumPagerFuncs; f++ {
				fn := stats.PagerFunc(f)
				fmt.Printf("    %-16s %6.1f%%  (%v)\n", fn, b.Pager.Percent(fn), b.Pager.Time[fn])
			}
			for _, k := range []stats.OpKind{stats.OpReplicate, stats.OpMigrate} {
				ol := b.Pager.OpLatency[k]
				fmt.Printf("  %s ops %d  mean latency %.1fus\n", k, ol.Count, ol.MeanTotal())
			}
		}
		for i := range r.PerCPU {
			fmt.Printf("  cpu%d: %s\n", i, r.PerCPU[i].Summary())
		}
	}
}

// printFaults summarises what the injector did and how the kernel degraded.
// Printed only when faults are enabled, keeping the default output identical.
func printFaults(r *core.Result) {
	f := r.Faults
	fmt.Printf("  faults: alloc-fail %d  batches dropped %d delayed %d  slowed misses %d",
		f.AllocFailures, f.BatchesDropped, f.BatchesDelayed, f.SlowedMisses)
	if f.DrainedNode >= 0 {
		fmt.Printf("  drained node %d (%d replicas evicted)", f.DrainedNode, f.ReplicasEvicted)
	}
	fmt.Println()
	fmt.Printf("  degradation: ops deferred %d retried %d abandoned %d  batches throttled %d  alloc transient %d  vm retries %d\n",
		r.Agg.Deferred, r.Agg.Retried, r.Agg.Abandoned, r.Agg.Throttled,
		r.Alloc.TransientFailures, r.VM.AllocRetries)
}

// printJSON emits the machine-readable summary through the serving layer's
// renderer — the single source of the -json byte format (numasimd responses
// are byte-identical by construction).
func printJSON(r *core.Result) {
	if err := serve.WriteResultJSON(os.Stdout, r); err != nil {
		fatal(err)
	}
}

func pct(a, b sim.Time) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "numasim:", err)
	os.Exit(1)
}
