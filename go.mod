module ccnuma

go 1.22
