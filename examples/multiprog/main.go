// Migration case study: multiprogramming strands private data.
//
// The engineering workload runs twelve sequential jobs on eight CPUs under
// affinity scheduling. When the load balancer moves a job, every private
// page it first-touched stays behind on the old node; migration brings the
// data along, and replication handles the shared program text of the six
// concurrent copies of each binary. Both mechanisms are needed — the paper's
// central claim.
//
//	go run ./examples/multiprog
package main

import (
	"fmt"
	"log"

	"ccnuma/internal/core"
	"ccnuma/internal/policy"
	"ccnuma/internal/workload"
)

func main() {
	const scale, seed = 0.5, 42

	type variant struct {
		name string
		opt  core.Options
	}
	base := policy.Base().WithTrigger(96) // the paper's engineering trigger
	variants := []variant{
		{"FT", core.Options{Seed: seed}},
		{"Migr-only", core.Options{Seed: seed, Dynamic: true, Params: base.MigrationOnly()}},
		{"Repl-only", core.Options{Seed: seed, Dynamic: true, Params: base.ReplicationOnly()}},
		{"Mig/Rep", core.Options{Seed: seed, Dynamic: true, Params: base}},
	}

	fmt.Println("engineering workload: 12 sequential jobs, 8 CPUs, affinity scheduling")
	fmt.Println()
	var ftBusy float64
	for _, v := range variants {
		res, err := core.Run(workload.Engineering(scale, seed), v.opt)
		if err != nil {
			log.Fatal(err)
		}
		busy := float64(res.Agg.NonIdle())
		if v.name == "FT" {
			ftBusy = busy
		}
		_, local, remote := res.Agg.MemStall()
		fmt.Printf("%-10s nonidle %v (%+5.1f%%)  stall l/r %v/%v  local %4.1f%%  proc moves %d  page mig %d  repl %d\n",
			v.name, res.Agg.NonIdle(), 100*(busy-ftBusy)/ftBusy,
			local, remote, 100*res.LocalMissFraction,
			res.SchedMigrations, res.VM.Migrates, res.VM.Replics)
	}
	fmt.Println("\nPaper (Figure 6): neither migration nor replication alone suffices for")
	fmt.Println("engineering; the combined policy reduced execution time 29%.")
}
