// Latency sensitivity: CC-NUMA vs CC-NOW vs zero-network-delay.
//
// The policy's benefit scales with the remote:local latency ratio — 4:1 on
// the CC-NUMA machine, 10:1 on the CC-NOW configuration (Section 7.1.3) —
// yet it still pays on a machine with no network delay at all, because
// locality also drains contention out of the directories (Section 7.1.2).
//
//	go run ./examples/ccnow
package main

import (
	"fmt"
	"log"

	"ccnuma/internal/core"
	"ccnuma/internal/topology"
	"ccnuma/internal/workload"
)

func main() {
	const scale, seed = 0.5, 42

	for _, cfg := range []topology.Config{topology.CCNUMA(), topology.CCNOW(), topology.ZeroNet()} {
		ft, err := core.Run(workload.Engineering(scale, seed), core.Options{Seed: seed, Config: cfg})
		if err != nil {
			log.Fatal(err)
		}
		mr, err := core.Run(workload.Engineering(scale, seed), core.Options{Seed: seed, Config: cfg, Dynamic: true})
		if err != nil {
			log.Fatal(err)
		}
		stall := func(r *core.Result) float64 {
			_, l, rem := r.Agg.MemStall()
			return float64(l + rem)
		}
		fmt.Printf("%-9s remote min %v: busy %v -> %v (%.1f%% better), stall -%.1f%%, observed remote %v\n",
			cfg.Name, cfg.RemoteLatency,
			ft.Agg.NonIdle(), mr.Agg.NonIdle(),
			100*float64(ft.Agg.NonIdle()-mr.Agg.NonIdle())/float64(ft.Agg.NonIdle()),
			100*(stall(ft)-stall(mr))/stall(ft),
			ft.AvgRemoteLatency)
	}
	fmt.Println("\nPaper: CC-NOW improves 30% (53% stall); even with zero network delay the")
	fmt.Println("policy wins 21% because contention for directory controllers drops.")
}
