// Quickstart: run one workload on the simulated CC-NUMA machine under
// first-touch placement and under the paper's dynamic migration/replication
// policy, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ccnuma/internal/core"
	"ccnuma/internal/workload"
)

func main() {
	// A workload is a Spec: processes with reference generators over a
	// shared page layout. The five paper workloads are built in; scale 0.5
	// keeps this example fast.
	const scale, seed = 0.5, 42
	build, err := workload.ByName("raytrace")
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: first-touch placement (the CC-NUMA default).
	ft, err := core.Run(build(scale, seed), core.Options{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's contribution: kernel-driven page migration + replication,
	// triggered by per-page per-processor cache-miss counters.
	mr, err := core.Run(build(scale, seed), core.Options{Seed: seed, Dynamic: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("raytrace on the 8-node CC-NUMA machine (scale %.1f)\n\n", scale)
	for _, r := range []*core.Result{ft, mr} {
		_, local, remote := r.Agg.MemStall()
		fmt.Printf("%-8s completion %v   non-idle %v   stall local/remote %v/%v   local misses %.0f%%\n",
			r.Policy, r.Elapsed, r.Agg.NonIdle(), local, remote, 100*r.LocalMissFraction)
	}
	impr := 100 * float64(ft.Agg.NonIdle()-mr.Agg.NonIdle()) / float64(ft.Agg.NonIdle())
	fmt.Printf("\nMig/Rep: %d migrations, %d replications, %d collapses -> %.1f%% less busy time\n",
		mr.VM.Migrates, mr.VM.Replics, mr.VM.Collapses, impr)
	fmt.Println("(The paper reports a 15% execution-time improvement for raytrace.)")
}
