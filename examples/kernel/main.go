// Kernel locality study (Section 8.2): can the operating system's own pages
// profit from migration and replication?
//
// IRIX loads the kernel at boot, unmapped by the TLB, so the paper cannot
// actually move kernel pages; instead it records the pmake workload's kernel
// misses and replays them through the trace-driven policy simulator. This
// example reproduces that methodology: the answer is "barely" — per-CPU
// structures are local by construction (first touch already wins), shared
// kernel data is write-shared (unhelpable), and only kernel text (a small
// fraction of the misses) replicates usefully.
//
//	go run ./examples/kernel
package main

import (
	"fmt"
	"log"

	"ccnuma/internal/core"
	"ccnuma/internal/trace"
	"ccnuma/internal/tracesim"
	"ccnuma/internal/workload"
)

func main() {
	const scale, seed = 0.5, 42

	res, err := core.Run(workload.Pmake(scale, seed), core.Options{Seed: seed, CollectTrace: true})
	if err != nil {
		log.Fatal(err)
	}
	kernel := res.Trace.KernelOnly()
	fmt.Println("pmake kernel miss trace:")
	fmt.Print(trace.Summarize(kernel, 3))

	s := trace.Summarize(kernel, 0)
	fmt.Printf("\nkernel text share of kernel misses: %.0f%% (the paper reports ~12%%)\n\n",
		100*float64(s.IFetches)/float64(s.CacheMisses))

	cfg := tracesim.DefaultConfig(8)
	outs := tracesim.SimulateAll(kernel, cfg)
	base := outs[0].Total()
	fmt.Println("policies over kernel misses (normalized to round-robin):")
	for _, o := range outs {
		fmt.Printf("  %-7s %.3f   local %5.1f%%  moves %d\n",
			o.Policy, float64(o.Total())/float64(base), 100*o.LocalFraction(),
			o.Migrations+o.Replications+o.Collapses)
	}
	fmt.Println("\nPaper: \"there is almost no benefit beyond first touch\" — FT already")
	fmt.Println("places per-CPU kernel structures locally, and the shared kernel data")
	fmt.Println("is too write-shared to move. The small residual win is kernel text.")
}
