// Replication case study: why a read-shared scene wants page replication.
//
// The raytrace workload pins one worker per processor; the master
// initialises the whole scene, so first-touch placement strands it on node
// 0. The example shows (a) the read-chain evidence (Figure 4) that the
// scene is replication-friendly, and (b) how the three dynamic policies
// compare — migration alone barely helps a page that everyone reads.
//
//	go run ./examples/raytrace
package main

import (
	"fmt"
	"log"

	"ccnuma/internal/core"
	"ccnuma/internal/policy"
	"ccnuma/internal/trace"
	"ccnuma/internal/workload"
)

func main() {
	const scale, seed = 0.5, 42

	// One instrumented first-touch run provides both the baseline numbers
	// and the miss trace for the read-chain analysis.
	ft, err := core.Run(workload.Raytrace(scale, seed),
		core.Options{Seed: seed, CollectTrace: true})
	if err != nil {
		log.Fatal(err)
	}

	chains := trace.ReadChains(ft.Trace.UserOnly(), trace.DefaultThresholds)
	fmt.Println("read chains (fraction of data misses in chains of length >= L):")
	for i, th := range chains.Thresholds {
		fmt.Printf("  L >= %-5d %5.1f%%\n", th, 100*chains.FractionAtLeast[i])
	}
	fmt.Printf("long chains mean reads keep arriving between writes: replication pays.\n\n")

	run := func(name string, p policy.Params) {
		res, err := core.Run(workload.Raytrace(scale, seed),
			core.Options{Seed: seed, Dynamic: true, Params: p})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s nonidle %v  local %5.1f%%  mig %4d  repl %4d  hot-page actions: ",
			name, res.Agg.NonIdle(), 100*res.LocalMissFraction, res.VM.Migrates, res.VM.Replics)
		m, r, n, np := res.Actions.Percent()
		fmt.Printf("%2.0f%% mig %2.0f%% repl %2.0f%% none %2.0f%% nopage\n", m, r, n, np)
	}

	base := policy.Base()
	fmt.Printf("%-10s nonidle %v  local %5.1f%%  (baseline)\n", "FT", ft.Agg.NonIdle(), 100*ft.LocalMissFraction)
	run("Migr", base.MigrationOnly())
	run("Repl", base.ReplicationOnly())
	run("Mig/Rep", base)
	fmt.Println("\nPaper: raytrace gains come almost entirely from replication; 60% of its")
	fmt.Println("data misses sit in read chains of 512+ misses (Figure 4).")
}
