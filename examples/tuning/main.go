// Policy tuning: the trigger-threshold trade-off (Figure 9) explored with
// the trace-driven simulator, which replays one recorded miss trace under
// many parameterisations in seconds.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"ccnuma/internal/core"
	"ccnuma/internal/tracesim"
	"ccnuma/internal/workload"
)

func main() {
	const scale, seed = 0.5, 42

	// Record one trace under first touch.
	res, err := core.Run(workload.Splash(scale, seed), core.Options{Seed: seed, CollectTrace: true})
	if err != nil {
		log.Fatal(err)
	}
	tr := res.Trace.UserOnly()
	fmt.Printf("splash trace: %d miss records over %v\n\n", tr.Len(), tr.Duration())

	cfg := tracesim.DefaultConfig(8)
	rr := tracesim.Simulate(tr, cfg, tracesim.RR).Total()

	fmt.Println("trigger sweep (sharing = trigger/4), normalized to round-robin:")
	fmt.Printf("%8s %10s %10s %10s %10s %8s\n", "trigger", "norm", "stall", "overhead", "local%", "moves")
	for _, trig := range []uint16{16, 32, 64, 128, 256} {
		c := cfg
		c.Params = c.Params.WithTrigger(trig)
		o := tracesim.Simulate(tr, c, tracesim.MigRep)
		fmt.Printf("%8d %10.3f %10v %10v %9.1f%% %8d\n",
			trig, float64(o.Total())/float64(rr),
			o.StallLocal+o.StallRemote, o.Overhead,
			100*o.LocalFraction(), o.Migrations+o.Replications)
	}

	fmt.Println("\nsharing-threshold sweep at trigger 128 (Section 8.4):")
	for _, div := range []uint16{8, 4, 2} {
		c := cfg
		c.Params.Sharing = c.Params.Trigger / div
		o := tracesim.Simulate(tr, c, tracesim.MigRep)
		fmt.Printf("  sharing=T/%d  norm %.3f  (mig %d, repl %d)\n",
			div, float64(o.Total())/float64(rr), o.Migrations, o.Replications)
	}
	fmt.Println("\nPaper: the trigger controls aggressiveness (locality vs overhead); the")
	fmt.Println("sharing threshold barely matters — pages are clearly shared or not.")
}
